/// The headline robustness proof: for EVERY registered fault site, an
/// 8-thread cache-churn run with the fault firing repeatedly must end with
/// zero leaked exceptions, zero torn `.tmp.*` files, only correct plans
/// served, and a store that heals to all-disk-hits once the fault clears.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/fault_injection.h"
#include "testing/fault_churn.h"

namespace mystique::testing {
namespace {

namespace fs = std::filesystem;

struct TempRoot {
    TempRoot()
    {
        static int counter = 0;
        path = (fs::temp_directory_path() /
                ("myst_churn_test_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter++)))
                   .string();
        fs::create_directories(path);
    }
    ~TempRoot()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string path;
};

std::string
describe(const ChurnReport& r)
{
    return "site=" + r.site + " ops=" + std::to_string(r.operations) +
           " fired=" + std::to_string(r.faults_fired) +
           " leaked=" + std::to_string(r.exceptions) +
           " tmp=" + std::to_string(r.tmp_files) +
           " heal_builds=" + std::to_string(r.heal_builds) +
           (r.detail.empty() ? "" : (" detail: " + r.detail));
}

TEST(FaultChurn, EverySiteSurvivesEightThreadChurnAndHeals)
{
    TempRoot root;
    const std::vector<ChurnReport> reports =
        run_churn_all(root.path, /*seed=*/7, /*threads=*/8, /*ops_per_thread=*/8);

    ASSERT_EQ(reports.size(), fault_sites().size());
    for (const ChurnReport& r : reports) {
        EXPECT_TRUE(r.ok()) << describe(r);
        EXPECT_EQ(r.exceptions, 0u) << describe(r);
        EXPECT_EQ(r.tmp_files, 0u) << describe(r);
        EXPECT_TRUE(r.healed) << describe(r);
        EXPECT_EQ(r.heal_builds, 0u) << describe(r);
        EXPECT_GT(r.operations, 0u) << describe(r);
    }

    // run_churn disarms on return: nothing may leak into later tests.
    EXPECT_FALSE(FaultInjection::instance().should_fail("fs.rename"));
}

TEST(FaultChurn, FaultsActuallyFireDuringChurn)
{
    // A churn pass that never triggers its fault proves nothing.  The fs
    // write-path sites sit on every writeback, so firing is deterministic.
    TempRoot root;
    const ChurnReport r =
        run_churn("fs.rename", root.path + "/rename", /*seed=*/11, /*threads=*/8,
                  /*ops_per_thread=*/8);
    EXPECT_GT(r.faults_fired, 0u) << describe(r);
    EXPECT_TRUE(r.ok()) << describe(r);
}

TEST(FaultChurn, SweepSitesSurviveConcurrentDriverChurn)
{
    // The sweep-resilience sites churn through real ReplayDriver sweeps —
    // two concurrent drivers at parallelism 4 sharing one journal — and must
    // uphold the same contract: faults actually fire, nothing escapes, the
    // journal never tears, and a post-churn sweep is bit-identical to the
    // pre-churn reference.
    TempRoot root;
    for (const std::string site : {"sweep.group", "journal.write", "journal.load"}) {
        const ChurnReport r = run_sweep_churn(site, root.path + "/" + site, /*seed=*/7);
        EXPECT_GT(r.faults_fired, 0u) << describe(r);
        EXPECT_TRUE(r.ok()) << describe(r);
        EXPECT_EQ(r.exceptions, 0u) << describe(r);
        EXPECT_EQ(r.tmp_files, 0u) << describe(r);
        EXPECT_EQ(r.heal_builds, 0u) << describe(r);
        EXPECT_GT(r.operations, 0u) << describe(r);
    }
}

TEST(FaultChurn, ReportIsReproducibleForAFixedSeed)
{
    // Same (site, seed) ⇒ same trace working set.  Thread interleaving makes
    // exact fire counts racy, but the *verdict* and the deterministic fields
    // must match run to run.
    TempRoot root;
    const ChurnReport a =
        run_churn("store.load", root.path + "/a", 5, /*threads=*/4, /*ops_per_thread=*/6);
    const ChurnReport b =
        run_churn("store.load", root.path + "/b", 5, /*threads=*/4, /*ops_per_thread=*/6);
    EXPECT_EQ(a.ok(), b.ok()) << describe(a) << " vs " << describe(b);
    EXPECT_EQ(a.operations, b.operations);
    EXPECT_EQ(a.heal_builds, b.heal_builds);
}

} // namespace
} // namespace mystique::testing
