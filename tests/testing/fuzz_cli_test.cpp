/// In-process coverage for the mystique-fuzz CLI (testing/fuzz_cli.h):
/// flag parsing and usage errors (exit 2), the summary-line format, a real
/// passing corpus run (exit 0), a deterministic oracle mismatch via an armed
/// sweep.group fault (exit 1), and single-site churn via --churn-site.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "testing/fuzz_cli.h"

namespace mystique::testing {
namespace {

/// Runs run_fuzz_cli with tmpfile()-backed streams and returns the exit
/// code; captured stream text lands in @p out / @p err.
int
run_cli(const std::vector<std::string>& args, std::string* out, std::string* err)
{
    std::vector<const char*> argv;
    argv.push_back("mystique-fuzz");
    for (const std::string& a : args)
        argv.push_back(a.c_str());

    std::FILE* fout = std::tmpfile();
    std::FILE* ferr = std::tmpfile();
    EXPECT_NE(fout, nullptr);
    EXPECT_NE(ferr, nullptr);
    const int rc = run_fuzz_cli(static_cast<int>(argv.size()), argv.data(), fout, ferr);

    auto slurp = [](std::FILE* f) {
        std::fflush(f);
        std::rewind(f);
        std::string text;
        char buf[4096];
        std::size_t n = 0;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            text.append(buf, n);
        std::fclose(f);
        return text;
    };
    const std::string out_text = slurp(fout);
    const std::string err_text = slurp(ferr);
    if (out != nullptr)
        *out = out_text;
    if (err != nullptr)
        *err = err_text;
    return rc;
}

struct FaultGuard {
    FaultGuard() { FaultInjection::instance().disarm_all(); }
    ~FaultGuard() { FaultInjection::instance().disarm_all(); }
};

TEST(FuzzCli, SmallCorpusPassesAndSummarizes)
{
    FaultGuard guard;
    std::string out, err;
    const int rc = run_cli({"--seed", "7", "--iters", "2"}, &out, &err);
    EXPECT_EQ(rc, 0) << out << err;

    // The summary line is the CLI's machine-readable contract: one line,
    // fixed field order, status last.
    EXPECT_NE(out.find("mystique-fuzz: traces=2 checks="), std::string::npos) << out;
    EXPECT_NE(out.find(" mismatches=0 "), std::string::npos) << out;
    EXPECT_NE(out.find(" faults_fired=0 faults_survived=0 status=ok\n"),
              std::string::npos)
        << out;
    EXPECT_EQ(out.find("FAIL"), std::string::npos) << out;
}

TEST(FuzzCli, CaseReproducesExactlyOneSeed)
{
    FaultGuard guard;
    std::string out;
    const int rc = run_cli({"--case", "12345"}, &out, nullptr);
    EXPECT_EQ(rc, 0) << out;
    EXPECT_NE(out.find("traces=1 "), std::string::npos) << out;
}

TEST(FuzzCli, UsageErrorsExitTwo)
{
    FaultGuard guard;
    std::string err;

    EXPECT_EQ(run_cli({"--frobnicate"}, nullptr, &err), 2);
    EXPECT_NE(err.find("usage:"), std::string::npos) << err;

    EXPECT_EQ(run_cli({"--seed"}, nullptr, &err), 2);
    EXPECT_NE(err.find("--seed needs a value"), std::string::npos) << err;

    EXPECT_EQ(run_cli({"--seed", "banana"}, nullptr, &err), 2);
    EXPECT_NE(err.find("bad value for --seed: 'banana'"), std::string::npos) << err;

    EXPECT_EQ(run_cli({"--iters", "12x"}, nullptr, &err), 2);
    EXPECT_NE(err.find("bad value for --iters"), std::string::npos) << err;

    EXPECT_EQ(run_cli({"--case"}, nullptr, &err), 2);
    EXPECT_NE(err.find("--case needs a value"), std::string::npos) << err;

    EXPECT_EQ(run_cli({"--churn-site", "no.such.site"}, nullptr, &err), 2);
    EXPECT_NE(err.find("unknown fault site 'no.such.site'"), std::string::npos) << err;
}

TEST(FuzzCli, OracleMismatchExitsOneWithReproLine)
{
    // Arm one sweep.group fault: the oracle's sweep check requires all-ok
    // group statuses, so the CLI must fail deterministically — and print the
    // seed-carrying reproduce hint.
    FaultGuard guard;
    FaultInjection::instance().arm("sweep.group", 1, FaultMode::kOnce);
    std::string out;
    const int rc = run_cli({"--case", "99"}, &out, nullptr);
    EXPECT_EQ(rc, 1) << out;
    EXPECT_NE(out.find("FAIL case-seed=99 check=sweep-"), std::string::npos) << out;
    EXPECT_NE(out.find("reproduce: mystique-fuzz --case 99"), std::string::npos) << out;
    // The hint is self-describing: it names the check the rerun should watch.
    EXPECT_NE(out.find("(expect check=sweep-"), std::string::npos) << out;
    EXPECT_NE(out.find("status=FAILED"), std::string::npos) << out;
}

TEST(FuzzCli, ChurnSiteRunsExactlyOneSite)
{
    FaultGuard guard;
    const std::string dir =
        (std::filesystem::temp_directory_path() / "myst_fuzz_cli_churn_test").string();
    std::string out;
    const int rc =
        run_cli({"--churn-site", "journal.write", "--churn-dir", dir}, &out, nullptr);
    EXPECT_EQ(rc, 0) << out;
    EXPECT_NE(out.find("churn site=journal.write"), std::string::npos) << out;
    // One site only, and no corpus run rides along with churn-only mode.
    EXPECT_EQ(out.find("churn site=fs."), std::string::npos) << out;
    EXPECT_NE(out.find("traces=0 "), std::string::npos) << out;
    // The CLI reaps its scratch directory.
    EXPECT_FALSE(std::filesystem::exists(dir));
}

} // namespace
} // namespace mystique::testing
