/// Fuzzer determinism and corpus-diversity guarantees: equal seeds replay
/// byte-identical cases (the foundation of the seed-reproduction workflow),
/// distinct seeds decorrelate, and a modest corpus actually exercises the
/// axes the generator claims to randomize.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "framework/session.h"
#include "testing/trace_fuzzer.h"

namespace mystique::testing {
namespace {

TEST(TraceFuzzer, EqualSeedsProduceIdenticalCases)
{
    for (const uint64_t seed : {uint64_t{1}, uint64_t{7}, uint64_t{0xDEADBEEF}}) {
        const FuzzedCase a = generate_case(seed);
        const FuzzedCase b = generate_case(seed);
        EXPECT_EQ(a.summary, b.summary) << "seed " << seed;
        EXPECT_EQ(a.trace.structural_fingerprint(), b.trace.structural_fingerprint())
            << "seed " << seed;
        // Node/tensor IDs come from process-global counters, so two
        // generations in one process shift raw IDs (byte-identity holds per
        // fresh process — the `mystique-fuzz --case` repro path); everything
        // structural must still match node for node.
        ASSERT_EQ(a.trace.size(), b.trace.size()) << "seed " << seed;
        for (std::size_t i = 0; i < a.trace.size(); ++i) {
            EXPECT_EQ(a.trace.nodes()[i].name, b.trace.nodes()[i].name)
                << "seed " << seed << " node " << i;
        }
        EXPECT_EQ(a.prof.kernels().size(), b.prof.kernels().size()) << "seed " << seed;
        EXPECT_EQ(a.use_prof, b.use_prof) << "seed " << seed;
        EXPECT_EQ(a.cfg.mode, b.cfg.mode) << "seed " << seed;
        EXPECT_EQ(a.cfg.seed, b.cfg.seed) << "seed " << seed;
    }
}

TEST(TraceFuzzer, DistinctSeedsDecorrelate)
{
    // Not every pair must differ, but a run of neighboring seeds collapsing
    // to one structure would mean the seed isn't reaching the generator.
    std::set<uint64_t> fingerprints;
    std::set<std::string> summaries;
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        const FuzzedCase c = generate_case(seed);
        fingerprints.insert(c.trace.structural_fingerprint());
        summaries.insert(c.summary);
    }
    EXPECT_GE(fingerprints.size(), 8u);
    EXPECT_EQ(summaries.size(), 12u); // summary embeds the seed
}

TEST(TraceFuzzer, CaseSeedDerivationIsInjectiveEnough)
{
    std::set<uint64_t> derived;
    for (uint64_t i = 0; i < 1000; ++i)
        derived.insert(case_seed(7, i));
    EXPECT_EQ(derived.size(), 1000u);
    // Different base seeds give different corpora.
    EXPECT_NE(case_seed(7, 0), case_seed(8, 0));
}

TEST(TraceFuzzer, CorpusCoversTheAdvertisedAxes)
{
    // 40 cases must between them hit both exec modes, prof-ful and prof-less
    // builds, autograd, and at least one collective program — otherwise the
    // generator's probability knobs have silently drifted to a corner.
    bool saw_numeric = false, saw_shape = false, saw_prof = false;
    bool saw_no_prof = false, saw_backward = false, saw_comm = false;
    for (uint64_t i = 0; i < 40; ++i) {
        const FuzzedCase c = generate_case(case_seed(40, i));
        EXPECT_GT(c.trace.size(), 0u) << c.summary;
        saw_numeric |= c.cfg.mode == fw::ExecMode::kNumeric;
        saw_shape |= c.cfg.mode == fw::ExecMode::kShapeOnly;
        saw_prof |= c.use_prof;
        saw_no_prof |= !c.use_prof;
        saw_backward |= c.summary.find("backward") != std::string::npos;
        saw_comm |= c.summary.find("comm") != std::string::npos;
    }
    EXPECT_TRUE(saw_numeric);
    EXPECT_TRUE(saw_shape);
    EXPECT_TRUE(saw_prof);
    EXPECT_TRUE(saw_no_prof);
    EXPECT_TRUE(saw_backward);
    EXPECT_TRUE(saw_comm);
}

} // namespace
} // namespace mystique::testing
