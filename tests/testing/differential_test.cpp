/// Differential-oracle smoke corpus: a fixed-seed batch of fuzzed cases must
/// pass every equivalence check (replay-vs-direct, opt-level invariance,
/// plan round-trip, key stability) plus the K=1-vs-K=4 sweep bit-identity
/// check, with counters that add up.  This is the in-tree slice of the
/// 500-trace acceptance corpus the `mystique-fuzz` CLI runs in CI.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testing/differential.h"
#include "testing/trace_fuzzer.h"

namespace mystique::testing {
namespace {

std::string
describe_failures(const DifferentialOracle& oracle)
{
    std::string out;
    for (const DiffFailure& f : oracle.failures())
        out += "case-seed=" + std::to_string(f.seed) + " check=" + f.check + ": " +
               f.detail + "\n";
    return out;
}

TEST(DifferentialOracle, FixedSeedCorpusPassesAllChecks)
{
    constexpr uint64_t kBaseSeed = 7;
    constexpr uint64_t kCases = 12;

    DifferentialOracle oracle;
    std::vector<FuzzedCase> corpus;
    corpus.reserve(kCases);
    for (uint64_t i = 0; i < kCases; ++i) {
        corpus.push_back(generate_case(case_seed(kBaseSeed, i)));
        oracle.check_case(corpus.back());
    }
    oracle.check_sweep(corpus);

    EXPECT_TRUE(oracle.ok()) << describe_failures(oracle);
    EXPECT_EQ(oracle.counters().traces, kCases);
    EXPECT_EQ(oracle.counters().mismatches, oracle.failures().size());
    // Five per-case checks (replay-vs-direct, opt-level, plan round-trip,
    // key stability, stream identity) plus the two corpus-level sweep
    // checks (parallelism invariance and journal resume / resilience).
    EXPECT_EQ(oracle.counters().checks, kCases * 5 + 2);
}

TEST(DifferentialOracle, SweepCheckHandlesEmptyAndSingletonCorpora)
{
    DifferentialOracle oracle;
    oracle.check_sweep({}); // no cases: nothing to compare, nothing to crash

    const std::vector<FuzzedCase> one{generate_case(case_seed(3, 0))};
    oracle.check_sweep(one);
    EXPECT_TRUE(oracle.ok()) << describe_failures(oracle);
}

} // namespace
} // namespace mystique::testing
