/// Tests for the device model: roofline cost, stream FIFO placement, metric
/// windows, microarchitectural metrics, and power/DVFS behaviour.

#include <gtest/gtest.h>

#include "common/error.h"

#include "device/cost_model.h"
#include "device/device.h"
#include "device/platform.h"
#include "device/power_model.h"

namespace mystique::dev {
namespace {

KernelDesc
gemm_desc(double gflops)
{
    KernelDesc d;
    d.name = "test_gemm";
    d.kind = KernelKind::kGemm;
    d.flops = gflops * 1e9;
    d.bytes = 50e6;
    d.working_set_bytes = 50e6;
    d.parallelism = 1e6;
    return d;
}

KernelDesc
memcpy_desc(double mb)
{
    KernelDesc d;
    d.name = "test_memcpy";
    d.kind = KernelKind::kMemcpy;
    d.flops = 0;
    d.bytes = mb * 1e6;
    d.working_set_bytes = d.bytes;
    d.parallelism = 1e6;
    return d;
}

TEST(Platform, BuiltinsResolve)
{
    for (const auto& name : builtin_platforms()) {
        const PlatformSpec p = platform(name);
        EXPECT_EQ(p.name, name);
        EXPECT_GT(p.peak_gflops, 0.0);
        EXPECT_GT(p.mem_bw_gbps, 0.0);
    }
    EXPECT_THROW(platform("H100"), ConfigError);
}

TEST(Platform, RelativeCapabilities)
{
    // Expected orderings drive the cross-platform figures.
    EXPECT_GT(a100().peak_gflops, v100().peak_gflops);
    EXPECT_GT(a100().mem_bw_gbps, v100().mem_bw_gbps);
    EXPECT_GT(v100().peak_gflops, cpu().peak_gflops);
    EXPECT_GT(new_platform().peak_gflops, a100().peak_gflops);
    EXPECT_FALSE(cpu().is_gpu);
}

TEST(CostModel, ComputeBoundScalesWithFlops)
{
    const PlatformSpec p = a100();
    const double t1 = kernel_time(gemm_desc(10), p).total_us(1.0);
    const double t2 = kernel_time(gemm_desc(20), p).total_us(1.0);
    EXPECT_GT(t2, t1 * 1.8);
}

TEST(CostModel, MemoryBoundScalesWithBytes)
{
    const PlatformSpec p = a100();
    const double t1 = kernel_time(memcpy_desc(100), p).total_us(1.0);
    const double t2 = kernel_time(memcpy_desc(200), p).total_us(1.0);
    EXPECT_NEAR(t2 - p.kernel_launch_us, 2.0 * (t1 - p.kernel_launch_us), 1e-6);
}

TEST(CostModel, FasterPlatformIsFaster)
{
    const KernelDesc d = gemm_desc(50);
    EXPECT_LT(kernel_time(d, a100()).total_us(1.0), kernel_time(d, v100()).total_us(1.0));
    EXPECT_LT(kernel_time(d, v100()).total_us(1.0), kernel_time(d, cpu()).total_us(1.0));
}

TEST(CostModel, FreqScaleAffectsComputeOnly)
{
    const PlatformSpec p = a100();
    const KernelTime compute = kernel_time(gemm_desc(100), p);
    EXPECT_NEAR(compute.total_us(0.5) - p.kernel_launch_us,
                2.0 * (compute.total_us(1.0) - p.kernel_launch_us), 1e-6);
    const KernelTime mem = kernel_time(memcpy_desc(500), p);
    EXPECT_DOUBLE_EQ(mem.total_us(0.5), mem.total_us(1.0));
}

TEST(CostModel, SmallKernelPenalty)
{
    const PlatformSpec p = a100();
    KernelDesc small = gemm_desc(0.01);
    small.parallelism = 64; // far below one wave
    KernelDesc big = small;
    big.parallelism = 1e6;
    EXPECT_GT(kernel_time(small, p).compute_us, kernel_time(big, p).compute_us);
}

TEST(CostModel, EmbeddingLocalityImprovesBandwidth)
{
    EXPECT_GT(memory_efficiency(KernelKind::kEmbedding, 0.9),
              memory_efficiency(KernelKind::kEmbedding, 0.1));
}

TEST(CostModel, EfficienciesBounded)
{
    for (int k = 0; k <= static_cast<int>(KernelKind::kOther); ++k) {
        const auto kind = static_cast<KernelKind>(k);
        EXPECT_GT(compute_efficiency(kind), 0.0);
        EXPECT_LE(compute_efficiency(kind), 1.0);
        EXPECT_GT(memory_efficiency(kind, 0.5), 0.0);
        EXPECT_LE(memory_efficiency(kind, 0.5), 1.0);
    }
}

TEST(MicroMetrics, Bounded)
{
    const PlatformSpec p = a100();
    for (double gf : {0.001, 0.1, 10.0, 1000.0}) {
        const MicroMetrics m = micro_metrics(gemm_desc(gf), p);
        EXPECT_GE(m.ipc, 0.0);
        EXPECT_LE(m.ipc, p.ipc_peak);
        EXPECT_GE(m.l1_hit_rate, 0.0);
        EXPECT_LE(m.l1_hit_rate, 1.0);
        EXPECT_GE(m.l2_hit_rate, 0.0);
        EXPECT_LE(m.l2_hit_rate, 1.0);
        EXPECT_GE(m.sm_throughput, 0.0);
        EXPECT_LE(m.sm_throughput, 1.0);
    }
}

TEST(MicroMetrics, ComputeBoundHasHigherIpc)
{
    const PlatformSpec p = a100();
    const MicroMetrics compute = micro_metrics(gemm_desc(500), p);
    const MicroMetrics memory = micro_metrics(memcpy_desc(500), p);
    EXPECT_GT(compute.ipc, memory.ipc);
}

TEST(MicroMetrics, SmallerWorkingSetHitsCaches)
{
    const PlatformSpec p = a100();
    KernelDesc small = gemm_desc(1);
    small.working_set_bytes = 1e5;
    KernelDesc large = gemm_desc(1);
    large.working_set_bytes = 1e10;
    EXPECT_GT(micro_metrics(small, p).l2_hit_rate, micro_metrics(large, p).l2_hit_rate);
}

TEST(MicroMetrics, Deterministic)
{
    const PlatformSpec p = a100();
    const MicroMetrics a = micro_metrics(gemm_desc(3), p);
    const MicroMetrics b = micro_metrics(gemm_desc(3), p);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_DOUBLE_EQ(a.l1_hit_rate, b.l1_hit_rate);
}

TEST(Device, StreamFifoOrdering)
{
    Device dev(a100());
    const auto& k1 = dev.launch(gemm_desc(10), kComputeStream, 0.0);
    const double k1_end = k1.interval.end;
    const auto& k2 = dev.launch(gemm_desc(10), kComputeStream, 0.0);
    EXPECT_GE(k2.interval.start, k1_end); // FIFO: no overlap within a stream
}

TEST(Device, StreamsOverlap)
{
    Device dev(a100());
    const auto& k1 = dev.launch(gemm_desc(100), kComputeStream, 0.0);
    const auto& k2 = dev.launch(memcpy_desc(100), kMemcpyStream, 0.0);
    EXPECT_TRUE(k1.interval.overlaps(k2.interval));
}

TEST(Device, ReadyTimeHonoured)
{
    Device dev(a100());
    const auto& k = dev.launch(gemm_desc(1), kComputeStream, 500.0);
    EXPECT_DOUBLE_EQ(k.interval.start, 500.0);
}

TEST(Device, FixedDurationOverride)
{
    Device dev(a100());
    const auto& k = dev.launch(gemm_desc(100), kCommStream, 0.0, nullptr, 123.0);
    EXPECT_DOUBLE_EQ(k.interval.duration(), 123.0);
}

TEST(Device, SyncAllIsMaxTail)
{
    Device dev(a100());
    dev.launch(gemm_desc(10), kComputeStream, 0.0);
    dev.launch(memcpy_desc(1), kMemcpyStream, 0.0);
    EXPECT_DOUBLE_EQ(dev.sync_all(),
                     std::max(dev.stream_tail(kComputeStream), dev.stream_tail(kMemcpyStream)));
}

TEST(Device, JitterVariesButBounded)
{
    Rng rng(5);
    Device dev(a100());
    const double base = kernel_time(gemm_desc(10), a100()).total_us(1.0);
    for (int i = 0; i < 50; ++i) {
        const auto& k = dev.launch(gemm_desc(10), kComputeStream, 1e9 * i);
        (void)k;
    }
    dev.reset();
    double min_d = 1e18, max_d = 0.0;
    for (int i = 0; i < 50; ++i) {
        const auto& k = dev.launch(gemm_desc(10), kComputeStream, 0.0, &rng);
        min_d = std::min(min_d, k.interval.duration());
        max_d = std::max(max_d, k.interval.duration());
    }
    EXPECT_LT(max_d, base * 1.12);
    EXPECT_GT(min_d, base * 0.88);
    EXPECT_NE(min_d, max_d);
}

TEST(Device, MetricsWindowProRata)
{
    Device dev(a100());
    const auto& k = dev.launch(memcpy_desc(100), kComputeStream, 0.0);
    const double end = k.interval.end;
    const DeviceMetrics full = dev.metrics(0.0, end);
    const DeviceMetrics half = dev.metrics(0.0, end / 2.0);
    // Bandwidth sustained over the kernel is flat, so window halving keeps
    // GB/s roughly constant while total bytes halve.
    EXPECT_NEAR(half.hbm_gbps, full.hbm_gbps, full.hbm_gbps * 0.1);
    EXPECT_GT(full.kernel_time_us, half.kernel_time_us);
}

TEST(Device, EmptyWindowIsIdle)
{
    Device dev(a100());
    const DeviceMetrics m = dev.metrics(0.0, 0.0);
    EXPECT_DOUBLE_EQ(m.sm_util_pct, 0.0);
}

TEST(Device, PowerIncludesIdle)
{
    Device dev(a100());
    dev.launch(gemm_desc(100), kComputeStream, 0.0);
    const DeviceMetrics m = dev.metrics(0.0, dev.sync_all());
    EXPECT_GT(m.power_w, a100().idle_power_w);
    EXPECT_LT(m.power_w, a100().tdp_w * 1.05);
}

TEST(PowerModel, FreqScaleMonotoneInLimit)
{
    const PowerModel pm(a100());
    double prev = 0.0;
    for (double limit : {100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0}) {
        const double s = pm.freq_scale_for_limit(limit);
        EXPECT_GE(s, prev);
        EXPECT_GE(s, a100().min_freq_scale);
        EXPECT_LE(s, 1.0);
        prev = s;
    }
    EXPECT_DOUBLE_EQ(pm.freq_scale_for_limit(a100().tdp_w), 1.0);
}

TEST(PowerModel, LowPowerLimitSlowsComputeKernels)
{
    Device fast(a100(), 400.0);
    Device slow(a100(), 150.0);
    const double tf = fast.launch(gemm_desc(100), kComputeStream, 0.0).interval.duration();
    const double ts = slow.launch(gemm_desc(100), kComputeStream, 0.0).interval.duration();
    EXPECT_GT(ts, tf * 1.2);
}

TEST(PowerModel, SetPowerLimitUpdatesFreqScale)
{
    Device dev(a100());
    EXPECT_DOUBLE_EQ(dev.freq_scale(), 1.0);
    dev.set_power_limit(150.0);
    EXPECT_LT(dev.freq_scale(), 1.0);
    EXPECT_THROW(dev.set_power_limit(0.0), InternalError);
}

class PowerSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(PowerSweepTest, EnergyPerKernelDecreasesWithLimit)
{
    // Dynamic energy of a compute kernel should not increase as the power
    // limit drops (frequency scaling trades time for power superlinearly).
    const double limit = GetParam();
    Device dev(a100(), limit);
    const auto& k = dev.launch(gemm_desc(100), kComputeStream, 0.0);
    const double avg_power = k.dynamic_energy / k.interval.duration();
    EXPECT_LE(avg_power, a100().max_dynamic_power_w + 1e-9);
    EXPECT_GE(avg_power, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Limits, PowerSweepTest,
                         ::testing::Values(100.0, 150.0, 200.0, 250.0, 300.0, 350.0,
                                           400.0));

} // namespace
} // namespace mystique::dev
