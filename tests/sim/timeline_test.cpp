/// Tests for virtual-time primitives, including the exposed-time analysis
/// behind the paper's Figure 2.

#include <gtest/gtest.h>

#include "common/error.h"

#include "sim/timeline.h"

namespace mystique::sim {
namespace {

TEST(UnionLength, Disjoint)
{
    EXPECT_DOUBLE_EQ(union_length({{0, 1}, {2, 3}}), 2.0);
}

TEST(UnionLength, Overlapping)
{
    EXPECT_DOUBLE_EQ(union_length({{0, 2}, {1, 3}}), 3.0);
}

TEST(UnionLength, Nested)
{
    EXPECT_DOUBLE_EQ(union_length({{0, 10}, {2, 3}, {4, 5}}), 10.0);
}

TEST(UnionLength, Empty)
{
    EXPECT_DOUBLE_EQ(union_length({}), 0.0);
}

TEST(UnionLength, Touching)
{
    EXPECT_DOUBLE_EQ(union_length({{0, 1}, {1, 2}}), 2.0);
}

TEST(Span, Basics)
{
    const Interval s = span({{3, 4}, {1, 2}, {5, 9}});
    EXPECT_DOUBLE_EQ(s.start, 1.0);
    EXPECT_DOUBLE_EQ(s.end, 9.0);
}

TEST(ExposedTime, FullyCovered)
{
    EXPECT_DOUBLE_EQ(exposed_time({2, 4}, {{0, 10}}), 0.0);
}

TEST(ExposedTime, FullyExposed)
{
    EXPECT_DOUBLE_EQ(exposed_time({2, 4}, {{5, 10}}), 2.0);
}

TEST(ExposedTime, PartialOverlap)
{
    // comm kernel [0,10); compute covers [3,7) → exposed = 6
    EXPECT_DOUBLE_EQ(exposed_time({0, 10}, {{3, 7}}), 6.0);
}

TEST(ExposedTime, MultipleCoverings)
{
    EXPECT_DOUBLE_EQ(exposed_time({0, 10}, {{0, 2}, {1, 3}, {8, 12}}), 5.0);
}

TEST(TotalExposedTime, SumsPerTarget)
{
    const std::vector<Interval> others{{0, 5}};
    EXPECT_DOUBLE_EQ(total_exposed_time({{0, 10}, {4, 6}}, others), 6.0);
}

TEST(VirtualClock, AdvanceAccumulates)
{
    VirtualClock c;
    EXPECT_DOUBLE_EQ(c.now(), 0.0);
    c.advance(5.0);
    c.advance(2.5);
    EXPECT_DOUBLE_EQ(c.now(), 7.5);
}

TEST(VirtualClock, AdvanceToOnlyForward)
{
    VirtualClock c;
    c.advance_to(10.0);
    EXPECT_DOUBLE_EQ(c.now(), 10.0);
    c.advance_to(3.0); // no-op: time never goes backwards
    EXPECT_DOUBLE_EQ(c.now(), 10.0);
}

TEST(VirtualClock, NegativeAdvanceRejected)
{
    VirtualClock c;
    EXPECT_THROW(c.advance(-1.0), InternalError);
}

TEST(Interval, OverlapPredicate)
{
    const Interval a{0, 5};
    EXPECT_TRUE(a.overlaps({4, 6}));
    EXPECT_FALSE(a.overlaps({5, 6})); // half-open
    EXPECT_TRUE(a.overlaps({-1, 1}));
    EXPECT_FALSE(a.overlaps({-2, 0}));
}

} // namespace
} // namespace mystique::sim
