/// Tests for virtual-time primitives, including the exposed-time analysis
/// behind the paper's Figure 2.

#include <gtest/gtest.h>

#include "common/error.h"

#include "sim/timeline.h"

namespace mystique::sim {
namespace {

TEST(UnionLength, Disjoint)
{
    EXPECT_DOUBLE_EQ(union_length({{0, 1}, {2, 3}}), 2.0);
}

TEST(UnionLength, Overlapping)
{
    EXPECT_DOUBLE_EQ(union_length({{0, 2}, {1, 3}}), 3.0);
}

TEST(UnionLength, Nested)
{
    EXPECT_DOUBLE_EQ(union_length({{0, 10}, {2, 3}, {4, 5}}), 10.0);
}

TEST(UnionLength, Empty)
{
    EXPECT_DOUBLE_EQ(union_length({}), 0.0);
}

TEST(UnionLength, Touching)
{
    EXPECT_DOUBLE_EQ(union_length({{0, 1}, {1, 2}}), 2.0);
}

TEST(Span, Basics)
{
    const Interval s = span({{3, 4}, {1, 2}, {5, 9}});
    EXPECT_DOUBLE_EQ(s.start, 1.0);
    EXPECT_DOUBLE_EQ(s.end, 9.0);
}

TEST(ExposedTime, FullyCovered)
{
    EXPECT_DOUBLE_EQ(exposed_time({2, 4}, {{0, 10}}), 0.0);
}

TEST(ExposedTime, FullyExposed)
{
    EXPECT_DOUBLE_EQ(exposed_time({2, 4}, {{5, 10}}), 2.0);
}

TEST(ExposedTime, PartialOverlap)
{
    // comm kernel [0,10); compute covers [3,7) → exposed = 6
    EXPECT_DOUBLE_EQ(exposed_time({0, 10}, {{3, 7}}), 6.0);
}

TEST(ExposedTime, MultipleCoverings)
{
    EXPECT_DOUBLE_EQ(exposed_time({0, 10}, {{0, 2}, {1, 3}, {8, 12}}), 5.0);
}

TEST(TotalExposedTime, SumsPerTarget)
{
    const std::vector<Interval> others{{0, 5}};
    EXPECT_DOUBLE_EQ(total_exposed_time({{0, 10}, {4, 6}}, others), 6.0);
}

TEST(VirtualClock, AdvanceAccumulates)
{
    VirtualClock c;
    EXPECT_DOUBLE_EQ(c.now(), 0.0);
    c.advance(5.0);
    c.advance(2.5);
    EXPECT_DOUBLE_EQ(c.now(), 7.5);
}

TEST(VirtualClock, AdvanceToOnlyForward)
{
    VirtualClock c;
    c.advance_to(10.0);
    EXPECT_DOUBLE_EQ(c.now(), 10.0);
    c.advance_to(3.0); // no-op: time never goes backwards
    EXPECT_DOUBLE_EQ(c.now(), 10.0);
}

TEST(VirtualClock, NegativeAdvanceRejected)
{
    VirtualClock c;
    EXPECT_THROW(c.advance(-1.0), InternalError);
}

TEST(Interval, OverlapPredicate)
{
    const Interval a{0, 5};
    EXPECT_TRUE(a.overlaps({4, 6}));
    EXPECT_FALSE(a.overlaps({5, 6})); // half-open
    EXPECT_TRUE(a.overlaps({-1, 1}));
    EXPECT_FALSE(a.overlaps({-2, 0}));
}

TEST(MultiStreamTimeline, EmptyIsAllZero)
{
    MultiStreamTimeline t;
    EXPECT_EQ(t.stream_count(), 0u);
    EXPECT_DOUBLE_EQ(t.span_end(), 0.0);
    EXPECT_DOUBLE_EQ(t.serialized_length(), 0.0);
    EXPECT_DOUBLE_EQ(t.overlap_excess(), 0.0);
    EXPECT_DOUBLE_EQ(t.contended_finish(0.5), 0.0);
}

TEST(MultiStreamTimeline, SingleStreamMatchesSerializedModel)
{
    // One stream = the old single-stream executor: back-to-back kernels, no
    // overlap, no contention at any alpha.
    MultiStreamTimeline t;
    t.add(7, {0, 4});
    t.add(7, {4, 10});
    EXPECT_EQ(t.stream_count(), 1u);
    EXPECT_DOUBLE_EQ(t.span_end(), 10.0);
    EXPECT_DOUBLE_EQ(t.serialized_length(), 10.0);
    EXPECT_DOUBLE_EQ(t.overlap_excess(), 0.0);
    EXPECT_DOUBLE_EQ(t.contended_finish(1000.0), 10.0);
}

TEST(MultiStreamTimeline, TwoStreamOverlapShortensCriticalPath)
{
    // Two streams each busy [0,10): concurrent finish is 10, the serialized
    // walk would take 20, and all 10 units of busy time ran concurrently.
    MultiStreamTimeline t;
    t.add(7, {0, 10});
    t.add(9, {0, 10});
    EXPECT_EQ(t.stream_count(), 2u);
    EXPECT_DOUBLE_EQ(t.span_end(), 10.0);
    EXPECT_DOUBLE_EQ(t.serialized_length(), 20.0);
    EXPECT_LT(t.span_end(), t.serialized_length());
    EXPECT_DOUBLE_EQ(t.overlap_excess(), 10.0);
    // alpha interpolates between free overlap and full serialization.
    EXPECT_DOUBLE_EQ(t.contended_finish(0.0), 10.0);
    EXPECT_DOUBLE_EQ(t.contended_finish(0.5), 15.0);
    EXPECT_DOUBLE_EQ(t.contended_finish(1.0), t.serialized_length());
}

TEST(MultiStreamTimeline, DisjointStreamsPayNoPenalty)
{
    // Comm on [10,20) after compute on [0,10): overlap never happened, so
    // contention must not be charged even across streams.
    MultiStreamTimeline t;
    t.add(7, {0, 10});
    t.add(20, {10, 20});
    EXPECT_DOUBLE_EQ(t.span_end(), 20.0);
    EXPECT_DOUBLE_EQ(t.overlap_excess(), 0.0);
    EXPECT_DOUBLE_EQ(t.contended_finish(0.05), 20.0);
}

TEST(MultiStreamTimeline, PartialOverlapCountsOnlyTheConcurrentPortion)
{
    // Stream 7 busy [0,10), stream 9 busy [6,14): only [6,10) is concurrent.
    MultiStreamTimeline t;
    t.add(7, {0, 10});
    t.add(9, {6, 14});
    EXPECT_DOUBLE_EQ(t.span_end(), 14.0);
    EXPECT_DOUBLE_EQ(t.serialized_length(), 18.0);
    EXPECT_DOUBLE_EQ(t.overlap_excess(), 4.0);
    EXPECT_DOUBLE_EQ(t.contended_finish(0.5), 16.0);
}

TEST(MultiStreamTimeline, IntraStreamOverlapIsNotContention)
{
    // Overlapping intervals on the SAME stream (an artifact the per-stream
    // union must absorb) contribute no cross-stream excess.
    MultiStreamTimeline t;
    t.add(7, {0, 10});
    t.add(7, {5, 12});
    EXPECT_DOUBLE_EQ(t.span_end(), 12.0);
    EXPECT_DOUBLE_EQ(t.overlap_excess(), 0.0);
}

TEST(MultiStreamTimeline, InsertionOrderIndependent)
{
    // The model is a pure function of the interval multiset — the async
    // executor's bit-identity across schedules depends on it.
    MultiStreamTimeline a;
    a.add(7, {0, 4});
    a.add(9, {2, 6});
    a.add(7, {4, 8});
    a.add(20, {1, 3});

    MultiStreamTimeline b;
    b.add(20, {1, 3});
    b.add(7, {4, 8});
    b.add(7, {0, 4});
    b.add(9, {2, 6});

    EXPECT_EQ(a.stream_count(), b.stream_count());
    EXPECT_DOUBLE_EQ(a.span_end(), b.span_end());
    EXPECT_DOUBLE_EQ(a.serialized_length(), b.serialized_length());
    EXPECT_DOUBLE_EQ(a.overlap_excess(), b.overlap_excess());
    EXPECT_DOUBLE_EQ(a.contended_finish(0.05), b.contended_finish(0.05));
}

TEST(MultiStreamTimeline, ResetClears)
{
    MultiStreamTimeline t;
    t.add(7, {0, 10});
    t.add(9, {0, 10});
    t.reset();
    EXPECT_EQ(t.stream_count(), 0u);
    EXPECT_DOUBLE_EQ(t.overlap_excess(), 0.0);
    EXPECT_DOUBLE_EQ(t.span_end(), 0.0);
}

} // namespace
} // namespace mystique::sim
