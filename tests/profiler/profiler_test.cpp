/// Tests for the profiler trace: breakdowns, exposed time, chrome export.

#include <gtest/gtest.h>

#include "profiler/profiler.h"

namespace mystique::prof {
namespace {

CpuOpEvent
cpu(const std::string& name, double ts, double dur, int64_t node, bool wrapper = false,
    dev::OpCategory cat = dev::OpCategory::kATen)
{
    CpuOpEvent e;
    e.name = name;
    e.ts = ts;
    e.dur = dur;
    e.node_id = node;
    e.is_wrapper = wrapper;
    e.category = cat;
    return e;
}

KernelEvent
kernel(const std::string& name, int stream, double ts, double dur, int64_t corr,
       dev::OpCategory cat = dev::OpCategory::kATen)
{
    KernelEvent e;
    e.name = name;
    e.stream = stream;
    e.ts = ts;
    e.dur = dur;
    e.correlation = corr;
    e.category = cat;
    return e;
}

TEST(ProfilerTrace, SpanCoversEverything)
{
    ProfilerTrace t;
    t.add_cpu_op(cpu("a", 10, 5, 1));
    t.add_kernel(kernel("k", 7, 12, 20, 1));
    const auto s = t.span();
    EXPECT_DOUBLE_EQ(s.start, 10.0);
    EXPECT_DOUBLE_EQ(s.end, 32.0);
}

TEST(ProfilerTrace, KernelsForNodeAndStreams)
{
    ProfilerTrace t;
    t.add_kernel(kernel("k1", 7, 0, 5, 3));
    t.add_kernel(kernel("k2", 20, 5, 5, 3));
    t.add_kernel(kernel("k3", 7, 10, 5, 4));
    EXPECT_EQ(t.kernels_for_node(3).size(), 2u);
    EXPECT_EQ(t.streams_for_node(3), (std::vector<int>{7, 20}));
    EXPECT_EQ(t.streams_for_node(99).size(), 0u);
}

TEST(ProfilerTrace, CategoryBreakdownSelfTime)
{
    ProfilerTrace t;
    // Parent composite [0,10) with nested child [2,6): self times 6 and 4.
    t.add_cpu_op(cpu("aten::linear", 0, 10, 1));
    t.add_cpu_op(cpu("aten::addmm", 2, 4, 2));
    const auto rows = t.category_breakdown();
    const auto& aten = rows.at(dev::OpCategory::kATen);
    EXPECT_EQ(aten.count, 2);
    EXPECT_DOUBLE_EQ(aten.cpu_time_us, 10.0); // 6 + 4, no double counting
}

TEST(ProfilerTrace, WrappersExcludedFromCounts)
{
    ProfilerTrace t;
    t.add_cpu_op(cpu("## fwd ##", 0, 10, 1, /*wrapper=*/true, dev::OpCategory::kOther));
    t.add_cpu_op(cpu("aten::relu", 1, 2, 2));
    const auto rows = t.category_breakdown();
    EXPECT_EQ(rows.count(dev::OpCategory::kOther), 0u);
    EXPECT_EQ(rows.at(dev::OpCategory::kATen).count, 1);
}

TEST(ProfilerTrace, ExposedGpuTimePerCategory)
{
    ProfilerTrace t;
    // Comm kernel [0,10); compute kernel [4,8) overlaps 4 → comm exposed 6.
    t.add_kernel(kernel("nccl", 20, 0, 10, 1, dev::OpCategory::kComm));
    t.add_kernel(kernel("gemm", 7, 4, 4, 2, dev::OpCategory::kATen));
    const auto rows = t.category_breakdown();
    EXPECT_DOUBLE_EQ(rows.at(dev::OpCategory::kComm).gpu_time_us, 10.0);
    EXPECT_DOUBLE_EQ(rows.at(dev::OpCategory::kComm).exposed_gpu_time_us, 6.0);
    EXPECT_DOUBLE_EQ(rows.at(dev::OpCategory::kATen).exposed_gpu_time_us, 0.0);
}

TEST(ProfilerTrace, TopKernelsAggregatesByName)
{
    ProfilerTrace t;
    t.add_kernel(kernel("small", 7, 0, 1, 1));
    t.add_kernel(kernel("big", 7, 1, 10, 2));
    t.add_kernel(kernel("big", 7, 11, 10, 3));
    const auto top = t.top_kernels_by_time(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].first, "big");
    EXPECT_DOUBLE_EQ(top[0].second, 20.0);
}

TEST(ProfilerTrace, ChromeExportStructure)
{
    ProfilerTrace t;
    t.add_cpu_op(cpu("aten::relu", 0, 5, 1));
    t.add_kernel(kernel("relu_k", 7, 5, 3, 1));
    const Json doc = t.to_chrome_trace();
    const auto& events = doc.at("traceEvents").as_array();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].at("ph").as_string(), "X");
    EXPECT_EQ(events[0].at("pid").as_int(), 1); // CPU process
    EXPECT_EQ(events[1].at("pid").as_int(), 0); // GPU process
    EXPECT_EQ(events[1].at("tid").as_int(), 7); // stream as tid
}

TEST(ProfilerTrace, JsonRoundTrip)
{
    ProfilerTrace t;
    t.add_cpu_op(cpu("aten::mm", 1, 4, 11));
    KernelEvent k = kernel("sgemm", 7, 5, 100, 11);
    k.flops = 1e9;
    k.bytes = 1e6;
    k.micro.ipc = 3.0;
    t.add_kernel(k);
    const ProfilerTrace back = ProfilerTrace::from_json(t.to_json());
    ASSERT_EQ(back.cpu_ops().size(), 1u);
    ASSERT_EQ(back.kernels().size(), 1u);
    EXPECT_EQ(back.kernels()[0].name, "sgemm");
    EXPECT_DOUBLE_EQ(back.kernels()[0].flops, 1e9);
    EXPECT_DOUBLE_EQ(back.kernels()[0].micro.ipc, 3.0);
}

TEST(ProfilerSession, OnlyRecordsWhileActive)
{
    ProfilerSession p;
    p.record_cpu_op(cpu("dropped", 0, 1, 1));
    p.start();
    p.record_cpu_op(cpu("kept", 1, 1, 2));
    p.stop();
    p.record_cpu_op(cpu("dropped2", 2, 1, 3));
    EXPECT_EQ(p.trace().cpu_ops().size(), 1u);
    EXPECT_EQ(p.trace().cpu_ops()[0].name, "kept");
}

} // namespace
} // namespace mystique::prof
