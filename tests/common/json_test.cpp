/// Tests for the JSON value type, parser and serializer.

#include <gtest/gtest.h>

#include <cmath>

#include "common/json.h"

namespace mystique {
namespace {

TEST(Json, DefaultIsNull)
{
    Json j;
    EXPECT_TRUE(j.is_null());
    EXPECT_EQ(j.dump(), "null");
}

TEST(Json, BoolRoundTrip)
{
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_TRUE(Json::parse("true").as_bool());
    EXPECT_FALSE(Json::parse("false").as_bool());
}

TEST(Json, IntRoundTrip)
{
    EXPECT_EQ(Json(int64_t{42}).dump(), "42");
    EXPECT_EQ(Json::parse("-17").as_int(), -17);
    // 64-bit IDs survive exactly (ET node/tensor IDs).
    const int64_t big = 9007199254740993ll; // 2^53 + 1, breaks doubles
    EXPECT_EQ(Json::parse(Json(big).dump()).as_int(), big);
}

TEST(Json, DoubleRoundTrip)
{
    const double v = 3.14159265358979;
    EXPECT_DOUBLE_EQ(Json::parse(Json(v).dump()).as_double(), v);
    EXPECT_DOUBLE_EQ(Json::parse("2.5e3").as_double(), 2500.0);
    EXPECT_DOUBLE_EQ(Json::parse("-0.125").as_double(), -0.125);
}

TEST(Json, IntAsDoubleCoercion)
{
    EXPECT_DOUBLE_EQ(Json::parse("7").as_double(), 7.0);
    EXPECT_EQ(Json::parse("7.0").as_int(), 7);
}

TEST(Json, StringEscapes)
{
    Json j(std::string("a\"b\\c\nd\te"));
    const std::string text = j.dump();
    EXPECT_EQ(Json::parse(text).as_string(), "a\"b\\c\nd\te");
}

TEST(Json, UnicodeEscapeParsing)
{
    EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
    // é = U+00E9 → two UTF-8 bytes
    const std::string s = Json::parse("\"\\u00e9\"").as_string();
    EXPECT_EQ(s.size(), 2u);
}

TEST(Json, SurrogatePair)
{
    // U+1F600 (emoji) via surrogate pair → 4 UTF-8 bytes.
    const std::string s = Json::parse("\"\\ud83d\\ude00\"").as_string();
    EXPECT_EQ(s.size(), 4u);
}

TEST(Json, ArrayRoundTrip)
{
    Json arr = Json::array();
    arr.push_back(Json(1));
    arr.push_back(Json("x"));
    arr.push_back(Json());
    const Json back = Json::parse(arr.dump());
    ASSERT_EQ(back.as_array().size(), 3u);
    EXPECT_EQ(back.as_array()[0].as_int(), 1);
    EXPECT_EQ(back.as_array()[1].as_string(), "x");
    EXPECT_TRUE(back.as_array()[2].is_null());
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Json obj = Json::object();
    obj.set("zebra", Json(1));
    obj.set("alpha", Json(2));
    const std::string text = obj.dump();
    EXPECT_LT(text.find("zebra"), text.find("alpha"));
}

TEST(Json, ObjectSetOverwrites)
{
    Json obj = Json::object();
    obj.set("k", Json(1));
    obj.set("k", Json(2));
    EXPECT_EQ(obj.as_object().size(), 1u);
    EXPECT_EQ(obj.at("k").as_int(), 2);
}

TEST(Json, FindAndContains)
{
    Json obj = Json::object();
    obj.set("a", Json(1));
    EXPECT_TRUE(obj.contains("a"));
    EXPECT_FALSE(obj.contains("b"));
    EXPECT_EQ(obj.find("b"), nullptr);
    EXPECT_THROW(obj.at("b"), ParseError);
}

TEST(Json, GettersWithDefaults)
{
    Json obj = Json::object();
    obj.set("i", Json(5));
    obj.set("s", Json("str"));
    obj.set("b", Json(true));
    EXPECT_EQ(obj.get_int("i", 0), 5);
    EXPECT_EQ(obj.get_int("missing", -1), -1);
    EXPECT_EQ(obj.get_string("s", ""), "str");
    EXPECT_EQ(obj.get_string("missing", "dflt"), "dflt");
    EXPECT_TRUE(obj.get_bool("b", false));
    EXPECT_TRUE(obj.get_bool("missing", true));
}

TEST(Json, NestedStructures)
{
    const char* text = R"({"a": [1, {"b": [true, null]}], "c": {"d": 2.5}})";
    const Json j = Json::parse(text);
    EXPECT_EQ(j.at("a").as_array()[1].at("b").as_array().size(), 2u);
    EXPECT_DOUBLE_EQ(j.at("c").at("d").as_double(), 2.5);
    // Round-trip through compact and pretty forms.
    EXPECT_EQ(Json::parse(j.dump()), j);
    EXPECT_EQ(Json::parse(j.dump(2)), j);
}

TEST(Json, WhitespaceTolerance)
{
    const Json j = Json::parse("  {  \"a\"  :  [ 1 , 2 ]  }  \n");
    EXPECT_EQ(j.at("a").as_array().size(), 2u);
}

TEST(Json, EmptyContainers)
{
    EXPECT_TRUE(Json::parse("[]").as_array().empty());
    EXPECT_TRUE(Json::parse("{}").as_object().empty());
    EXPECT_EQ(Json::parse("[]").dump(), "[]");
    EXPECT_EQ(Json::parse("{}").dump(), "{}");
}

TEST(Json, ParseErrors)
{
    EXPECT_THROW(Json::parse(""), ParseError);
    EXPECT_THROW(Json::parse("{"), ParseError);
    EXPECT_THROW(Json::parse("[1,"), ParseError);
    EXPECT_THROW(Json::parse("{\"a\" 1}"), ParseError);
    EXPECT_THROW(Json::parse("tru"), ParseError);
    EXPECT_THROW(Json::parse("1 2"), ParseError);
    EXPECT_THROW(Json::parse("\"unterminated"), ParseError);
    EXPECT_THROW(Json::parse("-"), ParseError);
    EXPECT_THROW(Json::parse("[1] trailing"), ParseError);
}

TEST(Json, ParseErrorReportsPosition)
{
    try {
        Json::parse("{\n  \"a\": oops\n}");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos);
    }
}

TEST(Json, TypeMismatchThrows)
{
    const Json j = Json::parse("42");
    EXPECT_THROW(j.as_string(), ParseError);
    EXPECT_THROW(j.as_array(), ParseError);
    EXPECT_THROW(j.as_object(), ParseError);
    EXPECT_THROW(Json::parse("1.5").as_int(), ParseError);
}

TEST(Json, FileRoundTrip)
{
    Json obj = Json::object();
    obj.set("key", Json(123));
    const std::string path = testing::TempDir() + "/mystique_json_test.json";
    obj.dump_file(path);
    EXPECT_EQ(Json::parse_file(path), obj);
}

TEST(Json, ParseFileMissingThrows)
{
    EXPECT_THROW(Json::parse_file("/nonexistent/path/file.json"), ParseError);
}

TEST(Json, NumericEquality)
{
    EXPECT_EQ(Json(2), Json(2.0));
    EXPECT_NE(Json(2), Json(3));
    EXPECT_NE(Json(2), Json("2"));
}

TEST(Json, NanSerializesAsNull)
{
    const Json j(std::nan(""));
    EXPECT_EQ(j.dump(), "null");
}

TEST(Json, PrettyPrintIndents)
{
    Json obj = Json::object();
    obj.set("a", Json(1));
    const std::string text = obj.dump(4);
    EXPECT_NE(text.find("\n    \"a\""), std::string::npos);
}

TEST(Json, DeeplyNestedArrayThrowsInsteadOfOverflowing)
{
    // 10k-deep nesting: without the parser's recursion cap this would
    // overflow the stack (parse_value recurses per level) — a crash an
    // adversarial plan-store entry or trace file must not be able to cause.
    constexpr int kDepth = 10000;
    std::string doc;
    doc.reserve(2 * kDepth);
    for (int i = 0; i < kDepth; ++i)
        doc += '[';
    for (int i = 0; i < kDepth; ++i)
        doc += ']';
    EXPECT_THROW((void)Json::parse(doc), ParseError);
}

TEST(Json, DeeplyNestedObjectThrowsInsteadOfOverflowing)
{
    constexpr int kDepth = 10000;
    std::string doc;
    doc.reserve(8 * kDepth);
    for (int i = 0; i < kDepth; ++i)
        doc += "{\"k\":";
    doc += "0";
    for (int i = 0; i < kDepth; ++i)
        doc += '}';
    EXPECT_THROW((void)Json::parse(doc), ParseError);
}

TEST(Json, NestingAtTheCapStillParses)
{
    // The cap must reject runaway documents, not real ones: 200 levels is
    // within the documented 256-deep budget and must round-trip fine.
    constexpr int kDepth = 200;
    std::string doc;
    for (int i = 0; i < kDepth; ++i)
        doc += '[';
    doc += "42";
    for (int i = 0; i < kDepth; ++i)
        doc += ']';
    Json j = Json::parse(doc);
    for (int i = 0; i < kDepth; ++i) {
        Json inner = j.as_array().front();
        j = std::move(inner);
    }
    EXPECT_EQ(j.as_int(), 42);
}

} // namespace
} // namespace mystique
