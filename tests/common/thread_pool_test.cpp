/// ThreadPool tests: task completion, true concurrency, exception
/// propagation through futures, drain-on-destruction, size clamping.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace mystique {
namespace {

TEST(ThreadPool, RunsAllTasks)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 100; ++i)
        futs.push_back(pool.submit([&count] { count.fetch_add(1); }));
    for (auto& f : futs)
        f.get();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SizeClampedToAtLeastOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    auto f = pool.submit([] {});
    f.get();
}

TEST(ThreadPool, TasksRunConcurrently)
{
    // All four tasks block until all four have entered: only possible if the
    // pool really runs them on four live threads.
    constexpr int kWorkers = 4;
    ThreadPool pool(kWorkers);
    std::mutex mu;
    std::condition_variable cv;
    int arrived = 0;
    std::vector<std::future<void>> futs;
    for (int i = 0; i < kWorkers; ++i) {
        futs.push_back(pool.submit([&] {
            std::unique_lock<std::mutex> lock(mu);
            ++arrived;
            cv.notify_all();
            cv.wait(lock, [&] { return arrived == kWorkers; });
        }));
    }
    for (auto& f : futs)
        EXPECT_EQ(f.wait_for(std::chrono::seconds(30)), std::future_status::ready);
    for (auto& f : futs)
        f.get();
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] {});
    auto bad = pool.submit([] { throw std::runtime_error("boom"); });
    ok.get();
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The pool survives a throwing task.
    auto after = pool.submit([] {});
    after.get();
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] {
                std::this_thread::sleep_for(std::chrono::microseconds(100));
                count.fetch_add(1);
            });
        // No explicit wait: destruction must run every submitted task.
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, DistinctThreadsObserved)
{
    ThreadPool pool(3);
    std::mutex mu;
    std::set<std::thread::id> ids;
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 60; ++i)
        futs.push_back(pool.submit([&] {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            std::lock_guard<std::mutex> lock(mu);
            ids.insert(std::this_thread::get_id());
        }));
    for (auto& f : futs)
        f.get();
    EXPECT_GE(ids.size(), 1u);
    EXPECT_LE(ids.size(), 3u);
}

} // namespace
} // namespace mystique
