/// Tests for the numerical-summary helpers.

#include <gtest/gtest.h>

#include "common/error.h"

#include "common/stats.h"

namespace mystique {
namespace {

TEST(RunningStat, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue)
{
    RunningStat s;
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownSample)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Percentile, Median)
{
    EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0}, 50.0), 2.0);
    EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 50.0), 2.5);
}

TEST(Percentile, Extremes)
{
    EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 100.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, OutOfRangeThrows)
{
    EXPECT_THROW(percentile({1.0}, -1.0), InternalError);
    EXPECT_THROW(percentile({1.0}, 101.0), InternalError);
}

TEST(RelativeError, Basics)
{
    EXPECT_DOUBLE_EQ(relative_error(11.0, 10.0), 0.1);
    EXPECT_DOUBLE_EQ(relative_error(9.0, 10.0), 0.1);
    EXPECT_DOUBLE_EQ(relative_error(5.0, 0.0), 5.0);
    EXPECT_DOUBLE_EQ(relative_error(10.0, 10.0), 0.0);
}

TEST(Geomean, Basics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_THROW(geomean({1.0, -1.0}), InternalError);
}

} // namespace
} // namespace mystique
