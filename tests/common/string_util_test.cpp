/// Tests for string helpers used by the schema and IR parsers.

#include <gtest/gtest.h>

#include "common/string_util.h"

namespace mystique {
namespace {

TEST(Split, Basic)
{
    const auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyTokens)
{
    const auto parts = split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[3], "");
}

TEST(SplitTopLevel, RespectsBrackets)
{
    // The schema-parsing use case: defaults containing commas.
    const auto parts = split_top_level("int[2] stride=[1, 1], int pad=0", ',');
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_EQ(parts[0], "int[2] stride=[1, 1]");
}

TEST(SplitTopLevel, RespectsParens)
{
    const auto parts = split_top_level("f(a, b), g(c)", ',');
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_EQ(parts[0], "f(a, b)");
}

TEST(SplitTopLevel, NestedDepth)
{
    const auto parts = split_top_level("a(b[c, d], e), f", ',');
    ASSERT_EQ(parts.size(), 2u);
}

TEST(Trim, Basics)
{
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim("\t\na b\r "), "a b");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(StartsEndsWith, Basics)
{
    EXPECT_TRUE(starts_with("aten::add", "aten::"));
    EXPECT_FALSE(starts_with("at", "aten::"));
    EXPECT_TRUE(ends_with("file.json", ".json"));
    EXPECT_FALSE(ends_with(".js", ".json"));
}

TEST(Join, Basics)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strprintf, Formats)
{
    EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(strprintf("%.2f", 1.5), "1.50");
}

TEST(FormatUs, Scales)
{
    EXPECT_EQ(format_us(12.0), "12.00 us");
    EXPECT_EQ(format_us(12345.0), "12.35 ms");
    EXPECT_EQ(format_us(2.5e6), "2.50 s");
}

} // namespace
} // namespace mystique
