/// Fault-injection registry semantics (arm/disarm, once/every/delay modes,
/// MYST_FAULT parsing) and the fs_util durability contract under each
/// injectable failure: atomic_write_file must fsync before publishing, leave
/// the target untouched on any failure, and never leave a `.tmp.*` staging
/// turd behind a thrown error.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/error.h"
#include "common/fault_injection.h"
#include "common/fs_util.h"

namespace mystique {
namespace {

namespace fs = std::filesystem;

/// Disarms on scope exit so a failing assertion cannot leak an armed fault
/// into the next test.
struct DisarmGuard {
    ~DisarmGuard() { FaultInjection::instance().disarm_all(); }
};

/// Fresh scratch directory per test.
struct TempDir {
    TempDir()
    {
        static int counter = 0;
        path = (fs::temp_directory_path() /
                ("myst_fault_test_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter++)))
                   .string();
        fs::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string path;
};

std::size_t
count_tmp_files(const std::string& dir)
{
    std::size_t n = 0;
    for (const auto& e : fs::directory_iterator(dir))
        if (e.path().filename().string().find(".tmp.") != std::string::npos)
            ++n;
    return n;
}

// ---------------------------------------------------------------- registry

TEST(FaultInjection, DisarmedRegistryNeverFires)
{
    DisarmGuard guard;
    FaultInjection& fi = FaultInjection::instance();
    fi.disarm_all();
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(fi.should_fail("fs.read"));
    EXPECT_EQ(fi.total_fired(), 0u);
}

TEST(FaultInjection, OnceModeFiresExactlyOnTheNthHit)
{
    DisarmGuard guard;
    FaultInjection& fi = FaultInjection::instance();
    fi.arm("fs.read", 3, FaultMode::kOnce);
    EXPECT_FALSE(fi.should_fail("fs.read"));
    EXPECT_FALSE(fi.should_fail("fs.read"));
    EXPECT_TRUE(fi.should_fail("fs.read")); // hit 3
    EXPECT_FALSE(fi.should_fail("fs.read"));
    EXPECT_FALSE(fi.should_fail("fs.read"));
    EXPECT_EQ(fi.total_fired(), 1u);
}

TEST(FaultInjection, EveryModeFiresOnMultiples)
{
    DisarmGuard guard;
    FaultInjection& fi = FaultInjection::instance();
    fi.arm("fs.rename", 2, FaultMode::kEvery);
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        fired += fi.should_fail("fs.rename") ? 1 : 0;
    EXPECT_EQ(fired, 5);
}

TEST(FaultInjection, ArmedSiteDoesNotAffectOtherSites)
{
    DisarmGuard guard;
    FaultInjection& fi = FaultInjection::instance();
    fi.arm("fs.rename", 1, FaultMode::kEvery);
    EXPECT_FALSE(fi.should_fail("fs.read"));
    EXPECT_TRUE(fi.should_fail("fs.rename"));
}

TEST(FaultInjection, RearmingResetsCounters)
{
    DisarmGuard guard;
    FaultInjection& fi = FaultInjection::instance();
    fi.arm("fs.read", 2, FaultMode::kOnce);
    EXPECT_FALSE(fi.should_fail("fs.read"));
    fi.arm("fs.read", 2, FaultMode::kOnce); // counters back to zero
    EXPECT_FALSE(fi.should_fail("fs.read"));
    EXPECT_TRUE(fi.should_fail("fs.read"));
}

TEST(FaultInjection, DelayModeNeverFails)
{
    DisarmGuard guard;
    FaultInjection& fi = FaultInjection::instance();
    fi.arm("pool.background_delay", 1, FaultMode::kDelay);
    // A delay-armed site still answers should_fail with false...
    EXPECT_FALSE(fi.should_fail("pool.background_delay"));
    // ...and maybe_delay counts as fired.
    fi.maybe_delay("pool.background_delay");
    EXPECT_EQ(fi.total_fired(), 1u);
}

TEST(FaultInjection, StatsTrackHitsAndFires)
{
    DisarmGuard guard;
    FaultInjection& fi = FaultInjection::instance();
    fi.arm("fs.read", 2, FaultMode::kEvery);
    for (int i = 0; i < 4; ++i)
        (void)fi.should_fail("fs.read");
    bool found = false;
    for (const FaultSiteStats& s : fi.stats()) {
        if (s.site == "fs.read") {
            found = true;
            EXPECT_EQ(s.hits, 4u);
            EXPECT_EQ(s.fired, 2u);
        }
    }
    EXPECT_TRUE(found);
}

TEST(FaultInjection, SiteCatalogCoversTheThreadedHooks)
{
    const std::vector<std::string>& sites = fault_sites();
    for (const char* expected : {"fs.write_open", "fs.write_short", "fs.write_fsync",
                                 "fs.rename", "fs.read", "store.load",
                                 "store.writeback", "pool.background_delay"}) {
        bool found = false;
        for (const std::string& s : sites)
            found = found || s == expected;
        EXPECT_TRUE(found) << expected << " missing from fault_sites()";
    }
}

// ------------------------------------------------------------- env parsing

TEST(FaultInjectionEnv, SpecArmsTheSite)
{
    DisarmGuard guard;
    ASSERT_EQ(::setenv("MYST_FAULT", "fs.read:2:every", 1), 0);
    FaultInjection& fi = FaultInjection::instance();
    fi.reload_env();
    ::unsetenv("MYST_FAULT");
    EXPECT_FALSE(fi.should_fail("fs.read"));
    EXPECT_TRUE(fi.should_fail("fs.read"));
}

TEST(FaultInjectionEnv, MultipleSpecsCommaSeparated)
{
    DisarmGuard guard;
    ASSERT_EQ(::setenv("MYST_FAULT", "fs.read:1:every,fs.rename:1:every", 1), 0);
    FaultInjection& fi = FaultInjection::instance();
    fi.reload_env();
    ::unsetenv("MYST_FAULT");
    EXPECT_TRUE(fi.should_fail("fs.read"));
    EXPECT_TRUE(fi.should_fail("fs.rename"));
}

TEST(FaultInjectionEnv, DefaultModeIsOnce)
{
    DisarmGuard guard;
    ASSERT_EQ(::setenv("MYST_FAULT", "fs.read:1", 1), 0);
    FaultInjection& fi = FaultInjection::instance();
    fi.reload_env();
    ::unsetenv("MYST_FAULT");
    EXPECT_TRUE(fi.should_fail("fs.read"));
    EXPECT_FALSE(fi.should_fail("fs.read")); // once, not every
}

TEST(FaultInjectionEnv, MalformedSpecsThrowConfigError)
{
    DisarmGuard guard;
    FaultInjection& fi = FaultInjection::instance();
    for (const char* bad : {"fs.read", "fs.read:0", "fs.read:x", "fs.read:1:sometimes",
                            "fs.read:1:every:extra"}) {
        ASSERT_EQ(::setenv("MYST_FAULT", bad, 1), 0);
        EXPECT_THROW(fi.reload_env(), ConfigError) << bad;
    }
    ::unsetenv("MYST_FAULT");
    fi.reload_env(); // back to a clean registry
}

// ---------------------------------------- fs_util under injected failures

TEST(AtomicWriteFault, WriteOpenFailureLeavesNoTurdAndNoTarget)
{
    DisarmGuard guard;
    TempDir dir;
    const std::string target = dir.path + "/out.json";
    FaultInjection::instance().arm("fs.write_open", 1);
    EXPECT_THROW(atomic_write_file(target, "{}"), MystiqueError);
    EXPECT_FALSE(fs::exists(target));
    EXPECT_EQ(count_tmp_files(dir.path), 0u);
}

TEST(AtomicWriteFault, ShortWriteLeavesTargetUntouchedAndReapsTemp)
{
    DisarmGuard guard;
    TempDir dir;
    const std::string target = dir.path + "/out.json";
    atomic_write_file(target, "original content");

    FaultInjection::instance().arm("fs.write_short", 1);
    EXPECT_THROW(atomic_write_file(target, "replacement that never lands"),
                 MystiqueError);
    // Atomicity: the failed write is invisible — old bytes intact, partial
    // temp file reaped.
    EXPECT_EQ(read_file(target), "original content");
    EXPECT_EQ(count_tmp_files(dir.path), 0u);

    // And the next (clean) write succeeds over the same target.
    FaultInjection::instance().disarm_all();
    atomic_write_file(target, "second version");
    EXPECT_EQ(read_file(target), "second version");
}

TEST(AtomicWriteFault, FsyncFailureLeavesTargetUntouchedAndReapsTemp)
{
    DisarmGuard guard;
    TempDir dir;
    const std::string target = dir.path + "/out.json";
    atomic_write_file(target, "original content");
    FaultInjection::instance().arm("fs.write_fsync", 1);
    EXPECT_THROW(atomic_write_file(target, "never published"), MystiqueError);
    EXPECT_EQ(read_file(target), "original content");
    EXPECT_EQ(count_tmp_files(dir.path), 0u);
}

TEST(AtomicWriteFault, RenameFailureLeavesTargetUntouchedAndReapsTemp)
{
    DisarmGuard guard;
    TempDir dir;
    const std::string target = dir.path + "/out.json";
    atomic_write_file(target, "original content");
    FaultInjection::instance().arm("fs.rename", 1);
    EXPECT_THROW(atomic_write_file(target, "fully written, never renamed"),
                 MystiqueError);
    EXPECT_EQ(read_file(target), "original content");
    EXPECT_EQ(count_tmp_files(dir.path), 0u);
}

TEST(AtomicWriteFault, ReadFaultThrowsParseError)
{
    DisarmGuard guard;
    TempDir dir;
    const std::string target = dir.path + "/in.json";
    atomic_write_file(target, "bytes");
    FaultInjection::instance().arm("fs.read", 1);
    EXPECT_THROW((void)read_file(target), ParseError);
    // Reads are side-effect free: the file is fine afterwards.
    FaultInjection::instance().disarm_all();
    EXPECT_EQ(read_file(target), "bytes");
}

TEST(AtomicWriteFault, EveryModeSurvivesARetryLoop)
{
    // The caller-visible contract behind "no turd per failure": a writer
    // retrying through repeated faults accumulates zero staging files and
    // eventually publishes.
    DisarmGuard guard;
    TempDir dir;
    const std::string target = dir.path + "/out.json";
    FaultInjection::instance().arm("fs.rename", 2, FaultMode::kEvery);
    int failures = 0;
    for (int attempt = 0; attempt < 6; ++attempt) {
        try {
            atomic_write_file(target, "attempt " + std::to_string(attempt));
        } catch (const MystiqueError&) {
            ++failures;
        }
    }
    EXPECT_GT(failures, 0);
    EXPECT_EQ(count_tmp_files(dir.path), 0u);
    EXPECT_TRUE(fs::exists(target));
}

} // namespace
} // namespace mystique
