/// Tests for the deterministic RNG and its distributions.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"

namespace mystique {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next_u64() == b.next_u64() ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntBounds)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i) {
        const int64_t v = r.uniform_int(-3, 5);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 5);
    }
    EXPECT_EQ(r.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntUnbiasedish)
{
    Rng r(11);
    std::map<int64_t, int> counts;
    const int n = 60000;
    for (int i = 0; i < n; ++i)
        ++counts[r.uniform_int(0, 5)];
    for (const auto& [v, c] : counts)
        EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 6.0, 0.02);
}

TEST(Rng, NormalMoments)
{
    Rng r(13);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double x = r.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalShifted)
{
    Rng r(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ZipfInRange)
{
    Rng r(19);
    for (int i = 0; i < 5000; ++i) {
        const int64_t v = r.zipf(100, 1.1);
        EXPECT_GE(v, 0);
        EXPECT_LT(v, 100);
    }
}

TEST(Rng, ZipfSkewsTowardSmallRanks)
{
    Rng r(23);
    const int n = 50000;
    int head = 0;
    for (int i = 0; i < n; ++i)
        head += r.zipf(1000, 1.2) < 10 ? 1 : 0;
    // Under uniform the head would get ~1%; Zipf 1.2 concentrates far more.
    EXPECT_GT(static_cast<double>(head) / n, 0.25);
}

TEST(Rng, ZipfZeroExponentIsUniform)
{
    Rng r(29);
    const int n = 50000;
    int head = 0;
    for (int i = 0; i < n; ++i)
        head += r.zipf(1000, 0.0) < 10 ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(head) / n, 0.01, 0.005);
}

TEST(Rng, ZipfMatchesTheoreticalHeadMass)
{
    Rng r(31);
    const int64_t n_rows = 100;
    const double s = 1.0;
    const int draws = 100000;
    int rank0 = 0;
    for (int i = 0; i < draws; ++i)
        rank0 += r.zipf(n_rows, s) == 0 ? 1 : 0;
    double h = 0.0;
    for (int64_t k = 1; k <= n_rows; ++k)
        h += 1.0 / static_cast<double>(k);
    EXPECT_NEAR(static_cast<double>(rank0) / draws, 1.0 / h, 0.01);
}

TEST(Rng, ForkIndependence)
{
    Rng parent(37);
    Rng child = parent.fork();
    // Child stream differs from the parent's continuation.
    EXPECT_NE(child.next_u64(), parent.next_u64());
}

TEST(Rng, FillUniform)
{
    Rng r(41);
    std::vector<float> v(1000);
    r.fill_uniform(v, -1.0f, 1.0f);
    for (float x : v) {
        EXPECT_GE(x, -1.0f);
        EXPECT_LT(x, 1.0f);
    }
}

} // namespace
} // namespace mystique
