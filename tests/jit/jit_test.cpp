/// Tests for schema parsing and the IR builder/parser/interpreter — the
/// reconstruction machinery of paper §4.3.1.

#include <gtest/gtest.h>

#include "common/error.h"
#include "framework/math.h"
#include "framework/op_registry.h"
#include "framework/session.h"
#include "jit/ir.h"
#include "jit/schema.h"

namespace mystique::jit {
namespace {

TEST(Schema, PaperExample)
{
    const FunctionSchema fs =
        parse_schema("aten::add.Tensor(Tensor self, Tensor other, *, Scalar alpha=1) -> Tensor");
    EXPECT_EQ(fs.name, "aten::add");
    EXPECT_EQ(fs.overload, "Tensor");
    EXPECT_EQ(fs.qualified_name(), "aten::add.Tensor");
    ASSERT_EQ(fs.args.size(), 3u);
    EXPECT_EQ(fs.args[0].name, "self");
    EXPECT_EQ(fs.args[0].type, "Tensor");
    EXPECT_FALSE(fs.args[0].kwarg_only);
    EXPECT_EQ(fs.args[2].name, "alpha");
    EXPECT_EQ(fs.args[2].type, "Scalar");
    EXPECT_TRUE(fs.args[2].kwarg_only);
    EXPECT_EQ(fs.args[2].default_value.value(), "1");
    ASSERT_EQ(fs.returns.size(), 1u);
    EXPECT_EQ(fs.returns[0], "Tensor");
}

TEST(Schema, AliasAnnotationsStripped)
{
    const FunctionSchema fs =
        parse_schema("aten::add_.Tensor(Tensor(a!) self, Tensor other) -> Tensor(a!)");
    EXPECT_EQ(fs.args[0].type, "Tensor");
    EXPECT_EQ(fs.returns[0], "Tensor");
}

TEST(Schema, SizedListsNormalized)
{
    const FunctionSchema fs =
        parse_schema("aten::max_pool2d(Tensor self, int[2] kernel_size, int[2] stride=[]) -> Tensor");
    EXPECT_EQ(fs.args[1].type, "int[]");
    EXPECT_EQ(fs.args[2].default_value.value(), "[]");
}

TEST(Schema, OptionalTensor)
{
    const FunctionSchema fs =
        parse_schema("aten::linear(Tensor input, Tensor weight, Tensor? bias=None) -> Tensor");
    EXPECT_EQ(fs.args[2].type, "Tensor?");
    EXPECT_TRUE(fs.args[2].is_tensor_like());
}

TEST(Schema, TupleReturns)
{
    const FunctionSchema fs = parse_schema(
        "aten::convolution_backward(Tensor g, Tensor i, Tensor w, int[] s, int[] p) -> "
        "(Tensor, Tensor, Tensor)");
    EXPECT_EQ(fs.returns.size(), 3u);
}

TEST(Schema, VoidReturn)
{
    const FunctionSchema fs = parse_schema("c10d::barrier(int pg) -> ()");
    EXPECT_TRUE(fs.returns.empty());
}

TEST(Schema, NoOverload)
{
    const FunctionSchema fs = parse_schema("aten::relu(Tensor self) -> Tensor");
    EXPECT_EQ(fs.overload, "");
    EXPECT_EQ(fs.qualified_name(), "aten::relu");
}

TEST(Schema, ListDefaultWithCommas)
{
    const FunctionSchema fs =
        parse_schema("fake::op(Tensor x, int[2] stride=[1, 1]) -> Tensor");
    EXPECT_EQ(fs.args[1].default_value.value(), "[1, 1]");
}

TEST(Schema, Malformed)
{
    EXPECT_THROW(parse_schema("no parens -> Tensor"), ParseError);
    EXPECT_THROW(parse_schema("aten::x(Tensor self"), ParseError);
    EXPECT_THROW(parse_schema("aten::x(Tensor self) Tensor"), ParseError);
    EXPECT_THROW(parse_schema("aten::x(Tensoronly) -> Tensor"), ParseError);
}

/// Property-style check: every schema registered by the framework parses,
/// and the qualified name round-trips to the registry key (this is what
/// guarantees replay can rebuild any recorded ATen/comm/custom op).
TEST(Schema, AllRegisteredSchemasParse)
{
    fw::ensure_ops_registered();
    const auto& reg = fw::OpRegistry::instance();
    int checked = 0;
    for (const auto& name : reg.names()) {
        const fw::OpDef* def = reg.find(name);
        if (def->schema.empty())
            continue;
        const FunctionSchema fs = parse_schema(def->schema);
        EXPECT_EQ(fs.qualified_name(), name) << "schema/name mismatch for " << name;
        ++checked;
    }
    EXPECT_GT(checked, 40);
}

TEST(Ir, ConstantRendering)
{
    Constant c;
    c.kind = Constant::Kind::kInt;
    c.int_value = 7;
    EXPECT_EQ(c.render(), "prim::Constant[value=7]()");
    c.kind = Constant::Kind::kBool;
    c.bool_value = true;
    EXPECT_EQ(c.render(), "prim::Constant[value=True]()");
    c.kind = Constant::Kind::kIntList;
    c.int_list = {1, 2};
    EXPECT_EQ(c.render(), "prim::Constant[value=[1, 2]]()");
    c.kind = Constant::Kind::kString;
    c.string_value = "cuda:0";
    EXPECT_EQ(c.render(), "prim::Constant[value=\"cuda:0\"]()");
    c.kind = Constant::Kind::kNone;
    EXPECT_EQ(c.render(), "prim::Constant()");
}

TEST(Ir, BuildTextMatchesPaperShape)
{
    const FunctionSchema fs =
        parse_schema("aten::add.Tensor(Tensor self, Tensor other, *, Scalar alpha=1) -> Tensor");
    std::vector<Constant> consts(3);
    consts[0].kind = Constant::Kind::kTensorInput;
    consts[1].kind = Constant::Kind::kTensorInput;
    consts[2].kind = Constant::Kind::kInt;
    consts[2].int_value = 1;
    const std::string ir = build_ir_text(fs, consts);
    // Same structure as the paper's §4.3.1 example.
    EXPECT_NE(ir.find("graph(%self."), std::string::npos);
    EXPECT_NE(ir.find("%other."), std::string::npos);
    EXPECT_NE(ir.find("prim::Constant[value=1]()"), std::string::npos);
    EXPECT_NE(ir.find("aten::add.Tensor("), std::string::npos);
    EXPECT_NE(ir.find("return ("), std::string::npos);
}

TEST(Ir, ParseRoundTrip)
{
    const FunctionSchema fs =
        parse_schema("aten::addmm(Tensor self, Tensor mat1, Tensor mat2, *, Scalar beta=1, "
                     "Scalar alpha=1) -> Tensor");
    std::vector<Constant> consts(5);
    consts[0].kind = consts[1].kind = consts[2].kind = Constant::Kind::kTensorInput;
    consts[3].kind = Constant::Kind::kFloat;
    consts[3].float_value = 1.0;
    consts[4].kind = Constant::Kind::kFloat;
    consts[4].float_value = 1.0;
    const std::string text = build_ir_text(fs, consts);
    const Graph g = parse_ir(text);
    EXPECT_EQ(g.input_names.size(), 3u);
    EXPECT_EQ(g.nodes.size(), 3u); // 2 constants + 1 call
    EXPECT_EQ(g.return_values.size(), 1u);
    // Re-render parses identically.
    const Graph g2 = parse_ir(g.render());
    EXPECT_EQ(g2.nodes.size(), g.nodes.size());
    EXPECT_EQ(g2.input_names, g.input_names);
}

TEST(Ir, OptionalNoneBecomesConstant)
{
    const FunctionSchema fs =
        parse_schema("aten::linear(Tensor input, Tensor weight, Tensor? bias=None) -> Tensor");
    std::vector<Constant> consts(3);
    consts[0].kind = consts[1].kind = Constant::Kind::kTensorInput;
    consts[2].kind = Constant::Kind::kNone;
    const std::string text = build_ir_text(fs, consts);
    const Graph g = parse_ir(text);
    EXPECT_EQ(g.input_names.size(), 2u); // bias is a constant None, not input
}

TEST(Ir, ParseErrors)
{
    EXPECT_THROW(parse_ir("not a graph"), ParseError);
    EXPECT_THROW(parse_ir("graph(%x : Tensor):\n  %1 : Tensor = broken\n  return (%1)\n"),
                 ParseError);
}

TEST(Ir, CompiledFunctionExecutes)
{
    // The full §4.3.1 pipeline: schema → IR → compile → run through a session.
    fw::SessionOptions opts;
    opts.mode = fw::ExecMode::kNumeric;
    fw::Session sess(opts);

    const FunctionSchema fs =
        parse_schema("aten::add.Tensor(Tensor self, Tensor other, *, Scalar alpha=1) -> Tensor");
    std::vector<Constant> consts(3);
    consts[0].kind = consts[1].kind = Constant::Kind::kTensorInput;
    consts[2].kind = Constant::Kind::kInt;
    consts[2].int_value = 2; // out = a + 2*b
    CompilationUnit cu;
    const Function& fn =
        cu.create_function("aten::add", parse_ir(build_ir_text(fs, consts)));

    fw::Tensor a = sess.alloc({4});
    fw::Tensor b = sess.alloc({4});
    for (int i = 0; i < 4; ++i) {
        a.f32()[i] = static_cast<float>(i);
        b.f32()[i] = 10.0f;
    }
    auto outs = fn.run(sess, {fw::IValue(a), fw::IValue(b)});
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_FLOAT_EQ(outs[0].tensor().f32()[1], 21.0f);
}

TEST(Ir, WrongArityThrows)
{
    fw::SessionOptions opts;
    fw::Session sess(opts);
    const FunctionSchema fs = parse_schema("aten::relu(Tensor self) -> Tensor");
    std::vector<Constant> consts(1);
    consts[0].kind = Constant::Kind::kTensorInput;
    CompilationUnit cu;
    const Function& fn = cu.create_function("f", parse_ir(build_ir_text(fs, consts)));
    EXPECT_THROW(fn.run(sess, {}), ReplayError);
}

TEST(CompilationUnit, FindByName)
{
    CompilationUnit cu;
    EXPECT_EQ(cu.find("missing"), nullptr);
    const FunctionSchema fs = parse_schema("aten::relu(Tensor self) -> Tensor");
    std::vector<Constant> consts(1);
    consts[0].kind = Constant::Kind::kTensorInput;
    cu.create_function("myfn", parse_ir(build_ir_text(fs, consts)));
    EXPECT_NE(cu.find("myfn"), nullptr);
    EXPECT_EQ(cu.size(), 1u);
}

} // namespace
} // namespace mystique::jit
