/// Tests for Tensor/Storage/IValue.

#include <gtest/gtest.h>

#include "common/error.h"

#include "framework/ivalue.h"
#include "framework/tensor.h"

namespace mystique::fw {
namespace {

TEST(Tensor, UndefinedByDefault)
{
    Tensor t;
    EXPECT_FALSE(t.defined());
}

TEST(Tensor, CreateMaterialized)
{
    Tensor t = Tensor::create({2, 3}, DType::kFloat32, true);
    EXPECT_TRUE(t.defined());
    EXPECT_TRUE(t.materialized());
    EXPECT_EQ(t.numel(), 6);
    EXPECT_EQ(t.nbytes(), 24);
    t.f32()[5] = 7.0f;
    EXPECT_FLOAT_EQ(t.f32()[5], 7.0f);
}

TEST(Tensor, CreateShapeOnly)
{
    Tensor t = Tensor::create({128, 1024}, DType::kFloat32, false);
    EXPECT_FALSE(t.materialized());
    EXPECT_EQ(t.numel(), 128 * 1024);
}

TEST(Tensor, Int64Data)
{
    Tensor t = Tensor::create({4}, DType::kInt64, true);
    t.i64()[0] = 42;
    EXPECT_EQ(t.i64()[0], 42);
    EXPECT_THROW(t.f32(), InternalError);
}

TEST(Tensor, ViewSharesStorage)
{
    Tensor t = Tensor::create({2, 6}, DType::kFloat32, true);
    Tensor v = t.view_as({3, 4});
    EXPECT_EQ(v.impl()->storage->id(), t.impl()->storage->id());
    EXPECT_EQ(v.numel(), t.numel());
    EXPECT_THROW(t.view_as({5, 5}), InternalError);
}

TEST(Tensor, HandleSemantics)
{
    Tensor t = Tensor::create({1}, DType::kFloat32, true);
    Tensor copy = t;
    copy.f32()[0] = 3.0f;
    EXPECT_FLOAT_EQ(t.f32()[0], 3.0f);
    EXPECT_EQ(t, copy);
}

TEST(Tensor, StorageIdsUnique)
{
    Tensor a = Tensor::create({1}, DType::kFloat32, true);
    Tensor b = Tensor::create({1}, DType::kFloat32, true);
    EXPECT_NE(a.impl()->storage->id(), b.impl()->storage->id());
}

TEST(Tensor, RequiresGradFlag)
{
    Tensor t = Tensor::create({1}, DType::kFloat32, true);
    EXPECT_FALSE(t.requires_grad());
    t.set_requires_grad(true);
    EXPECT_TRUE(t.requires_grad());
    EXPECT_FALSE(t.grad().defined());
}

TEST(DType, SizesAndNames)
{
    EXPECT_EQ(dtype_size(DType::kFloat32), 4);
    EXPECT_EQ(dtype_size(DType::kInt64), 8);
    EXPECT_EQ(dtype_size(DType::kBool), 1);
    EXPECT_EQ(dtype_from_name("float32"), DType::kFloat32);
    EXPECT_EQ(dtype_from_name(dtype_name(DType::kInt64)), DType::kInt64);
    EXPECT_THROW(dtype_from_name("float16"), ParseError);
}

TEST(Shape, NumelAndStr)
{
    EXPECT_EQ(shape_numel({2, 3, 4}), 24);
    EXPECT_EQ(shape_numel({}), 1);
    EXPECT_EQ(shape_str({2, 3}), "[2, 3]");
}

TEST(IValue, Tags)
{
    EXPECT_TRUE(IValue().is_none());
    EXPECT_TRUE(IValue(Tensor()).is_none()); // undefined tensor → None
    EXPECT_TRUE(IValue(int64_t{3}).is_int());
    EXPECT_TRUE(IValue(2.5).is_double());
    EXPECT_TRUE(IValue(true).is_bool());
    EXPECT_TRUE(IValue(std::vector<int64_t>{1, 2}).is_int_list());
    EXPECT_TRUE(IValue("str").is_string());
}

TEST(IValue, NumericCoercion)
{
    EXPECT_DOUBLE_EQ(IValue(int64_t{3}).to_double(), 3.0);
    EXPECT_EQ(IValue(true).to_int(), 1);
    EXPECT_THROW(IValue("x").to_int(), ReplayError);
    EXPECT_THROW(IValue(1.5).tensor(), ReplayError);
}

TEST(IValue, ReferencedTensors)
{
    Tensor a = Tensor::create({1}, DType::kFloat32, true);
    Tensor b = Tensor::create({1}, DType::kFloat32, true);
    EXPECT_EQ(IValue(a).referenced_tensors().size(), 1u);
    EXPECT_EQ(IValue(std::vector<Tensor>{a, b}).referenced_tensors().size(), 2u);
    EXPECT_TRUE(IValue(int64_t{1}).referenced_tensors().empty());
}

} // namespace
} // namespace mystique::fw
