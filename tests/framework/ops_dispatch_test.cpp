/// Parameterized sweep: every registered differentiable ATen op is invoked
/// through a minimal workload and its ET record must (a) carry a schema that
/// parses back to the registry key, and (b) have argument counts matching
/// that schema — the invariants the replayer's reconstruction depends on.

#include <gtest/gtest.h>

#include "et/trace.h"
#include "framework/functional.h"
#include "framework/math.h"
#include "framework/session.h"
#include "jit/schema.h"

namespace mystique::fw {
namespace {

SessionOptions
tiny_opts()
{
    SessionOptions o;
    o.mode = ExecMode::kNumeric;
    o.seed = 5;
    return o;
}

Tensor
dev_tensor(Session& s, Shape shape)
{
    Tensor t = s.alloc(std::move(shape));
    math::randn(t.f32(), t.numel(), s.rng(), 0.5f);
    return t;
}

Tensor
dev_indices(Session& s, int64_t n, int64_t upper)
{
    Tensor t = s.alloc({n}, DType::kInt64);
    for (int64_t i = 0; i < n; ++i)
        t.i64()[i] = s.rng().uniform_int(0, upper - 1);
    return t;
}

Tensor
dev_offsets(Session& s, int64_t bags, int64_t nnz)
{
    Tensor t = s.alloc({bags}, DType::kInt64);
    for (int64_t i = 0; i < bags; ++i)
        t.i64()[i] = i * nnz / bags;
    return t;
}

/// A named op exercise: invokes one op family with valid arguments.
struct OpExercise {
    const char* label;
    void (*run)(Session& s);
};

void run_add(Session& s)
{
    F::add(s, dev_tensor(s, {8}), dev_tensor(s, {8}));
}
void run_sub(Session& s)
{
    s.call("aten::sub.Tensor",
           {IValue(dev_tensor(s, {8})), IValue(dev_tensor(s, {8})), IValue(1.0)});
}
void run_mul(Session& s)
{
    F::mul(s, dev_tensor(s, {8}), dev_tensor(s, {8}));
}
void run_mul_scalar(Session& s)
{
    s.call("aten::mul.Scalar", {IValue(dev_tensor(s, {8})), IValue(0.5)});
}
void run_div(Session& s)
{
    s.call("aten::div.Tensor", {IValue(dev_tensor(s, {8})), IValue(dev_tensor(s, {8}))});
}
void run_relu(Session& s)
{
    F::relu(s, dev_tensor(s, {8}));
}
void run_sigmoid(Session& s)
{
    F::sigmoid(s, dev_tensor(s, {8}));
}
void run_tanh(Session& s)
{
    F::tanh(s, dev_tensor(s, {8}));
}
void run_exp(Session& s)
{
    s.call("aten::exp", {IValue(dev_tensor(s, {8}))});
}
void run_dropout(Session& s)
{
    F::dropout(s, dev_tensor(s, {8}), 0.5);
}
void run_mm(Session& s)
{
    F::mm(s, dev_tensor(s, {2, 3}), dev_tensor(s, {3, 4}));
}
void run_addmm(Session& s)
{
    s.call("aten::addmm",
           {IValue(dev_tensor(s, {4})), IValue(dev_tensor(s, {2, 3})),
            IValue(dev_tensor(s, {3, 4})), IValue(1.0), IValue(1.0)});
}
void run_bmm(Session& s)
{
    F::bmm(s, dev_tensor(s, {2, 3, 4}), dev_tensor(s, {2, 4, 5}));
}
void run_linear(Session& s)
{
    F::linear(s, dev_tensor(s, {2, 3}), dev_tensor(s, {4, 3}), dev_tensor(s, {4}));
}
void run_t(Session& s)
{
    s.call("aten::t", {IValue(dev_tensor(s, {2, 3}))});
}
void run_transpose(Session& s)
{
    F::transpose(s, dev_tensor(s, {2, 3, 4}), 1, 2);
}
void run_reshape(Session& s)
{
    F::reshape(s, dev_tensor(s, {2, 6}), {3, 4});
}
void run_cat(Session& s)
{
    F::cat(s, {dev_tensor(s, {2, 2}), dev_tensor(s, {2, 3})}, 1);
}
void run_narrow(Session& s)
{
    s.call("aten::narrow",
           {IValue(dev_tensor(s, {4, 6})), IValue(1), IValue(2), IValue(3)});
}
void run_sum(Session& s)
{
    s.call("aten::sum", {IValue(dev_tensor(s, {8}))});
}
void run_sum_dim(Session& s)
{
    s.call("aten::sum.dim_IntList",
           {IValue(dev_tensor(s, {4, 6})), IValue(std::vector<int64_t>{0}), IValue(false)});
}
void run_mean(Session& s)
{
    s.call("aten::mean", {IValue(dev_tensor(s, {8}))});
}
void run_conv2d(Session& s)
{
    F::conv2d(s, dev_tensor(s, {1, 2, 6, 6}), dev_tensor(s, {3, 2, 3, 3}),
              dev_tensor(s, {3}), 1, 1);
}
void run_batch_norm(Session& s)
{
    F::batch_norm(s, dev_tensor(s, {2, 3, 4, 4}), dev_tensor(s, {3}), dev_tensor(s, {3}));
}
void run_max_pool(Session& s)
{
    F::max_pool2d(s, dev_tensor(s, {1, 2, 6, 6}), 2, 2);
}
void run_avg_pool(Session& s)
{
    F::adaptive_avg_pool2d(s, dev_tensor(s, {1, 2, 6, 6}), 1, 1);
}
void run_softmax(Session& s)
{
    s.call("aten::softmax.int", {IValue(dev_tensor(s, {4, 6})), IValue(1)});
}
void run_log_softmax(Session& s)
{
    F::log_softmax(s, dev_tensor(s, {4, 6}), 1);
}
void run_nll(Session& s)
{
    F::nll_loss(s, F::log_softmax(s, dev_tensor(s, {4, 6}), 1), dev_indices(s, 4, 6));
}
void run_bce(Session& s)
{
    Tensor target = s.alloc({4, 1});
    for (int i = 0; i < 4; ++i)
        target.f32()[i] = static_cast<float>(s.rng().uniform());
    F::bce_with_logits(s, dev_tensor(s, {4, 1}), target);
}
void run_embedding_bag(Session& s)
{
    F::embedding_bag(s, dev_tensor(s, {20, 4}), dev_indices(s, 16, 20),
                     dev_offsets(s, 4, 16));
}
void run_lstm(Session& s)
{
    s.call("fairseq::lstm_layer",
           {IValue(dev_tensor(s, {3, 2, 4})), IValue(dev_tensor(s, {8, 4})),
            IValue(dev_tensor(s, {8, 2})), IValue(dev_tensor(s, {8}))});
}
void run_fbgemm(Session& s)
{
    s.call("fbgemm::batched_embedding_lookup",
           {IValue(dev_tensor(s, {40, 4})), IValue(dev_indices(s, 16, 40)),
            IValue(dev_offsets(s, 8, 16)), IValue(2)});
}
void run_interaction(Session& s)
{
    s.call("meta::interaction_arch",
           {IValue(dev_tensor(s, {2, 4})),
            IValue(std::vector<Tensor>{dev_tensor(s, {2, 4}), dev_tensor(s, {2, 4})})});
}
void run_jagged(Session& s)
{
    s.call("torchrec::jagged_to_padded_dense",
           {IValue(dev_tensor(s, {10})), IValue(dev_offsets(s, 4, 10)), IValue(3)});
}
void run_to_device(Session& s)
{
    Tensor host = Tensor::create({16}, DType::kFloat32, true);
    host.impl()->device = "cpu";
    F::to_device(s, host);
}
void run_ones_like(Session& s)
{
    s.call("aten::ones_like", {IValue(dev_tensor(s, {8}))});
}
void run_zeros(Session& s)
{
    s.call("aten::zeros", {IValue(std::vector<int64_t>{4, 4})});
}
void run_randn(Session& s)
{
    s.call("aten::randn", {IValue(std::vector<int64_t>{4, 4})});
}

const OpExercise kExercises[] = {
    {"add", run_add},           {"sub", run_sub},
    {"mul", run_mul},           {"mul_scalar", run_mul_scalar},
    {"div", run_div},           {"relu", run_relu},
    {"sigmoid", run_sigmoid},   {"tanh", run_tanh},
    {"exp", run_exp},           {"dropout", run_dropout},
    {"mm", run_mm},             {"addmm", run_addmm},
    {"bmm", run_bmm},           {"linear", run_linear},
    {"t", run_t},               {"transpose", run_transpose},
    {"reshape", run_reshape},   {"cat", run_cat},
    {"narrow", run_narrow},     {"sum", run_sum},
    {"sum_dim", run_sum_dim},   {"mean", run_mean},
    {"conv2d", run_conv2d},     {"batch_norm", run_batch_norm},
    {"max_pool", run_max_pool}, {"avg_pool", run_avg_pool},
    {"softmax", run_softmax},   {"log_softmax", run_log_softmax},
    {"nll", run_nll},           {"bce", run_bce},
    {"embedding_bag", run_embedding_bag},
    {"lstm", run_lstm},         {"fbgemm", run_fbgemm},
    {"interaction", run_interaction},
    {"jagged", run_jagged},     {"to_device", run_to_device},
    {"ones_like", run_ones_like},
    {"zeros", run_zeros},       {"randn", run_randn},
};

class OpDispatchTest : public ::testing::TestWithParam<OpExercise> {};

TEST_P(OpDispatchTest, RecordsReplayableNodes)
{
    Session s(tiny_opts());
    et::ExecutionTraceObserver obs;
    s.attach_et_observer(&obs);
    obs.start();
    GetParam().run(s);
    obs.stop();
    ASSERT_GT(obs.trace().size(), 0u);
    for (const auto& node : obs.trace().nodes()) {
        if (!node.is_op())
            continue;
        ASSERT_FALSE(node.op_schema.empty()) << node.name;
        const jit::FunctionSchema fs = jit::parse_schema(node.op_schema);
        EXPECT_EQ(fs.qualified_name(), node.name);
        // Recorded argument count matches the schema (reconstruction
        // precondition).
        EXPECT_EQ(fs.args.size(), node.inputs.size()) << node.name;
        // Output metadata exists for tensor-producing ops.
        EXPECT_EQ(fs.returns.empty(), node.outputs.empty()) << node.name;
    }
}

TEST_P(OpDispatchTest, AdvancesVirtualTime)
{
    Session s(tiny_opts());
    const double before = s.cpu_now();
    GetParam().run(s);
    EXPECT_GT(s.cpu_now(), before);
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpDispatchTest, ::testing::ValuesIn(kExercises),
                         [](const ::testing::TestParamInfo<OpExercise>& info) {
                             return std::string(info.param.label);
                         });

} // namespace
} // namespace mystique::fw
