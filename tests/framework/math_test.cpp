/// Numeric correctness of the math routines, including finite-difference
/// verification of every backward implementation used by autograd.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "framework/math.h"

namespace mystique::fw::math {
namespace {

std::vector<float>
random_vec(std::size_t n, uint64_t seed, float scale = 1.0f)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto& x : v)
        x = static_cast<float>(rng.normal()) * scale;
    return v;
}

TEST(Gemm, SmallKnown)
{
    // [1 2; 3 4] @ [5 6; 7 8] = [19 22; 43 50]
    const std::vector<float> a{1, 2, 3, 4};
    const std::vector<float> b{5, 6, 7, 8};
    std::vector<float> c(4, 0.0f);
    gemm(a.data(), b.data(), c.data(), 2, 2, 2);
    EXPECT_FLOAT_EQ(c[0], 19);
    EXPECT_FLOAT_EQ(c[1], 22);
    EXPECT_FLOAT_EQ(c[2], 43);
    EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(Gemm, AlphaBeta)
{
    const std::vector<float> a{1, 0, 0, 1};
    const std::vector<float> b{2, 0, 0, 2};
    std::vector<float> c{10, 10, 10, 10};
    gemm(a.data(), b.data(), c.data(), 2, 2, 2, 0.5f, 1.0f);
    EXPECT_FLOAT_EQ(c[0], 11.0f); // 10 + 0.5*2
}

TEST(Gemm, BetaZeroOverwritesUninitializedOutput)
{
    // Regression: beta == 0 used to compute c *= 0, which propagates NaN/Inf
    // from uninitialized output buffers — exactly what recycled StorageArena
    // blocks contain.  beta == 0 must overwrite without reading c.
    const std::vector<float> a{1, 2, 3, 4};
    const std::vector<float> b{5, 6, 7, 8};
    const float qnan = std::numeric_limits<float>::quiet_NaN();
    std::vector<float> c{qnan, std::numeric_limits<float>::infinity(), qnan, -qnan};
    gemm(a.data(), b.data(), c.data(), 2, 2, 2, 1.0f, 0.0f);
    EXPECT_FLOAT_EQ(c[0], 19);
    EXPECT_FLOAT_EQ(c[1], 22);
    EXPECT_FLOAT_EQ(c[2], 43);
    EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(Gemm, OddKTailAndScaling)
{
    // k = 7 exercises both the 4-wide k-panel and the scalar tail; compare
    // every element against a reference dot product under alpha/beta.
    const auto a = random_vec(3 * 7, 11);
    const auto b = random_vec(7 * 4, 12);
    std::vector<float> c(3 * 4, 2.0f);
    gemm(a.data(), b.data(), c.data(), 3, 7, 4, 0.5f, 3.0f);
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 4; ++j) {
            float ref = 2.0f * 3.0f;
            for (int k = 0; k < 7; ++k)
                ref += 0.5f * a[i * 7 + k] * b[k * 4 + j];
            EXPECT_NEAR(c[i * 4 + j], ref, 1e-4) << "at (" << i << "," << j << ")";
        }
    }
}

TEST(Gemm, NonSquare)
{
    const auto a = random_vec(3 * 5, 1);
    const auto b = random_vec(5 * 2, 2);
    std::vector<float> c(3 * 2, 0.0f);
    gemm(a.data(), b.data(), c.data(), 3, 5, 2);
    // Check one element against a manual dot product.
    float ref = 0.0f;
    for (int k = 0; k < 5; ++k)
        ref += a[1 * 5 + k] * b[k * 2 + 1];
    EXPECT_NEAR(c[1 * 2 + 1], ref, 1e-4);
}

TEST(Bmm, BatchesIndependent)
{
    const auto a = random_vec(2 * 2 * 3, 3);
    const auto b = random_vec(2 * 3 * 2, 4);
    std::vector<float> c(2 * 2 * 2, 0.0f);
    bmm(a.data(), b.data(), c.data(), 2, 2, 3, 2);
    std::vector<float> c1(4, 0.0f);
    gemm(a.data() + 6, b.data() + 6, c1.data(), 2, 3, 2);
    for (int i = 0; i < 4; ++i)
        EXPECT_NEAR(c[4 + i], c1[i], 1e-5);
}

TEST(Pointwise, AddSubMulDiv)
{
    const std::vector<float> a{1, 2, 3};
    const std::vector<float> b{4, 5, 6};
    std::vector<float> out(3);
    add(a.data(), b.data(), out.data(), 3, 2.0f);
    EXPECT_FLOAT_EQ(out[0], 9.0f);
    sub(a.data(), b.data(), out.data(), 3, 1.0f);
    EXPECT_FLOAT_EQ(out[2], -3.0f);
    mul(a.data(), b.data(), out.data(), 3);
    EXPECT_FLOAT_EQ(out[1], 10.0f);
    div(b.data(), a.data(), out.data(), 3);
    EXPECT_FLOAT_EQ(out[2], 2.0f);
}

TEST(Pointwise, Broadcast)
{
    const std::vector<float> a{1, 2, 3, 4};
    const std::vector<float> bias{10, 20};
    std::vector<float> out(4);
    add_broadcast(a.data(), bias.data(), out.data(), 4, 2);
    EXPECT_FLOAT_EQ(out[0], 11.0f);
    EXPECT_FLOAT_EQ(out[3], 24.0f);
}

TEST(Pointwise, ReluAndBackward)
{
    const std::vector<float> x{-1, 0, 2};
    std::vector<float> y(3), g(3);
    relu(x.data(), y.data(), 3);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[2], 2.0f);
    const std::vector<float> go{1, 1, 1};
    relu_backward(go.data(), x.data(), g.data(), 3);
    EXPECT_FLOAT_EQ(g[0], 0.0f);
    EXPECT_FLOAT_EQ(g[2], 1.0f);
}

TEST(Pointwise, SigmoidTanhIdentities)
{
    const std::vector<float> x{0.0f};
    std::vector<float> y(1);
    sigmoid(x.data(), y.data(), 1);
    EXPECT_NEAR(y[0], 0.5f, 1e-6);
    tanh_fwd(x.data(), y.data(), 1);
    EXPECT_NEAR(y[0], 0.0f, 1e-6);
}

TEST(Transpose2d, RoundTrip)
{
    const auto a = random_vec(3 * 4, 5);
    std::vector<float> t(12), back(12);
    transpose2d(a.data(), t.data(), 3, 4);
    EXPECT_FLOAT_EQ(t[0 * 3 + 2], a[2 * 4 + 0]);
    transpose2d(t.data(), back.data(), 4, 3);
    for (int i = 0; i < 12; ++i)
        EXPECT_FLOAT_EQ(back[i], a[i]);
}

TEST(Reductions, SumAndAxis0)
{
    const std::vector<float> a{1, 2, 3, 4, 5, 6};
    EXPECT_DOUBLE_EQ(sum(a.data(), 6), 21.0);
    std::vector<float> out(3);
    sum_axis0(a.data(), out.data(), 2, 3);
    EXPECT_FLOAT_EQ(out[0], 5.0f);
    EXPECT_FLOAT_EQ(out[2], 9.0f);
}

TEST(Conv2d, IdentityKernel)
{
    // 1x1 kernel with weight 1 reproduces the input.
    const auto in = random_vec(1 * 1 * 4 * 4, 6);
    const std::vector<float> w{1.0f};
    std::vector<float> out(16);
    conv2d(in.data(), w.data(), nullptr, out.data(), 1, 1, 4, 4, 1, 1, 1, 1, 0);
    for (int i = 0; i < 16; ++i)
        EXPECT_FLOAT_EQ(out[i], in[i]);
}

TEST(Conv2d, StrideAndPadding)
{
    const auto in = random_vec(1 * 1 * 4 * 4, 7);
    const std::vector<float> w(9, 1.0f / 9.0f);
    std::vector<float> out(2 * 2);
    conv2d(in.data(), w.data(), nullptr, out.data(), 1, 1, 4, 4, 1, 3, 3, 2, 1);
    EXPECT_EQ(out.size(), 4u); // (4+2-3)/2+1 = 2
}

/// Central finite difference of a scalar loss wrt one input element.
double
fd(const std::function<double(const std::vector<float>&)>& loss, std::vector<float> x,
   std::size_t i, float eps = 1e-2f)
{
    x[i] += eps;
    const double up = loss(x);
    x[i] -= 2 * eps;
    const double down = loss(x);
    return (up - down) / (2.0 * static_cast<double>(eps));
}

TEST(Conv2dBackward, MatchesFiniteDifference)
{
    const int64_t n = 1, c = 2, h = 5, wdt = 5, f = 3, k = 3, stride = 1, pad = 1;
    const auto in = random_vec(static_cast<std::size_t>(n * c * h * wdt), 8, 0.5f);
    const auto w = random_vec(static_cast<std::size_t>(f * c * k * k), 9, 0.5f);
    const int64_t out_n = n * f * h * wdt;
    // loss = sum(conv(in, w))
    auto loss_wrt_in = [&](const std::vector<float>& xin) {
        std::vector<float> out(static_cast<std::size_t>(out_n));
        conv2d(xin.data(), w.data(), nullptr, out.data(), n, c, h, wdt, f, k, k, stride,
               pad);
        return sum(out.data(), out_n);
    };
    std::vector<float> go(static_cast<std::size_t>(out_n), 1.0f);
    std::vector<float> gin(in.size()), gw(w.size()), gb(static_cast<std::size_t>(f));
    conv2d_backward(go.data(), in.data(), w.data(), gin.data(), gw.data(), gb.data(), n, c,
                    h, wdt, f, k, k, stride, pad);
    for (std::size_t i : {0u, 7u, 24u}) {
        EXPECT_NEAR(gin[i], fd(loss_wrt_in, in, i), 0.05)
            << "grad_input mismatch at " << i;
    }
    auto loss_wrt_w = [&](const std::vector<float>& xw) {
        std::vector<float> out(static_cast<std::size_t>(out_n));
        conv2d(in.data(), xw.data(), nullptr, out.data(), n, c, h, wdt, f, k, k, stride,
               pad);
        return sum(out.data(), out_n);
    };
    for (std::size_t i : {0u, 5u, 17u})
        EXPECT_NEAR(gw[i], fd(loss_wrt_w, w, i), 0.05) << "grad_weight mismatch at " << i;
}

TEST(BatchNorm, NormalizesChannels)
{
    const int64_t n = 4, c = 2, spatial = 8;
    const auto in = random_vec(static_cast<std::size_t>(n * c * spatial), 10, 3.0f);
    std::vector<float> out(in.size());
    batch_norm(in.data(), nullptr, nullptr, out.data(), n, c, spatial, 1e-5f);
    // Per-channel mean ≈ 0 and variance ≈ 1.
    for (int64_t ci = 0; ci < c; ++ci) {
        double mean = 0.0, var = 0.0;
        for (int64_t ni = 0; ni < n; ++ni)
            for (int64_t s = 0; s < spatial; ++s)
                mean += out[static_cast<std::size_t>((ni * c + ci) * spatial + s)];
        mean /= static_cast<double>(n * spatial);
        for (int64_t ni = 0; ni < n; ++ni)
            for (int64_t s = 0; s < spatial; ++s) {
                const double d =
                    out[static_cast<std::size_t>((ni * c + ci) * spatial + s)] - mean;
                var += d * d;
            }
        var /= static_cast<double>(n * spatial);
        EXPECT_NEAR(mean, 0.0, 1e-4);
        EXPECT_NEAR(var, 1.0, 1e-2);
    }
}

TEST(BatchNormBackward, MatchesFiniteDifference)
{
    const int64_t n = 2, c = 2, spatial = 4;
    const auto in = random_vec(static_cast<std::size_t>(n * c * spatial), 11);
    const std::vector<float> gamma{1.5f, 0.5f};
    // loss = sum(bn(x) * mask) with a fixed mask to break symmetry
    const auto mask = random_vec(in.size(), 12);
    auto loss = [&](const std::vector<float>& x) {
        std::vector<float> out(x.size());
        batch_norm(x.data(), gamma.data(), nullptr, out.data(), n, c, spatial, 1e-5f);
        double l = 0.0;
        for (std::size_t i = 0; i < out.size(); ++i)
            l += static_cast<double>(out[i]) * static_cast<double>(mask[i]);
        return l;
    };
    std::vector<float> gin(in.size()), gg(2), gb(2);
    batch_norm_backward(mask.data(), in.data(), gamma.data(), gin.data(), gg.data(),
                        gb.data(), n, c, spatial, 1e-5f);
    for (std::size_t i : {0u, 5u, 13u})
        EXPECT_NEAR(gin[i], fd(loss, in, i), 0.05) << "bn grad mismatch at " << i;
}

TEST(MaxPool, ForwardAndBackward)
{
    const std::vector<float> in{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
    std::vector<float> out(4);
    max_pool2d(in.data(), out.data(), 1, 1, 4, 4, 2, 2, 0);
    EXPECT_FLOAT_EQ(out[0], 6.0f);
    EXPECT_FLOAT_EQ(out[3], 16.0f);
    std::vector<float> gin(16);
    const std::vector<float> go{1, 1, 1, 1};
    max_pool2d_backward(go.data(), in.data(), gin.data(), 1, 1, 4, 4, 2, 2, 0);
    EXPECT_FLOAT_EQ(gin[5], 1.0f);  // argmax of window 0
    EXPECT_FLOAT_EQ(gin[0], 0.0f);
    double total = 0;
    for (float g : gin)
        total += g;
    EXPECT_DOUBLE_EQ(total, 4.0);
}

TEST(AdaptiveAvgPool, GlobalPool)
{
    const std::vector<float> in{1, 2, 3, 4};
    std::vector<float> out(1);
    adaptive_avg_pool2d(in.data(), out.data(), 1, 1, 2, 2, 1, 1);
    EXPECT_FLOAT_EQ(out[0], 2.5f);
    std::vector<float> gin(4);
    const std::vector<float> go{1.0f};
    adaptive_avg_pool2d_backward(go.data(), gin.data(), 1, 1, 2, 2, 1, 1);
    EXPECT_FLOAT_EQ(gin[0], 0.25f);
}

TEST(Softmax, RowsSumToOne)
{
    const auto in = random_vec(3 * 7, 13);
    std::vector<float> out(in.size());
    softmax(in.data(), out.data(), 3, 7);
    for (int r = 0; r < 3; ++r) {
        double s = 0.0;
        for (int c = 0; c < 7; ++c)
            s += out[static_cast<std::size_t>(r * 7 + c)];
        EXPECT_NEAR(s, 1.0, 1e-5);
    }
}

TEST(LogSoftmax, ConsistentWithSoftmax)
{
    const auto in = random_vec(2 * 5, 14);
    std::vector<float> sm(in.size()), lsm(in.size());
    softmax(in.data(), sm.data(), 2, 5);
    log_softmax(in.data(), lsm.data(), 2, 5);
    for (std::size_t i = 0; i < in.size(); ++i)
        EXPECT_NEAR(std::exp(lsm[i]), sm[i], 1e-5);
}

TEST(NllLoss, KnownValue)
{
    // log-probs: row 0 target 1 → loss = -logp[0][1]
    const std::vector<float> logp{-2.0f, -0.5f, -1.0f, -3.0f};
    const std::vector<int64_t> target{1, 0};
    EXPECT_NEAR(nll_loss(logp.data(), target.data(), 2, 2), (0.5 + 1.0) / 2.0, 1e-6);
    std::vector<float> g(4);
    nll_loss_backward(1.0f, target.data(), g.data(), 2, 2);
    EXPECT_FLOAT_EQ(g[1], -0.5f);
    EXPECT_FLOAT_EQ(g[2], -0.5f);
    EXPECT_FLOAT_EQ(g[0], 0.0f);
}

TEST(BceWithLogits, MatchesFiniteDifference)
{
    const auto logits = random_vec(6, 15);
    const std::vector<float> target{0, 1, 1, 0, 1, 0};
    auto loss = [&](const std::vector<float>& x) {
        return bce_with_logits(x.data(), target.data(), 6);
    };
    std::vector<float> g(6);
    bce_with_logits_backward(1.0f, logits.data(), target.data(), g.data(), 6);
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_NEAR(g[i], fd(loss, logits, i), 1e-3);
}

TEST(EmbeddingBag, SumsRows)
{
    // weight: 3 rows of dim 2
    const std::vector<float> w{1, 2, 10, 20, 100, 200};
    const std::vector<int64_t> idx{0, 2, 1};
    const std::vector<int64_t> off{0, 2}; // bag0 = rows {0,2}, bag1 = {1}
    std::vector<float> out(4);
    embedding_bag(w.data(), idx.data(), off.data(), out.data(), 3, 2, 2);
    EXPECT_FLOAT_EQ(out[0], 101.0f);
    EXPECT_FLOAT_EQ(out[1], 202.0f);
    EXPECT_FLOAT_EQ(out[2], 10.0f);
}

TEST(EmbeddingBagBackward, ScatterAdds)
{
    const std::vector<int64_t> idx{0, 2, 0};
    const std::vector<int64_t> off{0, 2};
    const std::vector<float> go{1, 10, 2, 20};
    // Seed with NaN: the kernel must zero-fill before scattering, since its
    // output may be a recycled (uninitialized) arena buffer.
    std::vector<float> gw(6, std::numeric_limits<float>::quiet_NaN());
    embedding_bag_backward(go.data(), idx.data(), off.data(), gw.data(), 3, 3, 2, 2);
    EXPECT_FLOAT_EQ(gw[0], 3.0f);  // row 0 hit by bag0 and bag1
    EXPECT_FLOAT_EQ(gw[1], 30.0f);
    EXPECT_FLOAT_EQ(gw[2], 0.0f);  // row 1 untouched: zero, not NaN
    EXPECT_FLOAT_EQ(gw[4], 1.0f);  // row 2 from bag0
}

TEST(Lstm, OutputBounded)
{
    const int64_t t = 3, b = 2, i = 4, h = 5;
    const auto in = random_vec(static_cast<std::size_t>(t * b * i), 16);
    const auto w_ih = random_vec(static_cast<std::size_t>(4 * h * i), 17, 0.3f);
    const auto w_hh = random_vec(static_cast<std::size_t>(4 * h * h), 18, 0.3f);
    const auto bias = random_vec(static_cast<std::size_t>(4 * h), 19, 0.1f);
    std::vector<float> out(static_cast<std::size_t>(t * b * h));
    lstm_layer(in.data(), w_ih.data(), w_hh.data(), bias.data(), out.data(), t, b, i, h);
    for (float v : out) {
        // h = o * tanh(c) ∈ (-1, 1)
        EXPECT_GT(v, -1.0f);
        EXPECT_LT(v, 1.0f);
    }
}

TEST(LstmBackward, MatchesFiniteDifference)
{
    const int64_t t = 2, b = 1, i = 3, h = 2;
    const auto in = random_vec(static_cast<std::size_t>(t * b * i), 20, 0.5f);
    const auto w_ih = random_vec(static_cast<std::size_t>(4 * h * i), 21, 0.4f);
    const auto w_hh = random_vec(static_cast<std::size_t>(4 * h * h), 22, 0.4f);
    const auto bias = random_vec(static_cast<std::size_t>(4 * h), 23, 0.1f);
    auto loss = [&](const std::vector<float>& x) {
        std::vector<float> out(static_cast<std::size_t>(t * b * h));
        lstm_layer(x.data(), w_ih.data(), w_hh.data(), bias.data(), out.data(), t, b, i, h);
        return sum(out.data(), t * b * h);
    };
    std::vector<float> go(static_cast<std::size_t>(t * b * h), 1.0f);
    std::vector<float> gin(in.size()), gwi(w_ih.size()), gwh(w_hh.size()), gb(bias.size());
    lstm_layer_backward(go.data(), in.data(), w_ih.data(), w_hh.data(), bias.data(),
                        gin.data(), gwi.data(), gwh.data(), gb.data(), t, b, i, h);
    for (std::size_t k = 0; k < in.size(); ++k)
        EXPECT_NEAR(gin[k], fd(loss, in, k, 5e-3f), 2e-2) << "lstm dIn at " << k;
    auto loss_w = [&](const std::vector<float>& xw) {
        std::vector<float> out(static_cast<std::size_t>(t * b * h));
        lstm_layer(in.data(), xw.data(), w_hh.data(), bias.data(), out.data(), t, b, i, h);
        return sum(out.data(), t * b * h);
    };
    for (std::size_t k : {0u, 3u, 11u})
        EXPECT_NEAR(gwi[k], fd(loss_w, w_ih, k, 5e-3f), 2e-2) << "lstm dWih at " << k;
}

TEST(Gelu, KnownValuesAndBackward)
{
    const std::vector<float> x{-2.0f, 0.0f, 2.0f};
    std::vector<float> y(3);
    gelu(x.data(), y.data(), 3);
    EXPECT_NEAR(y[1], 0.0f, 1e-6);
    EXPECT_NEAR(y[2], 1.9545f, 1e-3); // 2·Φ(2)
    EXPECT_NEAR(y[0], -0.0455f, 1e-3);
    auto loss = [&](const std::vector<float>& v) {
        std::vector<float> out(v.size());
        gelu(v.data(), out.data(), static_cast<int64_t>(v.size()));
        return sum(out.data(), static_cast<int64_t>(out.size()));
    };
    std::vector<float> g(3);
    const std::vector<float> go{1, 1, 1};
    gelu_backward(go.data(), x.data(), g.data(), 3);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(g[i], fd(loss, x, i, 1e-3f), 1e-2);
}

TEST(LayerNorm, NormalizesRows)
{
    const auto in = random_vec(4 * 16, 30, 3.0f);
    std::vector<float> out(in.size());
    layer_norm(in.data(), nullptr, nullptr, out.data(), 4, 16, 1e-5f);
    for (int r = 0; r < 4; ++r) {
        double mean = 0.0, var = 0.0;
        for (int c = 0; c < 16; ++c)
            mean += out[static_cast<std::size_t>(r * 16 + c)];
        mean /= 16.0;
        for (int c = 0; c < 16; ++c) {
            const double d = out[static_cast<std::size_t>(r * 16 + c)] - mean;
            var += d * d;
        }
        EXPECT_NEAR(mean, 0.0, 1e-4);
        EXPECT_NEAR(var / 16.0, 1.0, 1e-2);
    }
}

TEST(LayerNormBackward, MatchesFiniteDifference)
{
    const int64_t rows = 3, cols = 8;
    const auto in = random_vec(static_cast<std::size_t>(rows * cols), 31);
    const auto gamma = random_vec(static_cast<std::size_t>(cols), 32, 0.5f);
    const auto mask = random_vec(in.size(), 33);
    auto loss = [&](const std::vector<float>& x) {
        std::vector<float> out(x.size());
        layer_norm(x.data(), gamma.data(), nullptr, out.data(), rows, cols, 1e-5f);
        double l = 0.0;
        for (std::size_t i = 0; i < out.size(); ++i)
            l += static_cast<double>(out[i]) * static_cast<double>(mask[i]);
        return l;
    };
    std::vector<float> gin(in.size()), gg(static_cast<std::size_t>(cols)),
        gb(static_cast<std::size_t>(cols));
    layer_norm_backward(mask.data(), in.data(), gamma.data(), gin.data(), gg.data(),
                        gb.data(), rows, cols, 1e-5f);
    for (std::size_t i : {0u, 9u, 21u})
        EXPECT_NEAR(gin[i], fd(loss, in, i), 0.05) << "layer_norm grad at " << i;
}

TEST(LogSoftmaxBackward, RowsSumToZero)
{
    const auto in = random_vec(2 * 4, 24);
    std::vector<float> lsm(in.size());
    log_softmax(in.data(), lsm.data(), 2, 4);
    const auto go = random_vec(in.size(), 25);
    std::vector<float> g(in.size());
    log_softmax_backward(go.data(), lsm.data(), g.data(), 2, 4);
    // d/dx of log-softmax preserves Σgrad per row only when Σgo per row
    // matches; the invariant is Σ g = Σ go − Σ softmax*Σgo = 0 per row.
    for (int r = 0; r < 2; ++r) {
        double gs = 0.0;
        for (int c = 0; c < 4; ++c)
            gs += g[static_cast<std::size_t>(r * 4 + c)];
        EXPECT_NEAR(gs, 0.0, 1e-4);
    }
}

} // namespace
} // namespace mystique::fw::math
