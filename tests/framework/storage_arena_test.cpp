/// StorageArena tests: bucket rounding, block recycling, stats accounting,
/// cache-cap eviction, trim, and the Storage / Session::alloc integration
/// (buffers released by dead tensors come back on the next allocation).

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "framework/session.h"
#include "framework/storage_arena.h"
#include "framework/tensor.h"

namespace mystique::fw {
namespace {

TEST(StorageArena, BucketRounding)
{
    EXPECT_EQ(StorageArena::bucket_bytes(0), 64);
    EXPECT_EQ(StorageArena::bucket_bytes(1), 64);
    EXPECT_EQ(StorageArena::bucket_bytes(64), 64);
    EXPECT_EQ(StorageArena::bucket_bytes(65), 128);
    EXPECT_EQ(StorageArena::bucket_bytes(1 << 20), 1 << 20);
    EXPECT_EQ(StorageArena::bucket_bytes((1 << 20) + 1), 2 << 20);
}

TEST(StorageArena, FreshBlocksAreZeroed)
{
    StorageArena arena;
    auto b = arena.acquire(256);
    ASSERT_NE(b.data, nullptr);
    EXPECT_EQ(b.capacity, 256);
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(b.data[i], std::byte{0});
    arena.release(b);
}

TEST(StorageArena, RecyclesWithinBucket)
{
    StorageArena arena;
    auto b1 = arena.acquire(100); // bucket 128
    std::byte* p = b1.data;
    arena.release(b1);
    auto b2 = arena.acquire(90); // same bucket
    EXPECT_EQ(b2.data, p);
    EXPECT_EQ(b2.capacity, 128);

    const StorageArenaStats s = arena.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.returns, 1u);
    EXPECT_EQ(s.bytes_outstanding, 128);
    EXPECT_EQ(s.bytes_cached, 0);
    arena.release(b2);
}

TEST(StorageArena, StatsTrackOutstandingAndCached)
{
    StorageArena arena;
    auto a = arena.acquire(64);
    auto b = arena.acquire(1000); // bucket 1024
    EXPECT_EQ(arena.stats().bytes_outstanding, 64 + 1024);
    EXPECT_EQ(arena.stats().peak_bytes_outstanding, 64 + 1024);
    arena.release(b);
    EXPECT_EQ(arena.stats().bytes_outstanding, 64);
    EXPECT_EQ(arena.stats().bytes_cached, 1024);
    EXPECT_EQ(arena.stats().peak_bytes_outstanding, 64 + 1024);
    arena.release(a);
    EXPECT_EQ(arena.stats().bytes_outstanding, 0);
    EXPECT_EQ(arena.stats().bytes_cached, 64 + 1024);
}

TEST(StorageArena, ZeroByteAcquireIsNull)
{
    StorageArena arena;
    auto b = arena.acquire(0);
    EXPECT_EQ(b.data, nullptr);
    EXPECT_EQ(b.capacity, 0);
    arena.release(b); // no-op, must not crash
    EXPECT_EQ(arena.stats().hits + arena.stats().misses, 0u);
}

TEST(StorageArena, CapEvictsInsteadOfCaching)
{
    StorageArena arena(/*max_cached_bytes=*/128);
    auto small = arena.acquire(64);
    auto big = arena.acquire(4096);
    arena.release(small); // 64 <= 128: cached
    arena.release(big);   // 64 + 4096 > 128: freed
    const StorageArenaStats s = arena.stats();
    EXPECT_EQ(s.returns, 1u);
    EXPECT_EQ(s.heap_frees, 1u);
    EXPECT_EQ(s.bytes_cached, 64);
}

TEST(StorageArena, TrimFreesCachedBlocks)
{
    StorageArena arena;
    arena.release(arena.acquire(512));
    EXPECT_GT(arena.stats().bytes_cached, 0);
    arena.trim();
    EXPECT_EQ(arena.stats().bytes_cached, 0);
    // Next acquire is a fresh (zeroed) miss.
    auto b = arena.acquire(512);
    EXPECT_EQ(arena.stats().misses, 2u);
    for (int i = 0; i < 512; ++i)
        EXPECT_EQ(b.data[i], std::byte{0});
    arena.release(b);
}

TEST(StorageArena, StorageRoutesThroughArena)
{
    auto arena = std::make_shared<StorageArena>();
    {
        Tensor t = Tensor::create({16, 16}, DType::kFloat32, /*materialize=*/true, arena);
        EXPECT_TRUE(t.materialized());
        EXPECT_EQ(arena->stats().misses, 1u);
        EXPECT_EQ(arena->stats().bytes_outstanding,
                  StorageArena::bucket_bytes(16 * 16 * 4));
        t.f32()[0] = 42.0f;
    }
    // Tensor death returned the buffer.
    EXPECT_EQ(arena->stats().bytes_outstanding, 0);
    EXPECT_EQ(arena->stats().returns, 1u);

    // Same-size re-create recycles it (contents intentionally NOT zeroed).
    Tensor t2 = Tensor::create({16, 16}, DType::kFloat32, true, arena);
    EXPECT_EQ(arena->stats().hits, 1u);
}

TEST(StorageArena, SessionAllocRecycles)
{
    SessionOptions opts;
    opts.mode = ExecMode::kNumeric;
    Session session(opts);
    const uint64_t base_misses = session.arena().stats().misses;
    { Tensor t = session.alloc({64, 64}); }
    Tensor t2 = session.alloc({64, 64});
    const StorageArenaStats s = session.arena().stats();
    EXPECT_EQ(s.misses, base_misses + 1);
    EXPECT_GE(s.hits, 1u);
}

TEST(StorageArena, ViewsShareStorageNotArenaBlocks)
{
    SessionOptions opts;
    opts.mode = ExecMode::kNumeric;
    Session session(opts);
    Tensor t = session.alloc({4, 8});
    Tensor v = t.view_as({8, 4});
    EXPECT_EQ(t.impl()->storage->id(), v.impl()->storage->id());
    const int64_t outstanding = session.arena().stats().bytes_outstanding;
    // One storage → one arena block, shared by both handles.
    EXPECT_EQ(outstanding, StorageArena::bucket_bytes(4 * 8 * 4));
}

} // namespace
} // namespace mystique::fw
