/// Tests for the Session: dispatch, ET recording, profiler events, wrapper
#include <cstring>
#include "framework/math.h"
/// scopes, virtual clocks, stream overrides, and kernel dependencies.

#include <gtest/gtest.h>

#include "et/trace.h"
#include "framework/functional.h"
#include "framework/session.h"
#include "profiler/profiler.h"

namespace mystique::fw {
namespace {

SessionOptions
tiny_opts()
{
    SessionOptions o;
    o.mode = ExecMode::kNumeric;
    o.seed = 1;
    return o;
}

Tensor
device_tensor(Session& s, Shape shape)
{
    Tensor t = s.alloc(std::move(shape));
    if (s.numeric())
        math::randn(t.f32(), t.numel(), s.rng(), 1.0f);
    return t;
}

TEST(Session, CallProducesOutput)
{
    Session s(tiny_opts());
    Tensor a = device_tensor(s, {4});
    Tensor b = device_tensor(s, {4});
    Tensor out = F::add(s, a, b);
    ASSERT_TRUE(out.defined());
    for (int i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(out.f32()[i], a.f32()[i] + b.f32()[i]);
}

TEST(Session, UnknownOpThrows)
{
    Session s(tiny_opts());
    EXPECT_THROW(s.call("aten::frobnicate", {}), ReplayError);
}

TEST(Session, CpuClockAdvancesPerOp)
{
    Session s(tiny_opts());
    Tensor a = device_tensor(s, {4});
    const double before = s.cpu_now();
    F::relu(s, a);
    EXPECT_GT(s.cpu_now(), before);
}

TEST(Session, EtRecordsOperatorNodes)
{
    Session s(tiny_opts());
    Tensor a = device_tensor(s, {4});
    et::ExecutionTraceObserver obs;
    s.attach_et_observer(&obs);
    obs.start();
    F::relu(s, a);
    obs.stop();
    ASSERT_EQ(obs.trace().size(), 1u);
    const et::Node& n = obs.trace().nodes()[0];
    EXPECT_EQ(n.name, "aten::relu");
    EXPECT_EQ(n.kind, et::NodeKind::kOperator);
    EXPECT_FALSE(n.op_schema.empty());
    ASSERT_EQ(n.inputs.size(), 1u);
    EXPECT_EQ(n.inputs[0].tensors[0].shape, Shape({4}));
    ASSERT_EQ(n.outputs.size(), 1u);
}

TEST(Session, CompositeRecordsParentAndChildren)
{
    Session s(tiny_opts());
    Tensor x = device_tensor(s, {2, 3});
    Tensor w = device_tensor(s, {4, 3});
    Tensor b = device_tensor(s, {4});
    et::ExecutionTraceObserver obs;
    s.attach_et_observer(&obs);
    obs.start();
    F::linear(s, x, w, b);
    obs.stop();
    // linear → t + addmm, all recorded, children pointing at the parent.
    const auto& nodes = obs.trace().nodes();
    ASSERT_EQ(nodes.size(), 3u);
    EXPECT_EQ(nodes[0].name, "aten::linear");
    EXPECT_EQ(nodes[1].name, "aten::t");
    EXPECT_EQ(nodes[2].name, "aten::addmm");
    EXPECT_EQ(nodes[1].parent, nodes[0].id);
    EXPECT_EQ(nodes[2].parent, nodes[0].id);
    EXPECT_EQ(nodes[0].parent, -1);
}

TEST(Session, NodeIdsIncreaseWithExecutionOrder)
{
    Session s(tiny_opts());
    Tensor a = device_tensor(s, {4});
    et::ExecutionTraceObserver obs;
    s.attach_et_observer(&obs);
    obs.start();
    F::relu(s, a);
    F::sigmoid(s, a);
    obs.stop();
    const auto& nodes = obs.trace().nodes();
    ASSERT_EQ(nodes.size(), 2u);
    EXPECT_LT(nodes[0].id, nodes[1].id);
}

TEST(Session, TensorIdsTrackIdentity)
{
    Session s(tiny_opts());
    Tensor a = device_tensor(s, {4});
    et::ExecutionTraceObserver obs;
    s.attach_et_observer(&obs);
    obs.start();
    Tensor b = F::relu(s, a);
    F::sigmoid(s, b);
    obs.stop();
    const auto& nodes = obs.trace().nodes();
    // relu's output ID == sigmoid's input ID (dependency tracking, §4.4).
    EXPECT_EQ(nodes[0].outputs[0].tensors[0].tensor_id,
              nodes[1].inputs[0].tensors[0].tensor_id);
    // a (external) got an ID distinct from the intermediate.
    EXPECT_NE(nodes[0].inputs[0].tensors[0].tensor_id,
              nodes[0].outputs[0].tensors[0].tensor_id);
}

TEST(Session, InPlaceKeepsTensorId)
{
    Session s(tiny_opts());
    Tensor a = device_tensor(s, {4});
    Tensor b = device_tensor(s, {4});
    et::ExecutionTraceObserver obs;
    s.attach_et_observer(&obs);
    obs.start();
    s.call("aten::add_.Tensor", {IValue(a), IValue(b), IValue(1.0)});
    obs.stop();
    const et::Node& n = obs.trace().nodes()[0];
    EXPECT_EQ(n.inputs[0].tensors[0].tensor_id, n.outputs[0].tensors[0].tensor_id);
}

TEST(Session, WrapperScopesRecorded)
{
    Session s(tiny_opts());
    Tensor a = device_tensor(s, {4});
    et::ExecutionTraceObserver obs;
    s.attach_et_observer(&obs);
    obs.start();
    {
        RecordFunction rf(s, "## forward:test ##");
        F::relu(s, a);
    }
    obs.stop();
    const auto& nodes = obs.trace().nodes();
    ASSERT_EQ(nodes.size(), 2u);
    EXPECT_EQ(nodes[0].name, "## forward:test ##");
    EXPECT_EQ(nodes[0].kind, et::NodeKind::kWrapper);
    EXPECT_TRUE(nodes[0].op_schema.empty());
    EXPECT_EQ(nodes[1].parent, nodes[0].id);
}

TEST(Session, ProfilerRecordsCpuAndKernelEvents)
{
    Session s(tiny_opts());
    Tensor a = device_tensor(s, {64});
    prof::ProfilerSession p;
    s.attach_profiler(&p);
    p.start();
    F::relu(s, a);
    p.stop();
    ASSERT_EQ(p.trace().cpu_ops().size(), 1u);
    ASSERT_EQ(p.trace().kernels().size(), 1u);
    // Correlation links the kernel back to the op's node ID.
    EXPECT_EQ(p.trace().kernels()[0].correlation, p.trace().cpu_ops()[0].node_id);
    EXPECT_GT(p.trace().kernels()[0].dur, 0.0);
}

TEST(Session, KernelWaitsForInputs)
{
    Session s(tiny_opts());
    prof::ProfilerSession p;
    s.attach_profiler(&p);
    Tensor host = Tensor::create({1 << 16}, DType::kFloat32, true);
    host.impl()->device = "cpu";
    p.start();
    Tensor dev_t = F::to_device(s, host); // memcpy on stream 22
    Tensor out = F::relu(s, dev_t);       // compute on stream 7, depends on it
    p.stop();
    const auto& ks = p.trace().kernels();
    ASSERT_EQ(ks.size(), 2u);
    EXPECT_EQ(ks[0].stream, dev::kMemcpyStream);
    EXPECT_EQ(ks[1].stream, dev::kComputeStream);
    // Cross-stream dependency: relu cannot start before the copy finishes.
    EXPECT_GE(ks[1].ts, ks[0].ts + ks[0].dur);
}

TEST(Session, StreamOverrideRedirectsKernels)
{
    Session s(tiny_opts());
    Tensor a = device_tensor(s, {16});
    prof::ProfilerSession p;
    s.attach_profiler(&p);
    p.start();
    s.set_stream_override(42);
    F::relu(s, a);
    s.set_stream_override(std::nullopt);
    F::relu(s, a);
    p.stop();
    ASSERT_EQ(p.trace().kernels().size(), 2u);
    EXPECT_EQ(p.trace().kernels()[0].stream, 42);
    EXPECT_EQ(p.trace().kernels()[1].stream, dev::kComputeStream);
}

TEST(Session, SyncDeviceJoinsStreams)
{
    Session s(tiny_opts());
    Tensor a = device_tensor(s, {1 << 18});
    F::relu(s, a);
    const double synced = s.sync_device();
    EXPECT_GE(synced, s.device().sync_all());
    EXPECT_DOUBLE_EQ(s.cpu_now(), synced);
}

TEST(Session, CpuPlatformBlocksOnKernels)
{
    SessionOptions o = tiny_opts();
    o.platform = dev::cpu();
    Session s(o);
    Tensor a = device_tensor(s, {1 << 16});
    const double before = s.cpu_now();
    F::relu(s, a);
    // On CPU platforms the host blocks for the kernel duration.
    EXPECT_DOUBLE_EQ(s.cpu_now(), s.device().sync_all());
    EXPECT_GT(s.cpu_now(), before);
}

TEST(Session, ThreadSwitchHandoff)
{
    Session s(tiny_opts());
    s.cpu_advance(100.0);
    s.switch_thread(kAutogradThread);
    EXPECT_DOUBLE_EQ(s.cpu_now(), 100.0); // autograd starts at handoff point
    s.cpu_advance(50.0);
    s.switch_thread(kMainThread);
    EXPECT_DOUBLE_EQ(s.cpu_now(), 150.0); // main joins on autograd finish
}

TEST(Session, ShapeOnlySkipsFloatMaterialization)
{
    SessionOptions o = tiny_opts();
    o.mode = ExecMode::kShapeOnly;
    Session s(o);
    Tensor f = s.alloc({1024});
    EXPECT_FALSE(f.materialized());
    Tensor i = s.alloc({16}, DType::kInt64);
    EXPECT_TRUE(i.materialized()); // index tensors stay real (§4.4)
}

TEST(Session, ReplayDispatchProfileDiffers)
{
    SessionOptions eager = tiny_opts();
    SessionOptions replay = tiny_opts();
    replay.dispatch = DispatchProfile::replay();
    Session se(eager), sr(replay);
    Tensor a = device_tensor(se, {4});
    Tensor b = device_tensor(sr, {4});
    const double e0 = se.cpu_now();
    F::relu(se, a);
    const double eager_cost = se.cpu_now() - e0;
    const double r0 = sr.cpu_now();
    F::relu(sr, b);
    const double replay_cost = sr.cpu_now() - r0;
    // Replay pays more per-op dispatch but no wrapper frames (§5).
    EXPECT_GT(replay_cost, eager_cost);
}

TEST(Session, ProcessGroupRegistry)
{
    Session s(tiny_opts());
    EXPECT_FALSE(s.has_process_group(0));
    EXPECT_THROW(s.process_group(0), ConfigError);
    auto fabric = std::make_shared<comm::CommFabric>(1);
    s.add_process_group(0, std::make_shared<comm::ProcessGroup>(fabric, 0, 0));
    EXPECT_TRUE(s.has_process_group(0));
    EXPECT_EQ(s.process_group_defs().at(0), std::vector<int>{0});
}

} // namespace
} // namespace mystique::fw
