/// Tests for the autograd engine: gradient correctness against finite
#include <cstring>
#include "framework/math.h"
/// differences through the *op dispatch* path, thread placement of backward
/// ops, accumulation, hooks, and fused-op autodiff.

#include <gtest/gtest.h>

#include "et/trace.h"
#include "framework/fused.h"
#include "framework/functional.h"
#include "framework/nn.h"
#include "framework/session.h"

namespace mystique::fw {
namespace {

SessionOptions
tiny_opts()
{
    SessionOptions o;
    o.mode = ExecMode::kNumeric;
    o.seed = 2;
    return o;
}

TEST(Autograd, LinearGradMatchesFiniteDifference)
{
    Session s(tiny_opts());
    nn::Linear layer(s, 3, 2);
    Tensor x = s.alloc({4, 3});
    math::randn(x.f32(), x.numel(), s.rng(), 1.0f);

    Tensor out = layer.forward(s, x);
    Tensor loss = s.call_t("aten::sum", {IValue(out)});
    s.backward(loss);
    Tensor gw = layer.weight.grad();
    ASSERT_TRUE(gw.defined());

    // Finite difference on one weight element.
    auto eval_loss = [&](float delta, int64_t idx) {
        Session s2(tiny_opts()); // same seed → same init
        nn::Linear l2(s2, 3, 2);
        l2.weight.f32()[idx] += delta;
        Tensor x2 = s2.alloc({4, 3});
        std::memcpy(x2.f32(), x.f32(), static_cast<std::size_t>(x.nbytes()));
        Tensor o2 = l2.forward(s2, x2);
        Tensor l = s2.call_t("aten::sum", {IValue(o2)});
        return static_cast<double>(l.f32()[0]);
    };
    for (int64_t idx : {0, 3, 5}) {
        const double fd = (eval_loss(1e-2f, idx) - eval_loss(-1e-2f, idx)) / 2e-2;
        EXPECT_NEAR(gw.f32()[idx], fd, 5e-2) << "weight grad mismatch at " << idx;
    }
}

TEST(Autograd, BiasGradIsColumnSum)
{
    Session s(tiny_opts());
    nn::Linear layer(s, 3, 2);
    Tensor x = s.alloc({5, 3});
    math::randn(x.f32(), x.numel(), s.rng(), 1.0f);
    Tensor out = layer.forward(s, x);
    Tensor loss = s.call_t("aten::sum", {IValue(out)});
    s.backward(loss);
    Tensor gb = layer.bias_t.grad();
    ASSERT_TRUE(gb.defined());
    // d(sum)/d(bias_j) = batch size
    EXPECT_NEAR(gb.f32()[0], 5.0f, 1e-4);
    EXPECT_NEAR(gb.f32()[1], 5.0f, 1e-4);
}

TEST(Autograd, ChainThroughActivations)
{
    Session s(tiny_opts());
    Tensor x = s.alloc({8});
    for (int i = 0; i < 8; ++i)
        x.f32()[i] = (i % 2 == 0) ? 1.0f : -1.0f;
    x.set_requires_grad(true);
    Tensor y = F::relu(s, x);
    Tensor loss = s.call_t("aten::sum", {IValue(y)});
    s.backward(loss);
    Tensor gx = x.grad();
    ASSERT_TRUE(gx.defined());
    EXPECT_FLOAT_EQ(gx.f32()[0], 1.0f);  // positive input passes grad
    EXPECT_FLOAT_EQ(gx.f32()[1], 0.0f);  // negative input blocks it
}

TEST(Autograd, AccumulatesWhenTensorReused)
{
    Session s(tiny_opts());
    Tensor x = s.alloc({4});
    std::fill(x.f32(), x.f32() + 4, 1.0f);
    x.set_requires_grad(true);
    // y = x + x → dy/dx = 2
    Tensor y = F::add(s, x, x);
    Tensor loss = s.call_t("aten::sum", {IValue(y)});
    s.backward(loss);
    ASSERT_TRUE(x.grad().defined());
    EXPECT_FLOAT_EQ(x.grad().f32()[0], 2.0f);
}

TEST(Autograd, BackwardRunsOnThreadTwo)
{
    Session s(tiny_opts());
    nn::Linear layer(s, 3, 3);
    Tensor x = s.alloc({2, 3});
    math::randn(x.f32(), x.numel(), s.rng(), 1.0f);
    et::ExecutionTraceObserver obs;
    s.attach_et_observer(&obs);
    obs.start();
    Tensor out = layer.forward(s, x);
    Tensor loss = s.call_t("aten::sum", {IValue(out)});
    s.backward(loss);
    obs.stop();

    bool saw_backward_on_tid2 = false;
    bool saw_autograd_wrapper = false;
    for (const auto& n : obs.trace().nodes()) {
        if (n.tid == kAutogradThread && n.is_op())
            saw_backward_on_tid2 = true;
        if (n.name.find("autograd::engine::evaluate_function") == 0) {
            saw_autograd_wrapper = true;
            EXPECT_EQ(n.kind, et::NodeKind::kWrapper);
            EXPECT_EQ(n.tid, kAutogradThread);
        }
    }
    EXPECT_TRUE(saw_backward_on_tid2);
    EXPECT_TRUE(saw_autograd_wrapper);
}

TEST(Autograd, MainThreadJoinsAfterBackward)
{
    Session s(tiny_opts());
    nn::Linear layer(s, 8, 8);
    Tensor x = s.alloc({4, 8});
    math::randn(x.f32(), x.numel(), s.rng(), 1.0f);
    Tensor out = layer.forward(s, x);
    Tensor loss = s.call_t("aten::sum", {IValue(out)});
    const double before = s.cpu_now();
    s.backward(loss);
    EXPECT_EQ(s.tid(), kMainThread);
    EXPECT_GT(s.cpu_now(), before); // blocked for the autograd thread
}

TEST(Autograd, NoGradGuardSuppressesTaping)
{
    Session s(tiny_opts());
    Tensor x = s.alloc({4});
    x.set_requires_grad(true);
    {
        NoGradGuard guard(s);
        F::relu(s, x);
        EXPECT_EQ(s.tape_size(), 0u);
    }
    F::relu(s, x);
    EXPECT_EQ(s.tape_size(), 1u);
}

TEST(Autograd, PostGradHooksFireOncePerLeaf)
{
    Session s(tiny_opts());
    nn::Linear layer(s, 3, 3, /*bias=*/false);
    int fired = 0;
    s.add_post_grad_hook([&](Session&, const Tensor& param) {
        EXPECT_EQ(param.impl(), layer.weight.impl());
        ++fired;
    });
    Tensor x = s.alloc({2, 3});
    math::randn(x.f32(), x.numel(), s.rng(), 1.0f);
    Tensor out = layer.forward(s, x);
    Tensor loss = s.call_t("aten::sum", {IValue(out)});
    s.backward(loss);
    EXPECT_EQ(fired, 1);
}

TEST(Autograd, FusedOpAutodiffMatchesUnfused)
{
    Session s(tiny_opts());
    Tensor a = s.alloc({16});
    Tensor b = s.alloc({16});
    Tensor c = s.alloc({16});
    math::randn(a.f32(), 16, s.rng(), 1.0f);
    math::randn(b.f32(), 16, s.rng(), 1.0f);
    math::randn(c.f32(), 16, s.rng(), 1.0f);
    a.set_requires_grad(true);

    Tensor fused = fused_mul_add_relu(s, a, b, c);
    Tensor loss = s.call_t("aten::sum", {IValue(fused)});
    s.backward(loss);
    ASSERT_TRUE(a.grad().defined());
    // grad(a) = relu'(a*b+c) * b
    for (int i = 0; i < 16; ++i) {
        const float pre = a.f32()[i] * b.f32()[i] + c.f32()[i];
        const float expected = pre > 0.0f ? b.f32()[i] : 0.0f;
        EXPECT_NEAR(a.grad().f32()[i], expected, 1e-5);
    }
}

TEST(Autograd, CatRoutesGradsToListElements)
{
    Session s(tiny_opts());
    Tensor a = s.alloc({2, 2});
    Tensor b = s.alloc({2, 3});
    math::randn(a.f32(), a.numel(), s.rng(), 1.0f);
    math::randn(b.f32(), b.numel(), s.rng(), 1.0f);
    a.set_requires_grad(true);
    b.set_requires_grad(true);
    Tensor y = F::cat(s, {a, b}, 1);
    Tensor loss = s.call_t("aten::sum", {IValue(y)});
    s.backward(loss);
    ASSERT_TRUE(a.grad().defined());
    ASSERT_TRUE(b.grad().defined());
    EXPECT_EQ(a.grad().numel(), 4);
    EXPECT_EQ(b.grad().numel(), 6);
    EXPECT_FLOAT_EQ(a.grad().f32()[0], 1.0f);
    EXPECT_FLOAT_EQ(b.grad().f32()[5], 1.0f);
}

TEST(Autograd, MeanBackwardScales)
{
    Session s(tiny_opts());
    Tensor x = s.alloc({10});
    std::fill(x.f32(), x.f32() + 10, 2.0f);
    x.set_requires_grad(true);
    Tensor loss = s.call_t("aten::mean", {IValue(x)});
    s.backward(loss);
    EXPECT_NEAR(x.grad().f32()[3], 0.1f, 1e-6);
}

TEST(Sgd, StepUpdatesParamsAndZeroGradClears)
{
    Session s(tiny_opts());
    nn::Linear layer(s, 2, 2, /*bias=*/false);
    const float w0 = layer.weight.f32()[0];
    nn::SGD opt(layer.parameters(), 0.5);
    Tensor x = s.alloc({1, 2});
    x.f32()[0] = 1.0f;
    x.f32()[1] = 1.0f;
    Tensor out = layer.forward(s, x);
    Tensor loss = s.call_t("aten::sum", {IValue(out)});
    s.backward(loss);
    const float g0 = layer.weight.grad().f32()[0];
    opt.step(s);
    EXPECT_NEAR(layer.weight.f32()[0], w0 - 0.5f * g0, 1e-5);
    opt.zero_grad();
    EXPECT_FALSE(layer.weight.grad().defined());
}

TEST(Ddp, BucketsFireAllReduceDuringBackward)
{
    SessionOptions o = tiny_opts();
    o.world_size = 1; // single-member group still exercises the path
    Session s(o);
    auto fabric = std::make_shared<comm::CommFabric>(1);
    s.add_process_group(0, std::make_shared<comm::ProcessGroup>(fabric, 0, 0));
    nn::Linear l1(s, 4, 4, false), l2(s, 4, 4, false);
    std::vector<Tensor> params{l1.weight, l2.weight};
    nn::DistributedDataParallel ddp(s, params, 0, /*bucket_bytes=*/32);

    et::ExecutionTraceObserver obs;
    s.attach_et_observer(&obs);
    obs.start();
    ddp.reset();
    Tensor x = s.alloc({2, 4});
    math::randn(x.f32(), x.numel(), s.rng(), 1.0f);
    Tensor out = l2.forward(s, F::relu(s, l1.forward(s, x)));
    Tensor loss = s.call_t("aten::sum", {IValue(out)});
    s.backward(loss);
    obs.stop();

    int allreduces = 0;
    for (const auto& n : obs.trace().nodes()) {
        if (n.name == "c10d::all_reduce") {
            ++allreduces;
            EXPECT_EQ(n.tid, kAutogradThread); // fired from the hook
            EXPECT_EQ(n.category, dev::OpCategory::kComm);
        }
    }
    EXPECT_EQ(allreduces, 2); // tiny buckets → one per parameter
}

} // namespace
} // namespace mystique::fw
