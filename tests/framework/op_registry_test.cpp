/// The intern table behind the OpId dispatch pipeline: dense ID assignment,
/// stability across registration re-entry, string↔OpId round-trips, and the
/// interned-but-unregistered / registered-later lifecycle.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/error.h"
#include "framework/op_registry.h"

namespace mystique::fw {
namespace {

std::vector<IValue>
noop_fn(Session&, const std::vector<IValue>&)
{
    return {};
}

TEST(OpRegistryTest, DuplicateRegistrationThrows)
{
    ensure_ops_registered();
    OpRegistry& reg = OpRegistry::instance();
    ASSERT_TRUE(reg.contains("aten::addmm"));
    OpDef dup;
    dup.name = "aten::addmm";
    dup.fn = noop_fn;
    EXPECT_THROW(reg.register_op(std::move(dup)), ConfigError);
}

TEST(OpRegistryTest, OpIdsStableAcrossEnsureReentry)
{
    ensure_ops_registered();
    OpRegistry& reg = OpRegistry::instance();
    std::map<std::string, OpId> before;
    for (const auto& name : reg.names())
        before[name] = reg.at(name).id;
    ASSERT_FALSE(before.empty());

    ensure_ops_registered(); // idempotent re-entry
    for (const auto& [name, id] : before) {
        EXPECT_EQ(reg.at(name).id, id) << name;
        EXPECT_EQ(reg.lookup(name), id) << name;
    }
}

TEST(OpRegistryTest, StringOpIdRoundTripForEveryRegisteredOp)
{
    ensure_ops_registered();
    OpRegistry& reg = OpRegistry::instance();
    const auto names = reg.names();
    ASSERT_GT(names.size(), 50u); // all ten ops_*.cpp families registered
    for (const auto& name : names) {
        const OpId id = reg.lookup(name);
        ASSERT_NE(id, kInvalidOpId) << name;
        const OpDef& def = reg.at(id);
        EXPECT_EQ(def.id, id) << name;
        EXPECT_EQ(def.name, name);
        EXPECT_EQ(reg.name(id), name);
        EXPECT_EQ(&reg.at(name), &def) << "string wrapper must resolve to the same slot";
        EXPECT_TRUE(reg.contains(id));
    }
}

TEST(OpRegistryTest, OpIdsAreDenseAndUnique)
{
    ensure_ops_registered();
    OpRegistry& reg = OpRegistry::instance();
    std::map<OpId, std::string> by_id;
    for (const auto& name : reg.names()) {
        const OpId id = reg.at(name).id;
        EXPECT_GE(id, 0);
        EXPECT_LT(static_cast<std::size_t>(id), reg.id_bound());
        const auto [it, inserted] = by_id.emplace(id, name);
        EXPECT_TRUE(inserted) << name << " shares OpId " << id << " with " << it->second;
    }
}

TEST(OpRegistryTest, InternedNameWithoutDefThenRegisteredKeepsItsId)
{
    ensure_ops_registered();
    OpRegistry& reg = OpRegistry::instance();

    // Interning alone (as trace statistics do for foreign ops) yields an ID
    // with no definition behind it.
    const OpId id = OpInterner::instance().intern("test::late_registered");
    ASSERT_NE(id, kInvalidOpId);
    EXPECT_EQ(reg.lookup("test::late_registered"), id);
    EXPECT_EQ(reg.find(id), nullptr);
    EXPECT_FALSE(reg.contains("test::late_registered"));
    EXPECT_THROW(reg.at(id), ReplayError);

    // Registration attaches the definition at the same, unchanged ID.
    OpDef def;
    def.name = "test::late_registered";
    def.schema = "test::late_registered() -> ()";
    def.fn = noop_fn;
    reg.register_op(std::move(def));
    ASSERT_TRUE(reg.contains("test::late_registered"));
    EXPECT_EQ(reg.at("test::late_registered").id, id);
    EXPECT_EQ(reg.find(id), &reg.at("test::late_registered"));
}

TEST(OpRegistryTest, UnknownLookups)
{
    ensure_ops_registered();
    OpRegistry& reg = OpRegistry::instance();
    EXPECT_EQ(reg.lookup("no::such_op"), kInvalidOpId);
    EXPECT_EQ(reg.find("no::such_op"), nullptr);
    EXPECT_EQ(reg.find(kInvalidOpId), nullptr);
    EXPECT_EQ(reg.find(static_cast<OpId>(reg.id_bound())), nullptr);
    EXPECT_THROW(reg.at("no::such_op"), ReplayError);
    EXPECT_THROW(reg.at(kInvalidOpId), ReplayError);
}

} // namespace
} // namespace mystique::fw
