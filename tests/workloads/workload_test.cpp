/// Tests for the four evaluated workloads and the measurement harness.

#include <gtest/gtest.h>

#include "common/error.h"
#include "workloads/harness.h"

namespace mystique::wl {
namespace {

RunConfig
tiny_cfg()
{
    RunConfig cfg;
    cfg.mode = fw::ExecMode::kNumeric;
    cfg.warmup_iterations = 1;
    cfg.iterations = 2;
    cfg.seed = 3;
    return cfg;
}

WorkloadOptions
tiny_opts()
{
    WorkloadOptions o;
    o.preset = Preset::kTiny;
    return o;
}

TEST(Registry, NamesAndErrors)
{
    EXPECT_EQ(workload_names().size(), 4u);
    EXPECT_NE(make_workload("resnet"), nullptr);
    EXPECT_THROW(make_workload("bert"), ConfigError);
}

class WorkloadSmokeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadSmokeTest, RunsAndProducesArtifacts)
{
    const RunResult res = run_original(GetParam(), tiny_opts(), tiny_cfg());
    ASSERT_EQ(res.ranks.size(), 1u);
    const RankResult& r0 = res.rank0();
    EXPECT_GT(res.mean_iter_us, 0.0);
    EXPECT_EQ(r0.iter_us.size(), 2u);
    EXPECT_GT(r0.trace.size(), 10u);
    EXPECT_GT(r0.prof.kernels().size(), 5u);
    EXPECT_GT(r0.metrics.sm_util_pct, 0.0);
    EXPECT_GT(r0.metrics.power_w, 0.0);
    EXPECT_EQ(r0.trace.meta().workload, GetParam());
}

TEST_P(WorkloadSmokeTest, TraceHasForwardAndBackwardThreads)
{
    const RunResult res = run_original(GetParam(), tiny_opts(), tiny_cfg());
    bool tid1 = false, tid2 = false;
    for (const auto& n : res.rank0().trace.nodes()) {
        tid1 = tid1 || n.tid == fw::kMainThread;
        tid2 = tid2 || n.tid == fw::kAutogradThread;
    }
    EXPECT_TRUE(tid1);
    EXPECT_TRUE(tid2) << "training iteration must include a backward pass";
}

TEST_P(WorkloadSmokeTest, DeterministicAcrossRuns)
{
    const RunResult a = run_original(GetParam(), tiny_opts(), tiny_cfg());
    const RunResult b = run_original(GetParam(), tiny_opts(), tiny_cfg());
    EXPECT_EQ(a.rank0().trace.size(), b.rank0().trace.size());
    EXPECT_EQ(a.rank0().trace.fingerprint(), b.rank0().trace.fingerprint());
    EXPECT_NEAR(a.mean_iter_us, b.mean_iter_us, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSmokeTest,
                         ::testing::Values("param_linear", "resnet", "asr", "rm"));

TEST(Workload, ShapeOnlyAndNumericSameOpStream)
{
    RunConfig numeric = tiny_cfg();
    RunConfig shape = tiny_cfg();
    shape.mode = fw::ExecMode::kShapeOnly;
    const RunResult a = run_original("resnet", tiny_opts(), numeric);
    const RunResult b = run_original("resnet", tiny_opts(), shape);
    EXPECT_EQ(a.rank0().trace.fingerprint(), b.rank0().trace.fingerprint());
}

TEST(Workload, AsrContainsCustomLstm)
{
    const RunResult res = run_original("asr", tiny_opts(), tiny_cfg());
    const auto counts = res.rank0().trace.count_by_category();
    EXPECT_GT(counts.at(dev::OpCategory::kCustom), 0);
    EXPECT_NE(res.rank0().trace.find_by_name("fairseq::lstm_layer"), nullptr);
}

TEST(Workload, RmContainsAllFourCategories)
{
    const RunResult res = run_original("rm", tiny_opts(), tiny_cfg());
    const auto counts = res.rank0().trace.count_by_category();
    EXPECT_GT(counts.at(dev::OpCategory::kATen), 0);
    EXPECT_GT(counts.at(dev::OpCategory::kCustom), 0);
    EXPECT_GT(counts.at(dev::OpCategory::kFused), 0);
}

TEST(Workload, DistributedRmHasCommsAndMatchingTraces)
{
    RunConfig cfg = tiny_cfg();
    cfg.world_size = 2;
    const RunResult res = run_original("rm", tiny_opts(), cfg);
    ASSERT_EQ(res.ranks.size(), 2u);
    for (const auto& r : res.ranks) {
        const auto counts = r.trace.count_by_category();
        EXPECT_GT(counts.at(dev::OpCategory::kComm), 0);
        EXPECT_EQ(r.trace.meta().world_size, 2);
        EXPECT_FALSE(r.trace.meta().process_groups.empty());
    }
    // Same comm structure on both ranks (§4.1 same-iteration requirement).
    EXPECT_EQ(res.ranks[0].trace.count_by_category().at(dev::OpCategory::kComm),
              res.ranks[1].trace.count_by_category().at(dev::OpCategory::kComm));
}

TEST(Workload, DistributedCommOverlapsBackward)
{
    RunConfig cfg = tiny_cfg();
    cfg.world_size = 2;
    const RunResult res = run_original("param_linear", tiny_opts(), cfg);
    const auto rows = res.rank0().prof.category_breakdown();
    ASSERT_EQ(rows.count(dev::OpCategory::kComm), 1u);
    const auto& comm = rows.at(dev::OpCategory::kComm);
    // DDP buckets fire during backward; at least part of the comm time is
    // hidden under compute.
    EXPECT_LT(comm.exposed_gpu_time_us, comm.gpu_time_us + 1e-9);
    EXPECT_GT(comm.gpu_time_us, 0.0);
}

TEST(Harness, CpuPlatformRunsGpuFreeWorkloads)
{
    RunConfig cfg = tiny_cfg();
    cfg.platform = "CPU";
    const RunResult res = run_original("param_linear", tiny_opts(), cfg);
    EXPECT_GT(res.mean_iter_us, 0.0);
}

TEST(Harness, PowerLimitSlowsRun)
{
    RunConfig cfg = tiny_cfg();
    cfg.mode = fw::ExecMode::kShapeOnly;
    const RunResult full = run_original("param_linear", {}, cfg);
    cfg.power_limit_w = 120.0;
    const RunResult capped = run_original("param_linear", {}, cfg);
    EXPECT_GT(capped.mean_iter_us, full.mean_iter_us * 1.1);
}

} // namespace
} // namespace mystique::wl
