/// Tests for ET nodes, serialization, the observer, and the trace database.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "et/node.h"
#include "et/trace.h"
#include "et/trace_db.h"

namespace mystique::et {
namespace {

TensorMeta
meta(int64_t id, std::vector<int64_t> shape)
{
    TensorMeta m;
    m.tensor_id = id;
    m.storage_id = id + 1000;
    m.numel = 1;
    for (int64_t d : shape)
        m.numel *= d;
    m.shape = std::move(shape);
    return m;
}

Node
op_node(int64_t id, const std::string& name, int64_t parent = -1)
{
    Node n;
    n.id = id;
    n.name = name;
    n.parent = parent;
    n.kind = NodeKind::kOperator;
    n.op_schema = name + "(Tensor self) -> Tensor";
    return n;
}

TEST(TensorMeta, JsonRoundTripSixTuple)
{
    TensorMeta m = meta(7, {2, 3});
    m.device = "cuda:1";
    m.dtype = "int64";
    m.itemsize = 8;
    m.offset = 4;
    const TensorMeta back = TensorMeta::from_json(m.to_json());
    EXPECT_EQ(back, m);
    // The serialized ID is the paper's six-element tuple.
    EXPECT_EQ(m.to_json().at("id").as_array().size(), 6u);
}

TEST(TensorMeta, RejectsBadTuple)
{
    Json j = meta(1, {1}).to_json();
    j.set("id", Json(Json::Array{Json(1), Json(2)}));
    EXPECT_THROW(TensorMeta::from_json(j), ParseError);
}

TEST(Argument, AllKindsRoundTrip)
{
    const std::vector<Argument> args = {
        Argument::none(),
        Argument::from_int(42),
        Argument::from_double(2.5),
        Argument::from_bool(true),
        Argument::from_string("cuda:0"),
        Argument::from_int_list({1, 2, 3}),
        Argument::from_tensor(meta(1, {4})),
        Argument::from_tensor_list({meta(2, {1}), meta(3, {2})}),
    };
    for (const auto& a : args) {
        const Argument back = Argument::from_json(a.to_json());
        EXPECT_EQ(back.kind, a.kind);
        EXPECT_EQ(back.int_value, a.int_value);
        EXPECT_EQ(back.double_value, a.double_value);
        EXPECT_EQ(back.tensors.size(), a.tensors.size());
        EXPECT_EQ(back.int_list, a.int_list);
        EXPECT_EQ(back.string_value, a.string_value);
    }
}

TEST(Node, JsonRoundTrip)
{
    Node n = op_node(5, "aten::relu", 2);
    n.tid = 2;
    n.category = dev::OpCategory::kATen;
    n.inputs.push_back(Argument::from_tensor(meta(1, {8})));
    n.outputs.push_back(Argument::from_tensor(meta(2, {8})));
    n.pg_id = 3;
    const Node back = Node::from_json(n.to_json());
    EXPECT_EQ(back.id, 5);
    EXPECT_EQ(back.name, "aten::relu");
    EXPECT_EQ(back.parent, 2);
    EXPECT_EQ(back.tid, 2);
    EXPECT_EQ(back.pg_id, 3);
    EXPECT_EQ(back.inputs.size(), 1u);
    EXPECT_EQ(back.op_schema, n.op_schema);
}

TEST(ExecutionTrace, AddAndFind)
{
    ExecutionTrace t;
    t.add_node(op_node(0, "a"));
    t.add_node(op_node(1, "b", 0));
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.find(1)->name, "b");
    EXPECT_EQ(t.find(9), nullptr);
    EXPECT_EQ(t.children(0), std::vector<int64_t>{1});
    EXPECT_EQ(t.find_by_name("b")->id, 1);
    EXPECT_EQ(t.find_by_name("zzz"), nullptr);
}

TEST(ExecutionTrace, RejectsNonMonotoneIds)
{
    ExecutionTrace t;
    t.add_node(op_node(5, "a"));
    EXPECT_THROW(t.add_node(op_node(3, "b")), InternalError);
}

TEST(ExecutionTrace, SaveLoadRoundTrip)
{
    ExecutionTrace t;
    t.meta().workload = "unit";
    t.meta().rank = 3;
    t.meta().world_size = 8;
    t.meta().process_groups[0] = {0, 1, 2};
    t.add_node(op_node(0, "aten::relu"));
    const std::string path = testing::TempDir() + "/trace_roundtrip.json";
    t.save(path);
    const ExecutionTrace back = ExecutionTrace::load(path);
    EXPECT_EQ(back.size(), 1u);
    EXPECT_EQ(back.meta().workload, "unit");
    EXPECT_EQ(back.meta().rank, 3);
    EXPECT_EQ(back.meta().process_groups.at(0), (std::vector<int>{0, 1, 2}));
}

TEST(ExecutionTrace, FingerprintsSurviveDiskRoundTrip)
{
    // Benchmark-package provenance depends on this: core::verify_package
    // re-hashes the packaged execution_trace.json and compares against the
    // fingerprints recorded at generation time, so save → load must change
    // nothing either fingerprint covers — including awkward doubles.
    ExecutionTrace t;
    t.meta().workload = "fp_roundtrip";
    t.meta().world_size = 4;
    t.meta().process_groups[0] = {0, 1, 2, 3};
    Node n = op_node(0, "aten::addmm");
    n.inputs.push_back(Argument::from_tensor(meta(1, {128, 256})));
    n.inputs.push_back(Argument::from_double(1.0 / 3.0));
    n.inputs.push_back(Argument::from_double(0.1));
    n.inputs.push_back(Argument::from_int_list({9007199254740993, -1}));
    n.outputs.push_back(Argument::from_tensor(meta(2, {128, 256})));
    t.add_node(std::move(n));
    t.add_node(op_node(1, "aten::relu"));

    const std::string path = testing::TempDir() + "/trace_fp_roundtrip.json";
    t.save(path);
    const ExecutionTrace back = ExecutionTrace::load(path);
    EXPECT_EQ(back.structural_fingerprint(), t.structural_fingerprint());
    EXPECT_EQ(back.fingerprint(), t.fingerprint());

    // And a second generation (load → save → load) stays fixed too.
    const std::string path2 = testing::TempDir() + "/trace_fp_roundtrip2.json";
    back.save(path2);
    EXPECT_EQ(ExecutionTrace::load(path2).structural_fingerprint(),
              t.structural_fingerprint());
}

TEST(ExecutionTrace, FingerprintStableUnderReorderOfCounts)
{
    ExecutionTrace a, b;
    a.add_node(op_node(0, "x"));
    a.add_node(op_node(1, "y"));
    b.add_node(op_node(0, "y"));
    b.add_node(op_node(1, "x"));
    EXPECT_EQ(a.fingerprint(), b.fingerprint()); // histogram-based
    ExecutionTrace c;
    c.add_node(op_node(0, "x"));
    EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(Observer, SortsCompletionOrderIntoIdOrder)
{
    ExecutionTraceObserver obs;
    obs.start();
    // Children complete before parents: record out of order.
    obs.record(op_node(2, "child", 1));
    obs.record(op_node(1, "parent"));
    obs.stop();
    ASSERT_EQ(obs.trace().size(), 2u);
    EXPECT_EQ(obs.trace().nodes()[0].id, 1);
    EXPECT_EQ(obs.trace().nodes()[1].id, 2);
}

TEST(Observer, InactiveRecordThrows)
{
    ExecutionTraceObserver obs;
    EXPECT_THROW(obs.record(op_node(0, "x")), InternalError);
}

TEST(Observer, RegisterCallbackWritesFile)
{
    const std::string path = testing::TempDir() + "/observer_out.json";
    ExecutionTraceObserver obs;
    obs.register_callback(path);
    obs.start();
    obs.record(op_node(0, "aten::relu"));
    obs.stop();
    EXPECT_EQ(ExecutionTrace::load(path).size(), 1u);
}

TEST(TraceDb, AnalyzeGroupsByFingerprint)
{
    TraceDatabase db;
    for (int i = 0; i < 3; ++i) {
        ExecutionTrace t;
        t.meta().workload = "common";
        t.add_node(op_node(0, "a"));
        db.add(std::move(t));
    }
    ExecutionTrace rare;
    rare.meta().workload = "rare";
    rare.add_node(op_node(0, "b"));
    db.add(std::move(rare));

    const auto groups = db.analyze();
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].members.size(), 3u);
    EXPECT_DOUBLE_EQ(groups[0].population_weight, 0.75);
    EXPECT_EQ(groups[0].representative_workload, "common");

    const auto top = db.select_top(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(db.trace(top[0]).meta().workload, "common");
}

TEST(TraceDb, LoadDirectorySkipsGarbage)
{
    const std::string dir = testing::TempDir() + "/etdb";
    std::filesystem::create_directories(dir);
    ExecutionTrace t;
    t.add_node(op_node(0, "a"));
    t.save(dir + "/good.json");
    {
        std::ofstream bad(dir + "/bad.json");
        bad << "{not json";
    }
    TraceDatabase db;
    EXPECT_EQ(db.load_directory(dir), 1u);
}

TEST(TraceDb, LoadDirectoryAbsorbsUnreadableDirectories)
{
    // A missing ingest directory (not yet synced) degrades to an empty load
    // with a warning — it must not abort the whole database build.  Same for
    // a path that exists but is not a directory at all.
    TraceDatabase db;
    EXPECT_EQ(db.load_directory(testing::TempDir() + "/no_such_etdb_dir"), 0u);

    const std::string file_not_dir = testing::TempDir() + "/etdb_plain_file";
    {
        std::ofstream f(file_not_dir);
        f << "not a directory";
    }
    EXPECT_EQ(db.load_directory(file_not_dir), 0u);

    // The database stays usable after degraded loads.
    ExecutionTrace t;
    t.add_node(op_node(0, "a"));
    db.add(std::move(t));
    EXPECT_EQ(db.size(), 1u);
}

TEST(Builder, RenumbersDensely)
{
    ExecutionTrace t;
    t.add_node(op_node(10, "a"));
    t.add_node(op_node(20, "b", 10));
    const ExecutionTrace built = build_trace(t);
    EXPECT_EQ(built.nodes()[0].id, 0);
    EXPECT_EQ(built.nodes()[1].id, 1);
    EXPECT_EQ(built.nodes()[1].parent, 0);
}

TEST(Builder, RejectsUnknownParent)
{
    ExecutionTrace t;
    t.add_node(op_node(0, "a", 99));
    EXPECT_THROW(build_trace(t), ParseError);
}

TEST(Builder, RejectsOperatorWithoutSchemaUnlessFused)
{
    ExecutionTrace t;
    Node n = op_node(0, "mystery");
    n.op_schema.clear();
    t.add_node(n);
    EXPECT_THROW(build_trace(t), ParseError);

    ExecutionTrace t2;
    Node fused = op_node(0, "fused::x");
    fused.op_schema.clear();
    fused.category = dev::OpCategory::kFused;
    t2.add_node(fused);
    EXPECT_NO_THROW(build_trace(t2)); // fused ops legitimately lack schemas
}

} // namespace
} // namespace mystique::et
