/// Cross-module integration tests: the full trace → disk → replay pipeline,
/// trace-statistics analysis, and end-to-end determinism.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/replayer.h"
#include "et/trace_stats.h"
#include "workloads/harness.h"

namespace mystique {
namespace {

wl::RunConfig
tiny_cfg()
{
    wl::RunConfig cfg;
    cfg.mode = fw::ExecMode::kNumeric;
    cfg.warmup_iterations = 1;
    cfg.iterations = 2;
    cfg.seed = 11;
    return cfg;
}

wl::WorkloadOptions
tiny_opts()
{
    wl::WorkloadOptions o;
    o.preset = wl::Preset::kTiny;
    return o;
}

TEST(Integration, TraceSurvivesDiskRoundTripAndReplays)
{
    // The production flow: traces go through a database on disk (Figure 3).
    const wl::RunResult orig = wl::run_original("rm", tiny_opts(), tiny_cfg());
    const std::string dir = testing::TempDir() + "/integration_et";
    std::filesystem::create_directories(dir);
    orig.rank0().trace.save(dir + "/rm_rank0.json");
    orig.rank0().prof.to_json().dump_file(dir + "/rm_rank0_prof.json");

    const et::ExecutionTrace loaded = et::ExecutionTrace::load(dir + "/rm_rank0.json");
    const prof::ProfilerTrace loaded_prof =
        prof::ProfilerTrace::from_json(Json::parse_file(dir + "/rm_rank0_prof.json"));
    EXPECT_EQ(loaded.size(), orig.rank0().trace.size());
    EXPECT_EQ(loaded.fingerprint(), orig.rank0().trace.fingerprint());

    core::ReplayConfig cfg;
    cfg.mode = fw::ExecMode::kNumeric;
    cfg.iterations = 2;
    core::Replayer from_disk(loaded, &loaded_prof, cfg);
    core::Replayer from_memory(orig.rank0().trace, &orig.rank0().prof, cfg);
    EXPECT_EQ(from_disk.selection().total_selected(),
              from_memory.selection().total_selected());
    const auto r1 = from_disk.run();
    const auto r2 = from_memory.run();
    EXPECT_NEAR(r1.mean_iter_us, r2.mean_iter_us, r2.mean_iter_us * 0.05);
}

TEST(Integration, ReplayIsDeterministicGivenSeed)
{
    const wl::RunResult orig = wl::run_original("resnet", tiny_opts(), tiny_cfg());
    core::ReplayConfig cfg;
    cfg.mode = fw::ExecMode::kNumeric;
    cfg.iterations = 2;
    cfg.seed = 77;
    core::Replayer a(orig.rank0().trace, &orig.rank0().prof, cfg);
    core::Replayer b(orig.rank0().trace, &orig.rank0().prof, cfg);
    EXPECT_DOUBLE_EQ(a.run().mean_iter_us, b.run().mean_iter_us);
}

TEST(Integration, TraceStatsAttributeTimeToComposites)
{
    const wl::RunResult orig = wl::run_original("param_linear", tiny_opts(), tiny_cfg());
    const et::TraceStats stats =
        et::TraceStats::build(orig.rank0().trace, &orig.rank0().prof);
    ASSERT_GT(stats.ops().size(), 3u);
    EXPECT_GT(stats.total_kernel_us(), 0.0);
    // aten::linear's GEMM kernels are launched by its addmm child but must
    // attribute to the composite.
    const et::OpStats* linear = stats.find("aten::linear");
    ASSERT_NE(linear, nullptr);
    EXPECT_GT(linear->kernel_time_us, 0.0);
    const et::OpStats* addmm = stats.find("aten::addmm");
    ASSERT_NE(addmm, nullptr);
    EXPECT_DOUBLE_EQ(addmm->kernel_time_us, 0.0);
    // Top-k share grows with k and reaches 1.
    EXPECT_LE(stats.top_k_time_share(1), stats.top_k_time_share(5) + 1e-12);
    EXPECT_NEAR(stats.top_k_time_share(stats.ops().size()), 1.0, 1e-9);
}

TEST(Integration, MixDistanceSeparatesWorkloads)
{
    const wl::RunResult a = wl::run_original("param_linear", tiny_opts(), tiny_cfg());
    const wl::RunResult b = wl::run_original("resnet", tiny_opts(), tiny_cfg());
    const et::TraceStats sa = et::TraceStats::build(a.rank0().trace);
    const et::TraceStats sb = et::TraceStats::build(b.rank0().trace);
    EXPECT_NEAR(et::TraceStats::mix_distance(sa, sa), 0.0, 1e-12);
    EXPECT_GT(et::TraceStats::mix_distance(sa, sb), 0.3);
    // Same workload, different seed → identical mix.
    wl::RunConfig cfg2 = tiny_cfg();
    cfg2.seed = 99;
    const wl::RunResult a2 = wl::run_original("param_linear", tiny_opts(), cfg2);
    const et::TraceStats sa2 = et::TraceStats::build(a2.rank0().trace);
    EXPECT_NEAR(et::TraceStats::mix_distance(sa, sa2), 0.0, 1e-12);
}

TEST(Integration, StatsJsonSerializes)
{
    const wl::RunResult orig = wl::run_original("asr", tiny_opts(), tiny_cfg());
    const et::TraceStats stats =
        et::TraceStats::build(orig.rank0().trace, &orig.rank0().prof);
    const Json j = stats.to_json();
    EXPECT_GT(j.at("ops").as_array().size(), 0u);
    EXPECT_EQ(j.at("total_ops").as_int(), stats.total_ops());
}

TEST(Integration, DistributedTracesShareCommStructure)
{
    // §4.1: all ranks trace the same iteration, so their comm sequences
    // match; the replayer depends on this to avoid rendezvous deadlock.
    wl::RunConfig cfg = tiny_cfg();
    cfg.world_size = 2;
    const wl::RunResult orig = wl::run_original("param_linear", tiny_opts(), cfg);
    std::vector<std::string> seq0, seq1;
    for (const auto& n : orig.ranks[0].trace.nodes())
        if (n.category == dev::OpCategory::kComm)
            seq0.push_back(n.name);
    for (const auto& n : orig.ranks[1].trace.nodes())
        if (n.category == dev::OpCategory::kComm)
            seq1.push_back(n.name);
    EXPECT_EQ(seq0, seq1);
    EXPECT_FALSE(seq0.empty());
}

TEST(Integration, PowerLimitSweepIsMonotoneInTime)
{
    // The Figure 8 mechanism end-to-end: lower limits never make the
    // iteration faster.
    const wl::RunResult traced = wl::run_original("param_linear", tiny_opts(), tiny_cfg());
    double prev = 1e18;
    for (double limit : {400.0, 250.0, 150.0}) {
        core::ReplayConfig cfg;
        cfg.mode = fw::ExecMode::kNumeric;
        cfg.iterations = 2;
        cfg.power_limit_w = limit;
        core::Replayer replayer(traced.rank0().trace, &traced.rank0().prof, cfg);
        const double t = replayer.run().mean_iter_us;
        EXPECT_LE(t, prev * 1.02);
        prev = t;
    }
}

} // namespace
} // namespace mystique
