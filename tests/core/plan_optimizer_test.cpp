/// Plan-level graph optimizer tests: fusion legality edges on synthetic
/// traces (multi-consumer intermediates, shape/dtype mismatches, skipped-op
/// barriers, batch_norm head-only), the MYST_OPT_LEVEL opt-out, plan-key
/// separation between optimized and verbatim plans across both cache tiers,
/// serialization round-trips, and tamper quarantine on restore.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "common/error.h"
#include "core/plan_cache.h"
#include "core/plan_optimizer.h"
#include "core/plan_store.h"
#include "core/replayer.h"
#include "workloads/harness.h"

namespace mystique::core {
namespace {

namespace fs = std::filesystem;

ReplayConfig
replay_cfg(int opt_level)
{
    ReplayConfig cfg;
    cfg.mode = fw::ExecMode::kShapeOnly;
    cfg.warmup_iterations = 1;
    cfg.iterations = 2;
    cfg.opt_level = opt_level;
    return cfg;
}

// ---------------------------------------------------------------------------
// Synthetic pointwise traces: hand-built nodes with the exact names/schemas
// ops_pointwise.cpp registers, so each legality edge is isolated from
// workload incidentals.
// ---------------------------------------------------------------------------

et::TensorMeta
f32_meta(int64_t uid, std::vector<int64_t> shape)
{
    et::TensorMeta m;
    m.tensor_id = uid;
    m.storage_id = uid + 1000;
    m.numel = fw::shape_numel(shape);
    m.shape = std::move(shape);
    return m;
}

et::Node
unary_node(int64_t id, const char* name, const char* schema, et::TensorMeta in,
           et::TensorMeta out)
{
    et::Node n;
    n.id = id;
    n.name = name;
    n.op_schema = schema;
    n.inputs.push_back(et::Argument::from_tensor(std::move(in)));
    n.outputs.push_back(et::Argument::from_tensor(std::move(out)));
    return n;
}

et::Node
relu_node(int64_t id, et::TensorMeta in, et::TensorMeta out)
{
    return unary_node(id, "aten::relu", "aten::relu(Tensor self) -> Tensor",
                      std::move(in), std::move(out));
}

et::Node
mul_node(int64_t id, et::TensorMeta a, et::TensorMeta b, et::TensorMeta out)
{
    et::Node n = unary_node(id, "aten::mul.Tensor",
                            "aten::mul.Tensor(Tensor self, Tensor other) -> Tensor",
                            std::move(a), std::move(out));
    n.inputs.insert(n.inputs.begin() + 1, et::Argument::from_tensor(std::move(b)));
    return n;
}

et::Node
add_node(int64_t id, et::TensorMeta a, et::TensorMeta b, et::TensorMeta out)
{
    et::Node n = unary_node(
        id, "aten::add.Tensor",
        "aten::add.Tensor(Tensor self, Tensor other, *, Scalar alpha=1) -> Tensor",
        std::move(a), std::move(out));
    n.inputs.insert(n.inputs.begin() + 1, et::Argument::from_tensor(std::move(b)));
    n.inputs.push_back(et::Argument::from_int(1));
    return n;
}

/// mul(a,b)->t1; add(t1,c)->t2; relu(t2)->t3; add(t3,t3)->t4 (unconsumed).
et::ExecutionTrace
chain_trace()
{
    const std::vector<int64_t> shape{2, 8};
    et::ExecutionTrace t;
    t.add_node(mul_node(0, f32_meta(1, shape), f32_meta(2, shape), f32_meta(3, shape)));
    t.add_node(add_node(1, f32_meta(3, shape), f32_meta(4, shape), f32_meta(5, shape)));
    t.add_node(relu_node(2, f32_meta(5, shape), f32_meta(6, shape)));
    t.add_node(add_node(3, f32_meta(6, shape), f32_meta(6, shape), f32_meta(7, shape)));
    return t;
}

const FusedGroup*
group_of(const ReplayPlan& plan, int op_index)
{
    const int gid = plan.ops()[static_cast<std::size_t>(op_index)].fused_group;
    return gid >= 0 ? &plan.fused_groups()[static_cast<std::size_t>(gid)] : nullptr;
}

TEST(PlanOptimizer, FusesSingleConsumerChainAndEliminatesDeadTail)
{
    const et::ExecutionTrace trace = chain_trace();
    const auto plan = ReplayPlan::build(trace, nullptr, replay_cfg(1));

    const OptimizerStats& st = plan->optimizer_stats();
    EXPECT_EQ(st.chains_formed, 1);
    EXPECT_EQ(st.ops_fused, 3);
    EXPECT_EQ(st.ops_eliminated, 1); // the unconsumed trailing add

    const FusedGroup* chain = group_of(*plan, 0);
    ASSERT_NE(chain, nullptr);
    EXPECT_EQ(chain->members, (std::vector<int>{0, 1, 2}));
    EXPECT_FALSE(chain->dead);
    EXPECT_TRUE(plan->ops()[0].fused_head);
    EXPECT_FALSE(plan->ops()[1].fused_head);
    EXPECT_EQ(group_of(*plan, 1), chain);
    EXPECT_EQ(group_of(*plan, 2), chain);

    const FusedGroup* dead = group_of(*plan, 3);
    ASSERT_NE(dead, nullptr);
    EXPECT_TRUE(dead->dead);
    EXPECT_EQ(dead->members, (std::vector<int>{3}));

    // Coverage counts the original ops, not the groups.
    const auto verbatim = ReplayPlan::build(trace, nullptr, replay_cfg(0));
    EXPECT_EQ(plan->to_json().at("coverage"), verbatim->to_json().at("coverage"));
}

TEST(PlanOptimizer, MultiConsumerIntermediateIsNotFusedOver)
{
    // relu(x0)->x1; exp(x1)->x2; add(x1,x2)->x3: x1 has two consumers, so
    // relu→exp must not fuse even though both ops are allowlisted.
    const std::vector<int64_t> shape{4, 4};
    et::ExecutionTrace t;
    t.add_node(relu_node(0, f32_meta(1, shape), f32_meta(2, shape)));
    t.add_node(unary_node(1, "aten::exp", "aten::exp(Tensor self) -> Tensor",
                          f32_meta(2, shape), f32_meta(3, shape)));
    t.add_node(add_node(2, f32_meta(2, shape), f32_meta(3, shape), f32_meta(4, shape)));

    const auto plan = ReplayPlan::build(t, nullptr, replay_cfg(1));
    const FusedGroup* g0 = group_of(*plan, 0);
    EXPECT_TRUE(g0 == nullptr || g0 != group_of(*plan, 1))
        << "chain fused across a multi-consumer intermediate";
}

TEST(PlanOptimizer, NumelMismatchBreaksTheChain)
{
    // relu over [2,8] followed by a relu recorded over [2,4]: the link's
    // slot-0 tensor id matches but the numel does not — no chain.
    et::ExecutionTrace t;
    t.add_node(relu_node(0, f32_meta(1, {2, 8}), f32_meta(2, {2, 8})));
    t.add_node(relu_node(1, f32_meta(2, {2, 4}), f32_meta(3, {2, 4})));
    t.add_node(add_node(2, f32_meta(3, {2, 4}), f32_meta(3, {2, 4}), f32_meta(4, {2, 4})));

    const auto plan = ReplayPlan::build(t, nullptr, replay_cfg(1));
    const FusedGroup* g0 = group_of(*plan, 0);
    EXPECT_TRUE(g0 == nullptr || g0 != group_of(*plan, 1));
    EXPECT_EQ(plan->optimizer_stats().chains_formed, 0);
}

TEST(PlanOptimizer, NonF32DtypeIsNotFusable)
{
    const std::vector<int64_t> shape{4, 4};
    et::TensorMeta in = f32_meta(1, shape);
    in.dtype = "float64";
    in.itemsize = 8;
    et::TensorMeta out = f32_meta(2, shape);
    out.dtype = "float64";
    out.itemsize = 8;
    et::ExecutionTrace t;
    t.add_node(relu_node(0, std::move(in), std::move(out)));

    const auto plan = ReplayPlan::build(t, nullptr, replay_cfg(1));
    EXPECT_TRUE(plan->fused_groups().empty());
}

TEST(PlanOptimizer, SkippedOpIsAFusionBarrier)
{
    // [mul,add] ── custom::mystery (unregistered → skipped) ── [relu,mul];
    // a trailing add keeps t2 alive and terminates the second chain.
    const std::vector<int64_t> shape{2, 8};
    et::ExecutionTrace t;
    t.add_node(mul_node(0, f32_meta(1, shape), f32_meta(2, shape), f32_meta(3, shape)));
    t.add_node(add_node(1, f32_meta(3, shape), f32_meta(4, shape), f32_meta(5, shape)));
    et::Node barrier = unary_node(2, "custom::mystery", "", f32_meta(5, shape),
                                  f32_meta(6, shape));
    barrier.category = dev::OpCategory::kCustom;
    t.add_node(std::move(barrier));
    t.add_node(relu_node(3, f32_meta(6, shape), f32_meta(7, shape)));
    t.add_node(mul_node(4, f32_meta(7, shape), f32_meta(8, shape), f32_meta(9, shape)));
    t.add_node(add_node(5, f32_meta(5, shape), f32_meta(9, shape), f32_meta(10, shape)));

    const auto plan = ReplayPlan::build(t, nullptr, replay_cfg(1));
    ASSERT_EQ(plan->ops().size(), 6u);
    EXPECT_EQ(plan->ops()[2].kind, ReconstructedOp::Kind::kSkipped);
    EXPECT_EQ(plan->ops()[2].fused_group, -1);

    EXPECT_EQ(plan->optimizer_stats().chains_formed, 2);
    const FusedGroup* before = group_of(*plan, 0);
    const FusedGroup* after = group_of(*plan, 3);
    ASSERT_NE(before, nullptr);
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(before->members, (std::vector<int>{0, 1}));
    EXPECT_EQ(after->members, (std::vector<int>{3, 4}));
}

TEST(PlanOptimizer, BatchNormFusesAsChainHeadOnly)
{
    wl::WorkloadOptions tiny;
    tiny.preset = wl::Preset::kTiny;
    wl::RunConfig rc;
    rc.mode = fw::ExecMode::kShapeOnly;
    rc.warmup_iterations = 1;
    rc.iterations = 2;
    const wl::RunResult orig = wl::run_original("resnet", tiny, rc);
    ReplayConfig cfg = replay_cfg(1);
    cfg.filter.subtrace_root = "## forward ##";
    const auto plan = ReplayPlan::build(orig.rank0().trace, &orig.rank0().prof, cfg);

    int bn_headed_chains = 0;
    for (const FusedGroup& g : plan->fused_groups()) {
        for (std::size_t k = 0; k < g.stages.size(); ++k) {
            if (g.stages[k].kernel == fw::FusedKernel::kBatchNorm) {
                EXPECT_EQ(k, 0u) << "batch_norm fused mid-chain";
                if (g.members.size() >= 2)
                    ++bn_headed_chains;
            }
        }
    }
    EXPECT_GE(bn_headed_chains, 1) << "resnet forward should fuse bn→relu chains";
}

// ---------------------------------------------------------------------------
// Opt-out and plan identity.
// ---------------------------------------------------------------------------

TEST(PlanOptimizer, OptLevelZeroProducesVerbatimPlan)
{
    const et::ExecutionTrace trace = chain_trace();
    const auto plan = ReplayPlan::build(trace, nullptr, replay_cfg(0));
    EXPECT_TRUE(plan->fused_groups().empty());
    const OptimizerStats& st = plan->optimizer_stats();
    EXPECT_EQ(st.chains_formed, 0);
    EXPECT_EQ(st.ops_fused, 0);
    EXPECT_EQ(st.ops_eliminated, 0);
    for (const ReconstructedOp& op : plan->ops()) {
        EXPECT_EQ(op.fused_group, -1);
        EXPECT_FALSE(op.fused_head);
    }
}

TEST(PlanOptimizer, MystOptLevelEnvDisablesByDefault)
{
    ASSERT_EQ(::setenv("MYST_OPT_LEVEL", "0", 1), 0);
    const ReplayConfig opted_out; // defaults read the environment
    ::unsetenv("MYST_OPT_LEVEL");
    const ReplayConfig opted_in;
    EXPECT_EQ(opted_out.opt_level, 0);
    EXPECT_EQ(opted_in.opt_level, 1);
    EXPECT_NE(opted_out.fingerprint(), opted_in.fingerprint())
        << "opt_level must be part of the config fingerprint";
}

TEST(PlanOptimizer, OptimizedAndVerbatimPlansNeverAlias)
{
    const et::ExecutionTrace trace = chain_trace();
    const ReplayConfig cfg_opt = replay_cfg(1);
    const ReplayConfig cfg_verb = replay_cfg(0);

    // Memory tier: two distinct keys, two builds, then pure hits.
    PlanCache cache(8);
    const auto p_opt = cache.get_or_build(trace, nullptr, cfg_opt);
    const auto p_verb = cache.get_or_build(trace, nullptr, cfg_verb);
    EXPECT_NE(p_opt->key(), p_verb->key());
    EXPECT_NE(p_opt.get(), p_verb.get());
    EXPECT_FALSE(p_opt->fused_groups().empty());
    EXPECT_TRUE(p_verb->fused_groups().empty());
    EXPECT_EQ(cache.stats().builds, 2u);
    EXPECT_EQ(cache.get_or_build(trace, nullptr, cfg_opt).get(), p_opt.get());
    EXPECT_EQ(cache.get_or_build(trace, nullptr, cfg_verb).get(), p_verb.get());
    EXPECT_EQ(cache.stats().hits, 2u);

    // Disk tier: the store files for the two keys never collide either.
    const std::string dir =
        (fs::temp_directory_path() / "myst_plan_optimizer_alias_test").string();
    PlanStore store(dir);
    EXPECT_NE(store.entry_path(plan_key(trace, nullptr, cfg_opt)),
              store.entry_path(plan_key(trace, nullptr, cfg_verb)));
}

// ---------------------------------------------------------------------------
// Serialization: round-trip, replay equivalence, tamper quarantine.
// ---------------------------------------------------------------------------

TEST(PlanOptimizer, FusedPlanRoundTripsThroughJsonLosslessly)
{
    const et::ExecutionTrace trace = chain_trace();
    const auto plan = ReplayPlan::build(trace, nullptr, replay_cfg(1));
    ASSERT_FALSE(plan->fused_groups().empty());

    const Json j = plan->to_json();
    const auto restored = ReplayPlan::from_json(j, trace);
    EXPECT_EQ(restored->to_json(), j);

    ASSERT_EQ(restored->fused_groups().size(), plan->fused_groups().size());
    for (std::size_t i = 0; i < plan->fused_groups().size(); ++i) {
        EXPECT_EQ(restored->fused_groups()[i].members, plan->fused_groups()[i].members);
        EXPECT_EQ(restored->fused_groups()[i].dead, plan->fused_groups()[i].dead);
        EXPECT_EQ(restored->fused_groups()[i].stages.size(),
                  plan->fused_groups()[i].stages.size());
    }

    const ReplayConfig cfg = replay_cfg(1);
    const ReplayResult a = Replayer(plan, cfg).run();
    const ReplayResult b = Replayer(restored, cfg).run();
    EXPECT_EQ(a.iter_us, b.iter_us);
    EXPECT_EQ(a.prof.kernels().size(), b.prof.kernels().size());
}

TEST(PlanOptimizer, FusedReplayIsBitIdenticalToVerbatim)
{
    // Numeric mode drives the fused interpreter through its arithmetic paths
    // (sigmoid gates on rm; batch_norm heads on resnet) — the replayed
    // timeline must still match verbatim replay exactly.
    struct Case {
        const char* workload;
        const char* subtrace;
    };
    for (const Case c : {Case{"rm", "## forward:z ##"}, Case{"resnet", "## forward ##"}}) {
        wl::WorkloadOptions tiny;
        tiny.preset = wl::Preset::kTiny;
        wl::RunConfig rc;
        rc.mode = fw::ExecMode::kNumeric;
        rc.warmup_iterations = 1;
        rc.iterations = 2;
        const wl::RunResult orig = wl::run_original(c.workload, tiny, rc);

        ReplayConfig cfg_opt = replay_cfg(1);
        cfg_opt.mode = fw::ExecMode::kNumeric;
        cfg_opt.filter.subtrace_root = c.subtrace;
        ReplayConfig cfg_verb = cfg_opt;
        cfg_verb.opt_level = 0;

        const auto& r0 = orig.rank0();
        const auto p_opt = ReplayPlan::build(r0.trace, &r0.prof, cfg_opt);
        const auto p_verb = ReplayPlan::build(r0.trace, &r0.prof, cfg_verb);
        ASSERT_GE(p_opt->optimizer_stats().chains_formed, 1) << c.workload;

        const ReplayResult ro = Replayer(p_opt, cfg_opt).run();
        const ReplayResult rv = Replayer(p_verb, cfg_verb).run();
        EXPECT_EQ(ro.iter_us, rv.iter_us) << c.workload;
        ASSERT_EQ(ro.prof.kernels().size(), rv.prof.kernels().size()) << c.workload;
        for (std::size_t i = 0; i < ro.prof.kernels().size(); ++i) {
            const prof::KernelEvent& x = ro.prof.kernels()[i];
            const prof::KernelEvent& y = rv.prof.kernels()[i];
            EXPECT_EQ(x.name, y.name) << c.workload << " kernel " << i;
            EXPECT_EQ(x.ts, y.ts) << c.workload << " kernel " << i;
            EXPECT_EQ(x.dur, y.dur) << c.workload << " kernel " << i;
            EXPECT_EQ(x.stream, y.stream) << c.workload << " kernel " << i;
        }
        EXPECT_EQ(p_opt->to_json().at("coverage"), p_verb->to_json().at("coverage"))
            << c.workload;
    }
}

TEST(PlanOptimizer, TamperedFusedGroupQuarantinesOnRestore)
{
    const et::ExecutionTrace trace = chain_trace();
    const auto plan = ReplayPlan::build(trace, nullptr, replay_cfg(1));
    const Json good = plan->to_json();

    // Stretch the chain over the dead trailing add: member 3's slot-0 input
    // is not member 2's output, so finalize_group must reject the document.
    Json doc = good;
    Json groups = doc.at("fused_groups");
    Json g0 = groups.as_array().front();
    Json members = Json::array();
    for (int m : {0, 1, 2, 3})
        members.push_back(Json(static_cast<int64_t>(m)));
    g0.set("members", std::move(members));
    g0.set("dead", Json(false));
    groups.as_array().front() = std::move(g0);
    doc.set("fused_groups", std::move(groups));
    EXPECT_THROW((void)ReplayPlan::from_json(doc, trace), ParseError);

    // Out-of-range member index: same contract.
    Json doc2 = good;
    Json groups2 = doc2.at("fused_groups");
    Json g2 = groups2.as_array().front();
    Json members2 = Json::array();
    members2.push_back(Json(int64_t{99}));
    g2.set("members", std::move(members2));
    groups2.as_array().front() = std::move(g2);
    doc2.set("fused_groups", std::move(groups2));
    EXPECT_THROW((void)ReplayPlan::from_json(doc2, trace), ParseError);
}

} // namespace
} // namespace mystique::core
