/// SweepJournal unit tests: bit-exact record round-trips, torn-line
/// tolerance, latest-record-wins resume lookups, the quarantine streak and
/// its healing, and best-effort appends under injected journal faults.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/error.h"
#include "common/fault_injection.h"
#include "core/sweep_journal.h"

namespace mystique::core {
namespace {

namespace fs = std::filesystem;

struct TempDir {
    TempDir()
    {
        static int counter = 0;
        path = (fs::temp_directory_path() /
                ("myst_journal_test_" + std::to_string(counter++)))
                   .string();
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string path;
};

uint64_t
bits(double v)
{
    uint64_t b = 0;
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

SweepJournalRecord
ok_record(uint64_t sweep, uint64_t group, double mean)
{
    SweepJournalRecord rec;
    rec.sweep_fp = sweep;
    rec.group_fp = group;
    rec.status = GroupStatus::kOk;
    rec.attempts = 1;
    rec.population_weight = 0.25;
    rec.iter_us = {mean - 0.5, mean + 0.5};
    rec.mean_iter_us = mean;
    return rec;
}

SweepJournalRecord
failed_record(uint64_t sweep, uint64_t group, const std::string& error)
{
    SweepJournalRecord rec;
    rec.sweep_fp = sweep;
    rec.group_fp = group;
    rec.status = GroupStatus::kFailed;
    rec.attempts = 2;
    rec.error = error;
    rec.population_weight = 0.25;
    return rec;
}

TEST(SweepJournal, StatusStringsRoundTrip)
{
    for (GroupStatus s : {GroupStatus::kOk, GroupStatus::kFailed, GroupStatus::kTimedOut,
                          GroupStatus::kQuarantined, GroupStatus::kSkipped})
        EXPECT_EQ(group_status_from_string(to_string(s)), s);
    EXPECT_THROW(group_status_from_string("sideways"), ParseError);
}

TEST(SweepJournal, RecordsRoundTripBitExactly)
{
    TempDir dir;
    // Awkward doubles on purpose: a denormal, a value with no short decimal
    // form, and a negative zero — the bit-pattern encoding must keep each.
    SweepJournalRecord rec = ok_record(0xDEADBEEF12345678ull, 42, 0.1 + 0.2);
    rec.iter_us = {5e-324, 0.1 + 0.2, -0.0};
    {
        SweepJournal j(dir.path);
        EXPECT_TRUE(j.append(rec));
        EXPECT_TRUE(j.append(failed_record(1, 43, "it broke")));
    }

    SweepJournal j2(dir.path);
    EXPECT_EQ(j2.load(), 2u);
    const auto got = j2.completed(rec.sweep_fp, rec.group_fp);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->attempts, 1u);
    EXPECT_EQ(bits(got->population_weight), bits(rec.population_weight));
    EXPECT_EQ(bits(got->mean_iter_us), bits(rec.mean_iter_us));
    ASSERT_EQ(got->iter_us.size(), rec.iter_us.size());
    for (std::size_t i = 0; i < rec.iter_us.size(); ++i)
        EXPECT_EQ(bits(got->iter_us[i]), bits(rec.iter_us[i]));

    const auto fail = j2.last_failure(43);
    ASSERT_TRUE(fail.has_value());
    EXPECT_EQ(fail->error, "it broke");
}

TEST(SweepJournal, TornLinesAreSkippedNotFatal)
{
    TempDir dir;
    {
        SweepJournal j(dir.path);
        EXPECT_TRUE(j.append(ok_record(1, 10, 100.0)));
        EXPECT_TRUE(j.append(ok_record(1, 11, 200.0)));
    }
    {
        // Simulate a crash mid-append by hand-tearing the file.
        std::ofstream f(dir.path + "/sweep_journal.jsonl", std::ios::app);
        f << "{\"v\":1,\"sweep\":\"1\",\"gro";
    }
    SweepJournal j(dir.path);
    EXPECT_EQ(j.load(), 2u); // the torn line invalidates itself, not the file
    EXPECT_TRUE(j.completed(1, 10).has_value());
    EXPECT_TRUE(j.completed(1, 11).has_value());
}

TEST(SweepJournal, LatestRecordWinsAndFailureInvalidatesStaleSuccess)
{
    TempDir dir;
    SweepJournal j(dir.path);
    EXPECT_TRUE(j.append(ok_record(1, 10, 100.0)));
    EXPECT_TRUE(j.completed(1, 10).has_value());

    // A failure recorded after the success is newer evidence: resume must
    // not serve the stale success.
    EXPECT_TRUE(j.append(failed_record(1, 10, "regressed")));
    EXPECT_FALSE(j.completed(1, 10).has_value());

    // Success recorded later wins again — and with an updated mean.
    EXPECT_TRUE(j.append(ok_record(1, 10, 150.0)));
    const auto got = j.completed(1, 10);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->mean_iter_us, 150.0);

    // Lookups are scoped to the sweep fingerprint.
    EXPECT_FALSE(j.completed(2, 10).has_value());
}

TEST(SweepJournal, QuarantineEngagesOnConsecutiveFailuresAndHeals)
{
    TempDir dir;
    SweepJournal j(dir.path);
    EXPECT_FALSE(j.quarantined(10));

    EXPECT_TRUE(j.append(failed_record(1, 10, "first")));
    EXPECT_EQ(j.consecutive_failures(10), 1);
    EXPECT_FALSE(j.quarantined(10));

    EXPECT_TRUE(j.append(failed_record(2, 10, "second")));
    EXPECT_EQ(j.consecutive_failures(10), 2);
    EXPECT_TRUE(j.quarantined(10));
    const auto fail = j.last_failure(10);
    ASSERT_TRUE(fail.has_value());
    EXPECT_EQ(fail->error, "second");

    // Other fingerprints are unaffected; interleaved records don't bleed.
    EXPECT_TRUE(j.append(failed_record(1, 11, "other")));
    EXPECT_EQ(j.consecutive_failures(11), 1);
    EXPECT_TRUE(j.quarantined(10));

    // A recorded success heals: the streak resets to zero.
    EXPECT_TRUE(j.append(ok_record(3, 10, 100.0)));
    EXPECT_EQ(j.consecutive_failures(10), 0);
    EXPECT_FALSE(j.quarantined(10));
}

TEST(SweepJournal, WriteFaultIsAbsorbedAndAccountingSurvivesInMemory)
{
    TempDir dir;
    FaultInjection& fi = FaultInjection::instance();
    fi.disarm_all();
    fi.arm("journal.write", 1, FaultMode::kEvery);

    SweepJournal j(dir.path);
    EXPECT_FALSE(j.append(failed_record(1, 10, "x"))); // publish fails...
    EXPECT_FALSE(j.append(failed_record(2, 10, "y")));
    EXPECT_EQ(j.consecutive_failures(10), 2); // ...but accounting still sees it
    EXPECT_TRUE(j.quarantined(10));
    fi.disarm_all();

    // Nothing was ever published, so a fresh journal starts empty.
    SweepJournal j2(dir.path);
    EXPECT_EQ(j2.load(), 0u);
    EXPECT_FALSE(j2.quarantined(10));
}

TEST(SweepJournal, LoadFaultWarnsAndStartsFresh)
{
    TempDir dir;
    {
        SweepJournal j(dir.path);
        EXPECT_TRUE(j.append(ok_record(1, 10, 100.0)));
    }
    FaultInjection& fi = FaultInjection::instance();
    fi.disarm_all();
    fi.arm("journal.load", 1, FaultMode::kOnce);
    SweepJournal j(dir.path);
    EXPECT_EQ(j.load(), 0u); // unreadable journal = fresh, not fatal
    fi.disarm_all();
    EXPECT_EQ(j.load(), 1u); // the file itself was never damaged
}

} // namespace
} // namespace mystique::core
