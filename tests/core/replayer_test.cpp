/// End-to-end replayer tests: trace → replay fidelity on tiny numeric
/// workloads, tensor management, filters, scale-down, codegen, obfuscation.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/codegen.h"
#include "core/obfuscator.h"
#include "core/replayer.h"
#include "core/similarity.h"
#include "core/tensor_manager.h"
#include "workloads/harness.h"

namespace mystique::core {
namespace {

wl::RunConfig
tiny_cfg()
{
    wl::RunConfig cfg;
    cfg.mode = fw::ExecMode::kNumeric;
    cfg.warmup_iterations = 1;
    cfg.iterations = 3;
    cfg.seed = 7;
    return cfg;
}

wl::WorkloadOptions
tiny_opts()
{
    wl::WorkloadOptions o;
    o.preset = wl::Preset::kTiny;
    return o;
}

ReplayConfig
tiny_replay()
{
    ReplayConfig cfg;
    cfg.mode = fw::ExecMode::kNumeric;
    cfg.warmup_iterations = 1;
    cfg.iterations = 3;
    return cfg;
}

class WorkloadReplayTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadReplayTest, ReplayMatchesOriginalWithinTolerance)
{
    const std::string name = GetParam();
    const wl::RunResult orig = wl::run_original(name, tiny_opts(), tiny_cfg());
    const auto& r0 = orig.rank0();
    ASSERT_GT(r0.trace.size(), 0u);
    ASSERT_GT(r0.prof.kernels().size(), 0u);

    Replayer replayer(r0.trace, &r0.prof, tiny_replay());
    const ReplayResult rep = replayer.run();

    // Compare against the calibrated original (excluding unsupported ops'
    // exposed time), as Table 4 does.
    const double calibrated =
        orig.mean_iter_us - rep.coverage.unsupported_exposed_us;
    EXPECT_NEAR(rep.mean_iter_us, calibrated, calibrated * 0.25)
        << "replay diverged for " << name;
    EXPECT_GT(rep.coverage.count_fraction, 0.9);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadReplayTest,
                         ::testing::Values("param_linear", "resnet", "asr", "rm"));

TEST(Replayer, CoverageFullForAtenOnlyWorkloads)
{
    const wl::RunResult orig = wl::run_original("param_linear", tiny_opts(), tiny_cfg());
    Replayer replayer(orig.rank0().trace, &orig.rank0().prof, tiny_replay());
    EXPECT_DOUBLE_EQ(replayer.coverage_stats().count_fraction, 1.0);
    EXPECT_DOUBLE_EQ(replayer.coverage_stats().time_fraction, 1.0);
}

TEST(Replayer, AsrCustomOpsUnsupportedUntilRegistered)
{
    const wl::RunResult orig = wl::run_original("asr", tiny_opts(), tiny_cfg());
    const auto& r0 = orig.rank0();

    ReplayConfig cfg = tiny_replay();
    Replayer without(r0.trace, &r0.prof, cfg);
    EXPECT_LT(without.coverage_stats().count_fraction, 1.0);
    EXPECT_EQ(without.coverage_stats().unsupported_by_name.count("fairseq::lstm_layer"),
              1u);

    // The §4.3.3 interface: registering the custom ops restores coverage.
    cfg.custom_ops.register_namespace("fairseq::");
    Replayer with(r0.trace, &r0.prof, cfg);
    EXPECT_GT(with.coverage_stats().count_fraction,
              without.coverage_stats().count_fraction);
    EXPECT_EQ(with.coverage_stats().unsupported_by_name.count("fairseq::lstm_layer"), 0u);

    // And the replayed time moves toward the full original.
    const ReplayResult rep_without = without.run();
    const ReplayResult rep_with = with.run();
    EXPECT_GT(rep_with.mean_iter_us, rep_without.mean_iter_us);
}

TEST(Replayer, IterationsAreConsistent)
{
    const wl::RunResult orig = wl::run_original("param_linear", tiny_opts(), tiny_cfg());
    ReplayConfig cfg = tiny_replay();
    cfg.iterations = 5;
    Replayer replayer(orig.rank0().trace, &orig.rank0().prof, cfg);
    const ReplayResult rep = replayer.run();
    ASSERT_EQ(rep.iter_us.size(), 5u);
    for (double t : rep.iter_us)
        EXPECT_NEAR(t, rep.mean_iter_us, rep.mean_iter_us * 0.1);
}

TEST(Replayer, PortableAcrossPlatforms)
{
    // Trace collected on A100 replays on V100 and CPU without regeneration
    // (§6.7); slower platforms take longer.  Paper-scale shapes (shape-only
    // execution) so compute, not launch overhead, dominates.
    wl::RunConfig run_cfg = tiny_cfg();
    run_cfg.mode = fw::ExecMode::kShapeOnly;
    const wl::RunResult orig = wl::run_original("param_linear", {}, run_cfg);
    ReplayConfig cfg = tiny_replay();
    cfg.mode = fw::ExecMode::kShapeOnly;
    Replayer a100(orig.rank0().trace, &orig.rank0().prof, cfg);
    const double t_a100 = a100.run().mean_iter_us;
    cfg.platform = "V100";
    Replayer v100(orig.rank0().trace, &orig.rank0().prof, cfg);
    const double t_v100 = v100.run().mean_iter_us;
    cfg.platform = "CPU";
    Replayer cpu(orig.rank0().trace, &orig.rank0().prof, cfg);
    const double t_cpu = cpu.run().mean_iter_us;
    EXPECT_GT(t_v100, t_a100);
    EXPECT_GT(t_cpu, t_v100);
}

TEST(Replayer, SubtraceReplayIsSubsetOfFull)
{
    const wl::RunResult orig = wl::run_original("rm", tiny_opts(), tiny_cfg());
    const auto& r0 = orig.rank0();
    ReplayConfig cfg = tiny_replay();
    Replayer full(r0.trace, &r0.prof, cfg);
    cfg.filter.subtrace_root = "## forward:z ##";
    Replayer sub(r0.trace, &r0.prof, cfg);
    EXPECT_LT(sub.selection().total_selected(), full.selection().total_selected());
    EXPECT_GT(sub.selection().total_selected(), 0);
    const double t_sub = sub.run().mean_iter_us;
    const double t_full = full.run().mean_iter_us;
    EXPECT_LT(t_sub, t_full);
}

TEST(Replayer, CommsOnlyFilter)
{
    wl::RunConfig cfg = tiny_cfg();
    cfg.world_size = 2;
    const wl::RunResult orig = wl::run_original("param_linear", tiny_opts(), cfg);
    std::vector<const et::ExecutionTrace*> traces;
    std::vector<const prof::ProfilerTrace*> profs;
    for (const auto& r : orig.ranks) {
        traces.push_back(&r.trace);
        profs.push_back(&r.prof);
    }
    ReplayConfig rcfg = tiny_replay();
    rcfg.filter.only_category = dev::OpCategory::kComm;
    const auto reps = Replayer::run_distributed(traces, profs, rcfg);
    ASSERT_EQ(reps.size(), 2u);
    // Only comm ops replayed: every kernel in the replay profile is comm.
    for (const auto& k : reps[0].prof.kernels())
        EXPECT_EQ(k.category, dev::OpCategory::kComm);
    EXPECT_GT(reps[0].prof.kernels().size(), 0u);
}

TEST(Replayer, DistributedReplayMatches)
{
    wl::RunConfig cfg = tiny_cfg();
    cfg.world_size = 2;
    const wl::RunResult orig = wl::run_original("rm", tiny_opts(), cfg);
    std::vector<const et::ExecutionTrace*> traces;
    std::vector<const prof::ProfilerTrace*> profs;
    for (const auto& r : orig.ranks) {
        traces.push_back(&r.trace);
        profs.push_back(&r.prof);
    }
    const auto reps = Replayer::run_distributed(traces, profs, tiny_replay());
    ASSERT_EQ(reps.size(), 2u);
    double mean = (reps[0].mean_iter_us + reps[1].mean_iter_us) / 2.0;
    EXPECT_NEAR(mean, orig.mean_iter_us, orig.mean_iter_us * 0.3);
}

TEST(Replayer, ScaleDownEmulationInflatesCommTime)
{
    // §7.3: replay 2-rank traces as-if at 64 ranks; comm delay grows, local
    // compute stays put.
    wl::RunConfig cfg = tiny_cfg();
    cfg.world_size = 2;
    const wl::RunResult orig = wl::run_original("param_linear", tiny_opts(), cfg);
    std::vector<const et::ExecutionTrace*> traces;
    std::vector<const prof::ProfilerTrace*> profs;
    for (const auto& r : orig.ranks) {
        traces.push_back(&r.trace);
        profs.push_back(&r.prof);
    }
    ReplayConfig rcfg = tiny_replay();
    const auto plain = Replayer::run_distributed(traces, profs, rcfg);
    rcfg.emulate_world_size = 64;
    const auto emulated = Replayer::run_distributed(traces, profs, rcfg);
    double comm_plain = 0.0, comm_emulated = 0.0;
    for (const auto& k : plain[0].prof.kernels())
        if (k.category == dev::OpCategory::kComm)
            comm_plain += k.dur;
    for (const auto& k : emulated[0].prof.kernels())
        if (k.category == dev::OpCategory::kComm)
            comm_emulated += k.dur;
    EXPECT_GT(comm_emulated, comm_plain);
}

/// Builds a one-op trace with a large embedding lookup over a big table, so
/// index-distribution effects dominate (tiny-preset tables are too small).
et::ExecutionTrace
embedding_trace(int64_t rows, int64_t dim, int64_t nnz, int64_t bags)
{
    auto tensor = [](int64_t uid, std::vector<int64_t> shape, const char* dtype) {
        et::TensorMeta m;
        m.tensor_id = uid;
        m.storage_id = uid + 100;
        m.numel = fw::shape_numel(shape);
        m.itemsize = dtype == std::string("int64") ? 8 : 4;
        m.shape = std::move(shape);
        m.dtype = dtype;
        return m;
    };
    et::Node n;
    n.id = 0;
    n.name = "aten::embedding_bag";
    n.parent = -1;
    n.kind = et::NodeKind::kOperator;
    n.op_schema = "aten::embedding_bag(Tensor weight, Tensor indices, Tensor offsets, "
                  "int mode=0) -> Tensor";
    n.inputs.push_back(et::Argument::from_tensor(tensor(1, {rows, dim}, "float32")));
    n.inputs.push_back(et::Argument::from_tensor(tensor(2, {nnz}, "int64")));
    n.inputs.push_back(et::Argument::from_tensor(tensor(3, {bags}, "int64")));
    n.inputs.push_back(et::Argument::from_int(0));
    n.outputs.push_back(et::Argument::from_tensor(tensor(4, {bags, dim}, "float32")));
    et::ExecutionTrace t;
    t.add_node(std::move(n));
    return t;
}

TEST(Replayer, EmbeddingConfigShiftsTiming)
{
    // The §4.4 value-dependence: uniform vs Zipf index generation changes
    // embedding kernel durations in the replay.
    const et::ExecutionTrace trace = embedding_trace(200000, 64, 1 << 16, 512);
    ReplayConfig cfg = tiny_replay();
    cfg.mode = fw::ExecMode::kShapeOnly;
    cfg.embedding.distribution = EmbeddingGenConfig::Distribution::kUniform;
    Replayer uniform(trace, nullptr, cfg);
    cfg.embedding.distribution = EmbeddingGenConfig::Distribution::kZipf;
    cfg.embedding.zipf_s = 1.2;
    Replayer zipf(trace, nullptr, cfg);
    double emb_uniform = 0.0, emb_zipf = 0.0;
    for (const auto& k : uniform.run().prof.kernels())
        if (k.kind == dev::KernelKind::kEmbedding)
            emb_uniform += k.dur;
    for (const auto& k : zipf.run().prof.kernels())
        if (k.kind == dev::KernelKind::kEmbedding)
            emb_zipf += k.dur;
    EXPECT_GT(emb_uniform, 0.0);
    // Skewed indices → better locality → faster gathers.
    EXPECT_LT(emb_zipf, emb_uniform * 0.95);
}

TEST(Similarity, ReportsSmallErrorsForFaithfulReplay)
{
    const wl::RunResult orig = wl::run_original("param_linear", tiny_opts(), tiny_cfg());
    const auto& r0 = orig.rank0();
    Replayer replayer(r0.trace, &r0.prof, tiny_replay());
    const ReplayResult rep = replayer.run();
    const SimilarityReport sim =
        compare_runs(orig.mean_iter_us, r0.metrics, r0.prof, rep.mean_iter_us, rep.metrics,
                     rep.prof);
    // Tiny presets are dispatch-dominated, so the replay/eager CPU-path
    // difference is magnified relative to paper-scale runs.
    EXPECT_LT(sim.e2e_error, 0.30);
    EXPECT_LT(sim.sm_util_error, 0.30);
    EXPECT_FALSE(sim.top_kernels.empty());
    for (const auto& k : sim.top_kernels) {
        EXPECT_NEAR(k.ipc_ratio, 1.0, 0.1) << k.name;
        EXPECT_NEAR(k.l1_ratio, 1.0, 0.1) << k.name;
        EXPECT_NEAR(k.l2_ratio, 1.0, 0.1) << k.name;
        EXPECT_NEAR(k.sm_throughput_ratio, 1.0, 0.1) << k.name;
    }
    EXPECT_NEAR(sim.overall.duration_ratio, 1.0, 0.15);
}

TEST(Codegen, WritesBenchmarkPackage)
{
    const wl::RunResult orig = wl::run_original("param_linear", tiny_opts(), tiny_cfg());
    const std::string dir = testing::TempDir() + "/mystique_benchgen";
    std::filesystem::remove_all(dir);
    const CodegenResult res =
        generate_benchmark(dir, orig.rank0().trace, orig.rank0().prof, tiny_replay());
    EXPECT_EQ(res.files_written, 6);
    EXPECT_TRUE(std::filesystem::exists(dir + "/execution_trace.json"));
    EXPECT_TRUE(std::filesystem::exists(dir + "/profiler_trace.json"));
    EXPECT_TRUE(std::filesystem::exists(dir + "/replay_plan.json"));
    EXPECT_TRUE(std::filesystem::exists(dir + "/manifest.json"));
    EXPECT_TRUE(std::filesystem::exists(dir + "/benchmark_main.cpp"));
    EXPECT_TRUE(std::filesystem::exists(dir + "/README.md"));
    // The saved ET replays identically to the in-memory one.
    const et::ExecutionTrace loaded = et::ExecutionTrace::load(dir + "/execution_trace.json");
    Replayer from_disk(loaded, nullptr, tiny_replay());
    EXPECT_EQ(from_disk.selection().total_selected(),
              Replayer(orig.rank0().trace, nullptr, tiny_replay()).selection().total_selected());
    // The plan JSON carries compiled IR for ATen ops.
    const Json plan = Json::parse_file(dir + "/replay_plan.json");
    EXPECT_GT(plan.at("ops").as_array().size(), 0u);
    bool has_ir = false;
    for (const auto& op : plan.at("ops").as_array())
        has_ir = has_ir || op.contains("ir");
    EXPECT_TRUE(has_ir);
}

TEST(Obfuscator, SubstitutesCustomOpsAndStaysReplayable)
{
    const wl::RunResult orig = wl::run_original("rm", tiny_opts(), tiny_cfg());
    const auto& r0 = orig.rank0();
    const et::ExecutionTrace obf = obfuscate(r0.trace, r0.prof);

    // No custom names survive except the public proxy; annotations renamed.
    for (const auto& n : obf.nodes()) {
        if (n.category == dev::OpCategory::kCustom)
            EXPECT_EQ(n.name, "obf::proxy");
        if (n.kind == et::NodeKind::kWrapper)
            EXPECT_EQ(n.name.rfind("annotation_", 0), 0u);
    }
    // The obfuscated trace replays with FULL custom coverage (proxies are
    // public) and similar time.
    Replayer replayer(obf, nullptr, tiny_replay());
    for (const auto& [name, cnt] : replayer.coverage_stats().unsupported_by_name)
        EXPECT_EQ(name.find("fbgemm"), std::string::npos) << name;
    const ReplayResult rep = replayer.run();
    EXPECT_GT(rep.mean_iter_us, 0.0);
}

TEST(TensorManager, ClassifiesAndGeneratesValidTensors)
{
    const wl::RunResult orig = wl::run_original("rm", tiny_opts(), tiny_cfg());
    Replayer replayer(orig.rank0().trace, &orig.rank0().prof, tiny_replay());
    // Running twice exercises instantiate/bind across iterations.
    const ReplayResult rep = replayer.run();
    EXPECT_GT(rep.mean_iter_us, 0.0);
}

} // namespace
} // namespace mystique::core
