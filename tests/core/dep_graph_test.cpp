/// Dependency-graph builder tests (core/plan_optimizer.h): def-use edges
/// (RAW/WAW/WAR over tensor AND storage ids), collective/custom barriers,
/// fused-group units, cycle rejection in validate_dep_graph, the plan JSON
/// round-trip of the graph, tampered-graph quarantine on restore, and the
/// async executor's per-stream identity with the serial walk.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/plan_optimizer.h"
#include "core/replayer.h"
#include "testing/trace_fuzzer.h"

namespace mystique::core {
namespace {

ReplayConfig
replay_cfg(int opt_level)
{
    ReplayConfig cfg;
    cfg.mode = fw::ExecMode::kShapeOnly;
    cfg.warmup_iterations = 1;
    cfg.iterations = 2;
    cfg.opt_level = opt_level;
    return cfg;
}

et::TensorMeta
f32_meta(int64_t uid, std::vector<int64_t> shape)
{
    et::TensorMeta m;
    m.tensor_id = uid;
    m.storage_id = uid + 1000;
    m.numel = fw::shape_numel(shape);
    m.shape = std::move(shape);
    return m;
}

et::Node
unary_node(int64_t id, const char* name, const char* schema, et::TensorMeta in,
           et::TensorMeta out)
{
    et::Node n;
    n.id = id;
    n.name = name;
    n.op_schema = schema;
    n.inputs.push_back(et::Argument::from_tensor(std::move(in)));
    n.outputs.push_back(et::Argument::from_tensor(std::move(out)));
    return n;
}

et::Node
relu_node(int64_t id, et::TensorMeta in, et::TensorMeta out)
{
    return unary_node(id, "aten::relu", "aten::relu(Tensor self) -> Tensor",
                      std::move(in), std::move(out));
}

et::Node
all_reduce_node(int64_t id, et::TensorMeta in, et::TensorMeta out)
{
    et::Node n = unary_node(id, "c10d::all_reduce",
                            "c10d::all_reduce(Tensor tensor, int pg) -> Tensor",
                            std::move(in), std::move(out));
    n.inputs.push_back(et::Argument::from_int(0));
    n.category = dev::OpCategory::kComm;
    return n;
}

/// Builds the plan and returns its dependency graph (always derived at plan
/// build, at every opt level).
const DepGraph&
graph_of(const std::shared_ptr<const ReplayPlan>& plan)
{
    return plan->dep_graph();
}

TEST(DepGraph, DefUseEdgesFollowTensorFlow)
{
    // relu(1)->2; relu(2)->3; relu(4)->5: a RAW chain 0→1 plus an
    // independent third op with no edges at all.
    const std::vector<int64_t> shape{2, 8};
    et::ExecutionTrace t;
    t.add_node(relu_node(0, f32_meta(1, shape), f32_meta(2, shape)));
    t.add_node(relu_node(1, f32_meta(2, shape), f32_meta(3, shape)));
    t.add_node(relu_node(2, f32_meta(4, shape), f32_meta(5, shape)));

    const auto plan = ReplayPlan::build(t, nullptr, replay_cfg(0));
    const DepGraph& g = graph_of(plan);
    ASSERT_EQ(g.units.size(), 3u);
    EXPECT_TRUE(g.units[0].deps.empty());
    EXPECT_EQ(g.units[1].deps, (std::vector<int>{0}));
    EXPECT_TRUE(g.units[2].deps.empty())
        << "independent streams of work must not be serialized";
    for (const DepUnit& u : g.units) {
        EXPECT_FALSE(u.barrier);
        EXPECT_FALSE(u.comm);
        EXPECT_EQ(u.group, -1);
    }
}

TEST(DepGraph, StorageAliasingCreatesWawEdge)
{
    // Two writes to distinct tensor ids backed by ONE storage id: the
    // def-use scan must track storage identity too, or the second write
    // could be scheduled before the first.
    const std::vector<int64_t> shape{2, 8};
    et::TensorMeta out_a = f32_meta(2, shape);
    et::TensorMeta out_b = f32_meta(5, shape);
    out_b.storage_id = out_a.storage_id; // aliased buffers
    et::ExecutionTrace t;
    t.add_node(relu_node(0, f32_meta(1, shape), std::move(out_a)));
    t.add_node(relu_node(1, f32_meta(4, shape), std::move(out_b)));

    const auto plan = ReplayPlan::build(t, nullptr, replay_cfg(0));
    const DepGraph& g = graph_of(plan);
    ASSERT_EQ(g.units.size(), 2u);
    EXPECT_EQ(g.units[1].deps, (std::vector<int>{0}));
}

TEST(DepGraph, WriteAfterReadIsOrdered)
{
    // relu(1)->2 reads tensor 1; relu(3)->1 then overwrites tensor 1: the
    // writer must wait for the reader (WAR).
    const std::vector<int64_t> shape{2, 8};
    et::ExecutionTrace t;
    t.add_node(relu_node(0, f32_meta(1, shape), f32_meta(2, shape)));
    t.add_node(relu_node(1, f32_meta(3, shape), f32_meta(1, shape)));

    const auto plan = ReplayPlan::build(t, nullptr, replay_cfg(0));
    const DepGraph& g = graph_of(plan);
    ASSERT_EQ(g.units.size(), 2u);
    EXPECT_EQ(g.units[1].deps, (std::vector<int>{0}));
}

TEST(DepGraph, CollectiveIsABarrier)
{
    // Two independent computes, an all_reduce, two more computes: the
    // collective runs after everything before it and before everything
    // after it — per-rank collective issue order is load-bearing (rendezvous
    // deadlock otherwise), so no reordering across it is legal.
    const std::vector<int64_t> shape{2, 8};
    et::ExecutionTrace t;
    t.add_node(relu_node(0, f32_meta(1, shape), f32_meta(2, shape)));
    t.add_node(relu_node(1, f32_meta(3, shape), f32_meta(4, shape)));
    t.add_node(all_reduce_node(2, f32_meta(5, shape), f32_meta(5, shape)));
    t.add_node(relu_node(3, f32_meta(6, shape), f32_meta(7, shape)));
    t.add_node(relu_node(4, f32_meta(8, shape), f32_meta(9, shape)));

    const auto plan = ReplayPlan::build(t, nullptr, replay_cfg(0));
    const DepGraph& g = graph_of(plan);
    ASSERT_EQ(g.units.size(), 5u);
    EXPECT_TRUE(g.units[2].barrier);
    EXPECT_TRUE(g.units[2].comm);
    EXPECT_EQ(g.units[2].stream, dev::kCommStream);
    EXPECT_EQ(g.units[2].deps, (std::vector<int>{0, 1}));
    // Later units depend on the barrier even with disjoint tensors.
    EXPECT_EQ(g.units[3].deps, (std::vector<int>{2}));
    EXPECT_EQ(g.units[4].deps, (std::vector<int>{2}));
}

TEST(DepGraph, FusedChainIsOneUnit)
{
    // mul→add→relu fuse into one group (see plan_optimizer_test's
    // chain_trace); the trailing dead add becomes its own group unit that
    // reads the chain's output.
    const std::vector<int64_t> shape{2, 8};
    et::ExecutionTrace t;
    et::Node mul = unary_node(0, "aten::mul.Tensor",
                              "aten::mul.Tensor(Tensor self, Tensor other) -> Tensor",
                              f32_meta(1, shape), f32_meta(3, shape));
    mul.inputs.insert(mul.inputs.begin() + 1,
                      et::Argument::from_tensor(f32_meta(2, shape)));
    t.add_node(std::move(mul));
    et::Node add = unary_node(
        1, "aten::add.Tensor",
        "aten::add.Tensor(Tensor self, Tensor other, *, Scalar alpha=1) -> Tensor",
        f32_meta(3, shape), f32_meta(5, shape));
    add.inputs.insert(add.inputs.begin() + 1,
                      et::Argument::from_tensor(f32_meta(4, shape)));
    add.inputs.push_back(et::Argument::from_int(1));
    t.add_node(std::move(add));
    t.add_node(relu_node(2, f32_meta(5, shape), f32_meta(6, shape)));
    et::Node dead = unary_node(
        3, "aten::add.Tensor",
        "aten::add.Tensor(Tensor self, Tensor other, *, Scalar alpha=1) -> Tensor",
        f32_meta(6, shape), f32_meta(7, shape));
    dead.inputs.insert(dead.inputs.begin() + 1,
                       et::Argument::from_tensor(f32_meta(6, shape)));
    dead.inputs.push_back(et::Argument::from_int(1));
    t.add_node(std::move(dead));

    const auto plan = ReplayPlan::build(t, nullptr, replay_cfg(1));
    ASSERT_EQ(plan->optimizer_stats().chains_formed, 1);
    const DepGraph& g = graph_of(plan);
    ASSERT_EQ(g.units.size(), 2u);
    EXPECT_EQ(g.units[0].head, 0);
    EXPECT_GE(g.units[0].group, 0);
    EXPECT_TRUE(g.units[0].deps.empty());
    // The dead group's input is the live chain's output: RAW edge.
    EXPECT_GE(g.units[1].group, 0);
    EXPECT_EQ(g.units[1].deps, (std::vector<int>{0}));
}

TEST(DepGraph, ValidateRejectsMalformedGraphs)
{
    // validate_dep_graph is the cycle-rejection gate for restored documents:
    // program-order DAGs only have backward edges, so a forward or self edge
    // is exactly a cycle (and must quarantine, not deadlock the scheduler).
    DepGraph forward;
    forward.units.push_back({0, -1, 7, false, false, {1}});
    forward.units.push_back({1, -1, 7, false, false, {}});
    EXPECT_THROW(validate_dep_graph(forward, 2), ParseError);

    DepGraph self_edge;
    self_edge.units.push_back({0, -1, 7, false, false, {0}});
    EXPECT_THROW(validate_dep_graph(self_edge, 1), ParseError);

    DepGraph bad_head;
    bad_head.units.push_back({5, -1, 7, false, false, {}});
    EXPECT_THROW(validate_dep_graph(bad_head, 2), ParseError);

    DepGraph unsorted;
    unsorted.units.push_back({0, -1, 7, false, false, {}});
    unsorted.units.push_back({1, -1, 7, false, false, {}});
    unsorted.units.push_back({2, -1, 7, false, false, {1, 0}});
    EXPECT_THROW(validate_dep_graph(unsorted, 3), ParseError);

    DepGraph good;
    good.units.push_back({0, -1, 7, false, false, {}});
    good.units.push_back({1, -1, 7, false, false, {0}});
    EXPECT_NO_THROW(validate_dep_graph(good, 2));
}

TEST(DepGraph, PlanJsonRoundTripCarriesTheGraph)
{
    const std::vector<int64_t> shape{2, 8};
    et::ExecutionTrace t;
    t.add_node(relu_node(0, f32_meta(1, shape), f32_meta(2, shape)));
    t.add_node(relu_node(1, f32_meta(2, shape), f32_meta(3, shape)));
    t.add_node(all_reduce_node(2, f32_meta(3, shape), f32_meta(3, shape)));

    const auto plan = ReplayPlan::build(t, nullptr, replay_cfg(0));
    const Json j = plan->to_json();
    ASSERT_TRUE(j.contains("dep_graph"));

    const auto restored = ReplayPlan::from_json(j, t);
    const DepGraph& a = graph_of(plan);
    const DepGraph& b = graph_of(restored);
    ASSERT_EQ(a.units.size(), b.units.size());
    for (std::size_t i = 0; i < a.units.size(); ++i) {
        EXPECT_EQ(a.units[i].head, b.units[i].head);
        EXPECT_EQ(a.units[i].group, b.units[i].group);
        EXPECT_EQ(a.units[i].stream, b.units[i].stream);
        EXPECT_EQ(a.units[i].comm, b.units[i].comm);
        EXPECT_EQ(a.units[i].barrier, b.units[i].barrier);
        EXPECT_EQ(a.units[i].deps, b.units[i].deps);
    }
    EXPECT_EQ(restored->to_json().dump(), j.dump());
}

TEST(DepGraph, TamperedGraphQuarantinesOnRestore)
{
    const std::vector<int64_t> shape{2, 8};
    et::ExecutionTrace t;
    t.add_node(relu_node(0, f32_meta(1, shape), f32_meta(2, shape)));
    t.add_node(relu_node(1, f32_meta(2, shape), f32_meta(3, shape)));
    const auto plan = ReplayPlan::build(t, nullptr, replay_cfg(0));
    const Json good = plan->to_json();

    // Dropped edge: the document's graph no longer matches its fingerprint
    // seal — a stale or hand-edited plan must not replay with a wrong
    // schedule.
    Json doc = good;
    Json dep = doc.at("dep_graph");
    Json deps_col = dep.at("deps");
    deps_col.as_array()[1] = Json::array();
    dep.set("deps", std::move(deps_col));
    doc.set("dep_graph", std::move(dep));
    EXPECT_THROW((void)ReplayPlan::from_json(doc, t), ParseError);

    // Forward edge: rejected as a cycle before the seal check even runs.
    Json doc2 = good;
    Json dep2 = doc2.at("dep_graph");
    Json deps_col2 = dep2.at("deps");
    Json fwd = Json::array();
    fwd.push_back(Json(int64_t{1}));
    deps_col2.as_array()[0] = std::move(fwd);
    dep2.set("deps", std::move(deps_col2));
    doc2.set("dep_graph", std::move(dep2));
    EXPECT_THROW((void)ReplayPlan::from_json(doc2, t), ParseError);

    // Broken or missing seal: the graph bytes alone are never trusted.
    Json doc3 = good;
    doc3.set("dep_graph_fp", Json(std::string("1")));
    EXPECT_THROW((void)ReplayPlan::from_json(doc3, t), ParseError);
}

TEST(DepGraph, AsyncReplayMatchesSerialPerStream)
{
    // End-to-end executor contract on a fuzzed multi-stream case: per-stream
    // kernel name sequences, per-stream counts and totals are identical
    // between MYST_ASYNC=0 and =1 replays.  Scan a few deterministic seeds
    // for one whose profiler trace actually spans multiple compute streams.
    testing::FuzzedCase picked;
    bool found = false;
    for (uint64_t seed = 1; seed <= 24 && !found; ++seed) {
        testing::FuzzedCase c = testing::generate_case(seed);
        if (!c.use_prof)
            continue;
        std::map<int, int> streams;
        for (const prof::KernelEvent& ev : c.prof.kernels())
            ++streams[ev.stream];
        if (streams.size() >= 2) {
            picked = std::move(c);
            found = true;
        }
    }
    ASSERT_TRUE(found) << "no multi-stream fuzz case in the scanned seed range";

    ReplayConfig serial_cfg = picked.cfg;
    serial_cfg.async_level = 0;
    ReplayConfig async_cfg = picked.cfg;
    async_cfg.async_level = 1;
    const ReplayResult rs = Replayer(picked.trace, &picked.prof, serial_cfg).run();
    const ReplayResult ra = Replayer(picked.trace, &picked.prof, async_cfg).run();

    EXPECT_EQ(rs.prof.kernels().size(), ra.prof.kernels().size());
    std::map<int, std::vector<std::string>> ns, na;
    for (const prof::KernelEvent& ev : rs.prof.kernels())
        ns[ev.stream].push_back(ev.name);
    for (const prof::KernelEvent& ev : ra.prof.kernels())
        na[ev.stream].push_back(ev.name);
    EXPECT_GE(ns.size(), 2u) << picked.summary;
    EXPECT_EQ(ns, na) << picked.summary;
}

TEST(DepGraph, AsyncConfigNeverAliasesSerialConfig)
{
    ReplayConfig serial_cfg = replay_cfg(1);
    serial_cfg.async_level = 0;
    ReplayConfig async_cfg = replay_cfg(1);
    async_cfg.async_level = 1;
    EXPECT_NE(serial_cfg.fingerprint(), async_cfg.fingerprint());

    const std::vector<int64_t> shape{2, 8};
    et::ExecutionTrace t;
    t.add_node(relu_node(0, f32_meta(1, shape), f32_meta(2, shape)));
    EXPECT_NE(plan_key(t, nullptr, serial_cfg), plan_key(t, nullptr, async_cfg));
}

} // namespace
} // namespace mystique::core
