/// ReplayDriver parallel-sweep tests: a parallelism=K sweep must produce
/// results bit-identical to the sequential sweep (same per-group timings,
/// same weighted mean, same coverage), repeated sweeps on one driver must be
/// stable (buffer recycling cannot perturb virtual time), and the arena
/// stats surfaced per sweep must show the recycling actually happening.
///
/// The ReplayDriverResilience suite covers the fault-isolation layer: group
/// failures recorded instead of thrown, retry with backoff, group and sweep
/// deadlines, journal resume, quarantine + heal — and, crucially, that none
/// of it perturbs a healthy sweep by a single bit.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/plan_cache.h"
#include "core/replay_driver.h"
#include "workloads/harness.h"

namespace mystique::core {
namespace {

wl::RunConfig
trace_cfg(fw::ExecMode mode)
{
    wl::RunConfig cfg;
    cfg.mode = mode;
    cfg.warmup_iterations = 1;
    cfg.iterations = 2;
    cfg.seed = 7;
    return cfg;
}

ReplayConfig
replay_cfg(fw::ExecMode mode)
{
    ReplayConfig cfg;
    cfg.mode = mode;
    cfg.warmup_iterations = 1;
    cfg.iterations = 3;
    cfg.seed = 11;
    return cfg;
}

/// A database whose groups have distinct op mixes and skewed populations.
struct SweepFixture {
    et::TraceDatabase db;
    std::vector<wl::RunResult> runs;
    std::vector<const prof::ProfilerTrace*> profs;

    explicit SweepFixture(fw::ExecMode mode, bool include_paper_preset)
    {
        wl::WorkloadOptions tiny;
        tiny.preset = wl::Preset::kTiny;
        std::vector<std::pair<const char*, wl::WorkloadOptions>> specs = {
            {"param_linear", tiny}, {"rm", tiny}, {"asr", tiny}, {"resnet", tiny}};
        if (include_paper_preset) {
            wl::WorkloadOptions paper;
            paper.preset = wl::Preset::kPaper;
            specs.emplace_back("param_linear", paper);
        }
        const std::vector<int> copies = {3, 2, 2, 1, 1};
        runs.reserve(specs.size()); // no reallocation: profs point into runs
        for (std::size_t i = 0; i < specs.size(); ++i) {
            runs.push_back(wl::run_original(specs[i].first, specs[i].second,
                                            trace_cfg(mode)));
            for (int c = 0; c < copies[i]; ++c) {
                db.add(runs.back().rank0().trace);
                profs.push_back(&runs.back().rank0().prof);
            }
        }
    }
};

void
expect_identical(const DatabaseReplayResult& a, const DatabaseReplayResult& b)
{
    ASSERT_EQ(a.groups.size(), b.groups.size());
    EXPECT_EQ(a.weighted_mean_iter_us, b.weighted_mean_iter_us);
    EXPECT_EQ(a.population_covered, b.population_covered);
    for (std::size_t i = 0; i < a.groups.size(); ++i) {
        const GroupReplayResult& ga = a.groups[i];
        const GroupReplayResult& gb = b.groups[i];
        EXPECT_EQ(ga.group.fingerprint, gb.group.fingerprint);
        EXPECT_EQ(ga.representative, gb.representative);
        EXPECT_EQ(ga.result.mean_iter_us, gb.result.mean_iter_us);
        ASSERT_EQ(ga.result.iter_us.size(), gb.result.iter_us.size());
        for (std::size_t j = 0; j < ga.result.iter_us.size(); ++j)
            EXPECT_EQ(ga.result.iter_us[j], gb.result.iter_us[j]);
    }
}

TEST(ReplayDriver, ParallelSweepMatchesSequential)
{
    SweepFixture fx(fw::ExecMode::kShapeOnly, /*include_paper_preset=*/true);
    ASSERT_GE(fx.db.analyze().size(), 4u);

    PlanCache cache_seq(16), cache_par(16);
    ReplayDriver seq(replay_cfg(fw::ExecMode::kShapeOnly), &cache_seq, 1);
    ReplayDriver par(replay_cfg(fw::ExecMode::kShapeOnly), &cache_par, 4);
    EXPECT_EQ(par.parallelism(), 4u);

    const DatabaseReplayResult r1 = seq.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    const DatabaseReplayResult r4 = par.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    EXPECT_GT(r1.weighted_mean_iter_us, 0.0);
    expect_identical(r1, r4);
}

TEST(ReplayDriver, NumericParallelSweepMatchesSequential)
{
    // Numeric mode exercises real tensor materialization, so recycled
    // (uninitialized) arena buffers flow through every kernel; virtual time
    // must not depend on their contents.
    SweepFixture fx(fw::ExecMode::kNumeric, /*include_paper_preset=*/false);

    PlanCache cache_seq(16), cache_par(16);
    ReplayDriver seq(replay_cfg(fw::ExecMode::kNumeric), &cache_seq, 1);
    ReplayDriver par(replay_cfg(fw::ExecMode::kNumeric), &cache_par, 3);

    const DatabaseReplayResult r1 = seq.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    const DatabaseReplayResult r3 = par.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    expect_identical(r1, r3);
}

TEST(ReplayDriver, RepeatedSweepsAreStableAndRecycle)
{
    SweepFixture fx(fw::ExecMode::kNumeric, /*include_paper_preset=*/false);
    PlanCache cache(16);
    ReplayDriver driver(replay_cfg(fw::ExecMode::kNumeric), &cache, 2);

    const DatabaseReplayResult first = driver.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    const DatabaseReplayResult second = driver.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    expect_identical(first, second);

    // The second sweep replays every group on warm sessions: all plans come
    // from the cache and tensor buffers come from the arenas.
    EXPECT_EQ(second.cache.misses, first.cache.misses);
    EXPECT_GT(second.arena.hits, first.arena.hits);
    EXPECT_GT(second.arena.hits, 0u);
}

TEST(ReplayDriver, TopKHonoredUnderParallelism)
{
    SweepFixture fx(fw::ExecMode::kShapeOnly, /*include_paper_preset=*/false);
    PlanCache cache(16);
    ReplayDriver driver(replay_cfg(fw::ExecMode::kShapeOnly), &cache, 4);
    const DatabaseReplayResult r = driver.replay_groups(fx.db, 2, &fx.profs);
    ASSERT_EQ(r.groups.size(), 2u);
    EXPECT_GE(r.groups[0].group.population_weight, r.groups[1].group.population_weight);
    EXPECT_LT(r.population_covered, 1.0);
    EXPECT_GT(r.population_covered, 0.0);
}

TEST(ReplayDriver, SetParallelismTakesEffect)
{
    SweepFixture fx(fw::ExecMode::kShapeOnly, /*include_paper_preset=*/false);
    PlanCache cache(16);
    ReplayDriver driver(replay_cfg(fw::ExecMode::kShapeOnly), &cache, 1);
    const DatabaseReplayResult r1 = driver.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    driver.set_parallelism(0); // clamped
    EXPECT_EQ(driver.parallelism(), 1u);
    driver.set_parallelism(3);
    EXPECT_EQ(driver.parallelism(), 3u);
    const DatabaseReplayResult r3 = driver.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    expect_identical(r1, r3);
}

/// Disarms every fault site on construction and destruction, so a failing
/// assertion mid-test can never leak an armed fault into later tests.
struct FaultGuard {
    FaultGuard() { FaultInjection::instance().disarm_all(); }
    ~FaultGuard() { FaultInjection::instance().disarm_all(); }
};

/// Unique per-test scratch directory for journal files.
struct JournalDir {
    explicit JournalDir(const char* tag)
        : path((std::filesystem::path(::testing::TempDir()) /
                (std::string("myst_sweep_journal_") + tag))
                   .string())
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
        std::filesystem::create_directories(path);
    }
    ~JournalDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
    std::string path;
};

void
expect_all_ok(const DatabaseReplayResult& r)
{
    for (std::size_t i = 0; i < r.groups.size(); ++i)
        EXPECT_EQ(r.groups[i].status, GroupStatus::kOk)
            << "group " << i << " is " << to_string(r.groups[i].status) << ": "
            << r.groups[i].error;
    EXPECT_EQ(r.groups_ok, r.groups.size());
    EXPECT_EQ(r.population_covered_ok, r.population_covered);
}

TEST(ReplayDriverResilience, NoFaultKnobsKeepBitIdentityAtEveryParallelism)
{
    // The headline contract: with nothing failing, the resilience layer is
    // invisible — same bits as a plain sweep, at K=1 and K=4, even with
    // retries and a (generous) group deadline armed.
    FaultGuard guard;
    SweepFixture fx(fw::ExecMode::kShapeOnly, /*include_paper_preset=*/false);

    PlanCache cache_plain(16), cache_k1(16), cache_k4(16);
    ReplayDriver plain(replay_cfg(fw::ExecMode::kShapeOnly), &cache_plain, 1);
    const DatabaseReplayResult want = plain.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    expect_all_ok(want);

    for (auto* setup : {&cache_k1, &cache_k4}) {
        const std::size_t k = setup == &cache_k1 ? 1 : 4;
        ReplayDriver driver(replay_cfg(fw::ExecMode::kShapeOnly), setup, k);
        driver.set_max_retries(2);
        driver.set_backoff_ms(5);
        driver.set_group_deadline_ms(uint64_t{60} * 60 * 1000);
        const DatabaseReplayResult got = driver.replay_groups(fx.db, SIZE_MAX, &fx.profs);
        expect_identical(want, got);
        expect_all_ok(got);
        EXPECT_EQ(got.retries, 0u);
        EXPECT_EQ(got.backoff_ms, 0u);
        EXPECT_EQ(got.journal_resumed, 0u);
        for (const GroupReplayResult& g : got.groups) {
            EXPECT_EQ(g.attempts, 1u);
            EXPECT_FALSE(g.from_journal);
        }
    }
}

TEST(ReplayDriverResilience, FailedGroupIsIsolatedAndReported)
{
    FaultGuard guard;
    SweepFixture fx(fw::ExecMode::kShapeOnly, /*include_paper_preset=*/false);

    PlanCache cache_ref(16);
    ReplayDriver ref(replay_cfg(fw::ExecMode::kShapeOnly), &cache_ref, 1);
    const DatabaseReplayResult want = ref.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    ASSERT_GE(want.groups.size(), 3u);

    // First group attempt fails; the sweep must carry on and the weighted
    // mean must cover exactly the surviving groups.
    FaultInjection::instance().arm("sweep.group", 1, FaultMode::kOnce);
    PlanCache cache(16);
    ReplayDriver driver(replay_cfg(fw::ExecMode::kShapeOnly), &cache, 1);
    const DatabaseReplayResult got = driver.replay_groups(fx.db, SIZE_MAX, &fx.profs);

    ASSERT_EQ(got.groups.size(), want.groups.size());
    EXPECT_EQ(got.groups[0].status, GroupStatus::kFailed);
    EXPECT_NE(got.groups[0].error.find("injected fault"), std::string::npos)
        << got.groups[0].error;
    EXPECT_EQ(got.groups[0].attempts, 1u);
    EXPECT_EQ(got.groups_failed, 1u);
    EXPECT_EQ(got.groups_ok, want.groups.size() - 1);
    EXPECT_LT(got.population_covered_ok, got.population_covered);

    // Survivors are bit-identical to the healthy sweep, and the mean is the
    // weighted mean over exactly those survivors.
    double weight = 0.0, weighted = 0.0;
    for (std::size_t i = 1; i < got.groups.size(); ++i) {
        EXPECT_EQ(got.groups[i].status, GroupStatus::kOk);
        EXPECT_EQ(got.groups[i].result.iter_us, want.groups[i].result.iter_us);
        weight += got.groups[i].group.population_weight;
        weighted += got.groups[i].group.population_weight *
                    got.groups[i].result.mean_iter_us;
    }
    EXPECT_EQ(got.weighted_mean_iter_us, weighted / weight);
}

TEST(ReplayDriverResilience, ConcurrentFailuresAreAllReported)
{
    // Regression for the old fail-fast merge, which kept only the
    // lowest-indexed worker's error: with every group failing across 4
    // workers, every group must carry its own error — and nothing throws.
    FaultGuard guard;
    SweepFixture fx(fw::ExecMode::kShapeOnly, /*include_paper_preset=*/false);
    FaultInjection::instance().arm("sweep.group", 1, FaultMode::kEvery);

    PlanCache cache(16);
    ReplayDriver driver(replay_cfg(fw::ExecMode::kShapeOnly), &cache, 4);
    const DatabaseReplayResult got = driver.replay_groups(fx.db, SIZE_MAX, &fx.profs);

    EXPECT_EQ(got.groups_failed, got.groups.size());
    EXPECT_EQ(got.population_covered_ok, 0.0);
    EXPECT_EQ(got.weighted_mean_iter_us, 0.0);
    for (const GroupReplayResult& g : got.groups) {
        EXPECT_EQ(g.status, GroupStatus::kFailed);
        EXPECT_NE(g.error.find("injected fault"), std::string::npos) << g.error;
    }
}

TEST(ReplayDriverResilience, RetryWithBackoffHeals)
{
    FaultGuard guard;
    SweepFixture fx(fw::ExecMode::kShapeOnly, /*include_paper_preset=*/false);

    PlanCache cache_ref(16);
    ReplayDriver ref(replay_cfg(fw::ExecMode::kShapeOnly), &cache_ref, 1);
    const DatabaseReplayResult want = ref.replay_groups(fx.db, SIZE_MAX, &fx.profs);

    // One transient fault on the first group; a single retry must absorb it
    // and the final result must be indistinguishable from a healthy sweep.
    FaultInjection::instance().arm("sweep.group", 1, FaultMode::kOnce);
    PlanCache cache(16);
    ReplayDriver driver(replay_cfg(fw::ExecMode::kShapeOnly), &cache, 1);
    driver.set_max_retries(1);
    driver.set_backoff_ms(1);
    const DatabaseReplayResult got = driver.replay_groups(fx.db, SIZE_MAX, &fx.profs);

    expect_identical(want, got);
    expect_all_ok(got);
    EXPECT_EQ(got.groups[0].attempts, 2u);
    EXPECT_EQ(got.retries, 1u);
    EXPECT_EQ(got.backoff_ms, 1u); // base_backoff << 0 for the first retry
    for (std::size_t i = 1; i < got.groups.size(); ++i)
        EXPECT_EQ(got.groups[i].attempts, 1u);
}

TEST(ReplayDriverResilience, GroupDeadlineTimesOutWithoutRetry)
{
    FaultGuard guard;
    SweepFixture fx(fw::ExecMode::kShapeOnly, /*include_paper_preset=*/false);

    PlanCache cache(16);
    ReplayDriver driver(replay_cfg(fw::ExecMode::kShapeOnly), &cache, 2);
    driver.set_group_deadline_ms(0); // already expired: deterministic timeout
    driver.set_max_retries(3);       // must NOT be consumed by timeouts
    driver.set_backoff_ms(1);
    const DatabaseReplayResult got = driver.replay_groups(fx.db, SIZE_MAX, &fx.profs);

    EXPECT_EQ(got.groups_timed_out, got.groups.size());
    EXPECT_EQ(got.retries, 0u);
    EXPECT_EQ(got.backoff_ms, 0u);
    EXPECT_EQ(got.weighted_mean_iter_us, 0.0);
    for (const GroupReplayResult& g : got.groups) {
        EXPECT_EQ(g.status, GroupStatus::kTimedOut);
        EXPECT_EQ(g.attempts, 1u);
        EXPECT_NE(g.error.find("deadline"), std::string::npos) << g.error;
    }

    // The sessions were abandoned mid-iteration by the cancellation; the
    // next sweep must reset them and produce a pristine result.
    driver.set_group_deadline_ms(std::nullopt);
    PlanCache cache_ref(16);
    ReplayDriver ref(replay_cfg(fw::ExecMode::kShapeOnly), &cache_ref, 2);
    const DatabaseReplayResult want = ref.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    const DatabaseReplayResult again = driver.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    expect_identical(want, again);
    expect_all_ok(again);
}

TEST(ReplayDriverResilience, SweepDeadlineSkipsUnstartedGroups)
{
    FaultGuard guard;
    SweepFixture fx(fw::ExecMode::kShapeOnly, /*include_paper_preset=*/false);

    PlanCache cache(16);
    ReplayDriver driver(replay_cfg(fw::ExecMode::kShapeOnly), &cache, 1);
    driver.set_sweep_deadline_ms(0); // expired before any group starts
    const DatabaseReplayResult got = driver.replay_groups(fx.db, SIZE_MAX, &fx.profs);

    EXPECT_EQ(got.groups_skipped, got.groups.size());
    EXPECT_EQ(got.population_covered_ok, 0.0);
    for (const GroupReplayResult& g : got.groups) {
        EXPECT_EQ(g.status, GroupStatus::kSkipped);
        EXPECT_EQ(g.attempts, 0u);
        EXPECT_TRUE(g.error.empty());
    }
    // Skipped groups still report their selection metadata.
    EXPECT_GT(got.population_covered, 0.0);
}

TEST(ReplayDriverResilience, JournalResumeSkipsCompletedGroups)
{
    FaultGuard guard;
    JournalDir dir("resume");
    SweepFixture fx(fw::ExecMode::kShapeOnly, /*include_paper_preset=*/false);

    PlanCache cache_a(16);
    ReplayDriver a(replay_cfg(fw::ExecMode::kShapeOnly), &cache_a, 2);
    a.set_journal_dir(dir.path);
    const DatabaseReplayResult first = a.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    expect_all_ok(first);
    EXPECT_EQ(first.journal_resumed, 0u);
    EXPECT_TRUE(std::filesystem::exists(dir.path + "/sweep_journal.jsonl"));

    // A fresh driver + fresh cache (a "restarted process") must restore
    // every group from the journal — zero replays, bit-identical bits.
    PlanCache cache_b(16);
    ReplayDriver b(replay_cfg(fw::ExecMode::kShapeOnly), &cache_b, 1);
    b.set_journal_dir(dir.path);
    const DatabaseReplayResult second = b.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    expect_identical(first, second);
    expect_all_ok(second);
    EXPECT_EQ(second.journal_resumed, second.groups.size());
    EXPECT_EQ(second.cache.misses, 0u);
    for (const GroupReplayResult& g : second.groups) {
        EXPECT_TRUE(g.from_journal);
        EXPECT_EQ(g.attempts, 0u);
    }
}

TEST(ReplayDriverResilience, CrashedSweepResumesAndReplaysOnlyTheFailedGroup)
{
    FaultGuard guard;
    JournalDir dir("crash");
    SweepFixture fx(fw::ExecMode::kShapeOnly, /*include_paper_preset=*/false);

    PlanCache cache_ref(16);
    ReplayDriver ref(replay_cfg(fw::ExecMode::kShapeOnly), &cache_ref, 1);
    const DatabaseReplayResult want = ref.replay_groups(fx.db, SIZE_MAX, &fx.profs);

    // "Crash": the first sweep loses one group to a fault and journals the
    // failure alongside the successes.
    FaultInjection::instance().arm("sweep.group", 1, FaultMode::kOnce);
    PlanCache cache_a(16);
    ReplayDriver a(replay_cfg(fw::ExecMode::kShapeOnly), &cache_a, 1);
    a.set_journal_dir(dir.path);
    const DatabaseReplayResult first = a.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    EXPECT_EQ(first.groups_failed, 1u);
    FaultInjection::instance().disarm_all();

    // Restart: the healthy groups resume from the journal; only the failed
    // one replays (one cache miss), and the journal heals to all-ok.
    PlanCache cache_b(16);
    ReplayDriver b(replay_cfg(fw::ExecMode::kShapeOnly), &cache_b, 1);
    b.set_journal_dir(dir.path);
    const DatabaseReplayResult second = b.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    expect_identical(want, second);
    expect_all_ok(second);
    EXPECT_EQ(second.journal_resumed, second.groups.size() - 1);
    EXPECT_EQ(second.cache.misses, 1u);
    EXPECT_FALSE(second.groups[0].from_journal);
    EXPECT_EQ(second.groups[0].attempts, 1u);
}

TEST(ReplayDriverResilience, QuarantineAfterRepeatedFailuresAndProbeHeals)
{
    FaultGuard guard;
    JournalDir dir("quarantine");
    SweepFixture fx(fw::ExecMode::kShapeOnly, /*include_paper_preset=*/false);

    PlanCache cache_ref(16);
    ReplayDriver ref(replay_cfg(fw::ExecMode::kShapeOnly), &cache_ref, 1);
    const DatabaseReplayResult want = ref.replay_groups(fx.db, SIZE_MAX, &fx.profs);

    // Two sweeps with every attempt failing: every group accumulates two
    // consecutive journaled failures — the quarantine threshold.
    FaultInjection::instance().arm("sweep.group", 1, FaultMode::kEvery);
    for (int sweep = 0; sweep < 2; ++sweep) {
        PlanCache cache(16);
        ReplayDriver driver(replay_cfg(fw::ExecMode::kShapeOnly), &cache, 2);
        driver.set_journal_dir(dir.path);
        const DatabaseReplayResult r = driver.replay_groups(fx.db, SIZE_MAX, &fx.profs);
        EXPECT_EQ(r.groups_failed, r.groups.size());
    }
    FaultInjection::instance().disarm_all();

    // Known-bad fingerprints are now skipped without burning a replay, and
    // carry the recorded error text.
    PlanCache cache_q(16);
    ReplayDriver quarantined(replay_cfg(fw::ExecMode::kShapeOnly), &cache_q, 1);
    quarantined.set_journal_dir(dir.path);
    const DatabaseReplayResult q = quarantined.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    EXPECT_EQ(q.groups_quarantined, q.groups.size());
    EXPECT_EQ(q.cache.misses, 0u);
    for (const GroupReplayResult& g : q.groups) {
        EXPECT_EQ(g.status, GroupStatus::kQuarantined);
        EXPECT_EQ(g.attempts, 0u);
        EXPECT_NE(g.error.find("injected fault"), std::string::npos) << g.error;
    }

    // Probe mode gives each quarantined group one healing attempt; with the
    // fault gone they all succeed, bit-identical to the healthy sweep, and
    // the recorded successes lift the quarantine for the next plain sweep.
    PlanCache cache_p(16);
    ReplayDriver probe(replay_cfg(fw::ExecMode::kShapeOnly), &cache_p, 1);
    probe.set_journal_dir(dir.path);
    probe.set_probe_quarantined(true);
    const DatabaseReplayResult healed = probe.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    expect_identical(want, healed);
    expect_all_ok(healed);

    PlanCache cache_after(16);
    ReplayDriver after(replay_cfg(fw::ExecMode::kShapeOnly), &cache_after, 1);
    after.set_journal_dir(dir.path);
    const DatabaseReplayResult resumed = after.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    expect_all_ok(resumed);
    EXPECT_EQ(resumed.journal_resumed, resumed.groups.size());
}

TEST(ReplayDriverResilience, JournalFaultsAreAbsorbed)
{
    // journal.write: every publish fails — the sweep still succeeds, counts
    // the write failures, and a later sweep simply cannot resume (no record
    // survived), which is degraded, never wrong.
    FaultGuard guard;
    JournalDir dir("journalfault");
    SweepFixture fx(fw::ExecMode::kShapeOnly, /*include_paper_preset=*/false);

    FaultInjection::instance().arm("journal.write", 1, FaultMode::kEvery);
    PlanCache cache_a(16);
    ReplayDriver a(replay_cfg(fw::ExecMode::kShapeOnly), &cache_a, 1);
    a.set_journal_dir(dir.path);
    const DatabaseReplayResult first = a.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    expect_all_ok(first);
    EXPECT_EQ(first.journal_write_failures, first.groups.size());
    FaultInjection::instance().disarm_all();

    // journal.load: an unreadable journal warns and starts fresh — the sweep
    // replays everything instead of resuming.
    PlanCache cache_b(16);
    ReplayDriver b(replay_cfg(fw::ExecMode::kShapeOnly), &cache_b, 1);
    b.set_journal_dir(dir.path);
    const DatabaseReplayResult warm = b.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    expect_all_ok(warm); // journal was never published, so nothing resumes
    EXPECT_EQ(warm.journal_resumed, 0u);

    FaultInjection::instance().arm("journal.load", 1, FaultMode::kEvery);
    PlanCache cache_c(16);
    ReplayDriver c(replay_cfg(fw::ExecMode::kShapeOnly), &cache_c, 1);
    c.set_journal_dir(dir.path);
    const DatabaseReplayResult blind = c.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    expect_all_ok(blind);
    EXPECT_EQ(blind.journal_resumed, 0u);
}

} // namespace
} // namespace mystique::core
