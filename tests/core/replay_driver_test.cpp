/// ReplayDriver parallel-sweep tests: a parallelism=K sweep must produce
/// results bit-identical to the sequential sweep (same per-group timings,
/// same weighted mean, same coverage), repeated sweeps on one driver must be
/// stable (buffer recycling cannot perturb virtual time), and the arena
/// stats surfaced per sweep must show the recycling actually happening.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/plan_cache.h"
#include "core/replay_driver.h"
#include "workloads/harness.h"

namespace mystique::core {
namespace {

wl::RunConfig
trace_cfg(fw::ExecMode mode)
{
    wl::RunConfig cfg;
    cfg.mode = mode;
    cfg.warmup_iterations = 1;
    cfg.iterations = 2;
    cfg.seed = 7;
    return cfg;
}

ReplayConfig
replay_cfg(fw::ExecMode mode)
{
    ReplayConfig cfg;
    cfg.mode = mode;
    cfg.warmup_iterations = 1;
    cfg.iterations = 3;
    cfg.seed = 11;
    return cfg;
}

/// A database whose groups have distinct op mixes and skewed populations.
struct SweepFixture {
    et::TraceDatabase db;
    std::vector<wl::RunResult> runs;
    std::vector<const prof::ProfilerTrace*> profs;

    explicit SweepFixture(fw::ExecMode mode, bool include_paper_preset)
    {
        wl::WorkloadOptions tiny;
        tiny.preset = wl::Preset::kTiny;
        std::vector<std::pair<const char*, wl::WorkloadOptions>> specs = {
            {"param_linear", tiny}, {"rm", tiny}, {"asr", tiny}, {"resnet", tiny}};
        if (include_paper_preset) {
            wl::WorkloadOptions paper;
            paper.preset = wl::Preset::kPaper;
            specs.emplace_back("param_linear", paper);
        }
        const std::vector<int> copies = {3, 2, 2, 1, 1};
        runs.reserve(specs.size()); // no reallocation: profs point into runs
        for (std::size_t i = 0; i < specs.size(); ++i) {
            runs.push_back(wl::run_original(specs[i].first, specs[i].second,
                                            trace_cfg(mode)));
            for (int c = 0; c < copies[i]; ++c) {
                db.add(runs.back().rank0().trace);
                profs.push_back(&runs.back().rank0().prof);
            }
        }
    }
};

void
expect_identical(const DatabaseReplayResult& a, const DatabaseReplayResult& b)
{
    ASSERT_EQ(a.groups.size(), b.groups.size());
    EXPECT_EQ(a.weighted_mean_iter_us, b.weighted_mean_iter_us);
    EXPECT_EQ(a.population_covered, b.population_covered);
    for (std::size_t i = 0; i < a.groups.size(); ++i) {
        const GroupReplayResult& ga = a.groups[i];
        const GroupReplayResult& gb = b.groups[i];
        EXPECT_EQ(ga.group.fingerprint, gb.group.fingerprint);
        EXPECT_EQ(ga.representative, gb.representative);
        EXPECT_EQ(ga.result.mean_iter_us, gb.result.mean_iter_us);
        ASSERT_EQ(ga.result.iter_us.size(), gb.result.iter_us.size());
        for (std::size_t j = 0; j < ga.result.iter_us.size(); ++j)
            EXPECT_EQ(ga.result.iter_us[j], gb.result.iter_us[j]);
    }
}

TEST(ReplayDriver, ParallelSweepMatchesSequential)
{
    SweepFixture fx(fw::ExecMode::kShapeOnly, /*include_paper_preset=*/true);
    ASSERT_GE(fx.db.analyze().size(), 4u);

    PlanCache cache_seq(16), cache_par(16);
    ReplayDriver seq(replay_cfg(fw::ExecMode::kShapeOnly), &cache_seq, 1);
    ReplayDriver par(replay_cfg(fw::ExecMode::kShapeOnly), &cache_par, 4);
    EXPECT_EQ(par.parallelism(), 4u);

    const DatabaseReplayResult r1 = seq.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    const DatabaseReplayResult r4 = par.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    EXPECT_GT(r1.weighted_mean_iter_us, 0.0);
    expect_identical(r1, r4);
}

TEST(ReplayDriver, NumericParallelSweepMatchesSequential)
{
    // Numeric mode exercises real tensor materialization, so recycled
    // (uninitialized) arena buffers flow through every kernel; virtual time
    // must not depend on their contents.
    SweepFixture fx(fw::ExecMode::kNumeric, /*include_paper_preset=*/false);

    PlanCache cache_seq(16), cache_par(16);
    ReplayDriver seq(replay_cfg(fw::ExecMode::kNumeric), &cache_seq, 1);
    ReplayDriver par(replay_cfg(fw::ExecMode::kNumeric), &cache_par, 3);

    const DatabaseReplayResult r1 = seq.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    const DatabaseReplayResult r3 = par.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    expect_identical(r1, r3);
}

TEST(ReplayDriver, RepeatedSweepsAreStableAndRecycle)
{
    SweepFixture fx(fw::ExecMode::kNumeric, /*include_paper_preset=*/false);
    PlanCache cache(16);
    ReplayDriver driver(replay_cfg(fw::ExecMode::kNumeric), &cache, 2);

    const DatabaseReplayResult first = driver.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    const DatabaseReplayResult second = driver.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    expect_identical(first, second);

    // The second sweep replays every group on warm sessions: all plans come
    // from the cache and tensor buffers come from the arenas.
    EXPECT_EQ(second.cache.misses, first.cache.misses);
    EXPECT_GT(second.arena.hits, first.arena.hits);
    EXPECT_GT(second.arena.hits, 0u);
}

TEST(ReplayDriver, TopKHonoredUnderParallelism)
{
    SweepFixture fx(fw::ExecMode::kShapeOnly, /*include_paper_preset=*/false);
    PlanCache cache(16);
    ReplayDriver driver(replay_cfg(fw::ExecMode::kShapeOnly), &cache, 4);
    const DatabaseReplayResult r = driver.replay_groups(fx.db, 2, &fx.profs);
    ASSERT_EQ(r.groups.size(), 2u);
    EXPECT_GE(r.groups[0].group.population_weight, r.groups[1].group.population_weight);
    EXPECT_LT(r.population_covered, 1.0);
    EXPECT_GT(r.population_covered, 0.0);
}

TEST(ReplayDriver, SetParallelismTakesEffect)
{
    SweepFixture fx(fw::ExecMode::kShapeOnly, /*include_paper_preset=*/false);
    PlanCache cache(16);
    ReplayDriver driver(replay_cfg(fw::ExecMode::kShapeOnly), &cache, 1);
    const DatabaseReplayResult r1 = driver.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    driver.set_parallelism(0); // clamped
    EXPECT_EQ(driver.parallelism(), 1u);
    driver.set_parallelism(3);
    EXPECT_EQ(driver.parallelism(), 3u);
    const DatabaseReplayResult r3 = driver.replay_groups(fx.db, SIZE_MAX, &fx.profs);
    expect_identical(r1, r3);
}

} // namespace
} // namespace mystique::core
