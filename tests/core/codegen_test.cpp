/// Plan-aware codegen tests: ReplayPlan JSON round-trip, package provenance
/// (manifest fingerprints, verify_package accept/reject), and the zero-build
/// guarantee — generating a package for a trace whose plan is already cached
/// must not rebuild the plan.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>

#include "core/codegen.h"
#include "core/plan_cache.h"
#include "workloads/harness.h"

namespace mystique::core {
namespace {

namespace fs = std::filesystem;

wl::RunConfig
tiny_cfg()
{
    wl::RunConfig cfg;
    cfg.mode = fw::ExecMode::kShapeOnly;
    cfg.warmup_iterations = 1;
    cfg.iterations = 2;
    cfg.seed = 7;
    return cfg;
}

wl::WorkloadOptions
tiny_opts()
{
    wl::WorkloadOptions o;
    o.preset = wl::Preset::kTiny;
    return o;
}

ReplayConfig
tiny_replay()
{
    ReplayConfig cfg;
    cfg.mode = fw::ExecMode::kShapeOnly;
    cfg.warmup_iterations = 1;
    cfg.iterations = 2;
    return cfg;
}

/// One traced run per workload, shared across the suite.
const wl::RunResult&
traced(const std::string& workload)
{
    static std::map<std::string, wl::RunResult> cache;
    auto it = cache.find(workload);
    if (it == cache.end())
        it = cache.emplace(workload, wl::run_original(workload, tiny_opts(), tiny_cfg()))
                 .first;
    return it->second;
}

std::string
fresh_dir(const std::string& name)
{
    const std::string dir = testing::TempDir() + "/" + name;
    fs::remove_all(dir);
    return dir;
}

TEST(ReplayConfigJson, RoundTripsEveryField)
{
    ReplayConfig cfg;
    cfg.platform = "V100";
    cfg.mode = fw::ExecMode::kNumeric;
    cfg.warmup_iterations = 3;
    cfg.iterations = 17;
    cfg.seed = 0xFEEDFACE;
    cfg.power_limit_w = 275.5;
    cfg.filter.subtrace_root = "## forward:z ##";
    cfg.filter.only_category = dev::OpCategory::kComm;
    cfg.embedding.distribution = EmbeddingGenConfig::Distribution::kUniform;
    cfg.embedding.zipf_s = 1.31;
    cfg.custom_ops = CustomOpRegistry::empty();
    cfg.custom_ops.register_op("fairseq::lstm_layer");
    cfg.custom_ops.register_namespace("fbgemm::");
    cfg.emulate_world_size = 64;
    cfg.collect_profiler = false;

    // Round trip through the *textual* form, as a package consumer would.
    const ReplayConfig back = ReplayConfig::from_json(Json::parse(cfg.to_json().dump()));
    EXPECT_EQ(back.platform, cfg.platform);
    EXPECT_EQ(back.mode, cfg.mode);
    EXPECT_EQ(back.warmup_iterations, cfg.warmup_iterations);
    EXPECT_EQ(back.iterations, cfg.iterations);
    EXPECT_EQ(back.seed, cfg.seed);
    ASSERT_TRUE(back.power_limit_w.has_value());
    EXPECT_DOUBLE_EQ(*back.power_limit_w, *cfg.power_limit_w);
    EXPECT_EQ(back.filter.subtrace_root, cfg.filter.subtrace_root);
    EXPECT_EQ(back.filter.only_category, cfg.filter.only_category);
    EXPECT_EQ(back.embedding.distribution, cfg.embedding.distribution);
    EXPECT_DOUBLE_EQ(back.embedding.zipf_s, cfg.embedding.zipf_s);
    EXPECT_TRUE(back.custom_ops.is_registered("fairseq::lstm_layer"));
    EXPECT_TRUE(back.custom_ops.is_registered("fbgemm::anything"));
    EXPECT_EQ(back.emulate_world_size, cfg.emulate_world_size);
    EXPECT_EQ(back.collect_profiler, cfg.collect_profiler);
    // The fingerprint — the cache identity — survives the round trip.
    EXPECT_EQ(back.fingerprint(), cfg.fingerprint());
    // And the default config round-trips too (null optionals).
    const ReplayConfig dflt;
    EXPECT_EQ(ReplayConfig::from_json(dflt.to_json()).fingerprint(), dflt.fingerprint());
}

TEST(PlanJson, RoundTripEqualsInMemoryPlan)
{
    const auto& r0 = traced("param_linear").rank0();
    const ReplayConfig cfg = tiny_replay();
    const auto plan = ReplayPlan::build(r0.trace, &r0.prof, cfg);

    const Json j = plan->to_json();
    // Textual round trip first: dump → parse must preserve the document.
    EXPECT_EQ(Json::parse(j.dump(2)), j);

    // Structural round trip: a plan rebuilt from the JSON serializes back to
    // the exact same document (key, selection, coverage, streams, IR).
    const auto restored = ReplayPlan::from_json(Json::parse(j.dump()), r0.trace);
    EXPECT_EQ(restored->to_json(), j);
    EXPECT_EQ(restored->key(), plan->key());
    EXPECT_EQ(restored->ops().size(), plan->ops().size());

    // And the restored plan replays bit-identically to the built one.
    const ReplayResult a = Replayer(plan, cfg).run();
    const ReplayResult b = Replayer(restored, cfg).run();
    EXPECT_DOUBLE_EQ(a.mean_iter_us, b.mean_iter_us);
    ASSERT_EQ(a.iter_us.size(), b.iter_us.size());
    for (std::size_t i = 0; i < a.iter_us.size(); ++i)
        EXPECT_EQ(a.iter_us[i], b.iter_us[i]);
    EXPECT_EQ(a.prof.kernels().size(), b.prof.kernels().size());
}

TEST(PlanJson, PartialKeysAreMarkedNotZeroFilled)
{
    const auto& r0 = traced("param_linear").rank0();
    const ReplayConfig cfg = tiny_replay();

    // A one-shot Replayer dump carries a partial key: the document must say
    // so explicitly rather than presenting zero-valued fingerprints.
    const Replayer one_shot(r0.trace, &r0.prof, cfg);
    const Json j = plan_to_json(one_shot);
    EXPECT_TRUE(j.at("key").get_bool("partial", false));
    EXPECT_FALSE(j.at("key").contains("trace_fp"));
    const PlanKey back = PlanKey::from_json(j.at("key"));
    EXPECT_TRUE(back.is_partial());
    EXPECT_EQ(back.config_fp, cfg.fingerprint());

    // Partial documents are inspection artifacts, not packages: refusing to
    // deserialize them prevents un-verifiable plans from entering caches.
    EXPECT_THROW((void)ReplayPlan::from_json(j, r0.trace), ParseError);

    // Cache-built plans carry full, unmarked keys.
    PlanCache cache(4);
    const Json full = cache.get_or_build(r0.trace, &r0.prof, cfg)->to_json();
    EXPECT_FALSE(full.at("key").get_bool("partial", false));
    EXPECT_FALSE(PlanKey::from_json(full.at("key")).is_partial());
}

TEST(PlanJson, FromJsonRejectsForeignNodes)
{
    const auto& pl = traced("param_linear").rank0();
    const auto& rm = traced("rm").rank0();
    const ReplayConfig cfg = tiny_replay();
    const Json j = ReplayPlan::build(pl.trace, &pl.prof, cfg)->to_json();
    // Deserializing against a different trace must fail loudly, not replay
    // the wrong benchmark.
    EXPECT_THROW((void)ReplayPlan::from_json(j, rm.trace), MystiqueError);
}

TEST(Codegen, WarmCacheCodegenDoesZeroPlanBuilds)
{
    const auto& r0 = traced("param_linear").rank0();
    const ReplayConfig cfg = tiny_replay();
    PlanCache cache(8);

    // Simulate the generate_and_share flow: the trace was already replayed
    // through this cache...
    (void)cache.get_or_build(r0.trace, &r0.prof, cfg);
    ASSERT_EQ(cache.stats().misses, 1u);

    // ...so packaging it must perform zero additional plan builds.
    const std::string dir = fresh_dir("mystique_codegen_warm");
    const CodegenResult res = generate_benchmark(dir, r0.trace, r0.prof, cfg, &cache);
    const PlanCacheStats s = cache.stats();
    EXPECT_EQ(s.misses, 1u) << "warm-cache codegen rebuilt the plan";
    EXPECT_EQ(s.hits, 1u);
    ASSERT_NE(res.plan, nullptr);
    EXPECT_EQ(res.files_written, 6);

    // A cold cache pays exactly one build — and only one — for the package.
    PlanCache cold(8);
    (void)generate_benchmark(fresh_dir("mystique_codegen_cold"), r0.trace, r0.prof, cfg,
                             &cold);
    EXPECT_EQ(cold.stats().misses, 1u);
    EXPECT_EQ(cold.stats().hits, 0u);
}

TEST(Codegen, ImportedPackagePlanSeedsPlanCache)
{
    const auto& r0 = traced("param_linear").rank0();
    const ReplayConfig cfg = tiny_replay();
    PlanCache gen_cache(8);
    const std::string dir = fresh_dir("mystique_codegen_import");
    (void)generate_benchmark(dir, r0.trace, r0.prof, cfg, &gen_cache);

    // Consumer side: load the package, rebuild the plan from its JSON, and
    // seed a fresh cache with it — replaying the packaged trace is then a
    // pure hit, never a build.
    const et::ExecutionTrace trace = et::ExecutionTrace::load(dir + "/execution_trace.json");
    const prof::ProfilerTrace prof =
        prof::ProfilerTrace::from_json(Json::parse_file(dir + "/profiler_trace.json"));
    const ReplayConfig imported_cfg = ReplayConfig::from_json(
        Json::parse_file(dir + "/manifest.json").at("replay_config"));
    const auto plan =
        ReplayPlan::from_json(Json::parse_file(dir + "/replay_plan.json"), trace);

    PlanCache import_cache(8);
    EXPECT_TRUE(import_cache.insert(plan));
    EXPECT_FALSE(import_cache.insert(plan)); // second insert keeps the first

    const auto served = import_cache.get_or_build(trace, &prof, imported_cfg);
    EXPECT_EQ(served.get(), plan.get());
    EXPECT_EQ(import_cache.stats().hits, 1u);
    EXPECT_EQ(import_cache.stats().misses, 0u);

    // Borrowed one-shot plans carry partial keys and must be rejected.
    const Replayer one_shot(r0.trace, &r0.prof, cfg);
    EXPECT_THROW((void)import_cache.insert(one_shot.plan()), InternalError);
}

TEST(Codegen, ManifestCarriesPlanKeyAndConfig)
{
    const auto& r0 = traced("param_linear").rank0();
    const ReplayConfig cfg = tiny_replay();
    PlanCache cache(8);
    const std::string dir = fresh_dir("mystique_codegen_manifest");
    const CodegenResult res = generate_benchmark(dir, r0.trace, r0.prof, cfg, &cache);

    const Json m = Json::parse_file(dir + "/manifest.json");
    EXPECT_EQ(m.at("format").as_string(), "mystique-benchmark-package");
    EXPECT_EQ(m.at("format_version").as_int(), kPackageFormatVersion);
    EXPECT_EQ(m.at("generator").as_string(), kGeneratorVersion);
    EXPECT_EQ(m.at("workload").as_string(), r0.trace.meta().workload);

    // The manifest's plan key is the key of the plan the package came from.
    EXPECT_EQ(PlanKey::from_json(m.at("plan_key")), res.plan->key());
    // The trace fingerprints match the packaged trace.
    EXPECT_EQ(m.at("execution_trace").at("structural_fingerprint").as_string(),
              std::to_string(r0.trace.structural_fingerprint()));
    EXPECT_EQ(m.at("execution_trace").at("op_mix_fingerprint").as_string(),
              std::to_string(r0.trace.fingerprint()));
    // The embedded config re-fingerprints to the key's config component.
    EXPECT_EQ(ReplayConfig::from_json(m.at("replay_config")).fingerprint(),
              res.plan->key().config_fp);
    // Every listed file exists.
    for (const Json& f : m.at("files").as_array())
        EXPECT_TRUE(fs::exists(fs::path(dir) / f.as_string())) << f.as_string();
}

TEST(Codegen, VerifyPackageAcceptsFreshPackage)
{
    const auto& r0 = traced("param_linear").rank0();
    PlanCache cache(8);
    const std::string dir = fresh_dir("mystique_codegen_verify_ok");
    (void)generate_benchmark(dir, r0.trace, r0.prof, tiny_replay(), &cache);

    const PackageVerification v = verify_package(dir);
    EXPECT_TRUE(v.ok) << (v.errors.empty() ? "" : v.errors.front());
    EXPECT_TRUE(v.errors.empty());
}

TEST(Codegen, VerifyPackageRejectsTamperedTrace)
{
    const auto& r0 = traced("param_linear").rank0();
    PlanCache cache(8);
    const std::string dir = fresh_dir("mystique_codegen_verify_tamper");
    (void)generate_benchmark(dir, r0.trace, r0.prof, tiny_replay(), &cache);

    // Tamper: perturb one tensor shape in the packaged ET — the package
    // still parses and replays, but it is no longer the benchmark the
    // manifest describes.
    const std::string et_path = dir + "/execution_trace.json";
    const et::ExecutionTrace packaged = et::ExecutionTrace::load(et_path);
    et::ExecutionTrace tampered;
    tampered.meta() = packaged.meta();
    bool perturbed = false;
    for (const auto& n : packaged.nodes()) {
        et::Node copy = n;
        if (!perturbed && copy.is_op() && !copy.inputs.empty() &&
            !copy.inputs[0].tensors.empty() && !copy.inputs[0].tensors[0].shape.empty()) {
            copy.inputs[0].tensors[0].shape[0] += 1;
            perturbed = true;
        }
        tampered.add_node(std::move(copy));
    }
    ASSERT_TRUE(perturbed);
    tampered.save(et_path);

    const PackageVerification v = verify_package(dir);
    EXPECT_FALSE(v.ok);
    ASSERT_FALSE(v.errors.empty());
    // The failure names the structural fingerprint mismatch.
    bool mentions_trace = false;
    for (const auto& e : v.errors)
        mentions_trace = mentions_trace || e.find("execution_trace") != std::string::npos;
    EXPECT_TRUE(mentions_trace);
}

TEST(Codegen, VerifyPackageRejectsTamperedProfilerAndMissingFiles)
{
    const auto& r0 = traced("param_linear").rank0();
    PlanCache cache(8);
    const std::string dir = fresh_dir("mystique_codegen_verify_prof");
    (void)generate_benchmark(dir, r0.trace, r0.prof, tiny_replay(), &cache);

    // Append a synthetic kernel event: stream content changes, fingerprint
    // diverges from the manifest.
    const std::string prof_path = dir + "/profiler_trace.json";
    prof::ProfilerTrace altered =
        prof::ProfilerTrace::from_json(Json::parse_file(prof_path));
    prof::KernelEvent ev;
    ev.name = "tampered_kernel";
    ev.stream = 99;
    ev.ts = 0.0;
    ev.dur = 1.0;
    ev.correlation = r0.trace.nodes().front().id;
    altered.add_kernel(ev);
    altered.to_json().dump_file(prof_path);
    EXPECT_FALSE(verify_package(dir).ok);

    // A package missing a manifest-listed file fails fast.
    const std::string dir2 = fresh_dir("mystique_codegen_verify_missing");
    (void)generate_benchmark(dir2, r0.trace, r0.prof, tiny_replay(), &cache);
    fs::remove(dir2 + "/replay_plan.json");
    const PackageVerification v2 = verify_package(dir2);
    EXPECT_FALSE(v2.ok);
    ASSERT_FALSE(v2.errors.empty());
    EXPECT_NE(v2.errors.front().find("replay_plan.json"), std::string::npos);

    // A directory with no manifest at all is not a package.
    EXPECT_FALSE(verify_package(fresh_dir("mystique_codegen_no_manifest")).ok);
}

} // namespace
} // namespace mystique::core
