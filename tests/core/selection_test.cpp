/// Tests for operator selection (§4.2) and coverage accounting (§6.3).

#include <gtest/gtest.h>

#include "core/selection.h"
#include "framework/op_registry.h"

namespace mystique::core {
namespace {

et::Node
node(int64_t id, const std::string& name, int64_t parent, et::NodeKind kind,
     dev::OpCategory cat = dev::OpCategory::kATen)
{
    et::Node n;
    n.id = id;
    n.name = name;
    n.parent = parent;
    n.kind = kind;
    n.category = cat;
    if (kind == et::NodeKind::kOperator && cat != dev::OpCategory::kFused)
        n.op_schema = name + "(Tensor self) -> Tensor";
    return n;
}

/// linear → (t, addmm) with a record_function wrapper above, plus a fused op.
et::ExecutionTrace
sample_trace()
{
    et::ExecutionTrace t;
    t.add_node(node(0, "## fwd ##", -1, et::NodeKind::kWrapper, dev::OpCategory::kOther));
    // use real registered names so is_replayable() passes
    et::Node lin = node(1, "aten::linear", 0, et::NodeKind::kOperator);
    lin.op_schema = "aten::linear(Tensor input, Tensor weight, Tensor? bias=None) -> Tensor";
    t.add_node(lin);
    et::Node tn = node(2, "aten::t", 1, et::NodeKind::kOperator);
    tn.op_schema = "aten::t(Tensor(a) self) -> Tensor(a)";
    t.add_node(tn);
    et::Node mm = node(3, "aten::addmm", 1, et::NodeKind::kOperator);
    mm.op_schema = "aten::addmm(Tensor self, Tensor mat1, Tensor mat2, *, Scalar beta=1, "
                   "Scalar alpha=1) -> Tensor";
    t.add_node(mm);
    t.add_node(node(4, "fused::x", 0, et::NodeKind::kOperator, dev::OpCategory::kFused));
    et::Node relu = node(5, "aten::relu", -1, et::NodeKind::kOperator);
    relu.op_schema = "aten::relu(Tensor self) -> Tensor";
    t.add_node(relu);
    return t;
}

TEST(Selection, KeepsParentSkipsChildren)
{
    fw::ensure_ops_registered();
    const et::ExecutionTrace t = sample_trace();
    const Selection sel = select_ops(t, CustomOpRegistry::with_defaults());
    // Selected: linear (1), fused (4), relu (5). NOT t/addmm (children of 1),
    // NOT the wrapper.
    std::vector<int64_t> ids;
    for (const auto& op : sel.ops)
        ids.push_back(op.node_id);
    EXPECT_EQ(ids, (std::vector<int64_t>{1, 4, 5}));
}

TEST(Selection, WrappersAreTransparent)
{
    fw::ensure_ops_registered();
    const et::ExecutionTrace t = sample_trace();
    const Selection sel = select_ops(t, CustomOpRegistry::with_defaults());
    // linear sits under a wrapper but is still selected ("Replay targets").
    EXPECT_EQ(sel.ops[0].node_id, 1);
    EXPECT_TRUE(sel.ops[0].supported);
}

TEST(Selection, FusedUnsupported)
{
    fw::ensure_ops_registered();
    const et::ExecutionTrace t = sample_trace();
    const Selection sel = select_ops(t, CustomOpRegistry::with_defaults());
    EXPECT_FALSE(sel.ops[1].supported); // fused::x — no schema in the ET
    EXPECT_EQ(sel.total_supported(), 2);
}

TEST(Selection, SubtreeIdsCoverDescendants)
{
    fw::ensure_ops_registered();
    const et::ExecutionTrace t = sample_trace();
    const Selection sel = select_ops(t, CustomOpRegistry::with_defaults());
    const auto& subtree = sel.subtree_ids.at(1);
    EXPECT_EQ(subtree, (std::vector<int64_t>{1, 2, 3}));
}

TEST(Selection, SubtraceFilter)
{
    fw::ensure_ops_registered();
    const et::ExecutionTrace t = sample_trace();
    SelectionFilter f;
    f.subtrace_root = "## fwd ##";
    const Selection sel = select_ops(t, CustomOpRegistry::with_defaults(), f);
    // relu (id 5) sits outside the wrapper → excluded.
    std::vector<int64_t> ids;
    for (const auto& op : sel.ops)
        ids.push_back(op.node_id);
    EXPECT_EQ(ids, (std::vector<int64_t>{1, 4}));
}

TEST(Selection, MissingSubtraceRootThrows)
{
    fw::ensure_ops_registered();
    const et::ExecutionTrace t = sample_trace();
    SelectionFilter f;
    f.subtrace_root = "## nope ##";
    EXPECT_THROW(select_ops(t, CustomOpRegistry::with_defaults(), f), ReplayError);
}

TEST(Selection, CategoryFilter)
{
    fw::ensure_ops_registered();
    et::ExecutionTrace t = sample_trace();
    et::Node comm = node(6, "c10d::all_reduce", -1, et::NodeKind::kOperator,
                         dev::OpCategory::kComm);
    comm.op_schema = "c10d::all_reduce(Tensor tensor, int pg) -> Tensor";
    t.add_node(comm);
    SelectionFilter f;
    f.only_category = dev::OpCategory::kComm;
    const Selection sel = select_ops(t, CustomOpRegistry::with_defaults(), f);
    ASSERT_EQ(sel.ops.size(), 1u);
    EXPECT_EQ(sel.ops[0].node_id, 6);
}

TEST(CustomRegistry, GatesCustomOps)
{
    fw::ensure_ops_registered();
    et::Node lstm = node(0, "fairseq::lstm_layer", -1, et::NodeKind::kOperator,
                         dev::OpCategory::kCustom);
    lstm.op_schema =
        "fairseq::lstm_layer(Tensor input, Tensor w_ih, Tensor w_hh, Tensor bias) -> Tensor";
    EXPECT_FALSE(is_replayable(lstm, CustomOpRegistry::with_defaults()));
    CustomOpRegistry reg = CustomOpRegistry::with_defaults();
    reg.register_op("fairseq::lstm_layer");
    EXPECT_TRUE(is_replayable(lstm, reg));
    CustomOpRegistry ns = CustomOpRegistry::empty();
    ns.register_namespace("fairseq::");
    EXPECT_TRUE(is_replayable(lstm, ns));
}

TEST(CustomRegistry, FbgemmSupportedByDefault)
{
    fw::ensure_ops_registered();
    et::Node fb = node(0, "fbgemm::batched_embedding_lookup", -1, et::NodeKind::kOperator,
                       dev::OpCategory::kCustom);
    fb.op_schema = "fbgemm::batched_embedding_lookup(Tensor weights, Tensor indices, "
                   "Tensor offsets, int num_tables) -> Tensor";
    EXPECT_TRUE(is_replayable(fb, CustomOpRegistry::with_defaults()));
    EXPECT_FALSE(is_replayable(fb, CustomOpRegistry::empty()));
}

TEST(Coverage, CountFraction)
{
    fw::ensure_ops_registered();
    const et::ExecutionTrace t = sample_trace();
    const Selection sel = select_ops(t, CustomOpRegistry::with_defaults());
    const CoverageStats cov = coverage(t, sel, nullptr);
    EXPECT_EQ(cov.selected_ops, 3);
    EXPECT_EQ(cov.supported_ops, 2);
    EXPECT_NEAR(cov.count_fraction, 2.0 / 3.0, 1e-9);
    EXPECT_EQ(cov.unsupported_by_name.at("fused::x"), 1);
}

TEST(Coverage, TimeFractionFromProfiler)
{
    fw::ensure_ops_registered();
    const et::ExecutionTrace t = sample_trace();
    const Selection sel = select_ops(t, CustomOpRegistry::with_defaults());
    prof::ProfilerTrace p;
    // addmm (child of supported linear) runs 90us; fused runs 10us.
    prof::KernelEvent k1;
    k1.name = "sgemm";
    k1.ts = 0;
    k1.dur = 90;
    k1.correlation = 3;
    p.add_kernel(k1);
    prof::KernelEvent k2;
    k2.name = "nvfuser";
    k2.ts = 90;
    k2.dur = 10;
    k2.correlation = 4;
    p.add_kernel(k2);
    const CoverageStats cov = coverage(t, sel, &p);
    EXPECT_NEAR(cov.time_fraction, 0.9, 1e-9);
    EXPECT_NEAR(cov.unsupported_kernel_us, 10.0, 1e-9);
    EXPECT_NEAR(cov.unsupported_exposed_us, 10.0, 1e-9); // no overlap
}

} // namespace
} // namespace mystique::core
