/// Tests for tensor classification and generation policies (§4.4).

#include <gtest/gtest.h>

#include "core/tensor_manager.h"
#include "framework/op_registry.h"

namespace mystique::core {
namespace {

et::TensorMeta
meta(int64_t uid, std::vector<int64_t> shape, const char* dtype = "float32")
{
    et::TensorMeta m;
    m.tensor_id = uid;
    m.storage_id = uid + 500;
    m.numel = fw::shape_numel(shape);
    m.itemsize = std::string(dtype) == "int64" ? 8 : 4;
    m.shape = std::move(shape);
    m.dtype = dtype;
    return m;
}

et::Node
make_node(int64_t id, std::string name)
{
    et::Node n;
    n.id = id;
    n.name = std::move(name);
    n.kind = et::NodeKind::kOperator;
    return n;
}

fw::Session&
session()
{
    static fw::SessionOptions opts = [] {
        fw::SessionOptions o;
        o.mode = fw::ExecMode::kShapeOnly;
        return o;
    }();
    static fw::Session s(opts);
    return s;
}

TEST(TensorManager, ClassifiesExternalsAndIntermediates)
{
    // op0: relu(t1) -> t2 ; op1: relu(t2) -> t3.  t1 external; t2, t3
    // intermediates.
    et::Node n0 = make_node(0, "aten::relu");
    n0.inputs.push_back(et::Argument::from_tensor(meta(1, {4})));
    n0.outputs.push_back(et::Argument::from_tensor(meta(2, {4})));
    et::Node n1 = make_node(1, "aten::relu");
    n1.inputs.push_back(et::Argument::from_tensor(meta(2, {4})));
    n1.outputs.push_back(et::Argument::from_tensor(meta(3, {4})));

    TensorManager tm(session(), {});
    tm.analyze({&n0, &n1});
    EXPECT_EQ(tm.num_external(), 1u);
    EXPECT_EQ(tm.num_intermediate(), 2u);
}

TEST(TensorManager, ExternalsInstantiatedBeforeExecution)
{
    et::Node n0 = make_node(0, "aten::relu");
    n0.inputs.push_back(et::Argument::from_tensor(meta(1, {2, 3})));
    n0.outputs.push_back(et::Argument::from_tensor(meta(2, {2, 3})));
    TensorManager tm(session(), {});
    tm.analyze({&n0});
    tm.instantiate_externals();
    const fw::Tensor t = tm.resolve(meta(1, {2, 3}));
    EXPECT_EQ(t.shape(), (fw::Shape{2, 3}));
    // Intermediates are not pre-instantiated.
    EXPECT_THROW(tm.resolve(meta(2, {2, 3})), ReplayError);
}

TEST(TensorManager, BindOutputMakesIntermediateResolvable)
{
    et::Node n0 = make_node(0, "aten::relu");
    n0.inputs.push_back(et::Argument::from_tensor(meta(1, {4})));
    n0.outputs.push_back(et::Argument::from_tensor(meta(2, {4})));
    TensorManager tm(session(), {});
    tm.analyze({&n0});
    tm.instantiate_externals();
    fw::Tensor produced = session().alloc({4});
    tm.bind_output(meta(2, {4}), produced);
    EXPECT_EQ(tm.resolve(meta(2, {4})).impl(), produced.impl());
}

TEST(TensorManager, EmbeddingIndicesBoundedByTableRows)
{
    // embedding_bag(weight[100, 8], indices[64], offsets[16]) — indices must
    // land in [0, 100) and offsets must be monotone bag boundaries.
    et::Node n = make_node(0, "aten::embedding_bag");
    n.inputs.push_back(et::Argument::from_tensor(meta(1, {100, 8})));
    n.inputs.push_back(et::Argument::from_tensor(meta(2, {64}, "int64")));
    n.inputs.push_back(et::Argument::from_tensor(meta(3, {16}, "int64")));
    n.inputs.push_back(et::Argument::from_int(0));
    n.outputs.push_back(et::Argument::from_tensor(meta(4, {16, 8})));

    TensorManager tm(session(), {});
    tm.analyze({&n});
    tm.instantiate_externals();
    const fw::Tensor idx = tm.resolve(meta(2, {64}, "int64"));
    for (int64_t i = 0; i < idx.numel(); ++i) {
        EXPECT_GE(idx.i64()[i], 0);
        EXPECT_LT(idx.i64()[i], 100);
    }
    const fw::Tensor off = tm.resolve(meta(3, {16}, "int64"));
    EXPECT_EQ(off.i64()[0], 0);
    for (int64_t i = 1; i < off.numel(); ++i)
        EXPECT_GE(off.i64()[i], off.i64()[i - 1]);
    EXPECT_LE(off.i64()[off.numel() - 1], 64);
}

TEST(TensorManager, PolicyPropagatesThroughDeviceCopies)
{
    // host indices (external, uid 2) → to.device → device indices (uid 5)
    // → embedding_bag.  The generation policy must land on uid 2.
    et::Node copy = make_node(0, "aten::to.device");
    copy.inputs.push_back(et::Argument::from_tensor(meta(2, {64}, "int64")));
    copy.inputs.push_back(et::Argument::from_string("cuda:0"));
    copy.outputs.push_back(et::Argument::from_tensor(meta(5, {64}, "int64")));

    et::Node emb = make_node(1, "aten::embedding_bag");
    emb.inputs.push_back(et::Argument::from_tensor(meta(1, {50, 4})));
    emb.inputs.push_back(et::Argument::from_tensor(meta(5, {64}, "int64")));
    emb.inputs.push_back(et::Argument::from_tensor(meta(3, {8}, "int64")));
    emb.inputs.push_back(et::Argument::from_int(0));
    emb.outputs.push_back(et::Argument::from_tensor(meta(4, {8, 4})));

    TensorManager tm(session(), {});
    tm.analyze({&copy, &emb});
    tm.instantiate_externals();
    const fw::Tensor host_idx = tm.resolve(meta(2, {64}, "int64"));
    for (int64_t i = 0; i < host_idx.numel(); ++i)
        EXPECT_LT(host_idx.i64()[i], 50) << "policy did not propagate to host tensor";
}

TEST(TensorManager, NllTargetsBoundedByClasses)
{
    et::Node n = make_node(0, "aten::nll_loss");
    n.inputs.push_back(et::Argument::from_tensor(meta(1, {8, 10})));
    n.inputs.push_back(et::Argument::from_tensor(meta(2, {8}, "int64")));
    n.outputs.push_back(et::Argument::from_tensor(meta(3, {1})));
    TensorManager tm(session(), {});
    tm.analyze({&n});
    tm.instantiate_externals();
    const fw::Tensor target = tm.resolve(meta(2, {8}, "int64"));
    for (int64_t i = 0; i < 8; ++i) {
        EXPECT_GE(target.i64()[i], 0);
        EXPECT_LT(target.i64()[i], 10);
    }
}

TEST(TensorManager, ZipfConfigSkewsIndices)
{
    et::Node n = make_node(0, "aten::embedding_bag");
    n.inputs.push_back(et::Argument::from_tensor(meta(1, {10000, 4})));
    n.inputs.push_back(et::Argument::from_tensor(meta(2, {20000}, "int64")));
    n.inputs.push_back(et::Argument::from_tensor(meta(3, {16}, "int64")));
    n.inputs.push_back(et::Argument::from_int(0));
    n.outputs.push_back(et::Argument::from_tensor(meta(4, {16, 4})));

    EmbeddingGenConfig zipf;
    zipf.distribution = EmbeddingGenConfig::Distribution::kZipf;
    zipf.zipf_s = 1.3;
    TensorManager tm_z(session(), zipf);
    tm_z.analyze({&n});
    tm_z.instantiate_externals();
    EmbeddingGenConfig uni;
    uni.distribution = EmbeddingGenConfig::Distribution::kUniform;
    TensorManager tm_u(session(), uni);
    tm_u.analyze({&n});
    tm_u.instantiate_externals();

    auto head_mass = [](const fw::Tensor& idx) {
        int64_t head = 0;
        for (int64_t i = 0; i < idx.numel(); ++i)
            head += idx.i64()[i] < 100 ? 1 : 0;
        return static_cast<double>(head) / static_cast<double>(idx.numel());
    };
    const double zipf_head = head_mass(tm_z.resolve(meta(2, {20000}, "int64")));
    const double uni_head = head_mass(tm_u.resolve(meta(2, {20000}, "int64")));
    EXPECT_GT(zipf_head, uni_head * 5.0);
}

TEST(TensorManager, UnknownTensorThrows)
{
    TensorManager tm(session(), {});
    tm.analyze({});
    EXPECT_THROW(tm.resolve(meta(99, {1})), ReplayError);
}

} // namespace
} // namespace mystique::core
