/// Disk-backed plan tier tests: lossless ReplayPlan JSON round-trips across
/// every registered op in a multi-workload trace set, cross-cache-instance
/// disk reuse (the in-process model of cross-process reuse), the corruption/
/// robustness matrix (truncated, key-flipped, stale-schema, zero-byte, and
/// kind-drifted entries quarantine and rebuild — never crash, never replay a
/// wrong plan), and build-once ⇒ write-once under concurrent fetches.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <unistd.h>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/fs_util.h"
#include "common/hash.h"
#include "core/plan_cache.h"
#include "core/plan_store.h"
#include "core/replayer.h"
#include "workloads/harness.h"

namespace mystique::core {
namespace {

namespace fs = std::filesystem;

wl::RunConfig
tiny_cfg()
{
    wl::RunConfig cfg;
    cfg.mode = fw::ExecMode::kShapeOnly;
    cfg.warmup_iterations = 1;
    cfg.iterations = 2;
    cfg.seed = 7;
    return cfg;
}

wl::WorkloadOptions
tiny_opts()
{
    wl::WorkloadOptions o;
    o.preset = wl::Preset::kTiny;
    return o;
}

ReplayConfig
tiny_replay()
{
    ReplayConfig cfg;
    cfg.mode = fw::ExecMode::kShapeOnly;
    cfg.warmup_iterations = 1;
    cfg.iterations = 2;
    return cfg;
}

/// One traced tiny run per workload, shared across the suite.
const wl::RunResult&
traced(const std::string& workload)
{
    static std::map<std::string, wl::RunResult> cache;
    auto it = cache.find(workload);
    if (it == cache.end())
        it = cache.emplace(workload, wl::run_original(workload, tiny_opts(), tiny_cfg()))
                 .first;
    return it->second;
}

/// Unique, self-deleting store directory per test.
struct TempStoreDir {
    TempStoreDir()
    {
        static std::atomic<int> counter{0};
        path = (fs::temp_directory_path() /
                ("myst_plan_store_test_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter.fetch_add(1))))
                   .string();
        fs::create_directories(path);
    }
    ~TempStoreDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string path;
};

/// The single store entry in @p dir (fails the test when count != 1).
std::string
sole_entry(const std::string& dir)
{
    std::vector<std::string> entries;
    for (const auto& e : fs::directory_iterator(dir)) {
        if (e.path().extension() == ".json")
            entries.push_back(e.path().string());
    }
    EXPECT_EQ(entries.size(), 1u) << "expected exactly one store entry in " << dir;
    return entries.empty() ? std::string() : entries.front();
}

void
expect_identical_replay(const std::shared_ptr<const ReplayPlan>& a,
                        const std::shared_ptr<const ReplayPlan>& b,
                        const ReplayConfig& cfg, const std::string& label)
{
    Replayer ra(a, cfg);
    const ReplayResult res_a = ra.run();
    Replayer rb(b, cfg);
    const ReplayResult res_b = rb.run();
    EXPECT_EQ(res_a.mean_iter_us, res_b.mean_iter_us) << label;
    ASSERT_EQ(res_a.iter_us.size(), res_b.iter_us.size()) << label;
    for (std::size_t i = 0; i < res_a.iter_us.size(); ++i)
        EXPECT_EQ(res_a.iter_us[i], res_b.iter_us[i]) << label << " iter " << i;
    EXPECT_EQ(res_a.coverage.selected_ops, res_b.coverage.selected_ops) << label;
    EXPECT_EQ(res_a.prof.kernels().size(), res_b.prof.kernels().size()) << label;
}

// ---------------------------------------------------------------------------
// Satellite 1: property-style round trip over every registered op that the
// multi-workload trace set reaches.
// ---------------------------------------------------------------------------

TEST(PlanRoundTrip, EveryReachedOpSurvivesJsonAndReplaysBitIdentically)
{
    const ReplayConfig cfg = tiny_replay();
    std::set<std::string> supported_names_reached;

    for (const char* workload : {"param_linear", "rm", "asr"}) {
        const auto& r0 = traced(workload).rank0();
        const auto plan = ReplayPlan::build(r0.trace, &r0.prof, cfg);
        const Json j = plan->to_json();
        const auto restored = ReplayPlan::from_json(j, r0.trace);

        // Lossless: re-serializing the restored plan reproduces the document.
        EXPECT_EQ(restored->to_json(), j) << workload;
        EXPECT_EQ(restored->key(), plan->key()) << workload;

        // Per-op property: every reconstructed op — one per registered op
        // occurrence the selection reached — round-trips kind, stream
        // assignment, and generated IR text exactly.
        ASSERT_EQ(restored->ops().size(), plan->ops().size()) << workload;
        for (std::size_t i = 0; i < plan->ops().size(); ++i) {
            const ReconstructedOp& orig = plan->ops()[i];
            const ReconstructedOp& back = restored->ops()[i];
            ASSERT_NE(orig.node, nullptr);
            ASSERT_NE(back.node, nullptr);
            EXPECT_EQ(back.node->id, orig.node->id) << workload << " op " << i;
            EXPECT_EQ(back.node->name, orig.node->name) << workload << " op " << i;
            EXPECT_EQ(back.kind, orig.kind) << workload << " op " << orig.node->name;
            EXPECT_EQ(back.stream, orig.stream) << workload << " op " << orig.node->name;
            EXPECT_EQ(back.ir_text, orig.ir_text) << workload << " op " << orig.node->name;
            if (orig.kind != ReconstructedOp::Kind::kSkipped)
                supported_names_reached.insert(orig.node->name);
        }

        expect_identical_replay(plan, restored, cfg, workload);
    }

    // The three workloads must actually exercise a broad slice of the
    // registry — a trivial trace would make the per-op property vacuous.
    EXPECT_GE(supported_names_reached.size(), 10u)
        << "multi-workload trace set reaches suspiciously few registered ops";
}

// ---------------------------------------------------------------------------
// Disk-tier reuse across cache instances (the in-process stand-in for the
// cross-process CI step; the key and entry bytes are process-independent).
// ---------------------------------------------------------------------------

TEST(PlanStoreTier, SecondCacheInstanceLoadsFromDiskWithZeroBuilds)
{
    const auto& r0 = traced("param_linear").rank0();
    const ReplayConfig cfg = tiny_replay();
    TempStoreDir dir;

    PlanCache first(8);
    first.set_store_dir(dir.path);
    const auto built = first.get_or_build(r0.trace, &r0.prof, cfg);
    first.flush_writebacks();
    PlanCacheStats s1 = first.stats();
    EXPECT_EQ(s1.misses, 1u);
    EXPECT_EQ(s1.disk_hits, 0u);
    EXPECT_EQ(s1.disk_misses, 1u);
    EXPECT_EQ(s1.builds, 1u);
    EXPECT_EQ(s1.writebacks, 1u);
    sole_entry(dir.path);

    // A fresh cache (≈ a fresh process) resolves the same key from disk.
    PlanCache second(8);
    second.set_store_dir(dir.path);
    const auto loaded = second.get_or_build(r0.trace, &r0.prof, cfg);
    const PlanCacheStats s2 = second.stats();
    EXPECT_EQ(s2.misses, 1u);
    EXPECT_EQ(s2.disk_hits, 1u);
    EXPECT_EQ(s2.disk_misses, 0u);
    EXPECT_EQ(s2.builds, 0u); // zero plan builds — the tentpole claim
    EXPECT_EQ(loaded->key(), built->key());
    expect_identical_replay(built, loaded, cfg, "disk-loaded plan");

    // A disk hit must not be re-written back.
    second.flush_writebacks();
    EXPECT_EQ(second.stats().writebacks, 0u);
}

TEST(PlanStoreTier, ClearedCacheRefillsFromDiskNotFromBuild)
{
    const auto& r0 = traced("param_linear").rank0();
    const ReplayConfig cfg = tiny_replay();
    TempStoreDir dir;

    PlanCache cache(8);
    cache.set_store_dir(dir.path);
    (void)cache.get_or_build(r0.trace, &r0.prof, cfg);
    cache.flush_writebacks();
    cache.clear(); // memory tier dropped, disk tier deliberately kept

    (void)cache.get_or_build(r0.trace, &r0.prof, cfg);
    const PlanCacheStats s = cache.stats();
    EXPECT_EQ(s.disk_hits, 1u);
    EXPECT_EQ(s.builds, 0u);
}

TEST(PlanStoreTier, EnvVarEnablesTier)
{
    const auto& r0 = traced("param_linear").rank0();
    const ReplayConfig cfg = tiny_replay();
    TempStoreDir dir;

    ASSERT_EQ(::setenv("MYST_PLAN_CACHE_DIR", dir.path.c_str(), 1), 0);
    PlanCache cache(8); // no override: follows the environment
    (void)cache.get_or_build(r0.trace, &r0.prof, cfg);
    cache.flush_writebacks();
    ::unsetenv("MYST_PLAN_CACHE_DIR");

    EXPECT_EQ(cache.stats().writebacks, 1u);
    sole_entry(dir.path);

    // With the variable gone the tier is off again: no disk traffic.
    PlanCache plain(8);
    (void)plain.get_or_build(r0.trace, &r0.prof, cfg);
    const PlanCacheStats s = plain.stats();
    EXPECT_EQ(s.disk_hits + s.disk_misses, 0u);
    EXPECT_EQ(s.builds, 1u);
}

// ---------------------------------------------------------------------------
// Satellite 2: corruption/robustness matrix.  Every flavor of disk rot is
// quarantined (renamed .bad) and falls back to a successful build; the
// rebuilt plan is re-persisted and the store heals.
// ---------------------------------------------------------------------------

class PlanStoreCorruption : public ::testing::Test {
  protected:
    /// Seeds the store with one valid entry and returns its path.
    std::string seed_entry()
    {
        const auto& r0 = traced("param_linear").rank0();
        PlanCache seeder(8);
        seeder.set_store_dir(dir_.path);
        (void)seeder.get_or_build(r0.trace, &r0.prof, tiny_replay());
        seeder.flush_writebacks();
        EXPECT_EQ(seeder.stats().writebacks, 1u);
        return sole_entry(dir_.path);
    }

    /// Runs a fresh cache against the (corrupted) store and asserts the
    /// quarantine-and-rebuild contract end to end.
    void expect_quarantine_and_rebuild(const std::string& entry)
    {
        const auto& r0 = traced("param_linear").rank0();
        PlanCache cache(8);
        cache.set_store_dir(dir_.path);
        std::shared_ptr<const ReplayPlan> plan;
        ASSERT_NO_THROW(plan = cache.get_or_build(r0.trace, &r0.prof, tiny_replay()));
        ASSERT_NE(plan, nullptr);
        const PlanCacheStats s = cache.stats();
        EXPECT_EQ(s.disk_hits, 0u);
        EXPECT_EQ(s.disk_misses, 1u);
        EXPECT_EQ(s.builds, 1u); // fell back to a build, never a wrong plan
        EXPECT_TRUE(fs::exists(entry + ".bad")) << "corrupt entry not quarantined";

        // The rebuild re-persists a valid entry: the store self-heals and the
        // next fresh cache is a pure disk hit again.
        cache.flush_writebacks();
        EXPECT_EQ(cache.stats().writebacks, 1u);
        PlanCache healed(8);
        healed.set_store_dir(dir_.path);
        (void)healed.get_or_build(r0.trace, &r0.prof, tiny_replay());
        EXPECT_EQ(healed.stats().disk_hits, 1u);
        EXPECT_EQ(healed.stats().builds, 0u);
    }

    TempStoreDir dir_;
};

TEST_F(PlanStoreCorruption, TruncatedEntryQuarantinesAndRebuilds)
{
    const std::string entry = seed_entry();
    std::ifstream in(entry, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(bytes.size(), 64u);
    std::ofstream out(entry, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, bytes.size() / 2); // mid-document cut
    out.close();
    expect_quarantine_and_rebuild(entry);
}

TEST_F(PlanStoreCorruption, ZeroByteEntryQuarantinesAndRebuilds)
{
    const std::string entry = seed_entry();
    std::ofstream(entry, std::ios::binary | std::ios::trunc).close();
    ASSERT_EQ(fs::file_size(entry), 0u);
    expect_quarantine_and_rebuild(entry);
}

TEST_F(PlanStoreCorruption, FlippedFingerprintQuarantinesAndRebuilds)
{
    const std::string entry = seed_entry();
    Json doc = Json::parse_file(entry);
    // Flip the embedded key's trace fingerprint: the entry now claims an
    // identity its file name (and content) cannot back up.
    Json key = doc.at("key");
    const std::string fp = key.at("trace_fp").as_string();
    key.set("trace_fp", Json(fp == "1" ? "2" : "1"));
    doc.set("key", std::move(key));
    doc.dump_file(entry);
    expect_quarantine_and_rebuild(entry);
}

TEST_F(PlanStoreCorruption, StaleSchemaVersionQuarantinesAndRebuilds)
{
    const std::string entry = seed_entry();
    Json doc = Json::parse_file(entry);
    doc.set("format_version", Json(kPlanStoreFormatVersion + 1));
    doc.dump_file(entry);
    expect_quarantine_and_rebuild(entry);
}

TEST_F(PlanStoreCorruption, PreOptimizerV1EntryQuarantinesAndRebuilds)
{
    // An entry written by a v1 (pre-plan-optimizer) build: plans serialized
    // before fused groups existed must quarantine and rebuild, never replay
    // under the current schema.
    const std::string entry = seed_entry();
    Json doc = Json::parse_file(entry);
    doc.set("format_version", Json(int64_t{1}));
    doc.dump_file(entry);
    expect_quarantine_and_rebuild(entry);
}

TEST_F(PlanStoreCorruption, TamperedPlanContentFailsTheRecordedHash)
{
    const std::string entry = seed_entry();
    Json doc = Json::parse_file(entry);
    // Edit inside the plan without refreshing plan_hash: the whole-document
    // content hash must catch it, whatever the edited field was.
    Json plan_j = doc.at("plan");
    Json ops = plan_j.at("ops");
    ASSERT_FALSE(ops.as_array().empty());
    Json op0 = ops.as_array().front();
    op0.set("stream", Json(int64_t{99}));
    ops.as_array().front() = std::move(op0);
    plan_j.set("ops", std::move(ops));
    doc.set("plan", std::move(plan_j));
    doc.dump_file(entry);
    expect_quarantine_and_rebuild(entry);
}

TEST_F(PlanStoreCorruption, KindDriftedEntryQuarantinesAndRebuilds)
{
    const std::string entry = seed_entry();
    Json doc = Json::parse_file(entry);
    // Rewrite one op's recorded kind AND refresh plan_hash so the entry
    // passes the content check: the quarantine must then come from
    // ReplayPlan::from_json's registry-mismatch detection — the entry claims
    // a reconstruction kind this process's registry cannot reproduce.
    Json plan_j = doc.at("plan");
    Json ops = plan_j.at("ops");
    ASSERT_FALSE(ops.as_array().empty());
    Json op0 = ops.as_array().front();
    // A compiled-IR op recorded as "direct" is the detectable drift: this
    // process derives compiled_ir for an ATen node, contradicting the
    // document.  ("skipped" would also flip the derived supported flag and
    // stay self-consistent.)
    ASSERT_TRUE(op0.contains("ir")) << "expected a compiled-IR op first";
    op0.set("kind", Json("direct"));
    ops.as_array().front() = std::move(op0);
    plan_j.set("ops", std::move(ops));
    // Re-hash exactly what PlanStore hashes: the plan subdocument's dumped
    // bytes (the entry writes "plan" last, so a whole-document dump places
    // those bytes in the hashed region verbatim).
    Fnv1a h;
    h.mix(plan_j.dump());
    doc.set("plan_hash", Json(std::to_string(h.value())));
    doc.set("plan", std::move(plan_j));
    doc.dump_file(entry);
    expect_quarantine_and_rebuild(entry);
}

TEST_F(PlanStoreCorruption, ConcurrentFetchWritesBackExactlyOnce)
{
    const auto& r0 = traced("param_linear").rank0();
    const ReplayConfig cfg = tiny_replay();
    PlanCache cache(8);
    cache.set_store_dir(dir_.path);

    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const ReplayPlan>> plans(kThreads);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back(
            [&, i] { plans[i] = cache.get_or_build(r0.trace, &r0.prof, cfg); });
    }
    for (auto& t : threads)
        t.join();
    for (int i = 0; i < kThreads; ++i) {
        ASSERT_NE(plans[i], nullptr);
        EXPECT_EQ(plans[i].get(), plans[0].get());
    }

    cache.flush_writebacks();
    const PlanCacheStats s = cache.stats();
    EXPECT_EQ(s.builds, 1u);
    EXPECT_EQ(s.writebacks, 1u); // build-once ⇒ write-once

    // No torn files: exactly one entry, no leftover temp staging files, and
    // the entry parses + serves a fresh cache as a disk hit.
    const std::string entry = sole_entry(dir_.path);
    for (const auto& e : fs::directory_iterator(dir_.path))
        EXPECT_EQ(e.path().extension(), ".json") << "leftover file " << e.path();
    ASSERT_NO_THROW((void)Json::parse_file(entry));
    PlanCache verify(8);
    verify.set_store_dir(dir_.path);
    (void)verify.get_or_build(r0.trace, &r0.prof, cfg);
    EXPECT_EQ(verify.stats().disk_hits, 1u);
    EXPECT_EQ(verify.stats().builds, 0u);
}

// ---------------------------------------------------------------------------
// Fault-injected writeback/read matrix (common/fault_injection.h): every
// injectable I/O failure leaves the store *consistent* — the faulted
// operation is absorbed or quarantined, no `.tmp.*` staging file survives,
// and the next fetch rebuilds and re-persists so the store heals.
// ---------------------------------------------------------------------------

class PlanStoreFaults : public ::testing::Test {
  protected:
    ~PlanStoreFaults() override { FaultInjection::instance().disarm_all(); }

    std::size_t count_tmp_files() const
    {
        std::size_t n = 0;
        for (const auto& e : fs::directory_iterator(dir_.path))
            if (e.path().filename().string().find(".tmp.") != std::string::npos)
                ++n;
        return n;
    }

    std::size_t count_entries() const
    {
        std::size_t n = 0;
        for (const auto& e : fs::directory_iterator(dir_.path))
            if (e.path().extension() == ".json")
                ++n;
        return n;
    }

    /// Arms @p site, runs one get_or_build + flush (the faulted phase), then
    /// disarms and asserts: no exception leaked, no temp turd, no published
    /// entry — and a clean retry persists an entry that serves a fresh cache
    /// as a disk hit.
    void expect_writeback_failure_is_absorbed(const char* site)
    {
        const auto& r0 = traced("param_linear").rank0();
        const ReplayConfig cfg = tiny_replay();

        FaultInjection::instance().arm(site, 1, FaultMode::kEvery);
        {
            PlanCache cache(8);
            cache.set_store_dir(dir_.path);
            std::shared_ptr<const ReplayPlan> plan;
            // The caller always gets a correct plan; the disk failure is the
            // store's problem, not the replay's.
            ASSERT_NO_THROW(plan = cache.get_or_build(r0.trace, &r0.prof, cfg)) << site;
            ASSERT_NE(plan, nullptr) << site;
            cache.flush_writebacks(); // fault fires inside this writeback
        }
        FaultInjection::instance().disarm_all();

        EXPECT_EQ(count_tmp_files(), 0u) << site << ": staging turd left behind";
        EXPECT_EQ(count_entries(), 0u) << site << ": partial entry published";

        // Next get rebuilds (nothing usable on disk) and re-persists.
        PlanCache retry(8);
        retry.set_store_dir(dir_.path);
        (void)retry.get_or_build(r0.trace, &r0.prof, cfg);
        retry.flush_writebacks();
        EXPECT_EQ(retry.stats().builds, 1u) << site;
        EXPECT_EQ(retry.stats().writebacks, 1u) << site;
        sole_entry(dir_.path);

        PlanCache healed(8);
        healed.set_store_dir(dir_.path);
        (void)healed.get_or_build(r0.trace, &r0.prof, cfg);
        EXPECT_EQ(healed.stats().disk_hits, 1u) << site;
        EXPECT_EQ(healed.stats().builds, 0u) << site;
    }

    TempStoreDir dir_;
};

TEST_F(PlanStoreFaults, RenameFailureIsAbsorbedAndStoreHeals)
{
    expect_writeback_failure_is_absorbed("fs.rename");
}

TEST_F(PlanStoreFaults, ShortWriteIsAbsorbedAndStoreHeals)
{
    expect_writeback_failure_is_absorbed("fs.write_short");
}

TEST_F(PlanStoreFaults, FsyncFailureIsAbsorbedAndStoreHeals)
{
    expect_writeback_failure_is_absorbed("fs.write_fsync");
}

TEST_F(PlanStoreFaults, WriteOpenFailureIsAbsorbedAndStoreHeals)
{
    expect_writeback_failure_is_absorbed("fs.write_open");
}

TEST_F(PlanStoreFaults, SerializationFailureIsAbsorbedAndStoreHeals)
{
    expect_writeback_failure_is_absorbed("store.writeback");
}

TEST_F(PlanStoreFaults, ReadFailureQuarantinesRebuildsAndRepersists)
{
    const auto& r0 = traced("param_linear").rank0();
    const ReplayConfig cfg = tiny_replay();

    // Seed a valid entry first.
    {
        PlanCache seeder(8);
        seeder.set_store_dir(dir_.path);
        (void)seeder.get_or_build(r0.trace, &r0.prof, cfg);
        seeder.flush_writebacks();
    }
    const std::string entry = sole_entry(dir_.path);

    // A fresh cache whose disk read fails mid-flight: the unreadable entry
    // quarantines, the plan is rebuilt, and the rebuild re-persists.
    FaultInjection::instance().arm("fs.read", 1, FaultMode::kOnce);
    PlanCache cache(8);
    cache.set_store_dir(dir_.path);
    std::shared_ptr<const ReplayPlan> plan;
    ASSERT_NO_THROW(plan = cache.get_or_build(r0.trace, &r0.prof, cfg));
    ASSERT_NE(plan, nullptr);
    cache.flush_writebacks();
    FaultInjection::instance().disarm_all();

    EXPECT_EQ(cache.stats().disk_misses, 1u);
    EXPECT_EQ(cache.stats().builds, 1u);
    EXPECT_TRUE(fs::exists(entry + ".bad")) << "unreadable entry not quarantined";
    EXPECT_EQ(count_tmp_files(), 0u);
    sole_entry(dir_.path); // the rebuild re-persisted a fresh entry

    PlanCache healed(8);
    healed.set_store_dir(dir_.path);
    (void)healed.get_or_build(r0.trace, &r0.prof, cfg);
    EXPECT_EQ(healed.stats().disk_hits, 1u);
    EXPECT_EQ(healed.stats().builds, 0u);
}

TEST_F(PlanStoreFaults, InjectedLoadCorruptionQuarantinesAndRebuilds)
{
    const auto& r0 = traced("param_linear").rank0();
    const ReplayConfig cfg = tiny_replay();
    {
        PlanCache seeder(8);
        seeder.set_store_dir(dir_.path);
        (void)seeder.get_or_build(r0.trace, &r0.prof, cfg);
        seeder.flush_writebacks();
    }
    const std::string entry = sole_entry(dir_.path);

    FaultInjection::instance().arm("store.load", 1, FaultMode::kOnce);
    PlanCache cache(8);
    cache.set_store_dir(dir_.path);
    ASSERT_NO_THROW((void)cache.get_or_build(r0.trace, &r0.prof, cfg));
    cache.flush_writebacks();
    FaultInjection::instance().disarm_all();

    EXPECT_EQ(cache.stats().builds, 1u);
    EXPECT_TRUE(fs::exists(entry + ".bad"));
    EXPECT_EQ(count_tmp_files(), 0u);
}

// ---------------------------------------------------------------------------
// Direct PlanStore API edges.
// ---------------------------------------------------------------------------

TEST(PlanStoreApi, MissingDirectoryIsACleanMiss)
{
    const auto& r0 = traced("param_linear").rank0();
    const ReplayConfig cfg = tiny_replay();
    PlanStore store((fs::temp_directory_path() / "myst_plan_store_never_created").string());
    EXPECT_EQ(store.load(plan_key(r0.trace, &r0.prof, cfg),
                         std::make_shared<et::ExecutionTrace>(r0.trace)),
              nullptr);
}

TEST(PlanStoreApi, EntryPathEncodesTheFullKeyTuple)
{
    const auto& r0 = traced("param_linear").rank0();
    const ReplayConfig cfg = tiny_replay();
    TempStoreDir dir;
    PlanStore store(dir.path);

    const PlanKey with_prof = plan_key(r0.trace, &r0.prof, cfg);
    const PlanKey without_prof = plan_key(r0.trace, nullptr, cfg);
    EXPECT_NE(store.entry_path(with_prof), store.entry_path(without_prof));

    ReplayConfig other = cfg;
    other.platform = "V100";
    EXPECT_NE(store.entry_path(plan_key(r0.trace, &r0.prof, other)),
              store.entry_path(with_prof));
}

} // namespace
} // namespace mystique::core
