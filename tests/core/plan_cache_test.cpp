/// PlanCache / ReplayPlan / ReplayDriver tests: config-fingerprint stability,
/// hit/miss accounting, eviction, cross-config collision safety, concurrent
/// lookup, plan sharing across distributed ranks, and the batched
/// trace-database sweep.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/plan_cache.h"
#include "core/replay_driver.h"
#include "core/replayer.h"
#include "device/platform.h"
#include "framework/session.h"
#include "workloads/harness.h"

namespace mystique::core {
namespace {

wl::RunConfig
tiny_cfg()
{
    wl::RunConfig cfg;
    cfg.mode = fw::ExecMode::kShapeOnly;
    cfg.warmup_iterations = 1;
    cfg.iterations = 2;
    cfg.seed = 7;
    return cfg;
}

wl::WorkloadOptions
tiny_opts()
{
    wl::WorkloadOptions o;
    o.preset = wl::Preset::kTiny;
    return o;
}

ReplayConfig
tiny_replay()
{
    ReplayConfig cfg;
    cfg.mode = fw::ExecMode::kShapeOnly;
    cfg.warmup_iterations = 1;
    cfg.iterations = 2;
    return cfg;
}

/// One traced tiny run per workload, shared across the suite (tracing is the
/// expensive part of these tests).
const wl::RunResult&
traced(const std::string& workload)
{
    static std::map<std::string, wl::RunResult> cache;
    auto it = cache.find(workload);
    if (it == cache.end())
        it = cache.emplace(workload, wl::run_original(workload, tiny_opts(), tiny_cfg()))
                 .first;
    return it->second;
}

TEST(ReplayConfigFingerprint, HarnessKnobsDoNotChangeKey)
{
    const ReplayConfig base = tiny_replay();
    const uint64_t fp = base.fingerprint();

    ReplayConfig c = base;
    c.iterations = 99;
    EXPECT_EQ(c.fingerprint(), fp);
    c = base;
    c.warmup_iterations = 7;
    EXPECT_EQ(c.fingerprint(), fp);
    c = base;
    c.seed = 0xDEAD;
    EXPECT_EQ(c.fingerprint(), fp);
    c = base;
    c.collect_profiler = false;
    EXPECT_EQ(c.fingerprint(), fp);
    c = base;
    c.power_limit_w = 250.0;
    EXPECT_EQ(c.fingerprint(), fp);
}

TEST(ReplayConfigFingerprint, PlanShapingFieldsChangeKey)
{
    const ReplayConfig base = tiny_replay();
    const uint64_t fp = base.fingerprint();

    ReplayConfig c = base;
    c.platform = "V100";
    EXPECT_NE(c.fingerprint(), fp);
    c = base;
    c.mode = fw::ExecMode::kNumeric;
    EXPECT_NE(c.fingerprint(), fp);
    c = base;
    c.filter.subtrace_root = "## forward:z ##";
    EXPECT_NE(c.fingerprint(), fp);
    c = base;
    c.filter.only_category = dev::OpCategory::kComm;
    EXPECT_NE(c.fingerprint(), fp);
    c = base;
    c.embedding.distribution = EmbeddingGenConfig::Distribution::kUniform;
    EXPECT_NE(c.fingerprint(), fp);
    c = base;
    c.embedding.zipf_s = 1.3;
    EXPECT_NE(c.fingerprint(), fp);
    c = base;
    c.custom_ops.register_namespace("fairseq::");
    EXPECT_NE(c.fingerprint(), fp);
    c = base;
    c.custom_ops = CustomOpRegistry::empty();
    EXPECT_NE(c.fingerprint(), fp);
    c = base;
    c.emulate_world_size = 64;
    EXPECT_NE(c.fingerprint(), fp);
}

TEST(ReplayConfigFingerprint, CustomOpOrderDoesNotChangeKey)
{
    ReplayConfig a = tiny_replay();
    a.custom_ops = CustomOpRegistry::empty();
    a.custom_ops.register_op("x::one");
    a.custom_ops.register_op("y::two");
    ReplayConfig b = tiny_replay();
    b.custom_ops = CustomOpRegistry::empty();
    b.custom_ops.register_op("y::two");
    b.custom_ops.register_op("x::one");
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(PlanCache, HitMissAccountingAndPlanIdentity)
{
    const auto& r0 = traced("param_linear").rank0();
    PlanCache cache(8);
    const ReplayConfig cfg = tiny_replay();

    auto first = cache.get_or_build(r0.trace, &r0.prof, cfg);
    ASSERT_NE(first, nullptr);
    auto second = cache.get_or_build(r0.trace, &r0.prof, cfg);
    EXPECT_EQ(first.get(), second.get()); // same shared plan, not a rebuild

    const PlanCacheStats s = cache.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.size, 1u);
}

TEST(PlanCache, EquivalentTraceDifferentObjectHits)
{
    const auto& r0 = traced("param_linear").rank0();
    PlanCache cache(8);
    const ReplayConfig cfg = tiny_replay();

    auto first = cache.get_or_build(r0.trace, &r0.prof, cfg);
    const et::ExecutionTrace copy = r0.trace; // equal fingerprint, distinct object
    ASSERT_EQ(copy.fingerprint(), r0.trace.fingerprint());
    auto second = cache.get_or_build(copy, &r0.prof, cfg);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PlanCache, SameOpMixDifferentShapesGetDistinctEntries)
{
    const auto& r0 = traced("param_linear").rank0();

    // Rebuild the trace with one tensor shape perturbed: the operator-mix
    // fingerprint (names only) is unchanged, but the structural fingerprint
    // — and therefore the plan — must differ.
    et::ExecutionTrace reshaped;
    reshaped.meta() = r0.trace.meta();
    bool perturbed = false;
    for (const auto& n : r0.trace.nodes()) {
        et::Node copy = n;
        if (!perturbed && copy.is_op() && !copy.inputs.empty() &&
            !copy.inputs[0].tensors.empty() && !copy.inputs[0].tensors[0].shape.empty()) {
            copy.inputs[0].tensors[0].shape[0] += 1;
            perturbed = true;
        }
        reshaped.add_node(std::move(copy));
    }
    ASSERT_TRUE(perturbed);
    ASSERT_EQ(reshaped.fingerprint(), r0.trace.fingerprint());
    ASSERT_NE(reshaped.structural_fingerprint(), r0.trace.structural_fingerprint());

    PlanCache cache(8);
    const ReplayConfig cfg = tiny_replay();
    auto plan_a = cache.get_or_build(r0.trace, &r0.prof, cfg);
    auto plan_b = cache.get_or_build(reshaped, &r0.prof, cfg);
    EXPECT_NE(plan_a.get(), plan_b.get());
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(PlanCache, EqualFingerprintDifferentConfigsGetDistinctEntries)
{
    const auto& r0 = traced("param_linear").rank0();
    PlanCache cache(8);

    ReplayConfig a = tiny_replay();
    ReplayConfig b = tiny_replay();
    b.platform = "V100";
    const et::ExecutionTrace copy = r0.trace; // same trace fingerprint as r0.trace
    auto plan_a = cache.get_or_build(r0.trace, &r0.prof, a);
    auto plan_b = cache.get_or_build(copy, &r0.prof, b);
    EXPECT_NE(plan_a.get(), plan_b.get());
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().size, 2u);

    // Profiler presence is part of the key: a plan without stream
    // assignments must not shadow one with them.
    auto plan_noprof = cache.get_or_build(r0.trace, nullptr, a);
    EXPECT_NE(plan_noprof.get(), plan_a.get());
    EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(PlanCache, DifferentProfilerContentGetsDistinctEntries)
{
    const auto& r0 = traced("param_linear").rank0();
    PlanCache cache(8);
    const ReplayConfig cfg = tiny_replay();
    auto plan_a = cache.get_or_build(r0.trace, &r0.prof, cfg);

    // Same trace, but the profiler ran the ops on different streams: stream
    // assignments come from prof *content*, so the plans must be distinct.
    prof::ProfilerTrace altered = r0.prof;
    prof::KernelEvent ev;
    ev.name = "synthetic_kernel";
    ev.stream = 99;
    ev.ts = 0.0;
    ev.dur = 1.0;
    ev.correlation = r0.trace.nodes().front().id;
    altered.add_kernel(ev);
    ASSERT_NE(altered.replay_fingerprint(), r0.prof.replay_fingerprint());

    auto plan_b = cache.get_or_build(r0.trace, &altered, cfg);
    EXPECT_NE(plan_a.get(), plan_b.get());
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(PlanCache, EvictsLeastRecentlyUsedBeyondCapacity)
{
    const auto& r0 = traced("param_linear").rank0();
    PlanCache cache(2);

    ReplayConfig a = tiny_replay();
    ReplayConfig b = tiny_replay();
    b.platform = "V100";
    ReplayConfig c = tiny_replay();
    c.platform = "CPU";

    cache.get_or_build(r0.trace, &r0.prof, a);
    cache.get_or_build(r0.trace, &r0.prof, b);
    cache.get_or_build(r0.trace, &r0.prof, a); // refresh a; b is now LRU
    cache.get_or_build(r0.trace, &r0.prof, c); // evicts b

    PlanCacheStats s = cache.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_LE(s.size, 2u);

    // a survived (hit); b was evicted (miss → rebuild).
    cache.get_or_build(r0.trace, &r0.prof, a);
    EXPECT_EQ(cache.stats().hits, 2u);
    cache.get_or_build(r0.trace, &r0.prof, b);
    EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(PlanCache, ConcurrentLookupBuildsExactlyOnce)
{
    const auto& r0 = traced("param_linear").rank0();
    PlanCache cache(8);
    const ReplayConfig cfg = tiny_replay();

    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const ReplayPlan>> plans(kThreads);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back(
            [&, i] { plans[i] = cache.get_or_build(r0.trace, &r0.prof, cfg); });
    }
    for (auto& t : threads)
        t.join();

    for (int i = 0; i < kThreads; ++i) {
        ASSERT_NE(plans[i], nullptr);
        EXPECT_EQ(plans[i].get(), plans[0].get());
    }
    const PlanCacheStats s = cache.stats();
    EXPECT_EQ(s.misses, 1u); // exactly one build
    EXPECT_EQ(s.hits, static_cast<uint64_t>(kThreads - 1));
}

TEST(PlanCache, SharedPlanReplaysIdenticallyToPrivatePlan)
{
    const auto& r0 = traced("param_linear").rank0();
    const ReplayConfig cfg = tiny_replay();

    Replayer direct(r0.trace, &r0.prof, cfg);
    const ReplayResult a = direct.run();

    PlanCache cache(4);
    Replayer cached(cache.get_or_build(r0.trace, &r0.prof, cfg), cfg);
    const ReplayResult b = cached.run();

    // The virtual-time simulation is deterministic under equal seeds, so a
    // cache-served plan must reproduce the private plan bit-for-bit.
    EXPECT_DOUBLE_EQ(a.mean_iter_us, b.mean_iter_us);
    EXPECT_EQ(a.coverage.selected_ops, b.coverage.selected_ops);
    EXPECT_EQ(a.prof.kernels().size(), b.prof.kernels().size());
}

TEST(RunDistributed, EquivalentRanksShareOnePlan)
{
    wl::RunConfig cfg = tiny_cfg();
    cfg.world_size = 2;
    const wl::RunResult orig = wl::run_original("param_linear", tiny_opts(), cfg);
    std::vector<const et::ExecutionTrace*> traces;
    std::vector<const prof::ProfilerTrace*> profs;
    for (const auto& r : orig.ranks) {
        traces.push_back(&r.trace);
        profs.push_back(&r.prof);
    }
    // Symmetric data-parallel ranks record structurally identical traces
    // (rank identity is excluded from the structural hash) — the sharing
    // precondition.
    ASSERT_EQ(traces[0]->fingerprint(), traces[1]->fingerprint());
    ASSERT_EQ(traces[0]->structural_fingerprint(), traces[1]->structural_fingerprint());

    PlanCache& cache = PlanCache::instance();
    cache.clear();
    const auto reps = Replayer::run_distributed(traces, profs, tiny_replay());
    ASSERT_EQ(reps.size(), 2u);
    const PlanCacheStats s = cache.stats();
    EXPECT_EQ(s.misses, 1u); // rank 1 consumed rank 0's plan
    EXPECT_EQ(s.hits, 1u);
    EXPECT_GT(reps[0].mean_iter_us, 0.0);
    EXPECT_NEAR(reps[0].mean_iter_us, reps[1].mean_iter_us,
                reps[0].mean_iter_us * 0.05);
}

TEST(RunDistributed, PooledRanksBitIdenticalToAdHocThreadBaseline)
{
    wl::RunConfig cfg = tiny_cfg();
    cfg.world_size = 2;
    const wl::RunResult orig = wl::run_original("param_linear", tiny_opts(), cfg);
    std::vector<const et::ExecutionTrace*> traces;
    std::vector<const prof::ProfilerTrace*> profs;
    for (const auto& r : orig.ranks) {
        traces.push_back(&r.trace);
        profs.push_back(&r.prof);
    }
    const int world = static_cast<int>(traces.size());
    const ReplayConfig rcfg = tiny_replay();

    // Baseline: the pre-pool implementation — one ad-hoc std::thread and a
    // freshly constructed, cold Session per rank per call.
    auto fabric = std::make_shared<comm::CommFabric>(world);
    std::vector<ReplayResult> baseline(static_cast<std::size_t>(world));
    std::vector<std::thread> threads;
    for (int rank = 0; rank < world; ++rank) {
        threads.emplace_back([&, rank] {
            const auto plan = PlanCache::instance().get_or_build(
                *traces[static_cast<std::size_t>(rank)],
                profs[static_cast<std::size_t>(rank)], rcfg);
            fw::SessionOptions opts;
            opts.platform = dev::platform(rcfg.platform);
            opts.mode = rcfg.mode;
            opts.seed = rcfg.seed;
            opts.rank = rank;
            opts.world_size = world;
            opts.power_limit_w = rcfg.power_limit_w;
            opts.dispatch = fw::DispatchProfile::replay();
            fw::Session session(opts);
            Replayer replayer(plan, rcfg);
            baseline[static_cast<std::size_t>(rank)] = replayer.run_with(session, fabric);
        });
    }
    for (auto& t : threads)
        t.join();

    // Pooled path, twice: the first call may build pool threads and sessions,
    // the second reuses both (sessions rewound via reset_for_replay, arenas
    // kept) — every call must be bit-identical to the ad-hoc baseline.
    for (int call = 0; call < 2; ++call) {
        const auto pooled = Replayer::run_distributed(traces, profs, rcfg);
        ASSERT_EQ(pooled.size(), baseline.size());
        for (std::size_t rank = 0; rank < pooled.size(); ++rank) {
            const ReplayResult& p = pooled[rank];
            const ReplayResult& b = baseline[rank];
            EXPECT_EQ(p.mean_iter_us, b.mean_iter_us) << "call " << call << " rank "
                                                      << rank;
            ASSERT_EQ(p.iter_us.size(), b.iter_us.size());
            for (std::size_t i = 0; i < p.iter_us.size(); ++i)
                EXPECT_EQ(p.iter_us[i], b.iter_us[i])
                    << "call " << call << " rank " << rank << " iter " << i;
            EXPECT_EQ(p.prof.kernels().size(), b.prof.kernels().size());
            EXPECT_EQ(p.coverage.selected_ops, b.coverage.selected_ops);
        }
    }
}

TEST(ReplayDriver, SweepsDatabaseWithWeightedGroups)
{
    const auto& pl = traced("param_linear").rank0();
    const auto& rm = traced("rm").rank0();

    et::TraceDatabase db;
    db.add(pl.trace);
    db.add(pl.trace);
    db.add(pl.trace);
    db.add(rm.trace);
    std::vector<const prof::ProfilerTrace*> profs{&pl.prof, &pl.prof, &pl.prof,
                                                  &rm.prof};

    PlanCache cache(8);
    ReplayDriver driver(tiny_replay(), &cache);
    const DatabaseReplayResult sweep = driver.replay_groups(db, SIZE_MAX, &profs);

    ASSERT_EQ(sweep.groups.size(), 2u);
    // Groups come back weight-descending: param_linear (3/4), rm (1/4).
    EXPECT_DOUBLE_EQ(sweep.groups[0].group.population_weight, 0.75);
    EXPECT_DOUBLE_EQ(sweep.groups[1].group.population_weight, 0.25);
    EXPECT_DOUBLE_EQ(sweep.population_covered, 1.0);

    const double expect_weighted = 0.75 * sweep.groups[0].result.mean_iter_us +
                                   0.25 * sweep.groups[1].result.mean_iter_us;
    EXPECT_DOUBLE_EQ(sweep.weighted_mean_iter_us, expect_weighted);
    EXPECT_EQ(sweep.cache.misses, 2u); // one plan per group, members shared

    // A second sweep of the same database is served entirely from cache.
    const DatabaseReplayResult again = driver.replay_groups(db, SIZE_MAX, &profs);
    EXPECT_EQ(again.cache.misses, 2u);
    EXPECT_EQ(again.cache.hits, 2u);
    EXPECT_DOUBLE_EQ(again.weighted_mean_iter_us, sweep.weighted_mean_iter_us);

    // top_k truncation replays only the most-populous group.
    const DatabaseReplayResult top1 = driver.replay_groups(db, 1, &profs);
    ASSERT_EQ(top1.groups.size(), 1u);
    EXPECT_DOUBLE_EQ(top1.population_covered, 0.75);
    EXPECT_DOUBLE_EQ(top1.weighted_mean_iter_us, top1.groups[0].result.mean_iter_us);
}

} // namespace
} // namespace mystique::core
