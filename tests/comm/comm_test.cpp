/// Tests for the network cost model and the rendezvous process groups.

#include <gtest/gtest.h>

#include <thread>

#include "comm/network_model.h"
#include "comm/process_group.h"
#include "common/error.h"

namespace mystique::comm {
namespace {

TEST(NetworkModel, CostIncreasesWithBytes)
{
    NetworkModel m;
    const double t1 = m.collective_us(CollectiveKind::kAllReduce, 1e6, 8, false);
    const double t2 = m.collective_us(CollectiveKind::kAllReduce, 2e6, 8, false);
    EXPECT_GT(t2, t1);
}

TEST(NetworkModel, InterNodeSlower)
{
    NetworkModel m;
    const double intra = m.collective_us(CollectiveKind::kAllReduce, 1e8, 8, false);
    const double inter = m.collective_us(CollectiveKind::kAllReduce, 1e8, 8, true);
    EXPECT_GT(inter, intra * 2.0);
}

TEST(NetworkModel, SingleRankIsCheap)
{
    NetworkModel m;
    EXPECT_LT(m.collective_us(CollectiveKind::kAllReduce, 1e9, 1, false), 20.0);
}

TEST(NetworkModel, BarrierIsLatencyOnly)
{
    NetworkModel m;
    const double b8 = m.collective_us(CollectiveKind::kBarrier, 0.0, 8, true);
    EXPECT_LT(b8, 100.0);
    EXPECT_GT(m.collective_us(CollectiveKind::kBarrier, 0.0, 64, true), b8);
}

TEST(NetworkModel, AllReduceCostsTwiceAllGather)
{
    NetworkModel m;
    const double ar = m.collective_us(CollectiveKind::kAllReduce, 1e8, 16, false);
    const double ag = m.collective_us(CollectiveKind::kAllGather, 1e8, 16, false);
    const double alpha = m.collective_us(CollectiveKind::kAllGather, 0.0, 16, false);
    EXPECT_NEAR(ar - alpha, 2.0 * (ag - alpha), (ar - alpha) * 0.01);
}

TEST(NetworkModel, GroupSpansNodes)
{
    NetworkModel m; // 8 GPUs/node
    EXPECT_FALSE(m.group_spans_nodes({0, 1, 7}));
    EXPECT_TRUE(m.group_spans_nodes({0, 8}));
    EXPECT_TRUE(m.group_spans_nodes({7, 8}));
    EXPECT_FALSE(m.group_spans_nodes({}));
}

class CollectiveKindTest : public ::testing::TestWithParam<CollectiveKind> {};

TEST_P(CollectiveKindTest, MonotoneInWorldSize)
{
    // Cost never decreases as the group grows (payload per rank fixed).
    NetworkModel m;
    double prev = 0.0;
    for (int n : {2, 4, 8}) {
        const double t = m.collective_us(GetParam(), 1e7, n, false);
        EXPECT_GE(t, prev * 0.999);
        prev = t;
    }
}

INSTANTIATE_TEST_SUITE_P(Kinds, CollectiveKindTest,
                         ::testing::Values(CollectiveKind::kAllReduce,
                                           CollectiveKind::kAllGather,
                                           CollectiveKind::kReduceScatter,
                                           CollectiveKind::kAllToAll,
                                           CollectiveKind::kBarrier));

TEST(CommFabric, WorldGroupOnConstruction)
{
    CommFabric fabric(4);
    EXPECT_EQ(fabric.group_ranks(fabric.world_group()), (std::vector<int>{0, 1, 2, 3}));
}

TEST(CommFabric, NewGroupIdempotent)
{
    CommFabric fabric(4);
    const int64_t a = fabric.new_group({1, 2});
    const int64_t b = fabric.new_group({2, 1});
    EXPECT_EQ(a, b);
    EXPECT_NE(a, fabric.world_group());
    EXPECT_THROW(fabric.group_ranks(999), ConfigError);
}

TEST(CommFabric, RendezvousUsesMaxArrival)
{
    auto fabric = std::make_shared<CommFabric>(2);
    CollectiveResult r0, r1;
    std::thread t0([&] {
        ProcessGroup pg(fabric, 0, 0);
        r0 = pg.collective(CollectiveKind::kAllReduce, 1e6, /*arrival=*/100.0);
    });
    std::thread t1([&] {
        ProcessGroup pg(fabric, 0, 1);
        r1 = pg.collective(CollectiveKind::kAllReduce, 1e6, /*arrival=*/500.0);
    });
    t0.join();
    t1.join();
    // Both ranks observe the same completion, starting at the last arrival.
    EXPECT_DOUBLE_EQ(r0.end_us, r1.end_us);
    EXPECT_DOUBLE_EQ(r0.start_us, 500.0);
    EXPECT_GT(r0.duration_us, 0.0);
}

TEST(CommFabric, SequenceKeepsCollectivesSeparate)
{
    auto fabric = std::make_shared<CommFabric>(2);
    std::vector<CollectiveResult> res0, res1;
    auto run = [&](int rank, std::vector<CollectiveResult>& out) {
        ProcessGroup pg(fabric, 0, rank);
        out.push_back(pg.collective(CollectiveKind::kAllReduce, 1e6, 10.0));
        out.push_back(pg.collective(CollectiveKind::kAllReduce, 2e6, out[0].end_us));
    };
    std::thread t0(run, 0, std::ref(res0));
    std::thread t1(run, 1, std::ref(res1));
    t0.join();
    t1.join();
    EXPECT_DOUBLE_EQ(res0[0].end_us, res1[0].end_us);
    EXPECT_DOUBLE_EQ(res0[1].end_us, res1[1].end_us);
    EXPECT_GT(res0[1].end_us, res0[0].end_us);
}

TEST(CommFabric, MismatchDetectedAsDeadlockHazard)
{
    // Ranks disagreeing on the collective at one sequence number is the §4.1
    // deadlock hazard; both must see the error.
    auto fabric = std::make_shared<CommFabric>(2);
    int errors = 0;
    std::mutex mu;
    auto run = [&](int rank, CollectiveKind kind) {
        try {
            ProcessGroup pg(fabric, 0, rank);
            pg.collective(kind, 1e6, 0.0);
        } catch (const ReplayError&) {
            std::lock_guard<std::mutex> lock(mu);
            ++errors;
        }
    };
    std::thread t0(run, 0, CollectiveKind::kAllReduce);
    std::thread t1(run, 1, CollectiveKind::kAllToAll);
    t0.join();
    t1.join();
    EXPECT_EQ(errors, 2);
}

TEST(ProcessGroup, SubgroupRendezvousOnlyMembers)
{
    auto fabric = std::make_shared<CommFabric>(4);
    const int64_t sub = fabric->new_group({0, 1});
    CollectiveResult r0, r1;
    std::thread t0([&] {
        ProcessGroup pg(fabric, sub, 0);
        r0 = pg.collective(CollectiveKind::kBroadcast, 1e3, 1.0);
    });
    std::thread t1([&] {
        ProcessGroup pg(fabric, sub, 1);
        r1 = pg.collective(CollectiveKind::kBroadcast, 1e3, 2.0);
    });
    t0.join();
    t1.join();
    EXPECT_DOUBLE_EQ(r0.end_us, r1.end_us); // completed without ranks 2/3
    EXPECT_THROW(ProcessGroup(fabric, sub, 3), InternalError);
}

TEST(ProcessGroup, EmulatedWorldSizeInflatesCost)
{
    // Scale-down emulation (§7.3): 2 actual ranks, costs computed for 64.
    auto fabric = std::make_shared<CommFabric>(2);
    CollectiveResult small, emulated;
    auto run = [&](int rank, int emu, CollectiveResult& out) {
        ProcessGroup pg(fabric, 0, rank);
        if (emu > 0)
            pg.set_emulated_world_size(emu);
        out = pg.collective(CollectiveKind::kAllReduce, 1e7, 0.0);
    };
    {
        std::thread t0(run, 0, 0, std::ref(small));
        std::thread t1(run, 1, 0, std::ref(small));
        t0.join();
        t1.join();
    }
    {
        std::thread t0(run, 0, 64, std::ref(emulated));
        std::thread t1(run, 1, 64, std::ref(emulated));
        t0.join();
        t1.join();
    }
    EXPECT_GT(emulated.duration_us, small.duration_us);
}

} // namespace
} // namespace mystique::comm
