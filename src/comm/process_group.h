#pragma once

/// @file
/// Simulated c10d: a shared fabric with rendezvous semantics, and per-rank
/// process-group handles.
///
/// Each simulated rank runs on its own OS thread with a private virtual
/// clock.  A collective rendezvouses: every member posts its arrival time
/// (host launch time, input readiness and its comm-stream tail, max-combined
/// by the caller); the last arrival computes
///
///     end = max(arrivals) + NetworkModel::collective_us(...)
///
/// and all members place a kernel of that duration ending at `end` on their
/// comm streams.  Ranks issuing mismatched collectives at the same sequence
/// number are detected and reported — the deadlock hazard §4.1 warns about
/// when ETs are captured from different iterations.

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "comm/network_model.h"
#include "sim/timeline.h"

namespace mystique::comm {

/// Result of one collective for one rank.
struct CollectiveResult {
    sim::TimeUs start_us = 0.0; ///< end - duration
    sim::TimeUs end_us = 0.0;
    double duration_us = 0.0;
};

/// Shared state for a communicator world; one instance per simulated job,
/// shared by all rank threads.  Thread-safe.
class CommFabric {
  public:
    /// @param world_size  number of ranks in the job
    /// @param model       collective cost model
    explicit CommFabric(int world_size, NetworkModel model = NetworkModel{});

    int world_size() const { return world_size_; }
    const NetworkModel& model() const { return model_; }

    /// Registers a process group over @p ranks; returns its group ID.
    /// Idempotent for identical rank sets: returns the existing ID.
    int64_t new_group(std::vector<int> ranks);

    /// Ranks of a group; throws ConfigError for unknown IDs.
    const std::vector<int>& group_ranks(int64_t group_id) const;

    /// Group containing all ranks (created on construction, ID 0).
    int64_t world_group() const { return 0; }

    /// Blocks the calling rank thread until all group members arrive at the
    /// same sequence number, then returns the shared timing.
    ///
    /// @param signature  op identity (kind + bytes); mismatches across ranks
    ///                   at one sequence number throw ReplayError everywhere.
    /// @param fixed_duration_us  when >= 0, overrides the modeled duration
    ///                   (scale-down emulation injects delays this way)
    CollectiveResult rendezvous(int64_t group_id, int rank, CollectiveKind kind,
                                double bytes, sim::TimeUs arrival_us,
                                const std::string& signature,
                                double fixed_duration_us = -1.0);

  private:
    struct Slot {
        int arrived = 0;
        int departed = 0;
        sim::TimeUs max_arrival = 0.0;
        std::string signature;
        bool mismatch = false;
        CollectiveResult result;
        bool complete = false;
    };

    int world_size_;
    NetworkModel model_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::map<int64_t, std::vector<int>> groups_;
    int64_t next_group_id_ = 0;
    /// Rendezvous slots keyed by (group, per-group sequence number).
    std::map<std::pair<int64_t, int64_t>, Slot> slots_;
    std::map<int64_t, std::map<int, int64_t>> next_seq_; // group → rank → seq
};

/// Per-rank handle over a fabric group (the c10d ProcessGroup analogue).
class ProcessGroup {
  public:
    ProcessGroup(std::shared_ptr<CommFabric> fabric, int64_t group_id, int rank);

    int rank() const { return rank_; }
    int size() const;
    int64_t group_id() const { return group_id_; }
    const std::vector<int>& ranks() const;
    CommFabric& fabric() { return *fabric_; }

    /// Executes one collective; blocks (on the OS thread, not in virtual
    /// time) until all members arrive.
    CollectiveResult collective(CollectiveKind kind, double bytes, sim::TimeUs arrival_us);

    /// When set, collective durations are computed by the cost model for
    /// @p world_size ranks instead of rendezvousing at the modeled size —
    /// the paper's scaled-down performance emulation (§7.3).
    void set_emulated_world_size(int world_size) { emulated_world_size_ = world_size; }
    int emulated_world_size() const { return emulated_world_size_; }

  private:
    std::shared_ptr<CommFabric> fabric_;
    int64_t group_id_;
    int rank_;
    int emulated_world_size_ = 0; // 0 = off
};

} // namespace mystique::comm
