#include "comm/process_group.h"

#include <algorithm>

#include "common/error.h"
#include "common/string_util.h"

namespace mystique::comm {

CommFabric::CommFabric(int world_size, NetworkModel model)
    : world_size_(world_size), model_(model)
{
    MYST_CHECK_MSG(world_size >= 1, "world size must be >= 1");
    std::vector<int> all(static_cast<std::size_t>(world_size));
    for (int i = 0; i < world_size; ++i)
        all[static_cast<std::size_t>(i)] = i;
    groups_[next_group_id_++] = std::move(all);
}

int64_t
CommFabric::new_group(std::vector<int> ranks)
{
    MYST_CHECK(!ranks.empty());
    std::sort(ranks.begin(), ranks.end());
    for (int r : ranks)
        MYST_CHECK_MSG(r >= 0 && r < world_size_, "rank " << r << " out of range");
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, existing] : groups_) {
        if (existing == ranks)
            return id;
    }
    const int64_t id = next_group_id_++;
    groups_[id] = std::move(ranks);
    return id;
}

const std::vector<int>&
CommFabric::group_ranks(int64_t group_id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = groups_.find(group_id);
    if (it == groups_.end())
        MYST_THROW(ConfigError, "unknown process group " << group_id);
    return it->second;
}

CollectiveResult
CommFabric::rendezvous(int64_t group_id, int rank, CollectiveKind kind, double bytes,
                       sim::TimeUs arrival_us, const std::string& signature,
                       double fixed_duration_us)
{
    std::unique_lock<std::mutex> lock(mu_);
    auto git = groups_.find(group_id);
    if (git == groups_.end())
        MYST_THROW(ConfigError, "unknown process group " << group_id);
    const auto& members = git->second;
    MYST_CHECK_MSG(std::find(members.begin(), members.end(), rank) != members.end(),
                   "rank " << rank << " not in group " << group_id);
    const int group_size = static_cast<int>(members.size());

    const int64_t seq = next_seq_[group_id][rank]++;
    const auto key = std::make_pair(group_id, seq);
    Slot& slot = slots_[key];

    if (slot.arrived == 0) {
        slot.signature = signature;
    } else if (slot.signature != signature) {
        slot.mismatch = true;
    }
    ++slot.arrived;
    slot.max_arrival = std::max(slot.max_arrival, arrival_us);

    if (slot.arrived == group_size) {
        // Last arrival computes the shared result.
        if (!slot.mismatch) {
            double duration;
            if (fixed_duration_us >= 0.0) {
                duration = fixed_duration_us;
            } else {
                const bool spans = model_.group_spans_nodes(members);
                duration = model_.collective_us(kind, bytes, group_size, spans);
            }
            slot.result.end_us = slot.max_arrival + duration;
            slot.result.start_us = slot.max_arrival;
            slot.result.duration_us = duration;
        }
        slot.complete = true;
        cv_.notify_all();
    } else {
        cv_.wait(lock, [&] { return slot.complete; });
    }

    const bool mismatch = slot.mismatch;
    const CollectiveResult result = slot.result;
    if (++slot.departed == group_size)
        slots_.erase(key);

    if (mismatch)
        MYST_THROW(ReplayError,
                   "collective mismatch in group " << group_id << " at seq " << seq
                   << ": ranks disagree on the operation (would deadlock; traces must "
                      "be captured from the same iteration, see paper §4.1)");
    return result;
}

ProcessGroup::ProcessGroup(std::shared_ptr<CommFabric> fabric, int64_t group_id, int rank)
    : fabric_(std::move(fabric)), group_id_(group_id), rank_(rank)
{
    MYST_CHECK(fabric_ != nullptr);
    const auto& ranks = fabric_->group_ranks(group_id_);
    MYST_CHECK_MSG(std::find(ranks.begin(), ranks.end(), rank_) != ranks.end(),
                   "rank " << rank_ << " not a member of group " << group_id_);
}

int
ProcessGroup::size() const
{
    return static_cast<int>(fabric_->group_ranks(group_id_).size());
}

const std::vector<int>&
ProcessGroup::ranks() const
{
    return fabric_->group_ranks(group_id_);
}

CollectiveResult
ProcessGroup::collective(CollectiveKind kind, double bytes, sim::TimeUs arrival_us)
{
    const std::string signature =
        strprintf("%s:%.0f", to_string(kind), bytes);
    double fixed = -1.0;
    if (emulated_world_size_ > 0) {
        // Scale-down emulation: cost as-if the group had the emulated size.
        // Groups are assumed to scale proportionally (data-parallel replicas).
        const bool spans =
            emulated_world_size_ > fabric_->model().topology().gpus_per_node;
        fixed = fabric_->model().collective_us(kind, bytes, emulated_world_size_, spans);
    }
    return fabric_->rendezvous(group_id_, rank_, kind, bytes, arrival_us, signature, fixed);
}

} // namespace mystique::comm
