#include "comm/network_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mystique::comm {

const char*
to_string(CollectiveKind k)
{
    switch (k) {
      case CollectiveKind::kAllReduce: return "all_reduce";
      case CollectiveKind::kAllGather: return "all_gather";
      case CollectiveKind::kReduceScatter: return "reduce_scatter";
      case CollectiveKind::kAllToAll: return "all_to_all";
      case CollectiveKind::kBroadcast: return "broadcast";
      case CollectiveKind::kSend: return "send";
      case CollectiveKind::kRecv: return "recv";
      case CollectiveKind::kBarrier: return "barrier";
    }
    return "?";
}

bool
NetworkModel::group_spans_nodes(const std::vector<int>& ranks) const
{
    if (ranks.empty())
        return false;
    const int first_node = ranks.front() / topo_.gpus_per_node;
    return std::any_of(ranks.begin(), ranks.end(), [&](int r) {
        return r / topo_.gpus_per_node != first_node;
    });
}

double
NetworkModel::collective_us(CollectiveKind kind, double bytes, int nranks,
                            bool spans_nodes) const
{
    MYST_CHECK_MSG(nranks >= 1, "collective over " << nranks << " ranks");
    MYST_CHECK_MSG(bytes >= 0.0, "negative payload");
    const double steps = nranks > 1 ? std::log2(static_cast<double>(nranks)) : 0.0;
    const double alpha = topo_.base_latency_us + topo_.per_step_latency_us * steps;
    if (nranks == 1)
        return topo_.base_latency_us * 0.5;

    const double bw_gbps =
        spans_nodes ? topo_.inter_node_bw_gbps : topo_.intra_node_bw_gbps;
    const double bytes_per_us = bw_gbps * 1e3; // GB/s → bytes/us
    const double n = static_cast<double>(nranks);

    double transfer_us = 0.0;
    switch (kind) {
      case CollectiveKind::kAllReduce:
        // Ring all-reduce: 2(n-1)/n of the payload crosses each link.
        transfer_us = 2.0 * (n - 1.0) / n * bytes / bytes_per_us;
        break;
      case CollectiveKind::kAllGather:
      case CollectiveKind::kReduceScatter:
        transfer_us = (n - 1.0) / n * bytes / bytes_per_us;
        break;
      case CollectiveKind::kAllToAll:
        // Every rank sends (n-1)/n of its buffer to peers.
        transfer_us = (n - 1.0) / n * bytes / bytes_per_us;
        break;
      case CollectiveKind::kBroadcast:
        transfer_us = bytes / bytes_per_us;
        break;
      case CollectiveKind::kSend:
      case CollectiveKind::kRecv:
        transfer_us = bytes / bytes_per_us;
        break;
      case CollectiveKind::kBarrier:
        transfer_us = 0.0;
        break;
    }
    return alpha + transfer_us;
}

} // namespace mystique::comm
