#pragma once

/// @file
/// Alpha–beta collective cost model over a hierarchical topology.
///
/// This stands in for NCCL on the paper's testbed: NVLink within a node
/// (8 GPUs), a 200 Gbps NIC per GPU across nodes (§6.6).  Costs follow
/// standard ring/tree formulas; the bottleneck bandwidth is NVLink for
/// intra-node groups and the NIC for groups that span nodes.
///
/// The same model powers the scale-down emulator (§7.3): when replaying an
/// N-rank trace on M < N ranks, collective durations are *computed for N
/// ranks* and injected as fixed delays.

#include <cstdint>
#include <string>
#include <vector>

namespace mystique::comm {

/// Collective operation families.
enum class CollectiveKind {
    kAllReduce,
    kAllGather,
    kReduceScatter,
    kAllToAll,
    kBroadcast,
    kSend,
    kRecv,
    kBarrier,
};

const char* to_string(CollectiveKind k);

/// Cluster interconnect description.
struct Topology {
    int gpus_per_node = 8;
    /// Effective NVLink bandwidth per GPU within a node, GB/s.
    double intra_node_bw_gbps = 240.0;
    /// Effective NIC bandwidth per GPU across nodes, GB/s (200 Gbps ≈ 25).
    double inter_node_bw_gbps = 22.0;
    /// Base software/launch latency per collective, us.
    double base_latency_us = 12.0;
    /// Additional latency per log2(world) step, us.
    double per_step_latency_us = 3.0;
};

/// Analytic collective cost model.
class NetworkModel {
  public:
    explicit NetworkModel(Topology topo = {}) : topo_(topo) {}

    const Topology& topology() const { return topo_; }

    /// Duration of one collective in microseconds.
    ///
    /// @param kind      collective family
    /// @param bytes     payload per rank (send buffer size)
    /// @param nranks    number of participating ranks
    /// @param spans_nodes  true when the group crosses node boundaries;
    ///                  derive via group_spans_nodes() when rank IDs are known
    double collective_us(CollectiveKind kind, double bytes, int nranks,
                         bool spans_nodes) const;

    /// True when the given global ranks do not all share one node.
    bool group_spans_nodes(const std::vector<int>& ranks) const;

  private:
    Topology topo_;
};

} // namespace mystique::comm
