#pragma once

/// @file
/// The execution trace container and the observer that records it.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "et/node.h"

namespace mystique::et {

/// Run-level metadata stored in the trace header.
struct TraceMeta {
    std::string workload;
    std::string platform;
    int rank = 0;
    int world_size = 1;
    int iteration = 0;
    uint64_t seed = 0;
    /// Process-group definitions: ET pg id → member ranks.  Needed so the
    /// replayer can "create new process groups and map them to the original
    /// groups" (§4.3.2).
    std::map<int64_t, std::vector<int>> process_groups;

    Json to_json() const;
    static TraceMeta from_json(const Json& j);
};

/// A complete per-process execution trace: nodes in execution (ID) order.
class ExecutionTrace {
  public:
    ExecutionTrace() = default;
    ExecutionTrace(const ExecutionTrace& other);
    ExecutionTrace(ExecutionTrace&& other) noexcept;
    ExecutionTrace& operator=(const ExecutionTrace& other);
    ExecutionTrace& operator=(ExecutionTrace&& other) noexcept;

    TraceMeta& meta() { return meta_; }
    const TraceMeta& meta() const { return meta_; }

    /// Appends a node; IDs must be strictly increasing.
    void add_node(Node node);

    const std::vector<Node>& nodes() const { return nodes_; }
    bool empty() const { return nodes_.empty(); }
    std::size_t size() const { return nodes_.size(); }

    /// Node lookup by ID; nullptr when absent.
    const Node* find(int64_t id) const;

    /// IDs of the direct children of @p id, in execution order.
    std::vector<int64_t> children(int64_t id) const;

    /// First node whose name equals @p name (wrapper lookup for subtrace
    /// replay, §7.1); nullptr when absent.
    const Node* find_by_name(const std::string& name) const;

    /// Operator count by category (wrappers excluded).
    std::unordered_map<dev::OpCategory, int64_t> count_by_category() const;

    /// Serialization.  Round-tripping through JSON (in memory or on disk)
    /// preserves both fingerprints below bit-exactly — benchmark-package
    /// provenance depends on it: core::verify_package re-hashes the packaged
    /// execution_trace.json and compares against the manifest, so any field
    /// the fingerprints cover must survive save → load unchanged (doubles
    /// are emitted in shortest round-trip-safe form by common/json.h).
    /// Enforced by tests/et/trace_test.cpp.
    Json to_json() const;
    static ExecutionTrace from_json(const Json& j);
    void save(const std::string& path) const;
    static ExecutionTrace load(const std::string& path);

    /// Stable fingerprint of the operator mix (name → count histogram hash);
    /// used by the trace-database analyzer to group equivalent traces (§8.2).
    /// Deliberately coarse: it ignores shapes and ordering, because the
    /// paper's grouping policy replays one representative per operator-mix
    /// group regardless of member-to-member shape drift.
    /// Computed lazily and cached — repeated calls are O(1).  The cache
    /// follows the OpIdCache idempotent-atomic pattern, so concurrent
    /// first-calls on a shared const trace are race-free.
    uint64_t fingerprint() const;

    /// Stable *structural* fingerprint: node order, names, schemas, argument
    /// values, tensor shapes/dtypes/IDs, thread and process-group
    /// assignments, plus the replay-relevant metadata (world size, process
    /// groups).  Two traces with equal structural fingerprints compile to
    /// interchangeable replay plans, so this — not the coarse operator-mix
    /// hash — is the plan cache's trace key.  Rank-identity artifacts are
    /// excluded — meta().rank, device strings ("cuda:0" vs "cuda:1"),
    /// storage-id/offset allocator state — because symmetric SPMD ranks
    /// differ only in those and must share a plan; everything the plan
    /// builder or executor actually reads is hashed.  Lazily computed and
    /// cached like fingerprint().
    uint64_t structural_fingerprint() const;

  private:
    TraceMeta meta_;
    std::vector<Node> nodes_; ///< strictly increasing IDs; find() binary-searches

    mutable std::atomic<bool> fp_valid_{false};
    mutable std::atomic<uint64_t> fp_{0};
    mutable std::atomic<bool> sfp_valid_{false};
    mutable std::atomic<uint64_t> sfp_{0};
};

/// Records execution into an ExecutionTrace.
///
/// API mirrors the paper's ExecutionGraphObserver usage (§4.1):
///
///   et::ExecutionTraceObserver obs;
///   obs.register_callback("/tmp/execution_trace.json");
///   ...
///   obs.start();   // at iteration N
///   obs.stop();    // at iteration N+1  → trace written to the path
///
/// The framework Session invokes record() for every completed node while the
/// observer is active.
class ExecutionTraceObserver {
  public:
    /// Sets the output path written at stop(); optional — the in-memory
    /// trace is always available via trace().
    void register_callback(std::string output_path);

    /// Begins recording (clears any previous trace).
    void start();

    /// Ends recording; writes the JSON file when a path is registered.
    void stop();

    bool active() const { return active_; }

    /// Called by the Session for each completed node while active.  Nodes
    /// arrive in *completion* order (children before parents); stop() sorts
    /// them back into execution (ID) order.
    void record(Node node);

    /// Sets header metadata (Session fills this at start()).
    void set_meta(TraceMeta meta);

    /// The recorded trace (valid after stop()).
    const ExecutionTrace& trace() const { return trace_; }
    ExecutionTrace take_trace() { return std::move(trace_); }

  private:
    bool active_ = false;
    std::optional<std::string> output_path_;
    TraceMeta pending_meta_;
    std::vector<Node> pending_;
    ExecutionTrace trace_;
};

} // namespace mystique::et
