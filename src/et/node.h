#pragma once

/// @file
/// Execution-trace node schema.
///
/// Mirrors the paper's Table 2: each node records an operator invocation with
/// its schema, input/output argument metadata (actual values for non-tensor
/// arguments; shape/dtype/ID for tensors), and its parent — the calling
/// operator.  Execution order is implied by node IDs, which are assigned in
/// increasing order of execution (§3.1).

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/op_id.h"
#include "device/kernel.h"

namespace mystique::et {

/// The six-element unique tensor ID tuple from §3.1, plus shape/dtype.
///
/// (tensor_id, storage_id, offset, numel, itemsize, device) distinguishes
/// every tensor and lets the replayer track data dependencies (§4.4).
struct TensorMeta {
    int64_t tensor_id = -1;
    int64_t storage_id = -1;
    int64_t offset = 0;
    int64_t numel = 0;
    int64_t itemsize = 4;
    std::string device = "cuda:0";

    std::vector<int64_t> shape;
    std::string dtype = "float32";

    Json to_json() const;
    static TensorMeta from_json(const Json& j);

    bool operator==(const TensorMeta&) const = default;
};

/// One input or output argument slot of an operator.
struct Argument {
    enum class Kind {
        kNone,
        kTensor,
        kTensorList,
        kInt,
        kIntList,
        kDouble,
        kBool,
        kString,
    };

    Kind kind = Kind::kNone;
    int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    std::string string_value;
    std::vector<int64_t> int_list;
    /// One entry for kTensor; N entries for kTensorList.
    std::vector<TensorMeta> tensors;

    static Argument none();
    static Argument from_int(int64_t v);
    static Argument from_double(double v);
    static Argument from_bool(bool v);
    static Argument from_string(std::string v);
    static Argument from_int_list(std::vector<int64_t> v);
    static Argument from_tensor(TensorMeta t);
    static Argument from_tensor_list(std::vector<TensorMeta> t);

    Json to_json() const;
    static Argument from_json(const Json& j);
};

/// Node role.  Wrappers (record_function scopes, autograd engine frames,
/// module annotations) carry no operator schema and are never replayed as
/// work; the replayer descends through them (§4.2, Figure 4).
enum class NodeKind { kRoot, kOperator, kWrapper };

const char* to_string(NodeKind k);
NodeKind node_kind_from_string(const std::string& s);

/// One execution-trace node (paper Table 2).
struct Node {
    int64_t id = -1;
    std::string name;
    /// Interned identity of `name` — an in-process cache, never serialized
    /// (OpIds are process-local).  Stamped by the Session at record time;
    /// for traces loaded from JSON it starts invalid and the replay planner
    /// (core/supported_ops) resolves it exactly once per node, through the
    /// const references replay holds (OpIdCache makes that race-free).
    OpIdCache op_id;
    int64_t parent = -1;
    NodeKind kind = NodeKind::kOperator;
    dev::OpCategory category = dev::OpCategory::kATen;
    /// PyTorch-style operator schema string; empty for wrappers and for fused
    /// operators (whose reconstruction metadata the ET does not yet carry,
    /// §4.3.4).
    std::string op_schema;
    /// Issuing thread (1 = main, 2 = autograd engine).
    int tid = 1;
    std::vector<Argument> inputs;
    std::vector<Argument> outputs;
    /// Process-group ID for communication operators; -1 otherwise.
    int64_t pg_id = -1;

    Json to_json() const;
    static Node from_json(const Json& j);

    bool is_op() const { return kind == NodeKind::kOperator; }
};

/// Returns the node's interned OpId, resolving (and caching) it through the
/// process-wide interner on first use.  Unlike the registry-based resolution
/// in core/supported_ops, this *interns* unknown names, so it always returns
/// a valid ID — the right primitive for identity comparisons on analysis
/// paths (tensor-policy derivation, obfuscation scans) where the op need not
/// be registered.
OpId resolve_op_id(const Node& node);

} // namespace mystique::et
