#pragma once

/// @file
/// Operator-level trace statistics — the "advanced ET analyzer" direction of
/// §8.2: per-operator summaries and weighting beyond whole-trace population
/// counts, plus an operator-mix distance for grouping near-identical traces.

#include <cstdint>
#include <string>
#include <vector>

#include "common/op_id.h"
#include "et/trace.h"
#include "profiler/profiler.h"

namespace mystique::et {

/// Per-operator aggregate over one trace.  Rows are keyed internally by
/// interned OpId; the name is materialized for reports.
struct OpStats {
    std::string name;
    OpId op_id = kInvalidOpId;
    dev::OpCategory category = dev::OpCategory::kATen;
    int64_t count = 0;
    /// Total elements across tensor inputs (a size proxy).
    int64_t input_elements = 0;
    /// Device time attributed to the op's subtrees (0 without a profiler
    /// trace).
    double kernel_time_us = 0.0;
};

/// Summary of a trace's operator mix.
class TraceStats {
  public:
    /// Builds stats; @p prof optionally attributes device time per op.
    static TraceStats build(const ExecutionTrace& trace,
                            const prof::ProfilerTrace* prof = nullptr);

    /// Per-name rows, sorted by kernel time (then count) descending.
    const std::vector<OpStats>& ops() const { return ops_; }

    /// Row lookup; nullptr when the op never appears.
    const OpStats* find(const std::string& name) const;

    int64_t total_ops() const { return total_ops_; }
    double total_kernel_us() const { return total_kernel_us_; }

    /// Fraction of device time carried by the top-k operator names —
    /// "timing cost" weighting for replay-sample selection (§8.2).
    double top_k_time_share(std::size_t k) const;

    /// L1 distance between two traces' normalized op-count mixes, in [0, 2].
    /// 0 = identical mixes; used to group near-equivalent fleet traces.
    static double mix_distance(const TraceStats& a, const TraceStats& b);

    /// Serializes the rows for reports.
    Json to_json() const;

  private:
    std::vector<OpStats> ops_;
    int64_t total_ops_ = 0;
    double total_kernel_us_ = 0.0;
};

} // namespace mystique::et
