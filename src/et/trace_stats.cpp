#include "et/trace_stats.h"

#include <algorithm>
#include <unordered_map>

namespace mystique::et {

TraceStats
TraceStats::build(const ExecutionTrace& trace, const prof::ProfilerTrace* prof)
{
    TraceStats out;
    // Histogram keyed by interned OpId — interning touches each distinct
    // name once; per-node and per-kernel accounting is integer-keyed.
    std::unordered_map<OpId, OpStats> rows;

    // Map node id → op identity of its nearest operator ancestor-or-self, so
    // kernels launched by children attribute to the composite they serve.
    std::unordered_map<int64_t, OpId> owner_op;

    for (const auto& n : trace.nodes()) {
        OpId owner = kInvalidOpId;
        if (n.parent >= 0) {
            auto it = owner_op.find(n.parent);
            if (it != owner_op.end())
                owner = it->second;
        }
        OpId op_id = kInvalidOpId;
        if (n.is_op()) {
            op_id = n.op_id.load();
            if (op_id == kInvalidOpId) {
                op_id = OpInterner::instance().intern(n.name);
                n.op_id.store(op_id);
            }
            if (owner == kInvalidOpId)
                owner = op_id;
        }
        owner_op[n.id] = owner;

        if (!n.is_op())
            continue;
        OpStats& row = rows[op_id];
        if (row.count == 0) {
            row.name = n.name;
            row.op_id = op_id;
            row.category = n.category;
        }
        ++row.count;
        ++out.total_ops_;
        for (const auto& arg : n.inputs)
            for (const auto& t : arg.tensors)
                row.input_elements += t.numel;
    }

    if (prof != nullptr) {
        for (const auto& k : prof->kernels()) {
            auto it = owner_op.find(k.correlation);
            if (it == owner_op.end() || it->second == kInvalidOpId)
                continue;
            auto rit = rows.find(it->second);
            if (rit == rows.end())
                continue;
            rit->second.kernel_time_us += k.dur;
            out.total_kernel_us_ += k.dur;
        }
    }

    out.ops_.reserve(rows.size());
    for (auto& [id, row] : rows)
        out.ops_.push_back(std::move(row));
    std::sort(out.ops_.begin(), out.ops_.end(), [](const OpStats& a, const OpStats& b) {
        if (a.kernel_time_us != b.kernel_time_us)
            return a.kernel_time_us > b.kernel_time_us;
        if (a.count != b.count)
            return a.count > b.count;
        return a.name < b.name;
    });
    return out;
}

const OpStats*
TraceStats::find(const std::string& name) const
{
    const OpId id = OpInterner::instance().lookup(name);
    if (id == kInvalidOpId)
        return nullptr;
    for (const auto& row : ops_) {
        if (row.op_id == id)
            return &row;
    }
    return nullptr;
}

double
TraceStats::top_k_time_share(std::size_t k) const
{
    if (total_kernel_us_ <= 0.0)
        return 0.0;
    double covered = 0.0;
    for (std::size_t i = 0; i < std::min(k, ops_.size()); ++i)
        covered += ops_[i].kernel_time_us;
    return covered / total_kernel_us_;
}

double
TraceStats::mix_distance(const TraceStats& a, const TraceStats& b)
{
    if (a.total_ops_ == 0 && b.total_ops_ == 0)
        return 0.0;
    // OpIds are process-wide, so two traces' rows share one key space.
    std::unordered_map<OpId, double> mix;
    for (const auto& row : a.ops_)
        mix[row.op_id] += static_cast<double>(row.count) /
                          std::max<int64_t>(a.total_ops_, 1);
    for (const auto& row : b.ops_)
        mix[row.op_id] -= static_cast<double>(row.count) /
                          std::max<int64_t>(b.total_ops_, 1);
    double dist = 0.0;
    for (const auto& [id, delta] : mix)
        dist += std::abs(delta);
    return dist;
}

Json
TraceStats::to_json() const
{
    Json rows = Json::array();
    for (const auto& op : ops_) {
        Json j = Json::object();
        j.set("name", Json(op.name));
        j.set("category", Json(dev::to_string(op.category)));
        j.set("count", Json(op.count));
        j.set("input_elements", Json(op.input_elements));
        j.set("kernel_time_us", Json(op.kernel_time_us));
        rows.push_back(std::move(j));
    }
    Json doc = Json::object();
    doc.set("total_ops", Json(total_ops_));
    doc.set("total_kernel_us", Json(total_kernel_us_));
    doc.set("ops", std::move(rows));
    return doc;
}

} // namespace mystique::et
