#include "et/trace_stats.h"

#include <algorithm>
#include <unordered_map>

namespace mystique::et {

TraceStats
TraceStats::build(const ExecutionTrace& trace, const prof::ProfilerTrace* prof)
{
    TraceStats out;
    std::unordered_map<std::string, OpStats> rows;

    // Map node id → op name of its nearest operator ancestor-or-self, so
    // kernels launched by children attribute to the composite they serve.
    std::unordered_map<int64_t, std::string> owner_name;
    std::unordered_map<int64_t, const Node*> by_id;
    for (const auto& n : trace.nodes())
        by_id[n.id] = &n;

    for (const auto& n : trace.nodes()) {
        std::string owner;
        if (n.parent >= 0) {
            auto it = owner_name.find(n.parent);
            if (it != owner_name.end())
                owner = it->second;
        }
        if (owner.empty() && n.is_op())
            owner = n.name;
        owner_name[n.id] = owner;

        if (!n.is_op())
            continue;
        OpStats& row = rows[n.name];
        row.name = n.name;
        row.category = n.category;
        ++row.count;
        ++out.total_ops_;
        for (const auto& arg : n.inputs)
            for (const auto& t : arg.tensors)
                row.input_elements += t.numel;
    }

    if (prof != nullptr) {
        for (const auto& k : prof->kernels()) {
            auto it = owner_name.find(k.correlation);
            if (it == owner_name.end() || it->second.empty())
                continue;
            auto rit = rows.find(it->second);
            if (rit == rows.end())
                continue;
            rit->second.kernel_time_us += k.dur;
            out.total_kernel_us_ += k.dur;
        }
    }

    out.ops_.reserve(rows.size());
    for (auto& [name, row] : rows)
        out.ops_.push_back(std::move(row));
    std::sort(out.ops_.begin(), out.ops_.end(), [](const OpStats& a, const OpStats& b) {
        if (a.kernel_time_us != b.kernel_time_us)
            return a.kernel_time_us > b.kernel_time_us;
        if (a.count != b.count)
            return a.count > b.count;
        return a.name < b.name;
    });
    return out;
}

const OpStats*
TraceStats::find(const std::string& name) const
{
    for (const auto& row : ops_) {
        if (row.name == name)
            return &row;
    }
    return nullptr;
}

double
TraceStats::top_k_time_share(std::size_t k) const
{
    if (total_kernel_us_ <= 0.0)
        return 0.0;
    double covered = 0.0;
    for (std::size_t i = 0; i < std::min(k, ops_.size()); ++i)
        covered += ops_[i].kernel_time_us;
    return covered / total_kernel_us_;
}

double
TraceStats::mix_distance(const TraceStats& a, const TraceStats& b)
{
    if (a.total_ops_ == 0 && b.total_ops_ == 0)
        return 0.0;
    std::unordered_map<std::string, double> mix;
    for (const auto& row : a.ops_)
        mix[row.name] += static_cast<double>(row.count) /
                         std::max<int64_t>(a.total_ops_, 1);
    for (const auto& row : b.ops_)
        mix[row.name] -= static_cast<double>(row.count) /
                         std::max<int64_t>(b.total_ops_, 1);
    double dist = 0.0;
    for (const auto& [name, delta] : mix)
        dist += std::abs(delta);
    return dist;
}

Json
TraceStats::to_json() const
{
    Json rows = Json::array();
    for (const auto& op : ops_) {
        Json j = Json::object();
        j.set("name", Json(op.name));
        j.set("category", Json(dev::to_string(op.category)));
        j.set("count", Json(op.count));
        j.set("input_elements", Json(op.input_elements));
        j.set("kernel_time_us", Json(op.kernel_time_us));
        rows.push_back(std::move(j));
    }
    Json doc = Json::object();
    doc.set("total_ops", Json(total_ops_));
    doc.set("total_kernel_us", Json(total_kernel_us_));
    doc.set("ops", std::move(rows));
    return doc;
}

} // namespace mystique::et
