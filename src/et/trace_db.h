#pragma once

/// @file
/// Trace database: the "ET analyzer" and "ET builder" stages of Figure 3.
///
/// Production deployments collect ETs from the whole fleet into trace
/// databases; the analyzer groups equivalent traces (same operator mix) and
/// selects replay samples by population weight (§8.2), and the builder
/// normalizes raw traces before replay.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "et/trace.h"

namespace mystique::et {

/// A group of traces that share an operator-mix fingerprint.
///
/// Batched replay of a whole database — one cached plan per group, replayed
/// representatives weighted by population — lives above this layer in
/// core::ReplayDriver::replay_groups (core/replay_driver.h).
struct TraceGroup {
    uint64_t fingerprint = 0;
    std::string representative_workload;
    /// Indices into the database's trace list.
    std::vector<std::size_t> members;
    /// Fraction of the database population this group represents.
    double population_weight = 0.0;

    /// The replay sample for this group — the paper's "select the most
    /// commonly-occurring" policy picks one representative per group.
    std::size_t representative() const { return members.front(); }
};

/// An in-memory collection of execution traces with selection support.
class TraceDatabase {
  public:
    /// Adds one trace; returns its index.
    std::size_t add(ExecutionTrace trace);

    /// Loads every "*.json" ET file in a directory (non-recursive).
    /// Returns the number of traces loaded.
    std::size_t load_directory(const std::string& dir);

    std::size_t size() const { return traces_.size(); }
    const ExecutionTrace& trace(std::size_t index) const;

    /// Shared handle to a trace — replay plans built over it share ownership
    /// instead of deep-copying (the PlanCache's zero-copy get_or_build).
    std::shared_ptr<const ExecutionTrace> trace_handle(std::size_t index) const;

    /// Groups traces by fingerprint and computes population weights,
    /// sorted by weight descending.
    std::vector<TraceGroup> analyze() const;

    /// Indices of representative traces for the @p top_k most common groups
    /// (one representative per group) — the paper's "select the most
    /// commonly-occurring" policy.
    std::vector<std::size_t> select_top(std::size_t top_k) const;

  private:
    /// Traces live behind shared_ptr so plans can share them (and so the
    /// vector can grow without invalidating outstanding handles).
    std::vector<std::shared_ptr<const ExecutionTrace>> traces_;
};

/// Normalization applied by the ET builder before replay.
struct BuilderOptions {
    /// Renumber node IDs to be dense starting at 0 (preserving order).
    bool renumber_ids = true;
    /// Drop nodes with kind kRoot that have no children.
    bool drop_empty_roots = true;
};

/// Preprocesses a raw trace into replayable form:
///  - validates parent links and ID monotonicity,
///  - optionally renumbers IDs densely,
///  - verifies operator nodes carry schemas (except Fused, which legitimately
///    lack them, §4.3.4).
/// Throws ParseError on malformed traces.
ExecutionTrace build_trace(const ExecutionTrace& raw, const BuilderOptions& opts = {});

} // namespace mystique::et
