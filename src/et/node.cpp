#include "et/node.h"

#include "common/error.h"

namespace mystique::et {

Json
TensorMeta::to_json() const
{
    // Matches the PyTorch ET convention: the unique ID is a six-element
    // array, shape and dtype are carried alongside.
    Json j = Json::object();
    j.set("id", Json(Json::Array{Json(tensor_id), Json(storage_id), Json(offset), Json(numel),
                                 Json(itemsize), Json(device)}));
    Json shape_j = Json::array();
    for (int64_t d : shape)
        shape_j.push_back(Json(d));
    j.set("shape", std::move(shape_j));
    j.set("dtype", Json(dtype));
    return j;
}

TensorMeta
TensorMeta::from_json(const Json& j)
{
    TensorMeta t;
    const auto& id = j.at("id").as_array();
    if (id.size() != 6)
        MYST_THROW(ParseError, "tensor id tuple must have 6 elements, got " << id.size());
    t.tensor_id = id[0].as_int();
    t.storage_id = id[1].as_int();
    t.offset = id[2].as_int();
    t.numel = id[3].as_int();
    t.itemsize = id[4].as_int();
    t.device = id[5].as_string();
    for (const auto& d : j.at("shape").as_array())
        t.shape.push_back(d.as_int());
    t.dtype = j.at("dtype").as_string();
    return t;
}

Argument
Argument::none()
{
    return {};
}

Argument
Argument::from_int(int64_t v)
{
    Argument a;
    a.kind = Kind::kInt;
    a.int_value = v;
    return a;
}

Argument
Argument::from_double(double v)
{
    Argument a;
    a.kind = Kind::kDouble;
    a.double_value = v;
    return a;
}

Argument
Argument::from_bool(bool v)
{
    Argument a;
    a.kind = Kind::kBool;
    a.bool_value = v;
    return a;
}

Argument
Argument::from_string(std::string v)
{
    Argument a;
    a.kind = Kind::kString;
    a.string_value = std::move(v);
    return a;
}

Argument
Argument::from_int_list(std::vector<int64_t> v)
{
    Argument a;
    a.kind = Kind::kIntList;
    a.int_list = std::move(v);
    return a;
}

Argument
Argument::from_tensor(TensorMeta t)
{
    Argument a;
    a.kind = Kind::kTensor;
    a.tensors.push_back(std::move(t));
    return a;
}

Argument
Argument::from_tensor_list(std::vector<TensorMeta> t)
{
    Argument a;
    a.kind = Kind::kTensorList;
    a.tensors = std::move(t);
    return a;
}

namespace {

const char*
kind_name(Argument::Kind k)
{
    switch (k) {
      case Argument::Kind::kNone: return "none";
      case Argument::Kind::kTensor: return "tensor";
      case Argument::Kind::kTensorList: return "tensor_list";
      case Argument::Kind::kInt: return "int";
      case Argument::Kind::kIntList: return "int_list";
      case Argument::Kind::kDouble: return "double";
      case Argument::Kind::kBool: return "bool";
      case Argument::Kind::kString: return "string";
    }
    return "?";
}

Argument::Kind
kind_from_name(const std::string& s)
{
    if (s == "none") return Argument::Kind::kNone;
    if (s == "tensor") return Argument::Kind::kTensor;
    if (s == "tensor_list") return Argument::Kind::kTensorList;
    if (s == "int") return Argument::Kind::kInt;
    if (s == "int_list") return Argument::Kind::kIntList;
    if (s == "double") return Argument::Kind::kDouble;
    if (s == "bool") return Argument::Kind::kBool;
    if (s == "string") return Argument::Kind::kString;
    MYST_THROW(ParseError, "unknown argument kind '" << s << "'");
}

dev::OpCategory
category_from_name(const std::string& s)
{
    if (s == "ATen") return dev::OpCategory::kATen;
    if (s == "Comms") return dev::OpCategory::kComm;
    if (s == "Fused") return dev::OpCategory::kFused;
    if (s == "Custom") return dev::OpCategory::kCustom;
    if (s == "Other") return dev::OpCategory::kOther;
    MYST_THROW(ParseError, "unknown op category '" << s << "'");
}

} // namespace

Json
Argument::to_json() const
{
    Json j = Json::object();
    j.set("kind", Json(kind_name(kind)));
    switch (kind) {
      case Kind::kNone:
        break;
      case Kind::kInt:
        j.set("value", Json(int_value));
        break;
      case Kind::kDouble:
        j.set("value", Json(double_value));
        break;
      case Kind::kBool:
        j.set("value", Json(bool_value));
        break;
      case Kind::kString:
        j.set("value", Json(string_value));
        break;
      case Kind::kIntList: {
        Json arr = Json::array();
        for (int64_t v : int_list)
            arr.push_back(Json(v));
        j.set("value", std::move(arr));
        break;
      }
      case Kind::kTensor:
        j.set("value", tensors.at(0).to_json());
        break;
      case Kind::kTensorList: {
        Json arr = Json::array();
        for (const auto& t : tensors)
            arr.push_back(t.to_json());
        j.set("value", std::move(arr));
        break;
      }
    }
    return j;
}

Argument
Argument::from_json(const Json& j)
{
    Argument a;
    a.kind = kind_from_name(j.at("kind").as_string());
    switch (a.kind) {
      case Kind::kNone:
        break;
      case Kind::kInt:
        a.int_value = j.at("value").as_int();
        break;
      case Kind::kDouble:
        a.double_value = j.at("value").as_double();
        break;
      case Kind::kBool:
        a.bool_value = j.at("value").as_bool();
        break;
      case Kind::kString:
        a.string_value = j.at("value").as_string();
        break;
      case Kind::kIntList:
        for (const auto& v : j.at("value").as_array())
            a.int_list.push_back(v.as_int());
        break;
      case Kind::kTensor:
        a.tensors.push_back(TensorMeta::from_json(j.at("value")));
        break;
      case Kind::kTensorList:
        for (const auto& v : j.at("value").as_array())
            a.tensors.push_back(TensorMeta::from_json(v));
        break;
    }
    return a;
}

const char*
to_string(NodeKind k)
{
    switch (k) {
      case NodeKind::kRoot: return "root";
      case NodeKind::kOperator: return "operator";
      case NodeKind::kWrapper: return "wrapper";
    }
    return "?";
}

NodeKind
node_kind_from_string(const std::string& s)
{
    if (s == "root") return NodeKind::kRoot;
    if (s == "operator") return NodeKind::kOperator;
    if (s == "wrapper") return NodeKind::kWrapper;
    MYST_THROW(ParseError, "unknown node kind '" << s << "'");
}

Json
Node::to_json() const
{
    Json j = Json::object();
    j.set("id", Json(id));
    j.set("name", Json(name));
    j.set("parent", Json(parent));
    j.set("kind", Json(to_string(kind)));
    j.set("category", Json(dev::to_string(category)));
    j.set("op_schema", Json(op_schema));
    j.set("tid", Json(static_cast<int64_t>(tid)));
    Json ins = Json::array();
    for (const auto& a : inputs)
        ins.push_back(a.to_json());
    j.set("inputs", std::move(ins));
    Json outs = Json::array();
    for (const auto& a : outputs)
        outs.push_back(a.to_json());
    j.set("outputs", std::move(outs));
    if (pg_id >= 0)
        j.set("pg", Json(pg_id));
    return j;
}

Node
Node::from_json(const Json& j)
{
    Node n;
    n.id = j.at("id").as_int();
    n.name = j.at("name").as_string();
    n.parent = j.at("parent").as_int();
    n.kind = node_kind_from_string(j.at("kind").as_string());
    n.category = category_from_name(j.at("category").as_string());
    n.op_schema = j.get_string("op_schema", "");
    n.tid = static_cast<int>(j.get_int("tid", 1));
    for (const auto& a : j.at("inputs").as_array())
        n.inputs.push_back(Argument::from_json(a));
    for (const auto& a : j.at("outputs").as_array())
        n.outputs.push_back(Argument::from_json(a));
    n.pg_id = j.get_int("pg", -1);
    return n;
}

OpId
resolve_op_id(const Node& node)
{
    OpId id = node.op_id.load();
    if (id == kInvalidOpId) {
        id = OpInterner::instance().intern(node.name);
        node.op_id.store(id);
    }
    return id;
}

} // namespace mystique::et
