#include "et/trace.h"

#include <algorithm>

#include "common/error.h"
#include "common/logging.h"

namespace mystique::et {

Json
TraceMeta::to_json() const
{
    Json j = Json::object();
    j.set("workload", Json(workload));
    j.set("platform", Json(platform));
    j.set("rank", Json(static_cast<int64_t>(rank)));
    j.set("world_size", Json(static_cast<int64_t>(world_size)));
    j.set("iteration", Json(static_cast<int64_t>(iteration)));
    j.set("seed", Json(seed));
    if (!process_groups.empty()) {
        Json groups = Json::object();
        for (const auto& [id, ranks] : process_groups) {
            Json arr = Json::array();
            for (int r : ranks)
                arr.push_back(Json(static_cast<int64_t>(r)));
            groups.set(std::to_string(id), std::move(arr));
        }
        j.set("process_groups", std::move(groups));
    }
    return j;
}

TraceMeta
TraceMeta::from_json(const Json& j)
{
    TraceMeta m;
    m.workload = j.get_string("workload", "");
    m.platform = j.get_string("platform", "");
    m.rank = static_cast<int>(j.get_int("rank", 0));
    m.world_size = static_cast<int>(j.get_int("world_size", 1));
    m.iteration = static_cast<int>(j.get_int("iteration", 0));
    m.seed = static_cast<uint64_t>(j.get_int("seed", 0));
    if (const Json* groups = j.find("process_groups")) {
        for (const auto& [key, arr] : groups->as_object()) {
            std::vector<int> ranks;
            for (const auto& r : arr.as_array())
                ranks.push_back(static_cast<int>(r.as_int()));
            m.process_groups[std::stoll(key)] = std::move(ranks);
        }
    }
    return m;
}

void
ExecutionTrace::add_node(Node node)
{
    if (!nodes_.empty())
        MYST_CHECK_MSG(node.id > nodes_.back().id,
                       "node IDs must increase: " << node.id << " after " << nodes_.back().id);
    index_[node.id] = nodes_.size();
    nodes_.push_back(std::move(node));
}

const Node*
ExecutionTrace::find(int64_t id) const
{
    auto it = index_.find(id);
    return it == index_.end() ? nullptr : &nodes_[it->second];
}

std::vector<int64_t>
ExecutionTrace::children(int64_t id) const
{
    std::vector<int64_t> out;
    for (const auto& n : nodes_) {
        if (n.parent == id)
            out.push_back(n.id);
    }
    return out;
}

const Node*
ExecutionTrace::find_by_name(const std::string& name) const
{
    for (const auto& n : nodes_) {
        if (n.name == name)
            return &n;
    }
    return nullptr;
}

std::unordered_map<dev::OpCategory, int64_t>
ExecutionTrace::count_by_category() const
{
    std::unordered_map<dev::OpCategory, int64_t> counts;
    for (const auto& n : nodes_) {
        if (n.is_op())
            ++counts[n.category];
    }
    return counts;
}

Json
ExecutionTrace::to_json() const
{
    Json j = Json::object();
    j.set("schema_version", Json(static_cast<int64_t>(1)));
    j.set("meta", meta_.to_json());
    Json nodes = Json::array();
    for (const auto& n : nodes_)
        nodes.push_back(n.to_json());
    j.set("nodes", std::move(nodes));
    return j;
}

ExecutionTrace
ExecutionTrace::from_json(const Json& j)
{
    ExecutionTrace t;
    t.meta_ = TraceMeta::from_json(j.at("meta"));
    for (const auto& n : j.at("nodes").as_array())
        t.add_node(Node::from_json(n));
    return t;
}

void
ExecutionTrace::save(const std::string& path) const
{
    to_json().dump_file(path);
}

ExecutionTrace
ExecutionTrace::load(const std::string& path)
{
    return from_json(Json::parse_file(path));
}

uint64_t
ExecutionTrace::fingerprint() const
{
    // Order-independent histogram hash over (op name, count).
    std::unordered_map<std::string, int64_t> hist;
    for (const auto& n : nodes_) {
        if (n.is_op())
            ++hist[n.name];
    }
    std::vector<std::pair<std::string, int64_t>> sorted(hist.begin(), hist.end());
    std::sort(sorted.begin(), sorted.end());
    uint64_t h = 0xcbf29ce484222325ull; // FNV offset basis
    auto mix = [&h](const char* data, std::size_t len) {
        for (std::size_t i = 0; i < len; ++i) {
            h ^= static_cast<unsigned char>(data[i]);
            h *= 0x100000001b3ull;
        }
    };
    for (const auto& [name, count] : sorted) {
        mix(name.data(), name.size());
        mix(reinterpret_cast<const char*>(&count), sizeof(count));
    }
    return h;
}

void
ExecutionTraceObserver::register_callback(std::string output_path)
{
    output_path_ = std::move(output_path);
}

void
ExecutionTraceObserver::start()
{
    trace_ = ExecutionTrace{};
    pending_.clear();
    active_ = true;
}

void
ExecutionTraceObserver::stop()
{
    active_ = false;
    // Nodes arrived in completion order; restore execution (ID) order.
    std::sort(pending_.begin(), pending_.end(),
              [](const Node& a, const Node& b) { return a.id < b.id; });
    trace_ = ExecutionTrace{};
    trace_.meta() = pending_meta_;
    for (auto& n : pending_)
        trace_.add_node(std::move(n));
    pending_.clear();
    if (output_path_.has_value()) {
        trace_.save(*output_path_);
        MYST_DEBUG("execution trace written to " << *output_path_);
    }
}

void
ExecutionTraceObserver::record(Node node)
{
    MYST_CHECK_MSG(active_, "record() on inactive observer");
    pending_.push_back(std::move(node));
}

void
ExecutionTraceObserver::set_meta(TraceMeta meta)
{
    pending_meta_ = std::move(meta);
    trace_.meta() = pending_meta_;
}

} // namespace mystique::et
