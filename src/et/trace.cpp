#include "et/trace.h"

#include <algorithm>

#include "common/error.h"
#include "common/hash.h"
#include "common/logging.h"

namespace mystique::et {

Json
TraceMeta::to_json() const
{
    Json j = Json::object();
    j.set("workload", Json(workload));
    j.set("platform", Json(platform));
    j.set("rank", Json(static_cast<int64_t>(rank)));
    j.set("world_size", Json(static_cast<int64_t>(world_size)));
    j.set("iteration", Json(static_cast<int64_t>(iteration)));
    j.set("seed", Json(seed));
    if (!process_groups.empty()) {
        Json groups = Json::object();
        for (const auto& [id, ranks] : process_groups) {
            Json arr = Json::array();
            for (int r : ranks)
                arr.push_back(Json(static_cast<int64_t>(r)));
            groups.set(std::to_string(id), std::move(arr));
        }
        j.set("process_groups", std::move(groups));
    }
    return j;
}

TraceMeta
TraceMeta::from_json(const Json& j)
{
    TraceMeta m;
    m.workload = j.get_string("workload", "");
    m.platform = j.get_string("platform", "");
    m.rank = static_cast<int>(j.get_int("rank", 0));
    m.world_size = static_cast<int>(j.get_int("world_size", 1));
    m.iteration = static_cast<int>(j.get_int("iteration", 0));
    m.seed = static_cast<uint64_t>(j.get_int("seed", 0));
    if (const Json* groups = j.find("process_groups")) {
        for (const auto& [key, arr] : groups->as_object()) {
            std::vector<int> ranks;
            for (const auto& r : arr.as_array())
                ranks.push_back(static_cast<int>(r.as_int()));
            m.process_groups[std::stoll(key)] = std::move(ranks);
        }
    }
    return m;
}

namespace {

/// Transfers one (valid, value) fingerprint-cache pair; clears the source's
/// validity when @p reset_src (moves leave the source without its nodes, so
/// its cached values would be stale).  Source atomics bind as non-const even
/// from the copy constructor's const source because the members are mutable.
void
transfer_fp_cache(std::atomic<bool>& src_valid, std::atomic<uint64_t>& src_fp,
                  std::atomic<bool>& dst_valid, std::atomic<uint64_t>& dst_fp,
                  bool reset_src = false)
{
    if (src_valid.load(std::memory_order_acquire)) {
        dst_fp.store(src_fp.load(std::memory_order_relaxed), std::memory_order_relaxed);
        dst_valid.store(true, std::memory_order_release);
    } else {
        dst_valid.store(false, std::memory_order_release);
    }
    if (reset_src)
        src_valid.store(false, std::memory_order_release);
}

} // namespace

ExecutionTrace::ExecutionTrace(const ExecutionTrace& other)
    : meta_(other.meta_), nodes_(other.nodes_)
{
    transfer_fp_cache(other.fp_valid_, other.fp_, fp_valid_, fp_);
    transfer_fp_cache(other.sfp_valid_, other.sfp_, sfp_valid_, sfp_);
}

ExecutionTrace::ExecutionTrace(ExecutionTrace&& other) noexcept
    : meta_(std::move(other.meta_)), nodes_(std::move(other.nodes_))
{
    transfer_fp_cache(other.fp_valid_, other.fp_, fp_valid_, fp_, /*reset_src=*/true);
    transfer_fp_cache(other.sfp_valid_, other.sfp_, sfp_valid_, sfp_, /*reset_src=*/true);
}

ExecutionTrace&
ExecutionTrace::operator=(const ExecutionTrace& other)
{
    if (this == &other)
        return *this;
    *this = ExecutionTrace(other);
    return *this;
}

ExecutionTrace&
ExecutionTrace::operator=(ExecutionTrace&& other) noexcept
{
    meta_ = std::move(other.meta_);
    nodes_ = std::move(other.nodes_);
    transfer_fp_cache(other.fp_valid_, other.fp_, fp_valid_, fp_, /*reset_src=*/true);
    transfer_fp_cache(other.sfp_valid_, other.sfp_, sfp_valid_, sfp_, /*reset_src=*/true);
    return *this;
}

void
ExecutionTrace::add_node(Node node)
{
    if (!nodes_.empty())
        MYST_CHECK_MSG(node.id > nodes_.back().id,
                       "node IDs must increase: " << node.id << " after " << nodes_.back().id);
    nodes_.push_back(std::move(node));
    fp_valid_.store(false, std::memory_order_release);
    sfp_valid_.store(false, std::memory_order_release);
}

const Node*
ExecutionTrace::find(int64_t id) const
{
    // Nodes are stored in strictly increasing ID order (add_node enforces
    // it), so lookup is a binary search — no side index to build, copy, or
    // keep coherent.  Plan caching copies traces on every build and restore;
    // dropping the id→position hash map made those copies measurably
    // cheaper, and find() stays O(log n).
    const auto it = std::lower_bound(
        nodes_.begin(), nodes_.end(), id,
        [](const Node& n, int64_t want) { return n.id < want; });
    return it != nodes_.end() && it->id == id ? &*it : nullptr;
}

std::vector<int64_t>
ExecutionTrace::children(int64_t id) const
{
    std::vector<int64_t> out;
    for (const auto& n : nodes_) {
        if (n.parent == id)
            out.push_back(n.id);
    }
    return out;
}

const Node*
ExecutionTrace::find_by_name(const std::string& name) const
{
    for (const auto& n : nodes_) {
        if (n.name == name)
            return &n;
    }
    return nullptr;
}

std::unordered_map<dev::OpCategory, int64_t>
ExecutionTrace::count_by_category() const
{
    std::unordered_map<dev::OpCategory, int64_t> counts;
    for (const auto& n : nodes_) {
        if (n.is_op())
            ++counts[n.category];
    }
    return counts;
}

Json
ExecutionTrace::to_json() const
{
    Json j = Json::object();
    j.set("schema_version", Json(static_cast<int64_t>(1)));
    j.set("meta", meta_.to_json());
    Json nodes = Json::array();
    for (const auto& n : nodes_)
        nodes.push_back(n.to_json());
    j.set("nodes", std::move(nodes));
    return j;
}

ExecutionTrace
ExecutionTrace::from_json(const Json& j)
{
    ExecutionTrace t;
    t.meta_ = TraceMeta::from_json(j.at("meta"));
    for (const auto& n : j.at("nodes").as_array())
        t.add_node(Node::from_json(n));
    return t;
}

void
ExecutionTrace::save(const std::string& path) const
{
    to_json().dump_file(path);
}

ExecutionTrace
ExecutionTrace::load(const std::string& path)
{
    return from_json(Json::parse_file(path));
}

uint64_t
ExecutionTrace::fingerprint() const
{
    if (fp_valid_.load(std::memory_order_acquire))
        return fp_.load(std::memory_order_relaxed);

    // Order-independent histogram hash over (op name, count).
    std::unordered_map<std::string, int64_t> hist;
    for (const auto& n : nodes_) {
        if (n.is_op())
            ++hist[n.name];
    }
    std::vector<std::pair<std::string, int64_t>> sorted(hist.begin(), hist.end());
    std::sort(sorted.begin(), sorted.end());
    Fnv1a h;
    for (const auto& [name, count] : sorted) {
        h.mix_bytes(name.data(), name.size());
        h.mix_pod(count);
    }
    fp_.store(h.value(), std::memory_order_relaxed);
    fp_valid_.store(true, std::memory_order_release);
    return h.value();
}

namespace {

/// True for device-designator strings ("cuda:1", "cpu", ...).  Device
/// placement is *rank identity*, not plan structure: symmetric SPMD ranks
/// record "cuda:0" vs "cuda:1" for otherwise identical traces, and replay
/// always runs on the executing session's own simulated device (the string
/// is carried cosmetically).  The structural hash canonicalizes them so
/// equivalent ranks can share one plan.
bool
is_device_string(const std::string& s)
{
    static const char* kPrefixes[] = {"cuda", "cpu", "hip", "xpu"};
    for (const char* p : kPrefixes) {
        const std::size_t n = std::string_view(p).size();
        if (s.compare(0, n, p) != 0)
            continue;
        if (s.size() == n)
            return true;
        if (s[n] != ':')
            continue;
        bool digits = s.size() > n + 1;
        for (std::size_t i = n + 1; i < s.size(); ++i)
            digits = digits && s[i] >= '0' && s[i] <= '9';
        if (digits)
            return true;
    }
    return false;
}

/// Hashes the fields the plan builder and executor consume: tensor_id (the
/// TensorManager's binding key), shape, numel, itemsize and dtype.
/// storage_id/offset are allocator artifacts and device is rank identity —
/// all unread by replay — so they are excluded to keep symmetric ranks'
/// traces structurally equal.
void
mix_tensor_meta(Fnv1a& h, const TensorMeta& t)
{
    h.mix_pod(t.tensor_id);
    h.mix_pod(t.numel);
    h.mix_pod(t.itemsize);
    for (int64_t d : t.shape)
        h.mix_pod(d);
    h.mix_pod(t.shape.size());
    h.mix(t.dtype);
}

void
mix_argument(Fnv1a& h, const Argument& a)
{
    h.mix_pod(a.kind);
    h.mix_pod(a.int_value);
    h.mix_pod(a.double_value);
    h.mix_pod(a.bool_value);
    h.mix(is_device_string(a.string_value) ? std::string("<device>") : a.string_value);
    for (int64_t v : a.int_list)
        h.mix_pod(v);
    h.mix_pod(a.int_list.size());
    for (const auto& t : a.tensors)
        mix_tensor_meta(h, t);
    h.mix_pod(a.tensors.size());
}

} // namespace

uint64_t
ExecutionTrace::structural_fingerprint() const
{
    if (sfp_valid_.load(std::memory_order_acquire))
        return sfp_.load(std::memory_order_relaxed);

    Fnv1a h;
    // Replay-relevant metadata: world size and group membership shape the
    // executor's process-group mapping; rank identity deliberately excluded.
    h.mix_pod(meta_.world_size);
    for (const auto& [pg_id, ranks] : meta_.process_groups) {
        h.mix_pod(pg_id);
        for (int r : ranks)
            h.mix_pod(r);
        h.mix_pod(ranks.size());
    }
    h.mix_pod(meta_.process_groups.size());

    // Full node structure in execution order — everything the plan builder
    // reads: identity, hierarchy, schema, arguments (shapes, dtypes, values,
    // recorded tensor IDs), thread and process-group assignment.
    for (const Node& n : nodes_) {
        h.mix_pod(n.id);
        h.mix(n.name);
        h.mix_pod(n.parent);
        h.mix_pod(n.kind);
        h.mix_pod(n.category);
        h.mix(n.op_schema);
        h.mix_pod(n.tid);
        h.mix_pod(n.pg_id);
        for (const auto& a : n.inputs)
            mix_argument(h, a);
        h.mix_pod(n.inputs.size());
        for (const auto& a : n.outputs)
            mix_argument(h, a);
        h.mix_pod(n.outputs.size());
    }
    h.mix_pod(nodes_.size());

    sfp_.store(h.value(), std::memory_order_relaxed);
    sfp_valid_.store(true, std::memory_order_release);
    return h.value();
}

void
ExecutionTraceObserver::register_callback(std::string output_path)
{
    output_path_ = std::move(output_path);
}

void
ExecutionTraceObserver::start()
{
    trace_ = ExecutionTrace{};
    pending_.clear();
    active_ = true;
}

void
ExecutionTraceObserver::stop()
{
    active_ = false;
    // Nodes arrived in completion order; restore execution (ID) order.
    std::sort(pending_.begin(), pending_.end(),
              [](const Node& a, const Node& b) { return a.id < b.id; });
    trace_ = ExecutionTrace{};
    trace_.meta() = pending_meta_;
    for (auto& n : pending_)
        trace_.add_node(std::move(n));
    pending_.clear();
    if (output_path_.has_value()) {
        trace_.save(*output_path_);
        MYST_DEBUG("execution trace written to " << *output_path_);
    }
}

void
ExecutionTraceObserver::record(Node node)
{
    MYST_CHECK_MSG(active_, "record() on inactive observer");
    pending_.push_back(std::move(node));
}

void
ExecutionTraceObserver::set_meta(TraceMeta meta)
{
    pending_meta_ = std::move(meta);
    trace_.meta() = pending_meta_;
}

} // namespace mystique::et
