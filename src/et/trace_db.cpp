#include "et/trace_db.h"

#include <algorithm>
#include <filesystem>
#include <unordered_map>

#include "common/error.h"
#include "common/logging.h"

namespace mystique::et {

std::size_t
TraceDatabase::add(ExecutionTrace trace)
{
    traces_.push_back(std::make_shared<const ExecutionTrace>(std::move(trace)));
    return traces_.size() - 1;
}

std::size_t
TraceDatabase::load_directory(const std::string& dir)
{
    namespace fs = std::filesystem;
    std::size_t loaded = 0;
    std::vector<fs::path> files;
    // A fleet ingest directory may be absent (not yet synced) or racing a
    // producer; both are degraded inputs, not programming errors, so they
    // warn and load nothing rather than abort the whole database build.
    try {
        for (const auto& entry : fs::directory_iterator(dir)) {
            if (entry.is_regular_file() && entry.path().extension() == ".json")
                files.push_back(entry.path());
        }
    } catch (const std::exception& e) {
        MYST_WARN("trace directory '" << dir << "' unreadable, loading nothing: "
                                      << e.what());
        return 0;
    }
    std::sort(files.begin(), files.end());
    for (const auto& path : files) {
        try {
            add(ExecutionTrace::load(path.string()));
            ++loaded;
        } catch (const std::exception& e) {
            // std::exception, not just MystiqueError: a trace that fails
            // mid-parse with bad_alloc/filesystem_error is every bit as
            // skippable as one that fails schema validation.
            MYST_WARN("skipping unreadable trace " << path.string() << ": " << e.what());
        }
    }
    return loaded;
}

const ExecutionTrace&
TraceDatabase::trace(std::size_t index) const
{
    MYST_CHECK_MSG(index < traces_.size(), "trace index out of range: " << index);
    return *traces_[index];
}

std::shared_ptr<const ExecutionTrace>
TraceDatabase::trace_handle(std::size_t index) const
{
    MYST_CHECK_MSG(index < traces_.size(), "trace index out of range: " << index);
    return traces_[index];
}

std::vector<TraceGroup>
TraceDatabase::analyze() const
{
    std::unordered_map<uint64_t, TraceGroup> groups;
    for (std::size_t i = 0; i < traces_.size(); ++i) {
        const uint64_t fp = traces_[i]->fingerprint();
        auto& g = groups[fp];
        g.fingerprint = fp;
        if (g.members.empty())
            g.representative_workload = traces_[i]->meta().workload;
        g.members.push_back(i);
    }
    std::vector<TraceGroup> out;
    out.reserve(groups.size());
    for (auto& [fp, g] : groups) {
        g.population_weight =
            traces_.empty()
                ? 0.0
                : static_cast<double>(g.members.size()) / static_cast<double>(traces_.size());
        out.push_back(std::move(g));
    }
    std::sort(out.begin(), out.end(), [](const TraceGroup& a, const TraceGroup& b) {
        if (a.population_weight != b.population_weight)
            return a.population_weight > b.population_weight;
        return a.fingerprint < b.fingerprint;
    });
    return out;
}

std::vector<std::size_t>
TraceDatabase::select_top(std::size_t top_k) const
{
    std::vector<std::size_t> out;
    for (const auto& g : analyze()) {
        if (out.size() >= top_k)
            break;
        out.push_back(g.representative());
    }
    return out;
}

ExecutionTrace
build_trace(const ExecutionTrace& raw, const BuilderOptions& opts)
{
    // Validate parents refer to earlier nodes (or -1 for roots).
    std::unordered_map<int64_t, bool> seen;
    for (const auto& n : raw.nodes()) {
        if (n.parent >= 0 && seen.find(n.parent) == seen.end())
            MYST_THROW(ParseError, "node " << n.id << " references unknown parent " << n.parent);
        seen[n.id] = true;
        if (n.is_op() && n.op_schema.empty() && n.category != dev::OpCategory::kFused)
            MYST_THROW(ParseError,
                       "operator node " << n.id << " ('" << n.name << "') lacks a schema");
    }

    ExecutionTrace out;
    out.meta() = raw.meta();

    if (!opts.renumber_ids) {
        for (const auto& n : raw.nodes()) {
            if (opts.drop_empty_roots && n.kind == NodeKind::kRoot &&
                raw.children(n.id).empty())
                continue;
            out.add_node(n);
        }
        return out;
    }

    std::unordered_map<int64_t, int64_t> remap;
    remap[-1] = -1;
    int64_t next = 0;
    for (const auto& n : raw.nodes()) {
        if (opts.drop_empty_roots && n.kind == NodeKind::kRoot && raw.children(n.id).empty())
            continue;
        Node copy = n;
        remap[n.id] = next;
        copy.id = next++;
        auto it = remap.find(n.parent);
        copy.parent = it == remap.end() ? -1 : it->second;
        out.add_node(std::move(copy));
    }
    return out;
}

} // namespace mystique::et
