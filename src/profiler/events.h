#pragma once

/// @file
/// Profiler activity events (the Kineto-style trace of §4.5).
///
/// The profiler trace complements the ET with the information the ET lacks:
/// which GPU kernels each operator launched and on which CUDA stream.  The
/// replayer consumes it to dispatch replayed operators to the right streams.

#include <cstdint>
#include <string>
#include <vector>

#include "device/kernel.h"
#include "sim/timeline.h"

namespace mystique::prof {

/// A CPU-side operator (or wrapper) span.
struct CpuOpEvent {
    std::string name;
    int tid = 1;
    sim::TimeUs ts = 0.0;
    sim::TimeUs dur = 0.0;
    /// ET node ID of the op (links profiler trace ↔ execution trace).
    int64_t node_id = -1;
    dev::OpCategory category = dev::OpCategory::kATen;
    bool is_wrapper = false;
};

/// A device kernel span.
struct KernelEvent {
    std::string name;
    int stream = 0;
    sim::TimeUs ts = 0.0;
    sim::TimeUs dur = 0.0;
    /// Correlates the kernel with the launching CPU op (its ET node ID).
    int64_t correlation = -1;
    dev::OpCategory category = dev::OpCategory::kATen;
    dev::KernelKind kind = dev::KernelKind::kOther;
    double flops = 0.0;
    double bytes = 0.0;
    dev::MicroMetrics micro;
};

} // namespace mystique::prof
