#include "profiler/profiler.h"

#include <algorithm>

#include "common/error.h"
#include "common/hash.h"

namespace mystique::prof {

namespace {

/// Transfers the replay-fingerprint cache pair; clears the source's validity
/// when @p reset_src (moved-from traces lose their kernels, so a retained
/// cached value would be stale).  Source atomics bind as non-const because
/// the members are mutable.
void
transfer_rfp_cache(std::atomic<bool>& src_valid, std::atomic<uint64_t>& src_fp,
                   std::atomic<bool>& dst_valid, std::atomic<uint64_t>& dst_fp,
                   bool reset_src = false)
{
    if (src_valid.load(std::memory_order_acquire)) {
        dst_fp.store(src_fp.load(std::memory_order_relaxed), std::memory_order_relaxed);
        dst_valid.store(true, std::memory_order_release);
    } else {
        dst_valid.store(false, std::memory_order_release);
    }
    if (reset_src)
        src_valid.store(false, std::memory_order_release);
}

} // namespace

ProfilerTrace::ProfilerTrace(const ProfilerTrace& other)
    : cpu_ops_(other.cpu_ops_), kernels_(other.kernels_)
{
    transfer_rfp_cache(other.rfp_valid_, other.rfp_, rfp_valid_, rfp_);
}

ProfilerTrace::ProfilerTrace(ProfilerTrace&& other) noexcept
    : cpu_ops_(std::move(other.cpu_ops_)), kernels_(std::move(other.kernels_))
{
    transfer_rfp_cache(other.rfp_valid_, other.rfp_, rfp_valid_, rfp_, /*reset_src=*/true);
}

ProfilerTrace&
ProfilerTrace::operator=(const ProfilerTrace& other)
{
    if (this == &other)
        return *this;
    *this = ProfilerTrace(other);
    return *this;
}

ProfilerTrace&
ProfilerTrace::operator=(ProfilerTrace&& other) noexcept
{
    cpu_ops_ = std::move(other.cpu_ops_);
    kernels_ = std::move(other.kernels_);
    transfer_rfp_cache(other.rfp_valid_, other.rfp_, rfp_valid_, rfp_, /*reset_src=*/true);
    return *this;
}

uint64_t
ProfilerTrace::replay_fingerprint() const
{
    if (rfp_valid_.load(std::memory_order_acquire))
        return rfp_.load(std::memory_order_relaxed);
    Fnv1a h;
    for (const auto& k : kernels_) {
        h.mix_pod(k.correlation);
        h.mix_pod(k.stream);
    }
    h.mix_pod(kernels_.size());
    rfp_.store(h.value(), std::memory_order_relaxed);
    rfp_valid_.store(true, std::memory_order_release);
    return h.value();
}

sim::Interval
ProfilerTrace::span() const
{
    std::vector<sim::Interval> all;
    all.reserve(cpu_ops_.size() + kernels_.size());
    for (const auto& e : cpu_ops_)
        all.push_back({e.ts, e.ts + e.dur});
    for (const auto& k : kernels_)
        all.push_back({k.ts, k.ts + k.dur});
    return sim::span(all);
}

std::vector<const KernelEvent*>
ProfilerTrace::kernels_for_node(int64_t node_id) const
{
    std::vector<const KernelEvent*> out;
    for (const auto& k : kernels_) {
        if (k.correlation == node_id)
            out.push_back(&k);
    }
    return out;
}

std::vector<int>
ProfilerTrace::streams_for_node(int64_t node_id) const
{
    std::vector<int> out;
    for (const auto* k : kernels_for_node(node_id)) {
        if (std::find(out.begin(), out.end(), k->stream) == out.end())
            out.push_back(k->stream);
    }
    return out;
}

std::map<dev::OpCategory, CategoryBreakdown>
ProfilerTrace::category_breakdown() const
{
    std::map<dev::OpCategory, CategoryBreakdown> out;

    // CPU self-time: per thread, subtract directly-nested children from each
    // parent so nested composites are not double counted.
    std::unordered_map<int, std::vector<const CpuOpEvent*>> by_tid;
    for (const auto& e : cpu_ops_)
        by_tid[e.tid].push_back(&e);
    for (auto& [tid, events] : by_tid) {
        std::sort(events.begin(), events.end(), [](const CpuOpEvent* a, const CpuOpEvent* b) {
            if (a->ts != b->ts)
                return a->ts < b->ts;
            return a->dur > b->dur; // parents first on ties
        });
        // Nesting stack; each frame tracks time consumed by children.
        struct Frame {
            const CpuOpEvent* ev;
            double child_time = 0.0;
        };
        std::vector<Frame> stack;
        auto close_frames_before = [&](double ts) {
            while (!stack.empty() && stack.back().ev->ts + stack.back().ev->dur <= ts + 1e-9) {
                const Frame f = stack.back();
                stack.pop_back();
                const double self = std::max(0.0, f.ev->dur - f.child_time);
                if (!f.ev->is_wrapper) {
                    auto& row = out[f.ev->category];
                    ++row.count;
                    row.cpu_time_us += self;
                }
                if (!stack.empty())
                    stack.back().child_time += f.ev->dur;
            }
        };
        for (const auto* ev : events) {
            close_frames_before(ev->ts);
            stack.push_back({ev, 0.0});
        }
        close_frames_before(1e300);
    }

    // GPU time and exposed GPU time per category.
    std::map<dev::OpCategory, std::vector<sim::Interval>> by_cat;
    for (const auto& k : kernels_)
        by_cat[k.category].push_back({k.ts, k.ts + k.dur});
    for (const auto& k : kernels_)
        out[k.category].gpu_time_us += k.dur;
    for (const auto& [cat, targets] : by_cat) {
        std::vector<sim::Interval> others;
        for (const auto& [other_cat, ivs] : by_cat) {
            if (other_cat != cat)
                others.insert(others.end(), ivs.begin(), ivs.end());
        }
        out[cat].exposed_gpu_time_us = sim::total_exposed_time(targets, others);
    }
    return out;
}

std::vector<std::pair<std::string, double>>
ProfilerTrace::top_kernels_by_time(std::size_t k) const
{
    std::unordered_map<std::string, double> by_name;
    for (const auto& ev : kernels_)
        by_name[ev.name] += ev.dur;
    std::vector<std::pair<std::string, double>> sorted(by_name.begin(), by_name.end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second)
            return a.second > b.second;
        return a.first < b.first;
    });
    if (sorted.size() > k)
        sorted.resize(k);
    return sorted;
}

Json
ProfilerTrace::to_chrome_trace() const
{
    Json events = Json::array();
    for (const auto& e : cpu_ops_) {
        Json ev = Json::object();
        ev.set("ph", Json("X"));
        ev.set("name", Json(e.name));
        ev.set("cat", Json(e.is_wrapper ? "user_annotation" : "cpu_op"));
        ev.set("pid", Json(static_cast<int64_t>(1)));
        ev.set("tid", Json(static_cast<int64_t>(e.tid)));
        ev.set("ts", Json(e.ts));
        ev.set("dur", Json(e.dur));
        Json args = Json::object();
        args.set("node_id", Json(e.node_id));
        args.set("category", Json(dev::to_string(e.category)));
        ev.set("args", std::move(args));
        events.push_back(std::move(ev));
    }
    for (const auto& k : kernels_) {
        Json ev = Json::object();
        ev.set("ph", Json("X"));
        ev.set("name", Json(k.name));
        ev.set("cat", Json("kernel"));
        ev.set("pid", Json(static_cast<int64_t>(0)));
        ev.set("tid", Json(static_cast<int64_t>(k.stream)));
        ev.set("ts", Json(k.ts));
        ev.set("dur", Json(k.dur));
        Json args = Json::object();
        args.set("correlation", Json(k.correlation));
        args.set("stream", Json(static_cast<int64_t>(k.stream)));
        args.set("category", Json(dev::to_string(k.category)));
        ev.set("args", std::move(args));
        events.push_back(std::move(ev));
    }
    Json doc = Json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", Json("ms"));
    return doc;
}

void
ProfilerTrace::save_chrome_trace(const std::string& path) const
{
    to_chrome_trace().dump_file(path);
}

namespace {

Json
micro_to_json(const dev::MicroMetrics& m)
{
    Json j = Json::object();
    j.set("ipc", Json(m.ipc));
    j.set("l1", Json(m.l1_hit_rate));
    j.set("l2", Json(m.l2_hit_rate));
    j.set("sm", Json(m.sm_throughput));
    return j;
}

dev::MicroMetrics
micro_from_json(const Json& j)
{
    dev::MicroMetrics m;
    m.ipc = j.get_double("ipc", 0.0);
    m.l1_hit_rate = j.get_double("l1", 0.0);
    m.l2_hit_rate = j.get_double("l2", 0.0);
    m.sm_throughput = j.get_double("sm", 0.0);
    return m;
}

dev::OpCategory
category_from_name(const std::string& s)
{
    if (s == "ATen") return dev::OpCategory::kATen;
    if (s == "Comms") return dev::OpCategory::kComm;
    if (s == "Fused") return dev::OpCategory::kFused;
    if (s == "Custom") return dev::OpCategory::kCustom;
    return dev::OpCategory::kOther;
}

} // namespace

Json
ProfilerTrace::to_json() const
{
    Json cpu = Json::array();
    for (const auto& e : cpu_ops_) {
        Json j = Json::object();
        j.set("name", Json(e.name));
        j.set("tid", Json(static_cast<int64_t>(e.tid)));
        j.set("ts", Json(e.ts));
        j.set("dur", Json(e.dur));
        j.set("node_id", Json(e.node_id));
        j.set("category", Json(dev::to_string(e.category)));
        j.set("wrapper", Json(e.is_wrapper));
        cpu.push_back(std::move(j));
    }
    Json ker = Json::array();
    for (const auto& k : kernels_) {
        Json j = Json::object();
        j.set("name", Json(k.name));
        j.set("stream", Json(static_cast<int64_t>(k.stream)));
        j.set("ts", Json(k.ts));
        j.set("dur", Json(k.dur));
        j.set("correlation", Json(k.correlation));
        j.set("category", Json(dev::to_string(k.category)));
        j.set("kind", Json(dev::to_string(k.kind)));
        j.set("flops", Json(k.flops));
        j.set("bytes", Json(k.bytes));
        j.set("micro", micro_to_json(k.micro));
        ker.push_back(std::move(j));
    }
    Json doc = Json::object();
    doc.set("cpu_ops", std::move(cpu));
    doc.set("kernels", std::move(ker));
    return doc;
}

ProfilerTrace
ProfilerTrace::from_json(const Json& j)
{
    ProfilerTrace t;
    for (const auto& e : j.at("cpu_ops").as_array()) {
        CpuOpEvent ev;
        ev.name = e.at("name").as_string();
        ev.tid = static_cast<int>(e.get_int("tid", 1));
        ev.ts = e.get_double("ts", 0.0);
        ev.dur = e.get_double("dur", 0.0);
        ev.node_id = e.get_int("node_id", -1);
        ev.category = category_from_name(e.get_string("category", "ATen"));
        ev.is_wrapper = e.get_bool("wrapper", false);
        t.add_cpu_op(std::move(ev));
    }
    for (const auto& e : j.at("kernels").as_array()) {
        KernelEvent ev;
        ev.name = e.at("name").as_string();
        ev.stream = static_cast<int>(e.get_int("stream", 0));
        ev.ts = e.get_double("ts", 0.0);
        ev.dur = e.get_double("dur", 0.0);
        ev.correlation = e.get_int("correlation", -1);
        ev.category = category_from_name(e.get_string("category", "ATen"));
        ev.flops = e.get_double("flops", 0.0);
        ev.bytes = e.get_double("bytes", 0.0);
        if (const Json* m = e.find("micro"))
            ev.micro = micro_from_json(*m);
        t.add_kernel(std::move(ev));
    }
    return t;
}

void
ProfilerSession::record_cpu_op(CpuOpEvent ev)
{
    if (active_)
        trace_.add_cpu_op(std::move(ev));
}

void
ProfilerSession::record_kernel(KernelEvent ev)
{
    if (active_)
        trace_.add_kernel(std::move(ev));
}

} // namespace mystique::prof
