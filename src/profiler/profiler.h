#pragma once

/// @file
/// Profiler trace container, session, and timeline analysis.

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/json.h"
#include "profiler/events.h"

namespace mystique::prof {

/// Aggregate timing by operator category (drives Figure 2).
struct CategoryBreakdown {
    int64_t count = 0;
    double cpu_time_us = 0.0;
    double gpu_time_us = 0.0;
    double exposed_gpu_time_us = 0.0;
};

/// A complete per-process profiler trace.
class ProfilerTrace {
  public:
    ProfilerTrace() = default;
    ProfilerTrace(const ProfilerTrace& other);
    ProfilerTrace(ProfilerTrace&& other) noexcept;
    ProfilerTrace& operator=(const ProfilerTrace& other);
    ProfilerTrace& operator=(ProfilerTrace&& other) noexcept;

    void add_cpu_op(CpuOpEvent ev) { cpu_ops_.push_back(std::move(ev)); }
    void add_kernel(KernelEvent ev)
    {
        kernels_.push_back(std::move(ev));
        rfp_valid_.store(false, std::memory_order_release);
    }

    const std::vector<CpuOpEvent>& cpu_ops() const { return cpu_ops_; }
    const std::vector<KernelEvent>& kernels() const { return kernels_; }

    /// Wall-clock span of all activity (first start to last end).
    sim::Interval span() const;

    /// Kernels launched by a given ET node.
    std::vector<const KernelEvent*> kernels_for_node(int64_t node_id) const;

    /// Stream(s) used by a given ET node's kernels, deduplicated in launch
    /// order — the op→stream mapping of §4.5.
    std::vector<int> streams_for_node(int64_t node_id) const;

    /// Per-category operator counts, CPU time, GPU time, and *exposed* GPU
    /// time (portion not overlapped by kernels of other categories), as in
    /// Figure 2.  CPU time counts only operator nodes (wrappers excluded)
    /// and excludes double-counting of nested ops via self-time attribution.
    std::map<dev::OpCategory, CategoryBreakdown> category_breakdown() const;

    /// Total device time per kernel name, descending — Figure 6's "top-10
    /// kernels by runtime" selection.
    std::vector<std::pair<std::string, double>> top_kernels_by_time(std::size_t k) const;

    /// Chrome-trace ("chrome://tracing") JSON export, viewable alongside the
    /// paper's Figures 4 and 9.
    Json to_chrome_trace() const;
    void save_chrome_trace(const std::string& path) const;

    /// Structured (lossless) serialization.
    Json to_json() const;
    static ProfilerTrace from_json(const Json& j);

    /// Stable hash over the kernel fields that determine replay *behavior*:
    /// the per-kernel (correlation, stream) pairs in launch order — the
    /// op→stream mapping of §4.5.  Two profiler traces with equal replay
    /// fingerprints produce plans with identical stream assignments, so this
    /// is the PlanCache's prof key component.  Timestamps and durations are
    /// deliberately excluded: they carry per-rank simulation jitter that
    /// never matches across equivalent runs, and they only feed the plan's
    /// *coverage statistics*, which are representative-level by the §8.2
    /// grouping semantics anyway.  Lazily computed and cached (OpIdCache
    /// idempotent-atomic pattern), invalidated by add_kernel; cpu-op events
    /// are not hashed because plan building never reads them.
    uint64_t replay_fingerprint() const;

  private:
    std::vector<CpuOpEvent> cpu_ops_;
    std::vector<KernelEvent> kernels_;

    mutable std::atomic<bool> rfp_valid_{false};
    mutable std::atomic<uint64_t> rfp_{0};
};

/// Active recording handle attached to a Session (torch.profiler.profile).
class ProfilerSession {
  public:
    void start() { active_ = true; trace_ = ProfilerTrace{}; }
    void stop() { active_ = false; }
    bool active() const { return active_; }

    void record_cpu_op(CpuOpEvent ev);
    void record_kernel(KernelEvent ev);

    const ProfilerTrace& trace() const { return trace_; }
    ProfilerTrace take_trace() { return std::move(trace_); }

  private:
    bool active_ = false;
    ProfilerTrace trace_;
};

} // namespace mystique::prof
