#pragma once

/// @file
/// Operator selection (§4.2) and coverage accounting (§6.3).
///
/// Traversing nodes in execution order: the first *operator* node on any
/// root-to-leaf path is the replay target; its children are redundant
/// (aten::linear subsumes aten::t / aten::addmm).  Wrapper nodes — profiler
/// annotations and autograd frames — are transparent: selection descends
/// through them and replays their underlying operators (Figure 4's "Replay
/// targets").

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/supported_ops.h"
#include "et/trace.h"
#include "profiler/profiler.h"

namespace mystique::core {

/// Selection filters (use cases of §7).
struct SelectionFilter {
    /// Replay only the subtree under the wrapper with this name (§7.1),
    /// e.g. "## forward:z ##".
    std::optional<std::string> subtrace_root;
    /// Replay only operators of this category (§7.1, e.g. comms-only).
    std::optional<dev::OpCategory> only_category;
};

/// One selected replay target.
struct SelectedOp {
    int64_t node_id = -1;
    bool supported = false;
    /// Interned op identity, resolved once during selection (kInvalidOpId
    /// for ops absent from the intern table, e.g. foreign custom ops).
    OpId op_id = kInvalidOpId;
};

/// Selection outcome plus coverage bookkeeping.
struct Selection {
    std::vector<SelectedOp> ops;
    /// IDs of every node in a selected-op subtree, keyed by the selected root
    /// (used for stream assignment and time attribution).
    std::map<int64_t, std::vector<int64_t>> subtree_ids;

    int64_t total_selected() const { return static_cast<int64_t>(ops.size()); }
    int64_t total_supported() const;
};

/// Runs selection over a trace.
Selection select_ops(const et::ExecutionTrace& trace, const CustomOpRegistry& custom,
                     const SelectionFilter& filter = {});

/// Coverage report (Table 3 row).
struct CoverageStats {
    int64_t selected_ops = 0;
    int64_t supported_ops = 0;
    double count_fraction = 1.0; ///< supported / selected
    double time_fraction = 1.0;  ///< supported kernel time / total kernel time
    /// Unsupported op occurrence counts by name.
    std::map<std::string, int64_t> unsupported_by_name;
    /// Total device time of unsupported ops' kernels (us).
    double unsupported_kernel_us = 0.0;
    /// Exposed (non-overlapped) device time of unsupported ops' kernels (us);
    /// subtract from the original e2e for Table 4's calibrated baseline.
    double unsupported_exposed_us = 0.0;
};

/// Computes coverage for a selection; @p prof may be null (then time-based
/// fields fall back to count-based values).
CoverageStats coverage(const et::ExecutionTrace& trace, const Selection& sel,
                       const prof::ProfilerTrace* prof);

} // namespace mystique::core
