#pragma once

/// @file
/// Content-addressed on-disk replay-plan store — the PlanCache's second tier.
///
/// Repeated sweeps of a stable trace database across *process restarts* used
/// to pay full plan builds for byte-identical traces; the store makes them a
/// parse instead.  Each entry is one JSON file named after the full PlanKey
/// fingerprint tuple, containing the key and `ReplayPlan::to_json()`.
/// Deserialization reuses `ReplayPlan::from_json` — the same loader the
/// benchmark-package import path in codegen uses — against the *caller's*
/// trace: a disk fetch only ever happens inside `PlanCache::get_or_build`,
/// whose key already pins the trace's structural fingerprint, so the trace
/// the plan must bind to is the one in hand, verified by construction.
/// Entries therefore stay plan-sized (no embedded trace copy), and a disk
/// hit costs one parse plus a compile of each *distinct* recorded IR text —
/// never a selection + coverage + reconstruction pass.
///
/// ## Durability contract
///
/// - **Atomic publication:** entries are written via temp-file + rename
///   (`common/fs_util.h`), so a reader never sees a torn file — concurrent
///   writers of the same key (two processes building the same plan) race
///   benignly, last-complete-rename wins, both renames publish valid bytes.
/// - **Quarantine, never crash:** a corrupt, truncated, zero-byte,
///   stale-schema, wrong-key, or kind-drifted entry is renamed `<entry>.bad`
///   and reported as a miss; the caller rebuilds (and re-persists) the plan.
///   Disk rot can cost a rebuild, never a wrong plan.
/// - **Addressing is the whole trust model:** the file name and the embedded
///   key both carry every fingerprint, and load() verifies embedded key ==
///   requested key == deserialized plan's key, while the requested key's
///   `trace_fp` was derived from the caller's actual trace — a swapped or
///   hand-edited entry cannot impersonate another plan.

#include <memory>
#include <string>

#include "core/replay_plan.h"

namespace mystique::core {

/// Schema version of a store entry; bumped on incompatible layout changes.
/// load() quarantines entries from other versions (stale-schema rot).
/// v2: plan documents carry optimizer output ("fused_groups" + "optimizer",
/// config "opt_level") — v1 entries quarantine-and-rebuild.
/// v3: plan documents carry the executor dependency graph ("dep_graph",
/// config "async_level") — v2 entries quarantine-and-rebuild.
inline constexpr int kPlanStoreFormatVersion = 3;

class PlanStore {
  public:
    /// @param directory  created lazily on first store(); load() from a
    ///        missing directory is simply a miss.
    explicit PlanStore(std::string directory);

    const std::string& directory() const { return dir_; }

    /// The entry file for @p key: `plan-<trace>-<supported>-<config>-<prof>-
    /// <p|n>.json`, every component a zero-padded hex fingerprint.
    /// @p key must be full (partial one-shot keys are never persisted).
    std::string entry_path(const PlanKey& key) const;

    /// Fetches @p key's plan from disk, binding it to @p trace (which must
    /// be the trace @p key was computed from; get_or_build guarantees this).
    /// The restored plan *shares* @p trace — no deep copy on the hit path.
    /// Returns nullptr on a clean miss (no entry).  Invalid entries of every
    /// flavor are quarantined to `.bad` and reported as a miss — this never
    /// throws and never returns a plan whose identity differs from @p key.
    std::shared_ptr<const ReplayPlan>
    load(const PlanKey& key, std::shared_ptr<const et::ExecutionTrace> trace) const;

    /// Serializes @p plan (which must carry the full key it is stored
    /// under) and atomically publishes the entry, creating the directory if
    /// needed.  Returns false on I/O failure (disk full, unwritable dir)
    /// instead of throwing — persistence is an optimization, not a
    /// correctness requirement.
    bool store(const ReplayPlan& plan) const;

  private:
    std::string dir_;
};

} // namespace mystique::core
