#pragma once

/// @file
/// Batched multi-trace replay over a trace database (§8.2).
///
/// The production pipeline of Figure 3 at fleet scale: the ET analyzer groups
/// a database's traces by operator-mix fingerprint; the driver then replays
/// one *representative* per group — fetching each group's plan through the
/// PlanCache, so equivalent groups across sweeps (and repeated sweeps of the
/// same database) never rebuild — and weights each group's replayed time by
/// its population weight.  This is the "generate once, reuse across the
/// population" amortization: session setup, operator registration and plan
/// builds are paid once per distinct group, not once per trace.
///
/// ## Scaling a sweep
///
/// The driver owns a pool of `parallelism` workers, each a Session +
/// CommFabric pair constructed once and reused across groups (and across
/// sweeps).  Groups are striped deterministically across workers (group i →
/// worker i % K) on a shared ThreadPool; plans are fetched through the
/// thread-safe PlanCache, so workers hitting the same fingerprint share one
/// build.  Before each group the worker session is reset_for_replay()ed —
/// clocks to zero, RNG reseeded, device cleared — so every group's replay is
/// a pure function of (plan, config) and the merged results are bit-identical
/// to the sequential (parallelism=1) sweep: per-group results are merged in
/// group order, making the population-weighted mean's summation order fixed.
/// The reset deliberately keeps each session's StorageArena, so successive
/// groups on a worker recycle tensor buffers instead of hitting the heap;
/// set MYST_LOG=1 to print arena + plan-cache counters after each sweep.
///
/// ## Surviving a sweep (resilience layer)
///
/// A fleet database is never uniformly healthy, so `replay_groups` is
/// fault-isolating rather than fail-fast: one group's failure records a
/// GroupStatus (`ok` / `failed` / `timed_out` / `quarantined` / `skipped`)
/// with its error text, and the sweep carries on — the weighted mean is
/// computed over the groups that succeeded, with `population_covered_ok`
/// reporting how much of the fleet they represent.  On top of isolation:
///
///  - **retry with deterministic exponential backoff** — a failed group is
///    re-attempted up to `max_retries` times on a freshly
///    reset_for_replay()ed session, sleeping `backoff_ms << (attempt-1)`
///    between attempts (knobs: set_max_retries / set_backoff_ms, defaulting
///    from MYST_SWEEP_RETRIES / MYST_SWEEP_BACKOFF_MS, re-read per sweep);
///  - **deadlines** — a per-group soft deadline (set_group_deadline_ms /
///    MYST_SWEEP_GROUP_DEADLINE_MS) enforced by a cooperative CancelToken the
///    Replayer polls between ops (status `timed_out`; never retried), plus a
///    sweep-level deadline (set_sweep_deadline_ms) that marks groups it
///    could not start as `skipped`;
///  - **journal + quarantine** — with a journal directory configured
///    (set_journal_dir / MYST_SWEEP_JOURNAL), per-group outcomes persist to
///    an append-only JSONL journal (core/sweep_journal.h): a restarted sweep
///    restores completed groups bit-identically instead of replaying them,
///    and fingerprints with repeated recorded failures are `quarantined`
///    (skipped) until a later success — e.g. a set_probe_quarantined(true)
///    probe attempt — heals them.
///
/// Contract: with nothing failing, every knob at its default, and any
/// parallelism level, results are bit-identical to the fail-fast driver this
/// layer replaced; the resilience path never substitutes a wrong plan and
/// never tears the journal (tests/core/replay_driver_test.cpp, the
/// differential oracle's sweep checks, and `mystique-fuzz --churn` over the
/// `sweep.group` / `journal.write` / `journal.load` fault sites).
///
/// Layering note: TraceDatabase lives in et/ (below core/), so the database
/// sweep entry point lives here as ReplayDriver::replay_groups(db) rather
/// than as a TraceDatabase method.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/plan_cache.h"
#include "core/replayer.h"
#include "core/sweep_journal.h"
#include "et/trace_db.h"
#include "framework/storage_arena.h"

namespace mystique::core {

/// One group's replay outcome.
struct GroupReplayResult {
    et::TraceGroup group;
    /// Database index of the replayed representative (group.members.front()).
    std::size_t representative = 0;
    /// Valid when status == kOk; default-initialized otherwise.  For a group
    /// restored from the journal, iter_us / mean_iter_us are the recorded
    /// bit-exact timings and the remaining fields are default (the journal
    /// stores outcomes, not profiler traces).
    ReplayResult result;
    GroupStatus status = GroupStatus::kOk;
    /// Error text of the last attempt (failed / timed_out), or of the
    /// journaled failure that quarantined the group.  Empty for ok/skipped.
    std::string error;
    /// Replay attempts consumed (1 = first try succeeded; 0 = never
    /// attempted: restored, quarantined, or skipped).
    uint32_t attempts = 0;
    /// True when the result was restored from the sweep journal.
    bool from_journal = false;
};

/// Whole-database sweep outcome.
struct DatabaseReplayResult {
    std::vector<GroupReplayResult> groups;
    /// Population-weighted mean iteration time over the *succeeded* groups:
    /// Σ(weight·mean) / Σ(weight) — the fleet-level per-iteration estimate.
    double weighted_mean_iter_us = 0.0;
    /// Fraction of the database population the sweep's group selection
    /// covers (1.0 when every group was selected; less under top_k
    /// truncation) — includes groups that subsequently failed.
    double population_covered = 0.0;
    /// Fraction of the database population covered by groups that finished
    /// ok (replayed or journal-restored).  Equal to population_covered on a
    /// fully healthy sweep.
    double population_covered_ok = 0.0;
    /// Per-status group counts (sum == groups.size()).
    std::size_t groups_ok = 0;
    std::size_t groups_failed = 0;
    std::size_t groups_timed_out = 0;
    std::size_t groups_quarantined = 0;
    std::size_t groups_skipped = 0;
    /// Retry/backoff accounting: re-attempts beyond each group's first, and
    /// total milliseconds slept backing off before them.
    uint64_t retries = 0;
    uint64_t backoff_ms = 0;
    /// Groups restored from the sweep journal instead of replayed.
    std::size_t journal_resumed = 0;
    /// Journal appends that failed to publish (best-effort; the sweep
    /// continues, a future resume just re-replays those groups).
    std::size_t journal_write_failures = 0;
    /// Plan-cache counters observed after the sweep — with a disk tier
    /// configured (MYST_PLAN_CACHE_DIR), disk_hits/disk_misses/builds/
    /// writebacks show how much of the sweep was served across processes.
    PlanCacheStats cache;
    /// Storage-arena counters aggregated over the worker sessions after the
    /// sweep (recycling across iterations and groups shows up as hits).
    /// Counters and byte totals are summed; peak_bytes_outstanding is the
    /// max over workers (per-worker peaks occur at different times).
    fw::StorageArenaStats arena;
};

/// Sweeps a trace database: analyze → one cached plan per group → replay
/// representatives on pooled worker sessions → weight by population.
class ReplayDriver {
  public:
    /// @param cache        defaults to the process-wide cache; tests inject one.
    /// @param parallelism  worker sessions replaying groups concurrently;
    ///        1 (default) sweeps sequentially on a single reused session.
    explicit ReplayDriver(ReplayConfig cfg, PlanCache* cache = &PlanCache::instance(),
                          std::size_t parallelism = 1);
    ~ReplayDriver();

    ReplayDriver(const ReplayDriver&) = delete;
    ReplayDriver& operator=(const ReplayDriver&) = delete;

    /// Changes the worker count for subsequent sweeps.  Existing worker
    /// sessions (and their arenas) are kept; 0 is clamped to 1.
    void set_parallelism(std::size_t parallelism);
    std::size_t parallelism() const { return parallelism_; }

    /// Resilience knobs.  Each defaults from its environment variable
    /// (re-read at every sweep, like the cache knobs) until set explicitly;
    /// pass nullopt to return a knob to environment control.
    /// Retries beyond the first attempt per failed group
    /// (MYST_SWEEP_RETRIES; default 0).  Timeouts are never retried.
    void set_max_retries(std::optional<int> retries) { max_retries_ = retries; }
    /// Base backoff in ms before retry attempt n sleeps
    /// `backoff << (n-1)` (MYST_SWEEP_BACKOFF_MS; default 10).
    void set_backoff_ms(std::optional<uint64_t> ms) { backoff_ms_ = ms; }
    /// Per-group soft deadline in ms, polled between replayed ops
    /// (MYST_SWEEP_GROUP_DEADLINE_MS; default none).  0 = already expired.
    void set_group_deadline_ms(std::optional<uint64_t> ms) { group_deadline_ms_ = ms; }
    /// Sweep-level deadline in ms: groups not yet *started* when it passes
    /// are marked skipped.  Programmatic only; default none.
    void set_sweep_deadline_ms(std::optional<uint64_t> ms) { sweep_deadline_ms_ = ms; }
    /// Journal directory for crash-safe resume + quarantine
    /// (MYST_SWEEP_JOURNAL; default off).  "" disables regardless of the
    /// environment.
    void set_journal_dir(std::optional<std::string> dir)
    {
        journal_dir_ = std::move(dir);
    }
    /// When true, quarantined groups get one probe attempt (no retries)
    /// instead of being skipped — the heal path.  Default false.
    void set_probe_quarantined(bool probe) { probe_quarantined_ = probe; }

    /// Replays the @p top_k most-populous groups (all groups by default).
    /// Results are identical for every parallelism level.  Never throws for
    /// a per-group failure — see the GroupStatus model above (configuration
    /// errors, e.g. a malformed MYST_FAULT spec, still throw).
    /// @param profs  optional per-trace profiler traces, parallel to the
    ///        database's indices; null entries (or a null vector) build
    ///        plans without stream assignments.
    DatabaseReplayResult
    replay_groups(const et::TraceDatabase& db,
                  std::size_t top_k = std::numeric_limits<std::size_t>::max(),
                  const std::vector<const prof::ProfilerTrace*>* profs = nullptr);

  private:
    struct Worker; // Session + CommFabric, defined in the .cpp
    struct ResolvedResilience; // per-sweep knob snapshot, defined in the .cpp

    Worker& ensure_worker(std::size_t index);
    GroupReplayResult replay_one(Worker& worker, const et::TraceDatabase& db,
                                 const et::TraceGroup& group,
                                 const std::vector<const prof::ProfilerTrace*>* profs,
                                 const CancelToken* cancel);
    /// The resilient wrapper around replay_one: journal resume, quarantine,
    /// deadlines, retry/backoff, status recording.  Never throws; shared
    /// counters live in @p res as atomics (workers call this concurrently).
    GroupReplayResult run_group_resilient(Worker& worker, const et::TraceDatabase& db,
                                          const et::TraceGroup& group,
                                          const std::vector<const prof::ProfilerTrace*>* profs,
                                          ResolvedResilience& res);
    /// Snapshots the resilience knobs (setters first, environment second)
    /// and opens/loads the journal for one sweep over @p groups.
    void resolve_resilience(const et::TraceDatabase& db,
                            const std::vector<et::TraceGroup>& groups,
                            ResolvedResilience& res) const;

    ReplayConfig cfg_;
    PlanCache* cache_;
    std::size_t parallelism_;
    std::optional<int> max_retries_;
    std::optional<uint64_t> backoff_ms_;
    std::optional<uint64_t> group_deadline_ms_;
    std::optional<uint64_t> sweep_deadline_ms_;
    std::optional<std::string> journal_dir_;
    bool probe_quarantined_ = false;
    /// Workers persist across sweeps: session construction and arena warmth
    /// are paid once per driver, not once per sweep.
    std::vector<std::unique_ptr<Worker>> workers_;
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace mystique::core
