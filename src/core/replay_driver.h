#pragma once

/// @file
/// Batched multi-trace replay over a trace database (§8.2).
///
/// The production pipeline of Figure 3 at fleet scale: the ET analyzer groups
/// a database's traces by operator-mix fingerprint; the driver then replays
/// one *representative* per group — fetching each group's plan through the
/// PlanCache, so equivalent groups across sweeps (and repeated sweeps of the
/// same database) never rebuild — on a single shared session/fabric, and
/// weights each group's replayed time by its population weight.  This is the
/// "generate once, reuse across the population" amortization: session setup,
/// operator registration and plan builds are paid once per distinct group,
/// not once per trace.
///
/// Layering note: TraceDatabase lives in et/ (below core/), so the database
/// sweep entry point lives here as ReplayDriver::replay_groups(db) rather
/// than as a TraceDatabase method.

#include <cstddef>
#include <limits>
#include <vector>

#include "core/plan_cache.h"
#include "core/replayer.h"
#include "et/trace_db.h"

namespace mystique::core {

/// One group's replay outcome.
struct GroupReplayResult {
    et::TraceGroup group;
    /// Database index of the replayed representative (group.members.front()).
    std::size_t representative = 0;
    ReplayResult result;
};

/// Whole-database sweep outcome.
struct DatabaseReplayResult {
    std::vector<GroupReplayResult> groups;
    /// Population-weighted mean iteration time over the replayed groups:
    /// Σ(weight·mean) / Σ(weight) — the fleet-level per-iteration estimate.
    double weighted_mean_iter_us = 0.0;
    /// Fraction of the database population the replayed groups cover
    /// (1.0 when every group was replayed; less under top_k truncation).
    double population_covered = 0.0;
    /// Plan-cache counters observed after the sweep.
    PlanCacheStats cache;
};

/// Sweeps a trace database: analyze → one cached plan per group → replay
/// representatives on one shared session/fabric → weight by population.
class ReplayDriver {
  public:
    /// @param cache  defaults to the process-wide cache; tests inject one.
    explicit ReplayDriver(ReplayConfig cfg, PlanCache* cache = &PlanCache::instance());

    /// Replays the @p top_k most-populous groups (all groups by default).
    /// @param profs  optional per-trace profiler traces, parallel to the
    ///        database's indices; null entries (or a null vector) build
    ///        plans without stream assignments.
    DatabaseReplayResult
    replay_groups(const et::TraceDatabase& db,
                  std::size_t top_k = std::numeric_limits<std::size_t>::max(),
                  const std::vector<const prof::ProfilerTrace*>* profs = nullptr);

  private:
    ReplayConfig cfg_;
    PlanCache* cache_;
};

} // namespace mystique::core
