#pragma once

/// @file
/// Batched multi-trace replay over a trace database (§8.2).
///
/// The production pipeline of Figure 3 at fleet scale: the ET analyzer groups
/// a database's traces by operator-mix fingerprint; the driver then replays
/// one *representative* per group — fetching each group's plan through the
/// PlanCache, so equivalent groups across sweeps (and repeated sweeps of the
/// same database) never rebuild — and weights each group's replayed time by
/// its population weight.  This is the "generate once, reuse across the
/// population" amortization: session setup, operator registration and plan
/// builds are paid once per distinct group, not once per trace.
///
/// ## Scaling a sweep
///
/// The driver owns a pool of `parallelism` workers, each a Session +
/// CommFabric pair constructed once and reused across groups (and across
/// sweeps).  Groups are striped deterministically across workers (group i →
/// worker i % K) on a shared ThreadPool; plans are fetched through the
/// thread-safe PlanCache, so workers hitting the same fingerprint share one
/// build.  Before each group the worker session is reset_for_replay()ed —
/// clocks to zero, RNG reseeded, device cleared — so every group's replay is
/// a pure function of (plan, config) and the merged results are bit-identical
/// to the sequential (parallelism=1) sweep: per-group results are merged in
/// group order, making the population-weighted mean's summation order fixed.
/// The reset deliberately keeps each session's StorageArena, so successive
/// groups on a worker recycle tensor buffers instead of hitting the heap;
/// set MYST_LOG=1 to print arena + plan-cache counters after each sweep.
///
/// Layering note: TraceDatabase lives in et/ (below core/), so the database
/// sweep entry point lives here as ReplayDriver::replay_groups(db) rather
/// than as a TraceDatabase method.

#include <cstddef>
#include <limits>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/plan_cache.h"
#include "core/replayer.h"
#include "et/trace_db.h"
#include "framework/storage_arena.h"

namespace mystique::core {

/// One group's replay outcome.
struct GroupReplayResult {
    et::TraceGroup group;
    /// Database index of the replayed representative (group.members.front()).
    std::size_t representative = 0;
    ReplayResult result;
};

/// Whole-database sweep outcome.
struct DatabaseReplayResult {
    std::vector<GroupReplayResult> groups;
    /// Population-weighted mean iteration time over the replayed groups:
    /// Σ(weight·mean) / Σ(weight) — the fleet-level per-iteration estimate.
    double weighted_mean_iter_us = 0.0;
    /// Fraction of the database population the replayed groups cover
    /// (1.0 when every group was replayed; less under top_k truncation).
    double population_covered = 0.0;
    /// Plan-cache counters observed after the sweep — with a disk tier
    /// configured (MYST_PLAN_CACHE_DIR), disk_hits/disk_misses/builds/
    /// writebacks show how much of the sweep was served across processes.
    PlanCacheStats cache;
    /// Storage-arena counters aggregated over the worker sessions after the
    /// sweep (recycling across iterations and groups shows up as hits).
    /// Counters and byte totals are summed; peak_bytes_outstanding is the
    /// max over workers (per-worker peaks occur at different times).
    fw::StorageArenaStats arena;
};

/// Sweeps a trace database: analyze → one cached plan per group → replay
/// representatives on pooled worker sessions → weight by population.
class ReplayDriver {
  public:
    /// @param cache        defaults to the process-wide cache; tests inject one.
    /// @param parallelism  worker sessions replaying groups concurrently;
    ///        1 (default) sweeps sequentially on a single reused session.
    explicit ReplayDriver(ReplayConfig cfg, PlanCache* cache = &PlanCache::instance(),
                          std::size_t parallelism = 1);
    ~ReplayDriver();

    ReplayDriver(const ReplayDriver&) = delete;
    ReplayDriver& operator=(const ReplayDriver&) = delete;

    /// Changes the worker count for subsequent sweeps.  Existing worker
    /// sessions (and their arenas) are kept; 0 is clamped to 1.
    void set_parallelism(std::size_t parallelism);
    std::size_t parallelism() const { return parallelism_; }

    /// Replays the @p top_k most-populous groups (all groups by default).
    /// Results are identical for every parallelism level.
    /// @param profs  optional per-trace profiler traces, parallel to the
    ///        database's indices; null entries (or a null vector) build
    ///        plans without stream assignments.
    DatabaseReplayResult
    replay_groups(const et::TraceDatabase& db,
                  std::size_t top_k = std::numeric_limits<std::size_t>::max(),
                  const std::vector<const prof::ProfilerTrace*>* profs = nullptr);

  private:
    struct Worker; // Session + CommFabric, defined in the .cpp

    Worker& ensure_worker(std::size_t index);
    GroupReplayResult replay_one(Worker& worker, const et::TraceDatabase& db,
                                 const et::TraceGroup& group,
                                 const std::vector<const prof::ProfilerTrace*>* profs);

    ReplayConfig cfg_;
    PlanCache* cache_;
    std::size_t parallelism_;
    /// Workers persist across sweeps: session construction and arena warmth
    /// are paid once per driver, not once per sweep.
    std::vector<std::unique_ptr<Worker>> workers_;
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace mystique::core
