#include "core/selection.h"

#include <unordered_map>
#include <unordered_set>

#include "common/error.h"

namespace mystique::core {

int64_t
Selection::total_supported() const
{
    int64_t n = 0;
    for (const auto& op : ops)
        n += op.supported ? 1 : 0;
    return n;
}

Selection
select_ops(const et::ExecutionTrace& trace, const CustomOpRegistry& custom,
           const SelectionFilter& filter)
{
    Selection out;
    std::unordered_map<int64_t, const et::Node*> by_id;
    for (const auto& n : trace.nodes())
        by_id[n.id] = &n;

    // Subtrace root: selection is confined to the wrapper's subtree.
    int64_t subtrace_root_id = -1;
    if (filter.subtrace_root.has_value()) {
        const et::Node* root = trace.find_by_name(*filter.subtrace_root);
        if (root == nullptr)
            MYST_THROW(ReplayError,
                       "subtrace root '" << *filter.subtrace_root << "' not found in trace");
        subtrace_root_id = root->id;
    }

    std::unordered_set<int64_t> selected_ids;
    auto has_selected_ancestor = [&](const et::Node& node) {
        int64_t p = node.parent;
        while (p >= 0) {
            if (selected_ids.count(p) != 0)
                return true;
            auto it = by_id.find(p);
            if (it == by_id.end())
                break;
            p = it->second->parent;
        }
        return false;
    };
    auto under_subtrace_root = [&](const et::Node& node) {
        if (subtrace_root_id < 0)
            return true;
        int64_t p = node.parent;
        while (p >= 0) {
            if (p == subtrace_root_id)
                return true;
            auto it = by_id.find(p);
            if (it == by_id.end())
                break;
            p = it->second->parent;
        }
        return false;
    };

    // One supported-set build per selection; per-node checks are then O(1)
    // OpId-mask probes (each node's name resolves through the intern table
    // at most once, cached in node.op_id).
    const SupportedSet supported = SupportedSet::build(custom);

    for (const auto& node : trace.nodes()) {
        if (!node.is_op())
            continue; // wrappers are transparent
        if (!under_subtrace_root(node))
            continue;
        if (has_selected_ancestor(node))
            continue; // redundant child of a replay target (§4.2)
        if (filter.only_category.has_value() && node.category != *filter.only_category)
            continue;
        selected_ids.insert(node.id);
        out.ops.push_back({node.id, is_replayable(node, supported), node.op_id.load()});
    }

    // Subtree membership for each selected root (selected node included).
    std::unordered_map<int64_t, int64_t> owner; // node id → selected root
    for (const auto& node : trace.nodes()) {
        if (selected_ids.count(node.id) != 0) {
            owner[node.id] = node.id;
        } else if (node.parent >= 0) {
            auto it = owner.find(node.parent);
            if (it != owner.end())
                owner[node.id] = it->second;
        }
    }
    for (const auto& [node_id, root_id] : owner)
        out.subtree_ids[root_id].push_back(node_id);
    for (auto& [root_id, ids] : out.subtree_ids)
        std::sort(ids.begin(), ids.end());
    return out;
}

CoverageStats
coverage(const et::ExecutionTrace& trace, const Selection& sel,
         const prof::ProfilerTrace* prof)
{
    CoverageStats stats;
    stats.selected_ops = sel.total_selected();
    stats.supported_ops = sel.total_supported();
    stats.count_fraction =
        stats.selected_ops > 0
            ? static_cast<double>(stats.supported_ops) / static_cast<double>(stats.selected_ops)
            : 1.0;

    // Accumulate by interned identity (unregistered ops get IDs on first
    // sight); names materialize only into the report map below.
    std::unordered_set<int64_t> unsupported_subtree;
    std::unordered_map<OpId, int64_t> unsupported_hist;
    for (const auto& op : sel.ops) {
        if (op.supported)
            continue;
        const et::Node* node = trace.find(op.node_id);
        MYST_CHECK(node != nullptr);
        OpId id = node->op_id.load();
        if (id == kInvalidOpId) {
            id = OpInterner::instance().intern(node->name);
            node->op_id.store(id);
        }
        ++unsupported_hist[id];
        auto it = sel.subtree_ids.find(op.node_id);
        if (it != sel.subtree_ids.end())
            unsupported_subtree.insert(it->second.begin(), it->second.end());
    }
    for (const auto& [id, count] : unsupported_hist)
        stats.unsupported_by_name[OpInterner::instance().name(id)] = count;

    if (prof == nullptr) {
        stats.time_fraction = stats.count_fraction;
        return stats;
    }

    double total_kernel_us = 0.0;
    double unsupported_us = 0.0;
    std::vector<sim::Interval> unsupported_ivs;
    std::vector<sim::Interval> supported_ivs;
    for (const auto& k : prof->kernels()) {
        total_kernel_us += k.dur;
        if (unsupported_subtree.count(k.correlation) != 0) {
            unsupported_us += k.dur;
            unsupported_ivs.push_back({k.ts, k.ts + k.dur});
        } else {
            supported_ivs.push_back({k.ts, k.ts + k.dur});
        }
    }
    stats.unsupported_kernel_us = unsupported_us;
    stats.unsupported_exposed_us = sim::total_exposed_time(unsupported_ivs, supported_ivs);
    stats.time_fraction =
        total_kernel_us > 0.0 ? 1.0 - unsupported_us / total_kernel_us : 1.0;
    return stats;
}

} // namespace mystique::core
