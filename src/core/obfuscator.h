#pragma once

/// @file
/// Trace obfuscation for IP protection (§8.4).
///
/// Production ETs leak model structure through custom-operator names and
/// user annotations.  The obfuscator rewrites a trace so it can be shared
/// with external vendors:
///   - wrapper/annotation names are anonymized ("annotation_k"),
///   - each IP-sensitive custom operator subtree is substituted with a
///     performance-equivalent public proxy block (obf::proxy) carrying the
///     subtree's measured flop/byte cost and the original output shapes,
///     preserving both the data-dependency structure and the performance
///     behaviour while hiding the implementation.
/// ATen and c10d operators are public API and are kept verbatim.

#include "et/trace.h"
#include "profiler/profiler.h"

namespace mystique::core {

struct ObfuscationOptions {
    /// Anonymize wrapper / record_function names.
    bool anonymize_annotations = true;
    /// Substitute custom ops with obf::proxy blocks.
    bool proxy_custom_ops = true;
};

/// Produces the obfuscated trace; @p prof supplies per-op kernel costs for
/// the proxies (must be the profiler trace of the same run).
et::ExecutionTrace obfuscate(const et::ExecutionTrace& trace,
                             const prof::ProfilerTrace& prof,
                             const ObfuscationOptions& opts = {});

} // namespace mystique::core
