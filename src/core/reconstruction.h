#pragma once

/// @file
/// Operator reconstruction (§4.3).
///
/// ATen operators are rebuilt from their recorded schema: schema string →
/// parsed FunctionSchema → generated TorchScript-style IR text (non-tensor
/// argument *values* baked in as prim::Constant nodes) → parse_ir →
/// CompilationUnit::create_function → callable.  Communication and custom
/// operators dispatch directly through the framework registry with their
/// recorded arguments (process groups are remapped by the replayer).
/// All reconstruction happens during replay initialization so the hot loop
/// only invokes prebuilt callables (§4.3.4).

#include <memory>
#include <optional>
#include <vector>

#include "core/tensor_manager.h"
#include "et/node.h"
#include "jit/ir.h"

namespace mystique::core {

/// One reconstructed replay target.
struct ReconstructedOp {
    enum class Kind {
        kCompiledIr, ///< ATen: execute through the compiled IR function
        kDirect,     ///< comm/custom: direct registry dispatch
        kSkipped,    ///< unsupported (fused / unregistered custom)
    };

    Kind kind = Kind::kSkipped;
    const et::Node* node = nullptr;
    const jit::Function* fn = nullptr; ///< valid for kCompiledIr
    /// Interned op identity, resolved once at plan-build time so the hot
    /// replay loop dispatches kDirect ops without any name lookup.
    OpId op_id = kInvalidOpId;
    /// Stream the op's kernels ran on originally (from the profiler trace).
    std::optional<int> stream;
    /// Generated IR text (kept for codegen and debugging).
    std::string ir_text;
    /// Index into the plan's fused_groups(), or -1 when the op executes
    /// standalone.  Set by the plan optimizer; members keep their kind (and
    /// thus their coverage accounting) — only execution is redirected.
    int fused_group = -1;
    /// True for the first member of its group: the hot loop executes the
    /// whole group there and skips the remaining members.
    bool fused_head = false;
};

/// Builds callables for selected nodes; owns the compilation unit.
class Reconstructor {
  public:
    Reconstructor() = default;

    /// Reconstructs one node (@p supported from the selection pass).
    ReconstructedOp reconstruct(const et::Node& node, bool supported);

    /// The reconstruction kind this process produces for (@p node,
    /// @p supported) — the single decision shared by reconstruct() and the
    /// plan-restore path (ReplayPlan::from_json), which uses it to detect
    /// registry drift against a document's recorded kinds.
    static ReconstructedOp::Kind decide_kind(const et::Node& node, bool supported)
    {
        if (!supported)
            return ReconstructedOp::Kind::kSkipped;
        if (node.category == dev::OpCategory::kComm ||
            node.category == dev::OpCategory::kCustom)
            return ReconstructedOp::Kind::kDirect;
        return ReconstructedOp::Kind::kCompiledIr;
    }

    /// Compiles an already-generated graph into this unit — the plan-restore
    /// path (ReplayPlan::from_json) parses recorded IR text directly instead
    /// of re-deriving it from schemas, and ops with identical IR share the
    /// resulting function.
    const jit::Function& create_function(const std::string& name, jit::Graph graph)
    {
        return cu_.create_function(name, std::move(graph));
    }

    const jit::CompilationUnit& compilation_unit() const { return cu_; }

  private:
    jit::CompilationUnit cu_;
};

/// Executes a reconstructed op: resolves tensor arguments through the tensor
/// manager, invokes the callable, and binds outputs back to their recorded
/// tensor IDs.  Returns false when the op was skipped.
bool execute_reconstructed(fw::Session& session, const ReconstructedOp& op,
                           TensorManager& tm);

} // namespace mystique::core
