#include "core/sweep_journal.h"

#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string_view>

#include "common/error.h"
#include "common/fault_injection.h"
#include "common/fs_util.h"
#include "common/json.h"
#include "common/logging.h"

namespace mystique::core {

namespace {

/// Floating-point journal fields travel as decimal strings of their IEEE-754
/// bit patterns (same rationale as the PlanKey fingerprints: JSON doubles
/// would round-trip through a formatter, and a restored weighted mean must be
/// *bit*-identical to the one the interrupted sweep would have produced).
uint64_t
double_to_bits(double v)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
bits_to_double(uint64_t bits)
{
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

uint64_t
u64_field(const Json& j, std::string_view key)
{
    const std::string& s = j.at(key).as_string();
    uint64_t v = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc() || ptr != s.data() + s.size())
        MYST_THROW(ParseError, "sweep journal: bad uint64 field '" << s << "'");
    return v;
}

Json
record_to_json(const SweepJournalRecord& rec)
{
    Json j = Json::object();
    j.set("v", Json(int64_t{1}));
    j.set("sweep", Json(std::to_string(rec.sweep_fp)));
    j.set("group", Json(std::to_string(rec.group_fp)));
    j.set("status", Json(to_string(rec.status)));
    j.set("attempts", Json(static_cast<int64_t>(rec.attempts)));
    j.set("weight_bits", Json(std::to_string(double_to_bits(rec.population_weight))));
    j.set("mean_bits", Json(std::to_string(double_to_bits(rec.mean_iter_us))));
    Json iters = Json::array();
    for (double it : rec.iter_us)
        iters.push_back(Json(std::to_string(double_to_bits(it))));
    j.set("iter_us_bits", std::move(iters));
    j.set("error", Json(rec.error));
    return j;
}

SweepJournalRecord
record_from_json(const Json& j)
{
    if (j.get_int("v", 0) != 1)
        MYST_THROW(ParseError, "sweep journal: unknown record version");
    SweepJournalRecord rec;
    rec.sweep_fp = u64_field(j, "sweep");
    rec.group_fp = u64_field(j, "group");
    rec.status = group_status_from_string(j.at("status").as_string());
    rec.attempts = static_cast<uint32_t>(j.get_int("attempts", 0));
    rec.population_weight = bits_to_double(u64_field(j, "weight_bits"));
    rec.mean_iter_us = bits_to_double(u64_field(j, "mean_bits"));
    for (const Json& it : j.at("iter_us_bits").as_array()) {
        uint64_t bits = 0;
        const std::string& s = it.as_string();
        const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), bits);
        if (ec != std::errc() || ptr != s.data() + s.size())
            MYST_THROW(ParseError, "sweep journal: bad iteration bits '" << s << "'");
        rec.iter_us.push_back(bits_to_double(bits));
    }
    rec.error = j.get_string("error", "");
    return rec;
}

} // namespace

const char*
to_string(GroupStatus status)
{
    switch (status) {
    case GroupStatus::kOk: return "ok";
    case GroupStatus::kFailed: return "failed";
    case GroupStatus::kTimedOut: return "timed_out";
    case GroupStatus::kQuarantined: return "quarantined";
    case GroupStatus::kSkipped: return "skipped";
    }
    return "unknown";
}

GroupStatus
group_status_from_string(const std::string& text)
{
    for (GroupStatus s : {GroupStatus::kOk, GroupStatus::kFailed, GroupStatus::kTimedOut,
                          GroupStatus::kQuarantined, GroupStatus::kSkipped}) {
        if (text == to_string(s))
            return s;
    }
    MYST_THROW(ParseError, "sweep journal: unknown group status '" << text << "'");
}

SweepJournal::SweepJournal(const std::string& dir)
    : path_((std::filesystem::path(dir) / "sweep_journal.jsonl").string())
{
}

std::size_t
SweepJournal::load()
{
    std::lock_guard<std::mutex> lock(mu_);
    records_.clear();

    std::string text;
    try {
        if (FaultInjection::instance().should_fail("journal.load"))
            MYST_THROW(ParseError, "injected fault: sweep journal unreadable");
        if (!std::filesystem::exists(path_))
            return 0; // no journal yet: a fresh sweep, not an error
        text = read_file(path_);
    } catch (const std::exception& e) {
        MYST_WARN("sweep journal '" << path_ << "' unreadable, starting fresh: "
                                    << e.what());
        return 0;
    }

    std::size_t bad_lines = 0;
    std::size_t begin = 0;
    while (begin < text.size()) {
        std::size_t end = text.find('\n', begin);
        if (end == std::string::npos)
            end = text.size();
        const std::string_view line(text.data() + begin, end - begin);
        begin = end + 1;
        if (line.empty())
            continue;
        try {
            records_.push_back(record_from_json(Json::parse(line)));
        } catch (const std::exception&) {
            // A torn or hand-damaged line invalidates itself, not the file:
            // everything parseable around it still counts.
            ++bad_lines;
        }
    }
    if (bad_lines > 0)
        MYST_WARN("sweep journal '" << path_ << "': skipped " << bad_lines
                                    << " unparseable line(s)");
    return records_.size();
}

bool
SweepJournal::publish_locked()
{
    std::string text;
    for (const SweepJournalRecord& rec : records_) {
        text += record_to_json(rec).dump();
        text += '\n';
    }
    try {
        if (FaultInjection::instance().should_fail("journal.write"))
            MYST_THROW(MystiqueError, "injected fault: sweep journal publish failed");
        atomic_write_file(path_, text);
        return true;
    } catch (const std::exception& e) {
        MYST_WARN("sweep journal '" << path_ << "' publish failed (journaling is "
                                    << "best-effort): " << e.what());
        return false;
    }
}

bool
SweepJournal::append(const SweepJournalRecord& rec)
{
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(rec);
    return publish_locked();
}

std::optional<SweepJournalRecord>
SweepJournal::completed(uint64_t sweep_fp, uint64_t group_fp) const
{
    std::lock_guard<std::mutex> lock(mu_);
    // Latest record wins: a failure recorded after a success (a later, sicker
    // run) means the success is stale evidence, so scan from the back.
    for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
        if (it->sweep_fp != sweep_fp || it->group_fp != group_fp)
            continue;
        if (it->status == GroupStatus::kOk)
            return *it;
        return std::nullopt;
    }
    return std::nullopt;
}

int
SweepJournal::consecutive_failures(uint64_t group_fp) const
{
    std::lock_guard<std::mutex> lock(mu_);
    int streak = 0;
    for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
        if (it->group_fp != group_fp)
            continue;
        if (it->status == GroupStatus::kOk)
            break; // success resets the streak: quarantine heals
        ++streak;
    }
    return streak;
}

std::optional<SweepJournalRecord>
SweepJournal::last_failure(uint64_t group_fp) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
        if (it->group_fp == group_fp && it->status != GroupStatus::kOk)
            return *it;
    }
    return std::nullopt;
}

std::size_t
SweepJournal::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
}

} // namespace mystique::core
