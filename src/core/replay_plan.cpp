#include "core/replay_plan.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "common/error.h"
#include "common/hash.h"
#include "framework/op_registry.h"

namespace mystique::core {

uint64_t
ReplayConfig::fingerprint() const
{
    Fnv1a h;
    h.mix(platform);
    h.mix_pod(mode);
    h.mix_pod(filter.subtrace_root.has_value());
    if (filter.subtrace_root.has_value())
        h.mix(*filter.subtrace_root);
    h.mix_pod(filter.only_category.has_value());
    if (filter.only_category.has_value())
        h.mix_pod(*filter.only_category);
    h.mix_pod(embedding.distribution);
    h.mix_pod(embedding.zipf_s);
    // Custom-op set: sorted so registration order cannot split the key.
    std::vector<std::string> custom = custom_ops.registered();
    std::sort(custom.begin(), custom.end());
    for (const auto& name : custom)
        h.mix(name);
    h.mix_pod(emulate_world_size);
    return h.value();
}

std::size_t
PlanKeyHash::operator()(const PlanKey& k) const
{
    Fnv1a h;
    h.mix_pod(k.trace_fp);
    h.mix_pod(k.supported_fp);
    h.mix_pod(k.config_fp);
    h.mix_pod(k.prof_fp);
    h.mix_pod(k.has_prof);
    return static_cast<std::size_t>(h.value());
}

uint64_t
supported_set_fingerprint(const CustomOpRegistry& custom)
{
    fw::ensure_ops_registered();
    const fw::OpRegistry& reg = fw::OpRegistry::instance();

    // Memo: the registry is append-only, so (custom-op set, registry bound)
    // fully determines the supported set.  This keeps the per-lookup cost of
    // PlanCache::get_or_build at a couple of hashes instead of a full
    // registry walk.
    Fnv1a memo_key;
    {
        std::vector<std::string> names = custom.registered();
        std::sort(names.begin(), names.end());
        for (const auto& name : names)
            memo_key.mix(name);
        memo_key.mix_pod(reg.id_bound());
    }
    static std::mutex memo_mu;
    static std::unordered_map<uint64_t, uint64_t> memo;
    {
        std::lock_guard<std::mutex> lock(memo_mu);
        auto it = memo.find(memo_key.value());
        if (it != memo.end())
            return it->second;
    }

    const SupportedSet supported = SupportedSet::build(custom);
    // Hash the supported *names* in sorted OpId order; OpIds themselves are
    // process-local and never enter the hash.
    std::vector<const std::string*> names;
    for (OpId id = 0; static_cast<std::size_t>(id) < reg.id_bound(); ++id) {
        if (supported.contains(id))
            names.push_back(&reg.name(id));
    }
    std::sort(names.begin(), names.end(),
              [](const std::string* a, const std::string* b) { return *a < *b; });
    Fnv1a h;
    for (const std::string* name : names)
        h.mix(*name);
    {
        std::lock_guard<std::mutex> lock(memo_mu);
        memo[memo_key.value()] = h.value();
    }
    return h.value();
}

PlanKey
plan_key(const et::ExecutionTrace& trace, const prof::ProfilerTrace* prof,
         const ReplayConfig& cfg)
{
    PlanKey key;
    key.trace_fp = trace.structural_fingerprint();
    key.supported_fp = supported_set_fingerprint(cfg.custom_ops);
    key.config_fp = cfg.fingerprint();
    key.prof_fp = prof != nullptr ? prof->replay_fingerprint() : 0;
    key.has_prof = prof != nullptr;
    return key;
}

std::shared_ptr<const ReplayPlan>
ReplayPlan::build(const et::ExecutionTrace& trace, const prof::ProfilerTrace* prof,
                  const ReplayConfig& cfg)
{
    return build_impl(nullptr, &trace, prof, cfg, nullptr);
}

std::shared_ptr<const ReplayPlan>
ReplayPlan::build_with_key(const et::ExecutionTrace& trace, const prof::ProfilerTrace* prof,
                           const ReplayConfig& cfg, const PlanKey& key)
{
    return build_impl(nullptr, &trace, prof, cfg, &key);
}

std::shared_ptr<const ReplayPlan>
ReplayPlan::build_borrowing(const et::ExecutionTrace& trace, const prof::ProfilerTrace* prof,
                            const ReplayConfig& cfg)
{
    return build_impl(&trace, nullptr, prof, cfg, nullptr);
}

std::shared_ptr<const ReplayPlan>
ReplayPlan::build_impl(const et::ExecutionTrace* borrowed, const et::ExecutionTrace* copied,
                       const prof::ProfilerTrace* prof, const ReplayConfig& cfg,
                       const PlanKey* precomputed_key)
{
    fw::ensure_ops_registered();
    auto plan = std::shared_ptr<ReplayPlan>(new ReplayPlan());
    if (borrowed != nullptr) {
        plan->trace_ = borrowed;
    } else {
        plan->owned_trace_ = *copied; // private copy: plan outlives caller's trace
        plan->trace_ = &plan->owned_trace_;
    }
    const et::ExecutionTrace& trace = *plan->trace_;
    if (precomputed_key != nullptr) {
        plan->key_ = *precomputed_key;
    } else if (borrowed != nullptr) {
        // One-shot path: only the components the executor's config check
        // reads; skip the O(trace) structural hash that nothing consumes.
        plan->key_.config_fp = cfg.fingerprint();
        plan->key_.has_prof = prof != nullptr;
    } else {
        plan->key_ = plan_key(trace, prof, cfg);
    }
    plan->selection_ = select_ops(trace, cfg.custom_ops, cfg.filter);
    plan->coverage_ = mystique::core::coverage(trace, plan->selection_, prof);

    // Reconstruct every selected op up-front (§4.3.4: initialization phase).
    plan->ops_.reserve(plan->selection_.ops.size());
    for (const auto& sel : plan->selection_.ops) {
        const et::Node* node = trace.find(sel.node_id);
        MYST_CHECK(node != nullptr);
        ReconstructedOp op = plan->reconstructor_.reconstruct(*node, sel.supported);

        // Stream assignment from the profiler trace (§4.5): an op's kernels
        // correlate with its own node or its descendants'.
        if (prof != nullptr && op.kind != ReconstructedOp::Kind::kSkipped) {
            auto it = plan->selection_.subtree_ids.find(sel.node_id);
            if (it != plan->selection_.subtree_ids.end()) {
                for (int64_t sub_id : it->second) {
                    auto streams = prof->streams_for_node(sub_id);
                    if (!streams.empty()) {
                        op.stream = streams.front();
                        break;
                    }
                }
            }
        }
        plan->ops_.push_back(std::move(op));
    }
    return plan;
}

} // namespace mystique::core
