#include "core/replay_plan.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "common/error.h"
#include "common/hash.h"
#include "common/string_util.h"
#include "framework/op_registry.h"
#include "jit/ir.h"

namespace mystique::core {

namespace {

/// Fingerprints cross the JSON boundary as decimal strings: Json integers
/// are signed 64-bit, and a hash with the high bit set must not come back
/// sign-mangled (or, worse, re-printed differently by another tool).
Json
fp_json(uint64_t fp)
{
    return Json(std::to_string(fp));
}

uint64_t
fp_parse(const Json& j, std::string_view key)
{
    const std::string& s = j.at(key).as_string();
    uint64_t v = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc() || ptr != s.data() + s.size())
        MYST_THROW(ParseError, "plan json: bad fingerprint '" + s + "'");
    return v;
}

dev::OpCategory
category_from_name(const std::string& name)
{
    for (dev::OpCategory c : {dev::OpCategory::kATen, dev::OpCategory::kComm,
                              dev::OpCategory::kFused, dev::OpCategory::kCustom,
                              dev::OpCategory::kOther}) {
        if (name == dev::to_string(c))
            return c;
    }
    MYST_THROW(ParseError, "plan json: unknown op category '" + name + "'");
}

} // namespace

int
default_opt_level()
{
    const char* env = std::getenv("MYST_OPT_LEVEL");
    if (env == nullptr || *env == '\0')
        return 1;
    return std::atoi(env);
}

int
default_async_level()
{
    const char* env = std::getenv("MYST_ASYNC");
    if (env == nullptr || *env == '\0')
        return 1;
    return std::atoi(env);
}

uint64_t
ReplayConfig::fingerprint() const
{
    Fnv1a h;
    h.mix(platform);
    h.mix_pod(mode);
    h.mix_pod(filter.subtrace_root.has_value());
    if (filter.subtrace_root.has_value())
        h.mix(*filter.subtrace_root);
    h.mix_pod(filter.only_category.has_value());
    if (filter.only_category.has_value())
        h.mix_pod(*filter.only_category);
    h.mix_pod(embedding.distribution);
    h.mix_pod(embedding.zipf_s);
    // Custom-op set: sorted so registration order cannot split the key.
    std::vector<std::string> custom = custom_ops.registered();
    std::sort(custom.begin(), custom.end());
    for (const auto& name : custom)
        h.mix(name);
    h.mix_pod(emulate_world_size);
    h.mix_pod(opt_level);
    h.mix_pod(async_level);
    return h.value();
}

Json
ReplayConfig::to_json() const
{
    Json j = Json::object();
    j.set("platform", Json(platform));
    j.set("mode", Json(mode == fw::ExecMode::kNumeric ? "numeric" : "shape_only"));
    j.set("warmup_iterations", Json(warmup_iterations));
    j.set("iterations", Json(iterations));
    j.set("seed", Json(seed));
    j.set("power_limit_w", power_limit_w.has_value() ? Json(*power_limit_w) : Json());
    Json filter_j = Json::object();
    filter_j.set("subtrace_root",
                 filter.subtrace_root.has_value() ? Json(*filter.subtrace_root) : Json());
    filter_j.set("only_category", filter.only_category.has_value()
                                      ? Json(dev::to_string(*filter.only_category))
                                      : Json());
    j.set("filter", std::move(filter_j));
    Json emb_j = Json::object();
    emb_j.set("distribution",
              Json(embedding.distribution == EmbeddingGenConfig::Distribution::kZipf
                       ? "zipf"
                       : "uniform"));
    emb_j.set("zipf_s", Json(embedding.zipf_s));
    j.set("embedding", std::move(emb_j));
    // registered() merges op names and namespace prefixes; the "::" suffix
    // distinguishes them, so one sorted list round-trips both.
    std::vector<std::string> custom = custom_ops.registered();
    std::sort(custom.begin(), custom.end());
    Json custom_j = Json::array();
    for (const auto& name : custom)
        custom_j.push_back(Json(name));
    j.set("custom_ops", std::move(custom_j));
    j.set("emulate_world_size", Json(emulate_world_size));
    j.set("opt_level", Json(opt_level));
    j.set("async_level", Json(async_level));
    j.set("collect_profiler", Json(collect_profiler));
    return j;
}

ReplayConfig
ReplayConfig::from_json(const Json& j)
{
    ReplayConfig cfg;
    cfg.platform = j.at("platform").as_string();
    const std::string& mode = j.at("mode").as_string();
    if (mode != "numeric" && mode != "shape_only")
        MYST_THROW(ParseError, "replay config json: unknown mode '" + mode + "'");
    cfg.mode = mode == "numeric" ? fw::ExecMode::kNumeric : fw::ExecMode::kShapeOnly;
    cfg.warmup_iterations = static_cast<int>(j.at("warmup_iterations").as_int());
    cfg.iterations = static_cast<int>(j.at("iterations").as_int());
    cfg.seed = static_cast<uint64_t>(j.at("seed").as_int());
    cfg.power_limit_w.reset();
    if (!j.at("power_limit_w").is_null())
        cfg.power_limit_w = j.at("power_limit_w").as_double();
    const Json& filter_j = j.at("filter");
    if (!filter_j.at("subtrace_root").is_null())
        cfg.filter.subtrace_root = filter_j.at("subtrace_root").as_string();
    if (!filter_j.at("only_category").is_null())
        cfg.filter.only_category =
            category_from_name(filter_j.at("only_category").as_string());
    const Json& emb_j = j.at("embedding");
    const std::string& dist = emb_j.at("distribution").as_string();
    if (dist != "zipf" && dist != "uniform")
        MYST_THROW(ParseError, "replay config json: unknown distribution '" + dist + "'");
    cfg.embedding.distribution = dist == "zipf" ? EmbeddingGenConfig::Distribution::kZipf
                                                : EmbeddingGenConfig::Distribution::kUniform;
    cfg.embedding.zipf_s = emb_j.at("zipf_s").as_double();
    cfg.custom_ops = CustomOpRegistry::empty();
    for (const Json& name : j.at("custom_ops").as_array()) {
        const std::string& n = name.as_string();
        if (n.size() >= 2 && n.compare(n.size() - 2, 2, "::") == 0)
            cfg.custom_ops.register_namespace(n);
        else
            cfg.custom_ops.register_op(n);
    }
    cfg.emulate_world_size = static_cast<int>(j.at("emulate_world_size").as_int());
    // Pre-optimizer documents carry no opt_level: they were verbatim plans.
    cfg.opt_level = static_cast<int>(j.get_int("opt_level", 0));
    // Pre-executor documents carry no async_level: they replayed serially.
    cfg.async_level = static_cast<int>(j.get_int("async_level", 0));
    cfg.collect_profiler = j.at("collect_profiler").as_bool();
    return cfg;
}

Json
PlanKey::to_json() const
{
    Json j = Json::object();
    if (is_partial()) {
        // One-shot builds carry only the components the executor checks;
        // say so instead of presenting zeros as legitimate hashes.
        j.set("partial", Json(true));
        j.set("config_fp", fp_json(config_fp));
        j.set("has_prof", Json(has_prof));
        return j;
    }
    j.set("trace_fp", fp_json(trace_fp));
    j.set("supported_fp", fp_json(supported_fp));
    j.set("config_fp", fp_json(config_fp));
    j.set("prof_fp", fp_json(prof_fp));
    j.set("has_prof", Json(has_prof));
    return j;
}

PlanKey
PlanKey::from_json(const Json& j)
{
    PlanKey key;
    if (j.get_bool("partial", false)) {
        key.config_fp = fp_parse(j, "config_fp");
        key.has_prof = j.at("has_prof").as_bool();
        return key;
    }
    key.trace_fp = fp_parse(j, "trace_fp");
    key.supported_fp = fp_parse(j, "supported_fp");
    key.config_fp = fp_parse(j, "config_fp");
    key.prof_fp = fp_parse(j, "prof_fp");
    key.has_prof = j.at("has_prof").as_bool();
    return key;
}

std::size_t
PlanKeyHash::operator()(const PlanKey& k) const
{
    Fnv1a h;
    h.mix_pod(k.trace_fp);
    h.mix_pod(k.supported_fp);
    h.mix_pod(k.config_fp);
    h.mix_pod(k.prof_fp);
    h.mix_pod(k.has_prof);
    return static_cast<std::size_t>(h.value());
}

uint64_t
supported_set_fingerprint(const CustomOpRegistry& custom)
{
    fw::ensure_ops_registered();
    const fw::OpRegistry& reg = fw::OpRegistry::instance();

    // Memo: the registry is append-only, so (custom-op set, registry bound)
    // fully determines the supported set.  This keeps the per-lookup cost of
    // PlanCache::get_or_build at a couple of hashes instead of a full
    // registry walk.
    Fnv1a memo_key;
    {
        std::vector<std::string> names = custom.registered();
        std::sort(names.begin(), names.end());
        for (const auto& name : names)
            memo_key.mix(name);
        memo_key.mix_pod(reg.id_bound());
    }
    static std::mutex memo_mu;
    static std::unordered_map<uint64_t, uint64_t> memo;
    {
        std::lock_guard<std::mutex> lock(memo_mu);
        auto it = memo.find(memo_key.value());
        if (it != memo.end())
            return it->second;
    }

    const SupportedSet supported = SupportedSet::build(custom);
    // Hash the supported *names* in sorted OpId order; OpIds themselves are
    // process-local and never enter the hash.
    std::vector<const std::string*> names;
    for (OpId id = 0; static_cast<std::size_t>(id) < reg.id_bound(); ++id) {
        if (supported.contains(id))
            names.push_back(&reg.name(id));
    }
    std::sort(names.begin(), names.end(),
              [](const std::string* a, const std::string* b) { return *a < *b; });
    Fnv1a h;
    for (const std::string* name : names)
        h.mix(*name);
    {
        std::lock_guard<std::mutex> lock(memo_mu);
        memo[memo_key.value()] = h.value();
    }
    return h.value();
}

PlanKey
plan_key(const et::ExecutionTrace& trace, const prof::ProfilerTrace* prof,
         const ReplayConfig& cfg)
{
    PlanKey key;
    key.trace_fp = trace.structural_fingerprint();
    key.supported_fp = supported_set_fingerprint(cfg.custom_ops);
    key.config_fp = cfg.fingerprint();
    key.prof_fp = prof != nullptr ? prof->replay_fingerprint() : 0;
    key.has_prof = prof != nullptr;
    return key;
}

std::shared_ptr<const ReplayPlan>
ReplayPlan::build(const et::ExecutionTrace& trace, const prof::ProfilerTrace* prof,
                  const ReplayConfig& cfg)
{
    return build_impl(nullptr, std::make_shared<et::ExecutionTrace>(trace), prof, cfg,
                      nullptr);
}

std::shared_ptr<const ReplayPlan>
ReplayPlan::build(std::shared_ptr<const et::ExecutionTrace> trace,
                  const prof::ProfilerTrace* prof, const ReplayConfig& cfg)
{
    MYST_CHECK(trace != nullptr);
    return build_impl(nullptr, std::move(trace), prof, cfg, nullptr);
}

std::shared_ptr<const ReplayPlan>
ReplayPlan::build_with_key(const et::ExecutionTrace& trace, const prof::ProfilerTrace* prof,
                           const ReplayConfig& cfg, const PlanKey& key)
{
    return build_impl(nullptr, std::make_shared<et::ExecutionTrace>(trace), prof, cfg,
                      &key);
}

std::shared_ptr<const ReplayPlan>
ReplayPlan::build_with_key(std::shared_ptr<const et::ExecutionTrace> trace,
                           const prof::ProfilerTrace* prof, const ReplayConfig& cfg,
                           const PlanKey& key)
{
    MYST_CHECK(trace != nullptr);
    return build_impl(nullptr, std::move(trace), prof, cfg, &key);
}

std::shared_ptr<const ReplayPlan>
ReplayPlan::build_borrowing(const et::ExecutionTrace& trace, const prof::ProfilerTrace* prof,
                            const ReplayConfig& cfg)
{
    return build_impl(&trace, nullptr, prof, cfg, nullptr);
}

std::shared_ptr<const ReplayPlan>
ReplayPlan::build_impl(const et::ExecutionTrace* borrowed,
                       std::shared_ptr<const et::ExecutionTrace> owned,
                       const prof::ProfilerTrace* prof, const ReplayConfig& cfg,
                       const PlanKey* precomputed_key)
{
    fw::ensure_ops_registered();
    auto plan = std::shared_ptr<ReplayPlan>(new ReplayPlan());
    if (borrowed != nullptr) {
        plan->trace_ = borrowed;
    } else {
        plan->owned_trace_ = std::move(owned); // shared: plan outlives caller's handle
        plan->trace_ = plan->owned_trace_.get();
    }
    const et::ExecutionTrace& trace = *plan->trace_;
    if (precomputed_key != nullptr) {
        plan->key_ = *precomputed_key;
    } else if (borrowed != nullptr) {
        // One-shot path: only the components the executor's config check
        // reads; skip the O(trace) structural hash that nothing consumes.
        plan->key_.config_fp = cfg.fingerprint();
        plan->key_.has_prof = prof != nullptr;
    } else {
        plan->key_ = plan_key(trace, prof, cfg);
    }
    plan->selection_ = select_ops(trace, cfg.custom_ops, cfg.filter);
    plan->coverage_ = mystique::core::coverage(trace, plan->selection_, prof);

    // Reconstruct every selected op up-front (§4.3.4: initialization phase).
    plan->ops_.reserve(plan->selection_.ops.size());
    for (const auto& sel : plan->selection_.ops) {
        const et::Node* node = trace.find(sel.node_id);
        MYST_CHECK(node != nullptr);
        ReconstructedOp op = plan->reconstructor_.reconstruct(*node, sel.supported);

        // Stream assignment from the profiler trace (§4.5): an op's kernels
        // correlate with its own node or its descendants'.
        if (prof != nullptr && op.kind != ReconstructedOp::Kind::kSkipped) {
            auto it = plan->selection_.subtree_ids.find(sel.node_id);
            if (it != plan->selection_.subtree_ids.end()) {
                for (int64_t sub_id : it->second) {
                    auto streams = prof->streams_for_node(sub_id);
                    if (!streams.empty()) {
                        op.stream = streams.front();
                        break;
                    }
                }
            }
        }
        plan->ops_.push_back(std::move(op));
    }

    // Optimizer pipeline (opt_level > 0): runs once here, so the cost is
    // paid at build time and every warm cache hit replays pre-fused.
    if (cfg.opt_level > 0)
        plan->opt_stats_ = optimize_plan(plan->ops_, plan->fused_groups_);

    // Dependency graph, at every opt level: the async executor schedules
    // from it, and deriving it here (once, amortized by the cache) keeps the
    // replay hot path free of def-use analysis.
    plan->dep_graph_ = build_dep_graph(plan->ops_, plan->fused_groups_);
    return plan;
}

namespace {

const char*
kind_name(ReconstructedOp::Kind kind)
{
    switch (kind) {
      case ReconstructedOp::Kind::kCompiledIr: return "compiled_ir";
      case ReconstructedOp::Kind::kDirect: return "direct";
      case ReconstructedOp::Kind::kSkipped: return "skipped";
    }
    return "?";
}

Json
coverage_to_json(const CoverageStats& cov)
{
    Json j = Json::object();
    j.set("selected_ops", Json(cov.selected_ops));
    j.set("supported_ops", Json(cov.supported_ops));
    j.set("count_fraction", Json(cov.count_fraction));
    j.set("time_fraction", Json(cov.time_fraction));
    Json unsupported = Json::object();
    for (const auto& [name, count] : cov.unsupported_by_name)
        unsupported.set(name, Json(count));
    j.set("unsupported_by_name", std::move(unsupported));
    j.set("unsupported_kernel_us", Json(cov.unsupported_kernel_us));
    j.set("unsupported_exposed_us", Json(cov.unsupported_exposed_us));
    return j;
}

CoverageStats
coverage_from_json(const Json& j)
{
    CoverageStats cov;
    cov.selected_ops = j.at("selected_ops").as_int();
    cov.supported_ops = j.at("supported_ops").as_int();
    cov.count_fraction = j.at("count_fraction").as_double();
    cov.time_fraction = j.at("time_fraction").as_double();
    for (const auto& [name, count] : j.at("unsupported_by_name").as_object())
        cov.unsupported_by_name[name] = count.as_int();
    cov.unsupported_kernel_us = j.at("unsupported_kernel_us").as_double();
    cov.unsupported_exposed_us = j.at("unsupported_exposed_us").as_double();
    return cov;
}

} // namespace

Json
ReplayPlan::to_json() const
{
    Json j = Json::object();
    j.set("key", key_.to_json());
    j.set("coverage", coverage_to_json(coverage_));

    // The document carries exactly what restore cannot derive:
    //  - "ir_table": each *distinct* IR text once — traces repeat ops across
    //    iterations and layers, so inlining IR per op used to be most of the
    //    file;
    //  - "ops": per selected op, the node it binds to, the reconstruction
    //    kind, the stream assignment, and an ir_table index.
    // The selection is implied (op order IS selection order; an op is
    // supported iff its kind is not "skipped"), and subtree groupings are
    // build-phase scaffolding for stream/coverage derivation — both restored
    // facts, so neither is serialized.  from_json still accepts the legacy
    // spelling (explicit "selection", inline "ir" strings, per-op
    // name/tid annotations).
    Json ops = Json::array();
    Json ir_table = Json::array();
    std::unordered_map<std::string_view, int64_t> ir_index;
    for (const ReconstructedOp& op : ops_) {
        Json o = Json::object();
        o.set("node_id", Json(op.node->id));
        // "kind" is implied for the dominant case: an op with an "ir"
        // reference is compiled_ir; direct/skipped ops spell it out.
        if (op.kind != ReconstructedOp::Kind::kCompiledIr)
            o.set("kind", Json(kind_name(op.kind)));
        if (op.stream.has_value())
            o.set("stream", Json(static_cast<int64_t>(*op.stream)));
        if (!op.ir_text.empty()) {
            const auto [it, fresh] = ir_index.try_emplace(
                op.ir_text, static_cast<int64_t>(ir_table.as_array().size()));
            if (fresh)
                ir_table.push_back(Json(op.ir_text));
            o.set("ir", Json(it->second));
        }
        ops.push_back(std::move(o));
    }
    j.set("ir_table", std::move(ir_table));
    j.set("ops", std::move(ops));

    // Fused groups (opt_level > 0 builds only).  Members are op indices;
    // stages, metas and descs are deterministic derivations from the trace
    // (finalize_group), so only the discovery result crosses the boundary.
    // The "identity" / "optimizer" blocks are informational re-derivations —
    // from_json recomputes both, keeping to_json∘from_json lossless.
    if (!fused_groups_.empty()) {
        Json groups = Json::array();
        for (const FusedGroup& g : fused_groups_) {
            Json gj = Json::object();
            Json members = Json::array();
            for (const int m : g.members)
                members.push_back(Json(static_cast<int64_t>(m)));
            gj.set("members", std::move(members));
            if (g.dead)
                gj.set("dead", Json(true));
            Json identity = Json::array();
            for (std::size_t k = 0; k < g.stages.size(); ++k) {
                if (g.stages[k].identity)
                    identity.push_back(Json(static_cast<int64_t>(k)));
            }
            if (!identity.as_array().empty())
                gj.set("identity", std::move(identity));
            groups.push_back(std::move(gj));
        }
        j.set("fused_groups", std::move(groups));
        const OptimizerStats derived = derive_optimizer_stats(fused_groups_);
        Json opt = Json::object();
        opt.set("ops_fused", Json(derived.ops_fused));
        opt.set("ops_eliminated", Json(derived.ops_eliminated));
        opt.set("chains_formed", Json(derived.chains_formed));
        opt.set("ops_simplified", Json(derived.ops_simplified));
        j.set("optimizer", std::move(opt));
    }

    // Dependency graph: cached in the document and sealed with its
    // fingerprint, so a restore can verify the bytes without re-deriving
    // the graph from the ops (the disk tier must stay much cheaper than a
    // build).  Columnar layout — one array per unit field, parallel by unit
    // index in program order — because the restore path parses this on
    // every disk hit and per-unit objects cost several times as much to
    // parse as flat arrays.  flags packs comm (bit 0) and barrier (bit 1);
    // deps are unit indices.
    Json dep_j = Json::object();
    Json heads = Json::array();
    Json groups_col = Json::array();
    Json streams_col = Json::array();
    Json flags_col = Json::array();
    Json deps_col = Json::array();
    for (const DepUnit& u : dep_graph_.units) {
        heads.push_back(Json(static_cast<int64_t>(u.head)));
        groups_col.push_back(Json(static_cast<int64_t>(u.group)));
        streams_col.push_back(Json(static_cast<int64_t>(u.stream)));
        flags_col.push_back(
            Json(static_cast<int64_t>((u.comm ? 1 : 0) | (u.barrier ? 2 : 0))));
        Json deps = Json::array();
        for (const int d : u.deps)
            deps.push_back(Json(static_cast<int64_t>(d)));
        deps_col.push_back(std::move(deps));
    }
    dep_j.set("head", std::move(heads));
    dep_j.set("group", std::move(groups_col));
    dep_j.set("stream", std::move(streams_col));
    dep_j.set("flags", std::move(flags_col));
    dep_j.set("deps", std::move(deps_col));
    j.set("dep_graph", std::move(dep_j));
    j.set("dep_graph_fp", fp_json(dep_graph_fingerprint(dep_graph_)));
    return j;
}

std::shared_ptr<const ReplayPlan>
ReplayPlan::from_json(const Json& j, const et::ExecutionTrace& trace)
{
    // Private copy: self-contained, like build().
    return from_json(j, std::make_shared<et::ExecutionTrace>(trace));
}

std::shared_ptr<const ReplayPlan>
ReplayPlan::from_json(const Json& j, std::shared_ptr<const et::ExecutionTrace> trace)
{
    MYST_CHECK(trace != nullptr);
    fw::ensure_ops_registered();
    auto plan = std::shared_ptr<ReplayPlan>(new ReplayPlan());
    plan->owned_trace_ = std::move(trace); // shared: self-contained, zero-copy
    plan->trace_ = plan->owned_trace_.get();
    plan->key_ = PlanKey::from_json(j.at("key"));
    // Only full-provenance documents deserialize: a partial key means this
    // JSON is a one-shot Replayer dump (plan_to_json for inspection), not a
    // generate_benchmark package — a plan rebuilt from it could never be
    // verified or cached under its true identity.
    if (plan->key_.is_partial())
        MYST_THROW(ParseError,
                   "plan json: partial key (one-shot Replayer dump) — only plans "
                   "from generate_benchmark packages carry full provenance");
    plan->coverage_ = coverage_from_json(j.at("coverage"));

    // Restore the selection: current documents imply it from the ops array
    // (op order is selection order; supported ⇔ kind != "skipped"); legacy
    // documents spell it out, subtree scaffolding included.
    const Json::Array& ops_j = j.at("ops").as_array();
    if (const Json* selection_j = j.find("selection")) {
        for (const Json& s : selection_j->at("ops").as_array()) {
            const int64_t node_id = s.at("node_id").as_int();
            const et::Node* node = plan->trace_->find(node_id);
            if (node == nullptr)
                MYST_THROW(ParseError, "plan json: selected node " +
                                           std::to_string(node_id) +
                                           " is not in the trace");
            plan->selection_.ops.push_back(
                {node_id, s.at("supported").as_bool(), et::resolve_op_id(*node)});
        }
        for (const Json& s : selection_j->at("subtrees").as_array()) {
            std::vector<int64_t>& ids =
                plan->selection_.subtree_ids[s.at("root").as_int()];
            for (const Json& id : s.at("nodes").as_array())
                ids.push_back(id.as_int());
        }
    } else {
        plan->selection_.ops.reserve(ops_j.size());
        for (const Json& o : ops_j) {
            const int64_t node_id = o.at("node_id").as_int();
            const et::Node* node = plan->trace_->find(node_id);
            if (node == nullptr)
                MYST_THROW(ParseError, "plan json: selected node " +
                                           std::to_string(node_id) +
                                           " is not in the trace");
            plan->selection_.ops.push_back(
                {node_id, o.get_string("kind", "compiled_ir") != "skipped",
                 et::resolve_op_id(*node)});
        }
    }
    if (ops_j.size() != plan->selection_.ops.size())
        MYST_THROW(ParseError, "plan json: ops/selection length mismatch");
    plan->ops_.reserve(ops_j.size());
    // Compiled callables restore from the *recorded* IR text rather than
    // re-deriving it from each node's schema — the document already carries
    // the exact IR the generating process executed, and traces repeat ops
    // across iterations and layers, so compiling each distinct text once
    // (ops with equal IR share one jit::Function; execution state lives in
    // the per-rank session, never in the function) makes restore a parse
    // instead of a full reconstruction pass.  That cost asymmetry is what
    // the disk tier's micro_plan_disk gate is built on.
    const Json::Array* ir_table = nullptr;
    if (const Json* t = j.find("ir_table"))
        ir_table = &t->as_array();
    // One compiled function per distinct IR text; ops resolved through the
    // table share by index, legacy inline strings share by content.
    std::vector<const jit::Function*> compiled_by_ref(
        ir_table != nullptr ? ir_table->size() : 0, nullptr);
    std::unordered_map<std::string, const jit::Function*> compiled_by_text;
    for (std::size_t i = 0; i < ops_j.size(); ++i) {
        const Json& o = ops_j[i];
        const SelectedOp& sel = plan->selection_.ops[i];
        if (o.at("node_id").as_int() != sel.node_id)
            MYST_THROW(ParseError, "plan json: ops/selection order mismatch");
        const et::Node* node = plan->trace_->find(sel.node_id);

        ReconstructedOp op;
        op.node = node;
        op.op_id = sel.op_id;
        // The kind this process's registry would reconstruct.  A drift vs
        // the recorded kind means the registry / custom-op set no longer
        // matches the one the plan was generated under — replaying anyway
        // would silently execute a different benchmark.
        op.kind = Reconstructor::decide_kind(*node, sel.supported);
        const std::string recorded_kind = o.get_string("kind", "compiled_ir");
        if (kind_name(op.kind) != recorded_kind)
            MYST_THROW(MystiqueError,
                       "plan json: node " + std::to_string(sel.node_id) + " ('" +
                           node->name + "') reconstructs as " + kind_name(op.kind) +
                           " but the plan was generated with " + recorded_kind +
                           " — op registry mismatch with the generating process");

        if (op.kind == ReconstructedOp::Kind::kCompiledIr) {
            // Malformed IR makes parse_ir throw ParseError → the caller
            // (plan store / package import) treats the document as corrupt.
            auto compile = [&](const std::string& text) {
                jit::Graph graph = jit::parse_ir(text);
                return &plan->reconstructor_.create_function(
                    strprintf("%s_n%lld", node->name.c_str(),
                              static_cast<long long>(node->id)),
                    std::move(graph));
            };
            const Json& ir_j = o.at("ir");
            if (ir_j.is_int()) {
                const int64_t ref = ir_j.as_int();
                if (ir_table == nullptr || ref < 0 ||
                    static_cast<std::size_t>(ref) >= ir_table->size())
                    MYST_THROW(ParseError, "plan json: op ir reference " +
                                               std::to_string(ref) +
                                               " is outside the ir_table");
                op.ir_text = (*ir_table)[static_cast<std::size_t>(ref)].as_string();
                const jit::Function*& slot = compiled_by_ref[static_cast<std::size_t>(ref)];
                if (slot == nullptr)
                    slot = compile(op.ir_text);
                op.fn = slot;
            } else {
                op.ir_text = ir_j.as_string(); // legacy inline spelling
                auto it = compiled_by_text.find(op.ir_text);
                if (it == compiled_by_text.end())
                    it = compiled_by_text.emplace(op.ir_text, compile(op.ir_text)).first;
                op.fn = it->second;
            }
        }
        if (const Json* stream = o.find("stream"))
            op.stream = static_cast<int>(stream->as_int());
        plan->ops_.push_back(std::move(op));
    }

    // Fused groups: the document is trusted for *what* was grouped (member
    // indices + dead flag); everything executable — stages, kernel descs,
    // metas — is re-derived from the trace by finalize_group, which throws
    // ParseError on any member that is not legally fusable.  A tampered or
    // stale document therefore quarantines instead of replaying wrong.
    if (const Json* groups_j = j.find("fused_groups")) {
        // One shared consumer-count scan: restores sit on the disk-hit fast
        // path, where a per-group scan would be quadratic in plan size.
        const ConsumerCounts counts = consumer_counts(plan->ops_);
        for (const Json& gj : groups_j->as_array()) {
            FusedGroup g;
            for (const Json& m : gj.at("members").as_array())
                g.members.push_back(static_cast<int>(m.as_int()));
            g.dead = gj.get_bool("dead", false);
            finalize_group(plan->ops_, g, &counts);
            const int gid = static_cast<int>(plan->fused_groups_.size());
            for (const int m : g.members) {
                ReconstructedOp& op = plan->ops_[static_cast<std::size_t>(m)];
                if (op.fused_group >= 0)
                    MYST_THROW(ParseError, "plan json: op in two fused groups");
                op.fused_group = gid;
            }
            plan->ops_[static_cast<std::size_t>(g.members.front())].fused_head = true;
            plan->fused_groups_.push_back(std::move(g));
        }
        plan->opt_stats_ = derive_optimizer_stats(plan->fused_groups_);
    }

    // Dependency graph: restored from the document, not re-derived — the
    // disk-hit path must stay far cheaper than a plan build.  Integrity is
    // held by two cheap O(graph) passes instead: structural validation (a
    // forward or self edge is a cycle) and the fingerprint seal emitted by
    // to_json.  An edited unit, a dropped edge, or a truncated array breaks
    // the seal; ParseError sends the store entry to quarantine instead of
    // deadlocking the async executor.  Documents without a graph (hand-
    // authored manifests) fall back to deriving it from the restored ops.
    if (const Json* dep_j = j.find("dep_graph")) {
        const auto& heads = dep_j->at("head").as_array();
        const auto& groups_col = dep_j->at("group").as_array();
        const auto& streams_col = dep_j->at("stream").as_array();
        const auto& flags_col = dep_j->at("flags").as_array();
        const auto& deps_col = dep_j->at("deps").as_array();
        if (groups_col.size() != heads.size() || streams_col.size() != heads.size() ||
            flags_col.size() != heads.size() || deps_col.size() != heads.size())
            MYST_THROW(ParseError, "plan json: dep_graph columns disagree on length");
        DepGraph recorded;
        recorded.units.reserve(heads.size());
        for (std::size_t ui = 0; ui < heads.size(); ++ui) {
            DepUnit u;
            u.head = static_cast<int>(heads[ui].as_int());
            u.group = static_cast<int>(groups_col[ui].as_int());
            u.stream = static_cast<int>(streams_col[ui].as_int());
            const int64_t flags = flags_col[ui].as_int();
            u.comm = (flags & 1) != 0;
            u.barrier = (flags & 2) != 0;
            for (const Json& d : deps_col[ui].as_array())
                u.deps.push_back(static_cast<int>(d.as_int()));
            recorded.units.push_back(std::move(u));
        }
        validate_dep_graph(recorded, plan->ops_.size());
        if (j.find("dep_graph_fp") == nullptr ||
            dep_graph_fingerprint(recorded) != fp_parse(j, "dep_graph_fp"))
            MYST_THROW(ParseError, "plan json: dep_graph does not match its seal "
                                   "(tampered or stale document)");
        plan->dep_graph_ = std::move(recorded);
    } else {
        plan->dep_graph_ = build_dep_graph(plan->ops_, plan->fused_groups_);
    }
    return plan;
}

} // namespace mystique::core
