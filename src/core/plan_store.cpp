#include "core/plan_store.h"

#include <charconv>
#include <exception>
#include <filesystem>
#include <utility>

#include "common/error.h"
#include "common/fault_injection.h"
#include "common/fs_util.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace mystique::core {

namespace {

constexpr const char* kEntryFormat = "mystique-plan-store-entry";

/// The "plan" member is always the entry's last, so its raw bytes sit
/// between this marker and the file's closing brace — hashable without
/// re-serializing.  (The sequence cannot occur earlier: JSON escapes quotes
/// inside string values, and every head member has a fixed key.)
constexpr const char* kPlanMarker = ",\"plan\":";

uint64_t
hash_bytes(std::string_view bytes)
{
    Fnv1a h;
    h.mix(bytes);
    return h.value();
}

} // namespace

PlanStore::PlanStore(std::string directory) : dir_(std::move(directory))
{
    MYST_CHECK_MSG(!dir_.empty(), "PlanStore needs a directory");
}

std::string
PlanStore::entry_path(const PlanKey& key) const
{
    MYST_CHECK_MSG(!key.is_partial(), "partial (one-shot) plan keys are never persisted");
    std::string name = "plan-" + hex64(key.trace_fp) + "-" + hex64(key.supported_fp) +
                       "-" + hex64(key.config_fp) + "-" + hex64(key.prof_fp) + "-" +
                       (key.has_prof ? "p" : "n") + ".json";
    return (std::filesystem::path(dir_) / name).string();
}

std::shared_ptr<const ReplayPlan>
PlanStore::load(const PlanKey& key, std::shared_ptr<const et::ExecutionTrace> trace) const
{
    const std::string path = entry_path(key);
    {
        std::error_code ec;
        if (!std::filesystem::exists(path, ec))
            return nullptr; // clean miss — nothing to quarantine
    }

    try {
        const std::string text = read_file(path);
        // Injectable corruption between read and parse (MYST_FAULT
        // store.load): exercises the quarantine path on entries whose bytes
        // arrive damaged, independent of how they got damaged.
        if (FaultInjection::instance().should_fail("store.load"))
            MYST_THROW(ParseError, "injected fault: plan store entry unreadable");
        const Json entry = Json::parse(text); // throws on truncated/zero-byte/garbage
        if (entry.get_string("format", "") != kEntryFormat)
            MYST_THROW(ParseError, "plan store entry: not a plan-store entry");
        if (entry.get_int("format_version", 0) != kPlanStoreFormatVersion)
            MYST_THROW(ParseError,
                       "plan store entry: stale schema version " +
                           std::to_string(entry.get_int("format_version", 0)));
        // A renamed/copied entry must not impersonate another key: the
        // embedded key has to match the one the file name addressed.
        if (PlanKey::from_json(entry.at("key")) != key)
            MYST_THROW(ParseError, "plan store entry: embedded key differs from the "
                                   "requested key (entry renamed or tampered)");

        // Whole-plan integrity: any edit inside the plan document — a
        // flipped kind, a reassigned stream, doctored IR — fails the
        // recorded content hash and quarantines, instead of replaying a
        // benchmark that differs from what the key promises.
        const std::size_t plan_pos = text.find(kPlanMarker);
        if (plan_pos == std::string::npos || text.back() != '}')
            MYST_THROW(ParseError, "plan store entry: missing plan section");
        const std::string_view plan_bytes(
            text.data() + plan_pos + std::char_traits<char>::length(kPlanMarker),
            text.size() - plan_pos - std::char_traits<char>::length(kPlanMarker) - 1);
        uint64_t recorded = 0;
        {
            const std::string& rec = entry.at("plan_hash").as_string();
            const auto [ptr, ec] =
                std::from_chars(rec.data(), rec.data() + rec.size(), recorded);
            if (ec != std::errc() || ptr != rec.data() + rec.size())
                MYST_THROW(ParseError, "plan store entry: bad plan_hash");
        }
        if (hash_bytes(plan_bytes) != recorded)
            MYST_THROW(ParseError, "plan store entry: plan content does not match its "
                                   "recorded hash (entry corrupted or edited)");

        // from_json compiles the recorded IR against the caller's trace and
        // throws on kind drift vs this process's op registry — a drifted
        // entry quarantines below instead of silently replaying a different
        // benchmark.
        std::shared_ptr<const ReplayPlan> plan =
            ReplayPlan::from_json(entry.at("plan"), std::move(trace));
        if (plan->key() != key)
            MYST_THROW(ParseError,
                       "plan store entry: deserialized plan carries a different key");
        return plan;
    } catch (const std::exception& e) {
        MYST_WARN("plan store: quarantining '" << path << "': " << e.what());
        quarantine_file(path);
        return nullptr;
    }
}

bool
PlanStore::store(const ReplayPlan& plan) const
{
    try {
        if (FaultInjection::instance().should_fail("store.writeback"))
            MYST_THROW(MystiqueError, "injected fault: plan store writeback failed");
        const std::string plan_text = plan.to_json().dump();
        Json head = Json::object();
        head.set("format", Json(kEntryFormat));
        head.set("format_version", Json(kPlanStoreFormatVersion));
        head.set("key", plan.key().to_json());
        head.set("plan_hash", Json(std::to_string(hash_bytes(plan_text))));
        // Splice the plan in as the (hash-covered) last member; see
        // kPlanMarker.
        std::string text = head.dump();
        text.pop_back(); // the head's '}'
        text += kPlanMarker;
        text += plan_text;
        text += '}';
        atomic_write_file(entry_path(plan.key()), text);
        return true;
    } catch (const std::exception& e) {
        MYST_WARN("plan store: writeback to '" << dir_ << "' failed: " << e.what());
        return false;
    }
}

} // namespace mystique::core
