#include "core/supported_ops.h"

#include <algorithm>

#include "common/string_util.h"
#include "framework/op_registry.h"

namespace mystique::core {

CustomOpRegistry
CustomOpRegistry::with_defaults()
{
    CustomOpRegistry reg;
    // FBGEMM is one of the "few common libraries" supported out of the box
    // (§5); torchrec and model-specific libs (fairseq) are not.
    reg.register_namespace("fbgemm::");
    // The obfuscator's performance-equivalent public proxy blocks (§8.4).
    reg.register_namespace("obf::");
    return reg;
}

CustomOpRegistry
CustomOpRegistry::empty()
{
    return {};
}

void
CustomOpRegistry::register_op(const std::string& name)
{
    if (!is_registered(name))
        names_.push_back(name);
}

void
CustomOpRegistry::register_namespace(const std::string& ns_prefix)
{
    if (std::find(namespaces_.begin(), namespaces_.end(), ns_prefix) == namespaces_.end())
        namespaces_.push_back(ns_prefix);
}

bool
CustomOpRegistry::is_registered(const std::string& op_name) const
{
    if (std::find(names_.begin(), names_.end(), op_name) != names_.end())
        return true;
    return std::any_of(namespaces_.begin(), namespaces_.end(),
                       [&](const std::string& ns) { return starts_with(op_name, ns); });
}

std::vector<std::string>
CustomOpRegistry::registered() const
{
    std::vector<std::string> out = names_;
    out.insert(out.end(), namespaces_.begin(), namespaces_.end());
    return out;
}

bool
is_replayable(const et::Node& node, const CustomOpRegistry& custom)
{
    if (!node.is_op())
        return false;
    switch (node.category) {
      case dev::OpCategory::kFused:
        // No reconstruction metadata in the ET (§4.3.4).
        return false;
      case dev::OpCategory::kATen:
      case dev::OpCategory::kComm:
        // Requires a schema and an executable implementation.
        return !node.op_schema.empty() &&
               fw::OpRegistry::instance().contains(node.name);
      case dev::OpCategory::kCustom:
        return !node.op_schema.empty() && custom.is_registered(node.name) &&
               fw::OpRegistry::instance().contains(node.name);
      case dev::OpCategory::kOther:
        return false;
    }
    return false;
}

} // namespace mystique::core
