#include "core/supported_ops.h"

#include <algorithm>

#include "common/string_util.h"
#include "framework/op_registry.h"

namespace mystique::core {

CustomOpRegistry
CustomOpRegistry::with_defaults()
{
    CustomOpRegistry reg;
    // FBGEMM is one of the "few common libraries" supported out of the box
    // (§5); torchrec and model-specific libs (fairseq) are not.
    reg.register_namespace("fbgemm::");
    // The obfuscator's performance-equivalent public proxy blocks (§8.4).
    reg.register_namespace("obf::");
    return reg;
}

CustomOpRegistry
CustomOpRegistry::empty()
{
    return {};
}

void
CustomOpRegistry::register_op(const std::string& name)
{
    if (!is_registered(name))
        names_.push_back(name);
}

void
CustomOpRegistry::register_namespace(const std::string& ns_prefix)
{
    if (std::find(namespaces_.begin(), namespaces_.end(), ns_prefix) == namespaces_.end())
        namespaces_.push_back(ns_prefix);
}

bool
CustomOpRegistry::is_registered(const std::string& op_name) const
{
    if (std::find(names_.begin(), names_.end(), op_name) != names_.end())
        return true;
    return std::any_of(namespaces_.begin(), namespaces_.end(),
                       [&](const std::string& ns) { return starts_with(op_name, ns); });
}

std::vector<std::string>
CustomOpRegistry::registered() const
{
    std::vector<std::string> out = names_;
    out.insert(out.end(), namespaces_.begin(), namespaces_.end());
    return out;
}

SupportedSet
SupportedSet::build(const CustomOpRegistry& custom)
{
    const fw::OpRegistry& reg = fw::OpRegistry::instance();
    SupportedSet out;
    out.mask_.assign(reg.id_bound(), 0);
    for (OpId id = 0; static_cast<std::size_t>(id) < out.mask_.size(); ++id) {
        const fw::OpDef* def = reg.find(id);
        if (def == nullptr)
            continue; // interned name with no registered implementation
        switch (def->category) {
          case dev::OpCategory::kATen:
          case dev::OpCategory::kComm:
            out.mask_[static_cast<std::size_t>(id)] = 1;
            break;
          case dev::OpCategory::kCustom:
            out.mask_[static_cast<std::size_t>(id)] =
                custom.is_registered(def->name) ? 1 : 0;
            break;
          case dev::OpCategory::kFused:
          case dev::OpCategory::kOther:
            break;
        }
    }
    return out;
}

bool
is_replayable(const et::Node& node, const SupportedSet& supported)
{
    if (!node.is_op())
        return false;
    // Fused ops carry no reconstruction metadata in the ET (§4.3.4), and
    // every replayable category requires a recorded schema.
    if (node.category == dev::OpCategory::kFused ||
        node.category == dev::OpCategory::kOther || node.op_schema.empty())
        return false;
    OpId id = node.op_id.load();
    if (id == kInvalidOpId) {
        id = fw::OpRegistry::instance().lookup(node.name);
        node.op_id.store(id);
    }
    return supported.contains(id);
}

bool
is_replayable(const et::Node& node, const CustomOpRegistry& custom)
{
    return is_replayable(node, SupportedSet::build(custom));
}

} // namespace mystique::core
