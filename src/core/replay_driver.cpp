#include "core/replay_driver.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/error.h"
#include "device/platform.h"

namespace mystique::core {

namespace {

/// MYST_LOG=1 is the documented env toggle for sweep-stats output (printed
/// unconditionally to stderr); it is unrelated to the MYST_LOG(level, msg)
/// macro in common/logging.h, whose level comes from MYSTIQUE_LOG_LEVEL.
bool
sweep_log_enabled()
{
    const char* v = std::getenv("MYST_LOG");
    return v != nullptr && v[0] == '1';
}

} // namespace

/// One pooled replay worker: a Session + CommFabric constructed once and
/// reused for every group this worker replays.
struct ReplayDriver::Worker {
    explicit Worker(const ReplayConfig& cfg)
    {
        fw::SessionOptions opts;
        opts.platform = dev::platform(cfg.platform);
        opts.mode = cfg.mode;
        opts.seed = cfg.seed;
        opts.rank = 0;
        opts.world_size = 1;
        opts.power_limit_w = cfg.power_limit_w;
        opts.dispatch = fw::DispatchProfile::replay();
        session = std::make_unique<fw::Session>(opts);
        fabric = std::make_shared<comm::CommFabric>(1);
    }

    std::unique_ptr<fw::Session> session;
    std::shared_ptr<comm::CommFabric> fabric;
};

ReplayDriver::ReplayDriver(ReplayConfig cfg, PlanCache* cache, std::size_t parallelism)
    : cfg_(std::move(cfg)), cache_(cache), parallelism_(std::max<std::size_t>(1, parallelism))
{
    MYST_CHECK(cache_ != nullptr);
}

ReplayDriver::~ReplayDriver() = default;

void
ReplayDriver::set_parallelism(std::size_t parallelism)
{
    parallelism_ = std::max<std::size_t>(1, parallelism);
}

ReplayDriver::Worker&
ReplayDriver::ensure_worker(std::size_t index)
{
    while (workers_.size() <= index)
        workers_.push_back(std::make_unique<Worker>(cfg_));
    return *workers_[index];
}

GroupReplayResult
ReplayDriver::replay_one(Worker& worker, const et::TraceDatabase& db,
                         const et::TraceGroup& group,
                         const std::vector<const prof::ProfilerTrace*>* profs)
{
    const std::size_t rep = group.representative();
    const prof::ProfilerTrace* prof =
        profs != nullptr && rep < profs->size() ? (*profs)[rep] : nullptr;

    // trace_handle: the plan shares the database's trace — a disk-tier hit
    // costs one parse + IR compile, never an O(trace) deep copy.
    const std::shared_ptr<const ReplayPlan> plan =
        cache_->get_or_build(db.trace_handle(rep), prof, cfg_);

    // Every group replays from identical session state (clocks, RNG, device,
    // pg-id space) so the result is a pure function of (plan, config) — the
    // parallel sweep's bit-identity with the sequential one depends on this.
    // The session's StorageArena survives the reset: successive groups on
    // this worker recycle the previous group's tensor buffers.
    worker.session->reset_for_replay();
    Replayer executor(plan, cfg_);
    GroupReplayResult g;
    g.group = group;
    g.representative = rep;
    g.result = executor.run_with(*worker.session, worker.fabric);
    return g;
}

DatabaseReplayResult
ReplayDriver::replay_groups(const et::TraceDatabase& db, std::size_t top_k,
                            const std::vector<const prof::ProfilerTrace*>* profs)
{
    DatabaseReplayResult out;
    if (db.size() == 0 || top_k == 0) {
        out.cache = cache_->stats();
        return out;
    }

    std::vector<et::TraceGroup> groups = db.analyze();
    if (groups.size() > top_k)
        groups.resize(top_k);
    out.groups.resize(groups.size());

    const std::size_t workers = std::min(parallelism_, groups.size());
    if (workers <= 1) {
        Worker& w = ensure_worker(0);
        for (std::size_t i = 0; i < groups.size(); ++i)
            out.groups[i] = replay_one(w, db, groups[i], profs);
    } else {
        for (std::size_t w = 0; w < workers; ++w)
            ensure_worker(w); // construct on the driver thread, use on pool threads
        if (pool_ == nullptr || pool_->size() != workers)
            pool_ = std::make_unique<ThreadPool>(workers);

        // Deterministic striping: worker w replays groups w, w+K, w+2K, ...
        // Each worker session is owned by exactly one pool task; only the
        // PlanCache (thread-safe) is shared.
        std::vector<std::future<void>> done;
        done.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            done.push_back(pool_->submit([this, w, workers, &groups, &db, profs, &out] {
                for (std::size_t i = w; i < groups.size(); i += workers)
                    out.groups[i] = replay_one(*workers_[w], db, groups[i], profs);
            }));
        }
        std::string first_error;
        for (std::size_t w = 0; w < workers; ++w) {
            try {
                done[w].get();
            } catch (const std::exception& e) {
                if (first_error.empty())
                    first_error = "sweep worker " + std::to_string(w) +
                                  " failed: " + e.what();
            }
        }
        if (!first_error.empty())
            MYST_THROW(ReplayError, first_error);
    }

    // Merge in group order regardless of which worker replayed what, so the
    // weighted mean's floating-point summation order is fixed.
    double weight_sum = 0.0;
    double weighted_us = 0.0;
    for (const GroupReplayResult& g : out.groups) {
        weight_sum += g.group.population_weight;
        weighted_us += g.group.population_weight * g.result.mean_iter_us;
    }
    out.population_covered = weight_sum;
    out.weighted_mean_iter_us = weight_sum > 0.0 ? weighted_us / weight_sum : 0.0;
    out.cache = cache_->stats();
    for (const auto& w : workers_) {
        const fw::StorageArenaStats s = w->session->arena().stats();
        out.arena.hits += s.hits;
        out.arena.misses += s.misses;
        out.arena.returns += s.returns;
        out.arena.heap_frees += s.heap_frees;
        out.arena.bytes_outstanding += s.bytes_outstanding;
        // Max, not sum: per-worker peaks happen at different times, so their
        // sum would report a high-water mark no state ever reached.
        out.arena.peak_bytes_outstanding =
            std::max(out.arena.peak_bytes_outstanding, s.peak_bytes_outstanding);
        out.arena.bytes_cached += s.bytes_cached;
    }

    if (sweep_log_enabled()) {
        std::fprintf(stderr,
                     "[mystique] sweep: %zu groups, parallelism=%zu, "
                     "weighted_mean_iter_us=%.2f\n"
                     "[mystique]   plan cache: hits=%llu misses=%llu disk_hits=%llu "
                     "disk_misses=%llu builds=%llu writebacks=%llu evictions=%llu "
                     "size=%zu/%zu\n"
                     "[mystique]   optimizer: chains=%llu ops_fused=%llu "
                     "ops_eliminated=%llu optimize_us=%.1f (builds only)\n"
                     "[mystique]   arena: hits=%llu misses=%llu returns=%llu "
                     "cached=%lld B outstanding=%lld B (max worker peak %lld B)\n",
                     out.groups.size(), parallelism_, out.weighted_mean_iter_us,
                     static_cast<unsigned long long>(out.cache.hits),
                     static_cast<unsigned long long>(out.cache.misses),
                     static_cast<unsigned long long>(out.cache.disk_hits),
                     static_cast<unsigned long long>(out.cache.disk_misses),
                     static_cast<unsigned long long>(out.cache.builds),
                     static_cast<unsigned long long>(out.cache.writebacks),
                     static_cast<unsigned long long>(out.cache.evictions),
                     out.cache.size, out.cache.capacity,
                     static_cast<unsigned long long>(out.cache.opt_chains_formed),
                     static_cast<unsigned long long>(out.cache.opt_ops_fused),
                     static_cast<unsigned long long>(out.cache.opt_ops_eliminated),
                     out.cache.opt_time_us,
                     static_cast<unsigned long long>(out.arena.hits),
                     static_cast<unsigned long long>(out.arena.misses),
                     static_cast<unsigned long long>(out.arena.returns),
                     static_cast<long long>(out.arena.bytes_cached),
                     static_cast<long long>(out.arena.bytes_outstanding),
                     static_cast<long long>(out.arena.peak_bytes_outstanding));
    }
    return out;
}

} // namespace mystique::core
