#include "core/replay_driver.h"

#include "common/error.h"
#include "device/platform.h"

namespace mystique::core {

ReplayDriver::ReplayDriver(ReplayConfig cfg, PlanCache* cache)
    : cfg_(std::move(cfg)), cache_(cache)
{
    MYST_CHECK(cache_ != nullptr);
}

DatabaseReplayResult
ReplayDriver::replay_groups(const et::TraceDatabase& db, std::size_t top_k,
                            const std::vector<const prof::ProfilerTrace*>* profs)
{
    DatabaseReplayResult out;
    if (db.size() == 0 || top_k == 0) {
        out.cache = cache_->stats();
        return out;
    }

    // One session/fabric for the whole sweep: session construction, operator
    // registration and the device model are amortized across every group.
    fw::SessionOptions opts;
    opts.platform = dev::platform(cfg_.platform);
    opts.mode = cfg_.mode;
    opts.seed = cfg_.seed;
    opts.rank = 0;
    opts.world_size = 1;
    opts.power_limit_w = cfg_.power_limit_w;
    opts.dispatch = fw::DispatchProfile::replay();
    fw::Session session(opts);
    auto fabric = std::make_shared<comm::CommFabric>(1);

    double weight_sum = 0.0;
    double weighted_us = 0.0;
    for (const et::TraceGroup& group : db.analyze()) {
        if (out.groups.size() >= top_k)
            break;
        const std::size_t rep = group.representative();
        const prof::ProfilerTrace* prof =
            profs != nullptr && rep < profs->size() ? (*profs)[rep] : nullptr;

        const std::shared_ptr<const ReplayPlan> plan =
            cache_->get_or_build(db.trace(rep), prof, cfg_);

        // Previous group's process groups must not leak into this trace's
        // pg-id space.
        session.clear_process_groups();
        Replayer executor(plan, cfg_);
        GroupReplayResult g;
        g.group = group;
        g.representative = rep;
        g.result = executor.run_with(session, fabric);

        weight_sum += group.population_weight;
        weighted_us += group.population_weight * g.result.mean_iter_us;
        out.groups.push_back(std::move(g));
    }

    out.population_covered = weight_sum;
    out.weighted_mean_iter_us = weight_sum > 0.0 ? weighted_us / weight_sum : 0.0;
    out.cache = cache_->stats();
    return out;
}

} // namespace mystique::core
