#include "core/replay_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/error.h"
#include "common/fault_injection.h"
#include "common/hash.h"
#include "device/platform.h"

namespace mystique::core {

namespace {

/// MYST_LOG=1 is the documented env toggle for sweep-stats output (printed
/// unconditionally to stderr); it is unrelated to the MYST_LOG(level, msg)
/// macro in common/logging.h, whose level comes from MYSTIQUE_LOG_LEVEL.
bool
sweep_log_enabled()
{
    const char* v = std::getenv("MYST_LOG");
    return v != nullptr && v[0] == '1';
}

/// Resilience env knobs parse like MYST_OPT_LEVEL: unset/empty means the
/// built-in default, anything else goes through strtoull (a garbage value
/// reads as 0, which is a safe setting for every knob here).
std::optional<uint64_t>
env_u64(const char* name)
{
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return std::nullopt;
    return std::strtoull(v, nullptr, 10);
}

std::string
env_string(const char* name)
{
    const char* v = std::getenv(name);
    return v != nullptr ? v : "";
}

} // namespace

/// One pooled replay worker: a Session + CommFabric constructed once and
/// reused for every group this worker replays.
struct ReplayDriver::Worker {
    explicit Worker(const ReplayConfig& cfg)
    {
        fw::SessionOptions opts;
        opts.platform = dev::platform(cfg.platform);
        opts.mode = cfg.mode;
        opts.seed = cfg.seed;
        opts.rank = 0;
        opts.world_size = 1;
        opts.power_limit_w = cfg.power_limit_w;
        opts.dispatch = fw::DispatchProfile::replay();
        session = std::make_unique<fw::Session>(opts);
        fabric = std::make_shared<comm::CommFabric>(1);
    }

    std::unique_ptr<fw::Session> session;
    std::shared_ptr<comm::CommFabric> fabric;
};

/// Per-sweep snapshot of the resilience knobs plus the shared mutable state
/// of one replay_groups call.  Snapshotting once keeps every group of a sweep
/// under the same policy even if the environment changes mid-sweep; the
/// counters are atomics because workers bump them concurrently.
struct ReplayDriver::ResolvedResilience {
    int max_retries = 0;
    uint64_t backoff_ms = 10;
    std::optional<uint64_t> group_deadline_ms;
    bool probe_quarantined = false;
    /// Sweep-level deadline (never cancelled explicitly; no deadline armed
    /// when the knob is unset, so expired() stays false forever).
    CancelToken sweep_token;
    bool sweep_deadline_armed = false;
    /// Identity of this sweep for journal lookups: the selected groups
    /// (fingerprints, weights, representatives) × the full config, harness
    /// knobs included — a sweep with different iteration counts must not
    /// resume from another's timings.
    uint64_t sweep_fp = 0;
    std::unique_ptr<SweepJournal> journal; ///< null = journaling off
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> backoff_slept_ms{0};
    std::atomic<std::size_t> journal_resumed{0};
    std::atomic<std::size_t> journal_write_failures{0};
};

ReplayDriver::ReplayDriver(ReplayConfig cfg, PlanCache* cache, std::size_t parallelism)
    : cfg_(std::move(cfg)), cache_(cache), parallelism_(std::max<std::size_t>(1, parallelism))
{
    MYST_CHECK(cache_ != nullptr);
}

ReplayDriver::~ReplayDriver() = default;

void
ReplayDriver::set_parallelism(std::size_t parallelism)
{
    parallelism_ = std::max<std::size_t>(1, parallelism);
}

ReplayDriver::Worker&
ReplayDriver::ensure_worker(std::size_t index)
{
    while (workers_.size() <= index)
        workers_.push_back(std::make_unique<Worker>(cfg_));
    return *workers_[index];
}

void
ReplayDriver::resolve_resilience(const et::TraceDatabase& db,
                                 const std::vector<et::TraceGroup>& groups,
                                 ResolvedResilience& res) const
{
    (void)db;
    res.max_retries = max_retries_.has_value()
                          ? *max_retries_
                          : static_cast<int>(env_u64("MYST_SWEEP_RETRIES").value_or(0));
    res.max_retries = std::max(0, res.max_retries);
    res.backoff_ms =
        backoff_ms_.has_value() ? *backoff_ms_ : env_u64("MYST_SWEEP_BACKOFF_MS").value_or(10);
    res.group_deadline_ms = group_deadline_ms_.has_value()
                                ? group_deadline_ms_
                                : env_u64("MYST_SWEEP_GROUP_DEADLINE_MS");
    res.probe_quarantined = probe_quarantined_;
    if (sweep_deadline_ms_.has_value()) {
        res.sweep_token.set_deadline_after_ms(*sweep_deadline_ms_);
        res.sweep_deadline_armed = true;
    }

    Fnv1a h;
    h.mix(cfg_.to_json().dump());
    for (const et::TraceGroup& g : groups) {
        h.mix_pod(g.fingerprint);
        h.mix_pod(g.population_weight);
        h.mix_pod(g.representative());
    }
    res.sweep_fp = h.value();

    const std::string dir =
        journal_dir_.has_value() ? *journal_dir_ : env_string("MYST_SWEEP_JOURNAL");
    if (!dir.empty()) {
        res.journal = std::make_unique<SweepJournal>(dir);
        res.journal->load(); // absorbs journal.load faults: worst case, no resume
    }
}

GroupReplayResult
ReplayDriver::replay_one(Worker& worker, const et::TraceDatabase& db,
                         const et::TraceGroup& group,
                         const std::vector<const prof::ProfilerTrace*>* profs,
                         const CancelToken* cancel)
{
    const std::size_t rep = group.representative();
    const prof::ProfilerTrace* prof =
        profs != nullptr && rep < profs->size() ? (*profs)[rep] : nullptr;

    // trace_handle: the plan shares the database's trace — a disk-tier hit
    // costs one parse + IR compile, never an O(trace) deep copy.
    const std::shared_ptr<const ReplayPlan> plan =
        cache_->get_or_build(db.trace_handle(rep), prof, cfg_);

    // Every group replays from identical session state (clocks, RNG, device,
    // pg-id space) so the result is a pure function of (plan, config) — the
    // parallel sweep's bit-identity with the sequential one depends on this.
    // The session's StorageArena survives the reset: successive groups on
    // this worker recycle the previous group's tensor buffers.  The reset
    // also makes retries safe: a session abandoned mid-iteration by a
    // timeout or failure is rewound, never reused dirty.
    worker.session->reset_for_replay();
    Replayer executor(plan, cfg_);
    GroupReplayResult g;
    g.group = group;
    g.representative = rep;
    g.result = executor.run_with(*worker.session, worker.fabric, cancel);
    g.status = GroupStatus::kOk;
    g.attempts = 1;
    return g;
}

GroupReplayResult
ReplayDriver::run_group_resilient(Worker& worker, const et::TraceDatabase& db,
                                  const et::TraceGroup& group,
                                  const std::vector<const prof::ProfilerTrace*>* profs,
                                  ResolvedResilience& res)
{
    GroupReplayResult g;
    g.group = group;
    g.representative = group.representative();

    // Resume: a completed group restores its recorded (bit-exact) timings
    // for free — even past the sweep deadline, since no replay is burned.
    if (res.journal != nullptr) {
        if (const auto rec = res.journal->completed(res.sweep_fp, group.fingerprint)) {
            g.status = GroupStatus::kOk;
            g.from_journal = true;
            g.attempts = 0;
            g.result.iter_us = rec->iter_us;
            g.result.mean_iter_us = rec->mean_iter_us;
            res.journal_resumed.fetch_add(1, std::memory_order_relaxed);
            return g;
        }
    }

    // Quarantine: a fingerprint with repeated recorded failures is skipped
    // (carrying the last recorded error for reporting) unless this sweep is
    // probing — a probe gives it exactly one healing attempt, no retries.
    const bool quarantined =
        res.journal != nullptr && res.journal->quarantined(group.fingerprint);
    if (quarantined && !res.probe_quarantined) {
        g.status = GroupStatus::kQuarantined;
        g.attempts = 0;
        if (const auto fail = res.journal->last_failure(group.fingerprint))
            g.error = fail->error;
        return g;
    }

    // Sweep deadline: groups not started before it passes are skipped, not
    // failed — nothing is known about them, and they carry no error.
    if (res.sweep_deadline_armed && res.sweep_token.expired()) {
        g.status = GroupStatus::kSkipped;
        g.attempts = 0;
        return g;
    }

    const int max_attempts = quarantined ? 1 : 1 + res.max_retries;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        if (attempt > 1) {
            // Deterministic exponential backoff: 1×, 2×, 4×, ... the base.
            const uint64_t sleep_ms = res.backoff_ms << (attempt - 2);
            res.retries.fetch_add(1, std::memory_order_relaxed);
            res.backoff_slept_ms.fetch_add(sleep_ms, std::memory_order_relaxed);
            if (sleep_ms > 0)
                std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
        }
        g.attempts = static_cast<uint32_t>(attempt);
        try {
            if (FaultInjection::instance().should_fail("sweep.group"))
                MYST_THROW(ReplayError, "injected fault: sweep group replay failed "
                                        "(group fp " << group.fingerprint << ")");
            CancelToken token;
            const CancelToken* cancel = nullptr;
            if (res.group_deadline_ms.has_value()) {
                token.set_deadline_after_ms(*res.group_deadline_ms);
                cancel = &token;
            }
            GroupReplayResult done = replay_one(worker, db, group, profs, cancel);
            g.result = std::move(done.result);
            g.status = GroupStatus::kOk;
            g.error.clear();
            break;
        } catch (const CancelledError& e) {
            // A deadline that expired once would expire again: no retry.
            g.status = GroupStatus::kTimedOut;
            g.error = e.what();
            break;
        } catch (const std::exception& e) {
            g.status = GroupStatus::kFailed;
            g.error = e.what();
        }
    }

    // Journal the terminal outcome.  An ok record after failures resets the
    // quarantine streak (heals); a failed probe extends it.
    if (res.journal != nullptr) {
        SweepJournalRecord rec;
        rec.sweep_fp = res.sweep_fp;
        rec.group_fp = group.fingerprint;
        rec.status = g.status;
        rec.attempts = g.attempts;
        rec.error = g.error;
        rec.population_weight = group.population_weight;
        if (g.status == GroupStatus::kOk) {
            rec.iter_us = g.result.iter_us;
            rec.mean_iter_us = g.result.mean_iter_us;
        }
        if (!res.journal->append(rec))
            res.journal_write_failures.fetch_add(1, std::memory_order_relaxed);
    }
    return g;
}

DatabaseReplayResult
ReplayDriver::replay_groups(const et::TraceDatabase& db, std::size_t top_k,
                            const std::vector<const prof::ProfilerTrace*>* profs)
{
    DatabaseReplayResult out;
    if (db.size() == 0 || top_k == 0) {
        out.cache = cache_->stats();
        return out;
    }

    std::vector<et::TraceGroup> groups = db.analyze();
    if (groups.size() > top_k)
        groups.resize(top_k);
    out.groups.resize(groups.size());

    ResolvedResilience res;
    resolve_resilience(db, groups, res);

    const std::size_t workers = std::min(parallelism_, groups.size());
    if (workers <= 1) {
        Worker& w = ensure_worker(0);
        for (std::size_t i = 0; i < groups.size(); ++i)
            out.groups[i] = run_group_resilient(w, db, groups[i], profs, res);
    } else {
        for (std::size_t w = 0; w < workers; ++w)
            ensure_worker(w); // construct on the driver thread, use on pool threads
        if (pool_ == nullptr || pool_->size() != workers)
            pool_ = std::make_unique<ThreadPool>(workers);

        // Deterministic striping: worker w replays groups w, w+K, w+2K, ...
        // Each worker session is owned by exactly one pool task; only the
        // PlanCache and the resilience state (both thread-safe) are shared.
        // Tasks never throw: every per-group outcome — including an injected
        // sweep.group fault on several workers at once — lands in its own
        // GroupReplayResult, so one sick group can no longer mask another's
        // error or abort the sweep.
        std::vector<std::future<void>> done;
        done.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            done.push_back(pool_->submit([this, w, workers, &groups, &db, profs, &res,
                                          &out] {
                for (std::size_t i = w; i < groups.size(); i += workers)
                    out.groups[i] =
                        run_group_resilient(*workers_[w], db, groups[i], profs, res);
            }));
        }
        for (std::size_t w = 0; w < workers; ++w)
            done[w].get();
    }

    // Merge in group order regardless of which worker replayed what, so the
    // weighted mean's floating-point summation order is fixed.  Only ok
    // groups (replayed or journal-restored) contribute to the mean; on a
    // fully healthy sweep this is arithmetic-identical to summing everything.
    double weight_sum = 0.0;
    double ok_weight_sum = 0.0;
    double weighted_us = 0.0;
    for (const GroupReplayResult& g : out.groups) {
        weight_sum += g.group.population_weight;
        switch (g.status) {
        case GroupStatus::kOk:
            ok_weight_sum += g.group.population_weight;
            weighted_us += g.group.population_weight * g.result.mean_iter_us;
            ++out.groups_ok;
            break;
        case GroupStatus::kFailed: ++out.groups_failed; break;
        case GroupStatus::kTimedOut: ++out.groups_timed_out; break;
        case GroupStatus::kQuarantined: ++out.groups_quarantined; break;
        case GroupStatus::kSkipped: ++out.groups_skipped; break;
        }
    }
    out.population_covered = weight_sum;
    out.population_covered_ok = ok_weight_sum;
    out.weighted_mean_iter_us = ok_weight_sum > 0.0 ? weighted_us / ok_weight_sum : 0.0;
    out.retries = res.retries.load(std::memory_order_relaxed);
    out.backoff_ms = res.backoff_slept_ms.load(std::memory_order_relaxed);
    out.journal_resumed = res.journal_resumed.load(std::memory_order_relaxed);
    out.journal_write_failures = res.journal_write_failures.load(std::memory_order_relaxed);
    out.cache = cache_->stats();
    for (const auto& w : workers_) {
        const fw::StorageArenaStats s = w->session->arena().stats();
        out.arena.hits += s.hits;
        out.arena.misses += s.misses;
        out.arena.returns += s.returns;
        out.arena.heap_frees += s.heap_frees;
        out.arena.bytes_outstanding += s.bytes_outstanding;
        // Max, not sum: per-worker peaks happen at different times, so their
        // sum would report a high-water mark no state ever reached.
        out.arena.peak_bytes_outstanding =
            std::max(out.arena.peak_bytes_outstanding, s.peak_bytes_outstanding);
        out.arena.bytes_cached += s.bytes_cached;
    }

    if (sweep_log_enabled()) {
        std::fprintf(stderr,
                     "[mystique] sweep: %zu groups, parallelism=%zu, "
                     "weighted_mean_iter_us=%.2f\n"
                     "[mystique]   resilience: ok=%zu failed=%zu timed_out=%zu "
                     "quarantined=%zu skipped=%zu retries=%llu backoff_ms=%llu "
                     "resumed=%zu journal_write_failures=%zu covered_ok=%.4f\n"
                     "[mystique]   plan cache: hits=%llu misses=%llu disk_hits=%llu "
                     "disk_misses=%llu builds=%llu writebacks=%llu evictions=%llu "
                     "size=%zu/%zu\n"
                     "[mystique]   optimizer: chains=%llu ops_fused=%llu "
                     "ops_eliminated=%llu optimize_us=%.1f (builds only)\n"
                     "[mystique]   arena: hits=%llu misses=%llu returns=%llu "
                     "cached=%lld B outstanding=%lld B (max worker peak %lld B)\n",
                     out.groups.size(), parallelism_, out.weighted_mean_iter_us,
                     out.groups_ok, out.groups_failed, out.groups_timed_out,
                     out.groups_quarantined, out.groups_skipped,
                     static_cast<unsigned long long>(out.retries),
                     static_cast<unsigned long long>(out.backoff_ms),
                     out.journal_resumed, out.journal_write_failures,
                     out.population_covered_ok,
                     static_cast<unsigned long long>(out.cache.hits),
                     static_cast<unsigned long long>(out.cache.misses),
                     static_cast<unsigned long long>(out.cache.disk_hits),
                     static_cast<unsigned long long>(out.cache.disk_misses),
                     static_cast<unsigned long long>(out.cache.builds),
                     static_cast<unsigned long long>(out.cache.writebacks),
                     static_cast<unsigned long long>(out.cache.evictions),
                     out.cache.size, out.cache.capacity,
                     static_cast<unsigned long long>(out.cache.opt_chains_formed),
                     static_cast<unsigned long long>(out.cache.opt_ops_fused),
                     static_cast<unsigned long long>(out.cache.opt_ops_eliminated),
                     out.cache.opt_time_us,
                     static_cast<unsigned long long>(out.arena.hits),
                     static_cast<unsigned long long>(out.arena.misses),
                     static_cast<unsigned long long>(out.arena.returns),
                     static_cast<long long>(out.arena.bytes_cached),
                     static_cast<long long>(out.arena.bytes_outstanding),
                     static_cast<long long>(out.arena.peak_bytes_outstanding));
    }
    return out;
}

} // namespace mystique::core
