#include "core/similarity.h"

#include <algorithm>
#include <unordered_map>

#include "common/op_id.h"
#include "common/stats.h"

namespace mystique::core {

namespace {

/// Duration-weighted aggregate of one run's kernels by name.
struct KernelAgg {
    double total_us = 0.0;
    double ipc = 0.0;
    double l1 = 0.0;
    double l2 = 0.0;
    double sm = 0.0;

    void add(const prof::KernelEvent& k)
    {
        total_us += k.dur;
        ipc += k.micro.ipc * k.dur;
        l1 += k.micro.l1_hit_rate * k.dur;
        l2 += k.micro.l2_hit_rate * k.dur;
        sm += k.micro.sm_throughput * k.dur;
    }

    double mean_ipc() const { return total_us > 0 ? ipc / total_us : 0.0; }
    double mean_l1() const { return total_us > 0 ? l1 / total_us : 0.0; }
    double mean_l2() const { return total_us > 0 ? l2 / total_us : 0.0; }
    double mean_sm() const { return total_us > 0 ? sm / total_us : 0.0; }
};

/// Call-local kernel-name interner.  Kernel names are not operators, and a
/// trace can carry thousands of distinct ones, so they stay out of the
/// process-wide OpInterner; one table shared by both runs still gives the
/// integer-keyed aggregation and original↔replay matching below.  Name
/// pointers into the map's keys are stable (node-based buckets).
class KernelInterner {
  public:
    OpId intern(const std::string& name)
    {
        auto [it, inserted] = ids_.emplace(name, static_cast<OpId>(names_.size()));
        if (inserted)
            names_.push_back(&it->first);
        return it->second;
    }

    const std::string& name(OpId id) const { return *names_[static_cast<std::size_t>(id)]; }

  private:
    std::unordered_map<std::string, OpId> ids_;
    std::vector<const std::string*> names_;
};

/// Aggregates keyed by interned kernel-name ID: each distinct name is hashed
/// once; per-event accumulation and run matching are integer-keyed.  Names
/// are materialized only for the report rows.
std::unordered_map<OpId, KernelAgg>
aggregate(const prof::ProfilerTrace& trace, KernelInterner& interner)
{
    std::unordered_map<OpId, KernelAgg> out;
    for (const auto& k : trace.kernels())
        out[interner.intern(k.name)].add(k);
    return out;
}

double
safe_ratio(double a, double b)
{
    return b > 0.0 ? a / b : 1.0;
}

} // namespace

SimilarityReport
compare_runs(double original_e2e_us, const dev::DeviceMetrics& original,
             const prof::ProfilerTrace& original_prof, double replay_e2e_us,
             const dev::DeviceMetrics& replay, const prof::ProfilerTrace& replay_prof,
             std::size_t top_k)
{
    SimilarityReport rep;
    rep.original_e2e_us = original_e2e_us;
    rep.replay_e2e_us = replay_e2e_us;
    rep.e2e_error = relative_error(replay_e2e_us, original_e2e_us);
    rep.sm_util_error = relative_error(replay.sm_util_pct, original.sm_util_pct);
    rep.hbm_bw_error = relative_error(replay.hbm_gbps, original.hbm_gbps);
    rep.power_error = relative_error(replay.power_w, original.power_w);

    KernelInterner interner;
    const auto orig = aggregate(original_prof, interner);
    const auto repl = aggregate(replay_prof, interner);
    double total_orig_us = 0.0;
    for (const auto& [id, agg] : orig)
        total_orig_us += agg.total_us;

    // Top-K original kernels by device time (name tie-break keeps report
    // order deterministic and independent of interning order).
    std::vector<std::pair<OpId, double>> by_time;
    by_time.reserve(orig.size());
    for (const auto& [id, agg] : orig)
        by_time.emplace_back(id, agg.total_us);
    std::sort(by_time.begin(), by_time.end(), [&](const auto& a, const auto& b) {
        if (a.second != b.second)
            return a.second > b.second;
        return interner.name(a.first) < interner.name(b.first);
    });

    KernelAgg overall_orig, overall_repl;
    for (const auto& [id, oagg] : orig) {
        auto it = repl.find(id);
        if (it == repl.end())
            continue;
        overall_orig.total_us += oagg.total_us;
        overall_orig.ipc += oagg.ipc;
        overall_orig.l1 += oagg.l1;
        overall_orig.l2 += oagg.l2;
        overall_orig.sm += oagg.sm;
        overall_repl.total_us += it->second.total_us;
        overall_repl.ipc += it->second.ipc;
        overall_repl.l1 += it->second.l1;
        overall_repl.l2 += it->second.l2;
        overall_repl.sm += it->second.sm;
    }
    rep.overall.name = "overall";
    rep.overall.time_share = safe_ratio(overall_orig.total_us, total_orig_us);
    rep.overall.duration_ratio = safe_ratio(overall_repl.total_us, overall_orig.total_us);
    rep.overall.ipc_ratio = safe_ratio(overall_repl.mean_ipc(), overall_orig.mean_ipc());
    rep.overall.l1_ratio = safe_ratio(overall_repl.mean_l1(), overall_orig.mean_l1());
    rep.overall.l2_ratio = safe_ratio(overall_repl.mean_l2(), overall_orig.mean_l2());
    rep.overall.sm_throughput_ratio =
        safe_ratio(overall_repl.mean_sm(), overall_orig.mean_sm());

    for (const auto& [id, dur] : by_time) {
        if (rep.top_kernels.size() >= top_k)
            break;
        auto it = repl.find(id);
        if (it == repl.end())
            continue;
        const KernelAgg& o = orig.at(id);
        const KernelAgg& r = it->second;
        KernelSimilarity sim;
        sim.name = interner.name(id);
        sim.time_share = safe_ratio(dur, total_orig_us);
        sim.duration_ratio = safe_ratio(r.total_us, o.total_us);
        sim.ipc_ratio = safe_ratio(r.mean_ipc(), o.mean_ipc());
        sim.l1_ratio = safe_ratio(r.mean_l1(), o.mean_l1());
        sim.l2_ratio = safe_ratio(r.mean_l2(), o.mean_l2());
        sim.sm_throughput_ratio = safe_ratio(r.mean_sm(), o.mean_sm());
        rep.top_k_time_share += sim.time_share;
        rep.top_kernels.push_back(std::move(sim));
    }
    return rep;
}

} // namespace mystique::core
