#include "core/similarity.h"

#include <algorithm>
#include <map>

#include "common/stats.h"

namespace mystique::core {

namespace {

/// Duration-weighted aggregate of one run's kernels by name.
struct KernelAgg {
    double total_us = 0.0;
    double ipc = 0.0;
    double l1 = 0.0;
    double l2 = 0.0;
    double sm = 0.0;

    void add(const prof::KernelEvent& k)
    {
        total_us += k.dur;
        ipc += k.micro.ipc * k.dur;
        l1 += k.micro.l1_hit_rate * k.dur;
        l2 += k.micro.l2_hit_rate * k.dur;
        sm += k.micro.sm_throughput * k.dur;
    }

    double mean_ipc() const { return total_us > 0 ? ipc / total_us : 0.0; }
    double mean_l1() const { return total_us > 0 ? l1 / total_us : 0.0; }
    double mean_l2() const { return total_us > 0 ? l2 / total_us : 0.0; }
    double mean_sm() const { return total_us > 0 ? sm / total_us : 0.0; }
};

std::map<std::string, KernelAgg>
aggregate(const prof::ProfilerTrace& trace)
{
    std::map<std::string, KernelAgg> out;
    for (const auto& k : trace.kernels())
        out[k.name].add(k);
    return out;
}

double
safe_ratio(double a, double b)
{
    return b > 0.0 ? a / b : 1.0;
}

} // namespace

SimilarityReport
compare_runs(double original_e2e_us, const dev::DeviceMetrics& original,
             const prof::ProfilerTrace& original_prof, double replay_e2e_us,
             const dev::DeviceMetrics& replay, const prof::ProfilerTrace& replay_prof,
             std::size_t top_k)
{
    SimilarityReport rep;
    rep.original_e2e_us = original_e2e_us;
    rep.replay_e2e_us = replay_e2e_us;
    rep.e2e_error = relative_error(replay_e2e_us, original_e2e_us);
    rep.sm_util_error = relative_error(replay.sm_util_pct, original.sm_util_pct);
    rep.hbm_bw_error = relative_error(replay.hbm_gbps, original.hbm_gbps);
    rep.power_error = relative_error(replay.power_w, original.power_w);

    const auto orig = aggregate(original_prof);
    const auto repl = aggregate(replay_prof);
    double total_orig_us = 0.0;
    for (const auto& [name, agg] : orig)
        total_orig_us += agg.total_us;

    // Top-K original kernels by device time.
    std::vector<std::pair<std::string, double>> by_time;
    by_time.reserve(orig.size());
    for (const auto& [name, agg] : orig)
        by_time.emplace_back(name, agg.total_us);
    std::sort(by_time.begin(), by_time.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second)
            return a.second > b.second;
        return a.first < b.first;
    });

    KernelAgg overall_orig, overall_repl;
    for (const auto& [name, oagg] : orig) {
        auto it = repl.find(name);
        if (it == repl.end())
            continue;
        overall_orig.total_us += oagg.total_us;
        overall_orig.ipc += oagg.ipc;
        overall_orig.l1 += oagg.l1;
        overall_orig.l2 += oagg.l2;
        overall_orig.sm += oagg.sm;
        overall_repl.total_us += it->second.total_us;
        overall_repl.ipc += it->second.ipc;
        overall_repl.l1 += it->second.l1;
        overall_repl.l2 += it->second.l2;
        overall_repl.sm += it->second.sm;
    }
    rep.overall.name = "overall";
    rep.overall.time_share = safe_ratio(overall_orig.total_us, total_orig_us);
    rep.overall.duration_ratio = safe_ratio(overall_repl.total_us, overall_orig.total_us);
    rep.overall.ipc_ratio = safe_ratio(overall_repl.mean_ipc(), overall_orig.mean_ipc());
    rep.overall.l1_ratio = safe_ratio(overall_repl.mean_l1(), overall_orig.mean_l1());
    rep.overall.l2_ratio = safe_ratio(overall_repl.mean_l2(), overall_orig.mean_l2());
    rep.overall.sm_throughput_ratio =
        safe_ratio(overall_repl.mean_sm(), overall_orig.mean_sm());

    for (const auto& [name, dur] : by_time) {
        if (rep.top_kernels.size() >= top_k)
            break;
        auto it = repl.find(name);
        if (it == repl.end())
            continue;
        const KernelAgg& o = orig.at(name);
        const KernelAgg& r = it->second;
        KernelSimilarity sim;
        sim.name = name;
        sim.time_share = safe_ratio(dur, total_orig_us);
        sim.duration_ratio = safe_ratio(r.total_us, o.total_us);
        sim.ipc_ratio = safe_ratio(r.mean_ipc(), o.mean_ipc());
        sim.l1_ratio = safe_ratio(r.mean_l1(), o.mean_l1());
        sim.l2_ratio = safe_ratio(r.mean_l2(), o.mean_l2());
        sim.sm_throughput_ratio = safe_ratio(r.mean_sm(), o.mean_sm());
        rep.top_k_time_share += sim.time_share;
        rep.top_kernels.push_back(std::move(sim));
    }
    return rep;
}

} // namespace mystique::core
