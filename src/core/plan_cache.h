#pragma once

/// @file
/// Process-wide, fingerprint-keyed cache of compiled replay plans.
///
/// Production trace databases group equivalent ETs by operator-mix
/// fingerprint and replay representatives by population weight (§8.2); the
/// cache is what makes the N-th replay of an equivalent trace skip the whole
/// build phase (selection + coverage + reconstruction + stream assignment).
/// `Replayer::run_distributed`, `ReplayDriver`, and `generate_benchmark`
/// fetch through it, so N ranks replaying equivalent traces share one plan.
///
/// ## Two tiers
///
/// The in-memory tier above is process-local.  When `MYST_PLAN_CACHE_DIR`
/// is set (or a directory is injected via set_store_dir()), a *disk tier*
/// (core/plan_store.h) extends reuse across process restarts: a memory miss
/// first consults the content-addressed on-disk store — one atomically
/// written JSON entry per full PlanKey — and only builds when the disk
/// misses too; fresh builds are written back asynchronously on the shared
/// background ThreadPool.  A repeated sweep of a stable database in a new
/// process therefore performs **zero plan builds**: every group is a disk
/// hit (one parse) instead of a selection+reconstruction pass.  Invalid disk
/// entries (corrupt, truncated, stale schema, kind-drifted) are quarantined
/// to `.bad` and rebuilt — disk rot can cost a build, never a wrong plan.
///
/// Concurrency: lookups are mutex-guarded, but plan *builds* (and disk
/// loads) happen outside the lock behind a per-key shared_future — the first
/// requester loads-or-builds, concurrent requesters of the same key wait on
/// the future (counted as hits), and requesters of different keys proceed in
/// parallel.  Build-once also means write-once: a concurrent N-thread fetch
/// of one key issues exactly one disk writeback.  A build that throws erases
/// its entry so later requests retry, and rethrows to every waiter.
///
/// Lifecycle: entries are LRU-evicted beyond `capacity` (memory tier only —
/// disk entries are never evicted by this process).  Eviction only drops
/// the cache's reference; executors holding `shared_ptr<const ReplayPlan>`
/// keep replaying safely.

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/replay_plan.h"

namespace mystique::core {

class PlanStore;

/// Hit/miss accounting, exposed for benchmarks and tests.
///
/// `misses` counts memory-tier misses; each one was resolved either from
/// disk (`disk_hits`) or by a full build (`builds`), so
/// `misses == disk_hits + builds` always holds.  `disk_misses` counts the
/// disk consultations that found no usable entry (absent or quarantined) —
/// zero when no disk tier is configured.  `writebacks` counts *completed*
/// asynchronous disk writebacks; call `PlanCache::flush_writebacks()` before
/// reading it if you need the final value.
struct PlanCacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t disk_hits = 0;
    uint64_t disk_misses = 0;
    uint64_t builds = 0;
    uint64_t writebacks = 0;
    uint64_t evictions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;

    /// Optimizer counters, accumulated over *builds only* — warm hits (both
    /// tiers) replay pre-optimized plans, so a fully warm sweep shows zero
    /// re-optimization alongside zero builds.
    uint64_t opt_ops_fused = 0;
    uint64_t opt_ops_eliminated = 0;
    uint64_t opt_chains_formed = 0;
    double opt_time_us = 0.0;
};

class PlanCache {
  public:
    static constexpr std::size_t kDefaultCapacity = 64;

    explicit PlanCache(std::size_t capacity = kDefaultCapacity);

    /// Waits for outstanding disk writebacks (plans already built are never
    /// lost to process exit mid-write; partial files are unpublishable by
    /// construction anyway — see core/plan_store.h).
    ~PlanCache();

    /// The process-wide instance used by run_distributed / ReplayDriver.
    static PlanCache& instance();

    /// Returns the plan for (trace, prof, cfg): from memory, else from the
    /// disk tier (when configured), else built.  Equivalent traces (equal
    /// fingerprints) under the same supported set and plan-shaping config
    /// share one plan.  This spelling deep-copies the trace into the plan
    /// on a miss (the plan must outlive the caller's reference).
    std::shared_ptr<const ReplayPlan> get_or_build(const et::ExecutionTrace& trace,
                                                   const prof::ProfilerTrace* prof,
                                                   const ReplayConfig& cfg);

    /// Zero-copy spelling for callers that hold the trace in shared
    /// ownership (TraceDatabase, package import): on a miss the built or
    /// disk-restored plan *shares* @p trace instead of deep-copying it —
    /// the disk-hit path becomes one parse + one IR compile per distinct
    /// text, with no O(trace) copy.
    std::shared_ptr<const ReplayPlan>
    get_or_build(std::shared_ptr<const et::ExecutionTrace> trace,
                 const prof::ProfilerTrace* prof, const ReplayConfig& cfg);

    /// Peeks the memory tier without building (and without stats side
    /// effects); nullptr on miss or while the key's build is still in flight.
    std::shared_ptr<const ReplayPlan> lookup(const PlanKey& key) const;

    /// Seeds the cache with an already-built plan under its own key — the
    /// package-import path: a plan deserialized from a package's
    /// replay_plan.json (ReplayPlan::from_json) makes every later
    /// get_or_build of the packaged trace a pure hit, so importing a shared
    /// benchmark never re-runs the build phase.  Returns false (and keeps
    /// the existing entry) when the key is already present.  Counted as
    /// neither hit nor miss; never written to the disk tier.  Rejects plans
    /// with partial keys (the borrowed one-shot path) — only
    /// build()/from_json() plans carry full identity.
    bool insert(std::shared_ptr<const ReplayPlan> plan);

    PlanCacheStats stats() const;

    /// Drops every completed entry and zeroes the counters (tests).  The
    /// disk tier is untouched: a clear()ed cache refills from disk, which is
    /// exactly the cross-process scenario it simulates.
    void clear();

    void set_capacity(std::size_t capacity);

    /// Overrides the disk tier for this cache instance:
    ///  - nullopt (the default): follow `MYST_PLAN_CACHE_DIR`, re-read at
    ///    every miss like the other runtime knobs;
    ///  - "": disk tier off, regardless of the environment;
    ///  - a path: use that directory.
    void set_store_dir(std::optional<std::string> dir);

    /// Blocks until every asynchronous disk writeback issued so far has
    /// completed (successfully or not), so `stats().writebacks` is final and
    /// another process can be pointed at the store directory.
    void flush_writebacks();

  private:
    std::shared_ptr<const ReplayPlan>
    get_or_build_impl(const et::ExecutionTrace& trace,
                      std::shared_ptr<const et::ExecutionTrace> shared,
                      const prof::ProfilerTrace* prof, const ReplayConfig& cfg);

    struct Entry {
        std::shared_future<std::shared_ptr<const ReplayPlan>> plan;
        bool ready = false;    ///< set once the build completed successfully
        uint64_t last_used = 0;
    };

    void evict_excess_locked();
    /// The disk tier to consult right now (override or env); nullptr = off.
    std::shared_ptr<PlanStore> open_store() const;
    void submit_writeback(std::shared_ptr<PlanStore> store,
                          std::shared_ptr<const ReplayPlan> plan);

    mutable std::mutex mu_;
    std::size_t capacity_;
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t disk_hits_ = 0;
    uint64_t disk_misses_ = 0;
    uint64_t builds_ = 0;
    uint64_t writebacks_ = 0;
    uint64_t evictions_ = 0;
    uint64_t opt_ops_fused_ = 0;
    uint64_t opt_ops_eliminated_ = 0;
    uint64_t opt_chains_formed_ = 0;
    double opt_time_us_ = 0.0;
    std::optional<std::string> store_override_;
    std::vector<std::future<void>> writeback_futures_;
    std::unordered_map<PlanKey, Entry, PlanKeyHash> entries_;
};

} // namespace mystique::core
