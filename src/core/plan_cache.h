#pragma once

/// @file
/// Process-wide, fingerprint-keyed cache of compiled replay plans.
///
/// Production trace databases group equivalent ETs by operator-mix
/// fingerprint and replay representatives by population weight (§8.2); the
/// cache is what makes the N-th replay of an equivalent trace skip the whole
/// build phase (selection + coverage + reconstruction + stream assignment).
/// `Replayer::run_distributed` and `ReplayDriver` fetch through it, so N
/// ranks replaying equivalent traces share one plan built once.
///
/// Concurrency: lookups are mutex-guarded, but plan *builds* happen outside
/// the lock behind a per-key shared_future — the first requester builds,
/// concurrent requesters of the same key wait on the future (counted as
/// hits), and requesters of different keys build in parallel.  A build that
/// throws erases its entry so later requests retry, and rethrows to every
/// waiter.
///
/// Lifecycle: entries are LRU-evicted beyond `capacity`.  Eviction only drops
/// the cache's reference; executors holding `shared_ptr<const ReplayPlan>`
/// keep replaying safely.

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/replay_plan.h"

namespace mystique::core {

/// Hit/miss accounting, exposed for benchmarks and tests.
struct PlanCacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
};

class PlanCache {
  public:
    static constexpr std::size_t kDefaultCapacity = 64;

    explicit PlanCache(std::size_t capacity = kDefaultCapacity);

    /// The process-wide instance used by run_distributed / ReplayDriver.
    static PlanCache& instance();

    /// Returns the plan for (trace, prof, cfg), building it on first request.
    /// Equivalent traces (equal fingerprints) under the same supported set
    /// and plan-shaping config share one plan.
    std::shared_ptr<const ReplayPlan> get_or_build(const et::ExecutionTrace& trace,
                                                   const prof::ProfilerTrace* prof,
                                                   const ReplayConfig& cfg);

    /// Peeks without building (and without stats side effects); nullptr on
    /// miss or while the key's build is still in flight.
    std::shared_ptr<const ReplayPlan> lookup(const PlanKey& key) const;

    /// Seeds the cache with an already-built plan under its own key — the
    /// package-import path: a plan deserialized from a package's
    /// replay_plan.json (ReplayPlan::from_json) makes every later
    /// get_or_build of the packaged trace a pure hit, so importing a shared
    /// benchmark never re-runs the build phase.  Returns false (and keeps
    /// the existing entry) when the key is already present.  Counted as
    /// neither hit nor miss.  Rejects plans with partial keys (the borrowed
    /// one-shot path) — only build()/from_json() plans carry full identity.
    bool insert(std::shared_ptr<const ReplayPlan> plan);

    PlanCacheStats stats() const;

    /// Drops every completed entry and zeroes the counters (tests).
    void clear();

    void set_capacity(std::size_t capacity);

  private:
    struct Entry {
        std::shared_future<std::shared_ptr<const ReplayPlan>> plan;
        bool ready = false;    ///< set once the build completed successfully
        uint64_t last_used = 0;
    };

    void evict_excess_locked();

    mutable std::mutex mu_;
    std::size_t capacity_;
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
    std::unordered_map<PlanKey, Entry, PlanKeyHash> entries_;
};

} // namespace mystique::core
