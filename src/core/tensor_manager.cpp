#include "core/tensor_manager.h"

#include <algorithm>

#include "common/error.h"
#include "common/hash.h"
#include "common/string_util.h"
#include "framework/math.h"
#include "framework/op_registry.h"

namespace mystique::core {

TensorManager::TensorManager(fw::Session& session, EmbeddingGenConfig config)
    : session_(session), config_(config)
{
}

namespace {

/// Extracts the table row count for an embedding op from the weight arg.
int64_t
weight_rows(const et::Node& node)
{
    if (node.inputs.empty() || node.inputs[0].kind != et::Argument::Kind::kTensor)
        return 0;
    const auto& shape = node.inputs[0].tensors[0].shape;
    return shape.empty() ? 0 : shape[0];
}

} // namespace

void
TensorManager::analyze(const std::vector<const et::Node*>& selected_ops)
{
    // Pass 1: classify by first appearance, walking execution order (§4.4).
    auto note_input = [&](const et::TensorMeta& m) {
        if (intermediates_.count(m.tensor_id) == 0 && externals_.count(m.tensor_id) == 0)
            externals_[m.tensor_id] = m;
    };
    auto note_output = [&](const et::TensorMeta& m) {
        if (externals_.count(m.tensor_id) == 0)
            intermediates_[m.tensor_id] = true;
    };
    for (const et::Node* node : selected_ops) {
        for (const auto& arg : node->inputs)
            for (const auto& t : arg.tensors)
                note_input(t);
        for (const auto& arg : node->outputs)
            for (const auto& t : arg.tensors)
                note_output(t);
    }

    // Pass 2: derive int64 generation policies from consuming ops.  Policies
    // must land on the *external* source tensor, so they propagate backwards
    // through pass-through copy ops (the dataloader→device transfer chain:
    // host indices → aten::to.device → device indices → embedding_bag).
    std::map<int64_t, const et::Node*> producer;
    for (const et::Node* node : selected_ops) {
        for (const auto& arg : node->outputs)
            for (const auto& t : arg.tensors)
                producer[t.tensor_id] = node;
    }
    auto set_policy = [&](const et::Argument& arg, Int64GenPolicy policy) {
        if (arg.kind != et::Argument::Kind::kTensor)
            return;
        int64_t uid = arg.tensors[0].tensor_id;
        for (int hops = 0; hops < 8; ++hops) {
            if (externals_.count(uid) != 0) {
                policies_[uid] = policy;
                return;
            }
            auto it = producer.find(uid);
            if (it == producer.end())
                return;
            const et::Node* p = it->second;
            // Interned-identity comparison: each node's name resolves at most
            // once (cached in node.op_id); MYST_OP resolves the literal once
            // per call site.
            const OpId pid = et::resolve_op_id(*p);
            const bool pass_through =
                pid == MYST_OP("aten::to.device") || pid == MYST_OP("aten::copy_");
            if (!pass_through || p->inputs.empty() || p->inputs[0].tensors.empty())
                return;
            uid = p->inputs[0].tensors[0].tensor_id;
        }
    };
    for (const et::Node* node : selected_ops) {
        const OpId id = et::resolve_op_id(*node);
        if (id == MYST_OP("aten::embedding_bag") ||
            id == MYST_OP("fbgemm::batched_embedding_lookup")) {
            const int64_t rows = weight_rows(*node);
            int64_t nnz = 0;
            if (node->inputs.size() > 1 && !node->inputs[1].tensors.empty())
                nnz = node->inputs[1].tensors[0].numel;
            set_policy(node->inputs[1],
                       {Int64GenPolicy::Kind::kIndices, std::max<int64_t>(rows, 1), 0});
            if (node->inputs.size() > 2)
                set_policy(node->inputs[2], {Int64GenPolicy::Kind::kOffsets, 0, nnz});
        } else if (id == MYST_OP("aten::nll_loss")) {
            int64_t classes = 10;
            if (!node->inputs.empty() && !node->inputs[0].tensors.empty() &&
                !node->inputs[0].tensors[0].shape.empty())
                classes = node->inputs[0].tensors[0].shape.back();
            set_policy(node->inputs[1], {Int64GenPolicy::Kind::kClasses, classes, 0});
        }
    }
}

fw::Tensor
TensorManager::generate_external(const et::TensorMeta& meta)
{
    const fw::DType dtype = fw::dtype_from_name(meta.dtype);
    fw::Tensor t = session_.alloc(meta.shape, dtype, /*force_materialize=*/
                                  dtype != fw::DType::kFloat32);
    if (dtype == fw::DType::kFloat32) {
        // Random values: operator performance does not depend on float
        // contents (§4.4), but numeric mode still wants sane data.
        if (t.materialized())
            fw::math::randn(t.f32(), t.numel(), session_.rng(), 0.05f);
        return t;
    }
    if (dtype != fw::DType::kInt64)
        return t;

    Int64GenPolicy policy;
    auto it = policies_.find(meta.tensor_id);
    if (it != policies_.end())
        policy = it->second;

    int64_t* data = t.i64();
    const int64_t n = t.numel();
    switch (policy.kind) {
      case Int64GenPolicy::Kind::kIndices: {
        const int64_t rows = std::max<int64_t>(policy.upper, 1);
        for (int64_t i = 0; i < n; ++i) {
            data[i] = config_.distribution == EmbeddingGenConfig::Distribution::kZipf
                          ? session_.rng().zipf(rows, config_.zipf_s)
                          : session_.rng().uniform_int(0, rows - 1);
        }
        break;
      }
      case Int64GenPolicy::Kind::kOffsets: {
        // Evenly spaced bag boundaries over the paired index tensor.
        const int64_t nnz = std::max<int64_t>(policy.pair_nnz, n);
        for (int64_t i = 0; i < n; ++i)
            data[i] = i * nnz / n;
        break;
      }
      case Int64GenPolicy::Kind::kClasses: {
        const int64_t classes = std::max<int64_t>(policy.upper, 1);
        for (int64_t i = 0; i < n; ++i)
            data[i] = session_.rng().uniform_int(0, classes - 1);
        break;
      }
      case Int64GenPolicy::Kind::kGeneric:
        for (int64_t i = 0; i < n; ++i)
            data[i] = session_.rng().uniform_int(0, std::max<int64_t>(policy.upper - 1, 0));
        break;
    }
    return t;
}

void
TensorManager::instantiate_externals()
{
    for (const auto& [uid, meta] : externals_) {
        if (bindings_.count(uid) == 0)
            bindings_[uid] = generate_external(meta);
    }
}

fw::Tensor
TensorManager::resolve(const et::TensorMeta& meta) const
{
    auto it = bindings_.find(meta.tensor_id);
    if (it == bindings_.end())
        MYST_THROW(ReplayError, "tensor " << meta.tensor_id
                                          << " consumed before production during replay");
    return it->second;
}

void
TensorManager::bind_output(const et::TensorMeta& meta, fw::Tensor t)
{
    bindings_[meta.tensor_id] = std::move(t);
}

uint64_t
TensorManager::digest() const
{
    Fnv1a h;
    for (const auto& [uid, t] : bindings_) {
        h.mix_pod(uid);
        if (!t.defined() || !t.materialized()) {
            h.mix_pod(static_cast<int64_t>(-1)); // shape-only binding
            continue;
        }
        h.mix_pod(t.numel());
        h.mix_bytes(t.impl()->storage->data(), static_cast<std::size_t>(t.nbytes()));
    }
    return h.value();
}

} // namespace mystique::core
