#include "core/reconstruction.h"

#include "common/error.h"
#include "common/string_util.h"
#include "jit/schema.h"

namespace mystique::core {

namespace {

jit::Constant
argument_to_constant(const et::Argument& arg)
{
    jit::Constant c;
    switch (arg.kind) {
      case et::Argument::Kind::kNone:
        c.kind = jit::Constant::Kind::kNone;
        break;
      case et::Argument::Kind::kInt:
        c.kind = jit::Constant::Kind::kInt;
        c.int_value = arg.int_value;
        break;
      case et::Argument::Kind::kDouble:
        c.kind = jit::Constant::Kind::kFloat;
        c.float_value = arg.double_value;
        break;
      case et::Argument::Kind::kBool:
        c.kind = jit::Constant::Kind::kBool;
        c.bool_value = arg.bool_value;
        break;
      case et::Argument::Kind::kIntList:
        c.kind = jit::Constant::Kind::kIntList;
        c.int_list = arg.int_list;
        break;
      case et::Argument::Kind::kString:
        c.kind = jit::Constant::Kind::kString;
        c.string_value = arg.string_value;
        break;
      case et::Argument::Kind::kTensor:
      case et::Argument::Kind::kTensorList:
        c.kind = jit::Constant::Kind::kTensorInput;
        break;
    }
    return c;
}

fw::IValue
argument_to_ivalue(const et::Argument& arg, const TensorManager& tm)
{
    switch (arg.kind) {
      case et::Argument::Kind::kNone:
        return fw::IValue::none();
      case et::Argument::Kind::kInt:
        return fw::IValue(arg.int_value);
      case et::Argument::Kind::kDouble:
        return fw::IValue(arg.double_value);
      case et::Argument::Kind::kBool:
        return fw::IValue(arg.bool_value);
      case et::Argument::Kind::kIntList:
        return fw::IValue(arg.int_list);
      case et::Argument::Kind::kString:
        return fw::IValue(arg.string_value);
      case et::Argument::Kind::kTensor:
        return fw::IValue(tm.resolve(arg.tensors[0]));
      case et::Argument::Kind::kTensorList: {
        std::vector<fw::Tensor> ts;
        ts.reserve(arg.tensors.size());
        for (const auto& m : arg.tensors)
            ts.push_back(tm.resolve(m));
        return fw::IValue(std::move(ts));
      }
    }
    return fw::IValue::none();
}

} // namespace

ReconstructedOp
Reconstructor::reconstruct(const et::Node& node, bool supported)
{
    ReconstructedOp op;
    op.node = &node;
    op.op_id = node.op_id.load(); // resolved by selection; invalid for unsupported ops
    op.kind = decide_kind(node, supported);
    if (op.kind != ReconstructedOp::Kind::kCompiledIr)
        return op;

    // ATen path (§4.3.1): schema → IR text → compiled function.
    const jit::FunctionSchema schema = jit::parse_schema(node.op_schema);
    if (schema.args.size() != node.inputs.size())
        MYST_THROW(ReplayError, "node " << node.id << " ('" << node.name << "'): "
                                        << node.inputs.size() << " recorded args vs "
                                        << schema.args.size() << " schema args");
    std::vector<jit::Constant> constants;
    constants.reserve(node.inputs.size());
    for (const auto& arg : node.inputs)
        constants.push_back(argument_to_constant(arg));

    op.ir_text = jit::build_ir_text(schema, constants);
    jit::Graph graph = jit::parse_ir(op.ir_text);
    op.fn = &cu_.create_function(strprintf("%s_n%lld", node.name.c_str(),
                                           static_cast<long long>(node.id)),
                                 std::move(graph));
    op.kind = ReconstructedOp::Kind::kCompiledIr;
    return op;
}

bool
execute_reconstructed(fw::Session& session, const ReconstructedOp& op, TensorManager& tm)
{
    if (op.kind == ReconstructedOp::Kind::kSkipped)
        return false;
    const et::Node& node = *op.node;

    std::vector<fw::IValue> outputs;
    if (op.kind == ReconstructedOp::Kind::kCompiledIr) {
        // Only tensor-like, present arguments feed the compiled function.
        std::vector<fw::IValue> tensor_inputs;
        for (const auto& arg : node.inputs) {
            if (arg.kind == et::Argument::Kind::kTensor ||
                arg.kind == et::Argument::Kind::kTensorList)
                tensor_inputs.push_back(argument_to_ivalue(arg, tm));
        }
        outputs = op.fn->run(session, tensor_inputs);
    } else {
        std::vector<fw::IValue> inputs;
        inputs.reserve(node.inputs.size());
        for (const auto& arg : node.inputs)
            inputs.push_back(argument_to_ivalue(arg, tm));
        // Direct registry dispatch by interned identity (no name lookup on
        // the per-op replay path); unresolved ids fall back to the string
        // overload for its diagnostic.
        outputs = op.op_id != kInvalidOpId ? session.call(op.op_id, std::move(inputs))
                                           : session.call(node.name, std::move(inputs));
    }

    // Bind outputs back to their recorded tensor IDs for downstream
    // consumers (§4.4 intermediate-tensor forwarding).
    const std::size_t n = std::min(outputs.size(), node.outputs.size());
    for (std::size_t i = 0; i < n; ++i) {
        const auto& rec = node.outputs[i];
        if (rec.kind == et::Argument::Kind::kTensor && outputs[i].is_tensor()) {
            tm.bind_output(rec.tensors[0], outputs[i].tensor());
        } else if (rec.kind == et::Argument::Kind::kTensorList &&
                   outputs[i].is_tensor_list()) {
            const auto& ts = outputs[i].tensor_list();
            for (std::size_t k = 0; k < std::min(ts.size(), rec.tensors.size()); ++k)
                tm.bind_output(rec.tensors[k], ts[k]);
        }
    }
    return true;
}

} // namespace mystique::core
