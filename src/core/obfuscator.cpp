#include "core/obfuscator.h"

#include <unordered_map>
#include <unordered_set>

#include "common/error.h"
#include "common/string_util.h"

namespace mystique::core {

namespace {

/// Owner map: node id → nearest ancestor-or-self custom op id (or -1).
std::unordered_map<int64_t, int64_t>
custom_owners(const et::ExecutionTrace& trace)
{
    std::unordered_map<int64_t, int64_t> owner;
    std::unordered_map<int64_t, const et::Node*> by_id;
    for (const auto& n : trace.nodes())
        by_id[n.id] = &n;
    for (const auto& n : trace.nodes()) {
        int64_t own = -1;
        if (n.parent >= 0) {
            auto it = owner.find(n.parent);
            if (it != owner.end())
                own = it->second;
        }
        if (own < 0 && n.is_op() && n.category == dev::OpCategory::kCustom)
            own = n.id;
        owner[n.id] = own;
    }
    return owner;
}

} // namespace

et::ExecutionTrace
obfuscate(const et::ExecutionTrace& trace, const prof::ProfilerTrace& prof,
          const ObfuscationOptions& opts)
{
    const auto owners = custom_owners(trace);

    // Aggregate kernel costs per custom-op root.
    std::unordered_map<int64_t, double> flops_by_root;
    std::unordered_map<int64_t, double> bytes_by_root;
    for (const auto& k : prof.kernels()) {
        auto it = owners.find(k.correlation);
        if (it == owners.end() || it->second < 0)
            continue;
        flops_by_root[it->second] += k.flops;
        bytes_by_root[it->second] += k.bytes;
    }

    et::ExecutionTrace out;
    out.meta() = trace.meta();
    out.meta().workload = "obfuscated";

    int64_t annotation_counter = 0;
    for (const auto& node : trace.nodes()) {
        const int64_t own = owners.count(node.id) != 0 ? owners.at(node.id) : -1;
        if (opts.proxy_custom_ops && own >= 0 && own != node.id)
            continue; // interior of a substituted custom subtree

        et::Node copy = node;
        if (opts.proxy_custom_ops && own == node.id) {
            // Substitute with the performance-equivalent proxy (§8.4).
            std::vector<et::TensorMeta> in_tensors;
            for (const auto& arg : node.inputs)
                for (const auto& t : arg.tensors)
                    in_tensors.push_back(t);
            std::vector<et::TensorMeta> out_tensors;
            std::vector<int64_t> out_shapes;
            for (const auto& arg : node.outputs) {
                for (const auto& t : arg.tensors) {
                    out_tensors.push_back(t);
                    out_shapes.push_back(static_cast<int64_t>(t.shape.size()));
                    out_shapes.insert(out_shapes.end(), t.shape.begin(), t.shape.end());
                }
            }
            copy = et::Node{};
            copy.id = node.id;
            copy.parent = node.parent;
            copy.tid = node.tid;
            copy.kind = et::NodeKind::kOperator;
            copy.category = dev::OpCategory::kCustom;
            copy.name = "obf::proxy";
            copy.op_schema = "obf::proxy(Tensor[] inputs, int flops, int bytes, "
                             "int[] out_shapes) -> Tensor[]";
            copy.inputs.push_back(et::Argument::from_tensor_list(std::move(in_tensors)));
            copy.inputs.push_back(et::Argument::from_int(
                static_cast<int64_t>(flops_by_root.count(node.id) != 0
                                         ? flops_by_root.at(node.id)
                                         : 0.0)));
            copy.inputs.push_back(et::Argument::from_int(
                static_cast<int64_t>(bytes_by_root.count(node.id) != 0
                                         ? bytes_by_root.at(node.id)
                                         : 0.0)));
            copy.inputs.push_back(et::Argument::from_int_list(std::move(out_shapes)));
            copy.outputs.push_back(et::Argument::from_tensor_list(std::move(out_tensors)));
        } else if (opts.anonymize_annotations && node.kind == et::NodeKind::kWrapper) {
            copy.name = strprintf("annotation_%lld",
                                  static_cast<long long>(annotation_counter++));
        }
        out.add_node(std::move(copy));
    }
    return out;
}

} // namespace mystique::core
