#include "core/replayer.h"

#include <algorithm>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "common/error.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/plan_cache.h"
#include "sim/timeline.h"

namespace mystique::core {

namespace {

/// Weight of the cross-stream contention penalty applied at the end of each
/// async iteration: the iteration clock advances by
/// `alpha * MultiStreamTimeline::overlap_excess()` after the device drains.
/// alpha = 0 would model perfectly free overlap; a small positive value
/// reflects that concurrent streams share SMs and memory bandwidth, so
/// overlapped busy time is slightly slower than the sum of its parts.
constexpr double kStreamContentionAlpha = 0.05;

/// Immutable per-run scheduling state derived from a plan's DepGraph: the
/// per-stream FIFO lanes (ascending stream id, units in program order) and
/// the reverse dependency adjacency used to retire edges as units finish.
struct AsyncSchedule {
    struct Lane {
        int stream = 0;
        std::vector<int> units; ///< unit indices, program order
    };
    std::vector<Lane> lanes;
    std::vector<std::vector<int>> dependents; ///< unit → later dependent units
    std::vector<int> base_indegree;           ///< unit → number of deps
};

AsyncSchedule
build_schedule(const DepGraph& graph)
{
    AsyncSchedule sched;
    const std::size_t n = graph.units.size();
    sched.dependents.resize(n);
    sched.base_indegree.resize(n, 0);
    for (std::size_t u = 0; u < n; ++u) {
        const DepUnit& unit = graph.units[u];
        sched.base_indegree[u] = static_cast<int>(unit.deps.size());
        for (int d : unit.deps)
            sched.dependents[static_cast<std::size_t>(d)].push_back(static_cast<int>(u));
        auto it = std::find_if(sched.lanes.begin(), sched.lanes.end(),
                               [&](const AsyncSchedule::Lane& l) {
                                   return l.stream >= unit.stream;
                               });
        if (it == sched.lanes.end() || it->stream != unit.stream)
            it = sched.lanes.insert(it, AsyncSchedule::Lane{unit.stream, {}});
        it->units.push_back(static_cast<int>(u));
    }
    return sched;
}

/// Clears the async-executor session state on every exit path (including a
/// CancelledError thrown between units), so a caught cancellation can never
/// leave a dangling clock override or sticky reseed mode on a reused session.
struct AsyncModeGuard {
    fw::Session& session;
    ~AsyncModeGuard()
    {
        session.set_clock_override(nullptr);
        session.set_node_reseed_mode(false);
        session.set_stream_override(std::nullopt);
    }
};

/// Runs one iteration of the dependency-tracked multi-stream executor.
///
/// The scheduler is deterministic and cooperative: every stream is a FIFO
/// lane with its own virtual clock (reset to @p iter_start), and the next
/// unit executed is always the eligible lane head with the earliest lane
/// clock (ties broken by ascending stream id).  Eligible means every
/// dependency edge has retired.  Because per-node reseeding makes each
/// unit's randomness a pure function of its identity, and each kernel's
/// start time is a pure function of its lane clock, stream FIFO tail and
/// input readiness, the resulting timeline and numerics are independent of
/// the interleaving — async replay is bit-identical per stream to any other
/// schedule of the same graph.
///
/// @return the iteration end time: all lanes joined, device drained, plus
///         the cross-stream contention penalty.
sim::TimeUs
run_async_iteration(fw::Session& session, const ReplayPlan& plan, TensorManager& tm,
                    const AsyncSchedule& sched, const CancelToken* cancel,
                    sim::TimeUs iter_start)
{
    const std::vector<ReconstructedOp>& ops = plan.ops();
    const DepGraph& graph = plan.dep_graph();
    const std::size_t n_units = graph.units.size();
    const std::size_t first_record = session.device().records().size();

    std::vector<int> indegree = sched.base_indegree;
    std::vector<std::size_t> next(sched.lanes.size(), 0);
    std::vector<sim::VirtualClock> clocks(sched.lanes.size());
    for (auto& clk : clocks)
        clk.reset(iter_start);

    AsyncModeGuard guard{session};
    session.set_node_reseed_mode(true);

    std::size_t executed = 0;
    while (executed < n_units) {
        // Pick the eligible lane head with the earliest clock.  A stalled
        // graph (no eligible head while work remains) can only mean a
        // malformed dependency graph; validate_dep_graph makes that
        // unreachable for derived graphs, so fail loudly.
        std::size_t pick = sched.lanes.size();
        for (std::size_t li = 0; li < sched.lanes.size(); ++li) {
            if (next[li] >= sched.lanes[li].units.size())
                continue;
            const int u = sched.lanes[li].units[next[li]];
            if (indegree[static_cast<std::size_t>(u)] != 0)
                continue;
            if (pick == sched.lanes.size() || clocks[li].now() < clocks[pick].now())
                pick = li;
        }
        MYST_CHECK_MSG(pick < sched.lanes.size(),
                       "async executor stalled: no eligible stream head");

        // Same cooperative cancel contract as the serial walk: between
        // units, never inside one.
        if (cancel != nullptr)
            cancel->throw_if_expired("replay cancelled between ops");

        const int u = sched.lanes[pick].units[next[pick]];
        const DepUnit& unit = graph.units[static_cast<std::size_t>(u)];
        const ReconstructedOp& op = ops[static_cast<std::size_t>(unit.head)];
        session.set_clock_override(&clocks[pick]);
        if (unit.group >= 0) {
            const FusedGroup& group =
                plan.fused_groups()[static_cast<std::size_t>(unit.group)];
            session.switch_thread(group.tid); // relabel only, under override
            session.set_stream_override(group.stream);
            execute_fused_group(session, group, tm);
        } else {
            session.reseed_for_node(op.node->id);
            session.switch_thread(op.node->tid);
            session.set_stream_override(op.stream);
            execute_reconstructed(session, op, tm);
        }
        session.set_stream_override(std::nullopt);

        ++next[pick];
        ++executed;
        for (int v : sched.dependents[static_cast<std::size_t>(u)])
            --indegree[static_cast<std::size_t>(v)];
    }

    // Join: the main clock resumes at the latest lane time, then blocks on
    // the device drain, then pays the contention penalty for busy time that
    // ran concurrently across streams this iteration.
    sim::TimeUs lanes_end = iter_start;
    for (const auto& clk : clocks)
        lanes_end = std::max(lanes_end, clk.now());
    session.set_clock_override(nullptr);
    session.set_node_reseed_mode(false);
    session.set_tid(fw::kMainThread);
    session.cpu_advance_to(lanes_end);
    session.sync_device();

    sim::MultiStreamTimeline timeline;
    const std::vector<dev::KernelRecord>& records = session.device().records();
    for (std::size_t i = first_record; i < records.size(); ++i)
        timeline.add(records[i].stream_id, records[i].interval);
    session.cpu_advance(kStreamContentionAlpha * timeline.overlap_excess());
    return session.cpu_now();
}

/// Process-wide executor state for run_distributed: one shared ThreadPool
/// (grown to the largest world size seen, then reused) plus one cached
/// Session per rank slot.  Repeated distributed replays — the §7.3 scale-down
/// sweeps and every bench that replays the same job N times — stop paying
/// one OS-thread spawn and one cold Session (device tables, arena, autograd
/// engine) per rank per call: sessions are rewound with reset_for_replay(),
/// which deliberately keeps each rank's StorageArena, so rank r's second
/// replay recycles rank r's buffers.
///
/// Sessions are exclusive state, so concurrent run_distributed calls
/// serialize on `mu` (they used to interleave on private ad-hoc threads; a
/// distributed replay saturates the host anyway, so back-to-back is the
/// faster schedule for the calls too).  Rank tasks rendezvous inside
/// collectives, which means every rank of a call MUST run concurrently —
/// the pool is therefore never smaller than the current world size.
class DistributedReplayPool {
  public:
    static DistributedReplayPool& instance()
    {
        static DistributedReplayPool pool;
        return pool;
    }

    /// Guards the session slots across whole run_distributed calls.
    std::mutex mu;

    /// The shared pool, grown (never shrunk) to hold @p world concurrent
    /// rank tasks.  Growth rebuilds the pool; the common repeated-replay
    /// case reuses the existing threads untouched.
    ThreadPool& thread_pool(std::size_t world)
    {
        if (pool_ == nullptr || pool_->size() < world)
            pool_ = std::make_unique<ThreadPool>(world);
        return *pool_;
    }

    /// The cached session for @p rank, rewound for a fresh replay.  Rebuilt
    /// only when the session-shaping parameters (platform, mode, seed, power
    /// limit, world size) changed since the slot was last used; a rebuild
    /// drops that rank's arena, a reuse keeps it.
    fw::Session& rank_session(int rank, int world, const ReplayConfig& cfg)
    {
        Fnv1a h;
        h.mix(cfg.platform);
        h.mix_pod(cfg.mode);
        h.mix_pod(cfg.seed);
        h.mix_pod(cfg.power_limit_w.has_value());
        if (cfg.power_limit_w.has_value())
            h.mix_pod(*cfg.power_limit_w);
        h.mix_pod(world);
        const uint64_t opts_fp = h.value();

        if (sessions_.size() < static_cast<std::size_t>(world))
            sessions_.resize(static_cast<std::size_t>(world));
        Slot& slot = sessions_[static_cast<std::size_t>(rank)];
        if (slot.session == nullptr || slot.opts_fp != opts_fp) {
            fw::SessionOptions opts;
            opts.platform = dev::platform(cfg.platform);
            opts.mode = cfg.mode;
            opts.seed = cfg.seed;
            opts.rank = rank;
            opts.world_size = world;
            opts.power_limit_w = cfg.power_limit_w;
            opts.dispatch = fw::DispatchProfile::replay();
            slot.session = std::make_unique<fw::Session>(opts);
            slot.opts_fp = opts_fp;
        } else {
            slot.session->reset_for_replay();
        }
        return *slot.session;
    }

  private:
    DistributedReplayPool() = default;

    struct Slot {
        uint64_t opts_fp = 0;
        std::unique_ptr<fw::Session> session;
    };

    std::unique_ptr<ThreadPool> pool_;
    std::vector<Slot> sessions_;
};

} // namespace

Replayer::Replayer(const et::ExecutionTrace& trace, const prof::ProfilerTrace* original_prof,
                   ReplayConfig cfg)
    : plan_(ReplayPlan::build_borrowing(trace, original_prof, cfg)), cfg_(std::move(cfg))
{
}

Replayer::Replayer(std::shared_ptr<const ReplayPlan> plan, ReplayConfig cfg)
    : plan_(std::move(plan)), cfg_(std::move(cfg))
{
    MYST_CHECK(plan_ != nullptr);
    // Executing a plan under a config it was not built for silently replays
    // the wrong selection/embedding/mode; the key makes the misuse loud.
    MYST_CHECK_MSG(plan_->key().config_fp == cfg_.fingerprint(),
                   "ReplayConfig does not match the config the plan was built under");
}

void
Replayer::register_process_groups(fw::Session& session,
                                  const std::shared_ptr<comm::CommFabric>& fabric)
{
    for (const auto& [pg_id, orig_ranks] : plan_->trace().meta().process_groups) {
        // Map the original group onto the replay world: members beyond the
        // replay world size exist only in the emulated dimension (§7.3).
        std::vector<int> ranks;
        for (int r : orig_ranks) {
            if (r < fabric->world_size())
                ranks.push_back(r);
        }
        if (ranks.empty() ||
            std::find(ranks.begin(), ranks.end(), session.rank()) == ranks.end())
            continue;
        const int64_t new_gid = fabric->new_group(ranks);
        auto pg = std::make_shared<comm::ProcessGroup>(fabric, new_gid, session.rank());
        if (cfg_.emulate_world_size > 0) {
            pg->set_emulated_world_size(cfg_.emulate_world_size);
        } else if (cfg_.emulate_world_size == -1) {
            pg->set_emulated_world_size(static_cast<int>(orig_ranks.size()));
        }
        session.add_process_group(pg_id, pg);
    }
}

ReplayResult
Replayer::run(const CancelToken* cancel)
{
    fw::SessionOptions opts;
    opts.platform = dev::platform(cfg_.platform);
    opts.mode = cfg_.mode;
    opts.seed = cfg_.seed;
    opts.rank = 0;
    opts.world_size = 1;
    opts.power_limit_w = cfg_.power_limit_w;
    opts.dispatch = fw::DispatchProfile::replay();
    fw::Session session(opts);
    auto fabric = std::make_shared<comm::CommFabric>(1);
    return run_with(session, fabric, cancel);
}

ReplayResult
Replayer::run_with(fw::Session& session, const std::shared_ptr<comm::CommFabric>& fabric,
                   const CancelToken* cancel)
{
    register_process_groups(session, fabric);

    // Replay executes recorded backward ops explicitly; no taping.
    session.set_grad_enabled(false);

    const std::vector<ReconstructedOp>& ops = plan_->ops();

    TensorManager tm(session, cfg_.embedding);
    std::vector<const et::Node*> selected_nodes;
    selected_nodes.reserve(ops.size());
    for (const auto& op : ops) {
        if (op.kind != ReconstructedOp::Kind::kSkipped)
            selected_nodes.push_back(op.node);
    }
    tm.analyze(selected_nodes);
    tm.instantiate_externals();

    // The profiler is a stack local; detach on every exit path (including
    // exceptions) so a reused session can never hold a dangling pointer.
    prof::ProfilerSession profiler;
    session.attach_profiler(&profiler);
    struct ProfilerDetach {
        fw::Session& session;
        ~ProfilerDetach() { session.attach_profiler(nullptr); }
    } detach_guard{session};

    ReplayResult result;
    result.coverage = plan_->coverage();

    // The dependency-tracked multi-stream executor (MYST_ASYNC, §4.5's
    // stream semantics taken to their concurrent conclusion) replaces the
    // program-order walk whenever the config asks for it and the plan
    // carries a dependency graph.  The schedule skeleton is built once per
    // replay; per-iteration state (lane clocks, retired-edge counters) is
    // local to run_async_iteration.
    const bool async_mode = cfg_.async_level > 0 && !plan_->dep_graph().empty();
    AsyncSchedule sched;
    if (async_mode)
        sched = build_schedule(plan_->dep_graph());

    const int total_iters = cfg_.warmup_iterations + cfg_.iterations;
    sim::TimeUs timed_start = 0.0;
    for (int iter = 0; iter < total_iters; ++iter) {
        // Profile exactly one iteration, mirroring the original-run harness
        // (so similarity compares like for like).
        const bool profiled = cfg_.collect_profiler && iter == cfg_.warmup_iterations;
        if (profiled)
            profiler.start();
        const sim::TimeUs iter_start = session.sync_device();
        if (iter == cfg_.warmup_iterations)
            timed_start = iter_start;

        sim::TimeUs iter_end = iter_start;
        if (async_mode) {
            iter_end = run_async_iteration(session, *plan_, tm, sched, cancel, iter_start);
        } else {
            for (const auto& op : ops) {
                // Cooperative deadline/cancel point: between ops, never inside
                // one — a kernel that started always completes, so cancellation
                // can never tear the simulated device state.
                if (cancel != nullptr)
                    cancel->throw_if_expired("replay cancelled between ops");
                if (op.kind == ReconstructedOp::Kind::kSkipped)
                    continue;
                if (op.fused_group >= 0) {
                    // Members replay as one loop-fused interpreter call issued
                    // at the head; the rest of the group is already covered.
                    if (!op.fused_head)
                        continue;
                    const FusedGroup& group =
                        plan_->fused_groups()[static_cast<std::size_t>(op.fused_group)];
                    session.switch_thread(group.tid);
                    session.set_stream_override(group.stream);
                    execute_fused_group(session, group, tm);
                    session.set_stream_override(std::nullopt);
                    continue;
                }
                session.switch_thread(op.node->tid);
                session.set_stream_override(op.stream);
                execute_reconstructed(session, op, tm);
                session.set_stream_override(std::nullopt);
            }
            session.switch_thread(fw::kMainThread);
            iter_end = session.sync_device();
        }
        if (iter >= cfg_.warmup_iterations)
            result.iter_us.push_back(iter_end - iter_start);
        if (profiled)
            profiler.stop();
    }

    RunningStat stat;
    for (double t : result.iter_us)
        stat.add(t);
    result.mean_iter_us = stat.mean();
    result.metrics = session.device().metrics(timed_start, session.cpu_now());
    result.prof = profiler.take_trace();
    result.numeric_digest = tm.digest();
    return result;
}

std::vector<ReplayResult>
Replayer::run_distributed(const std::vector<const et::ExecutionTrace*>& traces,
                          const std::vector<const prof::ProfilerTrace*>& profs,
                          ReplayConfig cfg, comm::Topology topo)
{
    MYST_CHECK(!traces.empty());
    MYST_CHECK(profs.size() == traces.size());
    const int world = static_cast<int>(traces.size());
    auto fabric = std::make_shared<comm::CommFabric>(world, comm::NetworkModel(topo));

    // Exclusive use of the shared pool and its per-rank sessions for the
    // whole call; concurrent run_distributed calls queue here.
    DistributedReplayPool& shared = DistributedReplayPool::instance();
    std::lock_guard<std::mutex> lock(shared.mu);
    ThreadPool& pool = shared.thread_pool(static_cast<std::size_t>(world));

    // Sessions are prepared (reused + reset, or rebuilt) on the caller's
    // thread — the rank tasks then each own exactly one session, as before.
    std::vector<fw::Session*> sessions(static_cast<std::size_t>(world));
    for (int rank = 0; rank < world; ++rank)
        sessions[static_cast<std::size_t>(rank)] = &shared.rank_session(rank, world, cfg);

    std::vector<ReplayResult> results(static_cast<std::size_t>(world));
    std::vector<std::string> errors(static_cast<std::size_t>(world));
    std::vector<std::future<void>> done;
    done.reserve(static_cast<std::size_t>(world));
    for (int rank = 0; rank < world; ++rank) {
        done.push_back(pool.submit([&, rank] {
            try {
                // Each rank fetches its plan through the process-wide cache
                // *inside* its task: equivalent ranks — all of them, in the
                // §7.3 scale-down and data-parallel cases — share one plan
                // built exactly once (the cache's per-key future serializes
                // same-key builds), while ranks with structurally distinct
                // traces build their plans in parallel.
                const std::shared_ptr<const ReplayPlan> plan =
                    PlanCache::instance().get_or_build(
                        *traces[static_cast<std::size_t>(rank)],
                        profs[static_cast<std::size_t>(rank)], cfg);
                Replayer replayer(plan, cfg);
                results[static_cast<std::size_t>(rank)] = replayer.run_with(
                    *sessions[static_cast<std::size_t>(rank)], fabric);
            } catch (const std::exception& e) {
                errors[static_cast<std::size_t>(rank)] = e.what();
            }
        }));
    }
    for (auto& f : done)
        f.get(); // rank errors are reported below; the tasks never throw
    for (int rank = 0; rank < world; ++rank) {
        if (!errors[static_cast<std::size_t>(rank)].empty())
            MYST_THROW(ReplayError,
                       "rank " << rank << " replay failed: "
                               << errors[static_cast<std::size_t>(rank)]);
    }
    return results;
}

} // namespace mystique::core
