#include "core/replayer.h"

#include <algorithm>
#include <thread>

#include "common/error.h"
#include "common/logging.h"
#include "common/stats.h"

namespace mystique::core {

Replayer::Replayer(const et::ExecutionTrace& trace, const prof::ProfilerTrace* original_prof,
                   ReplayConfig cfg)
    : trace_(trace), original_prof_(original_prof), cfg_(std::move(cfg))
{
    fw::ensure_ops_registered();
    build_plan();
}

void
Replayer::build_plan()
{
    selection_ = select_ops(trace_, cfg_.custom_ops, cfg_.filter);
    coverage_ = coverage(trace_, selection_, original_prof_);

    // Reconstruct every selected op up-front (§4.3.4: initialization phase).
    ops_.reserve(selection_.ops.size());
    for (const auto& sel : selection_.ops) {
        const et::Node* node = trace_.find(sel.node_id);
        MYST_CHECK(node != nullptr);
        ReconstructedOp op = reconstructor_.reconstruct(*node, sel.supported);

        // Stream assignment from the profiler trace (§4.5): an op's kernels
        // correlate with its own node or its descendants'.
        if (original_prof_ != nullptr && op.kind != ReconstructedOp::Kind::kSkipped) {
            auto it = selection_.subtree_ids.find(sel.node_id);
            if (it != selection_.subtree_ids.end()) {
                for (int64_t sub_id : it->second) {
                    auto streams = original_prof_->streams_for_node(sub_id);
                    if (!streams.empty()) {
                        op.stream = streams.front();
                        break;
                    }
                }
            }
        }
        ops_.push_back(std::move(op));
    }
}

void
Replayer::register_process_groups(fw::Session& session,
                                  const std::shared_ptr<comm::CommFabric>& fabric)
{
    for (const auto& [pg_id, orig_ranks] : trace_.meta().process_groups) {
        // Map the original group onto the replay world: members beyond the
        // replay world size exist only in the emulated dimension (§7.3).
        std::vector<int> ranks;
        for (int r : orig_ranks) {
            if (r < fabric->world_size())
                ranks.push_back(r);
        }
        if (ranks.empty() ||
            std::find(ranks.begin(), ranks.end(), session.rank()) == ranks.end())
            continue;
        const int64_t new_gid = fabric->new_group(ranks);
        auto pg = std::make_shared<comm::ProcessGroup>(fabric, new_gid, session.rank());
        if (cfg_.emulate_world_size > 0) {
            pg->set_emulated_world_size(cfg_.emulate_world_size);
        } else if (cfg_.emulate_world_size == -1) {
            pg->set_emulated_world_size(static_cast<int>(orig_ranks.size()));
        }
        session.add_process_group(pg_id, pg);
    }
}

ReplayResult
Replayer::run()
{
    fw::SessionOptions opts;
    opts.platform = dev::platform(cfg_.platform);
    opts.mode = cfg_.mode;
    opts.seed = cfg_.seed;
    opts.rank = 0;
    opts.world_size = 1;
    opts.power_limit_w = cfg_.power_limit_w;
    opts.dispatch = fw::DispatchProfile::replay();
    fw::Session session(opts);
    auto fabric = std::make_shared<comm::CommFabric>(1);
    return run_with(session, fabric);
}

ReplayResult
Replayer::run_with(fw::Session& session, const std::shared_ptr<comm::CommFabric>& fabric)
{
    register_process_groups(session, fabric);

    // Replay executes recorded backward ops explicitly; no taping.
    session.set_grad_enabled(false);

    TensorManager tm(session, cfg_.embedding);
    std::vector<const et::Node*> selected_nodes;
    selected_nodes.reserve(ops_.size());
    for (const auto& op : ops_) {
        if (op.kind != ReconstructedOp::Kind::kSkipped)
            selected_nodes.push_back(op.node);
    }
    tm.analyze(selected_nodes);
    tm.instantiate_externals();

    prof::ProfilerSession profiler;
    session.attach_profiler(&profiler);

    ReplayResult result;
    result.coverage = coverage_;

    const int total_iters = cfg_.warmup_iterations + cfg_.iterations;
    sim::TimeUs timed_start = 0.0;
    for (int iter = 0; iter < total_iters; ++iter) {
        // Profile exactly one iteration, mirroring the original-run harness
        // (so similarity compares like for like).
        const bool profiled = cfg_.collect_profiler && iter == cfg_.warmup_iterations;
        if (profiled)
            profiler.start();
        const sim::TimeUs iter_start = session.sync_device();
        if (iter == cfg_.warmup_iterations)
            timed_start = iter_start;

        for (const auto& op : ops_) {
            if (op.kind == ReconstructedOp::Kind::kSkipped)
                continue;
            session.switch_thread(op.node->tid);
            session.set_stream_override(op.stream);
            execute_reconstructed(session, op, tm);
            session.set_stream_override(std::nullopt);
        }
        session.switch_thread(fw::kMainThread);
        const sim::TimeUs iter_end = session.sync_device();
        if (iter >= cfg_.warmup_iterations)
            result.iter_us.push_back(iter_end - iter_start);
        if (profiled)
            profiler.stop();
    }

    RunningStat stat;
    for (double t : result.iter_us)
        stat.add(t);
    result.mean_iter_us = stat.mean();
    result.metrics = session.device().metrics(timed_start, session.cpu_now());
    result.prof = profiler.take_trace();
    return result;
}

std::vector<ReplayResult>
Replayer::run_distributed(const std::vector<const et::ExecutionTrace*>& traces,
                          const std::vector<const prof::ProfilerTrace*>& profs,
                          ReplayConfig cfg, comm::Topology topo)
{
    MYST_CHECK(!traces.empty());
    MYST_CHECK(profs.size() == traces.size());
    const int world = static_cast<int>(traces.size());
    auto fabric = std::make_shared<comm::CommFabric>(world, comm::NetworkModel(topo));

    std::vector<ReplayResult> results(static_cast<std::size_t>(world));
    std::vector<std::string> errors(static_cast<std::size_t>(world));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(world));
    for (int rank = 0; rank < world; ++rank) {
        threads.emplace_back([&, rank] {
            try {
                fw::SessionOptions opts;
                opts.platform = dev::platform(cfg.platform);
                opts.mode = cfg.mode;
                opts.seed = cfg.seed;
                opts.rank = rank;
                opts.world_size = world;
                opts.power_limit_w = cfg.power_limit_w;
                opts.dispatch = fw::DispatchProfile::replay();
                fw::Session session(opts);
                Replayer replayer(*traces[static_cast<std::size_t>(rank)],
                                  profs[static_cast<std::size_t>(rank)], cfg);
                results[static_cast<std::size_t>(rank)] =
                    replayer.run_with(session, fabric);
            } catch (const std::exception& e) {
                errors[static_cast<std::size_t>(rank)] = e.what();
            }
        });
    }
    for (auto& t : threads)
        t.join();
    for (int rank = 0; rank < world; ++rank) {
        if (!errors[static_cast<std::size_t>(rank)].empty())
            MYST_THROW(ReplayError,
                       "rank " << rank << " replay failed: "
                               << errors[static_cast<std::size_t>(rank)]);
    }
    return results;
}

} // namespace mystique::core
