#include "core/replayer.h"

#include <algorithm>
#include <thread>

#include "common/error.h"
#include "common/logging.h"
#include "common/stats.h"
#include "core/plan_cache.h"

namespace mystique::core {

Replayer::Replayer(const et::ExecutionTrace& trace, const prof::ProfilerTrace* original_prof,
                   ReplayConfig cfg)
    : plan_(ReplayPlan::build_borrowing(trace, original_prof, cfg)), cfg_(std::move(cfg))
{
}

Replayer::Replayer(std::shared_ptr<const ReplayPlan> plan, ReplayConfig cfg)
    : plan_(std::move(plan)), cfg_(std::move(cfg))
{
    MYST_CHECK(plan_ != nullptr);
    // Executing a plan under a config it was not built for silently replays
    // the wrong selection/embedding/mode; the key makes the misuse loud.
    MYST_CHECK_MSG(plan_->key().config_fp == cfg_.fingerprint(),
                   "ReplayConfig does not match the config the plan was built under");
}

void
Replayer::register_process_groups(fw::Session& session,
                                  const std::shared_ptr<comm::CommFabric>& fabric)
{
    for (const auto& [pg_id, orig_ranks] : plan_->trace().meta().process_groups) {
        // Map the original group onto the replay world: members beyond the
        // replay world size exist only in the emulated dimension (§7.3).
        std::vector<int> ranks;
        for (int r : orig_ranks) {
            if (r < fabric->world_size())
                ranks.push_back(r);
        }
        if (ranks.empty() ||
            std::find(ranks.begin(), ranks.end(), session.rank()) == ranks.end())
            continue;
        const int64_t new_gid = fabric->new_group(ranks);
        auto pg = std::make_shared<comm::ProcessGroup>(fabric, new_gid, session.rank());
        if (cfg_.emulate_world_size > 0) {
            pg->set_emulated_world_size(cfg_.emulate_world_size);
        } else if (cfg_.emulate_world_size == -1) {
            pg->set_emulated_world_size(static_cast<int>(orig_ranks.size()));
        }
        session.add_process_group(pg_id, pg);
    }
}

ReplayResult
Replayer::run()
{
    fw::SessionOptions opts;
    opts.platform = dev::platform(cfg_.platform);
    opts.mode = cfg_.mode;
    opts.seed = cfg_.seed;
    opts.rank = 0;
    opts.world_size = 1;
    opts.power_limit_w = cfg_.power_limit_w;
    opts.dispatch = fw::DispatchProfile::replay();
    fw::Session session(opts);
    auto fabric = std::make_shared<comm::CommFabric>(1);
    return run_with(session, fabric);
}

ReplayResult
Replayer::run_with(fw::Session& session, const std::shared_ptr<comm::CommFabric>& fabric)
{
    register_process_groups(session, fabric);

    // Replay executes recorded backward ops explicitly; no taping.
    session.set_grad_enabled(false);

    const std::vector<ReconstructedOp>& ops = plan_->ops();

    TensorManager tm(session, cfg_.embedding);
    std::vector<const et::Node*> selected_nodes;
    selected_nodes.reserve(ops.size());
    for (const auto& op : ops) {
        if (op.kind != ReconstructedOp::Kind::kSkipped)
            selected_nodes.push_back(op.node);
    }
    tm.analyze(selected_nodes);
    tm.instantiate_externals();

    // The profiler is a stack local; detach on every exit path (including
    // exceptions) so a reused session can never hold a dangling pointer.
    prof::ProfilerSession profiler;
    session.attach_profiler(&profiler);
    struct ProfilerDetach {
        fw::Session& session;
        ~ProfilerDetach() { session.attach_profiler(nullptr); }
    } detach_guard{session};

    ReplayResult result;
    result.coverage = plan_->coverage();

    const int total_iters = cfg_.warmup_iterations + cfg_.iterations;
    sim::TimeUs timed_start = 0.0;
    for (int iter = 0; iter < total_iters; ++iter) {
        // Profile exactly one iteration, mirroring the original-run harness
        // (so similarity compares like for like).
        const bool profiled = cfg_.collect_profiler && iter == cfg_.warmup_iterations;
        if (profiled)
            profiler.start();
        const sim::TimeUs iter_start = session.sync_device();
        if (iter == cfg_.warmup_iterations)
            timed_start = iter_start;

        for (const auto& op : ops) {
            if (op.kind == ReconstructedOp::Kind::kSkipped)
                continue;
            session.switch_thread(op.node->tid);
            session.set_stream_override(op.stream);
            execute_reconstructed(session, op, tm);
            session.set_stream_override(std::nullopt);
        }
        session.switch_thread(fw::kMainThread);
        const sim::TimeUs iter_end = session.sync_device();
        if (iter >= cfg_.warmup_iterations)
            result.iter_us.push_back(iter_end - iter_start);
        if (profiled)
            profiler.stop();
    }

    RunningStat stat;
    for (double t : result.iter_us)
        stat.add(t);
    result.mean_iter_us = stat.mean();
    result.metrics = session.device().metrics(timed_start, session.cpu_now());
    result.prof = profiler.take_trace();
    return result;
}

std::vector<ReplayResult>
Replayer::run_distributed(const std::vector<const et::ExecutionTrace*>& traces,
                          const std::vector<const prof::ProfilerTrace*>& profs,
                          ReplayConfig cfg, comm::Topology topo)
{
    MYST_CHECK(!traces.empty());
    MYST_CHECK(profs.size() == traces.size());
    const int world = static_cast<int>(traces.size());
    auto fabric = std::make_shared<comm::CommFabric>(world, comm::NetworkModel(topo));

    std::vector<ReplayResult> results(static_cast<std::size_t>(world));
    std::vector<std::string> errors(static_cast<std::size_t>(world));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(world));
    for (int rank = 0; rank < world; ++rank) {
        threads.emplace_back([&, rank] {
            try {
                // Each rank fetches its plan through the process-wide cache
                // *inside* its thread: equivalent ranks — all of them, in the
                // §7.3 scale-down and data-parallel cases — share one plan
                // built exactly once (the cache's per-key future serializes
                // same-key builds), while ranks with structurally distinct
                // traces build their plans in parallel.
                const std::shared_ptr<const ReplayPlan> plan =
                    PlanCache::instance().get_or_build(
                        *traces[static_cast<std::size_t>(rank)],
                        profs[static_cast<std::size_t>(rank)], cfg);
                fw::SessionOptions opts;
                opts.platform = dev::platform(cfg.platform);
                opts.mode = cfg.mode;
                opts.seed = cfg.seed;
                opts.rank = rank;
                opts.world_size = world;
                opts.power_limit_w = cfg.power_limit_w;
                opts.dispatch = fw::DispatchProfile::replay();
                fw::Session session(opts);
                Replayer replayer(plan, cfg);
                results[static_cast<std::size_t>(rank)] =
                    replayer.run_with(session, fabric);
            } catch (const std::exception& e) {
                errors[static_cast<std::size_t>(rank)] = e.what();
            }
        });
    }
    for (auto& t : threads)
        t.join();
    for (int rank = 0; rank < world; ++rank) {
        if (!errors[static_cast<std::size_t>(rank)].empty())
            MYST_THROW(ReplayError,
                       "rank " << rank << " replay failed: "
                               << errors[static_cast<std::size_t>(rank)]);
    }
    return results;
}

} // namespace mystique::core
