#pragma once

/// @file
/// Shared replay plans (§8.2 fleet-scale story).
///
/// A ReplayPlan is the immutable output of the replay *build phase*:
/// selection (§4.2) + coverage accounting (§6.3) + reconstructed callables
/// (§4.3) + per-op stream assignments (§4.5), all OpId-indexed.  Building a
/// plan is the expensive part of replay setup; executing one is cheap.  The
/// split lets equivalent traces — the trace-database grouping case — share
/// one plan across many replays and many rank threads.
///
/// Immutability & thread-safety: a plan owns a private copy of the trace it
/// was built from (so it is self-contained and safe to cache process-wide),
/// and after build() returns nothing in it is ever written again except the
/// relaxed-atomic OpIdCache slots inside its own trace copy and compiled IR
/// graphs, whose idempotent writes are race-free by design (common/op_id.h).
/// Concurrent rank executors may therefore hold `shared_ptr<const ReplayPlan>`
/// and replay it simultaneously.
///
/// Identity: plans are keyed by PlanKey = (trace structural fingerprint,
/// supported-OpId-set fingerprint, ReplayConfig fingerprint, profiler
/// stream-map fingerprint).  ReplayConfig::fingerprint() covers exactly the fields that
/// shape a plan or its replayed timing per trace (platform, mode, filter,
/// embedding generation, custom-op set, emulate_world_size) and excludes
/// run-harness knobs (iterations, warmup, seed, power limit, profiling), so
/// re-measuring the same benchmark with different iteration counts still
/// hits the cache.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/plan_optimizer.h"
#include "core/reconstruction.h"
#include "core/selection.h"
#include "core/tensor_manager.h"
#include "et/trace.h"
#include "profiler/profiler.h"

namespace mystique::core {

/// Default optimizer level: MYST_OPT_LEVEL when set, else 1 (optimizer on).
/// Read per call so tests can flip the environment between builds.
int default_opt_level();

/// Default async-executor level: MYST_ASYNC when set, else 1 (multi-stream
/// executor on).  Read per call so tests can flip the environment.
int default_async_level();

/// Replay configuration.
struct ReplayConfig {
    std::string platform = "A100";
    fw::ExecMode mode = fw::ExecMode::kShapeOnly;
    int warmup_iterations = 1;
    int iterations = 5;
    uint64_t seed = 0xB53C;
    std::optional<double> power_limit_w;

    /// Subtrace / operator-type filters (§7.1).
    SelectionFilter filter;

    /// Embedding index generation (§4.4's refinement interface).
    EmbeddingGenConfig embedding;

    /// Replayable custom ops (§4.3.3).
    CustomOpRegistry custom_ops = CustomOpRegistry::with_defaults();

    /// Scaled-down emulation (§7.3): 0 = off (rendezvous at actual size);
    /// -1 = emulate the *original* group sizes from the trace metadata;
    /// >0 = emulate this world size.
    int emulate_world_size = 0;

    /// Plan-level optimizer (core/plan_optimizer): 0 = verbatim plans,
    /// > 0 = dead-op elimination + algebraic simplify + pointwise-chain
    /// fusion at build time.  Part of fingerprint(): optimized and verbatim
    /// plans never alias in the memory or disk tier.
    int opt_level = default_opt_level();

    /// Multi-stream async executor (core/replayer): 0 = serial op-by-op
    /// walk, > 0 = dependency-tracked execution that runs independent
    /// streams concurrently and overlaps collectives with compute.  Part of
    /// fingerprint(): async and serial replays model different device
    /// timelines, so their plans must never alias in either cache tier.
    int async_level = default_async_level();

    /// Collect a profiler trace of the replay run (needed for similarity).
    bool collect_profiler = true;

    /// Stable hash over the plan-shaping fields only: platform, mode, filter,
    /// embedding, custom-op set, emulate_world_size.  Harness knobs that do
    /// not change what gets built or how each op replays — iterations,
    /// warmup_iterations, seed, power_limit_w, collect_profiler — are
    /// deliberately excluded so they cannot fragment the plan cache.
    uint64_t fingerprint() const;

    /// Full round-trip serialization (every field, harness knobs included) —
    /// generated benchmark packages embed the config in manifest.json so a
    /// consumer can re-derive the exact plan key the package was built under.
    Json to_json() const;
    static ReplayConfig from_json(const Json& j);
};

/// The composite plan-cache key.  All components are name/value-based hashes
/// (never process-local OpIds), so equal keys mean "structurally identical
/// trace, same replayable set, same plan-shaping config".  The trace
/// component is the *structural* fingerprint (node order, schemas, shapes,
/// argument values, process groups) — not the coarse operator-mix hash the
/// database analyzer groups by — because a plan bakes shapes and stream
/// assignments in; traces that merely share an op mix must not silently
/// substitute for one another at the cache layer.  (Replaying a group
/// *representative* in place of its members is still the driver's explicit
/// policy, per §8.2 — the approximation lives there, visibly, not here.)
struct PlanKey {
    uint64_t trace_fp = 0;     ///< ExecutionTrace::structural_fingerprint()
    uint64_t supported_fp = 0; ///< supported-set fingerprint (registry ∩ custom)
    uint64_t config_fp = 0;    ///< ReplayConfig::fingerprint()
    /// ProfilerTrace::replay_fingerprint() of the prof the plan was built
    /// from (0 for prof-less builds): stream assignments come from the
    /// prof's *content* (its correlation→stream mapping), so plans built
    /// from behaviorally different profiler traces must not substitute for
    /// one another.  (Coverage statistics also derive from the prof but are
    /// representative-level by §8.2; timing jitter does not split the key.)
    uint64_t prof_fp = 0;
    bool has_prof = false; ///< disambiguates "no prof" from an empty prof

    bool operator==(const PlanKey&) const = default;

    /// True for the key of a borrowed one-shot build (direct Replayer
    /// construction), which skips the O(trace) structural hash and the
    /// supported-set hash nothing on that path consumes.  (A *full* key with
    /// both hashes genuinely zero is a ~2^-128 event.)
    bool is_partial() const { return trace_fp == 0 && supported_fp == 0; }

    /// Manifest / replay_plan.json serialization.  Fingerprints are emitted
    /// as decimal strings (JSON integers are signed 64-bit; the high bit of a
    /// hash must survive the round trip unmangled).  Partial keys serialize
    /// with an explicit `"partial": true` marker and only their set fields —
    /// never as fake zero-valued fingerprints.
    Json to_json() const;
    static PlanKey from_json(const Json& j);
};

struct PlanKeyHash {
    std::size_t operator()(const PlanKey& k) const;
};

/// Fingerprint of the replayer's supported set under @p custom and the
/// current operator registry — the "supported-OpId set" key component.
/// Hashes supported op *names* so the value is stable across processes.
uint64_t supported_set_fingerprint(const CustomOpRegistry& custom);

/// Computes the cache key for a (trace, prof, config) build request.
PlanKey plan_key(const et::ExecutionTrace& trace, const prof::ProfilerTrace* prof,
                 const ReplayConfig& cfg);

/// The immutable, shareable build-phase output.
class ReplayPlan {
  public:
    /// Runs the full build phase: copies the trace (the plan is then fully
    /// self-contained — required for cache retention past the caller's
    /// trace), selects replay targets, computes coverage, reconstructs every
    /// selected op and assigns streams from @p prof (which is only read
    /// during build, never retained).
    static std::shared_ptr<const ReplayPlan>
    build(const et::ExecutionTrace& trace, const prof::ProfilerTrace* prof,
          const ReplayConfig& cfg);

    /// Same build phase, but the plan *shares* @p trace instead of deep-
    /// copying it — the zero-copy path for callers that already hold traces
    /// in shared ownership (TraceDatabase, the disk tier).  Self-containment
    /// is preserved: the plan keeps the trace alive via its own reference.
    static std::shared_ptr<const ReplayPlan>
    build(std::shared_ptr<const et::ExecutionTrace> trace, const prof::ProfilerTrace* prof,
          const ReplayConfig& cfg);

    /// Same build phase, but *borrows* @p trace instead of copying it — the
    /// one-shot path (direct Replayer construction) where the caller's trace
    /// outlives the plan and a deep copy of a production-sized trace would
    /// be pure waste.  Never hand a borrowed plan to the PlanCache.
    /// @param trace  must outlive the returned plan
    static std::shared_ptr<const ReplayPlan>
    build_borrowing(const et::ExecutionTrace& trace, const prof::ProfilerTrace* prof,
                    const ReplayConfig& cfg);

    /// The trace the plan was built over (the private copy for build(), the
    /// caller's for build_borrowing()); ReconstructedOp::node points into it.
    const et::ExecutionTrace& trace() const { return *trace_; }
    const Selection& selection() const { return selection_; }
    const CoverageStats& coverage() const { return coverage_; }
    const std::vector<ReconstructedOp>& ops() const { return ops_; }
    /// Fused execution groups produced by the plan optimizer (empty at
    /// opt_level 0); ReconstructedOp::fused_group indexes into this.
    const std::vector<FusedGroup>& fused_groups() const { return fused_groups_; }
    const OptimizerStats& optimizer_stats() const { return opt_stats_; }
    /// Per-plan dependency DAG over executable units (built at every opt
    /// level — the async executor schedules from it; serial replay ignores
    /// it).  Units appear in program order; see plan_optimizer.h.
    const DepGraph& dep_graph() const { return dep_graph_; }
    /// The identity the plan was built under.  Plans from build() /
    /// the PlanCache carry the full key; borrowed one-shot plans carry only
    /// the cheap components (config_fp, has_prof) — the expensive trace and
    /// supported-set hashes are skipped on the path that never caches.
    const PlanKey& key() const { return key_; }

    ReplayPlan(const ReplayPlan&) = delete;
    ReplayPlan& operator=(const ReplayPlan&) = delete;

    /// build() with a key the caller already computed (the PlanCache hashes
    /// the key for its lookup first; this avoids hashing everything twice).
    static std::shared_ptr<const ReplayPlan>
    build_with_key(const et::ExecutionTrace& trace, const prof::ProfilerTrace* prof,
                   const ReplayConfig& cfg, const PlanKey& key);

    /// Shared-ownership spelling of build_with_key() (see build() above).
    static std::shared_ptr<const ReplayPlan>
    build_with_key(std::shared_ptr<const et::ExecutionTrace> trace,
                   const prof::ProfilerTrace* prof, const ReplayConfig& cfg,
                   const PlanKey& key);

    /// Serializes the plan — key, selection, coverage, and every
    /// reconstructed op (kind, stream assignment, generated IR text) — as the
    /// `replay_plan.json` document of a generated benchmark package.
    Json to_json() const;

    /// Rebuilds a plan from to_json() output against @p trace (the packaged
    /// `execution_trace.json`).  Selection, coverage, the key, and stream
    /// assignments are restored verbatim from the JSON; compiled-IR callables
    /// are regenerated from the trace's recorded schemas (deterministic, so
    /// `from_json(plan.to_json(), trace)->to_json() == plan.to_json()`).
    /// The plan copies @p trace, as build() does.  Throws ParseError /
    /// MystiqueError when the JSON references nodes absent from the trace.
    static std::shared_ptr<const ReplayPlan> from_json(const Json& j,
                                                       const et::ExecutionTrace& trace);

    /// Shared-ownership spelling: the restored plan *shares* @p trace
    /// instead of deep-copying it.  This is the disk-hit fast path — a
    /// store load re-uses the trace the cache caller already holds, so a
    /// restore costs one parse + one IR compile per distinct text and zero
    /// trace copies (the copy used to be the single largest line item).
    static std::shared_ptr<const ReplayPlan>
    from_json(const Json& j, std::shared_ptr<const et::ExecutionTrace> trace);

  private:
    ReplayPlan() = default;

    static std::shared_ptr<const ReplayPlan>
    build_impl(const et::ExecutionTrace* borrowed,
               std::shared_ptr<const et::ExecutionTrace> owned,
               const prof::ProfilerTrace* prof, const ReplayConfig& cfg,
               const PlanKey* precomputed_key);

    /// Shared for build()/from_json() plans (self-containment without a
    /// forced deep copy); null for build_borrowing() one-shots.
    std::shared_ptr<const et::ExecutionTrace> owned_trace_;
    const et::ExecutionTrace* trace_ = nullptr; ///< owned_trace_.get() or the borrowed trace
    PlanKey key_;
    Selection selection_;
    CoverageStats coverage_;
    Reconstructor reconstructor_; ///< owns the compiled-IR functions ops_ point at
    std::vector<ReconstructedOp> ops_;
    std::vector<FusedGroup> fused_groups_;
    OptimizerStats opt_stats_;
    DepGraph dep_graph_;
};

} // namespace mystique::core
