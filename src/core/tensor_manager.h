#pragma once

/// @file
/// Argument and tensor management (§4.4).
///
/// Walking the selected ops in execution order, every tensor ID is classified
/// as *intermediate* (first seen as an output of an earlier selected op —
/// saved at generation and passed to downstream consumers) or *external*
/// (its producer is not in the replayed set — explicitly instantiated before
/// execution with the recorded shape/dtype and random values).
///
/// The embedding-lookup index tensors are the documented special case: their
/// values drive the access pattern, so external int64 tensors consumed by
/// embedding ops are generated from a configurable distribution (uniform by
/// default, refinable by the user per §4.4), and offset tensors are generated
/// as valid monotonically-increasing bag boundaries.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "et/node.h"
#include "framework/session.h"

namespace mystique::core {

/// User-refinable generation policy for embedding index tensors (§4.4).
///
/// The default is a Zipf distribution with an exponent "derived empirically
/// from the operators in our production environment" (the paper's default
/// for information the ET does not capture); users refine it through this
/// interface when they know their tables' index statistics.
struct EmbeddingGenConfig {
    enum class Distribution { kUniform, kZipf };
    Distribution distribution = Distribution::kZipf;
    /// Zipf exponent when distribution == kZipf.
    double zipf_s = 1.05;
};

/// Per-tensor generation policy derived from the consuming operator.
struct Int64GenPolicy {
    enum class Kind {
        kGeneric,  ///< small non-negative values
        kIndices,  ///< embedding row indices in [0, rows)
        kOffsets,  ///< monotone bag boundaries over a paired index tensor
        kClasses,  ///< classification targets in [0, classes)
    };
    Kind kind = Kind::kGeneric;
    int64_t upper = 10;     ///< rows / classes bound
    int64_t pair_nnz = 0;   ///< for kOffsets: the paired indices tensor length
};

/// Classification + instantiation + runtime binding of replay tensors.
class TensorManager {
  public:
    TensorManager(fw::Session& session, EmbeddingGenConfig config);

    /// Classifies tensors over the selected ops' ET nodes (in execution
    /// order) and derives int64 generation policies from consumer ops.
    void analyze(const std::vector<const et::Node*>& selected_ops);

    /// Creates all external tensors up-front (§4.4 "explicitly instantiate
    /// them before execution").
    void instantiate_externals();

    /// Resolves a tensor argument to its current binding; throws ReplayError
    /// for unknown IDs.
    fw::Tensor resolve(const et::TensorMeta& meta) const;

    /// Binds an op output to its recorded tensor ID.
    void bind_output(const et::TensorMeta& meta, fw::Tensor t);

    std::size_t num_external() const { return externals_.size(); }
    std::size_t num_intermediate() const { return intermediates_.size(); }

    /// Order-independent digest of every live binding's bytes (uid-sorted —
    /// bindings_ is an ordered map).  The differential oracle compares it
    /// across replays of the same plan: equal digests mean bit-identical
    /// numerics regardless of the execution schedule that produced them.
    uint64_t digest() const;

  private:
    fw::Tensor generate_external(const et::TensorMeta& meta);

    fw::Session& session_;
    EmbeddingGenConfig config_;
    std::map<int64_t, et::TensorMeta> externals_;      // uid → meta
    std::map<int64_t, Int64GenPolicy> policies_;       // uid → policy
    std::map<int64_t, bool> intermediates_;            // uid → produced flag
    std::map<int64_t, fw::Tensor> bindings_;           // uid → live tensor
};

} // namespace mystique::core
