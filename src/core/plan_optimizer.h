#pragma once

/// @file
/// Plan-level graph optimizer.
///
/// Runs once inside ReplayPlan construction (opt_level > 0), rewriting the
/// reconstructed-op sequence before the plan is cached — so the cost is paid
/// at build time and amortized across every warm replay by the two-tier
/// PlanCache.  Pass pipeline, in order:
///
///   1. dead_op_elimination   — allowlisted pointwise ops whose output no
///                              selected op consumes become single-member
///                              dead groups (launch replicated, no alloc).
///   2. algebraic_simplify    — marks algebraically neutral stages
///                              (mul.Scalar by 1.0, relu of an already
///                              rectified value) so the interpreter skips
///                              their arithmetic.
///   3. fuse_pointwise_chains — consecutive allowlisted ops whose slot-0
///                              tensors form a single-consumer chain with
///                              matching shape/dtype collapse into one
///                              loop-fused interpreter call.
///
/// The rewrite is timing- and bit-exact: groups re-issue every member's
/// device launch (same KernelDesc, order and jitter draws) and host dispatch
/// charge; only per-link CPU interpretation and intermediate materialization
/// are removed.  Members keep their ReconstructedOp entries, so coverage
/// accounting still counts the original ops a group subsumes.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/reconstruction.h"
#include "et/node.h"
#include "framework/fused_chain.h"

namespace mystique::core {

/// Counters for one optimizer run; surfaced through PlanCacheStats and the
/// MYST_LOG=1 sweep report.  Everything except optimize_us is a pure
/// function of the resulting fused groups (see derive_optimizer_stats).
struct OptimizerStats {
    int64_t ops_fused = 0;       ///< members subsumed by multi-op chains
    int64_t ops_eliminated = 0;  ///< dead pointwise ops
    int64_t chains_formed = 0;   ///< multi-op chains
    int64_t ops_simplified = 0;  ///< identity stages (algebraic_simplify)
    double optimize_us = 0.0;    ///< wall time of the optimizer run
};

/// One fused execution group: a chain of >= 2 pointwise ops, a dead op, or a
/// standalone identity op.  Members are consecutive indices into the plan's
/// op sequence.
struct FusedGroup {
    std::vector<int> members;               ///< ascending, consecutive
    std::vector<fw::FusedStage> stages;     ///< one per member, in order
    bool dead = false;                      ///< output unconsumed: skip alloc
    et::TensorMeta input_meta;              ///< chain entry (member 0, slot 0)
    std::vector<et::TensorMeta> operand_metas; ///< per binary stage, in order
    et::TensorMeta output_meta;             ///< last member's recorded output
    std::optional<int> stream;              ///< original stream (all members)
    int tid = 0;                            ///< originating thread
};

/// Runs the pass pipeline over @p ops, appending discovered groups to
/// @p groups and marking members' fused_group / fused_head fields.
OptimizerStats optimize_plan(std::vector<ReconstructedOp>& ops,
                             std::vector<FusedGroup>& groups);

/// One schedulable unit of the async executor: a standalone non-skipped op,
/// or a whole fused group (entered at its head member).  Skipped ops and
/// non-head group members are not units — the serial walk skips them too.
struct DepUnit {
    int head = -1;      ///< op index of the unit's head
    int group = -1;     ///< fused-group id, or -1 for a standalone op
    int stream = 0;     ///< stream lane the unit executes on
    bool comm = false;  ///< collective (kComm category)
    bool barrier = false; ///< scheduling barrier: runs after everything
                          ///< before it, before everything after it
    std::vector<int> deps; ///< earlier unit indices (strictly ascending)
};

/// The per-plan dependency DAG, in program order: every dep points to an
/// earlier unit, so program order is always a valid topological order and the
/// serial walk is one legal schedule of the graph.
struct DepGraph {
    std::vector<DepUnit> units;

    bool empty() const { return units.empty(); }
};

/// Derives the dependency graph for a reconstructed-op sequence:
///
///  - def-use edges over recorded tensor AND storage ids (RAW, WAW, and WAR
///    — a recycled storage must not be overwritten while a reader is
///    outstanding);
///  - barrier edges: collectives (their rendezvous order must match the
///    recorded per-rank order or ranks deadlock), direct-dispatch custom
///    ops, and ops touching no recorded tensors (unknown side effects) all
///    serialize against everything around them.
///
/// Pure function of (ops, groups), derived once at plan build and carried
/// through serialization (restore verifies the stored graph against its
/// fingerprint seal instead of re-deriving it).
DepGraph build_dep_graph(const std::vector<ReconstructedOp>& ops,
                         const std::vector<FusedGroup>& groups);

/// Structural validation for restored graphs: unit heads in range, dep lists
/// strictly ascending with every edge pointing to an *earlier* unit (a
/// forward or self edge would be a cycle through program order).  Throws
/// ParseError so corrupt store entries quarantine instead of deadlocking the
/// executor.
void validate_dep_graph(const DepGraph& graph, std::size_t n_ops);

/// Stable order-sensitive fingerprint over every unit field and edge.
/// Serialized plans are sealed with it ("dep_graph_fp") so the restore path
/// can detect a tampered or truncated graph by hashing the parsed units —
/// no O(plan) re-derivation on the disk-hit path (the disk tier's whole
/// point is being much cheaper than a build).
uint64_t dep_graph_fingerprint(const DepGraph& graph);

/// Input-consumer multiplicity of every tensor id across the plan's
/// non-skipped ops — the single-consumer legality oracle shared by the
/// passes.  One full-plan scan; compute it once and share it across every
/// finalize_group call for the same op sequence.
using ConsumerCounts = std::unordered_map<int64_t, int>;
ConsumerCounts consumer_counts(const std::vector<ReconstructedOp>& ops);

/// Derives stages, metas, stream and tid for a group whose `members` and
/// `dead` flag are already set — shared by optimize_plan and the
/// ReplayPlan::from_json restore path (which trusts the document's member
/// lists but re-derives everything else from the trace).  Throws ParseError
/// when a member is not a legally fusable op, so corrupt store entries
/// quarantine instead of replaying wrong.  Pass precomputed @p counts when
/// finalizing many groups of one plan (from_json restores are on the
/// disk-hit fast path); nullptr recomputes them for this group alone.
void finalize_group(const std::vector<ReconstructedOp>& ops, FusedGroup& group,
                    const ConsumerCounts* counts = nullptr);

/// Recomputes the derivable counters from @p groups (optimize_us = 0).
OptimizerStats derive_optimizer_stats(const std::vector<FusedGroup>& groups);

/// Executes one group in the replay hot loop: resolves the chain input and
/// operands, runs the loop-fused interpreter kernel, binds the final output.
void execute_fused_group(fw::Session& session, const FusedGroup& group,
                         TensorManager& tm);

} // namespace mystique::core
