#pragma once

/// @file
/// Similarity measurement — the validation/feedback loop of Figure 3.
///
/// Quantifies how closely a replay matches the original run: end-to-end
/// time, macro system metrics (Figure 5), and per-kernel microarchitectural
/// metrics matched by kernel name (Figure 6).

#include <string>
#include <vector>

#include "device/device.h"
#include "profiler/profiler.h"

namespace mystique::core {

/// Replay/original ratios for one kernel name (Figure 6 bars).
struct KernelSimilarity {
    std::string name;
    double time_share = 0.0; ///< share of the original run's device time
    double duration_ratio = 1.0;
    double ipc_ratio = 1.0;
    double l1_ratio = 1.0;
    double l2_ratio = 1.0;
    double sm_throughput_ratio = 1.0;
};

/// Full comparison of a replay run against its original.
struct SimilarityReport {
    double original_e2e_us = 0.0;
    double replay_e2e_us = 0.0;
    double e2e_error = 0.0; ///< |replay − original| / original

    double sm_util_error = 0.0;
    double hbm_bw_error = 0.0;
    double power_error = 0.0;

    /// Top-K original kernels by device time, with replay ratios.
    std::vector<KernelSimilarity> top_kernels;
    /// Duration-weighted overall ratios across all matched kernels.
    KernelSimilarity overall;
    /// Fraction of original device time covered by the top-K list.
    double top_k_time_share = 0.0;
};

/// Builds the report.  Kernels are matched by name (names are deterministic
/// functions of op family and shapes); unmatched kernels are excluded from
/// micro ratios but reported in time shares.
SimilarityReport compare_runs(double original_e2e_us, const dev::DeviceMetrics& original,
                              const prof::ProfilerTrace& original_prof,
                              double replay_e2e_us, const dev::DeviceMetrics& replay,
                              const prof::ProfilerTrace& replay_prof, std::size_t top_k = 10);

} // namespace mystique::core
