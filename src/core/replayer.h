#pragma once

/// @file
/// The ET replayer (§4.6), split into a build phase and an execution phase.
///
/// ## Plan / executor split
///
/// Replay used to be monolithic: every Replayer instance re-ran selection,
/// coverage, reconstruction and stream assignment.  Those stages are now the
/// immutable, shareable **ReplayPlan** (core/replay_plan.h); the Replayer is
/// a thin per-rank *executor* that walks a plan's OpId-indexed ops against
/// its own Session/TensorManager.  One plan can back any number of executors
/// concurrently — run_distributed hands N rank threads read-only references
/// to plans built once, instead of rebuilding N identical ones.
///
/// ## Cache lifecycle
///
/// Plans are cached process-wide in the **PlanCache** (core/plan_cache.h),
/// keyed by (trace fingerprint, supported-OpId set, ReplayConfig
/// fingerprint).  The fleet-scale consumers — run_distributed and
/// ReplayDriver's trace-database sweeps (§8.2) — fetch through the cache, so
/// a second replay of an *equivalent* trace (same operator mix) skips the
/// entire build phase.  With MYST_PLAN_CACHE_DIR set the cache adds a
/// disk tier (core/plan_store.h), extending the same reuse across process
/// restarts: a rank's plan miss loads the persisted entry instead of
/// building.  Direct `Replayer(trace, prof, cfg)` construction
/// still builds a private, uncached plan: one-shot tools keep their
/// no-global-state behavior, and nothing is retained past the Replayer.
/// Cache entries are LRU-evicted; executors keep plans alive via shared_ptr,
/// so eviction never invalidates a running replay.
///
/// The use-case knobs of §7 (subtrace replay, operator-type filtering,
/// scaled-down emulation) live in ReplayConfig and participate in the cache
/// key exactly when they shape the plan.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/process_group.h"
#include "common/cancel_token.h"
#include "core/replay_plan.h"
#include "core/tensor_manager.h"
#include "device/device.h"
#include "et/trace.h"
#include "profiler/profiler.h"

namespace mystique::core {

/// Outcome of one (per-rank) replay.
struct ReplayResult {
    std::vector<double> iter_us;
    double mean_iter_us = 0.0;
    dev::DeviceMetrics metrics;
    prof::ProfilerTrace prof;
    CoverageStats coverage;
    /// Order-independent digest of the final tensor bindings (see
    /// TensorManager::digest) — the differential oracle's bit-identity
    /// witness for numeric replays.
    uint64_t numeric_digest = 0;
};

/// Per-rank executor over a (possibly shared) ReplayPlan.
class Replayer {
  public:
    /// Builds a private, uncached plan from @p trace.
    /// @param trace  the ET to replay (borrowed by the plan; must outlive
    ///        this Replayer — one-shot callers keep the no-copy cost of the
    ///        pre-split Replayer)
    /// @param original_prof  profiler trace of the original run — used for
    ///        op→stream mapping (§4.5) and time-coverage; may be null
    Replayer(const et::ExecutionTrace& trace, const prof::ProfilerTrace* original_prof,
             ReplayConfig cfg);

    /// Executes over an existing plan (typically fetched from the PlanCache).
    /// @p cfg must fingerprint-match the config the plan was built under
    /// (guaranteed for cache fetches; enforced with a check here).
    Replayer(std::shared_ptr<const ReplayPlan> plan, ReplayConfig cfg);

    /// Runs a single-rank replay with a private session/fabric.
    /// @param cancel  optional cooperative cancellation/deadline token
    ///        (see run_with).
    ReplayResult run(const CancelToken* cancel = nullptr);

    /// Runs with an externally-provided session and fabric (distributed
    /// ranks share a fabric; each rank owns a Replayer on its thread).
    /// Leaves the session reusable: the profiler is detached on return.
    ///
    /// @param cancel  optional cooperative cancellation token.  Polled
    ///        *between* replayed ops — never mid-kernel, so the simulator's
    ///        determinism is preserved up to the cut.  An expired token
    ///        throws CancelledError at the next op boundary; the session is
    ///        left in a mid-iteration state and must be reset_for_replay()ed
    ///        before reuse (the sweep driver always does).
    ReplayResult run_with(fw::Session& session,
                          const std::shared_ptr<comm::CommFabric>& fabric,
                          const CancelToken* cancel = nullptr);

    const std::shared_ptr<const ReplayPlan>& plan() const { return plan_; }
    const Selection& selection() const { return plan_->selection(); }
    const CoverageStats& coverage_stats() const { return plan_->coverage(); }
    /// Generated IR text per replayed ATen node (for codegen/inspection).
    const std::vector<ReconstructedOp>& reconstructed() const { return plan_->ops(); }

    /// Replays N traces on N concurrent rank tasks sharing one fabric.
    /// Trace count may be smaller than the original world size when combined
    /// with emulate_world_size (scale-down, §7.3).  Each rank task fetches
    /// its plan through the process-wide PlanCache: ranks whose traces are
    /// structurally identical (the scale-down and data-parallel cases) share
    /// one plan read-only — built exactly once — while structurally distinct
    /// ranks build their plans in parallel.
    ///
    /// Rank tasks run on a process-wide shared ThreadPool (grown to the
    /// largest world size seen, then reused across calls), and each rank
    /// slot's Session is cached: repeated distributed replays rewind it with
    /// reset_for_replay() — keeping the rank's StorageArena warm — instead
    /// of paying a thread spawn plus a cold session per rank per call.
    /// Results are bit-identical to per-call ad-hoc threads and sessions
    /// (enforced in tests/core/plan_cache_test.cpp); concurrent
    /// run_distributed calls serialize on the shared pool.
    static std::vector<ReplayResult>
    run_distributed(const std::vector<const et::ExecutionTrace*>& traces,
                    const std::vector<const prof::ProfilerTrace*>& profs, ReplayConfig cfg,
                    comm::Topology topo = {});

  private:
    void register_process_groups(fw::Session& session,
                                 const std::shared_ptr<comm::CommFabric>& fabric);

    std::shared_ptr<const ReplayPlan> plan_;
    ReplayConfig cfg_;
};

} // namespace mystique::core
