#pragma once

/// @file
/// The ET replayer (§4.6): selection → reconstruction → tensor management →
/// stream assignment → timed execution, plus the use-case knobs of §7
/// (subtrace replay, operator-type filtering, scaled-down emulation).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/process_group.h"
#include "core/reconstruction.h"
#include "core/selection.h"
#include "core/tensor_manager.h"
#include "device/device.h"
#include "et/trace.h"
#include "profiler/profiler.h"

namespace mystique::core {

/// Replay configuration.
struct ReplayConfig {
    std::string platform = "A100";
    fw::ExecMode mode = fw::ExecMode::kShapeOnly;
    int warmup_iterations = 1;
    int iterations = 5;
    uint64_t seed = 0xB53C;
    std::optional<double> power_limit_w;

    /// Subtrace / operator-type filters (§7.1).
    SelectionFilter filter;

    /// Embedding index generation (§4.4's refinement interface).
    EmbeddingGenConfig embedding;

    /// Replayable custom ops (§4.3.3).
    CustomOpRegistry custom_ops = CustomOpRegistry::with_defaults();

    /// Scaled-down emulation (§7.3): 0 = off (rendezvous at actual size);
    /// -1 = emulate the *original* group sizes from the trace metadata;
    /// >0 = emulate this world size.
    int emulate_world_size = 0;

    /// Collect a profiler trace of the replay run (needed for similarity).
    bool collect_profiler = true;
};

/// Outcome of one (per-rank) replay.
struct ReplayResult {
    std::vector<double> iter_us;
    double mean_iter_us = 0.0;
    dev::DeviceMetrics metrics;
    prof::ProfilerTrace prof;
    CoverageStats coverage;
};

/// Replays one execution trace as a benchmark.
class Replayer {
  public:
    /// @param trace  the ET to replay (kept by reference; must outlive this)
    /// @param original_prof  profiler trace of the original run — used for
    ///        op→stream mapping (§4.5) and time-coverage; may be null
    Replayer(const et::ExecutionTrace& trace, const prof::ProfilerTrace* original_prof,
             ReplayConfig cfg);

    /// Runs a single-rank replay with a private session/fabric.
    ReplayResult run();

    /// Runs with an externally-provided session and fabric (distributed
    /// ranks share a fabric; each rank owns a Replayer on its thread).
    ReplayResult run_with(fw::Session& session,
                          const std::shared_ptr<comm::CommFabric>& fabric);

    const Selection& selection() const { return selection_; }
    const CoverageStats& coverage_stats() const { return coverage_; }
    /// Generated IR text per replayed ATen node (for codegen/inspection).
    const std::vector<ReconstructedOp>& reconstructed() const { return ops_; }

    /// Replays N traces on N rank threads sharing one fabric.  Trace count
    /// may be smaller than the original world size when combined with
    /// emulate_world_size (scale-down, §7.3).
    static std::vector<ReplayResult>
    run_distributed(const std::vector<const et::ExecutionTrace*>& traces,
                    const std::vector<const prof::ProfilerTrace*>& profs, ReplayConfig cfg,
                    comm::Topology topo = {});

  private:
    void build_plan();
    void register_process_groups(fw::Session& session,
                                 const std::shared_ptr<comm::CommFabric>& fabric);

    const et::ExecutionTrace& trace_;
    const prof::ProfilerTrace* original_prof_;
    ReplayConfig cfg_;

    Selection selection_;
    CoverageStats coverage_;
    Reconstructor reconstructor_;
    std::vector<ReconstructedOp> ops_;
};

} // namespace mystique::core
