#pragma once

/// @file
/// Persistent sweep journal: crash-safe resume + failure quarantine for
/// database sweeps (core/replay_driver.h).
///
/// A fleet sweep can take long enough that the process dies — OOM, preemption,
/// a poisoned trace — with most groups already replayed.  The journal is an
/// append-only JSONL file (`sweep_journal.jsonl` inside a configured journal
/// directory, conventionally the `MYST_PLAN_CACHE_DIR` tree) recording one
/// terminal outcome per (sweep, group): `ok` with the group's bit-exact
/// replayed timings, or `failed`/`timed_out` with the error text.  A
/// restarted sweep of the same database under the same config
///
///  - **resumes**: groups whose latest record is `ok` restore their result
///    from the journal instead of replaying (floating-point values are stored
///    as IEEE-754 bit patterns, so the restored weighted mean is bit-identical
///    to the one the interrupted sweep would have produced), and
///  - **quarantines**: a group fingerprint whose records show
///    `kQuarantineThreshold` *consecutive* failures is known-bad; the sweep
///    marks it `quarantined` without burning another replay on it.  A later
///    recorded success — e.g. a probe attempt — resets the count: quarantine
///    heals, it is never a tombstone.
///
/// ## Trust model & durability
///
/// The journal is advisory, never authoritative: a lost or corrupt record can
/// only cost a redundant re-replay, never a wrong result, because `ok`
/// records are only written after a successful replay and resume restores
/// exactly what was recorded.  Every append rewrites the file through
/// `atomic_write_file` (temp + fsync + rename), so readers — including a
/// process that crashes mid-append and restarts — never observe a torn file;
/// concurrent writers race benignly (last publish wins; the loser's records
/// are re-derived by replaying).  Unreadable journals and unparseable lines
/// are skipped with a warning.  The `journal.write` / `journal.load` fault
/// sites (common/fault_injection.h) let tests prove all of this.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace mystique::core {

/// Terminal outcome of one group within a sweep.
enum class GroupStatus {
    kOk,          ///< replayed (or restored from the journal) successfully
    kFailed,      ///< every attempt threw; error text recorded
    kTimedOut,    ///< the per-group deadline expired (cooperative cancel)
    kQuarantined, ///< skipped: the journal shows repeated prior failures
    kSkipped,     ///< never started: the sweep-level deadline expired first
};

const char* to_string(GroupStatus status);
GroupStatus group_status_from_string(const std::string& text);

/// One journal line.  Only terminal outcomes are journaled (`ok`, `failed`,
/// `timed_out`); `quarantined`/`skipped` groups were not attempted, so they
/// leave no record and a later sweep may try them again.
struct SweepJournalRecord {
    uint64_t sweep_fp = 0; ///< identity of the sweep (db groups × full config)
    uint64_t group_fp = 0; ///< the group's operator-mix fingerprint
    GroupStatus status = GroupStatus::kOk;
    uint32_t attempts = 0;
    std::string error;             ///< non-empty for failed/timed_out
    double population_weight = 0.0;
    std::vector<double> iter_us;   ///< ok records: bit-exact replayed timings
    double mean_iter_us = 0.0;
};

class SweepJournal {
  public:
    /// Opens (without reading) the journal inside @p dir; the file is
    /// `<dir>/sweep_journal.jsonl`, created on first append.
    explicit SweepJournal(const std::string& dir);

    /// Loads existing records.  Absorbs every failure — an unreadable file
    /// (or an injected `journal.load` fault) warns and leaves the journal
    /// empty; an unparseable line warns and is skipped; parseable lines
    /// around it still load.  Returns the number of records loaded.
    std::size_t load();

    /// Appends @p rec and atomically republishes the file.  Absorbs write
    /// failures (journaling is best-effort): returns false — and keeps the
    /// record in memory, so quarantine accounting still sees it — when the
    /// publish failed (or the `journal.write` fault fired).  Thread-safe:
    /// sweep workers append concurrently.
    bool append(const SweepJournalRecord& rec);

    /// Latest `ok` record for (sweep_fp, group_fp) — the resume lookup — or
    /// nullopt when the group has no success on file (or a failure was
    /// recorded after it, which invalidates the stale success).  Returned by
    /// value: sweep workers append concurrently with lookups.
    std::optional<SweepJournalRecord> completed(uint64_t sweep_fp,
                                                uint64_t group_fp) const;

    /// Consecutive trailing failures recorded for @p group_fp across every
    /// sweep; any recorded success resets the streak to zero.
    int consecutive_failures(uint64_t group_fp) const;

    /// True once consecutive_failures() reaches kQuarantineThreshold.
    bool quarantined(uint64_t group_fp) const
    {
        return consecutive_failures(group_fp) >= kQuarantineThreshold;
    }

    /// The most recent failure record for @p group_fp (for error reporting on
    /// quarantined groups); nullopt when none.
    std::optional<SweepJournalRecord> last_failure(uint64_t group_fp) const;

    const std::string& path() const { return path_; }
    std::size_t size() const;

    /// Failures recorded before quarantine engages.  Two consecutive
    /// failures mean the group failed, was retried by a whole fresh sweep
    /// (fresh sessions, fresh plans), and failed again — at that point a
    /// third identical attempt is fleet-budget burn, not diagnosis.
    static constexpr int kQuarantineThreshold = 2;

  private:
    bool publish_locked();

    std::string path_;
    mutable std::mutex mu_;
    std::vector<SweepJournalRecord> records_; ///< load order, then append order
};

} // namespace mystique::core
