#pragma once

/// @file
/// Benchmark generation (§5, §6): packages a trace pair into a self-contained,
/// runnable, *provenance-carrying* benchmark directory —
///
///   <dir>/execution_trace.json   the ET
///   <dir>/profiler_trace.json    the stream-mapping profiler trace
///   <dir>/replay_plan.json       the full ReplayPlan (key, selection,
///                                coverage, per-op streams + IR text)
///   <dir>/manifest.json          provenance: plan-key fingerprints, replay
///                                config, coverage, generator version
///   <dir>/benchmark_main.cpp     a standalone C++ program against this
///                                library that replays the trace
///   <dir>/README.md              how to build and run it
///
/// The paper's output is "a single PyTorch program"; ours is the exact
/// C++ analogue: a single translation unit plus its data files.
///
/// ## Plan-aware generation
///
/// The replay plan is fetched through the PlanCache, not rebuilt: packaging a
/// trace that was just replayed (the generate_and_share flow, and every
/// database-sweep representative) is a cache hit that performs zero plan
/// builds, and the emitted `replay_plan.json` is the byte-exact serialization
/// of the plan the replay actually ran.  With a disk tier configured
/// (MYST_PLAN_CACHE_DIR), even a fresh process packages an already-swept
/// trace without building.  Package files are written atomically
/// (common/fs_util.h).  See docs/package_format.md for the on-disk schema.
///
/// ## Provenance manifest
///
/// `manifest.json` records the complete PlanKey — trace structural
/// fingerprint, supported-OpId-set fingerprint, ReplayConfig fingerprint,
/// profiler stream fingerprint — plus the serialized ReplayConfig and
/// coverage stats.  verify_package() re-derives every fingerprint from the
/// packaged data files and checks them against the manifest, so a consumer
/// can prove a received package is internally consistent (no tampered or
/// mismatched trace/plan/config) before trusting its numbers.

#include <memory>
#include <string>
#include <vector>

#include "core/plan_cache.h"
#include "core/replayer.h"

namespace mystique::core {

/// Manifest schema version written by generate_benchmark and required by
/// verify_package.
/// v2: replay_plan.json may carry optimizer output ("fused_groups" +
/// "optimizer"), the replay config serializes "opt_level", and the manifest
/// pins "opt_level" at top level (verified against the embedded config).
/// v3: replay_plan.json carries the executor dependency graph ("dep_graph")
/// and the replay config serializes "async_level".
inline constexpr int kPackageFormatVersion = 3;
/// Generator identity recorded in the manifest.
inline constexpr const char* kGeneratorVersion = "mystique-codegen/1.0";

/// Files written by generate_benchmark().
struct CodegenResult {
    std::string directory;
    int files_written = 0;
    /// The (cache-shared) plan the package was emitted from.
    std::shared_ptr<const ReplayPlan> plan;
};

/// Generates the benchmark package; throws MystiqueError on I/O failure.
/// The plan is fetched through @p cache (the process-wide PlanCache by
/// default), so packaging a previously replayed trace rebuilds nothing.
CodegenResult generate_benchmark(const std::string& directory,
                                 const et::ExecutionTrace& trace,
                                 const prof::ProfilerTrace& prof, const ReplayConfig& cfg,
                                 PlanCache* cache = &PlanCache::instance());

/// Outcome of verify_package(): ok iff every check passed; errors lists each
/// failed check human-readably.
struct PackageVerification {
    bool ok = false;
    std::vector<std::string> errors;
};

/// Integrity-checks a generated package directory against its manifest:
///  - every manifest-listed file exists;
///  - the packaged execution trace re-hashes to the manifest's structural
///    (and operator-mix) fingerprint;
///  - the packaged profiler trace re-hashes to the manifest's stream
///    fingerprint;
///  - the packaged replay config re-fingerprints to the manifest's config
///    fingerprint, and this process's op registry reproduces the manifest's
///    supported-set fingerprint;
///  - replay_plan.json carries the same plan key and coverage as the
///    manifest.
/// Never throws on bad packages — problems come back as errors.
PackageVerification verify_package(const std::string& directory);

/// Serializes a replayer's plan (key, selection, streams, IR, coverage) to
/// JSON — loadable for inspection and diffing.  Equivalent to
/// `replayer.plan()->to_json()`.
Json plan_to_json(const Replayer& replayer);

} // namespace mystique::core
