#pragma once

/// @file
/// Benchmark generation (§5): packages a trace pair into a self-contained,
/// runnable benchmark directory —
///
///   <dir>/execution_trace.json   the ET
///   <dir>/profiler_trace.json    the stream-mapping profiler trace
///   <dir>/replay_plan.json       selection + coverage + per-op IR text
///   <dir>/benchmark_main.cpp     a standalone C++ program against this
///                                library that replays the trace
///   <dir>/README.md              how to build and run it
///
/// The paper's output is "a single PyTorch program"; ours is the exact
/// C++ analogue: a single translation unit plus its data files.

#include <string>

#include "core/replayer.h"

namespace mystique::core {

/// Files written by generate_benchmark().
struct CodegenResult {
    std::string directory;
    int files_written = 0;
};

/// Generates the benchmark package; throws MystiqueError on I/O failure.
CodegenResult generate_benchmark(const std::string& directory,
                                 const et::ExecutionTrace& trace,
                                 const prof::ProfilerTrace& prof, const ReplayConfig& cfg);

/// Serializes a replayer's plan (selection, streams, IR, coverage) to JSON —
/// loadable for inspection and diffing.
Json plan_to_json(const Replayer& replayer);

} // namespace mystique::core
