#pragma once

/// @file
/// The replayer's supported-operator set (§5, Table 3).
///
/// The *framework* can execute every registered op (production code links the
/// custom libraries); the *replayer* can only reconstruct:
///   - all ATen ops (the compute backend — 100% supported),
///   - all c10d communication ops,
///   - custom ops from "a few common libraries like FBGEMM" (supported by
///     default), plus any the user registers through the custom-op interface
///     (§4.3.3).
/// Fused ops carry no schema in the ET and are always skipped (§4.3.4).

#include <string>
#include <vector>

#include "common/op_id.h"
#include "et/node.h"

namespace mystique::core {

/// The user-facing custom-operator registration interface.
///
/// Registering an op name tells the replayer that the op's implementation is
/// available at replay time (our analogue of "register their custom operators
/// together with their implementations" — implementations live in the
/// framework registry; this registry is the replayability gate).
class CustomOpRegistry {
  public:
    /// Registry preloaded with the common libraries (fbgemm::*).
    static CustomOpRegistry with_defaults();

    /// Empty registry (used to model bare new platforms, §7.2).
    static CustomOpRegistry empty();

    /// Registers one custom op name (e.g. "fairseq::lstm_layer").
    void register_op(const std::string& name);

    /// Registers every op sharing a namespace prefix (e.g. "fairseq::").
    void register_namespace(const std::string& ns_prefix);

    bool is_registered(const std::string& op_name) const;

    std::vector<std::string> registered() const;

  private:
    std::vector<std::string> names_;
    std::vector<std::string> namespaces_;
};

/// The replayer's supported set, precomputed as a dense OpId-indexed mask so
/// the per-node check during plan building is O(1) with no string compares.
/// Build once after ensure_ops_registered(); a node name resolves through
/// the intern table exactly once (cached in et::Node::op_id) and then every
/// membership test is a vector index.
class SupportedSet {
  public:
    /// Walks the framework registry and bakes in the category rules:
    /// ATen/c10d ops are replayable, custom ops only when @p custom lists
    /// them, fused and wrapper categories never are.
    static SupportedSet build(const CustomOpRegistry& custom);

    bool contains(OpId id) const
    {
        return id >= 0 && static_cast<std::size_t>(id) < mask_.size() &&
               mask_[static_cast<std::size_t>(id)] != 0;
    }

  private:
    std::vector<unsigned char> mask_; ///< indexed by OpId
};

/// Decides whether a trace node can be replayed under a prebuilt supported
/// set, resolving (and caching) the node's OpId on first use.
bool is_replayable(const et::Node& node, const SupportedSet& supported);

/// Convenience overload for one-off checks (tests, tools): builds the
/// supported set on every call — use the SupportedSet form in loops.
bool is_replayable(const et::Node& node, const CustomOpRegistry& custom);

} // namespace mystique::core
