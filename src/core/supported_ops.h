#pragma once

/// @file
/// The replayer's supported-operator set (§5, Table 3).
///
/// The *framework* can execute every registered op (production code links the
/// custom libraries); the *replayer* can only reconstruct:
///   - all ATen ops (the compute backend — 100% supported),
///   - all c10d communication ops,
///   - custom ops from "a few common libraries like FBGEMM" (supported by
///     default), plus any the user registers through the custom-op interface
///     (§4.3.3).
/// Fused ops carry no schema in the ET and are always skipped (§4.3.4).

#include <map>
#include <string>
#include <vector>

#include "et/node.h"

namespace mystique::core {

/// The user-facing custom-operator registration interface.
///
/// Registering an op name tells the replayer that the op's implementation is
/// available at replay time (our analogue of "register their custom operators
/// together with their implementations" — implementations live in the
/// framework registry; this registry is the replayability gate).
class CustomOpRegistry {
  public:
    /// Registry preloaded with the common libraries (fbgemm::*).
    static CustomOpRegistry with_defaults();

    /// Empty registry (used to model bare new platforms, §7.2).
    static CustomOpRegistry empty();

    /// Registers one custom op name (e.g. "fairseq::lstm_layer").
    void register_op(const std::string& name);

    /// Registers every op sharing a namespace prefix (e.g. "fairseq::").
    void register_namespace(const std::string& ns_prefix);

    bool is_registered(const std::string& op_name) const;

    std::vector<std::string> registered() const;

  private:
    std::vector<std::string> names_;
    std::vector<std::string> namespaces_;
};

/// Decides whether a trace node can be replayed under a given registry.
/// Wrapper nodes are never replayable (they carry no work).
bool is_replayable(const et::Node& node, const CustomOpRegistry& custom);

} // namespace mystique::core
