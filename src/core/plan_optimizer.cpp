#include "core/plan_optimizer.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <unordered_map>

#include "common/error.h"
#include "common/hash.h"
#include "framework/kernel_utils.h"
#include "framework/op_registry.h"

namespace mystique::core {

namespace {

/// Interned identity of a reconstructed op (plan-build resolves it from the
/// node's OpIdCache; fall back to the node for restored plans).
inline OpId
op_identity(const ReconstructedOp& op)
{
    return op.op_id != kInvalidOpId ? op.op_id : et::resolve_op_id(*op.node);
}

inline bool
is_f32_meta(const et::TensorMeta& m)
{
    return m.dtype == "float32" && m.itemsize == 4 && m.numel > 0;
}

/// Extracts the recorded scalar at input slot @p slot; nullopt when absent
/// or not numeric.
std::optional<double>
scalar_arg(const et::Node& node, std::size_t slot)
{
    if (node.inputs.size() <= slot)
        return std::nullopt;
    const et::Argument& a = node.inputs[slot];
    if (a.kind == et::Argument::Kind::kDouble)
        return a.double_value;
    if (a.kind == et::Argument::Kind::kInt)
        return static_cast<double>(a.int_value);
    return std::nullopt;
}

/// Single place for fusion legality (tentpole contract).  Returns the
/// allowlist entry when @p op can be a fused-chain member: a compiled-IR
/// pointwise op with one float32 tensor output, a float32 slot-0 tensor
/// input of the same numel (the chain value), a well-formed scalar/operand
/// argument, and no extra host cost that per-member dispatch replication
/// would miss.
const fw::FusedKernelInfo*
fusable_info(const ReconstructedOp& op)
{
    if (op.kind != ReconstructedOp::Kind::kCompiledIr || op.node == nullptr)
        return nullptr;
    const OpId id = op_identity(op);
    const fw::FusedKernelInfo* info = fw::fused_kernel_info(id);
    if (info == nullptr)
        return nullptr;
    const fw::OpDef* def = fw::OpRegistry::instance().find(id);
    if (def == nullptr || def->extra_cpu_us != 0.0)
        return nullptr;

    const et::Node& node = *op.node;
    if (node.outputs.size() != 1 ||
        node.outputs[0].kind != et::Argument::Kind::kTensor ||
        node.outputs[0].tensors.size() != 1 || !is_f32_meta(node.outputs[0].tensors[0]))
        return nullptr;
    if (node.inputs.empty() || node.inputs[0].kind != et::Argument::Kind::kTensor ||
        node.inputs[0].tensors.size() != 1 || !is_f32_meta(node.inputs[0].tensors[0]))
        return nullptr;
    // Pointwise: the chain value flows through slot 0 at constant numel.
    if (node.inputs[0].tensors[0].numel != node.outputs[0].tensors[0].numel)
        return nullptr;

    if (info->norm_head) {
        // batch_norm head: NCHW input, defined per-channel gamma/beta, and a
        // recorded eps — the stage recomputes batch stats, so everything it
        // reads must be resolvable.
        const et::TensorMeta& im = node.inputs[0].tensors[0];
        if (im.shape.size() != 4 || im.shape[1] <= 0 ||
            im.shape[2] * im.shape[3] <= 0)
            return nullptr;
        const int64_t channels = im.shape[1];
        for (std::size_t slot = 1; slot <= 2; ++slot) {
            if (node.inputs.size() <= slot ||
                node.inputs[slot].kind != et::Argument::Kind::kTensor ||
                node.inputs[slot].tensors.size() != 1 ||
                !is_f32_meta(node.inputs[slot].tensors[0]) ||
                node.inputs[slot].tensors[0].numel != channels)
                return nullptr;
        }
        if (!scalar_arg(node, 4).has_value())
            return nullptr;
        return info;
    }
    if (info->n_tensor_inputs >= 2) {
        if (node.inputs.size() < 2 || node.inputs[1].kind != et::Argument::Kind::kTensor ||
            node.inputs[1].tensors.size() != 1 ||
            !is_f32_meta(node.inputs[1].tensors[0]))
            return nullptr;
        const int64_t bn = node.inputs[1].tensors[0].numel;
        const int64_t n = node.inputs[0].tensors[0].numel;
        if (bn != n && !(info->allow_broadcast && bn > 0 && n % bn == 0))
            return nullptr;
    }
    if (info->has_alpha && !scalar_arg(node, 2).has_value())
        return nullptr;
    if (info->is_scalar_op && !scalar_arg(node, 1).has_value())
        return nullptr;
    return info;
}

inline int64_t
output_tensor_id(const ReconstructedOp& op)
{
    return op.node->outputs[0].tensors[0].tensor_id;
}

inline int
count_of(const ConsumerCounts& counts, int64_t tensor_id)
{
    const auto it = counts.find(tensor_id);
    return it == counts.end() ? 0 : it->second;
}

} // namespace

/// Counts how many times each tensor id appears as an input of a
/// non-skipped op (every slot, tensor lists included).
ConsumerCounts
consumer_counts(const std::vector<ReconstructedOp>& ops)
{
    ConsumerCounts counts;
    for (const auto& op : ops) {
        if (op.kind == ReconstructedOp::Kind::kSkipped || op.node == nullptr)
            continue;
        for (const auto& arg : op.node->inputs)
            for (const auto& t : arg.tensors)
                ++counts[t.tensor_id];
    }
    return counts;
}

void
finalize_group(const std::vector<ReconstructedOp>& ops, FusedGroup& group,
               const ConsumerCounts* counts)
{
    // Restored plans re-enter here with only members/dead set, so every
    // structural failure throws ParseError: a corrupt or stale document must
    // quarantine-and-rebuild, never replay a wrong plan.
    if (group.members.empty())
        MYST_THROW(ParseError, "fused group without members");
    for (std::size_t k = 0; k < group.members.size(); ++k) {
        const int m = group.members[k];
        if (m < 0 || static_cast<std::size_t>(m) >= ops.size())
            MYST_THROW(ParseError, "fused group member " << m << " out of range");
        if (k > 0 && m != group.members[k - 1] + 1)
            MYST_THROW(ParseError, "fused group members not consecutive");
    }
    if (group.dead && group.members.size() != 1)
        MYST_THROW(ParseError, "dead group must have exactly one member");

    ConsumerCounts local;
    if (counts == nullptr) {
        local = consumer_counts(ops);
        counts = &local;
    }
    const ReconstructedOp& first = ops[static_cast<std::size_t>(group.members.front())];
    const fw::FusedKernelInfo* first_info = fusable_info(first);
    if (first_info == nullptr)
        MYST_THROW(ParseError, "fused group member is not a fusable pointwise op");

    const int64_t chain_numel = first.node->inputs[0].tensors[0].numel;
    group.input_meta = first.node->inputs[0].tensors[0];
    group.stream = first.stream;
    group.tid = first.node->tid;
    group.stages.clear();
    group.operand_metas.clear();

    // algebraic_simplify context: true while the chain value is known to be
    // already rectified, making a subsequent relu a no-op.
    bool value_rectified = false;
    for (std::size_t k = 0; k < group.members.size(); ++k) {
        const ReconstructedOp& op = ops[static_cast<std::size_t>(group.members[k])];
        const fw::FusedKernelInfo* info = fusable_info(op);
        if (info == nullptr)
            MYST_THROW(ParseError, "fused group member is not a fusable pointwise op");
        if (op.node->tid != group.tid || op.stream != group.stream)
            MYST_THROW(ParseError, "fused group spans threads or streams");
        const et::Node& node = *op.node;
        if (node.inputs[0].tensors[0].numel != chain_numel)
            MYST_THROW(ParseError, "fused group member numel mismatch");
        if (k > 0) {
            const int64_t link =
                output_tensor_id(ops[static_cast<std::size_t>(group.members[k - 1])]);
            if (node.inputs[0].tensors[0].tensor_id != link)
                MYST_THROW(ParseError, "fused chain broken: slot-0 input is not the "
                                       "previous member's output");
            if (count_of(*counts, link) != 1)
                MYST_THROW(ParseError,
                           "fused chain intermediate has multiple consumers");
        }

        if (info->norm_head && k > 0)
            MYST_THROW(ParseError, "normalization op fused mid-chain (head-only)");

        fw::FusedStage st;
        st.kernel = info->kernel;
        st.numel = chain_numel;
        st.node_id = node.id;
        if (info->norm_head) {
            const et::TensorMeta& im = node.inputs[0].tensors[0];
            st.channels = im.shape[1];
            st.spatial = im.shape[2] * im.shape[3];
            st.n_operands = 2;
            group.operand_metas.push_back(node.inputs[1].tensors[0]); // gamma
            group.operand_metas.push_back(node.inputs[2].tensors[0]); // beta
            st.alpha = static_cast<float>(*scalar_arg(node, 4)); // eps
        } else if (info->n_tensor_inputs >= 2) {
            const et::TensorMeta& bm = node.inputs[1].tensors[0];
            st.operand_numel = bm.numel;
            st.n_operands = 1;
            group.operand_metas.push_back(bm);
        }
        double scalar = 1.0;
        if (!info->norm_head) {
            if (info->has_alpha)
                scalar = *scalar_arg(node, 2);
            else if (info->is_scalar_op)
                scalar = *scalar_arg(node, 1);
            st.alpha = static_cast<float>(scalar);
        }

        // algebraic_simplify: stages that provably leave every element's
        // bits unchanged skip their arithmetic (the launch still replays).
        if (info->kernel == fw::FusedKernel::kMulScalar && scalar == 1.0)
            st.identity = true;
        else if (info->kernel == fw::FusedKernel::kRelu && value_rectified)
            st.identity = true;
        if (info->kernel == fw::FusedKernel::kRelu)
            value_rectified = true;
        else if (!st.identity)
            value_rectified = false;

        st.desc = info->norm_head
                      ? fw::norm_kernel(info->family, chain_numel)
                      : fw::pointwise_kernel(info->family, chain_numel,
                                             info->n_tensor_inputs,
                                             info->flops_per_elem);
        group.stages.push_back(std::move(st));
    }

    const ReconstructedOp& last = ops[static_cast<std::size_t>(group.members.back())];
    group.output_meta = last.node->outputs[0].tensors[0];
    const int out_consumers = count_of(*counts, group.output_meta.tensor_id);
    if (group.dead) {
        if (out_consumers != 0)
            MYST_THROW(ParseError, "dead group output has consumers");
    } else if (group.members.size() == 1 && !group.stages[0].identity) {
        MYST_THROW(ParseError, "single-member group is neither dead nor an identity");
    }
}

OptimizerStats
derive_optimizer_stats(const std::vector<FusedGroup>& groups)
{
    OptimizerStats stats;
    for (const auto& g : groups) {
        if (g.members.size() >= 2) {
            ++stats.chains_formed;
            stats.ops_fused += static_cast<int64_t>(g.members.size());
        } else if (g.dead) {
            ++stats.ops_eliminated;
        }
        for (const auto& st : g.stages)
            if (st.identity)
                ++stats.ops_simplified;
    }
    return stats;
}

OptimizerStats
optimize_plan(std::vector<ReconstructedOp>& ops, std::vector<FusedGroup>& groups)
{
    const auto t0 = std::chrono::steady_clock::now();
    const auto counts = consumer_counts(ops);

    auto adopt = [&](FusedGroup g) {
        finalize_group(ops, g, &counts);
        const int gid = static_cast<int>(groups.size());
        for (const int m : g.members)
            ops[static_cast<std::size_t>(m)].fused_group = gid;
        ops[static_cast<std::size_t>(g.members.front())].fused_head = true;
        groups.push_back(std::move(g));
    };

    // Pass 1: dead_op_elimination — fusable ops whose output nothing
    // selected ever reads.  Launch and dispatch still replay (bit-identical
    // timeline); allocation, numerics and binding do not.
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].fused_group >= 0 || fusable_info(ops[i]) == nullptr)
            continue;
        if (count_of(counts, output_tensor_id(ops[i])) == 0) {
            FusedGroup g;
            g.members = {static_cast<int>(i)};
            g.dead = true;
            adopt(std::move(g));
        }
    }

    // Pass 2: algebraic_simplify — identify neutral ops; chain members are
    // marked inside finalize_group, leftovers become single-member groups
    // after chain formation.
    std::vector<bool> identity_candidate(ops.size(), false);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].fused_group >= 0)
            continue;
        const fw::FusedKernelInfo* info = fusable_info(ops[i]);
        if (info != nullptr && info->kernel == fw::FusedKernel::kMulScalar &&
            scalar_arg(*ops[i].node, 1) == 1.0)
            identity_candidate[i] = true;
    }

    // Pass 3: fuse_pointwise_chains — maximal runs of consecutive fusable
    // ops where each link's slot-0 input is the previous member's output and
    // that intermediate has no other consumer.  Skipped or non-fusable ops
    // are barriers (consecutiveness is part of the contract: replay order
    // within the chain is exactly the recorded order).
    std::size_t i = 0;
    while (i < ops.size()) {
        if (ops[i].fused_group >= 0 || fusable_info(ops[i]) == nullptr) {
            ++i;
            continue;
        }
        const int64_t chain_numel = ops[i].node->inputs[0].tensors[0].numel;
        std::size_t j = i;
        while (j + 1 < ops.size()) {
            const ReconstructedOp& next = ops[j + 1];
            const fw::FusedKernelInfo* next_info = fusable_info(next);
            if (next.fused_group >= 0 || next_info == nullptr ||
                next_info->norm_head)
                break;
            const int64_t link = output_tensor_id(ops[j]);
            if (next.node->inputs[0].tensors[0].tensor_id != link ||
                count_of(counts, link) != 1 ||
                next.node->inputs[0].tensors[0].numel != chain_numel ||
                next.node->tid != ops[i].node->tid || next.stream != ops[i].stream)
                break;
            ++j;
        }
        if (j > i) {
            FusedGroup g;
            for (std::size_t m = i; m <= j; ++m)
                g.members.push_back(static_cast<int>(m));
            adopt(std::move(g));
        }
        i = j + 1;
    }

    // Pass 2 leftovers: standalone neutral ops still skip interpretation.
    for (std::size_t k = 0; k < ops.size(); ++k) {
        if (identity_candidate[k] && ops[k].fused_group < 0) {
            FusedGroup g;
            g.members = {static_cast<int>(k)};
            adopt(std::move(g));
        }
    }

    OptimizerStats stats = derive_optimizer_stats(groups);
    stats.optimize_us =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count() /
        1e3;
    return stats;
}

namespace {

/// Tensor-effect key space: recorded tensor ids and storage ids live in
/// separate namespaces, so tag the id with its kind before mapping.
struct EffectKey {
    bool is_storage;
    int64_t id;
    bool operator==(const EffectKey&) const = default;
};

struct EffectKeyHash {
    std::size_t operator()(const EffectKey& k) const
    {
        return std::hash<int64_t>()(k.id) * 2 + (k.is_storage ? 1 : 0);
    }
};

void
collect_meta_keys(const et::TensorMeta& m, std::vector<EffectKey>& out)
{
    out.push_back({false, m.tensor_id});
    if (m.storage_id >= 0)
        out.push_back({true, m.storage_id});
}

/// Reads/writes of one unit, as recorded-tensor keys.
void
unit_effects(const std::vector<ReconstructedOp>& ops,
             const std::vector<FusedGroup>& groups, const DepUnit& u,
             std::vector<EffectKey>& reads, std::vector<EffectKey>& writes)
{
    reads.clear();
    writes.clear();
    if (u.group >= 0) {
        const FusedGroup& g = groups[static_cast<std::size_t>(u.group)];
        collect_meta_keys(g.input_meta, reads);
        for (const auto& m : g.operand_metas)
            collect_meta_keys(m, reads);
        if (!g.dead)
            collect_meta_keys(g.output_meta, writes);
        return;
    }
    const et::Node& node = *ops[static_cast<std::size_t>(u.head)].node;
    for (const auto& arg : node.inputs)
        for (const auto& t : arg.tensors)
            collect_meta_keys(t, reads);
    for (const auto& arg : node.outputs)
        for (const auto& t : arg.tensors)
            collect_meta_keys(t, writes);
}

} // namespace

DepGraph
build_dep_graph(const std::vector<ReconstructedOp>& ops,
                const std::vector<FusedGroup>& groups)
{
    DepGraph graph;

    // Enumerate units in program order (mirrors the serial hot loop: skipped
    // ops and non-head group members never execute).
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const ReconstructedOp& op = ops[i];
        DepUnit u;
        u.head = static_cast<int>(i);
        if (op.fused_group >= 0) {
            if (!op.fused_head)
                continue;
            u.group = op.fused_group;
            const FusedGroup& g = groups[static_cast<std::size_t>(op.fused_group)];
            u.stream = g.stream.value_or(dev::kComputeStream);
        } else {
            if (op.kind == ReconstructedOp::Kind::kSkipped || op.node == nullptr)
                continue;
            const bool is_comm = op.node->category == dev::OpCategory::kComm;
            u.comm = is_comm;
            u.stream = op.stream.value_or(is_comm ? dev::kCommStream
                                                  : dev::kComputeStream);
            // Barriers: collectives must keep their recorded per-rank issue
            // order (rendezvous deadlock otherwise); direct-dispatch custom
            // ops and tensor-less ops have effects the recorded tensor metas
            // cannot express.
            bool touches_tensors = false;
            for (const auto& arg : op.node->inputs)
                touches_tensors |= !arg.tensors.empty();
            for (const auto& arg : op.node->outputs)
                touches_tensors |= !arg.tensors.empty();
            u.barrier = is_comm ||
                        op.node->category == dev::OpCategory::kCustom ||
                        op.kind == ReconstructedOp::Kind::kDirect ||
                        !touches_tensors;
        }
        graph.units.push_back(std::move(u));
    }

    // Def-use edges + barrier edges, one forward sweep.
    std::unordered_map<EffectKey, int, EffectKeyHash> last_writer;
    std::unordered_map<EffectKey, std::vector<int>, EffectKeyHash> readers_since_write;
    int last_barrier = -1;
    std::vector<EffectKey> reads, writes;
    for (std::size_t ui = 0; ui < graph.units.size(); ++ui) {
        DepUnit& u = graph.units[ui];
        const int self = static_cast<int>(ui);
        std::vector<int>& deps = u.deps;

        if (u.barrier) {
            // Runs after every earlier unit since (and including) the
            // previous barrier; everything after it depends on it below.
            for (int d = last_barrier < 0 ? 0 : last_barrier; d < self; ++d)
                deps.push_back(d);
            last_barrier = self;
        } else {
            if (last_barrier >= 0)
                deps.push_back(last_barrier);
            unit_effects(ops, groups, u, reads, writes);
            for (const EffectKey& k : reads) { // RAW
                const auto it = last_writer.find(k);
                if (it != last_writer.end())
                    deps.push_back(it->second);
            }
            for (const EffectKey& k : writes) {
                const auto it = last_writer.find(k); // WAW
                if (it != last_writer.end())
                    deps.push_back(it->second);
                const auto rit = readers_since_write.find(k); // WAR
                if (rit != readers_since_write.end())
                    deps.insert(deps.end(), rit->second.begin(), rit->second.end());
            }
            for (const EffectKey& k : reads)
                readers_since_write[k].push_back(self);
            for (const EffectKey& k : writes) {
                last_writer[k] = self;
                readers_since_write[k].clear();
            }
        }

        std::sort(deps.begin(), deps.end());
        deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
        deps.erase(std::remove(deps.begin(), deps.end(), self), deps.end());
    }
    return graph;
}

void
validate_dep_graph(const DepGraph& graph, std::size_t n_ops)
{
    for (std::size_t ui = 0; ui < graph.units.size(); ++ui) {
        const DepUnit& u = graph.units[ui];
        if (u.head < 0 || static_cast<std::size_t>(u.head) >= n_ops)
            MYST_THROW(ParseError, "dep-graph unit head " << u.head << " out of range");
        int prev = -1;
        for (const int d : u.deps) {
            if (d < 0)
                MYST_THROW(ParseError, "dep-graph edge target " << d << " negative");
            if (d >= static_cast<int>(ui))
                MYST_THROW(ParseError, "dep-graph edge points forward (cycle): unit "
                                           << ui << " depends on " << d);
            if (d <= prev)
                MYST_THROW(ParseError,
                           "dep-graph deps not strictly ascending in unit " << ui);
            prev = d;
        }
    }
}

uint64_t
dep_graph_fingerprint(const DepGraph& graph)
{
    Fnv1a h;
    h.mix_pod(static_cast<uint64_t>(graph.units.size()));
    for (const DepUnit& u : graph.units) {
        h.mix_pod(u.head);
        h.mix_pod(u.group);
        h.mix_pod(u.stream);
        h.mix_pod(u.comm);
        h.mix_pod(u.barrier);
        h.mix_pod(static_cast<uint64_t>(u.deps.size()));
        for (const int d : u.deps)
            h.mix_pod(d);
    }
    return h.value();
}

void
execute_fused_group(fw::Session& session, const FusedGroup& group, TensorManager& tm)
{
    thread_local fw::FusedChainCall call; // reused: vectors keep capacity
    call.stages = group.stages.data();
    call.n_stages = group.stages.size();
    call.dead = group.dead;
    call.input = tm.resolve(group.input_meta);
    call.operands.clear();
    for (const auto& m : group.operand_metas)
        call.operands.push_back(tm.resolve(m));
    if (!group.dead)
        call.out_shape = call.input.shape(); // what each verbatim link allocs

    fw::run_fused_chain(session, call);

    if (!group.dead)
        tm.bind_output(group.output_meta, call.out);
    call.input = fw::Tensor();
    call.out = fw::Tensor();
    call.operands.clear();
}

} // namespace mystique::core
