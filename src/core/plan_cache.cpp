#include "core/plan_cache.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "common/thread_pool.h"
#include "core/plan_store.h"

namespace mystique::core {

PlanCache::PlanCache(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1))
{
}

PlanCache::~PlanCache()
{
    flush_writebacks();
}

PlanCache&
PlanCache::instance()
{
    static PlanCache cache;
    return cache;
}

std::shared_ptr<PlanStore>
PlanCache::open_store() const
{
    std::string dir;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (store_override_.has_value()) {
            dir = *store_override_;
        } else {
            // Read at use time like every other runtime knob (docs/env_vars.md).
            const char* env = std::getenv("MYST_PLAN_CACHE_DIR");
            dir = env != nullptr ? env : "";
        }
    }
    if (dir.empty())
        return nullptr;
    return std::make_shared<PlanStore>(std::move(dir));
}

std::shared_ptr<const ReplayPlan>
PlanCache::get_or_build(const et::ExecutionTrace& trace, const prof::ProfilerTrace* prof,
                        const ReplayConfig& cfg)
{
    return get_or_build_impl(trace, nullptr, prof, cfg);
}

std::shared_ptr<const ReplayPlan>
PlanCache::get_or_build(std::shared_ptr<const et::ExecutionTrace> trace,
                        const prof::ProfilerTrace* prof, const ReplayConfig& cfg)
{
    MYST_CHECK(trace != nullptr);
    const et::ExecutionTrace& ref = *trace;
    return get_or_build_impl(ref, std::move(trace), prof, cfg);
}

std::shared_ptr<const ReplayPlan>
PlanCache::get_or_build_impl(const et::ExecutionTrace& trace,
                             std::shared_ptr<const et::ExecutionTrace> shared,
                             const prof::ProfilerTrace* prof, const ReplayConfig& cfg)
{
    const PlanKey key = plan_key(trace, prof, cfg);

    std::promise<std::shared_ptr<const ReplayPlan>> promise;
    std::shared_future<std::shared_ptr<const ReplayPlan>> future;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            // Hit — including concurrent requests that arrive while the first
            // build is still in flight; they wait on the same future below.
            ++hits_;
            it->second.last_used = ++tick_;
            future = it->second.plan;
        } else {
            ++misses_;
            builder = true;
            future = promise.get_future().share();
            entries_[key] = Entry{future, /*ready=*/false, ++tick_};
        }
    }

    if (!builder)
        return future.get();

    // Builder path: resolve outside the lock so unrelated keys (and their
    // waiters) make progress concurrently.  The disk tier goes first — a hit
    // costs one parse instead of the whole selection+reconstruction pass —
    // and anything wrong with the entry was quarantined inside load(), so a
    // null return always means "build it".
    const std::shared_ptr<PlanStore> store = open_store();
    try {
        // The plan must outlive the caller's trace reference: share the
        // caller's handle when it has one, deep-copy exactly once when not.
        // Either way the misses below (disk load or full build) perform no
        // further trace copies.
        if (shared == nullptr)
            shared = std::make_shared<et::ExecutionTrace>(trace);
        std::shared_ptr<const ReplayPlan> plan;
        bool disk_hit = false;
        if (store != nullptr) {
            plan = store->load(key, shared);
            disk_hit = plan != nullptr;
        }
        if (plan == nullptr)
            plan = ReplayPlan::build_with_key(std::move(shared), prof, cfg, key);
        promise.set_value(plan);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (store != nullptr)
                disk_hit ? ++disk_hits_ : ++disk_misses_;
            if (!disk_hit) {
                ++builds_;
                // Optimizer counters accumulate on builds only: warm plans
                // (either tier) are already optimized, so a warm sweep shows
                // zero re-optimization.
                const OptimizerStats& opt = plan->optimizer_stats();
                opt_ops_fused_ += static_cast<uint64_t>(opt.ops_fused);
                opt_ops_eliminated_ += static_cast<uint64_t>(opt.ops_eliminated);
                opt_chains_formed_ += static_cast<uint64_t>(opt.chains_formed);
                opt_time_us_ += opt.optimize_us;
            }
            auto it = entries_.find(key);
            if (it != entries_.end())
                it->second.ready = true;
            evict_excess_locked();
        }
        // Write-back on fresh builds only: a disk hit already lives there,
        // and build-once semantics make this write-once per key per process.
        if (!disk_hit && store != nullptr)
            submit_writeback(store, plan);
        return plan;
    } catch (...) {
        promise.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(mu_);
        entries_.erase(key); // later requests retry instead of caching failure
        throw;
    }
}

void
PlanCache::submit_writeback(std::shared_ptr<PlanStore> store,
                            std::shared_ptr<const ReplayPlan> plan)
{
    std::future<void> pending;
    try {
        pending = ThreadPool::background().submit(
            [this, store = std::move(store), plan = std::move(plan)] {
                if (store->store(*plan)) {
                    std::lock_guard<std::mutex> lock(mu_);
                    ++writebacks_;
                }
            });
    } catch (...) {
        return; // pool shutting down (process exit) — persistence is best-effort
    }
    std::lock_guard<std::mutex> lock(mu_);
    // Prune settled futures so a long-lived process with the tier enabled
    // holds state only for writebacks actually in flight.
    std::erase_if(writeback_futures_, [](std::future<void>& f) {
        return f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
    });
    writeback_futures_.push_back(std::move(pending));
}

void
PlanCache::flush_writebacks()
{
    std::vector<std::future<void>> pending;
    {
        std::lock_guard<std::mutex> lock(mu_);
        pending.swap(writeback_futures_);
    }
    for (std::future<void>& f : pending) {
        try {
            f.get();
        } catch (...) {
            // store() reports failures via its return value; nothing to do.
        }
    }
}

bool
PlanCache::insert(std::shared_ptr<const ReplayPlan> plan)
{
    MYST_CHECK(plan != nullptr);
    // Borrowed one-shot plans skip the trace/supported-set hashes; caching
    // one would serve it for *every* trace.  (A full key with both hashes
    // genuinely zero is a ~2^-128 event.)
    MYST_CHECK_MSG(plan->key().trace_fp != 0 || plan->key().supported_fp != 0,
                   "refusing to cache a plan with a partial (borrowed-build) key");
    const PlanKey key = plan->key();

    std::promise<std::shared_ptr<const ReplayPlan>> promise;
    promise.set_value(std::move(plan));

    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.find(key) != entries_.end())
        return false;
    entries_[key] = Entry{promise.get_future().share(), /*ready=*/true, ++tick_};
    evict_excess_locked();
    return true;
}

std::shared_ptr<const ReplayPlan>
PlanCache::lookup(const PlanKey& key) const
{
    std::shared_future<std::shared_ptr<const ReplayPlan>> future;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it == entries_.end() || !it->second.ready)
            return nullptr;
        future = it->second.plan;
    }
    return future.get();
}

PlanCacheStats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    PlanCacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.disk_hits = disk_hits_;
    s.disk_misses = disk_misses_;
    s.builds = builds_;
    s.writebacks = writebacks_;
    s.evictions = evictions_;
    s.size = entries_.size();
    s.capacity = capacity_;
    s.opt_ops_fused = opt_ops_fused_;
    s.opt_ops_eliminated = opt_ops_eliminated_;
    s.opt_chains_formed = opt_chains_formed_;
    s.opt_time_us = opt_time_us_;
    return s;
}

void
PlanCache::clear()
{
    // Settle in-flight writebacks first so their completions cannot bump the
    // counters this is about to zero.
    flush_writebacks();
    std::lock_guard<std::mutex> lock(mu_);
    // Keep in-flight builds (their owners still hold the promise); dropping
    // them here would not cancel the build anyway.
    for (auto it = entries_.begin(); it != entries_.end();) {
        it = it->second.ready ? entries_.erase(it) : std::next(it);
    }
    hits_ = misses_ = disk_hits_ = disk_misses_ = builds_ = writebacks_ = evictions_ = 0;
    opt_ops_fused_ = opt_ops_eliminated_ = opt_chains_formed_ = 0;
    opt_time_us_ = 0.0;
    tick_ = 0;
}

void
PlanCache::set_capacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = std::max<std::size_t>(capacity, 1);
    evict_excess_locked();
}

void
PlanCache::set_store_dir(std::optional<std::string> dir)
{
    // Writebacks bound for the *old* store should land before the switch
    // takes effect (tests rely on a settled directory).
    flush_writebacks();
    std::lock_guard<std::mutex> lock(mu_);
    store_override_ = std::move(dir);
}

void
PlanCache::evict_excess_locked()
{
    while (entries_.size() > capacity_) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (!it->second.ready)
                continue; // never evict an in-flight build
            if (victim == entries_.end() || it->second.last_used < victim->second.last_used)
                victim = it;
        }
        if (victim == entries_.end())
            return; // everything over capacity is still building
        entries_.erase(victim);
        ++evictions_;
    }
}

} // namespace mystique::core
