#include "core/plan_cache.h"

#include <algorithm>
#include <utility>

namespace mystique::core {

PlanCache::PlanCache(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1))
{
}

PlanCache&
PlanCache::instance()
{
    static PlanCache cache;
    return cache;
}

std::shared_ptr<const ReplayPlan>
PlanCache::get_or_build(const et::ExecutionTrace& trace, const prof::ProfilerTrace* prof,
                        const ReplayConfig& cfg)
{
    const PlanKey key = plan_key(trace, prof, cfg);

    std::promise<std::shared_ptr<const ReplayPlan>> promise;
    std::shared_future<std::shared_ptr<const ReplayPlan>> future;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            // Hit — including concurrent requests that arrive while the first
            // build is still in flight; they wait on the same future below.
            ++hits_;
            it->second.last_used = ++tick_;
            future = it->second.plan;
        } else {
            ++misses_;
            builder = true;
            future = promise.get_future().share();
            entries_[key] = Entry{future, /*ready=*/false, ++tick_};
        }
    }

    if (!builder)
        return future.get();

    // Builder path: construct outside the lock so unrelated keys (and their
    // waiters) make progress concurrently.
    try {
        std::shared_ptr<const ReplayPlan> plan =
            ReplayPlan::build_with_key(trace, prof, cfg, key);
        promise.set_value(plan);
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end())
            it->second.ready = true;
        evict_excess_locked();
        return plan;
    } catch (...) {
        promise.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(mu_);
        entries_.erase(key); // later requests retry instead of caching failure
        throw;
    }
}

bool
PlanCache::insert(std::shared_ptr<const ReplayPlan> plan)
{
    MYST_CHECK(plan != nullptr);
    // Borrowed one-shot plans skip the trace/supported-set hashes; caching
    // one would serve it for *every* trace.  (A full key with both hashes
    // genuinely zero is a ~2^-128 event.)
    MYST_CHECK_MSG(plan->key().trace_fp != 0 || plan->key().supported_fp != 0,
                   "refusing to cache a plan with a partial (borrowed-build) key");
    const PlanKey key = plan->key();

    std::promise<std::shared_ptr<const ReplayPlan>> promise;
    promise.set_value(std::move(plan));

    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.find(key) != entries_.end())
        return false;
    entries_[key] = Entry{promise.get_future().share(), /*ready=*/true, ++tick_};
    evict_excess_locked();
    return true;
}

std::shared_ptr<const ReplayPlan>
PlanCache::lookup(const PlanKey& key) const
{
    std::shared_future<std::shared_ptr<const ReplayPlan>> future;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it == entries_.end() || !it->second.ready)
            return nullptr;
        future = it->second.plan;
    }
    return future.get();
}

PlanCacheStats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    PlanCacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.size = entries_.size();
    s.capacity = capacity_;
    return s;
}

void
PlanCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    // Keep in-flight builds (their owners still hold the promise); dropping
    // them here would not cancel the build anyway.
    for (auto it = entries_.begin(); it != entries_.end();) {
        it = it->second.ready ? entries_.erase(it) : std::next(it);
    }
    hits_ = misses_ = evictions_ = 0;
    tick_ = 0;
}

void
PlanCache::set_capacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = std::max<std::size_t>(capacity, 1);
    evict_excess_locked();
}

void
PlanCache::evict_excess_locked()
{
    while (entries_.size() > capacity_) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (!it->second.ready)
                continue; // never evict an in-flight build
            if (victim == entries_.end() || it->second.last_used < victim->second.last_used)
                victim = it;
        }
        if (victim == entries_.end())
            return; // everything over capacity is still building
        entries_.erase(victim);
        ++evictions_;
    }
}

} // namespace mystique::core
