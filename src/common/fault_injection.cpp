#include "common/fault_injection.h"

#include <atomic>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/error.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace mystique {

const std::vector<std::string>&
fault_sites()
{
    static const std::vector<std::string> sites{
        "fs.write_open",   "fs.write_short",         "fs.write_fsync",
        "fs.rename",       "fs.read",                "store.load",
        "store.writeback", "pool.background_delay",  "sweep.group",
        "journal.write",   "journal.load",
    };
    return sites;
}

struct FaultInjection::Impl {
    struct Site {
        uint64_t nth = 0;
        FaultMode mode = FaultMode::kOnce;
        bool armed = false;
        uint64_t hits = 0;
        uint64_t fired = 0;
    };

    /// Fast path: false while nothing is armed, so disarmed hooks cost one
    /// relaxed load and never take the mutex.
    std::atomic<bool> enabled{false};
    /// Set once programmatic arm()/disarm_all() took over from MYST_FAULT.
    bool env_consumed = false;
    mutable std::mutex mu;
    std::unordered_map<std::string, Site> sites;
    std::vector<std::string> site_order; ///< first-hit order, for stats()

    Site& site_locked(const std::string& name)
    {
        auto [it, inserted] = sites.try_emplace(name);
        if (inserted)
            site_order.push_back(name);
        return it->second;
    }

    /// Parses "site:nth[:mode]" specs from MYST_FAULT (comma-separated).
    /// Unknown modes or malformed counts throw ConfigError: a typo in a
    /// fault spec must fail loudly, not silently run an un-faulted pass.
    void load_env_locked()
    {
        env_consumed = true;
        const char* env = std::getenv("MYST_FAULT");
        if (env == nullptr || *env == '\0')
            return;
        for (const std::string& spec : split(env, ',')) {
            const std::vector<std::string> parts = split(spec, ':');
            if (parts.size() < 2 || parts.size() > 3)
                MYST_THROW(ConfigError,
                           "MYST_FAULT: expected <site>:<nth>[:<mode>], got '" << spec
                                                                              << "'");
            uint64_t nth = 0;
            const std::string& n = parts[1];
            const auto [ptr, ec] = std::from_chars(n.data(), n.data() + n.size(), nth);
            if (ec != std::errc() || ptr != n.data() + n.size() || nth == 0)
                MYST_THROW(ConfigError, "MYST_FAULT: bad count in '" << spec << "'");
            FaultMode mode = FaultMode::kOnce;
            if (parts.size() == 3) {
                if (parts[2] == "once")
                    mode = FaultMode::kOnce;
                else if (parts[2] == "every")
                    mode = FaultMode::kEvery;
                else if (parts[2] == "delay")
                    mode = FaultMode::kDelay;
                else
                    MYST_THROW(ConfigError, "MYST_FAULT: unknown mode in '" << spec
                                                                            << "'");
            }
            Site& s = site_locked(parts[0]);
            s.nth = nth;
            s.mode = mode;
            s.armed = true;
            MYST_INFO("fault injection: armed '" << parts[0] << "' nth=" << nth
                                                 << " via MYST_FAULT");
        }
        enabled.store(true, std::memory_order_relaxed);
    }

    void ensure_env_locked()
    {
        if (!env_consumed)
            load_env_locked();
    }
};

FaultInjection&
FaultInjection::instance()
{
    static FaultInjection inst;
    return inst;
}

FaultInjection::Impl&
FaultInjection::impl()
{
    static Impl impl;
    // First touch picks up MYST_FAULT so CLI runs need no code changes.
    {
        std::lock_guard<std::mutex> lock(impl.mu);
        impl.ensure_env_locked();
    }
    return impl;
}

void
FaultInjection::arm(const std::string& site, uint64_t nth, FaultMode mode)
{
    MYST_CHECK_MSG(nth > 0, "fault nth is 1-based");
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    Impl::Site& s = im.site_locked(site);
    s.nth = nth;
    s.mode = mode;
    s.armed = true;
    s.hits = 0;
    s.fired = 0;
    im.enabled.store(true, std::memory_order_relaxed);
}

void
FaultInjection::disarm_all()
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    im.enabled.store(false, std::memory_order_relaxed);
    im.sites.clear();
    im.site_order.clear();
}

void
FaultInjection::reload_env()
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    im.enabled.store(false, std::memory_order_relaxed);
    im.sites.clear();
    im.site_order.clear();
    im.load_env_locked();
}

bool
FaultInjection::should_fail(const char* site)
{
    Impl& im = impl();
    if (!im.enabled.load(std::memory_order_relaxed))
        return false;
    std::lock_guard<std::mutex> lock(im.mu);
    Impl::Site& s = im.site_locked(site);
    ++s.hits;
    if (!s.armed || s.mode == FaultMode::kDelay)
        return false;
    const bool fire = s.mode == FaultMode::kOnce ? s.hits == s.nth
                                                 : s.hits % s.nth == 0;
    if (fire)
        ++s.fired;
    return fire;
}

void
FaultInjection::maybe_delay(const char* site)
{
    Impl& im = impl();
    if (!im.enabled.load(std::memory_order_relaxed))
        return;
    uint64_t sleep_ms = 0;
    {
        std::lock_guard<std::mutex> lock(im.mu);
        Impl::Site& s = im.site_locked(site);
        ++s.hits;
        if (!s.armed || s.mode != FaultMode::kDelay)
            return;
        ++s.fired;
        sleep_ms = s.nth;
    }
    // Sleep outside the lock: a stalled worker must not stall the registry.
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
}

std::vector<FaultSiteStats>
FaultInjection::stats() const
{
    Impl& im = const_cast<FaultInjection*>(this)->impl();
    std::lock_guard<std::mutex> lock(im.mu);
    std::vector<FaultSiteStats> out;
    out.reserve(im.site_order.size());
    for (const std::string& name : im.site_order) {
        const Impl::Site& s = im.sites.at(name);
        out.push_back({name, s.hits, s.fired});
    }
    return out;
}

uint64_t
FaultInjection::total_fired() const
{
    Impl& im = const_cast<FaultInjection*>(this)->impl();
    std::lock_guard<std::mutex> lock(im.mu);
    uint64_t total = 0;
    for (const auto& [name, s] : im.sites)
        total += s.fired;
    return total;
}

} // namespace mystique
