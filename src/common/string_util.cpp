#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace mystique {

std::vector<std::string>
split(std::string_view text, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == delim) {
            out.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
split_top_level(std::string_view text, char delim)
{
    std::vector<std::string> out;
    int depth = 0;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size()) {
            out.emplace_back(text.substr(start, i - start));
            break;
        }
        char c = text[i];
        if (c == '(' || c == '[' || c == '<') {
            ++depth;
        } else if (c == ')' || c == ']' || c == '>') {
            --depth;
        } else if (c == delim && depth == 0) {
            out.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string_view
trim(std::string_view text)
{
    std::size_t b = 0;
    std::size_t e = text.size();
    while (b < e && (text[b] == ' ' || text[b] == '\t' || text[b] == '\n' || text[b] == '\r'))
        ++b;
    while (e > b &&
           (text[e - 1] == ' ' || text[e - 1] == '\t' || text[e - 1] == '\n' ||
            text[e - 1] == '\r'))
        --e;
    return text.substr(b, e - b);
}

bool
starts_with(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool
ends_with(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string
join(const std::vector<std::string>& parts, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
strprintf(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

std::string
format_us(double microseconds)
{
    if (microseconds >= 1e6)
        return strprintf("%.2f s", microseconds / 1e6);
    if (microseconds >= 1e3)
        return strprintf("%.2f ms", microseconds / 1e3);
    return strprintf("%.2f us", microseconds);
}

std::string
hex64(uint64_t value)
{
    return strprintf("%016llx", static_cast<unsigned long long>(value));
}

} // namespace mystique
