#pragma once

/// @file
/// String helpers shared by the schema parser, IR parser and formatters.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mystique {

/// Splits on a single-character delimiter; empty tokens are preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// Splits on @p delim but only at nesting depth 0 with respect to
/// (), [] and <> — used to split schema argument lists where defaults may
/// themselves contain commas, e.g. "int[2] stride=[1, 1]".
std::vector<std::string> split_top_level(std::string_view text, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Joins tokens with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Fixed-width (16-digit, zero-padded) lowercase hex of a 64-bit value —
/// the fingerprint spelling used in plan-store file names.
std::string hex64(uint64_t value);

/// Formats microseconds as a human-readable "12.34 ms" style string.
std::string format_us(double microseconds);

} // namespace mystique
