#pragma once

/// @file
/// Process-wide fault-injection registry for robustness testing.
///
/// The persistence and background-scheduling layers claim a hard contract —
/// never a crash, never a torn file, never a wrong plan, no matter how the
/// I/O underneath misbehaves.  This registry lets tests (and the
/// `mystique-fuzz` CLI) *prove* that contract instead of asserting it: code
/// threads named fault sites through its failure-prone steps, and a test (or
/// the `MYST_FAULT` environment variable) arms a site to fail or stall on a
/// chosen hit.
///
/// ## Sites
///
/// The catalog lives in `fault_sites()`; each entry is one `should_fail()` /
/// `maybe_delay()` call threaded through production code:
///
///   fs.write_open    atomic_write_file: temp file cannot be opened
///   fs.write_short   atomic_write_file: write fails partway (short write)
///   fs.write_fsync   atomic_write_file: fsync of the temp file fails
///   fs.rename        atomic_write_file: publish rename fails
///   fs.read          read_file: the read fails mid-flight
///   store.load       PlanStore::load: entry bytes arrive corrupted
///   store.writeback  PlanStore::store: serialization/write step fails
///   pool.background_delay  ThreadPool::background(): worker stalls (ms)
///   sweep.group      ReplayDriver: one group's replay attempt fails
///   journal.write    SweepJournal::append: journal publish fails
///   journal.load     SweepJournal::load: journal bytes arrive unreadable
///
/// ## Arming
///
/// Programmatic (tests): `FaultInjection::instance().arm(site, nth, mode)`.
/// Environment (CLI / CI): `MYST_FAULT=<site>:<nth>[:<mode>]`, comma-
/// separated for multiple sites; parsed once on first hook evaluation after
/// process start.  Modes:
///
///   once   (default) fire exactly on the nth hit of the site
///   every  fire on every nth hit (hits where hit_count % nth == 0)
///   delay  sleep `nth` milliseconds on every hit (delay sites only)
///
/// Disarmed sites cost one relaxed atomic load per hook — the hooks are safe
/// to leave in production code paths.

#include <cstdint>
#include <string>
#include <vector>

namespace mystique {

/// What an armed site does when it fires.
enum class FaultMode { kOnce, kEvery, kDelay };

/// Per-site accounting, for test assertions and the fuzz CLI summary.
struct FaultSiteStats {
    std::string site;
    uint64_t hits = 0;  ///< hook evaluations while the registry was enabled
    uint64_t fired = 0; ///< evaluations that injected the fault
};

/// The canonical site catalog (every site threaded through the tree);
/// tests iterate it to prove each injection point is survivable.
const std::vector<std::string>& fault_sites();

class FaultInjection {
  public:
    static FaultInjection& instance();

    /// Arms @p site: mode kOnce fires exactly on hit @p nth (1-based);
    /// kEvery fires whenever the site's hit count is a multiple of @p nth;
    /// kDelay sleeps @p nth milliseconds on every hit.  Re-arming a site
    /// replaces its spec and resets its counters.
    void arm(const std::string& site, uint64_t nth, FaultMode mode = FaultMode::kOnce);

    /// Disarms every site and clears all counters.  The `MYST_FAULT`
    /// variable is not re-read afterwards — programmatic control wins for
    /// the rest of the process (tests rely on this to run a clean phase
    /// after an injected-failure phase).
    void disarm_all();

    /// True when the armed fault for @p site fires at this hit.  Counts a
    /// hit for @p site whenever any site is armed; a fully disarmed registry
    /// is one relaxed atomic load.
    bool should_fail(const char* site);

    /// Sleeps the armed delay for @p site (kDelay mode), if any, and counts
    /// it as fired.  No-op for disarmed or fail-mode sites.
    void maybe_delay(const char* site);

    /// Drops every armed site and re-parses `MYST_FAULT` from the current
    /// environment, as if the process were starting fresh.  Throws
    /// ConfigError on malformed specs.  Test hook: the lazy first-touch parse
    /// happens once per process, so env-driven tests re-trigger it here.
    void reload_env();

    /// Snapshot of per-site counters, armed or not, in first-hit order.
    std::vector<FaultSiteStats> stats() const;

    /// Total faults injected (failures + delays) since the last disarm_all().
    uint64_t total_fired() const;

  private:
    FaultInjection() = default;
    struct Impl;
    Impl& impl();
};

} // namespace mystique
