#include "common/json.h"

#include "common/fs_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace mystique {

bool
Json::as_bool() const
{
    if (!is_bool())
        MYST_THROW(ParseError, "json: expected bool");
    return bool_;
}

int64_t
Json::as_int() const
{
    if (is_int())
        return int_;
    if (is_double() && dbl_ == std::floor(dbl_))
        return static_cast<int64_t>(dbl_);
    MYST_THROW(ParseError, "json: expected integer");
}

double
Json::as_double() const
{
    if (is_int())
        return static_cast<double>(int_);
    if (is_double())
        return dbl_;
    MYST_THROW(ParseError, "json: expected number");
}

const std::string&
Json::as_string() const
{
    if (!is_string())
        MYST_THROW(ParseError, "json: expected string");
    return str_;
}

const Json::Array&
Json::as_array() const
{
    if (!is_array())
        MYST_THROW(ParseError, "json: expected array");
    return arr_;
}

Json::Array&
Json::as_array()
{
    if (!is_array())
        MYST_THROW(ParseError, "json: expected array");
    return arr_;
}

const Json::Object&
Json::as_object() const
{
    if (!is_object())
        MYST_THROW(ParseError, "json: expected object");
    return obj_;
}

Json::Object&
Json::as_object()
{
    if (!is_object())
        MYST_THROW(ParseError, "json: expected object");
    return obj_;
}

void
Json::push_back(Json v)
{
    as_array().push_back(std::move(v));
}

const Json*
Json::find(std::string_view key) const
{
    if (!is_object())
        return nullptr;
    for (const auto& [k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const Json&
Json::at(std::string_view key) const
{
    const Json* v = find(key);
    if (v == nullptr)
        MYST_THROW(ParseError, "json: missing key '" << key << "'");
    return *v;
}

void
Json::set(std::string_view key, Json v)
{
    auto& members = as_object();
    for (auto& [k, existing] : members) {
        if (k == key) {
            existing = std::move(v);
            return;
        }
    }
    members.emplace_back(std::string(key), std::move(v));
}

int64_t
Json::get_int(std::string_view key, int64_t fallback) const
{
    const Json* v = find(key);
    return (v != nullptr && v->is_number()) ? v->as_int() : fallback;
}

double
Json::get_double(std::string_view key, double fallback) const
{
    const Json* v = find(key);
    return (v != nullptr && v->is_number()) ? v->as_double() : fallback;
}

std::string
Json::get_string(std::string_view key, const std::string& fallback) const
{
    const Json* v = find(key);
    return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

bool
Json::get_bool(std::string_view key, bool fallback) const
{
    const Json* v = find(key);
    return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

namespace {

void
escape_string(const std::string& s, std::string& out)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

void
format_double(double d, std::string& out)
{
    if (std::isnan(d) || std::isinf(d)) {
        // JSON has no NaN/Inf; emit null, as browsers' chrome://tracing does.
        out += "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    // Trim to shortest round-trip-safe form: try progressively fewer digits.
    for (int prec = 1; prec < 17; ++prec) {
        char shorter[32];
        std::snprintf(shorter, sizeof(shorter), "%.*g", prec, d);
        double back = 0.0;
        std::sscanf(shorter, "%lf", &back);
        if (back == d) {
            out += shorter;
            return;
        }
    }
    out += buf;
}

} // namespace

void
Json::dump_to(std::string& out, int indent, int depth) const
{
    const bool pretty = indent >= 0;
    auto newline = [&](int d) {
        if (pretty) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d), ' ');
        }
    };
    switch (type_) {
      case Type::kNull:
        out += "null";
        break;
      case Type::kBool:
        out += bool_ ? "true" : "false";
        break;
      case Type::kInt:
        out += std::to_string(int_);
        break;
      case Type::kDouble:
        format_double(dbl_, out);
        break;
      case Type::kString:
        escape_string(str_, out);
        break;
      case Type::kArray: {
        out += '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i > 0)
                out += pretty ? "," : ",";
            newline(depth + 1);
            arr_[i].dump_to(out, indent, depth + 1);
        }
        if (!arr_.empty())
            newline(depth);
        out += ']';
        break;
      }
      case Type::kObject: {
        out += '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i > 0)
                out += ",";
            newline(depth + 1);
            escape_string(obj_[i].first, out);
            out += pretty ? ": " : ":";
            obj_[i].second.dump_to(out, indent, depth + 1);
        }
        if (!obj_.empty())
            newline(depth);
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

namespace {

/// Recursive-descent JSON parser over a string_view.
class Parser {
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json parse_document()
    {
        skip_ws();
        Json v = parse_value();
        skip_ws();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string& msg) const
    {
        // Compute 1-based line/column for the error position.
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        MYST_THROW(ParseError, "json at " << line << ":" << col << ": " << msg);
    }

    void skip_ws()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    char peek() const
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    char next()
    {
        char c = peek();
        ++pos_;
        return c;
    }

    void expect(char c)
    {
        if (next() != c)
            fail(std::string("expected '") + c + "'");
    }

    bool consume_literal(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) == lit) {
            pos_ += lit.size();
            return true;
        }
        return false;
    }

    Json parse_value()
    {
        switch (peek()) {
          case '{': return parse_object();
          case '[': return parse_array();
          case '"': return Json(parse_string());
          case 't':
            if (consume_literal("true"))
                return Json(true);
            fail("invalid literal");
          case 'f':
            if (consume_literal("false"))
                return Json(false);
            fail("invalid literal");
          case 'n':
            if (consume_literal("null"))
                return Json();
            fail("invalid literal");
          default: return parse_number();
        }
    }

    /// Containers recurse through parse_value(); a hostile or corrupt
    /// document ("[[[[…", a mangled store entry) must exhaust this budget
    /// and throw ParseError — which the persistence layers quarantine —
    /// instead of overflowing the C++ stack and killing the process.  Real
    /// traces and plans nest a handful of levels; 256 is two orders of
    /// margin.
    static constexpr int kMaxDepth = 256;

    struct DepthScope {
        explicit DepthScope(Parser& p) : parser(p)
        {
            if (++parser.depth_ > kMaxDepth)
                parser.fail("nesting depth exceeds " + std::to_string(kMaxDepth));
        }
        ~DepthScope() { --parser.depth_; }
        Parser& parser;
    };

    // Members collect in a local container (one move into the Json at the
    // end) — going through Json::as_object()/as_array() per element costs a
    // type check and an extra indirection on the hottest parser loop.

    Json parse_object()
    {
        const DepthScope depth(*this);
        expect('{');
        Json::Object members;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return Json(std::move(members));
        }
        members.reserve(6); // typical trace/plan object width; skips 3 regrowths
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            skip_ws();
            members.emplace_back(std::move(key), parse_value());
            skip_ws();
            char c = next();
            if (c == '}')
                return Json(std::move(members));
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    Json parse_array()
    {
        const DepthScope depth(*this);
        expect('[');
        Json::Array elements;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return Json(std::move(elements));
        }
        while (true) {
            skip_ws();
            elements.push_back(parse_value());
            skip_ws();
            char c = next();
            if (c == ']')
                return Json(std::move(elements));
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string parse_string()
    {
        if (peek() != '"')
            fail("expected string");
        ++pos_;
        std::string out;
        // Bulk path: most strings contain no escapes, so scan to the next
        // quote/backslash and append the whole span at once instead of
        // byte-at-a-time — string-heavy documents (traces, plans with IR
        // text) parse several times faster this way.
        while (true) {
            const std::size_t span_start = pos_;
            while (pos_ < text_.size()) {
                const char s = text_[pos_];
                if (s == '"' || s == '\\')
                    break;
                ++pos_;
            }
            if (pos_ > span_start)
                out.append(text_.data() + span_start, pos_ - span_start);
            char c = next();
            if (c == '"')
                return out;
            if (c == '\\') {
                char esc = next();
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    unsigned code = parse_hex4();
                    // Surrogate pairs → single code point.
                    if (code >= 0xD800 && code <= 0xDBFF) {
                        if (next() != '\\' || next() != 'u')
                            fail("expected low surrogate");
                        unsigned lo = parse_hex4();
                        if (lo < 0xDC00 || lo > 0xDFFF)
                            fail("invalid low surrogate");
                        code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                    }
                    append_utf8(code, out);
                    break;
                  }
                  default: fail("invalid escape");
                }
            }
            // No third case: the bulk scan above stops only at '"' or '\\',
            // and next() fails at end of input.
        }
    }

    unsigned parse_hex4()
    {
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            char c = next();
            v <<= 4;
            if (c >= '0' && c <= '9')
                v += static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v += static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v += static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid \\u escape");
        }
        return v;
    }

    static void append_utf8(unsigned code, std::string& out)
    {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
    }

    Json parse_number()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
                text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        std::string_view tok = text_.substr(start, pos_ - start);
        if (tok.empty() || tok == "-")
            fail("invalid number");
        const bool integral =
            tok.find('.') == std::string_view::npos &&
            tok.find('e') == std::string_view::npos && tok.find('E') == std::string_view::npos;
        if (integral) {
            int64_t iv = 0;
            auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), iv);
            if (ec == std::errc() && ptr == tok.data() + tok.size())
                return Json(iv);
            // fall through to double for out-of-range integers
        }
        double dv = 0.0;
        auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), dv);
        if (ec != std::errc() || ptr != tok.data() + tok.size())
            fail("invalid number");
        return Json(dv);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0; ///< current container nesting; capped at kMaxDepth
};

} // namespace

Json
Json::parse(std::string_view text)
{
    return Parser(text).parse_document();
}

Json
Json::parse_file(const std::string& path)
{
    return parse(read_file(path));
}

void
Json::dump_file(const std::string& path, int indent) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        MYST_THROW(MystiqueError, "cannot write file '" + path + "'");
    out << dump(indent);
    if (!out)
        MYST_THROW(MystiqueError, "error writing file '" + path + "'");
}

bool
Json::operator==(const Json& other) const
{
    if (type_ != other.type_) {
        // int/double comparisons compare numerically
        if (is_number() && other.is_number())
            return as_double() == other.as_double();
        return false;
    }
    switch (type_) {
      case Type::kNull: return true;
      case Type::kBool: return bool_ == other.bool_;
      case Type::kInt: return int_ == other.int_;
      case Type::kDouble: return dbl_ == other.dbl_;
      case Type::kString: return str_ == other.str_;
      case Type::kArray: return arr_ == other.arr_;
      case Type::kObject: return obj_ == other.obj_;
    }
    return false;
}

} // namespace mystique
