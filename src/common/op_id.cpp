#include "common/op_id.h"

#include <stdexcept>

namespace mystique {

OpInterner&
OpInterner::instance()
{
    static OpInterner interner;
    return interner;
}

OpId
OpInterner::intern(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ids_.find(name);
    if (it != ids_.end())
        return it->second;
    const OpId id = static_cast<OpId>(names_.size());
    names_.push_back(name);
    ids_.emplace(name, id);
    return id;
}

OpId
OpInterner::lookup(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ids_.find(name);
    return it == ids_.end() ? kInvalidOpId : it->second;
}

const std::string&
OpInterner::name(OpId id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (id < 0 || static_cast<std::size_t>(id) >= names_.size())
        throw std::out_of_range("OpInterner: bad OpId " + std::to_string(id));
    return names_[static_cast<std::size_t>(id)];
}

std::size_t
OpInterner::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return names_.size();
}

} // namespace mystique
