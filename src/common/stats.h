#pragma once

/// @file
/// Small numerical-summary helpers used by the similarity module, the
/// benchmark harnesses, and tests.

#include <cstddef>
#include <vector>

namespace mystique {

/// Streaming summary of a sample: count / mean / variance / extrema.
class RunningStat {
  public:
    /// Adds one observation.
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ > 0 ? mean_ : 0.0; }
    /// Unbiased sample variance (0 when fewer than two observations).
    double variance() const;
    double stddev() const;
    double min() const { return n_ > 0 ? min_ : 0.0; }
    double max() const { return n_ > 0 ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// Percentile of a sample (linear interpolation); @p q in [0,100].
/// Returns 0 for an empty sample.
double percentile(std::vector<double> values, double q);

/// |a - b| / |b| with guard for b == 0 (returns |a| then).
double relative_error(double a, double b);

/// Geometric mean of strictly positive values (returns 0 for empty input).
double geomean(const std::vector<double>& values);

} // namespace mystique
