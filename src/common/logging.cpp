#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/error.h"

namespace mystique::log {

namespace {

Level
initial_level()
{
    if (const char* env = std::getenv("MYSTIQUE_LOG_LEVEL")) {
        try {
            return parse_level(env);
        } catch (const MystiqueError&) {
            // fall through to default
        }
    }
    return Level::kWarn;
}

std::atomic<Level>&
level_storage()
{
    static std::atomic<Level> lvl{initial_level()};
    return lvl;
}

const char*
level_name(Level lvl)
{
    switch (lvl) {
      case Level::kTrace: return "TRACE";
      case Level::kDebug: return "DEBUG";
      case Level::kInfo: return "INFO";
      case Level::kWarn: return "WARN";
      case Level::kError: return "ERROR";
      case Level::kOff: return "OFF";
    }
    return "?";
}

} // namespace

void
set_level(Level lvl)
{
    level_storage().store(lvl, std::memory_order_relaxed);
}

Level
level()
{
    return level_storage().load(std::memory_order_relaxed);
}

bool
enabled(Level lvl)
{
    return lvl >= level() && lvl != Level::kOff;
}

void
write(Level lvl, const std::string& msg)
{
    static std::mutex mu;
    std::lock_guard<std::mutex> lock(mu);
    std::fprintf(stderr, "[mystique %s] %s\n", level_name(lvl), msg.c_str());
}

Level
parse_level(const std::string& name)
{
    if (name == "trace") return Level::kTrace;
    if (name == "debug") return Level::kDebug;
    if (name == "info") return Level::kInfo;
    if (name == "warn") return Level::kWarn;
    if (name == "error") return Level::kError;
    if (name == "off") return Level::kOff;
    MYST_THROW(ConfigError, "unknown log level '" << name << "'");
}

} // namespace mystique::log
