#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mystique {

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
percentile(std::vector<double> values, double q)
{
    if (values.empty())
        return 0.0;
    MYST_CHECK_MSG(q >= 0.0 && q <= 100.0, "percentile out of range: " << q);
    std::sort(values.begin(), values.end());
    const double rank = q / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - std::floor(rank);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double
relative_error(double a, double b)
{
    if (b == 0.0)
        return std::fabs(a);
    return std::fabs(a - b) / std::fabs(b);
}

double
geomean(const std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        MYST_CHECK_MSG(v > 0.0, "geomean requires positive values, got " << v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace mystique
