#pragma once

/// @file
/// Small fixed-size worker pool.
///
/// The pool owns N OS threads that drain a FIFO task queue; submit() returns
/// a future that delivers the task's completion (or rethrows its exception).
/// Consumers that need deterministic work placement — ReplayDriver stripes
/// database groups across pooled replay sessions — submit one long-running
/// task per worker instead of one task per work item, so the pool stays a
/// dumb, predictable executor rather than a scheduler.
///
/// Destruction drains the queue: every task already submitted runs before the
/// threads join (a submit racing destruction throws instead of being lost).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mystique {

class ThreadPool {
  public:
    /// Spawns @p threads workers (clamped to at least 1).
    /// @param fault_delay_site  optional fault-injection site name
    ///        (common/fault_injection.h) evaluated before each task runs —
    ///        arming it in kDelay mode stalls workers to widen race windows.
    ///        The background() pool registers "pool.background_delay";
    ///        replay pools pass nothing and stay deterministic.
    explicit ThreadPool(std::size_t threads, const char* fault_delay_site = nullptr);

    /// Blocks until every submitted task has run, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const { return threads_.size(); }

    /// Process-wide pool for background work that must not block its
    /// requester — plan-store disk writebacks ride here.  Lazily constructed
    /// (2 threads: enough to overlap serialization with replay, small enough
    /// to never contend with sweep workers).  Its function-local-static
    /// destructor drains the queue at process exit, so fire-and-forget tasks
    /// submitted anywhere before exit still complete.
    static ThreadPool& background();

    /// Enqueues @p fn; the returned future becomes ready when it completes
    /// and rethrows any exception the task threw.  Throws std::runtime_error
    /// if the pool is already shutting down.
    std::future<void> submit(std::function<void()> fn);

  private:
    void worker_loop();

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::packaged_task<void()>> queue_;
    bool stop_ = false;
    const char* fault_delay_site_ = nullptr;
    std::vector<std::thread> threads_;
};

} // namespace mystique
