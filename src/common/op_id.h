#pragma once

/// @file
/// Interned operator identity.
///
/// An OpId is a dense integer assigned the first time an operator *name* is
/// seen in this process.  Every layer that used to key maps and histograms on
/// op-name strings (dispatch, the autograd tape, replay-plan building,
/// supported-set checks, trace statistics) keys on OpId instead; strings
/// survive only at serialization and report boundaries.
///
/// IDs are process-local: they depend on interning order and MUST NOT be
/// persisted (trace files and fingerprints stay name-based).  The interner
/// lives in the common layer so that et/ and profiler/ code can intern
/// without depending on the framework's OpRegistry, which assigns its
/// operator definitions onto the same ID space.

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>

namespace mystique {

/// Dense interned operator identity; kInvalidOpId = "not resolved yet".
using OpId = std::int32_t;
inline constexpr OpId kInvalidOpId = -1;

/// Lazily-filled OpId cache embedded in structures that are shared through
/// const references (et::Node, jit::IrNode).  Resolution is idempotent —
/// every writer stores the same value for a given name — but concurrent
/// plain writes would still be a data race, so the slot is a relaxed atomic;
/// this costs nothing on the read path.  Copying transfers the cached value
/// (it is equally valid for the copy).
class OpIdCache {
  public:
    OpIdCache() = default;
    OpIdCache(const OpIdCache& other) : id_(other.load()) {}
    OpIdCache& operator=(const OpIdCache& other)
    {
        store(other.load());
        return *this;
    }

    OpId load() const { return id_.load(std::memory_order_relaxed); }
    void store(OpId id) const { id_.store(id, std::memory_order_relaxed); }

  private:
    mutable std::atomic<OpId> id_{kInvalidOpId};
};

/// Process-wide name ↔ OpId intern table.
///
/// intern() is insert-or-get and may be called with names that have no
/// registered operator definition (e.g. trace nodes from foreign runs);
/// lookup() never inserts.  Interning is guarded by a mutex; resolved IDs and
/// name(OpId) reads on them are immutable afterwards, so the hot paths that
/// carry pre-resolved OpIds never touch the lock.
class OpInterner {
  public:
    static OpInterner& instance();

    /// Returns the ID for @p name, assigning the next dense ID when new.
    OpId intern(const std::string& name);

    /// Returns the ID for @p name, or kInvalidOpId when never interned.
    OpId lookup(const std::string& name) const;

    /// The name behind an ID; throws std::out_of_range on a bad ID.
    const std::string& name(OpId id) const;

    /// Number of interned names (IDs are 0 .. size()-1).
    std::size_t size() const;

  private:
    OpInterner() = default;

    mutable std::mutex mu_;
    std::unordered_map<std::string, OpId> ids_;
    /// Deque, not vector: name(OpId) hands out references that must survive
    /// later interning.
    std::deque<std::string> names_;
};

} // namespace mystique
