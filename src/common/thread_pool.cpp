#include "common/thread_pool.h"

#include <algorithm>
#include <stdexcept>

#include "common/fault_injection.h"

namespace mystique {

ThreadPool::ThreadPool(std::size_t threads, const char* fault_delay_site)
    : fault_delay_site_(fault_delay_site)
{
    const std::size_t n = std::max<std::size_t>(1, threads);
    threads_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_)
        t.join();
}

ThreadPool&
ThreadPool::background()
{
    static ThreadPool pool(2, "pool.background_delay");
    return pool;
}

std::future<void>
ThreadPool::submit(std::function<void()> fn)
{
    std::packaged_task<void()> task(std::move(fn));
    std::future<void> fut = task.get_future();
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_)
            throw std::runtime_error("ThreadPool::submit on a stopped pool");
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
    return fut;
}

void
ThreadPool::worker_loop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and queue drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        if (fault_delay_site_ != nullptr)
            FaultInjection::instance().maybe_delay(fault_delay_site_);
        task(); // exceptions land in the task's future
    }
}

} // namespace mystique
