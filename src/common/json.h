#pragma once

/// @file
/// Self-contained JSON value type with parser and serializer.
///
/// Execution traces, profiler traces and replay plans are all JSON on disk
/// (matching the PyTorch ET / chrome-trace formats the paper relies on), and
/// the library is dependency-free, so we carry our own implementation.
///
/// Design notes:
///  - Integers and doubles are stored distinctly so 64-bit IDs round-trip
///    exactly (ET node and tensor IDs are integers).
///  - Object member order is preserved (insertion order), which keeps
///    serialized traces diffable.

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.h"

namespace mystique {

/// A JSON document node: null, bool, integer, double, string, array or object.
class Json {
  public:
    /// Discriminator for the stored value.
    enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

    using Array = std::vector<Json>;
    /// Insertion-ordered key/value list.
    using Object = std::vector<std::pair<std::string, Json>>;

    /// Constructs null.
    Json() = default;
    Json(std::nullptr_t) : Json() {}
    Json(bool b) : type_(Type::kBool), bool_(b) {}
    Json(int v) : type_(Type::kInt), int_(v) {}
    Json(int64_t v) : type_(Type::kInt), int_(v) {}
    Json(uint64_t v) : type_(Type::kInt), int_(static_cast<int64_t>(v)) {}
    Json(double v) : type_(Type::kDouble), dbl_(v) {}
    Json(const char* s) : type_(Type::kString), str_(s) {}
    Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
    Json(Array a) : type_(Type::kArray), arr_(std::move(a)) {}
    Json(Object o) : type_(Type::kObject), obj_(std::move(o)) {}

    /// Creates an empty array.
    static Json array() { return Json(Array{}); }
    /// Creates an empty object.
    static Json object() { return Json(Object{}); }

    Type type() const { return type_; }
    bool is_null() const { return type_ == Type::kNull; }
    bool is_bool() const { return type_ == Type::kBool; }
    bool is_int() const { return type_ == Type::kInt; }
    bool is_double() const { return type_ == Type::kDouble; }
    /// True for either numeric representation.
    bool is_number() const { return is_int() || is_double(); }
    bool is_string() const { return type_ == Type::kString; }
    bool is_array() const { return type_ == Type::kArray; }
    bool is_object() const { return type_ == Type::kObject; }

    /// Typed accessors; throw ParseError when the type does not match.
    bool as_bool() const;
    int64_t as_int() const;
    /// Numeric value as double (accepts int or double).
    double as_double() const;
    const std::string& as_string() const;
    const Array& as_array() const;
    Array& as_array();
    const Object& as_object() const;
    Object& as_object();

    /// Appends to an array (value must be an array).
    void push_back(Json v);

    /// Object member lookup; returns nullptr when absent or not an object.
    const Json* find(std::string_view key) const;
    /// Object member access; throws ParseError when the key is absent.
    const Json& at(std::string_view key) const;
    /// Inserts or overwrites an object member (value must be an object).
    void set(std::string_view key, Json v);
    /// True when this is an object containing @p key.
    bool contains(std::string_view key) const { return find(key) != nullptr; }

    /// Member getters with defaults for optional trace fields.
    int64_t get_int(std::string_view key, int64_t fallback) const;
    double get_double(std::string_view key, double fallback) const;
    std::string get_string(std::string_view key, const std::string& fallback) const;
    bool get_bool(std::string_view key, bool fallback) const;

    /// Serializes; indent < 0 emits compact one-line JSON.
    std::string dump(int indent = -1) const;

    /// Parses a complete JSON document; throws ParseError with position info.
    static Json parse(std::string_view text);

    /// Reads and parses a file; throws ParseError when unreadable/invalid.
    static Json parse_file(const std::string& path);

    /// Serializes to a file; throws MystiqueError when the file cannot be written.
    void dump_file(const std::string& path, int indent = -1) const;

    bool operator==(const Json& other) const;
    bool operator!=(const Json& other) const { return !(*this == other); }

  private:
    void dump_to(std::string& out, int indent, int depth) const;

    Type type_ = Type::kNull;
    bool bool_ = false;
    int64_t int_ = 0;
    double dbl_ = 0.0;
    std::string str_;
    Array arr_;
    Object obj_;
};

} // namespace mystique
