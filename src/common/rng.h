#pragma once

/// @file
/// Deterministic random number generation.
///
/// All stochastic behaviour in the library (tensor initialization, kernel
/// duration jitter, workload input generation) flows through Rng so runs are
/// reproducible from a single seed.  The engine is xoshiro256** seeded via
/// splitmix64, both public-domain algorithms by Blackman & Vigna.

#include <cstdint>
#include <vector>

namespace mystique {

/// Deterministic pseudo-random generator with distribution helpers.
class Rng {
  public:
    /// Seeds the stream; equal seeds produce equal sequences.
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /// Next raw 64-bit value.
    uint64_t next_u64();

    /// Uniform double in [0, 1).
    double uniform();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
    int64_t uniform_int(int64_t lo, int64_t hi);

    /// Standard normal via Box–Muller.
    double normal();

    /// Normal with the given mean and standard deviation.
    double normal(double mean, double stddev);

    /// Zipf-distributed integer in [0, n) with exponent @p s (s=0 → uniform).
    /// Used for embedding-lookup index generation, where index skew drives
    /// cache locality (the paper's §4.4 "special case").
    int64_t zipf(int64_t n, double s);

    /// Fills @p out with iid uniform values in [lo, hi).
    void fill_uniform(std::vector<float>& out, float lo, float hi);

    /// Derives an independent child stream (for per-rank / per-run use).
    Rng fork();

  private:
    uint64_t state_[4];
    bool have_cached_normal_ = false;
    double cached_normal_ = 0.0;

    // Zipf sampling uses a cached Walker alias table per (n, s), so drawing
    // millions of indices is O(1) each after an O(n) build.
    int64_t zipf_n_ = -1;
    double zipf_s_ = -1.0;
    std::vector<double> zipf_prob_;
    std::vector<int64_t> zipf_alias_;
};

} // namespace mystique
