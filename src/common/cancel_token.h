#pragma once

/// @file
/// Cooperative cancellation with an optional soft deadline.
///
/// The fleet-sweep resilience layer (core/replay_driver.h) must be able to
/// bound how long one trace group may replay without ever interrupting a
/// kernel mid-flight — the simulator's determinism depends on every issued op
/// completing.  A CancelToken is the cooperative half of that contract: the
/// driver arms a deadline (or calls cancel() outright), threads the token
/// into the Replayer, and the Replayer polls `expired()` *between* ops —
/// never inside one — throwing CancelledError at the next safe point.
///
/// Cost when disarmed: `expired()` is one relaxed atomic load plus one
/// branch, so the hook is safe in the per-op replay loop.  A token with a
/// deadline pays one steady_clock read per poll.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/error.h"

namespace mystique {

/// Thrown (by CancelToken::throw_if_expired) when a cooperative cancellation
/// point observes an expired token.  Subclasses MystiqueError so generic
/// failure isolation still catches it, while callers that care — the sweep
/// driver distinguishing `timed_out` from `failed` — can catch it first.
class CancelledError : public MystiqueError {
  public:
    explicit CancelledError(const std::string& msg) : MystiqueError("cancelled: " + msg) {}
};

class CancelToken {
  public:
    CancelToken() = default;
    CancelToken(const CancelToken&) = delete;
    CancelToken& operator=(const CancelToken&) = delete;

    /// Requests cancellation with a human-readable reason.  Thread-safe;
    /// callable from any thread, repeatedly (the first reason wins).
    void cancel(const std::string& reason)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (reason_.empty())
                reason_ = reason;
        }
        cancelled_.store(true, std::memory_order_release);
    }

    /// Arms a soft deadline @p ms milliseconds from now.  Arm before handing
    /// the token to the worker (the deadline itself is a relaxed atomic, but
    /// the reason string for deadline expiry is fixed, so re-arming mid-run
    /// only moves the cutoff).
    void set_deadline_after_ms(uint64_t ms)
    {
        const auto when = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
        deadline_ns_.store(when.time_since_epoch().count(), std::memory_order_relaxed);
        deadline_ms_ = ms;
    }

    /// True once cancel() was called or the armed deadline has passed.
    bool expired() const
    {
        if (cancelled_.load(std::memory_order_acquire))
            return true;
        const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
        if (deadline == 0)
            return false;
        return std::chrono::steady_clock::now().time_since_epoch().count() >= deadline;
    }

    /// Why the token expired: the cancel() reason, else a deadline message.
    /// Meaningful only once expired() is true.
    std::string reason() const
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (!reason_.empty())
                return reason_;
        }
        return "deadline of " + std::to_string(deadline_ms_) + " ms exceeded";
    }

    /// The cooperative cancellation point: throws CancelledError carrying
    /// @p what plus reason() when the token has expired; no-op otherwise.
    void throw_if_expired(const char* what) const
    {
        if (expired())
            MYST_THROW(CancelledError, what << ": " << reason());
    }

  private:
    std::atomic<bool> cancelled_{false};
    /// steady_clock time_since_epoch in ns; 0 = no deadline armed.
    std::atomic<int64_t> deadline_ns_{0};
    uint64_t deadline_ms_ = 0;
    mutable std::mutex mu_;
    std::string reason_;
};

} // namespace mystique
