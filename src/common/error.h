#pragma once

/// @file
/// Error types and invariant-checking macros used across the library.
///
/// Following the gem5 fatal()/panic() distinction:
///  - MystiqueError (and subclasses) are *user-facing* errors: bad traces,
///    unsupported schemas, invalid configuration.  Catchable, recoverable.
///  - MYST_CHECK failures are *internal* invariant violations (library bugs);
///    they throw InternalError carrying file:line.

#include <sstream>
#include <stdexcept>
#include <string>

namespace mystique {

/// Base class for all user-facing errors thrown by the library.
class MystiqueError : public std::runtime_error {
  public:
    explicit MystiqueError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Malformed input: JSON, ET files, schema strings, IR text.
class ParseError : public MystiqueError {
  public:
    explicit ParseError(const std::string& msg) : MystiqueError("parse error: " + msg) {}
};

/// Problems encountered while reconstructing or replaying a trace.
class ReplayError : public MystiqueError {
  public:
    explicit ReplayError(const std::string& msg) : MystiqueError("replay error: " + msg) {}
};

/// Invalid user configuration (bad platform name, rank counts, etc.).
class ConfigError : public MystiqueError {
  public:
    explicit ConfigError(const std::string& msg) : MystiqueError("config error: " + msg) {}
};

/// Internal invariant violation — a bug in the library, not in user input.
class InternalError : public std::logic_error {
  public:
    explicit InternalError(const std::string& msg) : std::logic_error(msg) {}
};

namespace detail {

[[noreturn]] inline void
check_failed(const char* cond, const char* file, int line, const std::string& msg)
{
    std::ostringstream os;
    os << "MYST_CHECK failed: (" << cond << ") at " << file << ":" << line;
    if (!msg.empty())
        os << " — " << msg;
    throw InternalError(os.str());
}

} // namespace detail

} // namespace mystique

/// Assert an internal invariant; throws InternalError on failure.
#define MYST_CHECK(cond)                                                            \
    do {                                                                            \
        if (!(cond))                                                                \
            ::mystique::detail::check_failed(#cond, __FILE__, __LINE__, "");        \
    } while (0)

/// Assert an internal invariant with a streamable message.
#define MYST_CHECK_MSG(cond, msg)                                                   \
    do {                                                                            \
        if (!(cond)) {                                                              \
            std::ostringstream myst_os_;                                            \
            myst_os_ << msg;                                                        \
            ::mystique::detail::check_failed(#cond, __FILE__, __LINE__,             \
                                             myst_os_.str());                       \
        }                                                                           \
    } while (0)

/// Throw a user-facing error of the given type with a streamable message.
#define MYST_THROW(ErrType, msg)                                                    \
    do {                                                                            \
        std::ostringstream myst_os_;                                                \
        myst_os_ << msg;                                                            \
        throw ErrType(myst_os_.str());                                              \
    } while (0)
