#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mystique {

namespace {

uint64_t
splitmix64(uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto& w : state_)
        w = splitmix64(s);
}

uint64_t
Rng::next_u64()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits → uniform in [0,1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniform_int(int64_t lo, int64_t hi)
{
    MYST_CHECK_MSG(lo <= hi, "uniform_int: lo " << lo << " > hi " << hi);
    const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    if (range == 0) // full 64-bit range
        return static_cast<int64_t>(next_u64());
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
    uint64_t v = next_u64();
    while (v >= limit)
        v = next_u64();
    return lo + static_cast<int64_t>(v % range);
}

double
Rng::normal()
{
    if (have_cached_normal_) {
        have_cached_normal_ = false;
        return cached_normal_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300)
        u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    have_cached_normal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

int64_t
Rng::zipf(int64_t n, double s)
{
    MYST_CHECK(n > 0);
    if (s <= 0.0)
        return uniform_int(0, n - 1);
    if (zipf_n_ != n || zipf_s_ != s) {
        // Build a Walker alias table (O(n) once, O(1) per sample).
        const auto un = static_cast<std::size_t>(n);
        std::vector<double> weights(un);
        double total = 0.0;
        for (std::size_t k = 0; k < un; ++k) {
            weights[k] = 1.0 / std::pow(static_cast<double>(k + 1), s);
            total += weights[k];
        }
        zipf_prob_.assign(un, 0.0);
        zipf_alias_.assign(un, 0);
        std::vector<int64_t> small, large;
        std::vector<double> scaled(un);
        for (std::size_t k = 0; k < un; ++k) {
            scaled[k] = weights[k] / total * static_cast<double>(n);
            (scaled[k] < 1.0 ? small : large).push_back(static_cast<int64_t>(k));
        }
        while (!small.empty() && !large.empty()) {
            const int64_t lo = small.back();
            small.pop_back();
            const int64_t hi = large.back();
            zipf_prob_[static_cast<std::size_t>(lo)] = scaled[static_cast<std::size_t>(lo)];
            zipf_alias_[static_cast<std::size_t>(lo)] = hi;
            scaled[static_cast<std::size_t>(hi)] -=
                1.0 - scaled[static_cast<std::size_t>(lo)];
            if (scaled[static_cast<std::size_t>(hi)] < 1.0) {
                large.pop_back();
                small.push_back(hi);
            }
        }
        for (int64_t k : large)
            zipf_prob_[static_cast<std::size_t>(k)] = 1.0;
        for (int64_t k : small)
            zipf_prob_[static_cast<std::size_t>(k)] = 1.0;
        zipf_n_ = n;
        zipf_s_ = s;
    }
    const int64_t slot = uniform_int(0, n - 1);
    return uniform() < zipf_prob_[static_cast<std::size_t>(slot)]
               ? slot
               : zipf_alias_[static_cast<std::size_t>(slot)];
}

void
Rng::fill_uniform(std::vector<float>& out, float lo, float hi)
{
    for (auto& v : out)
        v = static_cast<float>(uniform(lo, hi));
}

Rng
Rng::fork()
{
    return Rng(next_u64());
}

} // namespace mystique
