#pragma once

/// @file
/// Filesystem helpers shared by the persistence layers (plan store, codegen).
///
/// The one contract that matters here is *atomic publication*: a reader must
/// never observe a half-written file.  POSIX rename() within one filesystem
/// is atomic, so atomic_write_file() stages content in a uniquely-named temp
/// file next to the target, fsyncs it, and renames it into place —
/// concurrent writers of the same path race benignly (last rename wins, both
/// contents complete), and a crash mid-write leaves only a `.tmp.*` turd,
/// never a torn target.  Every *thrown* failure path reaps its own temp file
/// (only a process crash can leak one), and each failure-prone step carries
/// a fault-injection site (`fs.write_open`, `fs.write_short`,
/// `fs.write_fsync`, `fs.rename`, `fs.read` — see common/fault_injection.h)
/// so tests can prove both properties instead of assuming them.

#include <string>
#include <string_view>

namespace mystique {

/// Writes @p content to @p path atomically (temp file in the same directory
/// + rename).  Creates missing parent directories.  Throws MystiqueError
/// when the directory cannot be created or the write/rename fails; on
/// failure the target path is left untouched.
void atomic_write_file(const std::string& path, std::string_view content);

/// Best-effort quarantine: renames @p path to `path + ".bad"`, overwriting
/// any previous quarantine of the same file.  Returns false (without
/// throwing) when the rename fails — e.g. the file vanished concurrently.
bool quarantine_file(const std::string& path);

/// Slurps a file into a string (binary, whole-file).  Throws ParseError when
/// the file cannot be opened or read completely — the callers (JSON layer,
/// plan store) all treat an unreadable file as malformed input.
std::string read_file(const std::string& path);

} // namespace mystique
