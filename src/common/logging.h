#pragma once

/// @file
/// Minimal leveled logger.  Single global sink (stderr by default); level is
/// settable programmatically or via the MYSTIQUE_LOG_LEVEL environment
/// variable (trace|debug|info|warn|error|off).

#include <sstream>
#include <string>

namespace mystique::log {

/// Severity levels, ordered.
enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Set the global minimum level.
void set_level(Level level);

/// Current global minimum level.
Level level();

/// True when messages at @p lvl would be emitted.
bool enabled(Level lvl);

/// Emit one message (no trailing newline needed).
void write(Level lvl, const std::string& msg);

/// Parse a level name; throws ConfigError for unknown names.
Level parse_level(const std::string& name);

} // namespace mystique::log

#define MYST_LOG(lvl, msg)                                                          \
    do {                                                                            \
        if (::mystique::log::enabled(lvl)) {                                        \
            std::ostringstream myst_log_os_;                                        \
            myst_log_os_ << msg;                                                    \
            ::mystique::log::write(lvl, myst_log_os_.str());                        \
        }                                                                           \
    } while (0)

#define MYST_TRACE(msg) MYST_LOG(::mystique::log::Level::kTrace, msg)
#define MYST_DEBUG(msg) MYST_LOG(::mystique::log::Level::kDebug, msg)
#define MYST_INFO(msg) MYST_LOG(::mystique::log::Level::kInfo, msg)
#define MYST_WARN(msg) MYST_LOG(::mystique::log::Level::kWarn, msg)
#define MYST_ERROR(msg) MYST_LOG(::mystique::log::Level::kError, msg)
