#include "common/fs_util.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/error.h"

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace mystique {

namespace {

long
process_id()
{
#ifdef _WIN32
    return static_cast<long>(_getpid());
#else
    return static_cast<long>(::getpid());
#endif
}

} // namespace

void
atomic_write_file(const std::string& path, std::string_view content)
{
    namespace fs = std::filesystem;
    const fs::path target(path);

    std::error_code ec;
    if (target.has_parent_path())
        fs::create_directories(target.parent_path(), ec); // ec: may already exist

    // Unique per (process, write): two threads — or two processes — staging
    // the same target never collide on the temp name, and each rename
    // publishes a complete file.
    static std::atomic<uint64_t> counter{0};
    const fs::path tmp = target.string() + ".tmp." + std::to_string(process_id()) + "." +
                         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));

    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            MYST_THROW(MystiqueError, "atomic_write_file: cannot open '" + tmp.string() +
                                          "' for writing");
        out.write(content.data(), static_cast<std::streamsize>(content.size()));
        out.flush();
        if (!out) {
            out.close();
            fs::remove(tmp, ec);
            MYST_THROW(MystiqueError,
                       "atomic_write_file: short write to '" + tmp.string() + "'");
        }
    }

    fs::rename(tmp, target, ec);
    if (ec) {
        fs::remove(tmp, ec);
        MYST_THROW(MystiqueError, "atomic_write_file: cannot rename into '" + path + "'");
    }
}

std::string
read_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        MYST_THROW(ParseError, "cannot open file '" + path + "'");
    in.seekg(0, std::ios::end);
    const std::streampos end = in.tellg();
    if (end < 0)
        MYST_THROW(ParseError, "cannot read file '" + path + "'");
    std::string text(static_cast<std::size_t>(end), '\0');
    in.seekg(0, std::ios::beg);
    in.read(text.data(), static_cast<std::streamsize>(text.size()));
    if (in.gcount() != static_cast<std::streamsize>(text.size()))
        MYST_THROW(ParseError, "cannot read file '" + path + "'");
    return text;
}

bool
quarantine_file(const std::string& path)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::rename(path, path + ".bad", ec); // overwrites an earlier .bad on POSIX
    return !ec;
}

} // namespace mystique
