#include "common/fs_util.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/error.h"
#include "common/fault_injection.h"

#ifdef _WIN32
#include <process.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace mystique {

namespace {

long
process_id()
{
#ifdef _WIN32
    return static_cast<long>(_getpid());
#else
    return static_cast<long>(::getpid());
#endif
}

/// Removes the staged temp file on every exit path that did not publish it —
/// including exceptions thrown *between* the write and the rename (fault
/// injection, bad_alloc).  A crashed process can still leave a turd (nothing
/// runs then), but no *thrown* error may: callers retry writes in a loop, and
/// a turd per failure would accumulate into real disk pressure.
class TmpFileGuard {
  public:
    explicit TmpFileGuard(std::filesystem::path tmp) : tmp_(std::move(tmp)) {}
    ~TmpFileGuard()
    {
        if (!committed_) {
            std::error_code ec;
            std::filesystem::remove(tmp_, ec);
        }
    }
    void commit() { committed_ = true; }

  private:
    std::filesystem::path tmp_;
    bool committed_ = false;
};

/// Flushes the temp file's bytes to stable storage before the publishing
/// rename.  Without this a power loss shortly after the rename can leave the
/// *target* name pointing at zero-length or partial data on some filesystems
/// — exactly the torn file the rename was supposed to make impossible.
void
sync_file(const std::filesystem::path& path)
{
    if (FaultInjection::instance().should_fail("fs.write_fsync"))
        MYST_THROW(MystiqueError,
                   "injected fault: fsync of '" + path.string() + "' failed");
#ifndef _WIN32
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        MYST_THROW(MystiqueError, "atomic_write_file: cannot reopen '" + path.string() +
                                      "' for fsync");
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0)
        MYST_THROW(MystiqueError, "atomic_write_file: fsync of '" + path.string() +
                                      "' failed");
#endif
}

} // namespace

void
atomic_write_file(const std::string& path, std::string_view content)
{
    namespace fs = std::filesystem;
    const fs::path target(path);

    std::error_code ec;
    if (target.has_parent_path())
        fs::create_directories(target.parent_path(), ec); // ec: may already exist

    // Unique per (process, write): two threads — or two processes — staging
    // the same target never collide on the temp name, and each rename
    // publishes a complete file.
    static std::atomic<uint64_t> counter{0};
    const fs::path tmp = target.string() + ".tmp." + std::to_string(process_id()) + "." +
                         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
    TmpFileGuard guard(tmp);

    if (FaultInjection::instance().should_fail("fs.write_open"))
        MYST_THROW(MystiqueError,
                   "injected fault: cannot open '" + tmp.string() + "' for writing");
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            MYST_THROW(MystiqueError, "atomic_write_file: cannot open '" + tmp.string() +
                                          "' for writing");
        if (FaultInjection::instance().should_fail("fs.write_short")) {
            // Model a disk-full / killed-writer short write: half the bytes
            // land, then the write errors out.  The guard must reap the
            // partial temp file; the target stays untouched.
            out.write(content.data(), static_cast<std::streamsize>(content.size() / 2));
            out.flush();
            MYST_THROW(MystiqueError,
                       "injected fault: short write to '" + tmp.string() + "'");
        }
        out.write(content.data(), static_cast<std::streamsize>(content.size()));
        out.flush();
        if (!out)
            MYST_THROW(MystiqueError,
                       "atomic_write_file: short write to '" + tmp.string() + "'");
    }

    sync_file(tmp);

    if (FaultInjection::instance().should_fail("fs.rename"))
        MYST_THROW(MystiqueError,
                   "injected fault: cannot rename into '" + path + "'");
    fs::rename(tmp, target, ec);
    if (ec)
        MYST_THROW(MystiqueError, "atomic_write_file: cannot rename into '" + path + "'");
    guard.commit();
}

std::string
read_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        MYST_THROW(ParseError, "cannot open file '" + path + "'");
    if (FaultInjection::instance().should_fail("fs.read"))
        MYST_THROW(ParseError, "injected fault: cannot read file '" + path + "'");
    in.seekg(0, std::ios::end);
    const std::streampos end = in.tellg();
    if (end < 0)
        MYST_THROW(ParseError, "cannot read file '" + path + "'");
    std::string text(static_cast<std::size_t>(end), '\0');
    in.seekg(0, std::ios::beg);
    in.read(text.data(), static_cast<std::streamsize>(text.size()));
    if (in.gcount() != static_cast<std::streamsize>(text.size()))
        MYST_THROW(ParseError, "cannot read file '" + path + "'");
    return text;
}

bool
quarantine_file(const std::string& path)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::rename(path, path + ".bad", ec); // overwrites an earlier .bad on POSIX
    return !ec;
}

} // namespace mystique
