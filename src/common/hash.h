#pragma once

/// @file
/// FNV-1a accumulator shared by the stable fingerprints in this codebase
/// (trace operator-mix fingerprints, replay-config fingerprints, supported-set
/// fingerprints).  These hashes key caches and group equivalent traces; they
/// must be deterministic across processes, so they hash *names and values*,
/// never process-local OpIds or pointers.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <type_traits>

namespace mystique {

/// Incremental 64-bit FNV-1a.
class Fnv1a {
  public:
    void mix_bytes(const void* data, std::size_t len)
    {
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < len; ++i) {
            h_ ^= p[i];
            h_ *= 0x100000001b3ull;
        }
    }

    void mix(std::string_view s)
    {
        mix_bytes(s.data(), s.size());
        // Length terminator so ("ab","c") and ("a","bc") differ.
        const uint64_t n = s.size();
        mix_bytes(&n, sizeof(n));
    }

    template <typename T>
    void mix_pod(const T& v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        mix_bytes(&v, sizeof(v));
    }

    uint64_t value() const { return h_; }

  private:
    uint64_t h_ = 0xcbf29ce484222325ull; // FNV offset basis
};

} // namespace mystique
