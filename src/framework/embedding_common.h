#pragma once

/// @file
/// Shared helpers for embedding-lookup operators (ATen and FBGEMM-style).
///
/// Embedding lookups are the paper's documented value-dependent case (§4.4):
/// the index tensor's *values* determine the access pattern and therefore
/// performance.  We quantify that as a locality score derived from index
/// reuse, which feeds the kernel cost and cache models.  Index tensors are
/// materialized even in shape-only execution so this stays live.

#include <unordered_set>

#include "framework/tensor.h"

namespace mystique::fw {

/// Number of distinct rows referenced by an index tensor.  For very large
/// index sets, estimated from a strided sample (bounded cost per op call).
inline int64_t
unique_indices(const Tensor& indices)
{
    const int64_t n = indices.numel();
    if (!indices.materialized() || n == 0)
        return n;
    constexpr int64_t kMaxSample = 1 << 15;
    const int64_t stride = n > kMaxSample ? n / kMaxSample : 1;
    std::unordered_set<int64_t> uniq;
    const int64_t* data = indices.i64();
    int64_t sampled = 0;
    for (int64_t i = 0; i < n; i += stride, ++sampled)
        uniq.insert(data[i]);
    // Scale the sampled unique ratio back to the full population.
    const double ratio = static_cast<double>(uniq.size()) / static_cast<double>(sampled);
    return static_cast<int64_t>(ratio * static_cast<double>(n));
}

/// Locality score in [0.05, 0.95]: 0 ≈ every access distinct (cache-hostile),
/// 1 ≈ heavy reuse (cache-resident hot rows).
inline double
embedding_locality(const Tensor& indices)
{
    const int64_t n = indices.numel();
    if (n == 0)
        return 0.5;
    const double u = static_cast<double>(unique_indices(indices)) / static_cast<double>(n);
    const double repeat = 1.0 - u;
    const double score = 0.08 + 0.9 * repeat;
    return score < 0.05 ? 0.05 : (score > 0.95 ? 0.95 : score);
}

} // namespace mystique::fw
