#pragma once

/// @file
/// IValue: the tagged argument value passed to operators, mirroring
/// torch::jit::IValue.  Operators receive their arguments as a positional
/// IValue vector in schema order; the replayer reconstructs the same vector
/// from ET argument metadata.

#include <cstdint>
#include <string>
#include <vector>

#include "framework/tensor.h"

namespace mystique::fw {

/// A dynamically-typed operator argument.
class IValue {
  public:
    enum class Tag { kNone, kTensor, kTensorList, kInt, kDouble, kBool, kIntList, kString };

    IValue() : tag_(Tag::kNone) {}
    IValue(Tensor t) : tag_(t.defined() ? Tag::kTensor : Tag::kNone), tensor_(std::move(t)) {}
    IValue(std::vector<Tensor> ts) : tag_(Tag::kTensorList), tensor_list_(std::move(ts)) {}
    IValue(int64_t v) : tag_(Tag::kInt), int_(v) {}
    IValue(int v) : tag_(Tag::kInt), int_(v) {}
    IValue(double v) : tag_(Tag::kDouble), double_(v) {}
    IValue(bool v) : tag_(Tag::kBool), bool_(v) {}
    IValue(std::vector<int64_t> v) : tag_(Tag::kIntList), int_list_(std::move(v)) {}
    IValue(std::string v) : tag_(Tag::kString), string_(std::move(v)) {}
    IValue(const char* v) : tag_(Tag::kString), string_(v) {}

    static IValue none() { return IValue(); }

    Tag tag() const { return tag_; }
    bool is_none() const { return tag_ == Tag::kNone; }
    bool is_tensor() const { return tag_ == Tag::kTensor; }
    bool is_tensor_list() const { return tag_ == Tag::kTensorList; }
    bool is_int() const { return tag_ == Tag::kInt; }
    bool is_double() const { return tag_ == Tag::kDouble; }
    bool is_bool() const { return tag_ == Tag::kBool; }
    bool is_int_list() const { return tag_ == Tag::kIntList; }
    bool is_string() const { return tag_ == Tag::kString; }

    /// Typed accessors; throw ReplayError on tag mismatch.
    const Tensor& tensor() const;
    const std::vector<Tensor>& tensor_list() const;
    int64_t to_int() const;
    /// Numeric coercion: accepts int or double (PyTorch Scalar semantics).
    double to_double() const;
    bool to_bool() const;
    const std::vector<int64_t>& int_list() const;
    const std::string& str() const;

    /// All tensors referenced by this value (0, 1, or N).
    std::vector<Tensor> referenced_tensors() const;

  private:
    Tag tag_;
    Tensor tensor_;
    std::vector<Tensor> tensor_list_;
    int64_t int_ = 0;
    double double_ = 0.0;
    bool bool_ = false;
    std::vector<int64_t> int_list_;
    std::string string_;
};

} // namespace mystique::fw
