#pragma once

/// @file
/// Minimal module library (torch.nn analogue): parameter-owning layers, an
/// SGD optimizer, and a DistributedDataParallel wrapper with bucketed
/// gradient all-reduce overlapping the backward pass.

#include <memory>
#include <string>
#include <vector>

#include "framework/session.h"

namespace mystique::fw::nn {

/// Creates a leaf parameter: materialized per execution mode, N(0, scale)
/// initialized in numeric mode, requires_grad set.
Tensor make_parameter(Session& s, Shape shape, float init_scale = 0.05f);

/// Fully-connected layer.
class Linear {
  public:
    Linear(Session& s, int64_t in_features, int64_t out_features, bool bias = true);

    Tensor forward(Session& s, const Tensor& x) const;
    std::vector<Tensor> parameters() const;

    Tensor weight; ///< [out, in]
    Tensor bias_t; ///< [out] or undefined
};

/// 2D convolution layer.
class Conv2d {
  public:
    Conv2d(Session& s, int64_t in_ch, int64_t out_ch, int64_t kernel, int64_t stride,
           int64_t padding, bool bias = true);

    Tensor forward(Session& s, const Tensor& x) const;
    std::vector<Tensor> parameters() const;

    Tensor weight; ///< [out, in, k, k]
    Tensor bias_t;
    int64_t stride;
    int64_t padding;
};

/// Batch normalization (training mode).
class BatchNorm2d {
  public:
    BatchNorm2d(Session& s, int64_t channels);

    Tensor forward(Session& s, const Tensor& x) const;
    std::vector<Tensor> parameters() const;

    Tensor gamma;
    Tensor beta;
};

/// Sum-mode embedding bag table.
class EmbeddingBag {
  public:
    EmbeddingBag(Session& s, int64_t rows, int64_t dim);

    Tensor forward(Session& s, const Tensor& indices, const Tensor& offsets) const;
    std::vector<Tensor> parameters() const;

    Tensor weight; ///< [rows, dim]
};

/// Custom LSTM layer (fairseq::lstm_layer); the ASR workload's core block.
class LstmLayer {
  public:
    LstmLayer(Session& s, int64_t input_dim, int64_t hidden);

    Tensor forward(Session& s, const Tensor& x) const;
    std::vector<Tensor> parameters() const;

    Tensor w_ih; ///< [4H, I]
    Tensor w_hh; ///< [4H, H]
    Tensor bias; ///< [4H]
};

/// Plain SGD: param += -lr * grad, one aten::add_ per parameter, under
/// no_grad — matching the eager optimizer op stream.
class SGD {
  public:
    SGD(std::vector<Tensor> params, double lr);

    void step(Session& s);
    /// Clears .grad on all parameters (set_to_none semantics).
    void zero_grad();

  private:
    std::vector<Tensor> params_;
    double lr_;
};

/// Bucketed gradient all-reduce fired from autograd hooks, so communication
/// overlaps the remaining backward compute (standard DDP behaviour; this is
/// what makes comm time mostly *hidden* in Figure 2).
class DistributedDataParallel {
  public:
    /// @param pg_id  ET process-group id registered on the session
    /// @param bucket_bytes  gradient bucket size (default 25 MB, as PyTorch)
    DistributedDataParallel(Session& s, std::vector<Tensor> params, int64_t pg_id,
                            int64_t bucket_bytes = 25 * 1024 * 1024);

    /// Must be called at the start of every iteration.
    void reset();

    /// Blocks the host until all in-flight gradient all-reduces complete
    /// (Work::wait() before the optimizer touches the parameters).  Any comm
    /// time past the end of backward compute becomes *exposed*.
    void wait_all(Session& s);

  private:
    struct Bucket {
        std::vector<TensorImpl*> members;
        Tensor flat; ///< pre-allocated flattened buffer
        std::size_t pending = 0;
    };

    void on_grad_ready(Session& s, const Tensor& param);

    std::vector<Bucket> buckets_;
    std::vector<std::size_t> param_to_bucket_;
    std::vector<TensorImpl*> param_order_;
    int64_t pg_id_;
};

} // namespace mystique::fw::nn
