/// @file
/// Embedding-bag operators (simplified single-output schema; the real ATen op
/// returns auxiliary offset tensors we do not need).

#include "common/error.h"
#include "framework/embedding_common.h"
#include "framework/kernel_utils.h"
#include "framework/math.h"
#include "framework/op_registry.h"
#include "framework/session.h"

namespace mystique::fw {

namespace {

std::vector<IValue>
embedding_bag_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& weight = in[0].tensor();
    const Tensor& indices = in[1].tensor();
    const Tensor& offsets = in[2].tensor();
    MYST_CHECK_MSG(weight.shape().size() == 2, "embedding_bag weight must be 2D");
    const int64_t dim = weight.dim(1);
    const int64_t nnz = indices.numel();
    const int64_t bags = offsets.numel();

    Tensor out = s.alloc({bags, dim});
    if (s.numeric())
        math::embedding_bag(weight.f32(), indices.i64(), offsets.i64(), out.f32(), nnz,
                            bags, dim);

    const double loc = embedding_locality(indices);
    s.launch(embedding_kernel("embedding_bag", nnz, dim, unique_indices(indices), loc),
             dev::kComputeStream, {weight, indices, offsets}, {out});
    return {IValue(out)};
}

std::vector<Tensor>
embedding_bag_backward_route(Session& s, const AutogradContext& ctx,
                             const std::vector<Tensor>& gouts)
{
    const Tensor& weight = ctx.inputs[0].tensor();
    Tensor gw = s.call_t(MYST_OP("aten::_embedding_bag_dense_backward"),
                         {IValue(gouts[0]), ctx.inputs[1], ctx.inputs[2],
                          IValue(weight.dim(0))});
    return {gw, Tensor(), Tensor(), Tensor()};
}

std::vector<IValue>
embedding_bag_backward_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& grad_out = in[0].tensor();
    const Tensor& indices = in[1].tensor();
    const Tensor& offsets = in[2].tensor();
    const int64_t num_weights = in[3].to_int();
    const int64_t dim = grad_out.dim(1);
    const int64_t nnz = indices.numel();
    const int64_t bags = offsets.numel();

    Tensor grad_w = s.alloc({num_weights, dim});
    if (s.numeric())
        math::embedding_bag_backward(grad_out.f32(), indices.i64(), offsets.i64(),
                                     grad_w.f32(), num_weights, nnz, bags, dim);

    const double loc = embedding_locality(indices);
    s.launch(embedding_kernel("embedding_bag_bwd", nnz, dim, unique_indices(indices), loc),
             dev::kComputeStream, {grad_out, indices, offsets}, {grad_w});
    return {IValue(grad_w)};
}

} // namespace

void
register_embedding_ops(OpRegistry& reg)
{
    reg.register_op(
        {.name = "aten::embedding_bag",
         .schema = "aten::embedding_bag(Tensor weight, Tensor indices, Tensor offsets, "
                   "int mode=0) -> Tensor",
         .fn = embedding_bag_fn,
         .backward = embedding_bag_backward_route,
         .grad_name = "EmbeddingBag"});
    reg.register_op(
        {.name = "aten::_embedding_bag_dense_backward",
         .schema = "aten::_embedding_bag_dense_backward(Tensor grad_output, Tensor indices, "
                   "Tensor offsets, int num_weights) -> Tensor",
         .fn = embedding_bag_backward_fn});
}

} // namespace mystique::fw
