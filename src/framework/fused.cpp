#include "framework/fused.h"

#include <cmath>

#include "common/error.h"
#include "framework/kernel_utils.h"
#include "framework/math.h"

namespace mystique::fw {

namespace {

dev::KernelDesc
fused_kernel(const std::string& label, int64_t numel, int n_inputs, double flops_per_elem)
{
    dev::KernelDesc d = pointwise_kernel(label, numel, n_inputs, flops_per_elem,
                                         dev::OpCategory::kFused);
    d.kind = dev::KernelKind::kFusedPointwise;
    d.name = "nvfuser_" + d.name;
    return d;
}

} // namespace

Tensor
fused_mul_add_relu(Session& s, const Tensor& a, const Tensor& b, const Tensor& c)
{
    MYST_CHECK_MSG(a.numel() == b.numel() && a.numel() == c.numel(),
                   "fused_mul_add_relu requires matching shapes");
    OpDef def;
    def.name = "fused::mul_add_relu";
    def.schema = ""; // fused ops carry no schema in the ET (§4.3.4)
    def.category = dev::OpCategory::kFused;
    def.grad_name = "FusedMulAddRelu";
    def.fn = [](Session& sess, const std::vector<IValue>& in) -> std::vector<IValue> {
        const Tensor& x = in[0].tensor();
        const Tensor& y = in[1].tensor();
        const Tensor& z = in[2].tensor();
        Tensor out = sess.alloc(x.shape());
        if (sess.numeric()) {
            for (int64_t i = 0; i < x.numel(); ++i) {
                const float v = x.f32()[i] * y.f32()[i] + z.f32()[i];
                out.f32()[i] = v > 0.0f ? v : 0.0f;
            }
        }
        sess.launch(fused_kernel("mul_add_relu", x.numel(), 3, 3.0), dev::kComputeStream,
                    {x, y, z}, {out});
        return {IValue(out)};
    };
    def.backward = [](Session& sess, const AutogradContext& ctx,
                      const std::vector<Tensor>& gouts) -> std::vector<Tensor> {
        // JIT autodiff decomposes the fused forward into ATen backward ops.
        const Tensor& x = ctx.inputs[0].tensor();
        const Tensor& y = ctx.inputs[1].tensor();
        const Tensor& out = ctx.outputs[0].tensor();
        Tensor gz = sess.call_t(MYST_OP("aten::threshold_backward"),
                                {IValue(gouts[0]), IValue(out), IValue(0.0)});
        Tensor ga, gb;
        if (x.requires_grad())
            ga = sess.call_t(MYST_OP("aten::mul.Tensor"), {IValue(gz), IValue(y)});
        if (y.requires_grad())
            gb = sess.call_t(MYST_OP("aten::mul.Tensor"), {IValue(gz), IValue(x)});
        return {ga, gb, gz};
    };
    return s.call_dynamic(def, {IValue(a), IValue(b), IValue(c)})[0].tensor();
}

Tensor
fused_add_sigmoid(Session& s, const Tensor& a, const Tensor& b)
{
    MYST_CHECK_MSG(a.numel() == b.numel(), "fused_add_sigmoid requires matching shapes");
    OpDef def;
    def.name = "fused::add_sigmoid";
    def.schema = "";
    def.category = dev::OpCategory::kFused;
    def.grad_name = "FusedAddSigmoid";
    def.fn = [](Session& sess, const std::vector<IValue>& in) -> std::vector<IValue> {
        const Tensor& x = in[0].tensor();
        const Tensor& y = in[1].tensor();
        Tensor out = sess.alloc(x.shape());
        if (sess.numeric()) {
            for (int64_t i = 0; i < x.numel(); ++i)
                out.f32()[i] = 1.0f / (1.0f + std::exp(-(x.f32()[i] + y.f32()[i])));
        }
        sess.launch(fused_kernel("add_sigmoid", x.numel(), 2, 5.0), dev::kComputeStream,
                    {x, y}, {out});
        return {IValue(out)};
    };
    def.backward = [](Session& sess, const AutogradContext& ctx,
                      const std::vector<Tensor>& gouts) -> std::vector<Tensor> {
        Tensor g = sess.call_t(MYST_OP("aten::sigmoid_backward"),
                               {IValue(gouts[0]), IValue(ctx.outputs[0].tensor())});
        return {g, g};
    };
    return s.call_dynamic(def, {IValue(a), IValue(b)})[0].tensor();
}

} // namespace mystique::fw
