/// @file
/// View, movement and reduction operators.
///
/// View ops (t, transpose, reshape) launch no kernels — they are free on
/// device, as in real traces — but in numeric mode their data is eagerly
/// normalized to contiguous layout (see tensor.h).

#include <cstring>

#include "common/error.h"
#include "framework/kernel_utils.h"
#include "framework/math.h"
#include "framework/op_registry.h"
#include "framework/session.h"

namespace mystique::fw {

namespace {

/// Generic dim-swap copy for any rank.
void
transpose_copy(const float* in, float* out, const Shape& shape, int64_t d0, int64_t d1)
{
    const auto rank = static_cast<int64_t>(shape.size());
    Shape out_shape = shape;
    std::swap(out_shape[static_cast<std::size_t>(d0)], out_shape[static_cast<std::size_t>(d1)]);
    std::vector<int64_t> in_strides(static_cast<std::size_t>(rank), 1);
    for (int64_t i = rank - 2; i >= 0; --i)
        in_strides[static_cast<std::size_t>(i)] =
            in_strides[static_cast<std::size_t>(i + 1)] * shape[static_cast<std::size_t>(i + 1)];
    std::vector<int64_t> perm_strides(static_cast<std::size_t>(rank));
    for (int64_t i = 0; i < rank; ++i)
        perm_strides[static_cast<std::size_t>(i)] = in_strides[static_cast<std::size_t>(i)];
    std::swap(perm_strides[static_cast<std::size_t>(d0)],
              perm_strides[static_cast<std::size_t>(d1)]);

    const int64_t total = shape_numel(shape);
    std::vector<int64_t> idx(static_cast<std::size_t>(rank), 0);
    for (int64_t flat = 0; flat < total; ++flat) {
        int64_t src = 0;
        for (int64_t i = 0; i < rank; ++i)
            src += idx[static_cast<std::size_t>(i)] * perm_strides[static_cast<std::size_t>(i)];
        out[flat] = in[src];
        for (int64_t i = rank - 1; i >= 0; --i) {
            if (++idx[static_cast<std::size_t>(i)] < out_shape[static_cast<std::size_t>(i)])
                break;
            idx[static_cast<std::size_t>(i)] = 0;
        }
    }
}

Tensor
make_transposed(Session& s, const Tensor& a, int64_t d0, int64_t d1)
{
    Shape out_shape = a.shape();
    std::swap(out_shape[static_cast<std::size_t>(d0)], out_shape[static_cast<std::size_t>(d1)]);
    // Views share storage (same storage ID in the ET) and launch no kernel.
    Tensor out = a.view_as(a.shape());
    if (s.numeric()) {
        // Numeric simplification (see tensor.h): eagerly normalize the data
        // to contiguous layout so downstream math stays stride-free.
        Tensor copy = s.alloc(out_shape);
        transpose_copy(a.f32(), copy.f32(), a.shape(), d0, d1);
        out.impl()->storage = copy.impl()->storage;
    }
    out.impl()->shape = out_shape;
    out.set_ready_us(a.ready_us());
    return out;
}

std::vector<IValue>
t_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& a = in[0].tensor();
    MYST_CHECK_MSG(a.shape().size() == 2, "aten::t requires a 2D tensor");
    return {IValue(make_transposed(s, a, 0, 1))};
}

std::vector<IValue>
transpose_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& a = in[0].tensor();
    const int64_t d0 = in[1].to_int();
    const int64_t d1 = in[2].to_int();
    const auto rank = static_cast<int64_t>(a.shape().size());
    MYST_CHECK_MSG(d0 >= 0 && d0 < rank && d1 >= 0 && d1 < rank, "transpose dims invalid");
    return {IValue(make_transposed(s, a, d0, d1))};
}

std::vector<IValue>
reshape_fn(Session& s, const std::vector<IValue>& in)
{
    (void)s;
    const Tensor& a = in[0].tensor();
    Shape shape = in[1].int_list();
    // Support a single -1 wildcard.
    int64_t known = 1;
    int64_t wild = -1;
    for (std::size_t i = 0; i < shape.size(); ++i) {
        if (shape[i] == -1) {
            MYST_CHECK_MSG(wild < 0, "reshape: multiple -1 dims");
            wild = static_cast<int64_t>(i);
        } else {
            known *= shape[i];
        }
    }
    if (wild >= 0)
        shape[static_cast<std::size_t>(wild)] = a.numel() / known;
    return {IValue(a.view_as(std::move(shape)))};
}

std::vector<IValue>
cat_fn(Session& s, const std::vector<IValue>& in)
{
    const std::vector<Tensor>& ts = in[0].tensor_list();
    const int64_t dim = in[1].to_int();
    MYST_CHECK_MSG(!ts.empty(), "cat of zero tensors");
    const Shape& first = ts[0].shape();
    const auto rank = static_cast<int64_t>(first.size());
    MYST_CHECK_MSG(dim >= 0 && dim < rank, "cat dim out of range");

    Shape out_shape = first;
    int64_t cat_dim_total = 0;
    int64_t total_numel = 0;
    for (const auto& t : ts) {
        cat_dim_total += t.dim(static_cast<std::size_t>(dim));
        total_numel += t.numel();
    }
    out_shape[static_cast<std::size_t>(dim)] = cat_dim_total;
    Tensor out = s.alloc(out_shape);

    if (s.numeric()) {
        // outer = product of dims before `dim`; inner = product after.
        int64_t outer = 1, inner = 1;
        for (int64_t i = 0; i < dim; ++i)
            outer *= first[static_cast<std::size_t>(i)];
        for (int64_t i = dim + 1; i < rank; ++i)
            inner *= first[static_cast<std::size_t>(i)];
        int64_t dst_off = 0;
        for (const auto& t : ts) {
            const int64_t td = t.dim(static_cast<std::size_t>(dim));
            for (int64_t o = 0; o < outer; ++o) {
                std::memcpy(out.f32() + (o * cat_dim_total + dst_off) * inner,
                            t.f32() + o * td * inner,
                            static_cast<std::size_t>(td * inner) * sizeof(float));
            }
            dst_off += td;
        }
    }
    std::vector<Tensor> input_tensors = ts;
    s.launch(pointwise_kernel("cat", total_numel, static_cast<int>(ts.size())),
             dev::kComputeStream, input_tensors, {out});
    return {IValue(out)};
}

std::vector<Tensor>
cat_backward(Session& s, const AutogradContext& ctx, const std::vector<Tensor>& gouts)
{
    const std::vector<Tensor>& ts = ctx.inputs[0].tensor_list();
    const int64_t dim = ctx.inputs[1].to_int();
    const Tensor& go = gouts[0];
    // Each input's grad is a narrow of the output grad; routed to the list
    // elements through ctx.list_grads (see AutogradContext).
    std::vector<Tensor> pieces;
    int64_t start = 0;
    for (const auto& t : ts) {
        const int64_t len = t.dim(static_cast<std::size_t>(dim));
        pieces.push_back(s.call_t(MYST_OP("aten::narrow"),
                                  {IValue(go), IValue(dim), IValue(start), IValue(len)}));
        start += len;
    }
    ctx.list_grads.assign(ctx.inputs.size(), {});
    ctx.list_grads[0] = std::move(pieces);
    return {Tensor(), Tensor()};
}

std::vector<IValue>
narrow_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& a = in[0].tensor();
    const int64_t dim = in[1].to_int();
    const int64_t start = in[2].to_int();
    const int64_t length = in[3].to_int();
    const auto rank = static_cast<int64_t>(a.shape().size());
    MYST_CHECK_MSG(dim >= 0 && dim < rank, "narrow dim out of range");
    MYST_CHECK_MSG(start >= 0 && start + length <= a.dim(static_cast<std::size_t>(dim)),
                   "narrow range invalid");
    Shape out_shape = a.shape();
    out_shape[static_cast<std::size_t>(dim)] = length;
    Tensor out = s.alloc(out_shape);
    if (s.numeric()) {
        int64_t outer = 1, inner = 1;
        for (int64_t i = 0; i < dim; ++i)
            outer *= a.dim(static_cast<std::size_t>(i));
        for (int64_t i = dim + 1; i < rank; ++i)
            inner *= a.dim(static_cast<std::size_t>(i));
        const int64_t src_d = a.dim(static_cast<std::size_t>(dim));
        for (int64_t o = 0; o < outer; ++o) {
            std::memcpy(out.f32() + o * length * inner,
                        a.f32() + (o * src_d + start) * inner,
                        static_cast<std::size_t>(length * inner) * sizeof(float));
        }
    }
    s.launch(pointwise_kernel("slice", shape_numel(out_shape), 1), dev::kComputeStream,
             {a}, {out});
    return {IValue(out)};
}

std::vector<Tensor>
narrow_backward(Session& s, const AutogradContext& ctx, const std::vector<Tensor>& gouts)
{
    const Tensor& a = ctx.inputs[0].tensor();
    Tensor ga = s.call_t(MYST_OP("aten::slice_backward"),
                         {IValue(gouts[0]), IValue(std::vector<int64_t>(a.shape())),
                          ctx.inputs[1], ctx.inputs[2], ctx.inputs[3]});
    return {ga, Tensor(), Tensor(), Tensor()};
}

std::vector<IValue>
slice_backward_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& g = in[0].tensor();
    const Shape input_shape = in[1].int_list();
    const int64_t dim = in[2].to_int();
    const int64_t start = in[3].to_int();
    const int64_t length = in[4].to_int();
    Tensor out = s.alloc(input_shape);
    if (s.numeric()) {
        std::fill(out.f32(), out.f32() + out.numel(), 0.0f);
        const auto rank = static_cast<int64_t>(input_shape.size());
        int64_t outer = 1, inner = 1;
        for (int64_t i = 0; i < dim; ++i)
            outer *= input_shape[static_cast<std::size_t>(i)];
        for (int64_t i = dim + 1; i < rank; ++i)
            inner *= input_shape[static_cast<std::size_t>(i)];
        const int64_t full_d = input_shape[static_cast<std::size_t>(dim)];
        for (int64_t o = 0; o < outer; ++o)
            std::memcpy(out.f32() + (o * full_d + start) * inner,
                        g.f32() + o * length * inner,
                        static_cast<std::size_t>(length * inner) * sizeof(float));
    }
    s.launch(pointwise_kernel("slice_bwd", shape_numel(input_shape), 1),
             dev::kComputeStream, {g}, {out});
    return {IValue(out)};
}

std::vector<IValue>
sum_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& a = in[0].tensor();
    Tensor out = s.alloc({1});
    if (s.numeric())
        out.f32()[0] = static_cast<float>(math::sum(a.f32(), a.numel()));
    s.launch(reduction_kernel("sum", a.numel(), 1), dev::kComputeStream, {a}, {out});
    return {IValue(out)};
}

std::vector<Tensor>
sum_backward(Session& s, const AutogradContext& ctx, const std::vector<Tensor>& gouts)
{
    const Tensor& a = ctx.inputs[0].tensor();
    Tensor ones = s.call_t(MYST_OP("aten::ones_like"), {IValue(a)});
    Tensor ga = s.call_t(MYST_OP("aten::mul.Tensor"), {IValue(ones), IValue(gouts[0])});
    return {ga};
}

std::vector<IValue>
sum_dim_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& a = in[0].tensor();
    const auto& dims = in[1].int_list();
    const bool keepdim = in[2].to_bool();
    MYST_CHECK_MSG(dims.size() == 1, "sum.dim_IntList supports a single dim");
    const int64_t dim = dims[0];
    const auto rank = static_cast<int64_t>(a.shape().size());
    MYST_CHECK_MSG(dim >= 0 && dim < rank, "sum dim out of range");

    Shape out_shape;
    for (int64_t i = 0; i < rank; ++i) {
        if (i == dim) {
            if (keepdim)
                out_shape.push_back(1);
        } else {
            out_shape.push_back(a.dim(static_cast<std::size_t>(i)));
        }
    }
    if (out_shape.empty())
        out_shape.push_back(1);
    Tensor out = s.alloc(out_shape);
    if (s.numeric()) {
        int64_t outer = 1, inner = 1;
        const int64_t d = a.dim(static_cast<std::size_t>(dim));
        for (int64_t i = 0; i < dim; ++i)
            outer *= a.dim(static_cast<std::size_t>(i));
        for (int64_t i = dim + 1; i < rank; ++i)
            inner *= a.dim(static_cast<std::size_t>(i));
        float* op = out.f32();
        std::fill(op, op + out.numel(), 0.0f);
        for (int64_t o = 0; o < outer; ++o)
            for (int64_t j = 0; j < d; ++j)
                for (int64_t i = 0; i < inner; ++i)
                    op[o * inner + i] += a.f32()[(o * d + j) * inner + i];
    }
    s.launch(reduction_kernel("sum_dim", a.numel(), out.numel()), dev::kComputeStream, {a},
             {out});
    return {IValue(out)};
}

std::vector<IValue>
mean_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& a = in[0].tensor();
    Tensor out = s.alloc({1});
    if (s.numeric())
        out.f32()[0] =
            static_cast<float>(math::sum(a.f32(), a.numel()) / static_cast<double>(a.numel()));
    s.launch(reduction_kernel("mean", a.numel(), 1), dev::kComputeStream, {a}, {out});
    return {IValue(out)};
}

std::vector<Tensor>
mean_backward(Session& s, const AutogradContext& ctx, const std::vector<Tensor>& gouts)
{
    const Tensor& a = ctx.inputs[0].tensor();
    Tensor ones = s.call_t(MYST_OP("aten::ones_like"), {IValue(a)});
    Tensor g = s.call_t(MYST_OP("aten::mul.Tensor"), {IValue(ones), IValue(gouts[0])});
    Tensor ga = s.call_t(MYST_OP("aten::mul.Scalar"),
                         {IValue(g), IValue(1.0 / static_cast<double>(a.numel()))});
    return {ga};
}

std::vector<Tensor>
view_backward_t(Session& s, const AutogradContext&, const std::vector<Tensor>& gouts)
{
    return {s.call_t(MYST_OP("aten::t"), {IValue(gouts[0])})};
}

std::vector<Tensor>
view_backward_transpose(Session& s, const AutogradContext& ctx,
                        const std::vector<Tensor>& gouts)
{
    return {s.call_t(MYST_OP("aten::transpose.int"),
                     {IValue(gouts[0]), ctx.inputs[1], ctx.inputs[2]}),
            Tensor(), Tensor()};
}

std::vector<Tensor>
view_backward_reshape(Session& s, const AutogradContext& ctx,
                      const std::vector<Tensor>& gouts)
{
    const Shape& orig = ctx.inputs[0].tensor().shape();
    return {s.call_t(MYST_OP("aten::reshape"),
                     {IValue(gouts[0]), IValue(std::vector<int64_t>(orig))}),
            Tensor()};
}

} // namespace

void
register_shape_ops(OpRegistry& reg)
{
    reg.register_op({.name = "aten::t",
                     .schema = "aten::t(Tensor(a) self) -> Tensor(a)",
                     .fn = t_fn,
                     .backward = view_backward_t,
                     .grad_name = "T"});
    reg.register_op(
        {.name = "aten::transpose.int",
         .schema = "aten::transpose.int(Tensor(a) self, int dim0, int dim1) -> Tensor(a)",
         .fn = transpose_fn,
         .backward = view_backward_transpose,
         .grad_name = "Transpose"});
    reg.register_op({.name = "aten::reshape",
                     .schema = "aten::reshape(Tensor(a) self, int[] shape) -> Tensor(a)",
                     .fn = reshape_fn,
                     .backward = view_backward_reshape,
                     .grad_name = "Reshape"});
    reg.register_op({.name = "aten::cat",
                     .schema = "aten::cat(Tensor[] tensors, int dim=0) -> Tensor",
                     .fn = cat_fn,
                     .backward = cat_backward,
                     .grad_name = "Cat"});
    reg.register_op(
        {.name = "aten::narrow",
         .schema = "aten::narrow(Tensor self, int dim, int start, int length) -> Tensor",
         .fn = narrow_fn,
         .backward = narrow_backward,
         .grad_name = "Slice"});
    reg.register_op(
        {.name = "aten::slice_backward",
         .schema = "aten::slice_backward(Tensor grad_output, int[] input_sizes, int dim, "
                   "int start, int length) -> Tensor",
         .fn = slice_backward_fn});
    reg.register_op({.name = "aten::sum",
                     .schema = "aten::sum(Tensor self) -> Tensor",
                     .fn = sum_fn,
                     .backward = sum_backward,
                     .grad_name = "Sum"});
    reg.register_op(
        {.name = "aten::sum.dim_IntList",
         .schema =
             "aten::sum.dim_IntList(Tensor self, int[1] dim, bool keepdim=False) -> Tensor",
         .fn = sum_dim_fn});
    reg.register_op({.name = "aten::mean",
                     .schema = "aten::mean(Tensor self) -> Tensor",
                     .fn = mean_fn,
                     .backward = mean_backward,
                     .grad_name = "Mean"});
}

} // namespace mystique::fw
