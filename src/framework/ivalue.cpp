#include "framework/ivalue.h"

#include "common/error.h"

namespace mystique::fw {

const Tensor&
IValue::tensor() const
{
    if (tag_ != Tag::kTensor)
        MYST_THROW(ReplayError, "IValue: expected tensor");
    return tensor_;
}

const std::vector<Tensor>&
IValue::tensor_list() const
{
    if (tag_ != Tag::kTensorList)
        MYST_THROW(ReplayError, "IValue: expected tensor list");
    return tensor_list_;
}

int64_t
IValue::to_int() const
{
    if (tag_ == Tag::kInt)
        return int_;
    if (tag_ == Tag::kBool)
        return bool_ ? 1 : 0;
    MYST_THROW(ReplayError, "IValue: expected int");
}

double
IValue::to_double() const
{
    if (tag_ == Tag::kDouble)
        return double_;
    if (tag_ == Tag::kInt)
        return static_cast<double>(int_);
    MYST_THROW(ReplayError, "IValue: expected number");
}

bool
IValue::to_bool() const
{
    if (tag_ == Tag::kBool)
        return bool_;
    if (tag_ == Tag::kInt)
        return int_ != 0;
    MYST_THROW(ReplayError, "IValue: expected bool");
}

const std::vector<int64_t>&
IValue::int_list() const
{
    if (tag_ != Tag::kIntList)
        MYST_THROW(ReplayError, "IValue: expected int list");
    return int_list_;
}

const std::string&
IValue::str() const
{
    if (tag_ != Tag::kString)
        MYST_THROW(ReplayError, "IValue: expected string");
    return string_;
}

std::vector<Tensor>
IValue::referenced_tensors() const
{
    switch (tag_) {
      case Tag::kTensor: return {tensor_};
      case Tag::kTensorList: return tensor_list_;
      default: return {};
    }
}

} // namespace mystique::fw
