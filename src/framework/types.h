#pragma once

/// @file
/// Elementary framework types: dtypes, shapes, execution modes.

#include <cstdint>
#include <string>
#include <vector>

namespace mystique::fw {

/// Supported element types.
enum class DType { kFloat32, kInt64, kBool };

/// Bytes per element.
int64_t dtype_size(DType t);

/// Canonical name ("float32", "int64", "bool").
const char* dtype_name(DType t);

/// Inverse of dtype_name(); throws ParseError for unknown names.
DType dtype_from_name(const std::string& name);

/// Tensor shape (row-major, contiguous).
using Shape = std::vector<int64_t>;

/// Element count of a shape (1 for rank-0).
int64_t shape_numel(const Shape& s);

/// "[2, 3, 4]" rendering for diagnostics.
std::string shape_str(const Shape& s);

/// How op implementations behave.
///
/// kNumeric executes real math on CPU buffers (used by correctness tests and
/// small-scale runs).  kShapeOnly skips float math but still materializes
/// small integer tensors (embedding indices), because index *values* drive
/// the locality model — the paper's documented value-dependent case (§4.4).
/// Virtual timing is identical in both modes by construction.
enum class ExecMode { kNumeric, kShapeOnly };

} // namespace mystique::fw
