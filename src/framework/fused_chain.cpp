#include "framework/fused_chain.h"

#include <cmath>
#include <optional>

#include "common/error.h"
#include "framework/op_registry.h"

namespace mystique::fw {

namespace {

// Allowlist in FusedKernel order (indexable by static_cast<int>(kernel)).
// family / n_tensor_inputs / flops_per_elem mirror ops_pointwise.cpp exactly:
// the prebuilt KernelDesc must be byte-equal to what the verbatim op builds.
constexpr FusedKernelInfo kInfos[] = {
    {FusedKernel::kAdd, "aten::add.Tensor", "add", 2, 1.0, true, false, true},
    {FusedKernel::kSub, "aten::sub.Tensor", "sub", 2, 1.0, true, false, true},
    {FusedKernel::kMul, "aten::mul.Tensor", "mul", 2, 1.0, false, false, true},
    {FusedKernel::kMulScalar, "aten::mul.Scalar", "muls", 1, 1.0, false, true, false},
    {FusedKernel::kDiv, "aten::div.Tensor", "div", 2, 1.0, false, false, false},
    {FusedKernel::kRelu, "aten::relu", "relu", 1, 1.0, false, false, false},
    {FusedKernel::kSigmoid, "aten::sigmoid", "sigmoid", 1, 4.0, false, false, false},
    {FusedKernel::kTanh, "aten::tanh", "tanh", 1, 4.0, false, false, false},
    {FusedKernel::kExp, "aten::exp", "exp", 1, 4.0, false, false, false},
    {FusedKernel::kGelu, "aten::gelu", "gelu", 1, 8.0, false, false, false},
    {FusedKernel::kReluBwd, "aten::threshold_backward", "relu_bwd", 2, 1.0, false,
     false, false},
    {FusedKernel::kSigmoidBwd, "aten::sigmoid_backward", "sigmoid_bwd", 2, 1.0, false,
     false, false},
    {FusedKernel::kTanhBwd, "aten::tanh_backward", "tanh_bwd", 2, 1.0, false, false,
     false},
    {FusedKernel::kGeluBwd, "aten::gelu_backward", "gelu_bwd", 2, 1.0, false, false,
     false},
    {FusedKernel::kBatchNorm, "aten::batch_norm", "batch_norm", 3, 8.0, false, false,
     false, /*norm_head=*/true},
};

constexpr std::size_t kNumKernels = sizeof(kInfos) / sizeof(kInfos[0]);

// OpId -> allowlist entry, built once.  OpIds are dense registry indices, so
// a flat vector gives O(1) steady-state lookups with no string hashing.
const std::vector<const FusedKernelInfo*>&
op_id_table()
{
    static const std::vector<const FusedKernelInfo*> table = [] {
        ensure_ops_registered();
        std::vector<const FusedKernelInfo*> t;
        for (const auto& info : kInfos) {
            const OpId id = OpRegistry::instance().at(info.op_name).id;
            if (static_cast<std::size_t>(id) >= t.size())
                t.resize(static_cast<std::size_t>(id) + 1, nullptr);
            t[static_cast<std::size_t>(id)] = &info;
        }
        return t;
    }();
    return table;
}

// The chain being executed by the current fused_pointwise dispatch.  The op
// takes no IValue inputs (per-member tensors would defeat the point); the
// replayer stages the call here instead.  Sessions are single-threaded per
// rank, so thread-local is the same isolation Session itself relies on.
thread_local FusedChainCall* tl_call = nullptr;

inline float
apply_stage(const FusedStage& st, float acc, const float* b, int64_t i)
{
    // Mirrors math.cpp formulas literally — bit-identity depends on it.
    switch (st.kernel) {
      case FusedKernel::kAdd:
        return st.operand_numel == st.numel ? acc + st.alpha * b[i]
                                            : acc + st.alpha * b[i % st.operand_numel];
      case FusedKernel::kSub:
        return st.operand_numel == st.numel
                   ? acc - st.alpha * b[i]
                   : acc + (-st.alpha) * b[i % st.operand_numel];
      case FusedKernel::kMul:
        return st.operand_numel == st.numel ? acc * b[i] : acc * b[i % st.operand_numel];
      case FusedKernel::kMulScalar:
        return acc * st.alpha;
      case FusedKernel::kDiv:
        return acc / b[i];
      case FusedKernel::kRelu:
        return acc > 0.0f ? acc : 0.0f;
      case FusedKernel::kSigmoid:
        return 1.0f / (1.0f + std::exp(-acc));
      case FusedKernel::kTanh:
        return std::tanh(acc);
      case FusedKernel::kExp:
        return std::exp(acc);
      case FusedKernel::kGelu:
        return 0.5f * acc * (1.0f + std::erf(acc * 0.70710678f));
      case FusedKernel::kReluBwd:
        return b[i] > 0.0f ? acc : 0.0f;
      case FusedKernel::kSigmoidBwd:
        return acc * b[i] * (1.0f - b[i]);
      case FusedKernel::kTanhBwd:
        return acc * (1.0f - b[i] * b[i]);
      case FusedKernel::kGeluBwd: {
        constexpr float kInvSqrt2 = 0.70710678f;
        constexpr float kInvSqrt2Pi = 0.39894228f;
        const float x = b[i];
        const float cdf = 0.5f * (1.0f + std::erf(x * kInvSqrt2));
        const float pdf = kInvSqrt2Pi * std::exp(-0.5f * x * x);
        return acc * (cdf + x * pdf);
      }
      case FusedKernel::kBatchNorm:
        break; // head-only; handled inline in run_numeric
    }
    return acc;
}

void
run_numeric(FusedChainCall& call)
{
    // One pass over the data: acc lives in a register across the whole
    // chain; the verbatim path writes/reads an arena tensor per link.
    thread_local std::vector<const float*> operand_ptrs;
    operand_ptrs.clear();
    std::size_t oi = 0;
    for (std::size_t k = 0; k < call.n_stages; ++k) {
        operand_ptrs.push_back(call.stages[k].n_operands > 0
                                   ? call.operands[oi].f32()
                                   : nullptr);
        oi += static_cast<std::size_t>(call.stages[k].n_operands);
    }
    const float* in = call.input.f32();
    float* out = call.out.f32();
    const int64_t numel = call.stages[0].numel;

    // batch_norm head: replicate math::batch_norm bit-for-bit — per-channel
    // double-accumulated batch stats over the *input* tensor (same summation
    // order), then the same float affine expression per element.
    const bool bn_head = call.stages[0].kernel == FusedKernel::kBatchNorm;
    thread_local std::vector<float> bn_mean, bn_inv;
    const float* bn_gamma = nullptr;
    const float* bn_beta = nullptr;
    int64_t bn_spatial = 0, bn_channels = 0;
    if (bn_head) {
        const FusedStage& st = call.stages[0];
        bn_channels = st.channels;
        bn_spatial = st.spatial;
        bn_gamma = call.operands[0].f32();
        bn_beta = call.operands[1].f32();
        const int64_t batch = numel / (bn_channels * bn_spatial);
        const int64_t count = batch * bn_spatial;
        bn_mean.resize(static_cast<std::size_t>(bn_channels));
        bn_inv.resize(static_cast<std::size_t>(bn_channels));
        for (int64_t ci = 0; ci < bn_channels; ++ci) {
            double mean = 0.0;
            for (int64_t ni = 0; ni < batch; ++ni)
                for (int64_t sp = 0; sp < bn_spatial; ++sp)
                    mean += static_cast<double>(
                        in[(ni * bn_channels + ci) * bn_spatial + sp]);
            mean /= static_cast<double>(count);
            double var = 0.0;
            for (int64_t ni = 0; ni < batch; ++ni)
                for (int64_t sp = 0; sp < bn_spatial; ++sp) {
                    const double d =
                        static_cast<double>(
                            in[(ni * bn_channels + ci) * bn_spatial + sp]) -
                        mean;
                    var += d * d;
                }
            var /= static_cast<double>(count);
            bn_mean[static_cast<std::size_t>(ci)] = static_cast<float>(mean);
            bn_inv[static_cast<std::size_t>(ci)] =
                1.0f / std::sqrt(static_cast<float>(var) + st.alpha);
        }
    }

    for (int64_t i = 0; i < numel; ++i) {
        float acc;
        std::size_t k = 0;
        if (bn_head) {
            const auto ci = static_cast<std::size_t>((i / bn_spatial) % bn_channels);
            acc = (in[i] - bn_mean[ci]) * bn_inv[ci] * bn_gamma[ci] + bn_beta[ci];
            k = 1;
        } else {
            acc = in[i];
        }
        for (; k < call.n_stages; ++k) {
            const FusedStage& st = call.stages[k];
            if (st.identity)
                continue;
            acc = apply_stage(st, acc, operand_ptrs[k], i);
        }
        out[i] = acc;
    }
}

std::vector<IValue>
fused_chain_exec(Session& s, const std::vector<IValue>&)
{
    FusedChainCall* call = tl_call;
    MYST_CHECK_MSG(call != nullptr,
                   "mystique::fused_pointwise is replayer-internal: stage a "
                   "FusedChainCall via run_fused_chain()");

    if (!call->dead) {
        call->out = s.alloc(call->out_shape);
        if (s.numeric())
            run_numeric(*call);
    }

    // Replicate the verbatim timeline: per member, the same host dispatch
    // charge (member 0's is paid by this op's own dispatch) and the same
    // device launch — identical KernelDesc, launch order and jitter draws.
    // start_at chains each launch behind its predecessor exactly like the
    // intermediate tensors' ready timestamps did.
    const double per_op_dispatch =
        s.options().platform.dispatch_us * s.options().dispatch.op_cost_scale;
    std::optional<double> start_at;
    std::size_t oi = 0;
    thread_local std::vector<Tensor> ins;
    static const std::vector<Tensor> kNoOutputs;
    for (std::size_t k = 0; k < call->n_stages; ++k) {
        const FusedStage& st = call->stages[k];
        if (k > 0)
            s.cpu_advance(per_op_dispatch);
        // Async executor: each member's jitter draw is a function of its own
        // node identity, matching what the unfused op would draw there.
        if (s.node_reseed_mode())
            s.reseed_for_node(st.node_id);
        ins.clear();
        if (k == 0)
            ins.push_back(call->input);
        for (int t = 0; t < st.n_operands; ++t)
            ins.push_back(call->operands[oi++]);
        const bool last = k + 1 == call->n_stages;
        const auto& rec = s.launch(st.desc, dev::kComputeStream, ins,
                                   last && !call->dead
                                       ? std::vector<Tensor>{call->out}
                                       : kNoOutputs,
                                   std::nullopt, start_at);
        start_at = rec.interval.end;
    }
    ins.clear();
    return {};
}

} // namespace

const FusedKernelInfo*
fused_kernel_info(OpId op)
{
    const auto& table = op_id_table();
    const auto idx = static_cast<std::size_t>(op);
    return idx < table.size() ? table[idx] : nullptr;
}

const FusedKernelInfo&
fused_kernel_info(FusedKernel k)
{
    const auto idx = static_cast<std::size_t>(k);
    MYST_CHECK(idx < kNumKernels);
    return kInfos[idx];
}

OpId
fused_chain_op_id()
{
    return MYST_OP("mystique::fused_pointwise");
}

void
register_fused_chain_op(OpRegistry& reg)
{
    // Schemaless + kFused keeps it out of SupportedSet::build (§4.3.4), so
    // registering it does not perturb supported-op fingerprints.
    reg.register_op({.name = "mystique::fused_pointwise",
                     .schema = "",
                     .category = dev::OpCategory::kFused,
                     .fn = fused_chain_exec,
                     .backward = {},
                     .grad_name = {}});
}

void
run_fused_chain(Session& s, FusedChainCall& call)
{
    MYST_CHECK_MSG(call.n_stages > 0, "fused chain without stages");
    tl_call = &call;
    s.call(fused_chain_op_id(), {});
    tl_call = nullptr;
}

} // namespace mystique::fw
