#include "framework/types.h"

#include <sstream>

#include "common/error.h"

namespace mystique::fw {

int64_t
dtype_size(DType t)
{
    switch (t) {
      case DType::kFloat32: return 4;
      case DType::kInt64: return 8;
      case DType::kBool: return 1;
    }
    return 4;
}

const char*
dtype_name(DType t)
{
    switch (t) {
      case DType::kFloat32: return "float32";
      case DType::kInt64: return "int64";
      case DType::kBool: return "bool";
    }
    return "?";
}

DType
dtype_from_name(const std::string& name)
{
    if (name == "float32")
        return DType::kFloat32;
    if (name == "int64")
        return DType::kInt64;
    if (name == "bool")
        return DType::kBool;
    MYST_THROW(ParseError, "unknown dtype '" << name << "'");
}

int64_t
shape_numel(const Shape& s)
{
    int64_t n = 1;
    for (int64_t d : s)
        n *= d;
    return n;
}

std::string
shape_str(const Shape& s)
{
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (i > 0)
            os << ", ";
        os << s[i];
    }
    os << ']';
    return os.str();
}

} // namespace mystique::fw
