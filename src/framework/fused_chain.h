#pragma once

/// @file
/// Loop-fused interpreter kernel for replayed pointwise chains.
///
/// The plan optimizer (core/plan_optimizer) rewrites runs of supported
/// elementwise ops into one FusedChainCall; this file is the execution half:
/// a single registered op ("mystique::fused_pointwise") that walks the whole
/// chain in one pass over the data, keeping every intermediate value in a
/// register — no per-link dispatch, IR interpretation, or arena round-trip.
///
/// The timing contract is strict: a fused chain must replay *bit-identical*
/// to the verbatim op-by-op execution.  The interpreter therefore re-issues
/// one device launch per original member (same KernelDesc, same order, same
/// per-launch jitter draw) and charges the same host-side dispatch cost per
/// member; only the CPU-side interpretation machinery is collapsed.

#include <cstdint>
#include <vector>

#include "common/op_id.h"
#include "device/kernel.h"
#include "framework/session.h"

namespace mystique::fw {

/// The pointwise allowlist.  Every member of a fused chain maps to exactly
/// one of these codes; the numeric loop applies them in member order.
enum class FusedKernel : int {
    kAdd = 0,      ///< aten::add.Tensor   acc + alpha * b
    kSub,          ///< aten::sub.Tensor   acc - alpha * b
    kMul,          ///< aten::mul.Tensor   acc * b
    kMulScalar,    ///< aten::mul.Scalar   acc * s
    kDiv,          ///< aten::div.Tensor   acc / b
    kRelu,         ///< aten::relu
    kSigmoid,      ///< aten::sigmoid
    kTanh,         ///< aten::tanh
    kExp,          ///< aten::exp
    kGelu,         ///< aten::gelu
    kReluBwd,      ///< aten::threshold_backward   (acc = grad, b = input)
    kSigmoidBwd,   ///< aten::sigmoid_backward     (acc = grad, b = output)
    kTanhBwd,      ///< aten::tanh_backward        (acc = grad, b = output)
    kGeluBwd,      ///< aten::gelu_backward        (acc = grad, b = input)
    kBatchNorm,    ///< aten::batch_norm — chain *head* only: batch statistics
                   ///< are precomputed from the materialized input tensor,
                   ///< then the per-element affine folds into the chain loop
};

/// Static description of one allowlisted op, used by the optimizer for
/// legality checks and KernelDesc reconstruction.
struct FusedKernelInfo {
    FusedKernel kernel;
    const char* op_name;       ///< interned at serialization boundaries only
    const char* family;        ///< pointwise_kernel() family string
    int n_tensor_inputs;       ///< 1 (unary / scalar) or 2 (binary)
    double flops_per_elem;
    bool has_alpha;            ///< Scalar alpha at schema slot 2 (add/sub)
    bool is_scalar_op;         ///< Scalar operand at slot 1 (mul.Scalar)
    bool allow_broadcast;      ///< operand numel may divide the chain numel
    bool norm_head = false;    ///< legal only as the first chain member; the
                               ///< stage reads the whole input (batch stats),
                               ///< not just the flowing element
};

/// Looks up the allowlist entry for an interned op id; nullptr when the op
/// is not fusable.  String-keyed only at first use (MYST_OP interning) —
/// steady-state lookups are a flat array index.
const FusedKernelInfo* fused_kernel_info(OpId op);

/// Allowlist entry by kernel code (always valid).
const FusedKernelInfo& fused_kernel_info(FusedKernel k);

/// One link of a fused chain, fully pre-resolved at plan-optimize time.
struct FusedStage {
    FusedKernel kernel = FusedKernel::kAdd;
    int64_t numel = 0;          ///< chain value numel (all stages agree)
    int64_t operand_numel = 0;  ///< 0 = no tensor operand; < numel = broadcast
    int n_operands = 0;         ///< tensor operands consumed from the call
                                ///< (1 for binary ops, 2 for batch_norm)
    int64_t channels = 0;       ///< batch_norm head: C of the NCHW input
    int64_t spatial = 0;        ///< batch_norm head: H*W of the NCHW input
    float alpha = 1.0f;         ///< add/sub alpha, mul.Scalar scalar, bn eps
    bool identity = false;      ///< algebraically a no-op: skip the arithmetic
    int64_t node_id = -1;       ///< original ET node (async per-node reseeding)
    dev::KernelDesc desc;       ///< prebuilt launch descriptor (verbatim-equal)
};

/// Arguments for one fused-chain execution.  The caller keeps one of these
/// alive across iterations and re-fills the tensors each time; `out` is
/// written back by run_fused_chain (undefined for dead chains).
struct FusedChainCall {
    const FusedStage* stages = nullptr;
    std::size_t n_stages = 0;
    bool dead = false;          ///< output unconsumed: no alloc, no numerics
    Shape out_shape;            ///< final output shape (ignored when dead)
    Tensor input;               ///< chain entry value (slot 0 of member 0)
    std::vector<Tensor> operands; ///< per-stage tensor operands, in stage order
    Tensor out;                 ///< result, filled by run_fused_chain
};

/// Interned id of "mystique::fused_pointwise".
OpId fused_chain_op_id();

/// Registers the fused-chain op (called from ensure_ops_registered).
void register_fused_chain_op(OpRegistry& reg);

/// Executes @p call through Session::call on fused_chain_op_id(), so
/// dispatch accounting, MYST_LOG stats and the profiler all see a real op.
void run_fused_chain(Session& s, FusedChainCall& call);

} // namespace mystique::fw
