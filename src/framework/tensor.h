#pragma once

/// @file
/// Tensor and storage.
///
/// Tensors are value-semantic handles over shared TensorImpls, like
/// at::Tensor.  Each impl carries:
///  - shape/dtype and (optionally materialized) storage,
///  - a session-assigned unique ID used for ET tensor identity (§3.1's
///    six-element tuple) and replay dependency tracking,
///  - the virtual time at which its contents become available on device,
///  - autograd state (requires_grad / grad / produced-by-tape flag).
///
/// Simplification vs. ATen: "view" ops (t, transpose, reshape) return new
/// impls *sharing the storage object* for ET identity purposes, but in
/// numeric mode their data is eagerly copied into layout-normalized form so
/// math kernels can stay stride-free.  Views launch no kernels and cost no
/// device time, matching their role in real traces.
///
/// Storage buffers come from a session's StorageArena when one is passed at
/// creation (Session::alloc always passes its own): materialize() acquires a
/// size-bucketed block and the destructor releases it back, so repeated
/// replay iterations recycle buffers instead of hitting the heap.  Recycled
/// blocks are NOT zeroed — only a tensor's first (heap-fresh) backing is —
/// see storage_arena.h for the full contract.

#include <cstdint>
#include <memory>
#include <vector>

#include "framework/storage_arena.h"
#include "framework/types.h"
#include "sim/timeline.h"

namespace mystique::fw {

/// Reference-counted raw buffer with global ID and lazy materialization.
class Storage {
  public:
    /// @param arena  buffer source; null → plain (zero-filled) heap buffer.
    Storage(int64_t nbytes, bool materialize_now,
            std::shared_ptr<StorageArena> arena = nullptr);
    ~Storage();

    Storage(const Storage&) = delete;
    Storage& operator=(const Storage&) = delete;

    int64_t id() const { return id_; }
    int64_t nbytes() const { return nbytes_; }
    bool materialized() const { return data_ != nullptr; }

    /// Acquires the buffer if not already backed (from the arena when one
    /// was provided).  Recycled arena blocks keep their prior contents.
    void materialize();

    /// Raw pointer; requires materialized().
    std::byte* data();
    const std::byte* data() const;

  private:
    int64_t id_;
    int64_t nbytes_;
    std::byte* data_ = nullptr;
    int64_t capacity_ = 0; ///< bucket-rounded arena capacity (= nbytes_ on heap)
    std::shared_ptr<StorageArena> arena_;
};

/// Shared tensor state.
struct TensorImpl {
    Shape shape;
    DType dtype = DType::kFloat32;
    std::shared_ptr<Storage> storage;
    std::string device = "cuda:0";

    /// Session-assigned unique tensor ID; -1 until first observed.
    int64_t uid = -1;
    /// Virtual time when device-side contents are ready.
    sim::TimeUs ready_us = 0.0;

    bool requires_grad = false;
    /// True once an autograd-taped op produced this tensor (non-leaf).
    bool produced_by_tape = false;
    std::shared_ptr<TensorImpl> grad;
};

/// Value-semantic tensor handle; an empty handle is "undefined" (None).
class Tensor {
  public:
    /// Undefined tensor.
    Tensor() = default;

    explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

    /// Creates a tensor; when @p materialize is false, storage is metadata
    /// only (ShapeOnly execution).  @p arena, when given, backs the storage
    /// with recycled buffers (Session::alloc passes the session's arena).
    static Tensor create(Shape shape, DType dtype, bool materialize,
                         std::shared_ptr<StorageArena> arena = nullptr);

    /// Creates a view impl sharing this tensor's storage with a new shape.
    Tensor view_as(Shape shape) const;

    bool defined() const { return impl_ != nullptr; }
    TensorImpl* impl() const { return impl_.get(); }
    const std::shared_ptr<TensorImpl>& impl_ptr() const { return impl_; }

    const Shape& shape() const;
    int64_t dim(std::size_t i) const;
    int64_t numel() const;
    DType dtype() const;
    int64_t itemsize() const { return dtype_size(dtype()); }
    int64_t nbytes() const { return numel() * itemsize(); }
    bool materialized() const;

    /// Typed data access; requires materialization and matching dtype.
    float* f32();
    const float* f32() const;
    int64_t* i64();
    const int64_t* i64() const;

    /// Autograd flags.
    bool requires_grad() const;
    void set_requires_grad(bool v);
    Tensor grad() const;

    sim::TimeUs ready_us() const;
    void set_ready_us(sim::TimeUs t);

    bool operator==(const Tensor& other) const { return impl_ == other.impl_; }

  private:
    std::shared_ptr<TensorImpl> impl_;
};

} // namespace mystique::fw
