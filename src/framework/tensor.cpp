#include "framework/tensor.h"

#include <atomic>

#include "common/error.h"

namespace mystique::fw {

namespace {

int64_t
next_storage_id()
{
    static std::atomic<int64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

Storage::Storage(int64_t nbytes, bool materialize_now, std::shared_ptr<StorageArena> arena)
    : id_(next_storage_id()), nbytes_(nbytes), arena_(std::move(arena))
{
    MYST_CHECK_MSG(nbytes >= 0, "negative storage size");
    if (materialize_now)
        materialize();
}

Storage::~Storage()
{
    if (data_ == nullptr)
        return;
    if (arena_ != nullptr)
        arena_->release({data_, capacity_});
    else
        delete[] data_;
}

void
Storage::materialize()
{
    if (data_ != nullptr || nbytes_ <= 0)
        return;
    if (arena_ != nullptr) {
        const StorageArena::Block block = arena_->acquire(nbytes_);
        data_ = block.data;
        capacity_ = block.capacity;
    } else {
        // Value-initialized: fresh heap buffers are zeroed, as before.
        data_ = new std::byte[static_cast<std::size_t>(nbytes_)]();
        capacity_ = nbytes_;
    }
}

std::byte*
Storage::data()
{
    MYST_CHECK_MSG(materialized() || nbytes_ == 0, "storage not materialized");
    return data_;
}

const std::byte*
Storage::data() const
{
    MYST_CHECK_MSG(materialized() || nbytes_ == 0, "storage not materialized");
    return data_;
}

Tensor
Tensor::create(Shape shape, DType dtype, bool materialize,
               std::shared_ptr<StorageArena> arena)
{
    auto impl = std::make_shared<TensorImpl>();
    const int64_t bytes = shape_numel(shape) * dtype_size(dtype);
    impl->shape = std::move(shape);
    impl->dtype = dtype;
    impl->storage = std::make_shared<Storage>(bytes, materialize, std::move(arena));
    return Tensor(std::move(impl));
}

Tensor
Tensor::view_as(Shape shape) const
{
    MYST_CHECK(defined());
    MYST_CHECK_MSG(shape_numel(shape) == numel(),
                   "view numel mismatch: " << shape_str(shape) << " vs "
                                           << shape_str(impl_->shape));
    auto impl = std::make_shared<TensorImpl>();
    impl->shape = std::move(shape);
    impl->dtype = impl_->dtype;
    impl->storage = impl_->storage; // shared: same storage id in the ET
    impl->device = impl_->device;
    impl->ready_us = impl_->ready_us;
    impl->requires_grad = impl_->requires_grad;
    impl->produced_by_tape = impl_->produced_by_tape;
    return Tensor(std::move(impl));
}

const Shape&
Tensor::shape() const
{
    MYST_CHECK(defined());
    return impl_->shape;
}

int64_t
Tensor::dim(std::size_t i) const
{
    MYST_CHECK(defined());
    MYST_CHECK_MSG(i < impl_->shape.size(), "dim index " << i << " out of range");
    return impl_->shape[i];
}

int64_t
Tensor::numel() const
{
    MYST_CHECK(defined());
    return shape_numel(impl_->shape);
}

DType
Tensor::dtype() const
{
    MYST_CHECK(defined());
    return impl_->dtype;
}

bool
Tensor::materialized() const
{
    MYST_CHECK(defined());
    return impl_->storage != nullptr && impl_->storage->materialized();
}

float*
Tensor::f32()
{
    MYST_CHECK(defined());
    MYST_CHECK_MSG(impl_->dtype == DType::kFloat32, "f32() on non-float tensor");
    return reinterpret_cast<float*>(impl_->storage->data());
}

const float*
Tensor::f32() const
{
    MYST_CHECK(defined());
    MYST_CHECK_MSG(impl_->dtype == DType::kFloat32, "f32() on non-float tensor");
    return reinterpret_cast<const float*>(impl_->storage->data());
}

int64_t*
Tensor::i64()
{
    MYST_CHECK(defined());
    MYST_CHECK_MSG(impl_->dtype == DType::kInt64, "i64() on non-int64 tensor");
    return reinterpret_cast<int64_t*>(impl_->storage->data());
}

const int64_t*
Tensor::i64() const
{
    MYST_CHECK(defined());
    MYST_CHECK_MSG(impl_->dtype == DType::kInt64, "i64() on non-int64 tensor");
    return reinterpret_cast<const int64_t*>(impl_->storage->data());
}

bool
Tensor::requires_grad() const
{
    return defined() && impl_->requires_grad;
}

void
Tensor::set_requires_grad(bool v)
{
    MYST_CHECK(defined());
    impl_->requires_grad = v;
}

Tensor
Tensor::grad() const
{
    MYST_CHECK(defined());
    return impl_->grad ? Tensor(impl_->grad) : Tensor();
}

sim::TimeUs
Tensor::ready_us() const
{
    MYST_CHECK(defined());
    return impl_->ready_us;
}

void
Tensor::set_ready_us(sim::TimeUs t)
{
    MYST_CHECK(defined());
    impl_->ready_us = t;
}

} // namespace mystique::fw
