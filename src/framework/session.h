#pragma once

/// @file
/// Session: the per-process (per-rank) execution context.
///
/// Every operator invocation flows through Session::call(), which
///  1. assigns the node ID (increasing in execution order, §3.1),
///  2. charges host-side dispatch cost to the current virtual CPU thread,
///  3. records the ET node (when an observer is active) with schema-ordered
///     argument metadata and tensor IDs,
///  4. records profiler CPU-op and kernel events (when profiling),
///  5. pushes an autograd tape entry for differentiable ops.
///
/// Leaf operator bodies launch device kernels via Session::launch(); the
/// kernel start honours the host launch time, the destination stream's FIFO
/// tail, and input-tensor readiness (cross-stream dependencies), which is
/// how compute/communication overlap and exposed time emerge.
///
/// Replay runs use the same Session machinery with a different
/// DispatchProfile and with per-op stream overrides taken from the profiler
/// trace — replay differences are emergent, not injected.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/process_group.h"
#include "common/rng.h"
#include "device/device.h"
#include "et/trace.h"
#include "framework/ivalue.h"
#include "framework/op_registry.h"
#include "framework/types.h"
#include "profiler/profiler.h"

namespace mystique::fw {

/// Host-side overhead constants for a dispatch path.
///
/// The eager path pays per-op Python/framework overhead on every node,
/// including wrapper frames; the replay path pays a slightly higher per-op
/// constant (compiled-IR callable invocation + tensor-registry lookups) but
/// no wrapper frames.  This asymmetry reproduces the paper's error pattern:
/// replay is slightly *faster* for deeply-nested few-op models and slightly
/// *slower* for many-small-op models like ResNet (Table 4).
struct DispatchProfile {
    double op_cost_scale = 1.0;
    double wrapper_cost_us = 1.6;
    double kernel_launch_cpu_us = 2.4;

    /// Eager-mode constants.
    static DispatchProfile eager();
    /// Replay-mode constants (§5: single generated program, direct calls).
    static DispatchProfile replay();
};

/// Session construction options.
struct SessionOptions {
    dev::PlatformSpec platform = dev::a100();
    ExecMode mode = ExecMode::kNumeric;
    uint64_t seed = 0x5eed;
    int rank = 0;
    int world_size = 1;
    std::optional<double> power_limit_w;
    DispatchProfile dispatch = DispatchProfile::eager();
};

/// Thread IDs used in traces (Figure 4 shows these two).
inline constexpr int kMainThread = 1;
inline constexpr int kAutogradThread = 2;

namespace autograd {
class Engine;
struct TapeNode;
} // namespace autograd

/// The per-rank execution context.  Not thread-safe; in distributed runs
/// each rank thread owns one Session.
class Session {
  public:
    explicit Session(SessionOptions opts);
    ~Session();

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    // ------------------------------------------------------------------ ops

    /// Invokes a registered operator with schema-ordered arguments.
    /// The OpId overloads are the hot path (O(1) flat-vector resolution);
    /// the string overloads resolve the name once and delegate.
    std::vector<IValue> call(OpId op, std::vector<IValue> inputs);
    std::vector<IValue> call(const std::string& op_name, std::vector<IValue> inputs);

    /// Convenience: call and return the single tensor output.
    Tensor call_t(OpId op, std::vector<IValue> inputs);
    Tensor call_t(const std::string& op_name, std::vector<IValue> inputs);

    /// Invokes a *dynamic* (non-registered) operator — used for JIT-fused
    /// kernels, which have no schema in the ET (§4.3.4).
    std::vector<IValue> call_dynamic(const OpDef& def, std::vector<IValue> inputs);

    // --------------------------------------------------------------- scopes

    /// Opens a wrapper node (record_function scope, autograd frame, module
    /// annotation).  Pair with pop_scope(); prefer the RecordFunction RAII.
    void push_scope(const std::string& name);
    void pop_scope();

    // ------------------------------------------- leaf-op execution services

    /// True when real numerics should run.
    bool numeric() const { return opts_.mode == ExecMode::kNumeric; }

    /// Allocates an output tensor (materialized in numeric mode, or when
    /// @p force_materialize is set — small index tensors are always real).
    /// Buffers come from the session's StorageArena: a recycled buffer keeps
    /// its previous contents, so kernels must fully write their outputs.
    Tensor alloc(Shape shape, DType dtype = DType::kFloat32, bool force_materialize = false);

    /// Launches a kernel for the currently-executing op.
    ///
    /// Ready time = max(current thread clock, inputs' ready times).  On GPU
    /// platforms the host thread only pays the launch cost and continues; on
    /// CPU platforms the host blocks for the kernel duration.
    /// @param fixed_duration_us  overrides the modeled duration (collectives,
    ///   injected scale-down delays)
    /// @param start_at_us  additional lower bound on the kernel start (used
    ///   by collectives whose rendezvous decided a global start time)
    /// @return the device record (interval, metrics).
    const dev::KernelRecord& launch(dev::KernelDesc desc, int stream,
                                    const std::vector<Tensor>& inputs,
                                    const std::vector<Tensor>& outputs,
                                    std::optional<double> fixed_duration_us = std::nullopt,
                                    std::optional<double> start_at_us = std::nullopt);

    /// Stream override for the current op (set by the replayer from the
    /// profiler trace, §4.5); empty = use the op's requested stream.
    void set_stream_override(std::optional<int> stream) { stream_override_ = stream; }

    // ----------------------------------------------------------------- time

    /// Current virtual time of the active CPU thread.
    sim::TimeUs cpu_now() const;
    /// Charges CPU time to the active thread.
    void cpu_advance(sim::TimeUs us);
    /// Blocks the active CPU thread until all device streams drain;
    /// returns the post-sync time.
    sim::TimeUs sync_device();

    /// Charges CPU time by jumping the active clock forward to @p t (no-op
    /// when @p t is in the past).
    void cpu_advance_to(sim::TimeUs t);

    /// Installs @p clk as the active CPU clock (nullptr restores the normal
    /// per-thread clocks).  The async executor gives every stream lane its
    /// own virtual clock and installs it around each unit's execution, so
    /// independent streams accumulate host time independently.  While an
    /// override is installed, switch_thread() only relabels tid — the
    /// handoff semantics belong to the serial two-thread walk.
    void set_clock_override(sim::VirtualClock* clk) { clock_override_ = clk; }
    sim::VirtualClock* clock_override() const { return clock_override_; }

    /// Active thread (kMainThread or kAutogradThread).
    int tid() const { return tid_; }
    void set_tid(int tid);

    /// Switches the active thread with handoff clock semantics, as the
    /// replayer walks a trace whose ops interleave both threads: entering the
    /// autograd thread pulls its clock up to "now" (it starts when backward
    /// is invoked); returning to the main thread joins on the autograd
    /// thread's completion time (backward blocks the caller).
    void switch_thread(int tid);

    // ------------------------------------------------------------- autograd

    bool grad_enabled() const { return grad_enabled_; }
    void set_grad_enabled(bool v) { grad_enabled_ = v; }

    /// Runs reverse-mode autograd from @p loss on the autograd thread,
    /// blocking the main thread until completion (PyTorch semantics).
    void backward(const Tensor& loss);

    /// Hook fired when a leaf parameter's gradient is finalized during
    /// backward (DDP uses this for bucketed all-reduce overlap).
    using GradHook = std::function<void(Session&, const Tensor& param)>;
    void add_post_grad_hook(GradHook hook);

    /// The autograd tape (exposed for tests).
    std::size_t tape_size() const;

    // ---------------------------------------------------------------- comms

    /// Registers a process group under the given ET pg ID.
    void add_process_group(int64_t pg_id, std::shared_ptr<comm::ProcessGroup> pg);
    /// Lookup; throws ConfigError when absent.
    const std::shared_ptr<comm::ProcessGroup>& process_group(int64_t pg_id) const;
    bool has_process_group(int64_t pg_id) const;
    /// All registered groups: ET pg id → member ranks (stored in TraceMeta).
    std::map<int64_t, std::vector<int>> process_group_defs() const;
    /// Drops every registered group — called between replays when one session
    /// is reused across plans (ReplayDriver's database sweeps), so a previous
    /// trace's groups cannot leak into the next trace's pg-id space.
    void clear_process_groups();

    // ------------------------------------------------------------ observers

    void attach_et_observer(et::ExecutionTraceObserver* obs) { et_observer_ = obs; }
    void attach_profiler(prof::ProfilerSession* p) { profiler_ = p; }

    // ------------------------------------------------------------ accessors

    const SessionOptions& options() const { return opts_; }
    dev::Device& device() { return device_; }
    const dev::Device& device() const { return device_; }
    Rng& rng() { return rng_; }
    int rank() const { return opts_.rank; }

    /// Reseeds the RNG as a pure function of (session seed, rank, node id).
    /// The async executor calls this before every unit so jitter draws stop
    /// depending on global execution order — each op's randomness becomes a
    /// function of its identity, identical at every parallelism level.
    void reseed_for_node(int64_t node_id);

    /// When set, fused-chain execution reseeds per member stage the same way
    /// (fused_chain.cpp checks it); the serial path leaves it off and keeps
    /// the sequential draw order byte-for-byte.
    bool node_reseed_mode() const { return node_reseed_mode_; }
    void set_node_reseed_mode(bool v) { node_reseed_mode_ = v; }

    /// The session's caching tensor-storage allocator (see storage_arena.h).
    StorageArena& arena() { return *arena_; }
    const StorageArena& arena() const { return *arena_; }

    /// Rewinds the session to its just-constructed state — clocks at zero,
    /// RNG reseeded, device and counters cleared, process groups dropped —
    /// while KEEPING the storage arena's cached buffers.  ReplayDriver calls
    /// this between groups so every replay starts from identical state (the
    /// parallel sweep's bit-identity depends on it) yet still recycles the
    /// previous group's tensor buffers.
    void reset_for_replay();

    /// Next ET node ID (for tests and the replayer's bookkeeping).
    int64_t next_node_id() const { return next_node_id_; }

    /// Assigns a unique tensor ID on first observation (external tensors
    /// get theirs when first used as inputs, §4.4).
    int64_t tensor_uid(const Tensor& t);

  private:
    friend class autograd::Engine;

    struct ScopeFrame {
        int64_t node_id;
        std::string name;
        sim::TimeUs start_us;
        int tid;
        bool is_wrapper;
    };

    et::Argument ivalue_to_argument(const IValue& v);
    et::TensorMeta tensor_meta(const Tensor& t);
    std::vector<IValue> dispatch(const OpDef& def, std::vector<IValue> inputs);
    sim::VirtualClock& clock();
    const sim::VirtualClock& clock() const;
    void maybe_record_tape(const OpDef& def, const std::vector<IValue>& inputs,
                           const std::vector<IValue>& outputs);

    SessionOptions opts_;
    dev::Device device_;
    Rng rng_;
    std::shared_ptr<StorageArena> arena_;

    sim::VirtualClock main_clock_;
    sim::VirtualClock autograd_clock_;
    int tid_ = kMainThread;

    int64_t next_node_id_ = 0;
    int64_t next_tensor_uid_ = 0;
    std::vector<ScopeFrame> call_stack_;
    std::optional<int> stream_override_;
    sim::VirtualClock* clock_override_ = nullptr;
    bool node_reseed_mode_ = false;
    /// pg ID the currently-executing comm op should use (set by comm ExecFns
    /// from their arguments; recorded into the ET node).
    int64_t current_pg_id_ = -1;

    bool grad_enabled_ = true;
    std::unique_ptr<autograd::Engine> engine_;
    std::vector<GradHook> grad_hooks_;

    std::map<int64_t, std::shared_ptr<comm::ProcessGroup>> process_groups_;

    et::ExecutionTraceObserver* et_observer_ = nullptr;
    prof::ProfilerSession* profiler_ = nullptr;

  public:
    /// Set by comm ExecFns so the ET node records its process group.
    void set_current_pg(int64_t pg_id) { current_pg_id_ = pg_id; }
};

/// RAII wrapper scope, the record_function analogue (§7.1):
///
///   { fw::RecordFunction rf(sess, "## forward:z ##"); ... }
class RecordFunction {
  public:
    RecordFunction(Session& sess, const std::string& name) : sess_(sess)
    {
        sess_.push_scope(name);
    }
    ~RecordFunction() { sess_.pop_scope(); }
    RecordFunction(const RecordFunction&) = delete;
    RecordFunction& operator=(const RecordFunction&) = delete;

  private:
    Session& sess_;
};

/// RAII guard for disabling autograd (torch.no_grad()).
class NoGradGuard {
  public:
    explicit NoGradGuard(Session& sess) : sess_(sess), prev_(sess.grad_enabled())
    {
        sess_.set_grad_enabled(false);
    }
    ~NoGradGuard() { sess_.set_grad_enabled(prev_); }
    NoGradGuard(const NoGradGuard&) = delete;
    NoGradGuard& operator=(const NoGradGuard&) = delete;

  private:
    Session& sess_;
    bool prev_;
};

} // namespace mystique::fw
