#include "framework/nn.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "framework/functional.h"
#include "framework/math.h"

namespace mystique::fw::nn {

Tensor
make_parameter(Session& s, Shape shape, float init_scale)
{
    Tensor p = s.alloc(std::move(shape));
    if (s.numeric())
        math::randn(p.f32(), p.numel(), s.rng(), init_scale);
    p.set_requires_grad(true);
    return p;
}

Linear::Linear(Session& s, int64_t in_features, int64_t out_features, bool bias)
{
    const float scale = 1.0f / std::sqrt(static_cast<float>(in_features));
    weight = make_parameter(s, {out_features, in_features}, scale);
    if (bias)
        bias_t = make_parameter(s, {out_features}, scale);
}

Tensor
Linear::forward(Session& s, const Tensor& x) const
{
    return F::linear(s, x, weight, bias_t);
}

std::vector<Tensor>
Linear::parameters() const
{
    std::vector<Tensor> out{weight};
    if (bias_t.defined())
        out.push_back(bias_t);
    return out;
}

Conv2d::Conv2d(Session& s, int64_t in_ch, int64_t out_ch, int64_t kernel, int64_t stride_,
               int64_t padding_, bool bias)
    : stride(stride_), padding(padding_)
{
    const float scale =
        1.0f / std::sqrt(static_cast<float>(in_ch * kernel * kernel));
    weight = make_parameter(s, {out_ch, in_ch, kernel, kernel}, scale);
    if (bias)
        bias_t = make_parameter(s, {out_ch}, scale);
}

Tensor
Conv2d::forward(Session& s, const Tensor& x) const
{
    return F::conv2d(s, x, weight, bias_t, stride, padding);
}

std::vector<Tensor>
Conv2d::parameters() const
{
    std::vector<Tensor> out{weight};
    if (bias_t.defined())
        out.push_back(bias_t);
    return out;
}

BatchNorm2d::BatchNorm2d(Session& s, int64_t channels)
{
    gamma = make_parameter(s, {channels}, 0.0f);
    beta = make_parameter(s, {channels}, 0.0f);
    if (s.numeric())
        std::fill(gamma.f32(), gamma.f32() + channels, 1.0f);
}

Tensor
BatchNorm2d::forward(Session& s, const Tensor& x) const
{
    return F::batch_norm(s, x, gamma, beta);
}

std::vector<Tensor>
BatchNorm2d::parameters() const
{
    return {gamma, beta};
}

EmbeddingBag::EmbeddingBag(Session& s, int64_t rows, int64_t dim)
{
    weight = make_parameter(s, {rows, dim}, 0.02f);
}

Tensor
EmbeddingBag::forward(Session& s, const Tensor& indices, const Tensor& offsets) const
{
    return F::embedding_bag(s, weight, indices, offsets);
}

std::vector<Tensor>
EmbeddingBag::parameters() const
{
    return {weight};
}

LstmLayer::LstmLayer(Session& s, int64_t input_dim, int64_t hidden)
{
    const float scale = 1.0f / std::sqrt(static_cast<float>(hidden));
    w_ih = make_parameter(s, {4 * hidden, input_dim}, scale);
    w_hh = make_parameter(s, {4 * hidden, hidden}, scale);
    bias = make_parameter(s, {4 * hidden}, scale);
}

Tensor
LstmLayer::forward(Session& s, const Tensor& x) const
{
    return s.call_t(MYST_OP("fairseq::lstm_layer"),
                    {IValue(x), IValue(w_ih), IValue(w_hh), IValue(bias)});
}

std::vector<Tensor>
LstmLayer::parameters() const
{
    return {w_ih, w_hh, bias};
}

SGD::SGD(std::vector<Tensor> params, double lr) : params_(std::move(params)), lr_(lr) {}

void
SGD::step(Session& s)
{
    NoGradGuard guard(s);
    for (auto& p : params_) {
        Tensor g = p.grad();
        if (!g.defined())
            continue;
        s.call(MYST_OP("aten::add_.Tensor"), {IValue(p), IValue(g), IValue(-lr_)});
    }
}

void
SGD::zero_grad()
{
    for (auto& p : params_)
        p.impl()->grad = nullptr;
}

DistributedDataParallel::DistributedDataParallel(Session& s, std::vector<Tensor> params,
                                                 int64_t pg_id, int64_t bucket_bytes)
    : pg_id_(pg_id)
{
    MYST_CHECK_MSG(s.has_process_group(pg_id), "DDP requires a registered process group");
    // Gradients become ready roughly in reverse registration order during
    // backward; bucket accordingly (as torch DDP does).
    std::vector<Tensor> ordered(params.rbegin(), params.rend());
    Bucket current;
    int64_t current_bytes = 0;
    auto flush = [&](Session& sess) {
        if (current.members.empty())
            return;
        current.flat = sess.alloc({std::max<int64_t>(1, current_bytes / 4)});
        buckets_.push_back(std::move(current));
        current = Bucket{};
        current_bytes = 0;
    };
    for (auto& p : ordered) {
        current.members.push_back(p.impl());
        param_order_.push_back(p.impl());
        current_bytes += p.nbytes();
        if (current_bytes >= bucket_bytes)
            flush(s);
    }
    flush(s);
    param_to_bucket_.assign(param_order_.size(), 0);
    std::size_t bucket_idx = 0, within = 0;
    for (std::size_t i = 0; i < param_order_.size(); ++i) {
        param_to_bucket_[i] = bucket_idx;
        if (++within == buckets_[bucket_idx].members.size()) {
            ++bucket_idx;
            within = 0;
        }
    }
    reset();

    s.add_post_grad_hook([this](Session& sess, const Tensor& param) {
        on_grad_ready(sess, param);
    });
}

void
DistributedDataParallel::reset()
{
    for (auto& b : buckets_)
        b.pending = b.members.size();
}

void
DistributedDataParallel::wait_all(Session& s)
{
    const double tail = s.device().stream_tail(dev::kCommStream);
    if (tail > s.cpu_now())
        s.cpu_advance(tail - s.cpu_now());
}

void
DistributedDataParallel::on_grad_ready(Session& s, const Tensor& param)
{
    for (std::size_t i = 0; i < param_order_.size(); ++i) {
        if (param_order_[i] != param.impl())
            continue;
        Bucket& bucket = buckets_[param_to_bucket_[i]];
        MYST_CHECK_MSG(bucket.pending > 0, "DDP bucket fired twice; missing reset()?");
        if (--bucket.pending == 0) {
            // All grads in the bucket are final: all-reduce the flat buffer
            // from the autograd thread (overlaps remaining backward).
            NoGradGuard guard(s);
            s.call(MYST_OP("c10d::all_reduce"), {IValue(bucket.flat), IValue(pg_id_)});
        }
        return;
    }
    // Parameter not managed by this DDP instance (e.g. model-parallel
    // embedding shards): ignore.
}

} // namespace mystique::fw::nn
