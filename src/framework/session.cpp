#include "framework/session.h"

#include <algorithm>

#include "common/error.h"
#include "common/hash.h"
#include "framework/autograd.h"

namespace mystique::fw {

DispatchProfile
DispatchProfile::eager()
{
    DispatchProfile p;
    p.op_cost_scale = 1.0;
    p.wrapper_cost_us = 1.6;
    p.kernel_launch_cpu_us = 2.4;
    return p;
}

DispatchProfile
DispatchProfile::replay()
{
    // Replay invokes compiled-IR callables with pre-instantiated tensors: no
    // wrapper frames, but each invocation pays registry/argument-binding
    // overhead on top of the framework dispatch (§5).
    DispatchProfile p;
    p.op_cost_scale = 1.35;
    p.wrapper_cost_us = 0.0;
    p.kernel_launch_cpu_us = 2.4;
    return p;
}

Session::Session(SessionOptions opts)
    : opts_(std::move(opts)),
      device_(opts_.platform, opts_.power_limit_w),
      rng_(opts_.seed + 0x9E37 * static_cast<uint64_t>(opts_.rank + 1)),
      arena_(std::make_shared<StorageArena>()),
      engine_(std::make_unique<autograd::Engine>())
{
    ensure_ops_registered();
}

Session::~Session() = default;

void
Session::reset_for_replay()
{
    main_clock_.reset();
    autograd_clock_.reset();
    tid_ = kMainThread;
    next_node_id_ = 0;
    next_tensor_uid_ = 0;
    call_stack_.clear();
    stream_override_.reset();
    clock_override_ = nullptr;
    node_reseed_mode_ = false;
    current_pg_id_ = -1;
    grad_enabled_ = true;
    process_groups_.clear();
    device_.reset();
    // Reseed exactly as construction does, so a reset session replays a plan
    // bit-identically to a freshly built one; the arena is deliberately NOT
    // touched — its cached buffers are the cross-group recycling win.
    rng_ = Rng(opts_.seed + 0x9E37 * static_cast<uint64_t>(opts_.rank + 1));
    engine_ = std::make_unique<autograd::Engine>();
    grad_hooks_.clear();
    // Observers are caller-owned stack objects; construction leaves them
    // null and so must a reset (a stale pointer here would dangle).
    et_observer_ = nullptr;
    profiler_ = nullptr;
}

sim::VirtualClock&
Session::clock()
{
    if (clock_override_ != nullptr)
        return *clock_override_;
    return tid_ == kAutogradThread ? autograd_clock_ : main_clock_;
}

const sim::VirtualClock&
Session::clock() const
{
    if (clock_override_ != nullptr)
        return *clock_override_;
    return tid_ == kAutogradThread ? autograd_clock_ : main_clock_;
}

sim::TimeUs
Session::cpu_now() const
{
    return clock().now();
}

void
Session::cpu_advance(sim::TimeUs us)
{
    clock().advance(us);
}

void
Session::cpu_advance_to(sim::TimeUs t)
{
    clock().advance_to(t);
}

void
Session::reseed_for_node(int64_t node_id)
{
    Fnv1a h;
    h.mix_pod(opts_.seed);
    h.mix_pod(static_cast<int64_t>(opts_.rank));
    h.mix_pod(node_id);
    rng_ = Rng(h.value());
}

sim::TimeUs
Session::sync_device()
{
    clock().advance_to(device_.sync_all());
    return clock().now();
}

void
Session::set_tid(int tid)
{
    MYST_CHECK_MSG(tid == kMainThread || tid == kAutogradThread, "bad tid " << tid);
    tid_ = tid;
}

void
Session::switch_thread(int tid)
{
    if (tid == tid_)
        return;
    // Under a clock override the per-thread clocks are not in use: the async
    // executor's lane clock carries the time, and tid is only a trace label.
    if (clock_override_ == nullptr) {
        if (tid == kAutogradThread)
            autograd_clock_.advance_to(main_clock_.now());
        else
            main_clock_.advance_to(autograd_clock_.now());
    }
    set_tid(tid);
}

std::vector<IValue>
Session::call(OpId op, std::vector<IValue> inputs)
{
    return dispatch(OpRegistry::instance().at(op), std::move(inputs));
}

std::vector<IValue>
Session::call(const std::string& op_name, std::vector<IValue> inputs)
{
    const OpDef& def = OpRegistry::instance().at(op_name);
    return dispatch(def, std::move(inputs));
}

Tensor
Session::call_t(OpId op, std::vector<IValue> inputs)
{
    auto outs = call(op, std::move(inputs));
    MYST_CHECK_MSG(!outs.empty() && outs[0].is_tensor(),
                   OpRegistry::instance().name(op) << " did not produce a tensor output");
    return outs[0].tensor();
}

Tensor
Session::call_t(const std::string& op_name, std::vector<IValue> inputs)
{
    auto outs = call(op_name, std::move(inputs));
    MYST_CHECK_MSG(!outs.empty() && outs[0].is_tensor(),
                   op_name << " did not produce a tensor output");
    return outs[0].tensor();
}

std::vector<IValue>
Session::call_dynamic(const OpDef& def, std::vector<IValue> inputs)
{
    return dispatch(def, std::move(inputs));
}

int64_t
Session::tensor_uid(const Tensor& t)
{
    MYST_CHECK(t.defined());
    if (t.impl()->uid < 0)
        t.impl()->uid = next_tensor_uid_++;
    return t.impl()->uid;
}

et::TensorMeta
Session::tensor_meta(const Tensor& t)
{
    et::TensorMeta m;
    m.tensor_id = tensor_uid(t);
    m.storage_id = t.impl()->storage ? t.impl()->storage->id() : -1;
    m.offset = 0;
    m.numel = t.numel();
    m.itemsize = t.itemsize();
    m.device = t.impl()->device;
    m.shape = t.shape();
    m.dtype = dtype_name(t.dtype());
    return m;
}

et::Argument
Session::ivalue_to_argument(const IValue& v)
{
    switch (v.tag()) {
      case IValue::Tag::kNone:
        return et::Argument::none();
      case IValue::Tag::kTensor:
        return et::Argument::from_tensor(tensor_meta(v.tensor()));
      case IValue::Tag::kTensorList: {
        std::vector<et::TensorMeta> metas;
        metas.reserve(v.tensor_list().size());
        for (const auto& t : v.tensor_list())
            metas.push_back(tensor_meta(t));
        return et::Argument::from_tensor_list(std::move(metas));
      }
      case IValue::Tag::kInt:
        return et::Argument::from_int(v.to_int());
      case IValue::Tag::kDouble:
        return et::Argument::from_double(v.to_double());
      case IValue::Tag::kBool:
        return et::Argument::from_bool(v.to_bool());
      case IValue::Tag::kIntList:
        return et::Argument::from_int_list(v.int_list());
      case IValue::Tag::kString:
        return et::Argument::from_string(v.str());
    }
    return et::Argument::none();
}

std::vector<IValue>
Session::dispatch(const OpDef& def, std::vector<IValue> inputs)
{
    const int64_t node_id = next_node_id_++;
    const int64_t parent = call_stack_.empty() ? -1 : call_stack_.back().node_id;
    const sim::TimeUs start = clock().now();

    // Host-side dispatch cost.
    cpu_advance(opts_.platform.dispatch_us * opts_.dispatch.op_cost_scale + def.extra_cpu_us);

    const bool observing = et_observer_ != nullptr && et_observer_->active();
    std::vector<et::Argument> in_args;
    if (observing) {
        in_args.reserve(inputs.size());
        for (const auto& v : inputs)
            in_args.push_back(ivalue_to_argument(v));
    }

    call_stack_.push_back({node_id, def.name, start, tid_, /*is_wrapper=*/false});
    const int64_t saved_pg = current_pg_id_;
    current_pg_id_ = -1;

    std::vector<IValue> outputs = def.fn(*this, inputs);

    const int64_t node_pg = current_pg_id_;
    current_pg_id_ = saved_pg;
    call_stack_.pop_back();
    const sim::TimeUs end = clock().now();

    if (observing) {
        et::Node node;
        node.id = node_id;
        node.name = def.name;
        node.op_id.store(def.id);
        node.parent = parent;
        node.kind = et::NodeKind::kOperator;
        node.category = def.category;
        node.op_schema = def.schema;
        node.tid = tid_;
        node.inputs = std::move(in_args);
        node.outputs.reserve(outputs.size());
        for (const auto& v : outputs)
            node.outputs.push_back(ivalue_to_argument(v));
        node.pg_id = node_pg;
        et_observer_->record(std::move(node));
    }

    if (profiler_ != nullptr && profiler_->active()) {
        prof::CpuOpEvent ev;
        ev.name = def.name;
        ev.tid = tid_;
        ev.ts = start;
        ev.dur = end - start;
        ev.node_id = node_id;
        ev.category = def.category;
        ev.is_wrapper = false;
        profiler_->record_cpu_op(std::move(ev));
    }

    maybe_record_tape(def, inputs, outputs);
    return outputs;
}

void
Session::maybe_record_tape(const OpDef& def, const std::vector<IValue>& inputs,
                           const std::vector<IValue>& outputs)
{
    if (!grad_enabled_ || !def.backward || def.composite)
        return;
    bool any_requires = false;
    for (const auto& v : inputs) {
        for (const auto& t : v.referenced_tensors()) {
            if (t.requires_grad()) {
                any_requires = true;
                break;
            }
        }
        if (any_requires)
            break;
    }
    if (!any_requires)
        return;

    autograd::TapeNode node;
    node.op_id = def.id;
    if (def.id == kInvalidOpId) {
        node.dynamic_backward = def.backward;
        node.dynamic_grad_name = def.grad_name.empty() ? def.name : def.grad_name;
    }
    node.ctx.inputs = inputs;
    node.ctx.outputs = outputs;
    for (const auto& v : outputs) {
        for (const auto& t : v.referenced_tensors())
            node.output_tensors.push_back(t.impl_ptr());
    }
    engine_->record(std::move(node));
}

void
Session::push_scope(const std::string& name)
{
    const int64_t node_id = next_node_id_++;
    const sim::TimeUs start = clock().now();
    cpu_advance(opts_.dispatch.wrapper_cost_us);
    call_stack_.push_back({node_id, name, start, tid_, /*is_wrapper=*/true});
}

void
Session::pop_scope()
{
    MYST_CHECK_MSG(!call_stack_.empty() && call_stack_.back().is_wrapper,
                   "pop_scope without matching push_scope");
    const ScopeFrame frame = call_stack_.back();
    call_stack_.pop_back();
    const sim::TimeUs end = clock().now();
    const int64_t parent = call_stack_.empty() ? -1 : call_stack_.back().node_id;

    if (et_observer_ != nullptr && et_observer_->active()) {
        et::Node node;
        node.id = frame.node_id;
        node.name = frame.name;
        node.parent = parent;
        node.kind = et::NodeKind::kWrapper;
        node.category = dev::OpCategory::kOther;
        node.tid = frame.tid;
        et_observer_->record(std::move(node));
    }
    if (profiler_ != nullptr && profiler_->active()) {
        prof::CpuOpEvent ev;
        ev.name = frame.name;
        ev.tid = frame.tid;
        ev.ts = frame.start_us;
        ev.dur = end - frame.start_us;
        ev.node_id = frame.node_id;
        ev.category = dev::OpCategory::kOther;
        ev.is_wrapper = true;
        profiler_->record_cpu_op(std::move(ev));
    }
}

Tensor
Session::alloc(Shape shape, DType dtype, bool force_materialize)
{
    const bool mat = numeric() || force_materialize || dtype != DType::kFloat32;
    Tensor t = Tensor::create(std::move(shape), dtype, mat, arena_);
    t.impl()->device =
        opts_.platform.is_gpu ? "cuda:" + std::to_string(opts_.rank) : "cpu";
    t.set_ready_us(clock().now());
    return t;
}

const dev::KernelRecord&
Session::launch(dev::KernelDesc desc, int stream, const std::vector<Tensor>& inputs,
                const std::vector<Tensor>& outputs, std::optional<double> fixed_duration_us,
                std::optional<double> start_at_us)
{
    MYST_CHECK_MSG(!call_stack_.empty(), "kernel launch outside of an operator");
    const int actual_stream = stream_override_.value_or(stream);

    // Host pays the launch call.
    cpu_advance(opts_.dispatch.kernel_launch_cpu_us);

    sim::TimeUs ready = clock().now();
    for (const auto& t : inputs) {
        if (t.defined())
            ready = std::max(ready, t.ready_us());
    }
    if (start_at_us.has_value())
        ready = std::max(ready, *start_at_us);

    const auto& rec =
        device_.launch(desc, actual_stream, ready, &rng_, fixed_duration_us);
    for (const auto& t : outputs) {
        if (t.defined())
            t.impl()->ready_us = rec.interval.end;
    }

    // CPU-style platforms execute synchronously: the host blocks.
    if (!opts_.platform.is_gpu)
        clock().advance_to(rec.interval.end);

    if (profiler_ != nullptr && profiler_->active()) {
        prof::KernelEvent ev;
        ev.name = rec.desc.name;
        ev.stream = actual_stream;
        ev.ts = rec.interval.start;
        ev.dur = rec.interval.duration();
        ev.correlation = call_stack_.back().node_id;
        ev.category = rec.desc.category;
        ev.kind = rec.desc.kind;
        ev.flops = rec.desc.flops;
        ev.bytes = rec.desc.bytes;
        ev.micro = rec.micro;
        profiler_->record_kernel(std::move(ev));
    }
    return rec;
}

void
Session::backward(const Tensor& loss)
{
    // The autograd thread starts when backward() is invoked and the main
    // thread blocks until it completes (PyTorch eager semantics).
    autograd_clock_.advance_to(main_clock_.now());
    engine_->run_backward(*this, loss, grad_hooks_);
    main_clock_.advance_to(autograd_clock_.now());
}

void
Session::add_post_grad_hook(GradHook hook)
{
    grad_hooks_.push_back(std::move(hook));
}

std::size_t
Session::tape_size() const
{
    return engine_->size();
}

void
Session::add_process_group(int64_t pg_id, std::shared_ptr<comm::ProcessGroup> pg)
{
    MYST_CHECK(pg != nullptr);
    process_groups_[pg_id] = std::move(pg);
}

const std::shared_ptr<comm::ProcessGroup>&
Session::process_group(int64_t pg_id) const
{
    auto it = process_groups_.find(pg_id);
    if (it == process_groups_.end())
        MYST_THROW(ConfigError, "no process group registered under id " << pg_id);
    return it->second;
}

bool
Session::has_process_group(int64_t pg_id) const
{
    return process_groups_.count(pg_id) != 0;
}

void
Session::clear_process_groups()
{
    process_groups_.clear();
}

std::map<int64_t, std::vector<int>>
Session::process_group_defs() const
{
    std::map<int64_t, std::vector<int>> defs;
    for (const auto& [id, pg] : process_groups_)
        defs[id] = pg->ranks();
    return defs;
}

} // namespace mystique::fw
