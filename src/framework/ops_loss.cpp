/// @file
/// Softmax and loss operators.

#include "common/error.h"
#include "framework/kernel_utils.h"
#include "framework/math.h"
#include "framework/op_registry.h"
#include "framework/session.h"

namespace mystique::fw {

namespace {

std::pair<int64_t, int64_t>
rows_cols(const Tensor& t)
{
    MYST_CHECK_MSG(!t.shape().empty(), "softmax on rank-0 tensor");
    const int64_t cols = t.shape().back();
    return {t.numel() / cols, cols};
}

std::vector<IValue>
softmax_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& a = in[0].tensor();
    const auto [rows, cols] = rows_cols(a);
    Tensor out = s.alloc(a.shape());
    if (s.numeric())
        math::softmax(a.f32(), out.f32(), rows, cols);
    s.launch(softmax_kernel("softmax", a.numel()), dev::kComputeStream, {a}, {out});
    return {IValue(out)};
}

std::vector<IValue>
log_softmax_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& a = in[0].tensor();
    const auto [rows, cols] = rows_cols(a);
    Tensor out = s.alloc(a.shape());
    if (s.numeric())
        math::log_softmax(a.f32(), out.f32(), rows, cols);
    s.launch(softmax_kernel("log_softmax", a.numel()), dev::kComputeStream, {a}, {out});
    return {IValue(out)};
}

std::vector<Tensor>
log_softmax_backward_route(Session& s, const AutogradContext& ctx,
                           const std::vector<Tensor>& gouts)
{
    Tensor ga = s.call_t(MYST_OP("aten::_log_softmax_backward_data"),
                         {IValue(gouts[0]), IValue(ctx.outputs[0].tensor()), ctx.inputs[1]});
    return {ga, Tensor()};
}

std::vector<IValue>
log_softmax_backward_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& g = in[0].tensor();
    const Tensor& out_fwd = in[1].tensor();
    const auto [rows, cols] = rows_cols(g);
    Tensor out = s.alloc(g.shape());
    if (s.numeric())
        math::log_softmax_backward(g.f32(), out_fwd.f32(), out.f32(), rows, cols);
    s.launch(softmax_kernel("log_softmax_bwd", g.numel()), dev::kComputeStream,
             {g, out_fwd}, {out});
    return {IValue(out)};
}

std::vector<IValue>
nll_loss_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& logp = in[0].tensor();
    const Tensor& target = in[1].tensor();
    const auto [rows, cols] = rows_cols(logp);
    MYST_CHECK_MSG(target.numel() == rows, "nll_loss target size mismatch");
    Tensor out = s.alloc({1});
    if (s.numeric())
        out.f32()[0] = static_cast<float>(math::nll_loss(logp.f32(), target.i64(), rows, cols));
    s.launch(loss_kernel("nll_loss", logp.numel()), dev::kComputeStream, {logp, target},
             {out});
    return {IValue(out)};
}

std::vector<Tensor>
nll_loss_backward_route(Session& s, const AutogradContext& ctx,
                        const std::vector<Tensor>& gouts)
{
    Tensor ga = s.call_t(MYST_OP("aten::nll_loss_backward"),
                         {IValue(gouts[0]), ctx.inputs[0], ctx.inputs[1]});
    return {ga, Tensor()};
}

std::vector<IValue>
nll_loss_backward_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& g = in[0].tensor();
    const Tensor& logp = in[1].tensor();
    const Tensor& target = in[2].tensor();
    const auto [rows, cols] = rows_cols(logp);
    Tensor out = s.alloc(logp.shape());
    if (s.numeric())
        math::nll_loss_backward(g.f32()[0], target.i64(), out.f32(), rows, cols);
    s.launch(loss_kernel("nll_loss_bwd", logp.numel()), dev::kComputeStream, {g, target},
             {out});
    return {IValue(out)};
}

std::vector<IValue>
bce_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& logits = in[0].tensor();
    const Tensor& target = in[1].tensor();
    MYST_CHECK_MSG(logits.numel() == target.numel(), "bce target size mismatch");
    Tensor out = s.alloc({1});
    if (s.numeric())
        out.f32()[0] =
            static_cast<float>(math::bce_with_logits(logits.f32(), target.f32(), logits.numel()));
    s.launch(loss_kernel("bce_with_logits", logits.numel()), dev::kComputeStream,
             {logits, target}, {out});
    return {IValue(out)};
}

std::vector<Tensor>
bce_backward_route(Session& s, const AutogradContext& ctx, const std::vector<Tensor>& gouts)
{
    Tensor ga = s.call_t(MYST_OP("aten::binary_cross_entropy_with_logits_backward"),
                         {IValue(gouts[0]), ctx.inputs[0], ctx.inputs[1]});
    return {ga, Tensor()};
}

std::vector<IValue>
bce_backward_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& g = in[0].tensor();
    const Tensor& logits = in[1].tensor();
    const Tensor& target = in[2].tensor();
    Tensor out = s.alloc(logits.shape());
    if (s.numeric())
        math::bce_with_logits_backward(g.f32()[0], logits.f32(), target.f32(), out.f32(),
                                       logits.numel());
    s.launch(loss_kernel("bce_with_logits_bwd", logits.numel()), dev::kComputeStream,
             {g, logits, target}, {out});
    return {IValue(out)};
}

} // namespace

void
register_loss_ops(OpRegistry& reg)
{
    reg.register_op({.name = "aten::softmax.int",
                     .schema = "aten::softmax.int(Tensor self, int dim) -> Tensor",
                     .fn = softmax_fn});
    reg.register_op({.name = "aten::log_softmax.int",
                     .schema = "aten::log_softmax.int(Tensor self, int dim) -> Tensor",
                     .fn = log_softmax_fn,
                     .backward = log_softmax_backward_route,
                     .grad_name = "LogSoftmax"});
    reg.register_op(
        {.name = "aten::_log_softmax_backward_data",
         .schema = "aten::_log_softmax_backward_data(Tensor grad_output, Tensor output, "
                   "int dim) -> Tensor",
         .fn = log_softmax_backward_fn});
    reg.register_op({.name = "aten::nll_loss",
                     .schema = "aten::nll_loss(Tensor self, Tensor target) -> Tensor",
                     .fn = nll_loss_fn,
                     .backward = nll_loss_backward_route,
                     .grad_name = "NllLoss"});
    reg.register_op(
        {.name = "aten::nll_loss_backward",
         .schema =
             "aten::nll_loss_backward(Tensor grad_output, Tensor self, Tensor target) -> Tensor",
         .fn = nll_loss_backward_fn});
    reg.register_op(
        {.name = "aten::binary_cross_entropy_with_logits",
         .schema =
             "aten::binary_cross_entropy_with_logits(Tensor self, Tensor target) -> Tensor",
         .fn = bce_fn,
         .backward = bce_backward_route,
         .grad_name = "BinaryCrossEntropyWithLogits"});
    reg.register_op(
        {.name = "aten::binary_cross_entropy_with_logits_backward",
         .schema = "aten::binary_cross_entropy_with_logits_backward(Tensor grad_output, "
                   "Tensor self, Tensor target) -> Tensor",
         .fn = bce_backward_fn});
}

} // namespace mystique::fw
