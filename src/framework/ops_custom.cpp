/// @file
/// Custom extension operators (§4.3.3): the out-of-source library ops the
/// paper's production workloads rely on.  The *framework* always knows how to
/// execute them (production code links the libraries); the Mystique
/// *replayer*, by contrast, can only replay the ones registered through its
/// custom-op interface — which is exactly the coverage gap in Table 3.
///
///  - fairseq::lstm_layer          — the ASR acoustic model's LSTM block
///  - fbgemm::batched_embedding_lookup — RM's fused multi-table lookup
///  - torchrec::jagged_to_padded_dense — RM's sparse-feature preprocessing

#include <cstring>

#include "common/error.h"
#include "framework/embedding_common.h"
#include "framework/kernel_utils.h"
#include "framework/math.h"
#include "framework/op_registry.h"
#include "framework/session.h"

namespace mystique::fw {

namespace {

std::vector<IValue>
lstm_layer_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& input = in[0].tensor();
    const Tensor& w_ih = in[1].tensor();
    const Tensor& w_hh = in[2].tensor();
    const Tensor& bias = in[3].tensor();
    MYST_CHECK_MSG(input.shape().size() == 3, "lstm_layer expects [T,B,I]");
    const int64_t t = input.dim(0), b = input.dim(1), i = input.dim(2);
    const int64_t h = w_hh.dim(1);
    MYST_CHECK_MSG(w_ih.dim(0) == 4 * h && w_ih.dim(1) == i, "lstm w_ih shape");

    Tensor out = s.alloc({t, b, h});
    if (s.numeric())
        math::lstm_layer(input.f32(), w_ih.f32(), w_hh.f32(), bias.f32(), out.f32(), t, b,
                         i, h);
    s.launch(lstm_kernel("fprop", t, b, i, h), dev::kComputeStream,
             {input, w_ih, w_hh, bias}, {out});
    return {IValue(out)};
}

std::vector<Tensor>
lstm_layer_backward_route(Session& s, const AutogradContext& ctx,
                          const std::vector<Tensor>& gouts)
{
    auto outs = s.call(MYST_OP("fairseq::lstm_layer_backward"),
                       {IValue(gouts[0]), ctx.inputs[0], ctx.inputs[1], ctx.inputs[2],
                        ctx.inputs[3]});
    return {outs[0].tensor(), outs[1].tensor(), outs[2].tensor(), outs[3].tensor()};
}

std::vector<IValue>
lstm_layer_backward_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& grad_out = in[0].tensor();
    const Tensor& input = in[1].tensor();
    const Tensor& w_ih = in[2].tensor();
    const Tensor& w_hh = in[3].tensor();
    const Tensor& bias = in[4].tensor();
    const int64_t t = input.dim(0), b = input.dim(1), i = input.dim(2);
    const int64_t h = w_hh.dim(1);

    Tensor grad_in = s.alloc(input.shape());
    Tensor grad_w_ih = s.alloc(w_ih.shape());
    Tensor grad_w_hh = s.alloc(w_hh.shape());
    Tensor grad_bias = s.alloc(bias.shape());
    if (s.numeric())
        math::lstm_layer_backward(grad_out.f32(), input.f32(), w_ih.f32(), w_hh.f32(),
                                  bias.f32(), grad_in.f32(), grad_w_ih.f32(),
                                  grad_w_hh.f32(), grad_bias.f32(), t, b, i, h);
    // BPTT recomputes the forward pass (memory-efficient formulation):
    // ~3x the forward arithmetic.
    s.launch(lstm_kernel("bprop", t, b, i, h, 3.0), dev::kComputeStream,
             {grad_out, input, w_ih, w_hh}, {grad_in, grad_w_ih, grad_w_hh, grad_bias});
    return {IValue(grad_in), IValue(grad_w_ih), IValue(grad_w_hh), IValue(grad_bias)};
}

std::vector<IValue>
batched_embedding_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& weights = in[0].tensor(); // [tables*rows, dim] stacked
    const Tensor& indices = in[1].tensor(); // all tables' indices, absolute rows
    const Tensor& offsets = in[2].tensor(); // [tables*batch] bag starts
    const int64_t num_tables = in[3].to_int();
    const int64_t dim = weights.dim(1);
    const int64_t bags = offsets.numel();
    MYST_CHECK_MSG(bags % num_tables == 0, "batched embedding offsets/tables mismatch");
    const int64_t batch = bags / num_tables;

    Tensor pooled = s.alloc({bags, dim});
    if (s.numeric())
        math::embedding_bag(weights.f32(), indices.i64(), offsets.i64(), pooled.f32(),
                            indices.numel(), bags, dim);
    Tensor out = pooled.view_as({batch, num_tables * dim});

    const double loc = embedding_locality(indices);
    s.launch(embedding_kernel("fbgemm_batched_lookup", indices.numel(), dim,
                              unique_indices(indices), loc, dev::OpCategory::kCustom),
             dev::kComputeStream, {weights, indices, offsets}, {out});
    return {IValue(out)};
}

std::vector<Tensor>
batched_embedding_backward_route(Session& s, const AutogradContext& ctx,
                                 const std::vector<Tensor>& gouts)
{
    const Tensor& weights = ctx.inputs[0].tensor();
    Tensor gw = s.call_t(MYST_OP("fbgemm::batched_embedding_backward"),
                         {IValue(gouts[0]), ctx.inputs[1], ctx.inputs[2],
                          IValue(weights.dim(0)), ctx.inputs[3]});
    return {gw, Tensor(), Tensor(), Tensor()};
}

std::vector<IValue>
batched_embedding_backward_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& grad_out = in[0].tensor(); // [batch, tables*dim]
    const Tensor& indices = in[1].tensor();
    const Tensor& offsets = in[2].tensor();
    const int64_t rows = in[3].to_int();
    const int64_t num_tables = in[4].to_int();
    const int64_t bags = offsets.numel();
    const int64_t dim = grad_out.numel() / (bags / num_tables) / num_tables;

    Tensor grad_w = s.alloc({rows, dim});
    if (s.numeric()) {
        const Tensor flat = grad_out.view_as({bags, dim});
        math::embedding_bag_backward(flat.f32(), indices.i64(), offsets.i64(),
                                     grad_w.f32(), rows, indices.numel(), bags, dim);
    }
    const double loc = embedding_locality(indices);
    s.launch(embedding_kernel("fbgemm_batched_bwd", indices.numel(), dim,
                              unique_indices(indices), loc, dev::OpCategory::kCustom),
             dev::kComputeStream, {grad_out, indices, offsets}, {grad_w});
    return {IValue(grad_w)};
}

std::vector<IValue>
jagged_to_padded_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& values = in[0].tensor();   // [nnz] float
    const Tensor& offsets = in[1].tensor();  // [B] segment starts
    const int64_t max_len = in[2].to_int();
    const int64_t b = offsets.numel();
    Tensor out = s.alloc({b, max_len});
    if (s.numeric()) {
        std::fill(out.f32(), out.f32() + out.numel(), 0.0f);
        const int64_t nnz = values.numel();
        for (int64_t row = 0; row < b; ++row) {
            const int64_t begin = offsets.i64()[row];
            const int64_t end = row + 1 < b ? offsets.i64()[row + 1] : nnz;
            const int64_t len = std::min<int64_t>(end - begin, max_len);
            if (len > 0)
                std::memcpy(out.f32() + row * max_len, values.f32() + begin,
                            static_cast<std::size_t>(len) * sizeof(float));
        }
    }
    dev::KernelDesc d = pointwise_kernel("jagged_to_padded", out.numel(), 2, 1.0,
                                         dev::OpCategory::kCustom);
    s.launch(std::move(d), dev::kComputeStream, {values, offsets}, {out});
    return {IValue(out)};
}

/// Production fused feature-interaction (the pairwise dot-product
/// "interaction arch" of DLRM, implemented as one custom kernel in the
/// production RM).  dense [B,d] + sparse list of [B,d] → [B, d + f*f] where
/// f = 1 + |sparse|: the dense features concatenated with the flattened
/// pairwise dot-product matrix.
std::vector<IValue>
interaction_arch_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& dense = in[0].tensor();
    const std::vector<Tensor>& sparse = in[1].tensor_list();
    const int64_t b = dense.dim(0);
    const int64_t d = dense.dim(1);
    const int64_t f = static_cast<int64_t>(sparse.size()) + 1;
    Tensor out = s.alloc({b, d + f * f});
    if (s.numeric()) {
        auto feature = [&](int64_t row, int64_t idx) -> const float* {
            return idx == 0 ? dense.f32() + row * d
                            : sparse[static_cast<std::size_t>(idx - 1)].f32() + row * d;
        };
        for (int64_t row = 0; row < b; ++row) {
            float* orow = out.f32() + row * (d + f * f);
            std::memcpy(orow, dense.f32() + row * d,
                        static_cast<std::size_t>(d) * sizeof(float));
            for (int64_t a = 0; a < f; ++a) {
                for (int64_t c = 0; c < f; ++c) {
                    double acc = 0.0;
                    const float* za = feature(row, a);
                    const float* zc = feature(row, c);
                    for (int64_t k = 0; k < d; ++k)
                        acc += static_cast<double>(za[k]) * static_cast<double>(zc[k]);
                    orow[d + a * f + c] = static_cast<float>(acc);
                }
            }
        }
    }
    dev::KernelDesc kd = gemm_kernel(f, d, f, b, dev::OpCategory::kCustom);
    kd.name = strprintf("interaction_arch_b%lld_f%lld_d%lld", static_cast<long long>(b),
                        static_cast<long long>(f), static_cast<long long>(d));
    kd.kind = dev::KernelKind::kOther;
    std::vector<Tensor> inputs = sparse;
    inputs.push_back(dense);
    s.launch(std::move(kd), dev::kComputeStream, inputs, {out});
    return {IValue(out)};
}

std::vector<Tensor>
interaction_arch_backward_route(Session& s, const AutogradContext& ctx,
                                const std::vector<Tensor>& gouts)
{
    auto outs = s.call(MYST_OP("meta::interaction_arch_backward"),
                       {IValue(gouts[0]), ctx.inputs[0], ctx.inputs[1]});
    ctx.list_grads.assign(ctx.inputs.size(), {});
    ctx.list_grads[1] = outs[1].tensor_list();
    return {outs[0].tensor(), Tensor()};
}

std::vector<IValue>
interaction_arch_backward_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& grad_out = in[0].tensor();
    const Tensor& dense = in[1].tensor();
    const std::vector<Tensor>& sparse = in[2].tensor_list();
    const int64_t b = dense.dim(0);
    const int64_t d = dense.dim(1);
    const int64_t f = static_cast<int64_t>(sparse.size()) + 1;

    Tensor grad_dense = s.alloc(dense.shape());
    std::vector<Tensor> grad_sparse;
    for (const auto& t : sparse)
        grad_sparse.push_back(s.alloc(t.shape()));

    if (s.numeric()) {
        auto feature = [&](int64_t row, int64_t idx) -> const float* {
            return idx == 0 ? dense.f32() + row * d
                            : sparse[static_cast<std::size_t>(idx - 1)].f32() + row * d;
        };
        auto grad_feature = [&](int64_t row, int64_t idx) -> float* {
            return idx == 0
                       ? grad_dense.f32() + row * d
                       : grad_sparse[static_cast<std::size_t>(idx - 1)].f32() + row * d;
        };
        for (int64_t row = 0; row < b; ++row) {
            const float* grow = grad_out.f32() + row * (d + f * f);
            // Direct contribution to the dense slice.
            std::memcpy(grad_dense.f32() + row * d, grow,
                        static_cast<std::size_t>(d) * sizeof(float));
            for (auto& gs : grad_sparse)
                std::fill(gs.f32() + row * d, gs.f32() + (row + 1) * d, 0.0f);
            // dZ_a += (G[a][c] + G[c][a]) * z_c
            for (int64_t a = 0; a < f; ++a) {
                float* ga = grad_feature(row, a);
                for (int64_t c = 0; c < f; ++c) {
                    const float g = grow[d + a * f + c] + grow[d + c * f + a];
                    const float* zc = feature(row, c);
                    for (int64_t k = 0; k < d; ++k)
                        ga[k] += g * zc[k];
                }
            }
        }
    }

    dev::KernelDesc kd = gemm_kernel(f, f, d, b, dev::OpCategory::kCustom);
    kd.name = strprintf("interaction_arch_bwd_b%lld_f%lld_d%lld", static_cast<long long>(b),
                        static_cast<long long>(f), static_cast<long long>(d));
    kd.kind = dev::KernelKind::kOther;
    kd.flops *= 2.0;
    std::vector<Tensor> inputs = sparse;
    inputs.push_back(grad_out);
    std::vector<Tensor> outputs = grad_sparse;
    outputs.push_back(grad_dense);
    s.launch(std::move(kd), dev::kComputeStream, inputs, outputs);
    return {IValue(grad_dense), IValue(std::move(grad_sparse))};
}

/// Performance-equivalent public proxy block (§8.4): stands in for an
/// IP-protected custom operator.  Executes one kernel with the recorded
/// flop/byte cost and produces outputs of the recorded shapes, preserving
/// data dependencies without revealing the original implementation.
std::vector<IValue>
obf_proxy_fn(Session& s, const std::vector<IValue>& in)
{
    const std::vector<Tensor>& inputs = in[0].tensor_list();
    const double flops = static_cast<double>(in[1].to_int());
    const double bytes = static_cast<double>(in[2].to_int());
    const auto& shape_enc = in[3].int_list();

    // Decode [rank, d0, d1, ..., rank, ...] into output shapes.
    std::vector<Tensor> outputs;
    std::size_t pos = 0;
    while (pos < shape_enc.size()) {
        const auto rank = static_cast<std::size_t>(shape_enc[pos++]);
        Shape shape;
        for (std::size_t i = 0; i < rank && pos < shape_enc.size(); ++i)
            shape.push_back(shape_enc[pos++]);
        outputs.push_back(s.alloc(shape.empty() ? Shape{1} : shape));
    }

    dev::KernelDesc d;
    d.name = strprintf("obf_proxy_f%lld_b%lld", static_cast<long long>(flops),
                       static_cast<long long>(bytes));
    d.kind = dev::KernelKind::kOther;
    d.category = dev::OpCategory::kCustom;
    d.flops = flops;
    d.bytes = bytes;
    d.working_set_bytes = bytes;
    d.locality = 0.7;
    d.parallelism = std::max(1.0, bytes / 16.0);
    s.launch(std::move(d), dev::kComputeStream, inputs, outputs);
    return {IValue(std::move(outputs))};
}

} // namespace

void
register_custom_ops(OpRegistry& reg)
{
    const auto cat = dev::OpCategory::kCustom;
    reg.register_op(
        {.name = "fairseq::lstm_layer",
         .schema = "fairseq::lstm_layer(Tensor input, Tensor w_ih, Tensor w_hh, "
                   "Tensor bias) -> Tensor",
         .category = cat,
         .fn = lstm_layer_fn,
         .backward = lstm_layer_backward_route,
         .grad_name = "FairseqLstmLayer",
         .extra_cpu_us = 3.0});
    reg.register_op(
        {.name = "fairseq::lstm_layer_backward",
         .schema = "fairseq::lstm_layer_backward(Tensor grad_output, Tensor input, "
                   "Tensor w_ih, Tensor w_hh, Tensor bias) -> (Tensor, Tensor, Tensor, Tensor)",
         .category = cat,
         .fn = lstm_layer_backward_fn,
         .extra_cpu_us = 3.0});
    reg.register_op(
        {.name = "fbgemm::batched_embedding_lookup",
         .schema = "fbgemm::batched_embedding_lookup(Tensor weights, Tensor indices, "
                   "Tensor offsets, int num_tables) -> Tensor",
         .category = cat,
         .fn = batched_embedding_fn,
         .backward = batched_embedding_backward_route,
         .grad_name = "FbgemmBatchedEmbedding",
         .extra_cpu_us = 2.0});
    reg.register_op(
        {.name = "fbgemm::batched_embedding_backward",
         .schema = "fbgemm::batched_embedding_backward(Tensor grad_output, Tensor indices, "
                   "Tensor offsets, int rows, int num_tables) -> Tensor",
         .category = cat,
         .fn = batched_embedding_backward_fn,
         .extra_cpu_us = 2.0});
    reg.register_op(
        {.name = "torchrec::jagged_to_padded_dense",
         .schema = "torchrec::jagged_to_padded_dense(Tensor values, Tensor offsets, "
                   "int max_len) -> Tensor",
         .category = cat,
         .fn = jagged_to_padded_fn});
    reg.register_op(
        {.name = "obf::proxy",
         .schema = "obf::proxy(Tensor[] inputs, int flops, int bytes, "
                   "int[] out_shapes) -> Tensor[]",
         .category = cat,
         .fn = obf_proxy_fn});
    reg.register_op(
        {.name = "meta::interaction_arch",
         .schema = "meta::interaction_arch(Tensor dense, Tensor[] sparse) -> Tensor",
         .category = cat,
         .fn = interaction_arch_fn,
         .backward = interaction_arch_backward_route,
         .grad_name = "InteractionArch",
         .extra_cpu_us = 2.0});
    reg.register_op(
        {.name = "meta::interaction_arch_backward",
         .schema = "meta::interaction_arch_backward(Tensor grad_output, Tensor dense, "
                   "Tensor[] sparse) -> (Tensor, Tensor[])",
         .category = cat,
         .fn = interaction_arch_backward_fn,
         .extra_cpu_us = 2.0});
}

} // namespace mystique::fw
