#include "framework/autograd.h"

#include "common/error.h"

namespace mystique::fw::autograd {

void
Engine::record(TapeNode node)
{
    for (auto& out : node.output_tensors) {
        out->requires_grad = true;
        out->produced_by_tape = true;
    }
    tape_.push_back(std::move(node));
}

void
Engine::run_backward(Session& sess, const Tensor& loss,
                     const std::vector<Session::GradHook>& hooks)
{
    MYST_CHECK_MSG(loss.defined(), "backward() on undefined tensor");
    MYST_CHECK_MSG(loss.numel() == 1, "backward() requires a scalar loss");

    // Backward runs on the autograd thread; main thread blocks until done.
    sess.set_tid(kAutogradThread);
    NoGradGuard no_grad(sess);

    std::unordered_map<TensorImpl*, Tensor> grads;
    grads[loss.impl()] = sess.call_t(MYST_OP("aten::ones_like"), {IValue(loss)});

    for (auto it = tape_.rbegin(); it != tape_.rend(); ++it) {
        TapeNode& node = *it;
        const OpDef* def =
            node.op_id != kInvalidOpId ? &OpRegistry::instance().at(node.op_id) : nullptr;
        const BackwardFn& backward = def != nullptr ? def->backward : node.dynamic_backward;
        const std::string& grad_name =
            def != nullptr ? (def->grad_name.empty() ? def->name : def->grad_name)
                           : node.dynamic_grad_name;

        std::vector<Tensor> grad_outputs;
        grad_outputs.reserve(node.output_tensors.size());
        bool any = false;
        for (auto& out : node.output_tensors) {
            auto git = grads.find(out.get());
            if (git != grads.end()) {
                grad_outputs.push_back(git->second);
                any = true;
            } else {
                grad_outputs.emplace_back();
            }
        }
        if (!any)
            continue;

        sess.push_scope("autograd::engine::evaluate_function: " + grad_name +
                        "Backward0");
        std::vector<Tensor> grad_inputs = backward(sess, node.ctx, grad_outputs);
        MYST_CHECK_MSG(grad_inputs.size() == node.ctx.inputs.size(),
                       grad_name << " backward returned " << grad_inputs.size()
                                 << " grads for " << node.ctx.inputs.size()
                                 << " inputs");

        // Routes one gradient contribution to a target tensor: accumulate,
        // and for leaf parameters finalize .grad and fire post-accumulate
        // hooks (DDP bucket all-reduce launches from here, overlapping with
        // the remaining backward compute).
        auto route = [&](const Tensor& target_handle, const Tensor& g) {
            TensorImpl* target = target_handle.impl();
            if (!target->requires_grad)
                return;
            auto git = grads.find(target);
            if (git == grads.end()) {
                grads.emplace(target, g);
            } else {
                // In-stream accumulation, as AccumulateGrad does.
                sess.call(MYST_OP("aten::add_.Tensor"),
                          {IValue(git->second), IValue(g), IValue(1.0)});
            }
            if (!target->produced_by_tape && target->grad == nullptr) {
                target->grad = grads[target].impl_ptr();
                for (const auto& hook : hooks)
                    hook(sess, target_handle);
            }
        };

        for (std::size_t i = 0; i < grad_inputs.size(); ++i) {
            if (!grad_inputs[i].defined())
                continue;
            const IValue& slot = node.ctx.inputs[i];
            if (!slot.is_tensor())
                continue;
            route(slot.tensor(), grad_inputs[i]);
        }
        // Tensor-list inputs (aten::cat) route per-element grads.
        for (std::size_t i = 0; i < node.ctx.list_grads.size(); ++i) {
            const auto& elems = node.ctx.list_grads[i];
            if (elems.empty())
                continue;
            const auto& list = node.ctx.inputs[i].tensor_list();
            MYST_CHECK_MSG(elems.size() == list.size(),
                           grad_name << " list grads size mismatch");
            for (std::size_t e = 0; e < elems.size(); ++e) {
                if (elems[e].defined())
                    route(list[e], elems[e]);
            }
        }
        sess.pop_scope();
    }

    clear();
    sess.set_tid(kMainThread);
}

} // namespace mystique::fw::autograd
