#pragma once

/// @file
/// Reverse-mode autograd engine.
///
/// Leaf (non-composite) differentiable ops append TapeNodes during forward;
/// backward() walks the tape in reverse on the autograd thread (tid 2 in
/// traces, matching the second CPU row in the paper's Figure 4).  Backward
/// math is expressed as ordinary session ops, so the backward pass is traced
/// and timed exactly like user code — autograd frames appear as
/// "autograd::engine::evaluate_function: <Op>Backward0" wrapper nodes that
/// the replayer skips while replaying their underlying operators.

#include <memory>
#include <unordered_map>
#include <vector>

#include "framework/op_registry.h"
#include "framework/session.h"

namespace mystique::fw::autograd {

/// One recorded differentiable op application.
///
/// Carries the interned identity of the forward op rather than copies of its
/// grad name and backward functor: recording is on the per-op hot path, and
/// the engine re-derives the OpDef in O(1) when backward actually runs.
struct TapeNode {
    OpId op_id = kInvalidOpId; ///< forward op; its OpDef supplies backward
    AutogradContext ctx;
    /// Impls of tensor outputs, for grad routing.
    std::vector<std::shared_ptr<TensorImpl>> output_tensors;
    /// Dynamic (JIT-fused) ops have no registry entry, so their backward and
    /// grad name are copied here; op_id stays invalid.
    BackwardFn dynamic_backward;
    std::string dynamic_grad_name;
};

/// The per-session tape and backward executor.
class Engine {
  public:
    /// Appends a node and marks its outputs as tape-produced.
    void record(TapeNode node);

    std::size_t size() const { return tape_.size(); }
    void clear() { tape_.clear(); }

    /// Executes backward from @p loss; fires @p hooks as leaf parameters'
    /// gradients are finalized.  Clears the tape on completion.
    void run_backward(Session& sess, const Tensor& loss,
                      const std::vector<Session::GradHook>& hooks);

  private:
    std::vector<TapeNode> tape_;
};

} // namespace mystique::fw::autograd
