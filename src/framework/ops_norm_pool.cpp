/// @file
/// Normalization and pooling operators.

#include "common/error.h"
#include "framework/kernel_utils.h"
#include "framework/math.h"
#include "framework/op_registry.h"
#include "framework/session.h"

namespace mystique::fw {

namespace {

std::vector<IValue>
batch_norm_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& input = in[0].tensor();
    const Tensor gamma = in[1].is_tensor() ? in[1].tensor() : Tensor();
    const Tensor beta = in[2].is_tensor() ? in[2].tensor() : Tensor();
    const float eps = static_cast<float>(in[4].to_double());
    MYST_CHECK_MSG(input.shape().size() == 4, "batch_norm expects NCHW");
    const int64_t n = input.dim(0), c = input.dim(1);
    const int64_t spatial = input.dim(2) * input.dim(3);

    Tensor out = s.alloc(input.shape());
    if (s.numeric())
        math::batch_norm(input.f32(), gamma.defined() ? gamma.f32() : nullptr,
                         beta.defined() ? beta.f32() : nullptr, out.f32(), n, c, spatial,
                         eps);
    s.launch(norm_kernel("batch_norm", input.numel()), dev::kComputeStream,
             {input, gamma, beta}, {out});
    return {IValue(out)};
}

std::vector<Tensor>
batch_norm_backward_route(Session& s, const AutogradContext& ctx,
                          const std::vector<Tensor>& gouts)
{
    auto outs = s.call(MYST_OP("aten::native_batch_norm_backward"),
                       {IValue(gouts[0]), ctx.inputs[0], ctx.inputs[1], ctx.inputs[4]});
    Tensor ggamma, gbeta;
    if (ctx.inputs[1].is_tensor() && ctx.inputs[1].tensor().requires_grad())
        ggamma = outs[1].tensor();
    if (ctx.inputs[2].is_tensor() && ctx.inputs[2].tensor().requires_grad())
        gbeta = outs[2].tensor();
    return {outs[0].tensor(), ggamma, gbeta, Tensor(), Tensor()};
}

std::vector<IValue>
batch_norm_backward_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& grad_out = in[0].tensor();
    const Tensor& input = in[1].tensor();
    const Tensor gamma = in[2].is_tensor() ? in[2].tensor() : Tensor();
    const float eps = static_cast<float>(in[3].to_double());
    const int64_t n = input.dim(0), c = input.dim(1);
    const int64_t spatial = input.dim(2) * input.dim(3);

    Tensor grad_in = s.alloc(input.shape());
    Tensor grad_gamma = s.alloc({c});
    Tensor grad_beta = s.alloc({c});
    if (s.numeric())
        math::batch_norm_backward(grad_out.f32(), input.f32(),
                                  gamma.defined() ? gamma.f32() : nullptr, grad_in.f32(),
                                  grad_gamma.f32(), grad_beta.f32(), n, c, spatial, eps);
    s.launch(norm_kernel("batch_norm_bwd", input.numel()), dev::kComputeStream,
             {grad_out, input, gamma}, {grad_in, grad_gamma, grad_beta});
    return {IValue(grad_in), IValue(grad_gamma), IValue(grad_beta)};
}

std::vector<IValue>
max_pool2d_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& input = in[0].tensor();
    const auto& kernel = in[1].int_list();
    const auto& stride = in[2].int_list();
    const auto& padding = in[3].int_list();
    const int64_t k = kernel.at(0);
    const int64_t st = stride.empty() ? k : stride[0];
    const int64_t pad = padding.empty() ? 0 : padding[0];
    const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    const int64_t oh = (h + 2 * pad - k) / st + 1;
    const int64_t ow = (w + 2 * pad - k) / st + 1;

    Tensor out = s.alloc({n, c, oh, ow});
    if (s.numeric())
        math::max_pool2d(input.f32(), out.f32(), n, c, h, w, k, st, pad);
    s.launch(pool_kernel("max_pool2d", input.numel(), out.numel(), k), dev::kComputeStream,
             {input}, {out});
    return {IValue(out)};
}

std::vector<Tensor>
max_pool2d_backward_route(Session& s, const AutogradContext& ctx,
                          const std::vector<Tensor>& gouts)
{
    Tensor gi = s.call_t(MYST_OP("aten::max_pool2d_backward"),
                         {IValue(gouts[0]), ctx.inputs[0], ctx.inputs[1], ctx.inputs[2],
                          ctx.inputs[3]});
    return {gi, Tensor(), Tensor(), Tensor()};
}

std::vector<IValue>
max_pool2d_backward_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& grad_out = in[0].tensor();
    const Tensor& input = in[1].tensor();
    const auto& kernel = in[2].int_list();
    const auto& stride = in[3].int_list();
    const auto& padding = in[4].int_list();
    const int64_t k = kernel.at(0);
    const int64_t st = stride.empty() ? k : stride[0];
    const int64_t pad = padding.empty() ? 0 : padding[0];
    const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);

    Tensor grad_in = s.alloc(input.shape());
    if (s.numeric())
        math::max_pool2d_backward(grad_out.f32(), input.f32(), grad_in.f32(), n, c, h, w,
                                  k, st, pad);
    s.launch(pool_kernel("max_pool2d_bwd", input.numel(), grad_out.numel(), k),
             dev::kComputeStream, {grad_out, input}, {grad_in});
    return {IValue(grad_in)};
}

std::vector<IValue>
adaptive_avg_pool2d_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& input = in[0].tensor();
    const auto& osize = in[1].int_list();
    const int64_t oh = osize.at(0), ow = osize.at(1);
    const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    Tensor out = s.alloc({n, c, oh, ow});
    if (s.numeric())
        math::adaptive_avg_pool2d(input.f32(), out.f32(), n, c, h, w, oh, ow);
    s.launch(pool_kernel("adaptive_avg_pool2d", input.numel(), out.numel(),
                         std::max<int64_t>(1, h / std::max<int64_t>(1, oh))),
             dev::kComputeStream, {input}, {out});
    return {IValue(out)};
}

std::vector<Tensor>
adaptive_avg_pool2d_backward_route(Session& s, const AutogradContext& ctx,
                                   const std::vector<Tensor>& gouts)
{
    Tensor gi = s.call_t(MYST_OP("aten::adaptive_avg_pool2d_backward"),
                         {IValue(gouts[0]), ctx.inputs[0]});
    return {gi, Tensor()};
}

std::vector<IValue>
adaptive_avg_pool2d_backward_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& grad_out = in[0].tensor();
    const Tensor& input = in[1].tensor();
    const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    const int64_t oh = grad_out.dim(2), ow = grad_out.dim(3);
    Tensor grad_in = s.alloc(input.shape());
    if (s.numeric())
        math::adaptive_avg_pool2d_backward(grad_out.f32(), grad_in.f32(), n, c, h, w, oh,
                                           ow);
    s.launch(pool_kernel("adaptive_avg_pool2d_bwd", input.numel(), grad_out.numel(), 2),
             dev::kComputeStream, {grad_out}, {grad_in});
    return {IValue(grad_in)};
}

} // namespace

void
register_norm_pool_ops(OpRegistry& reg)
{
    reg.register_op(
        {.name = "aten::batch_norm",
         .schema = "aten::batch_norm(Tensor input, Tensor? weight, Tensor? bias, "
                   "bool training, float eps) -> Tensor",
         .fn = batch_norm_fn,
         .backward = batch_norm_backward_route,
         .grad_name = "NativeBatchNorm"});
    reg.register_op(
        {.name = "aten::native_batch_norm_backward",
         .schema = "aten::native_batch_norm_backward(Tensor grad_out, Tensor input, "
                   "Tensor? weight, float eps) -> (Tensor, Tensor, Tensor)",
         .fn = batch_norm_backward_fn});
    reg.register_op(
        {.name = "aten::max_pool2d",
         .schema = "aten::max_pool2d(Tensor self, int[2] kernel_size, int[2] stride=[], "
                   "int[2] padding=0) -> Tensor",
         .fn = max_pool2d_fn,
         .backward = max_pool2d_backward_route,
         .grad_name = "MaxPool2D"});
    reg.register_op(
        {.name = "aten::max_pool2d_backward",
         .schema = "aten::max_pool2d_backward(Tensor grad_output, Tensor self, "
                   "int[2] kernel_size, int[2] stride=[], int[2] padding=0) -> Tensor",
         .fn = max_pool2d_backward_fn});
    reg.register_op(
        {.name = "aten::adaptive_avg_pool2d",
         .schema = "aten::adaptive_avg_pool2d(Tensor self, int[2] output_size) -> Tensor",
         .fn = adaptive_avg_pool2d_fn,
         .backward = adaptive_avg_pool2d_backward_route,
         .grad_name = "AdaptiveAvgPool2D"});
    reg.register_op(
        {.name = "aten::adaptive_avg_pool2d_backward",
         .schema =
             "aten::adaptive_avg_pool2d_backward(Tensor grad_output, Tensor self) -> Tensor",
         .fn = adaptive_avg_pool2d_backward_fn});
}

} // namespace mystique::fw
