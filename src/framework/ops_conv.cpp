/// @file
/// Convolution operators: composite aten::conv2d → leaf aten::convolution,
/// plus aten::convolution_backward.

#include "common/error.h"
#include "framework/kernel_utils.h"
#include "framework/math.h"
#include "framework/op_registry.h"
#include "framework/session.h"

namespace mystique::fw {

namespace {

int64_t
out_dim(int64_t in, int64_t k, int64_t stride, int64_t pad)
{
    return (in + 2 * pad - k) / stride + 1;
}

std::vector<IValue>
convolution_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& input = in[0].tensor();
    const Tensor& weight = in[1].tensor();
    const Tensor bias = in[2].is_tensor() ? in[2].tensor() : Tensor();
    const auto& stride = in[3].int_list();
    const auto& padding = in[4].int_list();
    MYST_CHECK_MSG(input.shape().size() == 4 && weight.shape().size() == 4,
                   "convolution expects NCHW input and FCHW weight");
    const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    const int64_t f = weight.dim(0), kh = weight.dim(2), kw = weight.dim(3);
    MYST_CHECK_MSG(weight.dim(1) == c, "convolution channel mismatch");
    const int64_t st = stride.empty() ? 1 : stride[0];
    const int64_t pad = padding.empty() ? 0 : padding[0];
    const int64_t oh = out_dim(h, kh, st, pad);
    const int64_t ow = out_dim(w, kw, st, pad);
    MYST_CHECK_MSG(oh > 0 && ow > 0, "convolution output would be empty");

    Tensor out = s.alloc({n, f, oh, ow});
    if (s.numeric())
        math::conv2d(input.f32(), weight.f32(), bias.defined() ? bias.f32() : nullptr,
                     out.f32(), n, c, h, w, f, kh, kw, st, pad);

    const double bytes =
        4.0 * (static_cast<double>(input.numel()) + static_cast<double>(weight.numel()) +
               static_cast<double>(out.numel()));
    s.launch(conv_kernel("fprop", n, c, f, kh, kw, oh, ow, bytes), dev::kComputeStream,
             {input, weight, bias}, {out});
    return {IValue(out)};
}

std::vector<Tensor>
convolution_backward_route(Session& s, const AutogradContext& ctx,
                           const std::vector<Tensor>& gouts)
{
    const Tensor& input = ctx.inputs[0].tensor();
    const Tensor& weight = ctx.inputs[1].tensor();
    auto outs = s.call(MYST_OP("aten::convolution_backward"),
                       {IValue(gouts[0]), IValue(input), IValue(weight), ctx.inputs[3],
                        ctx.inputs[4]});
    Tensor gbias;
    if (ctx.inputs[2].is_tensor() && ctx.inputs[2].tensor().requires_grad())
        gbias = outs[2].tensor();
    return {outs[0].tensor(), outs[1].tensor(), gbias, Tensor(), Tensor()};
}

std::vector<IValue>
convolution_backward_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& grad_out = in[0].tensor();
    const Tensor& input = in[1].tensor();
    const Tensor& weight = in[2].tensor();
    const auto& stride = in[3].int_list();
    const auto& padding = in[4].int_list();
    const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    const int64_t f = weight.dim(0), kh = weight.dim(2), kw = weight.dim(3);
    const int64_t st = stride.empty() ? 1 : stride[0];
    const int64_t pad = padding.empty() ? 0 : padding[0];
    const int64_t oh = out_dim(h, kh, st, pad);
    const int64_t ow = out_dim(w, kw, st, pad);

    Tensor grad_in = s.alloc(input.shape());
    Tensor grad_w = s.alloc(weight.shape());
    Tensor grad_b = s.alloc({f});
    if (s.numeric())
        math::conv2d_backward(grad_out.f32(), input.f32(), weight.f32(), grad_in.f32(),
                              grad_w.f32(), grad_b.f32(), n, c, h, w, f, kh, kw, st, pad);

    // dgrad + wgrad are each roughly the fprop cost; model as two kernels on
    // the compute stream, as cuDNN does.
    const double io_bytes =
        4.0 * (static_cast<double>(input.numel()) + static_cast<double>(weight.numel()) +
               static_cast<double>(grad_out.numel()));
    s.launch(conv_kernel("dgrad", n, c, f, kh, kw, oh, ow, io_bytes), dev::kComputeStream,
             {grad_out, weight}, {grad_in});
    s.launch(conv_kernel("wgrad", n, c, f, kh, kw, oh, ow, io_bytes), dev::kComputeStream,
             {grad_out, input}, {grad_w, grad_b});
    return {IValue(grad_in), IValue(grad_w), IValue(grad_b)};
}

/// Composite wrapper, as in ATen: conv2d forwards to convolution.
std::vector<IValue>
conv2d_fn(Session& s, const std::vector<IValue>& in)
{
    Tensor out = s.call_t(MYST_OP("aten::convolution"), {in[0], in[1], in[2], in[3], in[4]});
    return {IValue(out)};
}

} // namespace

void
register_conv_ops(OpRegistry& reg)
{
    reg.register_op(
        {.name = "aten::conv2d",
         .schema =
             "aten::conv2d(Tensor input, Tensor weight, Tensor? bias=None, int[2] stride=1, "
             "int[2] padding=0) -> Tensor",
         .fn = conv2d_fn,
         .composite = true});
    reg.register_op(
        {.name = "aten::convolution",
         .schema = "aten::convolution(Tensor input, Tensor weight, Tensor? bias, "
                   "int[] stride, int[] padding) -> Tensor",
         .fn = convolution_fn,
         .backward = convolution_backward_route,
         .grad_name = "Convolution"});
    reg.register_op(
        {.name = "aten::convolution_backward",
         .schema = "aten::convolution_backward(Tensor grad_output, Tensor input, "
                   "Tensor weight, int[] stride, int[] padding) -> (Tensor, Tensor, Tensor)",
         .fn = convolution_backward_fn});
}

} // namespace mystique::fw
