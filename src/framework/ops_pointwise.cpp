/// @file
/// Pointwise / unary ATen operators.

#include "common/error.h"
#include "framework/kernel_utils.h"
#include "framework/math.h"
#include "framework/op_registry.h"
#include "framework/session.h"

namespace mystique::fw {

namespace {

/// Checks the limited broadcast we support: other's numel divides self's and
/// other maps onto self's trailing elements (bias / scalar patterns).
void
check_broadcast(const Tensor& a, const Tensor& b)
{
    MYST_CHECK_MSG(b.numel() > 0 && a.numel() % b.numel() == 0,
                   "unsupported broadcast: " << shape_str(a.shape()) << " with "
                                             << shape_str(b.shape()));
}

std::vector<IValue>
binary_fn(const char* family, Session& s, const std::vector<IValue>& in,
          void (*same)(const float*, const float*, float*, int64_t, float),
          bool has_alpha)
{
    const Tensor& a = in[0].tensor();
    const Tensor& b = in[1].tensor();
    const float alpha = has_alpha ? static_cast<float>(in[2].to_double()) : 1.0f;
    check_broadcast(a, b);
    Tensor out = s.alloc(a.shape());
    if (s.numeric()) {
        if (a.numel() == b.numel())
            same(a.f32(), b.f32(), out.f32(), a.numel(), alpha);
        else
            math::add_broadcast(a.f32(), b.f32(), out.f32(), a.numel(), b.numel(),
                                family[0] == 's' ? -alpha : alpha);
    }
    s.launch(pointwise_kernel(family, a.numel(), 2), dev::kComputeStream, {a, b}, {out});
    return {IValue(out)};
}

/// Gradient of `other` under broadcast: reduce grad over the broadcast dims.
Tensor
reduce_grad_to(Session& s, const Tensor& grad, const Tensor& like)
{
    if (grad.numel() == like.numel())
        return grad;
    const Tensor flat = grad.view_as({grad.numel() / like.numel(), like.numel()});
    Tensor summed = s.call_t(MYST_OP("aten::sum.dim_IntList"),
                             {IValue(flat), IValue(std::vector<int64_t>{0}), IValue(false)});
    return summed.view_as(like.shape());
}

std::vector<IValue>
add_fn(Session& s, const std::vector<IValue>& in)
{
    return binary_fn("add", s, in, &math::add, true);
}

std::vector<Tensor>
add_backward(Session& s, const AutogradContext& ctx, const std::vector<Tensor>& gouts)
{
    const Tensor& go = gouts[0];
    const Tensor& a = ctx.inputs[0].tensor();
    const Tensor& b = ctx.inputs[1].tensor();
    const double alpha = ctx.inputs[2].to_double();
    Tensor ga = go;
    Tensor gb;
    if (b.requires_grad()) {
        gb = reduce_grad_to(s, go, b);
        if (alpha != 1.0)
            gb = s.call_t(MYST_OP("aten::mul.Scalar"), {IValue(gb), IValue(alpha)});
    }
    (void)a;
    return {ga, gb, Tensor()};
}

std::vector<IValue>
add_inplace_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& a = in[0].tensor();
    const Tensor& b = in[1].tensor();
    const float alpha = static_cast<float>(in[2].to_double());
    check_broadcast(a, b);
    Tensor a_mut = a;
    if (s.numeric()) {
        if (a.numel() == b.numel())
            math::add(a.f32(), b.f32(), a_mut.f32(), a.numel(), alpha);
        else
            math::add_broadcast(a.f32(), b.f32(), a_mut.f32(), a.numel(), b.numel(), alpha);
    }
    s.launch(pointwise_kernel("add_", a.numel(), 2), dev::kComputeStream, {a, b}, {a_mut});
    return {IValue(a_mut)};
}

std::vector<IValue>
sub_fn(Session& s, const std::vector<IValue>& in)
{
    return binary_fn("sub", s, in, &math::sub, true);
}

std::vector<Tensor>
sub_backward(Session& s, const AutogradContext& ctx, const std::vector<Tensor>& gouts)
{
    const Tensor& go = gouts[0];
    const Tensor& b = ctx.inputs[1].tensor();
    const double alpha = ctx.inputs[2].to_double();
    Tensor gb;
    if (b.requires_grad()) {
        gb = reduce_grad_to(s, go, b);
        gb = s.call_t(MYST_OP("aten::mul.Scalar"), {IValue(gb), IValue(-alpha)});
    }
    return {go, gb, Tensor()};
}

std::vector<IValue>
mul_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& a = in[0].tensor();
    const Tensor& b = in[1].tensor();
    check_broadcast(a, b);
    Tensor out = s.alloc(a.shape());
    if (s.numeric()) {
        if (a.numel() == b.numel())
            math::mul(a.f32(), b.f32(), out.f32(), a.numel());
        else
            math::mul_broadcast(a.f32(), b.f32(), out.f32(), a.numel(), b.numel());
    }
    s.launch(pointwise_kernel("mul", a.numel(), 2), dev::kComputeStream, {a, b}, {out});
    return {IValue(out)};
}

std::vector<Tensor>
mul_backward(Session& s, const AutogradContext& ctx, const std::vector<Tensor>& gouts)
{
    const Tensor& go = gouts[0];
    const Tensor& a = ctx.inputs[0].tensor();
    const Tensor& b = ctx.inputs[1].tensor();
    Tensor ga, gb;
    if (a.requires_grad())
        ga = s.call_t(MYST_OP("aten::mul.Tensor"), {IValue(go), IValue(b)});
    if (b.requires_grad()) {
        Tensor t = s.call_t(MYST_OP("aten::mul.Tensor"), {IValue(go), IValue(a)});
        gb = reduce_grad_to(s, t, b);
    }
    return {ga, gb};
}

std::vector<IValue>
mul_scalar_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& a = in[0].tensor();
    const float v = static_cast<float>(in[1].to_double());
    Tensor out = s.alloc(a.shape());
    if (s.numeric())
        math::mul_scalar(a.f32(), v, out.f32(), a.numel());
    s.launch(pointwise_kernel("muls", a.numel(), 1), dev::kComputeStream, {a}, {out});
    return {IValue(out)};
}

std::vector<Tensor>
mul_scalar_backward(Session& s, const AutogradContext& ctx,
                    const std::vector<Tensor>& gouts)
{
    Tensor ga = s.call_t(MYST_OP("aten::mul.Scalar"),
                         {IValue(gouts[0]), IValue(ctx.inputs[1].to_double())});
    return {ga, Tensor()};
}

std::vector<IValue>
div_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& a = in[0].tensor();
    const Tensor& b = in[1].tensor();
    MYST_CHECK_MSG(a.numel() == b.numel(), "div requires matching shapes");
    Tensor out = s.alloc(a.shape());
    if (s.numeric())
        math::div(a.f32(), b.f32(), out.f32(), a.numel());
    s.launch(pointwise_kernel("div", a.numel(), 2), dev::kComputeStream, {a, b}, {out});
    return {IValue(out)};
}

template <void (*Fn)(const float*, float*, int64_t)>
std::vector<IValue>
unary_fn(const char* family, double flops, Session& s, const std::vector<IValue>& in)
{
    const Tensor& a = in[0].tensor();
    Tensor out = s.alloc(a.shape());
    if (s.numeric())
        Fn(a.f32(), out.f32(), a.numel());
    s.launch(pointwise_kernel(family, a.numel(), 1, flops), dev::kComputeStream, {a},
             {out});
    return {IValue(out)};
}

template <void (*Fn)(const float*, const float*, float*, int64_t)>
std::vector<IValue>
unary_grad_fn(const char* family, Session& s, const std::vector<IValue>& in)
{
    const Tensor& g = in[0].tensor();
    const Tensor& x = in[1].tensor();
    Tensor out = s.alloc(g.shape());
    if (s.numeric())
        Fn(g.f32(), x.f32(), out.f32(), g.numel());
    s.launch(pointwise_kernel(family, g.numel(), 2), dev::kComputeStream, {g, x}, {out});
    return {IValue(out)};
}

std::vector<IValue>
dropout_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& a = in[0].tensor();
    const double p = in[1].to_double();
    const bool train = in[2].to_bool();
    Tensor out = s.alloc(a.shape());
    Tensor mask = s.alloc(a.shape());
    if (s.numeric()) {
        const float scale = train && p < 1.0 ? 1.0f / (1.0f - static_cast<float>(p)) : 1.0f;
        for (int64_t i = 0; i < a.numel(); ++i) {
            const bool keep = !train || s.rng().uniform() >= p;
            mask.f32()[i] = keep ? 1.0f : 0.0f;
            out.f32()[i] = keep ? a.f32()[i] * scale : 0.0f;
        }
    }
    s.launch(pointwise_kernel("dropout", a.numel(), 1, 2.0), dev::kComputeStream, {a},
             {out, mask});
    return {IValue(out), IValue(mask)};
}

std::vector<Tensor>
dropout_backward(Session& s, const AutogradContext& ctx, const std::vector<Tensor>& gouts)
{
    const double p = ctx.inputs[1].to_double();
    const double scale = p < 1.0 ? 1.0 / (1.0 - p) : 1.0;
    const Tensor& mask = ctx.outputs[1].tensor();
    Tensor ga = s.call_t(MYST_OP("aten::native_dropout_backward"),
                         {IValue(gouts[0]), IValue(mask), IValue(scale)});
    return {ga, Tensor(), Tensor()};
}

std::vector<IValue>
dropout_bwd_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& g = in[0].tensor();
    const Tensor& mask = in[1].tensor();
    const float scale = static_cast<float>(in[2].to_double());
    Tensor out = s.alloc(g.shape());
    if (s.numeric()) {
        for (int64_t i = 0; i < g.numel(); ++i)
            out.f32()[i] = g.f32()[i] * mask.f32()[i] * scale;
    }
    s.launch(pointwise_kernel("dropout_bwd", g.numel(), 2), dev::kComputeStream, {g, mask},
             {out});
    return {IValue(out)};
}

} // namespace

void
register_pointwise_ops(OpRegistry& reg)
{
    reg.register_op(
        {.name = "aten::add.Tensor",
         .schema = "aten::add.Tensor(Tensor self, Tensor other, *, Scalar alpha=1) -> Tensor",
         .fn = add_fn,
         .backward = add_backward,
         .grad_name = "Add"});
    reg.register_op(
        {.name = "aten::add_.Tensor",
         .schema =
             "aten::add_.Tensor(Tensor(a!) self, Tensor other, *, Scalar alpha=1) -> Tensor(a!)",
         .fn = add_inplace_fn});
    reg.register_op(
        {.name = "aten::sub.Tensor",
         .schema = "aten::sub.Tensor(Tensor self, Tensor other, *, Scalar alpha=1) -> Tensor",
         .fn = sub_fn,
         .backward = sub_backward,
         .grad_name = "Sub"});
    reg.register_op({.name = "aten::mul.Tensor",
                     .schema = "aten::mul.Tensor(Tensor self, Tensor other) -> Tensor",
                     .fn = mul_fn,
                     .backward = mul_backward,
                     .grad_name = "Mul"});
    reg.register_op({.name = "aten::mul.Scalar",
                     .schema = "aten::mul.Scalar(Tensor self, Scalar other) -> Tensor",
                     .fn = mul_scalar_fn,
                     .backward = mul_scalar_backward,
                     .grad_name = "MulScalar"});
    reg.register_op({.name = "aten::div.Tensor",
                     .schema = "aten::div.Tensor(Tensor self, Tensor other) -> Tensor",
                     .fn = div_fn});

    reg.register_op({.name = "aten::relu",
                     .schema = "aten::relu(Tensor self) -> Tensor",
                     .fn = [](Session& s, const std::vector<IValue>& in) {
                         return unary_fn<&math::relu>("relu", 1.0, s, in);
                     },
                     .backward =
                         [](Session& s, const AutogradContext& ctx,
                            const std::vector<Tensor>& gouts) -> std::vector<Tensor> {
                         Tensor ga = s.call_t(MYST_OP("aten::threshold_backward"),
                                              {IValue(gouts[0]),
                                               IValue(ctx.inputs[0].tensor()), IValue(0.0)});
                         return {ga};
                     },
                     .grad_name = "Relu"});
    reg.register_op(
        {.name = "aten::threshold_backward",
         .schema =
             "aten::threshold_backward(Tensor grad_output, Tensor self, Scalar threshold) -> Tensor",
         .fn = [](Session& s, const std::vector<IValue>& in) {
             return unary_grad_fn<&math::relu_backward>("relu_bwd", s, in);
         }});

    reg.register_op({.name = "aten::sigmoid",
                     .schema = "aten::sigmoid(Tensor self) -> Tensor",
                     .fn = [](Session& s, const std::vector<IValue>& in) {
                         return unary_fn<&math::sigmoid>("sigmoid", 4.0, s, in);
                     },
                     .backward =
                         [](Session& s, const AutogradContext& ctx,
                            const std::vector<Tensor>& gouts) -> std::vector<Tensor> {
                         Tensor ga = s.call_t(MYST_OP("aten::sigmoid_backward"),
                                              {IValue(gouts[0]),
                                               IValue(ctx.outputs[0].tensor())});
                         return {ga};
                     },
                     .grad_name = "Sigmoid"});
    reg.register_op(
        {.name = "aten::sigmoid_backward",
         .schema = "aten::sigmoid_backward(Tensor grad_output, Tensor output) -> Tensor",
         .fn = [](Session& s, const std::vector<IValue>& in) {
             return unary_grad_fn<&math::sigmoid_backward>("sigmoid_bwd", s, in);
         }});

    reg.register_op({.name = "aten::tanh",
                     .schema = "aten::tanh(Tensor self) -> Tensor",
                     .fn = [](Session& s, const std::vector<IValue>& in) {
                         return unary_fn<&math::tanh_fwd>("tanh", 4.0, s, in);
                     },
                     .backward =
                         [](Session& s, const AutogradContext& ctx,
                            const std::vector<Tensor>& gouts) -> std::vector<Tensor> {
                         Tensor ga = s.call_t(MYST_OP("aten::tanh_backward"),
                                              {IValue(gouts[0]),
                                               IValue(ctx.outputs[0].tensor())});
                         return {ga};
                     },
                     .grad_name = "Tanh"});
    reg.register_op(
        {.name = "aten::tanh_backward",
         .schema = "aten::tanh_backward(Tensor grad_output, Tensor output) -> Tensor",
         .fn = [](Session& s, const std::vector<IValue>& in) {
             return unary_grad_fn<&math::tanh_backward>("tanh_bwd", s, in);
         }});

    reg.register_op({.name = "aten::exp",
                     .schema = "aten::exp(Tensor self) -> Tensor",
                     .fn = [](Session& s, const std::vector<IValue>& in) {
                         return unary_fn<&math::exp_fwd>("exp", 4.0, s, in);
                     }});

    reg.register_op({.name = "aten::gelu",
                     .schema = "aten::gelu(Tensor self) -> Tensor",
                     .fn = [](Session& s, const std::vector<IValue>& in) {
                         return unary_fn<&math::gelu>("gelu", 8.0, s, in);
                     },
                     .backward =
                         [](Session& s, const AutogradContext& ctx,
                            const std::vector<Tensor>& gouts) -> std::vector<Tensor> {
                         Tensor ga = s.call_t(MYST_OP("aten::gelu_backward"),
                                              {IValue(gouts[0]),
                                               IValue(ctx.inputs[0].tensor())});
                         return {ga};
                     },
                     .grad_name = "Gelu"});
    reg.register_op(
        {.name = "aten::gelu_backward",
         .schema = "aten::gelu_backward(Tensor grad_output, Tensor self) -> Tensor",
         .fn = [](Session& s, const std::vector<IValue>& in) {
             return unary_grad_fn<&math::gelu_backward>("gelu_bwd", s, in);
         }});

    reg.register_op(
        {.name = "aten::layer_norm",
         .schema = "aten::layer_norm(Tensor input, Tensor? weight, Tensor? bias, "
                   "float eps) -> Tensor",
         .fn =
             [](Session& s, const std::vector<IValue>& in) -> std::vector<IValue> {
             const Tensor& a = in[0].tensor();
             const Tensor gamma = in[1].is_tensor() ? in[1].tensor() : Tensor();
             const Tensor beta = in[2].is_tensor() ? in[2].tensor() : Tensor();
             const float eps = static_cast<float>(in[3].to_double());
             const int64_t cols = a.shape().back();
             Tensor out = s.alloc(a.shape());
             if (s.numeric())
                 math::layer_norm(a.f32(), gamma.defined() ? gamma.f32() : nullptr,
                                  beta.defined() ? beta.f32() : nullptr, out.f32(),
                                  a.numel() / cols, cols, eps);
             s.launch(norm_kernel("layer_norm", a.numel()), dev::kComputeStream,
                      {a, gamma, beta}, {out});
             return {IValue(out)};
         },
         .backward =
             [](Session& s, const AutogradContext& ctx,
                const std::vector<Tensor>& gouts) -> std::vector<Tensor> {
             auto outs = s.call(MYST_OP("aten::native_layer_norm_backward"),
                                {IValue(gouts[0]), ctx.inputs[0], ctx.inputs[1],
                                 ctx.inputs[3]});
             Tensor ggamma, gbeta;
             if (ctx.inputs[1].is_tensor() && ctx.inputs[1].tensor().requires_grad())
                 ggamma = outs[1].tensor();
             if (ctx.inputs[2].is_tensor() && ctx.inputs[2].tensor().requires_grad())
                 gbeta = outs[2].tensor();
             return {outs[0].tensor(), ggamma, gbeta, Tensor()};
         },
         .grad_name = "NativeLayerNorm"});
    reg.register_op(
        {.name = "aten::native_layer_norm_backward",
         .schema = "aten::native_layer_norm_backward(Tensor grad_out, Tensor input, "
                   "Tensor? weight, float eps) -> (Tensor, Tensor, Tensor)",
         .fn = [](Session& s, const std::vector<IValue>& in) -> std::vector<IValue> {
             const Tensor& grad_out = in[0].tensor();
             const Tensor& a = in[1].tensor();
             const Tensor gamma = in[2].is_tensor() ? in[2].tensor() : Tensor();
             const float eps = static_cast<float>(in[3].to_double());
             const int64_t cols = a.shape().back();
             Tensor grad_in = s.alloc(a.shape());
             Tensor grad_gamma = s.alloc({cols});
             Tensor grad_beta = s.alloc({cols});
             if (s.numeric())
                 math::layer_norm_backward(grad_out.f32(), a.f32(),
                                           gamma.defined() ? gamma.f32() : nullptr,
                                           grad_in.f32(), grad_gamma.f32(),
                                           grad_beta.f32(), a.numel() / cols, cols, eps);
             s.launch(norm_kernel("layer_norm_bwd", a.numel()), dev::kComputeStream,
                      {grad_out, a, gamma}, {grad_in, grad_gamma, grad_beta});
             return {IValue(grad_in), IValue(grad_gamma), IValue(grad_beta)};
         }});

    reg.register_op(
        {.name = "aten::native_dropout",
         .schema = "aten::native_dropout(Tensor input, float p, bool train) -> (Tensor, Tensor)",
         .fn = dropout_fn,
         .backward = dropout_backward,
         .grad_name = "NativeDropout"});
    reg.register_op(
        {.name = "aten::native_dropout_backward",
         .schema =
             "aten::native_dropout_backward(Tensor grad_output, Tensor mask, float scale) -> Tensor",
         .fn = dropout_bwd_fn});
}

} // namespace mystique::fw
