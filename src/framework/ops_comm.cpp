/// @file
/// c10d communication operators (§4.3.2).
///
/// Each op resolves its process group from the session, rendezvouses with the
/// other members through the shared fabric, and places a kernel of the agreed
/// duration on the communication stream (20).  The host thread does not block
/// (async collective semantics) — synchronization is carried by stream tails
/// and tensor ready-times, which is how computation/communication overlap and
/// exposed comm time arise in the traces.

#include <algorithm>

#include "common/error.h"
#include "framework/kernel_utils.h"
#include "framework/op_registry.h"
#include "framework/session.h"

namespace mystique::fw {

namespace {

struct CollectiveSpec {
    comm::CollectiveKind kind;
    const char* short_name;
};

/// Shared body: rendezvous then place the kernel at the agreed start.
Tensor
run_collective(Session& s, const CollectiveSpec& spec, const Tensor& input,
               const Tensor& output, int64_t pg_id)
{
    s.set_current_pg(pg_id);
    const auto& pg = s.process_group(pg_id);
    // The simulator never computes collective numerics; out-of-place outputs
    // have always read as zeros (the old zero-filling alloc).  Recycled arena
    // buffers are not zeroed, so keep that contract explicit — but never
    // touch in-place collectives (all_reduce/broadcast mutate their input).
    if (output.impl() != nullptr && input.impl() != nullptr &&
        output.impl()->storage != input.impl()->storage)
        zero_fill(output);
    const double bytes = static_cast<double>(input.nbytes());
    const sim::TimeUs arrival =
        std::max({s.cpu_now(), input.ready_us(), s.device().stream_tail(dev::kCommStream)});
    const comm::CollectiveResult res = pg->collective(spec.kind, bytes, arrival);
    s.launch(comm_kernel(spec.short_name, bytes), dev::kCommStream, {input}, {output},
             res.duration_us, res.start_us);
    return output;
}

std::vector<IValue>
all_reduce_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& t = in[0].tensor();
    // In-place, as c10d::all_reduce mutates its buffer.
    run_collective(s, {comm::CollectiveKind::kAllReduce, "all_reduce"}, t, t,
                   in[1].to_int());
    return {IValue(t)};
}

std::vector<IValue>
all_to_all_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& t = in[0].tensor();
    Tensor out = s.alloc(t.shape(), t.dtype());
    run_collective(s, {comm::CollectiveKind::kAllToAll, "all_to_all"}, t, out,
                   in[1].to_int());
    return {IValue(out)};
}

std::vector<IValue>
all_gather_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& t = in[0].tensor();
    const int64_t pg_id = in[1].to_int();
    const auto& pg = s.process_group(pg_id);
    Shape out_shape = t.shape();
    out_shape.insert(out_shape.begin(), pg->size());
    Tensor out = s.alloc(out_shape, t.dtype());
    run_collective(s, {comm::CollectiveKind::kAllGather, "all_gather"}, t, out, pg_id);
    return {IValue(out)};
}

std::vector<IValue>
reduce_scatter_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& t = in[0].tensor();
    const int64_t pg_id = in[1].to_int();
    const auto& pg = s.process_group(pg_id);
    MYST_CHECK_MSG(t.numel() % pg->size() == 0, "reduce_scatter size not divisible");
    Tensor out = s.alloc({t.numel() / pg->size()}, t.dtype());
    run_collective(s, {comm::CollectiveKind::kReduceScatter, "reduce_scatter"}, t, out,
                   pg_id);
    return {IValue(out)};
}

std::vector<IValue>
broadcast_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& t = in[0].tensor();
    run_collective(s, {comm::CollectiveKind::kBroadcast, "broadcast"}, t, t,
                   in[2].to_int());
    return {IValue(t)};
}

std::vector<IValue>
barrier_fn(Session& s, const std::vector<IValue>& in)
{
    const int64_t pg_id = in[0].to_int();
    s.set_current_pg(pg_id);
    const auto& pg = s.process_group(pg_id);
    const sim::TimeUs arrival =
        std::max(s.cpu_now(), s.device().stream_tail(dev::kCommStream));
    const comm::CollectiveResult res =
        pg->collective(comm::CollectiveKind::kBarrier, 0.0, arrival);
    // Barrier blocks the host until every rank has arrived.
    s.cpu_advance(std::max(0.0, res.end_us - s.cpu_now()));
    return {};
}

std::vector<IValue>
send_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& t = in[0].tensor();
    run_collective(s, {comm::CollectiveKind::kSend, "send"}, t, t, in[2].to_int());
    return {IValue(t)};
}

std::vector<IValue>
recv_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& t = in[0].tensor();
    run_collective(s, {comm::CollectiveKind::kRecv, "recv"}, t, t, in[2].to_int());
    return {IValue(t)};
}

} // namespace

void
register_comm_ops(OpRegistry& reg)
{
    const auto cat = dev::OpCategory::kComm;
    reg.register_op({.name = "c10d::all_reduce",
                     .schema = "c10d::all_reduce(Tensor tensor, int pg) -> Tensor",
                     .category = cat,
                     .fn = all_reduce_fn});
    reg.register_op({.name = "c10d::all_to_all",
                     .schema = "c10d::all_to_all(Tensor input, int pg) -> Tensor",
                     .category = cat,
                     .fn = all_to_all_fn});
    reg.register_op({.name = "c10d::all_gather",
                     .schema = "c10d::all_gather(Tensor input, int pg) -> Tensor",
                     .category = cat,
                     .fn = all_gather_fn});
    reg.register_op({.name = "c10d::reduce_scatter",
                     .schema = "c10d::reduce_scatter(Tensor input, int pg) -> Tensor",
                     .category = cat,
                     .fn = reduce_scatter_fn});
    reg.register_op({.name = "c10d::broadcast",
                     .schema = "c10d::broadcast(Tensor tensor, int src, int pg) -> Tensor",
                     .category = cat,
                     .fn = broadcast_fn});
    reg.register_op({.name = "c10d::barrier",
                     .schema = "c10d::barrier(int pg) -> ()",
                     .category = cat,
                     .fn = barrier_fn});
    reg.register_op({.name = "c10d::send",
                     .schema = "c10d::send(Tensor tensor, int dst, int pg) -> Tensor",
                     .category = cat,
                     .fn = send_fn});
    reg.register_op({.name = "c10d::recv",
                     .schema = "c10d::recv(Tensor tensor, int src, int pg) -> Tensor",
                     .category = cat,
                     .fn = recv_fn});
}

} // namespace mystique::fw
