#include "framework/op_registry.h"

#include <algorithm>
#include <mutex>

#include "common/error.h"

namespace mystique::fw {

OpRegistry&
OpRegistry::instance()
{
    static OpRegistry reg;
    return reg;
}

void
OpRegistry::register_op(OpDef def)
{
    MYST_CHECK(!def.name.empty());
    MYST_CHECK_MSG(static_cast<bool>(def.fn), "op '" << def.name << "' has no ExecFn");
    if (ops_.count(def.name) != 0)
        MYST_THROW(ConfigError, "op '" << def.name << "' already registered");
    ops_.emplace(def.name, std::move(def));
}

const OpDef*
OpRegistry::find(const std::string& name) const
{
    auto it = ops_.find(name);
    return it == ops_.end() ? nullptr : &it->second;
}

const OpDef&
OpRegistry::at(const std::string& name) const
{
    const OpDef* def = find(name);
    if (def == nullptr)
        MYST_THROW(ReplayError, "unknown operator '" << name << "'");
    return *def;
}

std::vector<std::string>
OpRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(ops_.size());
    for (const auto& [name, def] : ops_)
        out.push_back(name);
    return out;
}

// Implemented in the ops_*.cpp translation units.
void register_pointwise_ops(OpRegistry&);
void register_gemm_ops(OpRegistry&);
void register_shape_ops(OpRegistry&);
void register_conv_ops(OpRegistry&);
void register_norm_pool_ops(OpRegistry&);
void register_loss_ops(OpRegistry&);
void register_embedding_ops(OpRegistry&);
void register_creation_ops(OpRegistry&);
void register_comm_ops(OpRegistry&);
void register_custom_ops(OpRegistry&);

void
ensure_ops_registered()
{
    static std::once_flag flag;
    std::call_once(flag, [] {
        OpRegistry& reg = OpRegistry::instance();
        register_pointwise_ops(reg);
        register_gemm_ops(reg);
        register_shape_ops(reg);
        register_conv_ops(reg);
        register_norm_pool_ops(reg);
        register_loss_ops(reg);
        register_embedding_ops(reg);
        register_creation_ops(reg);
        register_comm_ops(reg);
        register_custom_ops(reg);
    });
}

} // namespace mystique::fw
