#include "framework/op_registry.h"

#include <algorithm>
#include <mutex>

#include "common/error.h"

namespace mystique::fw {

OpRegistry&
OpRegistry::instance()
{
    static OpRegistry reg;
    return reg;
}

void
OpRegistry::register_op(OpDef def)
{
    MYST_CHECK(!def.name.empty());
    MYST_CHECK_MSG(static_cast<bool>(def.fn), "op '" << def.name << "' has no ExecFn");
    const OpId id = OpInterner::instance().intern(def.name);
    if (static_cast<std::size_t>(id) >= defs_.size())
        defs_.resize(static_cast<std::size_t>(id) + 1);
    if (defs_[static_cast<std::size_t>(id)].fn)
        MYST_THROW(ConfigError, "op '" << def.name << "' already registered");
    def.id = id;
    defs_[static_cast<std::size_t>(id)] = std::move(def);
}

const OpDef&
OpRegistry::at(OpId id) const
{
    const OpDef* def = find(id);
    if (def == nullptr)
        MYST_THROW(ReplayError, "unknown operator id " << id);
    return *def;
}

OpId
OpRegistry::lookup(const std::string& name) const
{
    return OpInterner::instance().lookup(name);
}

const OpDef&
OpRegistry::at(const std::string& name) const
{
    const OpDef* def = find(name);
    if (def == nullptr)
        MYST_THROW(ReplayError, "unknown operator '" << name << "'");
    return *def;
}

const std::string&
OpRegistry::name(OpId id) const
{
    return OpInterner::instance().name(id);
}

std::vector<std::string>
OpRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(defs_.size());
    for (const auto& def : defs_) {
        if (def.fn)
            out.push_back(def.name);
    }
    std::sort(out.begin(), out.end());
    return out;
}

// Implemented in the ops_*.cpp translation units.
void register_pointwise_ops(OpRegistry&);
void register_gemm_ops(OpRegistry&);
void register_shape_ops(OpRegistry&);
void register_conv_ops(OpRegistry&);
void register_norm_pool_ops(OpRegistry&);
void register_loss_ops(OpRegistry&);
void register_embedding_ops(OpRegistry&);
void register_creation_ops(OpRegistry&);
void register_comm_ops(OpRegistry&);
void register_custom_ops(OpRegistry&);
// Implemented in fused_chain.cpp.
void register_fused_chain_op(OpRegistry&);

void
ensure_ops_registered()
{
    static std::once_flag flag;
    std::call_once(flag, [] {
        OpRegistry& reg = OpRegistry::instance();
        register_pointwise_ops(reg);
        register_gemm_ops(reg);
        register_shape_ops(reg);
        register_conv_ops(reg);
        register_norm_pool_ops(reg);
        register_loss_ops(reg);
        register_embedding_ops(reg);
        register_creation_ops(reg);
        register_comm_ops(reg);
        register_custom_ops(reg);
        register_fused_chain_op(reg);
    });
}

} // namespace mystique::fw
