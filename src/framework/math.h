#pragma once

/// @file
/// Raw numeric routines backing the operator implementations.
///
/// Plain, correctness-first CPU implementations (the performance of a run is
/// decided by the device model, never by host math speed).  All buffers are
/// contiguous row-major.

#include <cstdint>

#include "common/rng.h"

namespace mystique::fw::math {

/// C[M,N] = alpha * A[M,K] @ B[K,N] + beta * C.  beta == 0 overwrites C
/// without reading it (BLAS convention) so C may be uninitialized / recycled
/// arena storage; inner loops are k-panel blocked for vectorization.
void gemm(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
          float alpha = 1.0f, float beta = 0.0f);

/// Batched GEMM over leading dimension; each batch dispatches through the
/// blocked gemm kernel above.
void bmm(const float* a, const float* b, float* c, int64_t batch, int64_t m, int64_t k,
         int64_t n);

/// out = a + alpha * b (same length).
void add(const float* a, const float* b, float* out, int64_t n, float alpha = 1.0f);
/// out[i] = a[i] + alpha * b[i % bn] — row-broadcast (bias) when bn < n.
void add_broadcast(const float* a, const float* b, float* out, int64_t n, int64_t bn,
                   float alpha = 1.0f);
void sub(const float* a, const float* b, float* out, int64_t n, float alpha = 1.0f);
void mul(const float* a, const float* b, float* out, int64_t n);
/// b broadcast as for add_broadcast.
void mul_broadcast(const float* a, const float* b, float* out, int64_t n, int64_t bn);
void div(const float* a, const float* b, float* out, int64_t n);
void mul_scalar(const float* a, float s, float* out, int64_t n);
void relu(const float* a, float* out, int64_t n);
void relu_backward(const float* grad, const float* input, float* out, int64_t n);
void sigmoid(const float* a, float* out, int64_t n);
void sigmoid_backward(const float* grad, const float* output, float* out, int64_t n);
void tanh_fwd(const float* a, float* out, int64_t n);
void tanh_backward(const float* grad, const float* output, float* out, int64_t n);
void exp_fwd(const float* a, float* out, int64_t n);
/// Exact (erf-based) GELU.
void gelu(const float* a, float* out, int64_t n);
void gelu_backward(const float* grad, const float* input, float* out, int64_t n);

/// Layer norm over the last dimension of [rows, cols], affine.
void layer_norm(const float* in, const float* gamma, const float* beta, float* out,
                int64_t rows, int64_t cols, float eps);
void layer_norm_backward(const float* grad_out, const float* in, const float* gamma,
                         float* grad_in, float* grad_gamma, float* grad_beta,
                         int64_t rows, int64_t cols, float eps);

/// Transpose a [rows, cols] matrix into [cols, rows].
void transpose2d(const float* a, float* out, int64_t rows, int64_t cols);

double sum(const float* a, int64_t n);
/// Sum over axis 0 of an [outer, inner] view: out[inner].
void sum_axis0(const float* a, float* out, int64_t outer, int64_t inner);

/// 2D convolution, NCHW input, FCHW weight, OH/OW from stride & padding.
void conv2d(const float* in, const float* w, const float* bias, float* out, int64_t n,
            int64_t c, int64_t h, int64_t wd, int64_t f, int64_t kh, int64_t kw,
            int64_t stride, int64_t pad);
void conv2d_backward(const float* grad_out, const float* in, const float* w,
                     float* grad_in, float* grad_w, float* grad_b, int64_t n, int64_t c,
                     int64_t h, int64_t wd, int64_t f, int64_t kh, int64_t kw,
                     int64_t stride, int64_t pad);

/// Batch norm over NCHW (training statistics), affine.
void batch_norm(const float* in, const float* gamma, const float* beta, float* out,
                int64_t n, int64_t c, int64_t spatial, float eps);
void batch_norm_backward(const float* grad_out, const float* in, const float* gamma,
                         float* grad_in, float* grad_gamma, float* grad_beta, int64_t n,
                         int64_t c, int64_t spatial, float eps);

void max_pool2d(const float* in, float* out, int64_t n, int64_t c, int64_t h, int64_t w,
                int64_t k, int64_t stride, int64_t pad);
void max_pool2d_backward(const float* grad_out, const float* in, float* grad_in,
                         int64_t n, int64_t c, int64_t h, int64_t w, int64_t k,
                         int64_t stride, int64_t pad);

/// Adaptive average pool to output size (oh, ow).
void adaptive_avg_pool2d(const float* in, float* out, int64_t n, int64_t c, int64_t h,
                         int64_t w, int64_t oh, int64_t ow);
void adaptive_avg_pool2d_backward(const float* grad_out, float* grad_in, int64_t n,
                                  int64_t c, int64_t h, int64_t w, int64_t oh,
                                  int64_t ow);

/// Row-wise (log-)softmax over the last dimension of [rows, cols].
void softmax(const float* in, float* out, int64_t rows, int64_t cols);
void log_softmax(const float* in, float* out, int64_t rows, int64_t cols);
void log_softmax_backward(const float* grad, const float* output, float* out,
                          int64_t rows, int64_t cols);

/// Mean-reduced NLL loss over [rows, cols] log-probabilities.
double nll_loss(const float* logp, const int64_t* target, int64_t rows, int64_t cols);
void nll_loss_backward(float grad, const int64_t* target, float* out, int64_t rows,
                       int64_t cols);

/// Mean-reduced BCE-with-logits over n elements.
double bce_with_logits(const float* logits, const float* target, int64_t n);
void bce_with_logits_backward(float grad, const float* logits, const float* target,
                              float* out, int64_t n);

/// Sum-mode embedding bag: weight [rows, dim], indices [nnz], offsets [bags].
void embedding_bag(const float* weight, const int64_t* indices, const int64_t* offsets,
                   float* out, int64_t nnz, int64_t bags, int64_t dim);
/// Zero-fills grad_weight [rows, dim] before scattering (outputs may be
/// recycled, uninitialized arena storage).
void embedding_bag_backward(const float* grad_out, const int64_t* indices,
                            const int64_t* offsets, float* grad_weight, int64_t rows,
                            int64_t nnz, int64_t bags, int64_t dim);

/// Single LSTM layer forward: input [T,B,I] → output [T,B,H] (h/c start at 0).
/// w_ih [4H,I], w_hh [4H,H], bias [4H]; gate order (i, f, g, o).
void lstm_layer(const float* in, const float* w_ih, const float* w_hh, const float* bias,
                float* out, int64_t t, int64_t b, int64_t i, int64_t h);
/// Full BPTT (recomputes forward activations internally).
void lstm_layer_backward(const float* grad_out, const float* in, const float* w_ih,
                         const float* w_hh, const float* bias, float* grad_in,
                         float* grad_w_ih, float* grad_w_hh, float* grad_bias, int64_t t,
                         int64_t b, int64_t i, int64_t h);

/// Fills with iid N(0, scale).
void randn(float* out, int64_t n, Rng& rng, float scale = 1.0f);

} // namespace mystique::fw::math
