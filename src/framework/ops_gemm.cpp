/// @file
/// GEMM-family ATen operators, including the composite aten::linear whose
/// children (aten::t, aten::addmm / aten::mm) illustrate the paper's §4.2
/// redundant-operator selection.

#include "common/error.h"
#include "framework/kernel_utils.h"
#include "framework/math.h"
#include "framework/op_registry.h"
#include "framework/session.h"

namespace mystique::fw {

namespace {

std::vector<IValue>
mm_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& a = in[0].tensor();
    const Tensor& b = in[1].tensor();
    MYST_CHECK_MSG(a.shape().size() == 2 && b.shape().size() == 2 && a.dim(1) == b.dim(0),
                   "mm shape mismatch: " << shape_str(a.shape()) << " @ "
                                         << shape_str(b.shape()));
    const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    Tensor out = s.alloc({m, n});
    if (s.numeric())
        math::gemm(a.f32(), b.f32(), out.f32(), m, k, n);
    s.launch(gemm_kernel(m, k, n), dev::kComputeStream, {a, b}, {out});
    return {IValue(out)};
}

std::vector<Tensor>
mm_backward(Session& s, const AutogradContext& ctx, const std::vector<Tensor>& gouts)
{
    const Tensor& go = gouts[0];
    const Tensor& a = ctx.inputs[0].tensor();
    const Tensor& b = ctx.inputs[1].tensor();
    Tensor ga, gb;
    if (a.requires_grad()) {
        Tensor bt = s.call_t(MYST_OP("aten::t"), {IValue(b)});
        ga = s.call_t(MYST_OP("aten::mm"), {IValue(go), IValue(bt)});
    }
    if (b.requires_grad()) {
        Tensor at = s.call_t(MYST_OP("aten::t"), {IValue(a)});
        gb = s.call_t(MYST_OP("aten::mm"), {IValue(at), IValue(go)});
    }
    return {ga, gb};
}

std::vector<IValue>
addmm_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& bias = in[0].tensor();
    const Tensor& a = in[1].tensor();
    const Tensor& b = in[2].tensor();
    MYST_CHECK_MSG(a.shape().size() == 2 && b.shape().size() == 2 && a.dim(1) == b.dim(0),
                   "addmm shape mismatch");
    const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    const float beta = static_cast<float>(in[3].to_double());
    const float alpha = static_cast<float>(in[4].to_double());
    Tensor out = s.alloc({m, n});
    if (s.numeric()) {
        // Seed the output with beta * bias (row-broadcast), then GEMM.
        for (int64_t i = 0; i < m; ++i)
            for (int64_t j = 0; j < n; ++j)
                out.f32()[i * n + j] = beta * bias.f32()[bias.numel() == n ? j : i * n + j];
        math::gemm(a.f32(), b.f32(), out.f32(), m, k, n, alpha, 1.0f);
    }
    s.launch(gemm_kernel(m, k, n), dev::kComputeStream, {bias, a, b}, {out});
    return {IValue(out)};
}

std::vector<Tensor>
addmm_backward(Session& s, const AutogradContext& ctx, const std::vector<Tensor>& gouts)
{
    const Tensor& go = gouts[0];
    const Tensor& bias = ctx.inputs[0].tensor();
    const Tensor& a = ctx.inputs[1].tensor();
    const Tensor& b = ctx.inputs[2].tensor();
    Tensor gbias, ga, gb;
    if (bias.requires_grad()) {
        if (bias.numel() == go.numel()) {
            gbias = go;
        } else {
            gbias = s.call_t(MYST_OP("aten::sum.dim_IntList"),
                             {IValue(go), IValue(std::vector<int64_t>{0}), IValue(false)});
        }
    }
    if (a.requires_grad()) {
        Tensor bt = s.call_t(MYST_OP("aten::t"), {IValue(b)});
        ga = s.call_t(MYST_OP("aten::mm"), {IValue(go), IValue(bt)});
    }
    if (b.requires_grad()) {
        Tensor at = s.call_t(MYST_OP("aten::t"), {IValue(a)});
        gb = s.call_t(MYST_OP("aten::mm"), {IValue(at), IValue(go)});
    }
    return {gbias, ga, gb, Tensor(), Tensor()};
}

std::vector<IValue>
bmm_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& a = in[0].tensor();
    const Tensor& b = in[1].tensor();
    MYST_CHECK_MSG(a.shape().size() == 3 && b.shape().size() == 3 && a.dim(0) == b.dim(0) &&
                       a.dim(2) == b.dim(1),
                   "bmm shape mismatch");
    const int64_t batch = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(2);
    Tensor out = s.alloc({batch, m, n});
    if (s.numeric())
        math::bmm(a.f32(), b.f32(), out.f32(), batch, m, k, n);
    s.launch(gemm_kernel(m, k, n, batch), dev::kComputeStream, {a, b}, {out});
    return {IValue(out)};
}

std::vector<Tensor>
bmm_backward(Session& s, const AutogradContext& ctx, const std::vector<Tensor>& gouts)
{
    const Tensor& go = gouts[0];
    const Tensor& a = ctx.inputs[0].tensor();
    const Tensor& b = ctx.inputs[1].tensor();
    Tensor ga, gb;
    if (a.requires_grad()) {
        Tensor bt = s.call_t(MYST_OP("aten::transpose.int"), {IValue(b), IValue(1), IValue(2)});
        ga = s.call_t(MYST_OP("aten::bmm"), {IValue(go), IValue(bt)});
    }
    if (b.requires_grad()) {
        Tensor at = s.call_t(MYST_OP("aten::transpose.int"), {IValue(a), IValue(1), IValue(2)});
        gb = s.call_t(MYST_OP("aten::bmm"), {IValue(at), IValue(go)});
    }
    return {ga, gb};
}

/// Composite: replays as the parent; children aten::t + aten::addmm/aten::mm
/// are recorded beneath it in the ET (§4.2).
std::vector<IValue>
linear_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& input = in[0].tensor();
    const Tensor& weight = in[1].tensor();
    Tensor wt = s.call_t(MYST_OP("aten::t"), {IValue(weight)});
    if (in.size() > 2 && in[2].is_tensor()) {
        Tensor out = s.call_t(MYST_OP("aten::addmm"), {in[2], IValue(input), IValue(wt), IValue(1.0),
                                              IValue(1.0)});
        return {IValue(out)};
    }
    Tensor out = s.call_t(MYST_OP("aten::mm"), {IValue(input), IValue(wt)});
    return {IValue(out)};
}

} // namespace

void
register_gemm_ops(OpRegistry& reg)
{
    reg.register_op({.name = "aten::mm",
                     .schema = "aten::mm(Tensor self, Tensor mat2) -> Tensor",
                     .fn = mm_fn,
                     .backward = mm_backward,
                     .grad_name = "Mm"});
    reg.register_op(
        {.name = "aten::addmm",
         .schema =
             "aten::addmm(Tensor self, Tensor mat1, Tensor mat2, *, Scalar beta=1, Scalar alpha=1) -> Tensor",
         .fn = addmm_fn,
         .backward = addmm_backward,
         .grad_name = "Addmm"});
    reg.register_op({.name = "aten::bmm",
                     .schema = "aten::bmm(Tensor self, Tensor mat2) -> Tensor",
                     .fn = bmm_fn,
                     .backward = bmm_backward,
                     .grad_name = "Bmm"});
    reg.register_op(
        {.name = "aten::linear",
         .schema = "aten::linear(Tensor input, Tensor weight, Tensor? bias=None) -> Tensor",
         .fn = linear_fn,
         .composite = true});
}

} // namespace mystique::fw
