#pragma once

/// @file
/// Size-bucketed caching allocator for tensor storage.
///
/// Every Session owns one arena; Storage::materialize acquires its buffer
/// here and the Storage destructor releases it back, so iteration 2..N of a
/// replay — and successive database groups on a pooled ReplayDriver worker —
/// recycle the previous iteration's buffers instead of paying malloc + memset
/// per tensor (the same traffic pattern ATen's CUDACachingAllocator erases).
///
/// Contract, mirroring caching GPU allocators:
///  - fresh blocks (heap misses) are zero-filled, matching the historical
///    `std::vector<std::byte>` behavior for a tensor's *first* use;
///  - recycled blocks keep their previous contents.  Kernels must fully
///    write their outputs; ops with read-modify-write numerics (gemm's
///    beta=0 path, embedding_bag's grad scatter, aten::zeros) initialize
///    explicitly.  Set MYST_ARENA_POISON=1 to fill recycled blocks with
///    0xFF bytes (float NaN patterns) and flush read-before-write bugs.
///
/// Blocks round up to the next power of two (min 64 B), one free list per
/// bucket.  Released blocks beyond `max_cached_bytes` are freed instead of
/// cached, bounding idle memory.  All methods are thread-safe: sessions are
/// single-threaded, but tensor handles (and thus Storage destructors) may
/// outlive their session's thread.

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace mystique::fw {

/// Counters surfaced like PlanCacheStats (benchmarks, MYST_LOG=1 sweeps).
struct StorageArenaStats {
    uint64_t hits = 0;       ///< acquires served from a bucket free list
    uint64_t misses = 0;     ///< acquires that went to the heap
    uint64_t returns = 0;    ///< releases cached into a bucket
    uint64_t heap_frees = 0; ///< releases freed because the cache was full
    int64_t bytes_outstanding = 0;      ///< bucket-rounded bytes acquired, not yet released
    int64_t peak_bytes_outstanding = 0; ///< high-water mark of bytes_outstanding
    int64_t bytes_cached = 0;           ///< bucket-rounded bytes sitting in free lists
};

class StorageArena {
  public:
    static constexpr int64_t kMinBucketBytes = 64;
    static constexpr int64_t kDefaultMaxCachedBytes = int64_t{256} << 20;

    explicit StorageArena(int64_t max_cached_bytes = kDefaultMaxCachedBytes);
    ~StorageArena();

    StorageArena(const StorageArena&) = delete;
    StorageArena& operator=(const StorageArena&) = delete;

    struct Block {
        std::byte* data = nullptr;
        int64_t capacity = 0; ///< bucket-rounded; pass back verbatim to release()
    };

    /// Returns a block with capacity >= @p nbytes (zero bytes → null block).
    /// Fresh blocks are zeroed; recycled blocks keep their prior contents.
    Block acquire(int64_t nbytes);

    /// Returns a block to its bucket, or frees it when the cache is full.
    void release(Block block) noexcept;

    StorageArenaStats stats() const;

    /// Frees every cached block (counters other than bytes_cached persist).
    void trim();

    /// The bucket-rounding rule: next power of two, at least kMinBucketBytes.
    static int64_t bucket_bytes(int64_t nbytes);

  private:
    static std::size_t bucket_index(int64_t capacity);

    mutable std::mutex mu_;
    const int64_t max_cached_bytes_;
    const bool poison_; ///< MYST_ARENA_POISON=1: 0xFF-fill recycled blocks
    StorageArenaStats stats_;
    std::array<std::vector<std::byte*>, 64> buckets_; ///< index = log2(capacity)
};

} // namespace mystique::fw
