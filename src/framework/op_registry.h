#pragma once

/// @file
/// Operator definitions and the global registry.
///
/// Every operator the framework can execute — ATen compute ops, c10d
/// communication ops, and custom extension ops — is described by an OpDef
/// carrying its PyTorch-style schema string, its category, its execution
/// function, and optionally an autograd backward function.  The Mystique
/// replayer reconstructs operators against this same registry (its
/// *supported set* is a separate, narrower list; see core/reconstruction).

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "device/kernel.h"
#include "framework/ivalue.h"

namespace mystique::fw {

class Session;

/// Executes an op: consumes schema-ordered inputs, returns outputs.
/// Leaf ops launch kernels via Session::launch(); composite ops invoke child
/// ops via Session::call(), which nests their ET nodes beneath the parent.
using ExecFn = std::function<std::vector<IValue>(Session&, const std::vector<IValue>&)>;

/// Saved state for backward: the forward inputs and outputs (by value —
/// tensors are shared handles, matching "saved tensors" semantics).
struct AutogradContext {
    std::vector<IValue> inputs;
    std::vector<IValue> outputs;
    /// Per-input-position gradients for tensor-*list* inputs (e.g. aten::cat):
    /// backward fns fill list_grads[position] with one grad per list element;
    /// the engine routes them.  Mutable because BackwardFn receives a const
    /// context (the saved values themselves must not change).
    mutable std::vector<std::vector<Tensor>> list_grads;
};

/// Computes input gradients from output gradients.  Returns one Tensor per
/// *forward input position*; undefined tensors mark non-differentiable slots.
/// Implementations issue real ops through the session, so backward work is
/// traced and timed exactly like forward work.
using BackwardFn = std::function<std::vector<Tensor>(
    Session&, const AutogradContext&, const std::vector<Tensor>& grad_outputs)>;

/// One registered operator.
struct OpDef {
    std::string name;     ///< e.g. "aten::addmm"
    std::string schema;   ///< full schema string (empty only for Fused)
    dev::OpCategory category = dev::OpCategory::kATen;
    ExecFn fn;
    BackwardFn backward;  ///< empty → non-differentiable
    /// Short name used for the autograd wrapper ("Addmm" → "AddmmBackward0").
    std::string grad_name;
    /// Host-side CPU cost beyond the platform dispatch constant (us).
    double extra_cpu_us = 0.0;
    /// Composite ops execute via child ops; selection keeps the parent (§4.2).
    bool composite = false;
};

/// Process-wide operator registry.
class OpRegistry {
  public:
    static OpRegistry& instance();

    /// Registers an op; re-registration of the same name throws ConfigError.
    void register_op(OpDef def);

    /// Lookup; nullptr when unknown.
    const OpDef* find(const std::string& name) const;

    /// Lookup; throws ReplayError when unknown.
    const OpDef& at(const std::string& name) const;

    /// All registered names, sorted.
    std::vector<std::string> names() const;

    bool contains(const std::string& name) const { return find(name) != nullptr; }

  private:
    OpRegistry() = default;
    std::map<std::string, OpDef> ops_;
};

/// Idempotently registers all built-in operators (ATen, c10d, custom
/// libraries).  Called by the Session constructor; safe to call directly.
void ensure_ops_registered();

} // namespace mystique::fw
