#pragma once

/// @file
/// Operator definitions and the global registry.
///
/// Every operator the framework can execute — ATen compute ops, c10d
/// communication ops, and custom extension ops — is described by an OpDef
/// carrying its PyTorch-style schema string, its category, its execution
/// function, and optionally an autograd backward function.  The Mystique
/// replayer reconstructs operators against this same registry (its
/// *supported set* is a separate, narrower list; see core/reconstruction).
///
/// ## The OpId scheme
///
/// Registration interns the op name through the process-wide OpInterner
/// (common/op_id.h) and stores the OpDef in a flat vector indexed by the
/// resulting dense OpId, so every per-op lookup on a hot path is one bounds
/// check and one vector index — no string hashing or comparisons:
///
///   - Session::call(OpId)/call_t(OpId) and Session::dispatch carry
///     `const OpDef&` resolved exactly once per call site;
///   - the autograd tape records the OpId of each differentiable op instead
///     of copying its name and backward functor;
///   - et::Node caches the OpId alongside its name at record time, and the
///     replayer's build_plan resolves loaded trace nodes once, so per-node
///     replay execution is ID-indexed;
///   - core/supported_ops, core/selection and et/trace_stats key their
///     supported sets and histograms on OpId.
///
/// The string overloads below remain as thin resolve-once wrappers for cold
/// paths (model code, tests, serialization boundaries).  OpIds are process-
/// local and must never be persisted; trace files and fingerprints stay
/// name-based.  Because the flat vector can reallocate while ops are still
/// being registered, long-lived structures should store OpIds, not OpDef
/// pointers; `find/at(OpId)` re-derive the pointer in O(1).

#include <functional>
#include <string>
#include <vector>

#include "common/op_id.h"
#include "device/kernel.h"
#include "framework/ivalue.h"

namespace mystique::fw {

class Session;

using mystique::kInvalidOpId;
using mystique::OpId;

/// Executes an op: consumes schema-ordered inputs, returns outputs.
/// Leaf ops launch kernels via Session::launch(); composite ops invoke child
/// ops via Session::call(), which nests their ET nodes beneath the parent.
using ExecFn = std::function<std::vector<IValue>(Session&, const std::vector<IValue>&)>;

/// Saved state for backward: the forward inputs and outputs (by value —
/// tensors are shared handles, matching "saved tensors" semantics).
struct AutogradContext {
    std::vector<IValue> inputs;
    std::vector<IValue> outputs;
    /// Per-input-position gradients for tensor-*list* inputs (e.g. aten::cat):
    /// backward fns fill list_grads[position] with one grad per list element;
    /// the engine routes them.  Mutable because BackwardFn receives a const
    /// context (the saved values themselves must not change).
    mutable std::vector<std::vector<Tensor>> list_grads;
};

/// Computes input gradients from output gradients.  Returns one Tensor per
/// *forward input position*; undefined tensors mark non-differentiable slots.
/// Implementations issue real ops through the session, so backward work is
/// traced and timed exactly like forward work.
using BackwardFn = std::function<std::vector<Tensor>(
    Session&, const AutogradContext&, const std::vector<Tensor>& grad_outputs)>;

/// One registered operator.
struct OpDef {
    std::string name;     ///< e.g. "aten::addmm"
    std::string schema;   ///< full schema string (empty only for Fused)
    dev::OpCategory category = dev::OpCategory::kATen;
    ExecFn fn;
    BackwardFn backward;  ///< empty → non-differentiable
    /// Short name used for the autograd wrapper ("Addmm" → "AddmmBackward0").
    std::string grad_name;
    /// Host-side CPU cost beyond the platform dispatch constant (us).
    double extra_cpu_us = 0.0;
    /// Composite ops execute via child ops; selection keeps the parent (§4.2).
    bool composite = false;
    /// Interned identity, assigned by OpRegistry::register_op().
    OpId id = kInvalidOpId;
};

/// Process-wide operator registry: flat OpId-indexed storage plus string
/// resolve-once wrappers.
class OpRegistry {
  public:
    static OpRegistry& instance();

    /// Registers an op; re-registration of the same name throws ConfigError.
    /// Interns the name and assigns the OpDef's OpId.
    void register_op(OpDef def);

    // -------------------------------------------------- hot-path (by OpId)

    /// O(1) lookup; nullptr when the ID is unknown or carries no definition
    /// (a name can be interned — e.g. by trace statistics — without being a
    /// registered operator).
    const OpDef* find(OpId id) const
    {
        if (id < 0 || static_cast<std::size_t>(id) >= defs_.size())
            return nullptr;
        const OpDef& def = defs_[static_cast<std::size_t>(id)];
        return def.fn ? &def : nullptr;
    }

    /// O(1) lookup; throws ReplayError when unknown.
    const OpDef& at(OpId id) const;

    bool contains(OpId id) const { return find(id) != nullptr; }

    // ------------------------------------------- cold-path (by name string)

    /// Resolves a name to its OpId; kInvalidOpId when the name was never
    /// interned (and therefore certainly never registered).
    OpId lookup(const std::string& name) const;

    /// Lookup; nullptr when unknown.
    const OpDef* find(const std::string& name) const { return find(lookup(name)); }

    /// Lookup; throws ReplayError when unknown.
    const OpDef& at(const std::string& name) const;

    bool contains(const std::string& name) const { return find(name) != nullptr; }

    /// The name behind an ID (valid for any interned ID).
    const std::string& name(OpId id) const;

    /// All registered names, sorted.
    std::vector<std::string> names() const;

    /// One past the largest OpId that may carry a definition.
    std::size_t id_bound() const { return defs_.size(); }

  private:
    OpRegistry() = default;

    /// Indexed by OpId; slots without a definition have an empty fn.
    std::vector<OpDef> defs_;
};

/// Idempotently registers all built-in operators (ATen, c10d, custom
/// libraries).  Called by the Session constructor; safe to call directly.
/// OpIds are stable across re-entry: registration runs under std::call_once
/// and the intern table only ever appends.
void ensure_ops_registered();

} // namespace mystique::fw

/// Resolves an op-name literal to its OpId once per call site (thread-safe
/// function-local static), for ExecFn/BackwardFn/model bodies that invoke
/// child ops:
///
///   Tensor bt = s.call_t(MYST_OP("aten::t"), {IValue(b)});
///
/// Only valid where the op is already registered when the site first runs —
/// true for anything executed through a Session, whose constructor calls
/// ensure_ops_registered().
#define MYST_OP(name)                                                                  \
    ([]() -> ::mystique::OpId {                                                        \
        static const ::mystique::OpId myst_resolved_op_id =                            \
            ::mystique::fw::OpRegistry::instance().at(name).id;                        \
        return myst_resolved_op_id;                                                    \
    }())
